module pelta

go 1.22
