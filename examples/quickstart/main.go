// Quickstart: shield a model with Pelta and watch a white-box PGD attack
// collapse into noise.
//
//	go run ./examples/quickstart
//
// The walk-through mirrors Fig. 2: train a small ViT, attack it in the
// clear white-box, then wrap it in a Pelta enclave so the attacker only
// gets the adjoint δ_{L+1} and must upsample it.
package main

import (
	"fmt"
	"os"

	"pelta/internal/attack"
	"pelta/internal/core"
	"pelta/internal/dataset"
	"pelta/internal/eval"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Data and defender: a scaled-down ViT on a synthetic CIFAR-10
	// stand-in (16×16 RGB, 6 classes).
	cfg := dataset.SynthCIFAR10(16, 1)
	cfg.Classes = 6
	cfg.TrainN, cfg.ValN = 600, 200
	train, val := dataset.Generate(cfg)

	vit := models.NewViT(models.SmallViT("ViT-quickstart", cfg.Classes, 16, 4), tensor.NewRNG(1))
	fmt.Println("training the defender...")
	if _, err := models.Train(vit, train.X, train.Y, models.TrainConfig{Epochs: 6, BatchSize: 32, LR: 2e-3, Seed: 1}); err != nil {
		return err
	}
	fmt.Printf("clean accuracy: %.1f%%\n\n", 100*models.Accuracy(vit, val.X, val.Y))

	// 2. Astuteness protocol: attack only correctly classified samples.
	x, y, err := eval.SelectCorrect([]models.Model{vit}, val, 24)
	if err != nil {
		return err
	}
	pgd := &attack.PGD{Eps: 0.1, Step: 0.0125, Steps: 20}

	// 3. Full white-box: the compromised client reads ∇xL from its RAM.
	clear := &attack.ClearOracle{M: vit}
	xadv, err := pgd.Perturb(clear, x, y)
	if err != nil {
		return err
	}
	fmt.Printf("PGD vs clear model:      robust accuracy %5.1f%%\n",
		100*eval.RobustAccuracy(vit, xadv, y))

	// 4. Pelta: the shallow layers move into a TrustZone-style enclave.
	// Every pass applies Algorithm 1; the attacker's oracle only sees the
	// adjoint of the shallowest clear layer and upsamples it (§V-B).
	shielded, err := core.NewShieldedModel(vit, 0)
	if err != nil {
		return err
	}
	oracle, err := attack.NewShieldedOracle(shielded, 42)
	if err != nil {
		return err
	}
	xadvShielded, err := pgd.Perturb(oracle, x, y)
	if err != nil {
		return err
	}
	fmt.Printf("PGD vs shielded model:   robust accuracy %5.1f%%\n",
		100*eval.RobustAccuracy(vit, xadvShielded, y))

	// 5. What the enclave held during the last pass.
	res, err := shielded.Query(x.Slice(0).Reshape(1, 3, 16, 16), core.CrossEntropyLoss(y[:1]))
	if err != nil {
		return err
	}
	fmt.Printf("\nenclave report for one pass: %d vertices, %d params, %d input jacobians, %s secure memory\n",
		res.Report.Vertices, res.Report.Params, res.Report.Jacobians, eval.FormatBytes(res.Report.Bytes))
	m := shielded.Enclave().Metrics()
	fmt.Printf("world switches so far: %d (modelled overhead %v)\n", m.WorldSwitches, m.SimulatedOverhead)
	return nil
}
