// Ensemble defense vs SAGA (Table IV, §V-A2): a ViT and a BiT under the
// random-selection policy, attacked by the Self-Attention Gradient Attack
// in all four shielding settings.
//
//	go run ./examples/ensemble
package main

import (
	"fmt"
	"os"

	"pelta/internal/dataset"
	"pelta/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ensemble:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := eval.QuickBlockConfig(dataset.SynthCIFAR10(16, 9))
	cfg.Dataset.Classes = 6
	fmt.Println("training the ViT + BiT ensemble pair...")
	blk, err := eval.BuildBlock(cfg)
	if err != nil {
		return err
	}
	set := eval.DefaultAttackSet()
	set.Steps = 10
	fmt.Println("running SAGA under the four shielding settings (this is Table IV)...")
	tbl, err := eval.RunTable4(blk.ViT, blk.BiT, blk.Val, 24, set)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(tbl.Render())
	fmt.Println()
	fmt.Println("Reading the grid: the unshielded pair collapses; shielding one member")
	fmt.Println("leaves its counterpart exposed (SAGA redirects onto the clear loss);")
	fmt.Println("shielding both restores astuteness to near the random-noise baseline.")
	return nil
}
