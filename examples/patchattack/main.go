// Patch attack (the §I motivating scenario): a compromised client crafts a
// localized adversarial sticker — a small pixel patch optimized via the
// model's gradients — that makes a "road sign" misclassified, then the same
// crafting is attempted against a Pelta-shielded device.
//
//	go run ./examples/patchattack
package main

import (
	"fmt"
	"os"

	"pelta/internal/attack"
	"pelta/internal/core"
	"pelta/internal/dataset"
	"pelta/internal/eval"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "patchattack:", err)
		os.Exit(1)
	}
}

// craftPatch optimizes only a k×k sticker region with gradient-sign steps;
// pixels inside the sticker are unconstrained within [0,1].
func craftPatch(o attack.Oracle, x *tensor.Tensor, y []int, k, steps int) (*tensor.Tensor, error) {
	hw := x.Dim(2)
	y0, x0 := hw/2-k/2, hw/2-k/2 // sticker in the sign's center
	xadv := x.Clone()
	for s := 0; s < steps; s++ {
		grad, _, err := o.GradCE(xadv, y)
		if err != nil {
			return nil, err
		}
		for i := 0; i < xadv.Dim(0); i++ {
			gi, xi := grad.Slice(i), xadv.Slice(i)
			for c := 0; c < 3; c++ {
				for dy := 0; dy < k; dy++ {
					for dx := 0; dx < k; dx++ {
						g := gi.At(c, y0+dy, x0+dx)
						v := xi.At(c, y0+dy, x0+dx)
						switch {
						case g > 0:
							v += 0.1
						case g < 0:
							v -= 0.1
						}
						if v < 0 {
							v = 0
						}
						if v > 1 {
							v = 1
						}
						xi.Set(v, c, y0+dy, x0+dx)
					}
				}
			}
		}
	}
	return xadv, nil
}

func run() error {
	cfg := dataset.SynthCIFAR10(16, 13)
	cfg.Classes = 6 // six "road sign" types
	cfg.TrainN, cfg.ValN = 600, 200
	train, val := dataset.Generate(cfg)

	sign := models.NewViT(models.SmallViT("roadsign-net", cfg.Classes, 16, 4), tensor.NewRNG(1))
	fmt.Println("training the road-sign classifier...")
	if _, err := models.Train(sign, train.X, train.Y, models.TrainConfig{Epochs: 6, BatchSize: 32, LR: 2e-3, Seed: 1}); err != nil {
		return err
	}

	x, y, err := eval.SelectCorrect([]models.Model{sign}, val, 16)
	if err != nil {
		return err
	}
	const sticker = 6 // 6×6 sticker on a 16×16 sign

	// White-box sticker: the attacker exploits ∇xL inside its device.
	clear := &attack.ClearOracle{M: sign}
	xadv, err := craftPatch(clear, x, y, sticker, 30)
	if err != nil {
		return err
	}
	fmt.Printf("sticker vs clear device:    %4.1f%% of signs still recognized\n",
		100*eval.RobustAccuracy(sign, xadv, y))

	// Pelta device: the sticker optimizer only gets the upsampled adjoint.
	sm, err := core.NewShieldedModel(sign, 0)
	if err != nil {
		return err
	}
	oracle, err := attack.NewShieldedOracle(sm, 5)
	if err != nil {
		return err
	}
	xadvShielded, err := craftPatch(oracle, x, y, sticker, 30)
	if err != nil {
		return err
	}
	fmt.Printf("sticker vs Pelta device:    %4.1f%% of signs still recognized\n",
		100*eval.RobustAccuracy(sign, xadvShielded, y))
	fmt.Println("\nThe sticker only perturbs a small region, so it needs accurate")
	fmt.Println("gradients; with the shallow gradients locked in the enclave the")
	fmt.Println("compromised node cannot aim it.")
	return nil
}
