// Enclave-resident training (§VI, second case): the defender fine-tunes a
// Pelta-shielded model while the shielded parameters' gradients accumulate
// inside the TEE and cross the world boundary only every few batches.
//
//	go run ./examples/enclavetraining
package main

import (
	"fmt"
	"os"

	"pelta/internal/core"
	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "enclavetraining:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := dataset.SynthCIFAR10(16, 17)
	cfg.Classes = 6
	cfg.TrainN, cfg.ValN = 400, 150
	train, val := dataset.Generate(cfg)

	for _, syncEvery := range []int{1, 4, 16} {
		// Fresh model per setting for a fair comparison.
		m := models.NewViT(models.SmallViT("ViT-tee", cfg.Classes, 16, 4), tensor.NewRNG(1))
		sm, err := core.NewShieldedModel(m, 0)
		if err != nil {
			return err
		}
		trainer, err := core.NewEnclaveTrainer(sm, 2e-3, syncEvery)
		if err != nil {
			return err
		}
		if _, err := trainer.TrainEpochs(train.X, train.Y, 7, 32, 1); err != nil {
			return err
		}
		met := trainer.Enclave().Metrics()
		fmt.Printf("sync every %2d batches: val accuracy %5.1f%%, %3d hidden exports, %5d world switches, %v modelled overhead\n",
			syncEvery, 100*models.Accuracy(m, val.X, val.Y),
			trainer.Exports, met.WorldSwitches, met.SimulatedOverhead)
	}
	fmt.Println("\nLarger sync intervals batch the hidden-gradient traffic (fewer exports,")
	fmt.Println("fewer switches) without touching accuracy — the §VI tuning knob.")
	return nil
}
