// Federated scenario (Fig. 1): a trusted server aggregates updates from
// honest clients while a compromised client probes every broadcast model.
// The run compares the attacker's success with and without Pelta on its
// device.
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"os"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/fl"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "federated:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := dataset.SynthCIFAR10(16, 7)
	cfg.Classes = 6
	cfg.TrainN, cfg.ValN = 900, 200
	train, val := dataset.Generate(cfg)
	shards := train.Shards(3)

	newModel := func(seed int64) models.Model {
		return models.NewViT(models.SmallViT("ViT-fl", cfg.Classes, 16, 4), tensor.NewRNG(seed))
	}
	tc := models.TrainConfig{Epochs: 3, BatchSize: 32, LR: 2e-3, Seed: 1}
	probe := &attack.PGD{Eps: 0.1, Step: 0.0125, Steps: 10}

	for _, shieldOn := range []bool{false, true} {
		fmt.Printf("=== federation with shield=%v ===\n", shieldOn)
		compromised := fl.NewCompromisedClient("mallory", newModel(100), shards[0], tc, probe, 12, shieldOn)
		// The asynchronous round engine: clients train concurrently on a
		// worker pool and the deterministic mode barriers each round, so
		// this run reproduces the synchronous FedAvg result bit-identically
		// while still exercising the async plumbing.
		server := &fl.AsyncServer{
			Global: newModel(1),
			Conns: []fl.Conn{
				fl.Local(compromised),
				fl.Local(fl.NewHonestClient("alice", newModel(2), shards[1], tc)),
				fl.Local(fl.NewHonestClient("bob", newModel(3), shards[2], tc)),
			},
			Config: fl.AsyncConfig{Rounds: 6, Deterministic: true},
			Eval:   func(m models.Model) float64 { return models.Accuracy(m, val.X, val.Y) },
		}
		results, err := server.Run()
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Printf("round %d: global accuracy %.1f%% (merged %d updates)\n", r.Round, 100*r.Accuracy, r.Merged)
			for _, n := range r.Notes {
				fmt.Println("  ", n)
			}
		}
		last := compromised.Outcomes[len(compromised.Outcomes)-1]
		fmt.Printf("attacker's final success rate: %.1f%%\n\n", 100*(1-last.RobustAccuracy))
	}
	fmt.Println("With the shield, the compromised node can no longer complete the")
	fmt.Println("back-propagation chain rule and its crafted samples stop transferring.")
	return nil
}
