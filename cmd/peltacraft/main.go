package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pelta/internal/attack"
	"pelta/internal/core"
	"pelta/internal/dataset"
	"pelta/internal/eval"
	"pelta/internal/fl"
	"pelta/internal/imageio"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peltacraft:", err)
		os.Exit(1)
	}
}

func run() error {
	attackName := flag.String("attack", "pgd", "attack: fgsm, pgd, mim, apgd, cw, square, random")
	shield := flag.Bool("shield", false, "attack the Pelta-shielded model")
	eps := flag.Float64("eps", 0.1, "l∞ budget")
	steps := flag.Int("steps", 20, "iterative steps / queries÷20 for square")
	n := flag.Int("n", 16, "astuteness samples to perturb")
	hw := flag.Int("hw", 16, "image side length")
	ckpt := flag.String("ckpt", "", "model checkpoint to load (and save to, when missing)")
	out := flag.String("out", "", "directory for PPM dumps of the crafted samples")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	// Defender: a small ViT on the synthetic CIFAR-10 stand-in.
	cfg := dataset.SynthCIFAR10(*hw, *seed)
	cfg.Classes = 6
	cfg.TrainN, cfg.ValN = 600, 200
	train, val := dataset.Generate(cfg)
	m := models.NewViT(models.SmallViT("ViT-craft", cfg.Classes, *hw, *hw/4), tensor.NewRNG(*seed))

	if *ckpt != "" {
		if err := fl.LoadModel(*ckpt, m); err == nil {
			fmt.Fprintf(os.Stderr, "loaded checkpoint %s\n", *ckpt)
		} else {
			fmt.Fprintf(os.Stderr, "training fresh model (%v)\n", err)
			if _, err := models.Train(m, train.X, train.Y, models.TrainConfig{Epochs: 6, BatchSize: 32, LR: 2e-3, Seed: *seed}); err != nil {
				return err
			}
			if err := fl.SaveModel(*ckpt, m); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "saved checkpoint %s\n", *ckpt)
		}
	} else if _, err := models.Train(m, train.X, train.Y, models.TrainConfig{Epochs: 6, BatchSize: 32, LR: 2e-3, Seed: *seed}); err != nil {
		return err
	}
	fmt.Printf("clean accuracy: %.1f%%\n", 100*models.Accuracy(m, val.X, val.Y))

	x, y, err := eval.SelectCorrect([]models.Model{m}, val, *n)
	if err != nil {
		return err
	}

	var oracle attack.Oracle = &attack.ClearOracle{M: m}
	if *shield {
		sm, err := core.NewShieldedModel(m, 0)
		if err != nil {
			return err
		}
		so, err := attack.NewShieldedOracle(sm, *seed+100)
		if err != nil {
			return err
		}
		oracle = so
	}

	atk, err := buildAttack(*attackName, float32(*eps), *steps, *seed)
	if err != nil {
		return err
	}
	xadv, err := atk.Perturb(oracle, x, y)
	if err != nil {
		return err
	}
	robust := eval.RobustAccuracy(m, xadv, y)
	fmt.Printf("%s vs %s: robust accuracy %.1f%% (attack success %.1f%%)\n",
		atk.Name(), oracle.Name(), 100*robust, 100*(1-robust))

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		limit := *n
		if limit > 8 {
			limit = 8
		}
		for i := 0; i < limit; i++ {
			if err := imageio.WritePPM(filepath.Join(*out, fmt.Sprintf("clean_%d.ppm", i)), x.Slice(i)); err != nil {
				return err
			}
			if err := imageio.WritePPM(filepath.Join(*out, fmt.Sprintf("adv_%d.ppm", i)), xadv.Slice(i)); err != nil {
				return err
			}
			if err := imageio.WritePGM(filepath.Join(*out, fmt.Sprintf("delta_%d.pgm", i)), tensor.Sub(xadv.Slice(i), x.Slice(i))); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d sample triplets to %s\n", limit, *out)
	}
	return nil
}

func buildAttack(name string, eps float32, steps int, seed int64) (attack.Attack, error) {
	step := eps / 8
	switch name {
	case "fgsm":
		return &attack.FGSM{Eps: eps}, nil
	case "pgd":
		return &attack.PGD{Eps: eps, Step: step, Steps: steps}, nil
	case "mim":
		return &attack.MIM{Eps: eps, Step: step, Steps: steps, Mu: 1}, nil
	case "apgd":
		return &attack.APGD{Eps: eps, Steps: steps, Rho: 0.75, Restarts: 1, Seed: seed}, nil
	case "cw":
		return &attack.CW{Confidence: 0, Step: 0.01, Steps: steps + 10, C: 0.05}, nil
	case "square":
		return &attack.Square{Eps: eps, Queries: steps * 20, Seed: seed}, nil
	case "random":
		return &attack.RandomUniform{Eps: eps, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("unknown attack %q", name)
	}
}
