// Command peltacraft is the attacker's workbench: it trains (or loads) a
// defender, crafts adversarial examples with any of the paper's attacks
// against the clear or Pelta-shielded model, reports astuteness, and dumps
// the samples as PPM images.
//
// Usage:
//
//	peltacraft -attack pgd                         # white-box PGD
//	peltacraft -attack pgd -shield                 # same attack vs Pelta
//	peltacraft -attack square -shield              # black-box (shield can't help)
//	peltacraft -attack cw -ckpt vit.ckpt -out dir  # reuse a checkpoint, dump images
package main
