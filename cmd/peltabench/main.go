package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/eval"
	"pelta/internal/fl"
	"pelta/internal/models"
	"pelta/internal/serve"
	"pelta/internal/tensor"
)

// benchEntry is one machine-readable timing record of a bench stage.
type benchEntry struct {
	Stage   string  `json:"stage"`
	Dataset string  `json:"dataset,omitempty"`
	Seconds float64 `json:"seconds"`
}

// benchLog accumulates stage timings for the -benchjson artifact.
type benchLog struct{ entries []benchEntry }

// add records one stage duration.
func (b *benchLog) add(stage, dataset string, d time.Duration) {
	b.entries = append(b.entries, benchEntry{Stage: stage, Dataset: dataset, Seconds: d.Seconds()})
}

// write dumps the collected timings as an indented JSON array.
func (b *benchLog) write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(b.entries)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peltabench:", err)
		os.Exit(1)
	}
}

type options struct {
	tables    string
	figs      string
	ds        string
	hw        int
	trainN    int
	valN      int
	epochs    int
	evalN     int
	steps     int
	full      bool
	out       string
	seed      int64
	classes   int
	overhead  bool
	workers   int
	benchJSON string
	kernels   bool
	trace     bool
}

func run() error {
	var o options
	flag.StringVar(&o.tables, "table", "", "tables to regenerate: 1,2,3,4 or all")
	flag.StringVar(&o.figs, "fig", "", "figures to regenerate: 3,4 or all")
	flag.StringVar(&o.ds, "dataset", "cifar10", "dataset block: cifar10, cifar100, imagenet, or all")
	flag.IntVar(&o.hw, "hw", 16, "image side length")
	flag.IntVar(&o.trainN, "trainn", 800, "training samples per block")
	flag.IntVar(&o.valN, "valn", 240, "validation samples per block")
	flag.IntVar(&o.epochs, "epochs", 5, "training epochs")
	flag.IntVar(&o.evalN, "n", 32, "astuteness samples (paper: 1000)")
	flag.IntVar(&o.steps, "steps", 10, "iterative attack steps (paper: 20)")
	flag.BoolVar(&o.full, "full", false, "train all six Table III defenders (default: ensemble pair)")
	flag.StringVar(&o.out, "out", "", "directory for Fig. 4 image dumps")
	flag.Int64Var(&o.seed, "seed", 1, "experiment seed")
	flag.IntVar(&o.classes, "classes", 0, "override class count (0 = dataset default, capped at 20 for quick runs)")
	flag.BoolVar(&o.overhead, "overhead", false, "measure the §VI TEE overheads per defender")
	flag.IntVar(&o.workers, "workers", 0, "attack-oracle worker pool size (0 = one per core)")
	flag.StringVar(&o.benchJSON, "benchjson", "", "write stage timings to this JSON file (e.g. BENCH_peltabench.json)")
	flag.BoolVar(&o.kernels, "kernels", false, "time the tensor kernel layer (single-threaded vs pooled) and exit")
	flag.BoolVar(&o.trace, "trace", false, "drive a seeded burst through a fully traced service, print the per-stage latency table, and emit BENCH_trace.json")
	flag.Parse()
	eval.SetOracleWorkers(o.workers)
	bench := &benchLog{}
	defer func() {
		if o.benchJSON != "" {
			if err := bench.write(o.benchJSON); err != nil {
				fmt.Fprintln(os.Stderr, "peltabench: writing bench json:", err)
			}
		}
	}()

	if o.kernels {
		if o.benchJSON == "" {
			o.benchJSON = "BENCH_kernels.json"
		}
		runKernelBench(bench)
		return nil
	}
	if o.trace {
		return runTraceBench(o, bench)
	}

	if o.tables == "" && o.figs == "" {
		o.tables, o.figs = "all", "all"
	}
	want := func(spec, item string) bool {
		return spec == "all" || hasItem(spec, item)
	}

	if want(o.tables, "1") {
		fmt.Println("=== Table I — enclave memory cost (paper-scale configs, ImageNet dims) ===")
		fmt.Print(eval.RenderTable1(eval.Table1()))
		fmt.Println()
	}
	set := eval.DefaultAttackSet()
	set.Steps = o.steps
	set.Seed = o.seed
	if want(o.tables, "2") {
		fmt.Println("=== Table II — attack parameters in use (rescaled; paper used ε=0.031/0.062) ===")
		fmt.Printf("FGSM  ε=%.3f\nPGD   ε=%.3f ε_step=%.4f steps=%d\nMIM   ε=%.3f ε_step=%.4f µ=1.0\n",
			set.Eps, set.Eps, set.EpsStep, set.Steps, set.Eps, set.EpsStep)
		fmt.Printf("APGD  ε=%.3f N_restarts=1 ρ=0.75\nC&W   confidence=0 step=0.010 steps=%d\nSAGA  α_k=0.5 ε_step=%.4f\n\n",
			set.Eps, set.Steps+10, set.EpsStep)
	}
	if want(o.figs, "3") {
		start := time.Now()
		res, err := eval.RunFig3()
		if err != nil {
			return err
		}
		bench.add("fig3", "", time.Since(start))
		fmt.Print(res.Render())
		fmt.Println()
	}

	needBlocks := want(o.tables, "3") || want(o.tables, "4") || want(o.figs, "4") || o.overhead
	if !needBlocks {
		return nil
	}
	for _, name := range datasets(o.ds) {
		start := time.Now()
		blk, err := buildBlock(o, name)
		if err != nil {
			return err
		}
		bench.add("build_block", name, time.Since(start))
		if want(o.tables, "3") {
			start := time.Now()
			tbl := eval.Table3{Dataset: blk.Name}
			for _, m := range blk.Defenders {
				start := time.Now()
				row, err := eval.RunTable3Row(m, blk.Val, o.evalN, set)
				if err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "  [table 3] %s done in %v\n", m.Name(), time.Since(start).Round(time.Second))
				tbl.Rows = append(tbl.Rows, row)
			}
			bench.add("table3", name, time.Since(start))
			fmt.Printf("=== Table III — %s, robust accuracy non-shielded vs shielded ===\n", blk.Name)
			fmt.Print(tbl.Render())
			fmt.Println()
		}
		if want(o.tables, "4") {
			start := time.Now()
			tbl, err := eval.RunTable4(blk.ViT, blk.BiT, blk.Val, o.evalN, set)
			if err != nil {
				return err
			}
			bench.add("table4", name, time.Since(start))
			fmt.Printf("=== Table IV — %s, shielded ensemble vs SAGA ===\n", blk.Name)
			fmt.Print(tbl.Render())
			fmt.Println()
		}
		if o.overhead {
			start := time.Now()
			var rows []*eval.OverheadReport
			for _, m := range blk.Defenders {
				rep, err := eval.MeasureOverhead(m, 3)
				if err != nil {
					return err
				}
				rows = append(rows, rep)
			}
			bench.add("overhead", name, time.Since(start))
			fmt.Printf("=== §VI — TEE overheads per shielded inference (%s) ===\n", blk.Name)
			fmt.Print(eval.RenderOverhead(rows))
			fmt.Println()
		}
		if want(o.figs, "4") {
			start := time.Now()
			res, err := eval.RunFig4(blk.ViT, blk.BiT, blk.Val, set)
			if err != nil {
				return err
			}
			bench.add("fig4", name, time.Since(start))
			fmt.Print(res.Render())
			if o.out != "" {
				dir := o.out + "/" + strings.ToLower(strings.ReplaceAll(blk.Name, "/", "_"))
				if err := res.WriteImages(dir); err != nil {
					return err
				}
				fmt.Printf("images written to %s\n", dir)
			}
			fmt.Println()
		}
	}
	return nil
}

// runTraceBench drives a seeded three-phase burst (calm → 4× surge → calm)
// through an in-process shielded service tracing every request, prints the
// per-route × per-stage latency table, and writes BENCH_trace.json with the
// summary plus every retained span record. The spans are structurally
// validated first — a negative stage duration or a stage sum drifting from
// the end-to-end span fails the stage — which is what the CI trace smoke
// cell gates on. Adversarial probes are FGSM against the served weights, so
// both routes appear in the table; the model is untrained (this stage
// measures serving latency, not accuracy).
func runTraceBench(o options, bench *benchLog) error {
	start := time.Now()
	ds := dataset.SynthCIFAR10(o.hw, o.seed+40)
	ds.TrainN, ds.ValN = 8, 120
	_, val := dataset.Generate(ds)

	base := models.NewViT(models.SmallViT("ViT-L/16", ds.Classes, o.hw, o.hw/4), tensor.NewRNG(o.seed))
	weights := fl.Snapshot(base)
	build := func(i int) (models.Model, error) {
		m := models.NewViT(models.SmallViT("ViT-L/16", ds.Classes, o.hw, o.hw/4), tensor.NewRNG(o.seed+1000+int64(i)))
		if err := fl.Apply(m, weights); err != nil {
			return nil, err
		}
		return m, nil
	}
	pool, err := serve.NewShieldedPool(2, 0, build)
	if err != nil {
		return err
	}
	svc := serve.NewService(pool, serve.Config{
		MaxBatch:   8,
		MaxDelay:   2 * time.Millisecond,
		QueueDepth: 64,
		Trace:      &serve.TraceConfig{Sample: 1.0},
	})
	defer svc.Close()

	items := make([]serve.TrafficItem, 0, val.Len())
	for i := 0; i < val.Len(); i++ {
		items = append(items, serve.TrafficItem{X: val.X.Slice(i), Label: val.Y[i]})
	}
	nAdv := 40
	atk := &attack.FGSM{Eps: 0.06}
	xadv, err := atk.Perturb(attack.NewClearOracle(base), val.X.SliceRange(0, nAdv), val.Y[:nAdv])
	if err != nil {
		return fmt.Errorf("crafting probe traffic: %w", err)
	}
	for i := 0; i < nAdv; i++ {
		items = append(items, serve.TrafficItem{X: xadv.Slice(i), Label: val.Y[i], Adversarial: true})
	}

	const spec = "120:0.25s:0.1,480:0.25s:0.5,120:0.25s:0.1"
	phases, err := serve.ParsePhases(spec)
	if err != nil {
		return err
	}
	rep, err := serve.RunLoadPhases(svc, items, phases, serve.LoadConfig{Seed: o.seed})
	if err != nil {
		return err
	}
	fmt.Print(eval.SummarizeServePhases(rep).Render())

	recs := svc.Tracer().Records()
	if err := eval.ValidateSpans(recs); err != nil {
		return fmt.Errorf("trace validation: %w", err)
	}
	tsum := eval.SummarizeTrace(recs)
	fmt.Print(tsum.Render())
	bench.add("trace", "", time.Since(start))

	out := "BENCH_trace.json"
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{
		"stage":   "trace",
		"phases":  spec,
		"sent":    rep.Total.Sent,
		"served":  rep.Total.Served,
		"shed":    rep.Total.Shed,
		"summary": tsum,
		"spans":   recs,
		"seconds": time.Since(start).Seconds(),
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %d span records to %s\n", len(recs), out)
	return nil
}

// runKernelBench times each hot kernel once single-threaded and once on the
// shared worker pool, logging seconds per call. The benchEntry dataset field
// carries the worker mode so the JSON artifact diffs cleanly across runs.
func runKernelBench(bench *benchLog) {
	rng := tensor.NewRNG(42)
	pool := tensor.NewPool()

	a := rng.Uniform(-1, 1, 256, 256)
	bm := rng.Uniform(-1, 1, 256, 256)
	mm := tensor.New(256, 256)

	x := rng.Uniform(-1, 1, 8, 16, 32, 32)
	w := rng.Uniform(-1, 1, 32, 16, 3, 3)
	bias := rng.Uniform(-1, 1, 32)
	oh := tensor.ConvOut(32, 3, 1, 1)
	y := tensor.New(8, 32, oh, oh)
	gy := rng.Uniform(-1, 1, 8, 32, oh, oh)
	gx, gw, gb := tensor.New(x.Shape()...), tensor.New(w.Shape()...), tensor.New(32)

	xt := rng.Uniform(-1, 1, 8, 16, 16, 16)
	wt := rng.Uniform(-1, 1, 16, 3, 4, 4)
	up := tensor.New(8, 3, (16-1)*2+4, (16-1)*2+4)

	q := rng.Uniform(-1, 1, 16, 65, 48)
	k := rng.Uniform(-1, 1, 16, 65, 48)
	v := rng.Uniform(-1, 1, 16, 65, 48)
	attn := tensor.New(16, 65, 48)
	gq, gk, gv := tensor.New(16, 65, 48), tensor.New(16, 65, 48), tensor.New(16, 65, 48)
	gattn := rng.Uniform(-1, 1, 16, 65, 48)

	kernels := []struct {
		stage string
		run   func()
	}{
		{"kernel/matmul_256", func() { tensor.MatMulInto(mm, a, bm) }},
		{"kernel/conv2d_fwd", func() { tensor.Conv2dInto(pool, y, x, w, bias, 1, 1) }},
		{"kernel/conv2d_bwd", func() {
			gb.Zero()
			tensor.Conv2dBackwardInto(pool, gx, gw, gb, x, w, gy, 1, 1)
		}},
		{"kernel/convtranspose2d", func() { tensor.ConvTranspose2dInto(pool, up, xt, wt, 2, 0) }},
		{"kernel/attention_fused_fwd", func() { tensor.FusedAttentionInto(pool, attn, q, k, v, 0.125) }},
		{"kernel/attention_fused_bwd", func() {
			gk.Zero()
			gv.Zero()
			tensor.FusedAttentionBackwardInto(pool, gq, gk, gv, q, k, v, gattn, 0.125)
		}},
	}
	const reps = 5
	for _, mode := range []struct {
		label   string
		workers int
	}{{"workers=1", 1}, {"workers=auto", 0}} {
		prev := tensor.SetKernelWorkers(mode.workers)
		for _, kb := range kernels {
			kb.run() // warm the pool and page in the operands
			start := time.Now()
			for i := 0; i < reps; i++ {
				kb.run()
			}
			per := time.Since(start) / reps
			bench.add(kb.stage, mode.label, per)
			fmt.Printf("%-28s %-14s %12v/op\n", kb.stage, mode.label, per.Round(time.Microsecond))
		}
		tensor.SetKernelWorkers(prev)
	}
}

func hasItem(spec, item string) bool {
	for _, s := range strings.Split(spec, ",") {
		if strings.TrimSpace(s) == item {
			return true
		}
	}
	return false
}

func datasets(spec string) []string {
	if spec == "all" {
		return []string{"cifar10", "cifar100", "imagenet"}
	}
	return strings.Split(spec, ",")
}

func buildBlock(o options, name string) (*eval.Block, error) {
	var ds dataset.Config
	switch strings.TrimSpace(name) {
	case "cifar10":
		ds = dataset.SynthCIFAR10(o.hw, o.seed+10)
	case "cifar100":
		ds = dataset.SynthCIFAR100(o.hw, o.seed+20)
	case "imagenet":
		ds = dataset.SynthImageNet(o.hw, o.seed+30)
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
	if o.classes > 0 {
		ds.Classes = o.classes
	} else if ds.Classes > 20 {
		ds.Classes = 20 // quick-run cap; raise with -classes
	}
	ds.TrainN, ds.ValN = o.trainN, o.valN
	cfg := eval.BlockConfig{
		Dataset:      ds,
		Train:        models.TrainConfig{Epochs: o.epochs, BatchSize: 32, LR: 2e-3, Seed: o.seed, Verbose: true},
		EvalN:        o.evalN,
		AllDefenders: o.full,
		Seed:         o.seed,
	}
	fmt.Fprintf(os.Stderr, "[peltabench] training %s block (hw=%d classes=%d train=%d)...\n",
		ds.Name, ds.HW, ds.Classes, ds.TrainN)
	start := time.Now()
	blk, err := eval.BuildBlock(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "[peltabench] block ready in %v\n", time.Since(start).Round(time.Second))
	return blk, nil
}
