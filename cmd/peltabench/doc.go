// Command peltabench regenerates the paper's tables and figures.
//
// Usage:
//
//	peltabench -table all -fig all            # everything, quick scale
//	peltabench -table 3 -dataset cifar100     # one table, one dataset
//	peltabench -table 4 -full -n 200 -hw 32   # larger sweep
//	peltabench -fig 4 -out ./fig4             # dump the Fig. 4 images
//
// Quick scale (default) trains scaled-down defenders on 16×16 synthetic
// data in about a minute per dataset block; -hw/-trainn/-epochs/-n scale
// the experiment up toward the paper's protocol (1000 samples).
package main
