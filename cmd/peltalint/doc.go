// Command peltalint enforces the repo's determinism, clock, pool and
// shield-confidentiality invariants at compile time. It type-checks the
// named packages (default ./...) with the standard library's go/parser +
// go/types — no external analysis framework — and reports violations of
// ten repo-specific rules.
//
// Six are syntactic, per-statement checks:
//
//	noclock      wall-clock reads (time.Now/Since/Sleep/...) in the
//	             clock-scoped packages (serve, detect, obs, fl, tee)
//	seededrand   top-level math/rand functions anywhere under internal/
//	maporder     map iteration feeding ordered output without a sort
//	intoerr      discarded error results from *Into/*Raw kernel calls
//	poolsafety   pool buffers acquired but never released, and Put calls
//	             that would recycle shielded enclave memory
//	parallelsum  captured-float += inside parallelFor closures
//
// Four are flow-sensitive, running on internal/lint's CFG/dataflow
// engine with interprocedural function summaries:
//
//	shieldtaint    shield-confidential data (Enclave.Load results,
//	               enclave Tokens, shield-marked buffers) reaching an
//	               attacker-visible sink: HTTP responses, NDJSON/gob
//	               encoders, obs telemetry, fmt/log output, or Pool.Put
//	               without an intervening Scrub
//	errpath        an error checked on one CFG path but dropped on
//	               another
//	lockorder      AB/BA mutex acquisition cycles across serve, fl and
//	               detect, including through callees
//	clockcomplete  exported constructors of time.Time-holding types in
//	               clock-scoped packages that offer no injectable clock
//
// A legitimate violation is silenced in place with a reasoned directive on
// or directly above the offending line (or anywhere on a multi-line
// statement):
//
//	//pelta:allow noclock realClock is the production Clock implementation
//
// A directive without a reason (or naming an unknown rule) is itself a
// diagnostic, so every opt-out stays explicit and auditable. For
// shieldtaint the directive doubles as the declassification marker: every
// deliberate export of shielded data carries its justification in source.
//
// Exit status: 0 clean, 1 diagnostics found, 2 load failure. Findings are
// sorted by (file, line, column, rule) so output is byte-stable. The
// -json flag emits the report as a JSON array for CI artifacts;
// -fmt=github emits ::error workflow annotations that surface inline on
// pull-request diffs; -rules runs a subset. The CI workflow runs
// peltalint after go vet and fails on any diagnostic.
package main
