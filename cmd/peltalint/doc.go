// Command peltalint enforces the repo's determinism, clock and pool
// invariants at compile time. It type-checks the named packages (default
// ./...) with the standard library's go/parser + go/types — no external
// analysis framework — and reports violations of six repo-specific rules:
//
//	noclock      wall-clock reads (time.Now/Since/Sleep/...) in the
//	             clock-scoped packages (serve, detect, obs, fl, tee)
//	seededrand   top-level math/rand functions anywhere under internal/
//	maporder     map iteration feeding ordered output without a sort
//	intoerr      discarded error results from *Into/*Raw kernel calls
//	poolsafety   pool buffers acquired but never released, and Put calls
//	             that would recycle shielded enclave memory
//	parallelsum  captured-float += inside parallelFor closures
//
// A legitimate violation is silenced in place with a reasoned directive on
// or directly above the offending line:
//
//	//pelta:allow noclock realClock is the production Clock implementation
//
// A directive without a reason (or naming an unknown rule) is itself a
// diagnostic, so every opt-out stays explicit and auditable.
//
// Exit status: 0 clean, 1 diagnostics found, 2 load failure. The -json
// flag emits the report as a JSON array for CI artifacts; -rules runs a
// subset. The CI workflow runs peltalint after go vet and fails on any
// diagnostic.
package main
