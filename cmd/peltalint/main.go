package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pelta/internal/lint"
)

// jsonDiag is the machine-readable report row (-json mode).
type jsonDiag struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as a JSON array on stdout (for CI artifacts)")
	format := flag.String("fmt", "text", "output format: text (file:line:col lines) or github (::error workflow annotations)")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all of "+strings.Join(lint.RuleNames, ",")+")")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: peltalint [-json] [-fmt text|github] [-rules r1,r2] [packages]\n\n"+
			"Checks the repo's determinism, clock, pool and shield-confidentiality\n"+
			"invariants, including the flow-sensitive rules (shieldtaint, errpath,\n"+
			"lockorder, clockcomplete) built on the CFG/dataflow engine.\n"+
			"Exit status: 0 clean, 1 diagnostics found, 2 load failure.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *format != "text" && *format != "github" {
		fmt.Fprintf(os.Stderr, "peltalint: unknown -fmt %q (known: text, github)\n", *format)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := &lint.Config{}
	if *rules != "" {
		cfg.Rules = map[string]bool{}
		known := map[string]bool{}
		for _, r := range lint.RuleNames {
			known[r] = true
		}
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if !known[r] {
				fmt.Fprintf(os.Stderr, "peltalint: unknown rule %q (known: %s)\n", r, strings.Join(lint.RuleNames, ", "))
				os.Exit(2)
			}
			cfg.Rules[r] = true
		}
	}

	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "peltalint:", err)
		os.Exit(2)
	}
	// One CheckAll over every loaded package: the interprocedural rules
	// (shieldtaint, lockorder) see cross-package summaries, and the
	// output is globally (file, line, col, rule)-sorted.
	all := lint.CheckAll(pkgs, cfg)

	switch {
	case *jsonOut:
		rows := make([]jsonDiag, 0, len(all))
		for _, d := range all {
			rows = append(rows, jsonDiag{Rule: d.Rule, File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, "peltalint:", err)
			os.Exit(2)
		}
	case *format == "github":
		// GitHub workflow-command annotations: findings surface inline on
		// the PR diff. Message text must keep to one line, and the file
		// path must be workspace-relative or the annotation floats free of
		// the diff.
		wd, _ := os.Getwd()
		for _, d := range all {
			msg := strings.ReplaceAll(d.Message, "\n", " ")
			file := d.Pos.Filename
			if wd != "" {
				if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			fmt.Printf("::error file=%s,line=%d,col=%d,title=peltalint %s::%s\n",
				file, d.Pos.Line, d.Pos.Column, d.Rule, msg)
		}
	default:
		for _, d := range all {
			fmt.Println(d)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "peltalint: %d finding(s) in %d package(s)\n", len(all), len(pkgs))
		os.Exit(1)
	}
}
