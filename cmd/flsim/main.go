// Command flsim runs the Fig. 1 federated-learning scenario end to end:
// a trusted FedAvg server, honest clients, and one compromised client that
// probes every broadcast model for adversarial examples — with or without
// the Pelta shield on the compromised device.
//
// Usage:
//
//	flsim -clients 4 -rounds 3                 # unshielded baseline
//	flsim -clients 4 -rounds 3 -shield         # Pelta on the attacker's device
//	flsim -tcp                                 # clients over loopback TCP
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/fl"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flsim:", err)
		os.Exit(1)
	}
}

func run() error {
	clients := flag.Int("clients", 4, "number of honest clients (plus one compromised)")
	rounds := flag.Int("rounds", 6, "federation rounds")
	shield := flag.Bool("shield", false, "enable Pelta on the compromised device")
	useTCP := flag.Bool("tcp", false, "attach clients over loopback TCP instead of in-process")
	hw := flag.Int("hw", 16, "image side length")
	epochs := flag.Int("epochs", 2, "local epochs per round")
	probeN := flag.Int("probe", 16, "samples the compromised client perturbs per round")
	steps := flag.Int("steps", 10, "PGD steps of the probe")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	cfg := dataset.SynthCIFAR10(*hw, *seed)
	cfg.Classes = 6
	cfg.TrainN, cfg.ValN = 200*(*clients+1), 200
	train, val := dataset.Generate(cfg)
	shards := train.Shards(*clients + 1)

	newModel := func(s int64) models.Model {
		return models.NewViT(models.SmallViT("ViT-L/16", cfg.Classes, *hw, *hw/4), tensor.NewRNG(s))
	}
	tc := models.TrainConfig{Epochs: *epochs, BatchSize: 32, LR: 2e-3, Seed: *seed}
	probe := &attack.PGD{Eps: 0.1, Step: 0.0125, Steps: *steps}

	compromised := fl.NewCompromisedClient("mallory", newModel(*seed+100), shards[0], tc, probe, *probeN, *shield)
	peers := []fl.Client{compromised}
	for i := 1; i <= *clients; i++ {
		peers = append(peers, fl.NewHonestClient(fmt.Sprintf("client-%d", i), newModel(*seed+int64(i)), shards[i], tc))
	}

	conns, cleanup, err := connect(peers, *useTCP)
	if err != nil {
		return err
	}
	defer cleanup()

	server := &fl.Server{
		Global:   newModel(*seed),
		Conns:    conns,
		Parallel: true,
		Eval: func(m models.Model) float64 {
			return models.Accuracy(m, val.X, val.Y)
		},
	}
	fmt.Printf("federation: 1 server, %d honest clients, 1 compromised (shield=%v, transport=%s)\n",
		*clients, *shield, map[bool]string{true: "tcp", false: "local"}[*useTCP])
	results, err := server.Run(*rounds)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("round %d: global accuracy %.1f%%\n", r.Round, 100*r.Accuracy)
		for _, n := range r.Notes {
			fmt.Println("  ", n)
		}
	}
	last := compromised.Outcomes[len(compromised.Outcomes)-1]
	fmt.Printf("\nfinal probe: robust accuracy %.1f%% (%d/%d crafted samples failed)\n",
		100*last.RobustAccuracy, last.Samples-last.Fooled, last.Samples)
	if *shield {
		fmt.Println("Pelta shielded the device: the white-box probe was reduced to upsampling the adjoint.")
	} else {
		fmt.Println("No shield: the compromised client exploited the full white-box.")
	}
	return nil
}

// connect attaches the clients either in-process or via loopback TCP.
func connect(clients []fl.Client, useTCP bool) ([]fl.Conn, func(), error) {
	if !useTCP {
		conns := make([]fl.Conn, len(clients))
		for i, c := range clients {
			conns[i] = fl.Local(c)
		}
		return conns, func() {}, nil
	}
	var conns []fl.Conn
	var listeners []net.Listener
	cleanup := func() {
		for _, c := range conns {
			_ = c.Close()
		}
		for _, l := range listeners {
			_ = l.Close()
		}
	}
	for _, c := range clients {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("listening for %s: %w", c.ID(), err)
		}
		listeners = append(listeners, lis)
		go func(c fl.Client) { _ = fl.ServeClient(lis, c) }(c)
		conn, err := fl.Dial(lis.Addr().String(), c.ID())
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		conns = append(conns, conn)
	}
	return conns, cleanup, nil
}
