package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"pelta/internal/dataset"
	"pelta/internal/eval"
	"pelta/internal/fl"
	"pelta/internal/models"
	"pelta/internal/obs"
	"pelta/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flsim:", err)
		os.Exit(1)
	}
}

type options struct {
	// Single-run mode.
	clients int
	rounds  int
	shield  bool
	useTCP  bool
	hw      int
	epochs  int
	probeN  int
	steps   int
	seed    int64

	// Engine knobs.
	workers       int
	quorum        int
	deterministic bool
	defense       string
	save          string

	// Sweep mode.
	sweep        bool
	trainN       int
	valN         int
	classes      int
	sweepC       string
	sweepSkew    string
	sweepShield  string
	sweepAttack  string
	sweepPoison  string
	sweepPoisons string
	sweepDefense string
	out          string
	summary      bool

	// Summarize mode.
	summarize string

	benchJSON string
	trace     string
}

func run() error {
	var o options
	flag.IntVar(&o.clients, "clients", 4, "number of honest clients (plus one compromised)")
	flag.IntVar(&o.rounds, "rounds", 6, "federation rounds (aggregations)")
	flag.BoolVar(&o.shield, "shield", false, "enable Pelta on the compromised device")
	flag.BoolVar(&o.useTCP, "tcp", false, "attach clients over loopback TCP instead of in-process")
	flag.IntVar(&o.hw, "hw", 16, "image side length")
	flag.IntVar(&o.epochs, "epochs", 2, "local epochs per round")
	flag.IntVar(&o.probeN, "probe", 16, "samples the compromised client perturbs per round")
	flag.IntVar(&o.steps, "steps", 10, "iterative steps of the probe attack")
	flag.Int64Var(&o.seed, "seed", 1, "experiment seed")
	flag.IntVar(&o.workers, "workers", 0, "concurrent client updates (0 = one per client)")
	flag.IntVar(&o.quorum, "quorum", 0, "updates that close an async round (0 = all sampled)")
	flag.BoolVar(&o.deterministic, "deterministic", false, "barrier each round for bit-reproducible FedAvg")
	flag.StringVar(&o.defense, "defense", "fedavg", "aggregation rule: fedavg, krum, multikrum, trimmed-mean, median or normclip")
	flag.StringVar(&o.save, "save", "", "single run: save the final global model to this checkpoint, stamped with the defense that trained it")
	flag.BoolVar(&o.sweep, "sweep", false, "run the scenario matrix instead of a single federation")
	flag.IntVar(&o.trainN, "trainn", 0, "sweep: training samples per cell (0 = 30·clients)")
	flag.IntVar(&o.valN, "valn", 64, "sweep: validation samples per cell")
	flag.IntVar(&o.classes, "classes", 4, "sweep: label-space size per cell")
	flag.StringVar(&o.sweepC, "sweep.clients", "2,4,8", "sweep axis: fleet sizes")
	flag.StringVar(&o.sweepSkew, "sweep.skews", "0,0.8", "sweep axis: non-IID label skews in [0,1]")
	flag.StringVar(&o.sweepShield, "sweep.shields", "both", "sweep axis: shield settings (on, off or both)")
	flag.StringVar(&o.sweepAttack, "sweep.attacks", "fgsm,pgd,apgd,saga", "sweep axis: probe attacks (none,fgsm,pgd,apgd,saga)")
	flag.StringVar(&o.sweepPoison, "sweep.poison", "0", "sweep axis: poisoning fractions in [0,1] (shard fraction for label-flip, fleet fraction for the update-space strategies)")
	flag.StringVar(&o.sweepPoisons, "sweep.poisons", "label-flip", "sweep axis: poison strategies (label-flip, sign-flip, model-replacement)")
	flag.StringVar(&o.sweepDefense, "sweep.defenses", "fedavg", "sweep axis: aggregation defenses (fedavg, krum, multikrum, trimmed-mean, median, normclip)")
	flag.StringVar(&o.out, "out", "", "write one JSON row per sweep cell to this file (NDJSON)")
	flag.BoolVar(&o.summary, "summary", true, "print the eval summary after a sweep")
	flag.StringVar(&o.summarize, "summarize", "", "summarize an existing sweep NDJSON file and exit")
	flag.StringVar(&o.benchJSON, "benchjson", "", "write machine-readable timing to this JSON file (e.g. BENCH_flsim.json)")
	flag.StringVar(&o.trace, "trace", "", "single run: write per-round phase spans (train/transport/aggregate/broadcast) as NDJSON to this file")
	flag.Parse()

	switch {
	case o.summarize != "":
		return summarize(o.summarize)
	case o.sweep:
		return runSweep(o)
	default:
		return runSingle(o)
	}
}

// summarize renders the eval summary of a previously written sweep file,
// or — when the rows are per-round phase spans from -trace — the
// round-phase breakdown line.
func summarize(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if isRoundSpanFile(data) {
		spans, err := obs.ReadRoundSpans(bytes.NewReader(data))
		if err != nil {
			return err
		}
		fmt.Println(eval.SummarizeRoundSpans(spans))
		return nil
	}
	rows, err := eval.ReadSweepRows(bytes.NewReader(data))
	if err != nil {
		return err
	}
	fmt.Print(eval.SummarizeSweep(rows).Render())
	return nil
}

// isRoundSpanFile sniffs whether an NDJSON file holds obs.RoundSpan rows
// (written by -trace) rather than sweep rows: the first row decides.
func isRoundSpanFile(data []byte) bool {
	line := data
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line = data[:i]
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(line, &probe); err != nil {
		return false
	}
	_, ok := probe["train_ns"]
	return ok
}

// runSweep executes the scenario matrix and streams NDJSON rows.
func runSweep(o options) error {
	shields, err := parseShields(o.sweepShield)
	if err != nil {
		return err
	}
	clients, err := parseInts(o.sweepC)
	if err != nil {
		return fmt.Errorf("-sweep.clients: %w", err)
	}
	skews, err := parseFloats(o.sweepSkew)
	if err != nil {
		return fmt.Errorf("-sweep.skews: %w", err)
	}
	poison, err := parseFloats(o.sweepPoison)
	if err != nil {
		return fmt.Errorf("-sweep.poison: %w", err)
	}
	var attacks []string
	for _, a := range strings.Split(o.sweepAttack, ",") {
		a = strings.TrimSpace(a)
		// Fail fast on a typo instead of aborting mid-sweep after burning
		// compute on the cells before it.
		if a != "none" {
			if _, err := fl.NewProbe(a, 0.1, 0.0125, 1, 1, nil); err != nil {
				return fmt.Errorf("-sweep.attacks: %w", err)
			}
		}
		attacks = append(attacks, a)
	}
	var poisons []string
	for _, p := range strings.Split(o.sweepPoisons, ",") {
		p = strings.TrimSpace(p)
		if err := fl.ValidPoison(p); err != nil {
			return fmt.Errorf("-sweep.poisons: %w", err)
		}
		poisons = append(poisons, p)
	}
	var defenses []string
	for _, d := range strings.Split(o.sweepDefense, ",") {
		d = strings.TrimSpace(d)
		if _, err := fl.NewAggregator(d); err != nil {
			return fmt.Errorf("-sweep.defenses: %w", err)
		}
		defenses = append(defenses, d)
	}
	spec := fl.SweepSpec{
		Clients:       clients,
		Skews:         skews,
		Shields:       shields,
		Attacks:       attacks,
		PoisonFracs:   poison,
		Poisons:       poisons,
		Defenses:      defenses,
		Rounds:        o.rounds,
		HW:            o.hw,
		TrainN:        o.trainN,
		ValN:          o.valN,
		Classes:       o.classes,
		Epochs:        o.epochs,
		ProbeN:        o.probeN,
		Steps:         o.steps,
		Workers:       o.workers,
		Quorum:        o.quorum,
		Deterministic: o.deterministic,
		Seed:          o.seed,
	}

	// Rows go to -out when given, else to stdout; the human-readable parts
	// then move to stderr so `flsim -sweep > sweep.json` stays parseable.
	rowDst, summaryDst := os.Stdout, os.Stdout
	var outFile *os.File
	if o.out != "" {
		if outFile, err = os.Create(o.out); err != nil {
			return err
		}
		rowDst = outFile
	} else {
		summaryDst = os.Stderr
	}
	enc := json.NewEncoder(rowDst)
	var encErr error
	cells := spec.Cells()
	fmt.Fprintf(os.Stderr, "[flsim] sweeping %d cells...\n", len(cells))
	start := time.Now()
	rows, err := fl.RunSweep(spec, func(row fl.SweepRow) {
		if err := enc.Encode(row); err != nil && encErr == nil {
			encErr = err
		}
	})
	if outFile != nil {
		if cerr := outFile.Close(); cerr != nil && encErr == nil {
			encErr = cerr
		}
	}
	if err != nil {
		return err
	}
	if encErr != nil {
		return fmt.Errorf("writing sweep rows: %w", encErr)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "[flsim] %d cells in %v\n", len(rows), elapsed.Round(time.Millisecond))
	if o.summary {
		fmt.Fprint(summaryDst, eval.SummarizeSweep(rows).Render())
	}
	if o.benchJSON != "" {
		return writeBench(o.benchJSON, map[string]any{
			"mode":          "sweep",
			"cells":         len(rows),
			"rounds":        o.rounds,
			"seconds":       elapsed.Seconds(),
			"cells_per_sec": float64(len(rows)) / elapsed.Seconds(),
		})
	}
	return nil
}

// runSingle runs the original Fig. 1 scenario on the async engine.
func runSingle(o options) error {
	cfg := dataset.SynthCIFAR10(o.hw, o.seed)
	cfg.Classes = 6
	cfg.TrainN, cfg.ValN = 200*(o.clients+1), 200
	train, val := dataset.Generate(cfg)
	shards := train.Shards(o.clients + 1)

	newModel := func(s int64) models.Model {
		return models.NewViT(models.SmallViT("ViT-L/16", cfg.Classes, o.hw, o.hw/4), tensor.NewRNG(s))
	}
	tc := models.TrainConfig{Epochs: o.epochs, BatchSize: 32, LR: 2e-3, Seed: o.seed}
	probe, err := fl.NewProbe("pgd", 0.1, 0.0125, o.steps, o.seed, nil)
	if err != nil {
		return err
	}

	compromised := fl.NewCompromisedClient("mallory", newModel(o.seed+100), shards[0], tc, probe, o.probeN, o.shield)
	peers := []fl.Client{compromised}
	for i := 1; i <= o.clients; i++ {
		peers = append(peers, fl.NewHonestClient(fmt.Sprintf("client-%d", i), newModel(o.seed+int64(i)), shards[i], tc))
	}

	agg, err := fl.NewAggregator(o.defense)
	if err != nil {
		return fmt.Errorf("-defense: %w", err)
	}
	conns, cleanup, err := connect(peers, o.useTCP)
	if err != nil {
		return err
	}
	defer cleanup()

	server := &fl.AsyncServer{
		Global: newModel(o.seed),
		Conns:  conns,
		Config: fl.AsyncConfig{
			Rounds:        o.rounds,
			Workers:       o.workers,
			Quorum:        o.quorum,
			Deterministic: o.deterministic,
			Agg:           agg,
		},
		Eval: func(m models.Model) float64 {
			return models.Accuracy(m, val.X, val.Y)
		},
	}
	fmt.Printf("federation: 1 server, %d honest clients, 1 compromised (shield=%v, transport=%s, deterministic=%v, defense=%s)\n",
		o.clients, o.shield, map[bool]string{true: "tcp", false: "local"}[o.useTCP], o.deterministic, agg.Name())
	start := time.Now()
	results, err := server.Run()
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	for _, r := range results {
		fmt.Printf("round %d: global accuracy %.1f%% (merged %d, stale %d, dropped %d)\n",
			r.Round, 100*r.Accuracy, r.Merged, r.StaleMerged, r.Dropped)
		for _, n := range r.Notes {
			fmt.Println("  ", n)
		}
	}
	if o.trace != "" {
		spans := fl.RoundSpans(results)
		f, err := os.Create(o.trace)
		if err != nil {
			return err
		}
		if err := obs.WriteRoundSpans(f, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println(eval.SummarizeRoundSpans(spans))
		fmt.Printf("wrote %d round spans to %s\n", len(spans), o.trace)
	}
	if o.save != "" {
		// Stamp which defense trained the snapshot, so cmd/peltaserve warm
		// starts can report the served model's provenance.
		meta := fl.CheckpointMeta{Aggregator: agg.Name(), Rounds: len(results), Seed: o.seed}
		if err := fl.SaveCheckpoint(o.save, fl.Snapshot(server.Global), meta); err != nil {
			return err
		}
		fmt.Printf("saved %s (defense=%s, rounds=%d, seed=%d)\n", o.save, meta.Aggregator, meta.Rounds, meta.Seed)
	}
	if o.benchJSON != "" {
		if err := writeBench(o.benchJSON, map[string]any{
			"mode":           "single",
			"clients":        o.clients + 1,
			"rounds":         len(results),
			"defense":        agg.Name(),
			"seconds":        elapsed.Seconds(),
			"rounds_per_sec": float64(len(results)) / elapsed.Seconds(),
		}); err != nil {
			return err
		}
	}
	if len(compromised.Outcomes) == 0 {
		// Possible when the async engine dropped the compromised client's
		// every update (the sync server would have errored instead).
		fmt.Println("\nno probe completed: the compromised client never finished a round")
		return nil
	}
	last := compromised.Outcomes[len(compromised.Outcomes)-1]
	fmt.Printf("\nfinal probe: robust accuracy %.1f%% (%d/%d crafted samples failed)\n",
		100*last.RobustAccuracy, last.Samples-last.Fooled, last.Samples)
	if o.shield {
		fmt.Println("Pelta shielded the device: the white-box probe was reduced to upsampling the adjoint.")
	} else {
		fmt.Println("No shield: the compromised client exploited the full white-box.")
	}
	return nil
}

// writeBench dumps one machine-readable timing record, keeping the perf
// trajectory trackable across commits (see CI's BENCH_*.json artifacts).
func writeBench(path string, rec map[string]any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

func parseInts(spec string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(spec string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseShields(spec string) ([]bool, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "both", "off,on", "on,off", "false,true", "true,false":
		return []bool{false, true}, nil
	case "on", "true":
		return []bool{true}, nil
	case "off", "false":
		return []bool{false}, nil
	default:
		return nil, fmt.Errorf("-sweep.shields: want on, off or both, got %q", spec)
	}
}

// connect attaches the clients either in-process or via loopback TCP.
func connect(clients []fl.Client, useTCP bool) ([]fl.Conn, func(), error) {
	if !useTCP {
		conns := make([]fl.Conn, len(clients))
		for i, c := range clients {
			conns[i] = fl.Local(c)
		}
		return conns, func() {}, nil
	}
	var conns []fl.Conn
	var listeners []net.Listener
	cleanup := func() {
		for _, c := range conns {
			_ = c.Close()
		}
		for _, l := range listeners {
			_ = l.Close()
		}
	}
	for _, c := range clients {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("listening for %s: %w", c.ID(), err)
		}
		listeners = append(listeners, lis)
		go func(c fl.Client) { _ = fl.ServeClient(lis, c) }(c)
		conn, err := fl.Dial(lis.Addr().String(), c.ID())
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		conns = append(conns, conn)
	}
	return conns, cleanup, nil
}
