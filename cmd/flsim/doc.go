// Command flsim simulates federated learning under the paper's threat
// model, either as a single Fig. 1 federation or as a scenario sweep over
// the whole threat matrix. Both modes run on the asynchronous round engine
// of internal/fl: clients train concurrently on a worker pool, the server
// samples a cohort per round, and a staleness-aware aggregator merges
// updates as they arrive (pass -deterministic to barrier rounds and
// reproduce the synchronous FedAvg result bit-identically).
//
// Single run:
//
//	flsim -clients 4 -rounds 3                 # unshielded baseline
//	flsim -clients 4 -rounds 3 -shield         # Pelta on the attacker's device
//	flsim -tcp                                 # clients over loopback TCP
//	flsim -quorum 3 -workers 4                 # async: close rounds at 3 updates
//	flsim -defense multikrum -save m.ckpt      # robust aggregation; checkpoint is
//	                                           # stamped with the defense for
//	                                           # cmd/peltaserve warm starts
//
// Scenario sweep — the cross product of {fleet size × non-IID shard skew ×
// shield on/off × probe attack × poisoning fraction × poison strategy ×
// aggregation defense}, one JSON row per cell (NDJSON), summarized through
// internal/eval:
//
//	flsim -sweep -out sweep.json               # default 2,4,8 × skew × attacks matrix
//	flsim -sweep -sweep.clients 8,16 -sweep.attacks pgd,saga -sweep.poison 0,0.25
//	flsim -sweep -sweep.attacks none -sweep.poison 0,0.25 \
//	      -sweep.poisons label-flip,sign-flip,model-replacement \
//	      -sweep.defenses fedavg,krum,multikrum,trimmed-mean,median,normclip
//	flsim -summarize sweep.json                # re-render the summary of a past sweep
//
// For label-flip cells the poisoning fraction is the poisoned share of the
// single poisoner's shard; for the update-space sign-flip and
// model-replacement strategies it is the share of the fleet compromised.
// The summary includes a defense × poisoning robustness table (mean final
// accuracy and % of same-defense clean accuracy).
//
// A row records the cell's configuration plus outcome and engine telemetry:
// final_accuracy, robust_accuracy/fooled from the compromised client's last
// probe, poison_effective, bandwidth (down_bytes/up_bytes), wall time,
// rounds_per_sec, and the aggregator's merged/stale_merged/duplicates/
// rejected/drops counters. -benchjson additionally writes a BENCH_*.json
// timing artifact for the perf trajectory.
package main
