// Command peltaserve serves shielded inference over HTTP and load-tests it.
//
// The binary wraps internal/serve around a (optionally checkpoint-warmed)
// ViT defender: -replicas independent Pelta-shielded replicas behind the
// micro-batching scheduler (-max-batch/-max-delay/-queue), with -shield
// selecting shielded or clear replicas.
//
// The adaptive control plane is opt-in: -max-replicas enables the replica
// autoscaler (the pool is built at the upper bound, -min-replicas workers
// start, and the decision loop scales on queue depth and the windowed p95
// against -slo-p95); -admit-rate enables weighted-fair admission, with
// -route-weights splitting the rate across routes (e.g. "benign=8,adv=1"
// confines an adversarial probe flood to its own token bucket). With both
// flags unset the deployment is the static scheduler of earlier releases.
//
// Serving mode (default) listens on -addr:
//
//	POST /query   — NDJSON, one {"x":[...],"deadline_ms":n} per line;
//	                one {"class":c,"ms":t,"batch":b} per line back
//	                (?logits=1 echoes logit rows)
//	GET  /metrics — per-route counters and p50/p95/p99 latency
//	GET  /healthz — liveness
//
// Load-generator mode (-loadgen) skips HTTP and drives the service
// in-process with mixed traffic — benign validation samples plus FGSM/PGD
// probes crafted against the same weights (-adv-frac, -attack) — at an
// open-loop arrival rate (-rate) for -n requests, then prints the serving
// report: throughput, exact latency quantiles, per-route shed counts,
// benign accuracy and robust accuracy under attack traffic ("n/a" when a
// stream served nothing). -phases replaces the fixed rate with a burst
// trace ("rate:dur:advfrac,..." steps) reported per phase and per route —
// the harness behind the CI autoscale smoke cell and the README's
// static-vs-autoscaled table. -benchjson dumps the same numbers
// machine-readably for the CI BENCH_*.json artifacts.
//
// Weights warm-start from an internal/fl checkpoint (-checkpoint) written
// by cmd/flsim or fl.SaveCheckpoint; a stamped checkpoint's provenance
// (which aggregation defense trained the served model, over how many
// federation rounds) is reported on startup. Without one, the defender is
// fitted in-process for -epochs on the synthetic train split.
package main
