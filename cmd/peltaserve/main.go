package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"pelta/internal/attack"
	"pelta/internal/core"
	"pelta/internal/dataset"
	"pelta/internal/detect"
	"pelta/internal/eval"
	"pelta/internal/fl"
	"pelta/internal/models"
	"pelta/internal/serve"
	"pelta/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peltaserve:", err)
		os.Exit(1)
	}
}

type options struct {
	// Service knobs.
	replicas int
	maxBatch int
	maxDelay time.Duration
	queue    int
	shield   bool
	addr     string

	// Control plane.
	minReplicas  int
	maxReplicas  int
	sloP95       time.Duration
	admitRate    float64
	routeWeights string

	// Probe detection.
	detect        bool
	detectK       int
	detectThresh  float64
	detectWindow  int
	detectAction  string
	detectFams    string
	detectMinRate float64
	detectMaxFPR  float64

	// Model / data.
	checkpoint string
	hw         int
	classes    int
	trainN     int
	valN       int
	epochs     int
	seed       int64

	// Load generator.
	loadgen  bool
	rate     float64
	n        int
	advFrac  float64
	attackN  string
	eps      float64
	steps    int
	deadline time.Duration
	phases   string

	// Observability.
	traceSample float64
	traceJSON   string
	pprof       bool

	benchJSON string
}

func run() error {
	var o options
	flag.IntVar(&o.replicas, "replicas", 4, "independent shielded replicas (each owns an enclave + arena)")
	flag.IntVar(&o.maxBatch, "max-batch", 8, "largest coalesced tensor batch")
	flag.DurationVar(&o.maxDelay, "max-delay", 2*time.Millisecond, "longest a partial batch waits before flushing")
	flag.IntVar(&o.queue, "queue", 0, "admission queue depth (0 = 8×max-batch); overflow sheds with ErrOverloaded")
	flag.BoolVar(&o.shield, "shield", true, "serve through Pelta-shielded replicas (false = clear forwards)")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8321", "HTTP listen address")
	flag.IntVar(&o.minReplicas, "min-replicas", 1, "autoscaler lower bound on live replicas (with -max-replicas)")
	flag.IntVar(&o.maxReplicas, "max-replicas", 0, "enable the replica autoscaler with this upper bound (0 = static -replicas provisioning)")
	flag.DurationVar(&o.sloP95, "slo-p95", 0, "autoscaler latency SLO: scale up when the windowed p95 exceeds it (0 = queue-depth signal only)")
	flag.Float64Var(&o.admitRate, "admit-rate", 0, "enable weighted-fair admission at this total req/s, split across routes by -route-weights (0 = off)")
	flag.StringVar(&o.routeWeights, "route-weights", "", "admission weights per route, e.g. \"benign=8,adv=1\" (unlisted routes weigh 1)")
	flag.BoolVar(&o.detect, "detect", false, "enable the stateful probe detector (per-client query similarity caches); with -loadgen, run the labeled detection trace instead of the mixed-pool load")
	flag.IntVar(&o.detectK, "detect-k", 0, "detector: flag on the K-th-nearest-neighbor distance (0 = default 2)")
	flag.Float64Var(&o.detectThresh, "detect-thresh", 0, "detector: near-duplicate distance threshold (0 = metric default, 0.01 cosine)")
	flag.IntVar(&o.detectWindow, "detect-window", 0, "detector: per-client fingerprint ring capacity (0 = default 64)")
	flag.StringVar(&o.detectAction, "detect-action", "log", "detector: what admission does with flagged clients (log, deprioritize or shed)")
	flag.StringVar(&o.detectFams, "detect-families", "pgd,apgd", "detection loadgen: comma-separated probe families (fgsm, pgd, apgd, saga, square)")
	flag.Float64Var(&o.detectMinRate, "detect-min-rate", 0, "detection loadgen: fail unless the probe detection rate reaches this floor (0 = no gate)")
	flag.Float64Var(&o.detectMaxFPR, "detect-max-fpr", 1, "detection loadgen: fail if the benign false-positive rate exceeds this ceiling")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "warm-start weights from an internal/fl checkpoint (see cmd/flsim)")
	flag.IntVar(&o.hw, "hw", 16, "image side length")
	flag.IntVar(&o.classes, "classes", 10, "label-space size")
	flag.IntVar(&o.trainN, "trainn", 800, "training samples when fitting in-process")
	flag.IntVar(&o.valN, "valn", 240, "validation samples feeding the load generator")
	flag.IntVar(&o.epochs, "epochs", 5, "in-process training epochs when no -checkpoint is given")
	flag.Int64Var(&o.seed, "seed", 1, "experiment seed")
	flag.BoolVar(&o.loadgen, "loadgen", false, "run the built-in load generator instead of listening")
	flag.Float64Var(&o.rate, "rate", 200, "loadgen: open-loop arrival rate (req/s)")
	flag.IntVar(&o.n, "n", 256, "loadgen: total requests")
	flag.Float64Var(&o.advFrac, "adv-frac", 1.0/3, "loadgen: adversarial share of the traffic pool (capped at 0.5 by the probe-source pool)")
	flag.StringVar(&o.attackN, "attack", "pgd", "loadgen: probe attack crafting the adversarial share (fgsm or pgd)")
	flag.Float64Var(&o.eps, "eps", 0.1, "loadgen: attack ε (l∞)")
	flag.IntVar(&o.steps, "steps", 10, "loadgen: iterative attack steps")
	flag.DurationVar(&o.deadline, "deadline", 0, "loadgen: per-request deadline (0 = none)")
	flag.StringVar(&o.phases, "phases", "", "loadgen: phased trace \"rate:dur:advfrac,...\" (e.g. \"200:2s:0.1,800:1s:0.5,200:2s:0.1\"); overrides -rate/-n")
	flag.StringVar(&o.benchJSON, "benchjson", "", "write machine-readable serving timings to this JSON file (e.g. BENCH_peltaserve.json)")
	flag.Float64Var(&o.traceSample, "trace-sample", 0, "trace this fraction of requests end to end (0 = tracing off; anomalies are always traced once > 0); spans stream on GET /trace")
	flag.StringVar(&o.traceJSON, "trace-json", "", "loadgen: write the retained span records as NDJSON to this file (requires -trace-sample > 0)")
	flag.BoolVar(&o.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	// Synthesize only the splits this invocation reads: the train split
	// feeds the in-process fit (skipped on checkpoint warm start), the
	// validation split feeds the fit's accuracy print and the loadgen
	// traffic pool. Plain serving from a checkpoint needs neither.
	needFit := o.checkpoint == "" && o.epochs > 0
	cfg := dataset.SynthCIFAR10(o.hw, o.seed)
	cfg.Classes = o.classes
	cfg.TrainN, cfg.ValN = o.trainN, o.valN
	if !needFit {
		cfg.TrainN = 0
	}
	var train, val *dataset.Dataset
	if needFit || o.loadgen {
		train, val = dataset.Generate(cfg)
	}

	newModel := func(s int64) *models.ViT {
		return models.NewViT(models.SmallViT("ViT-L/16", o.classes, o.hw, o.hw/4), tensor.NewRNG(s))
	}

	// Warm start: a checkpoint written by cmd/flsim / fl.SaveModel, or a
	// quick in-process fit so the served model is better than random.
	base := newModel(o.seed)
	if o.checkpoint != "" {
		w, meta, err := fl.LoadCheckpoint(o.checkpoint)
		if err != nil {
			return err
		}
		if err := fl.Apply(base, w); err != nil {
			return err
		}
		if meta.Aggregator != "" {
			fmt.Fprintf(os.Stderr, "[peltaserve] warm-started from %s (trained by %s over %d federation rounds, seed %d)\n",
				o.checkpoint, meta.Aggregator, meta.Rounds, meta.Seed)
		} else {
			fmt.Fprintf(os.Stderr, "[peltaserve] warm-started from %s (unstamped checkpoint)\n", o.checkpoint)
		}
	} else if o.epochs > 0 {
		tc := models.TrainConfig{Epochs: o.epochs, BatchSize: 32, LR: 2e-3, Seed: o.seed}
		if _, err := models.Train(base, train.X, train.Y, tc); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[peltaserve] fitted in-process: clean accuracy %.1f%%\n",
			100*models.Accuracy(base, val.X, val.Y))
	}
	weights := fl.Snapshot(base)

	// Every replica owns an independent model copy with the same weights:
	// ShieldedModel is sequential-only, and forwards race on shared
	// parameter gradients.
	buildModel := func(i int) (models.Model, error) {
		m := newModel(o.seed + 1000 + int64(i))
		if err := fl.Apply(m, weights); err != nil {
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		return m, nil
	}
	// With -max-replicas the autoscaler owns provisioning: the pool is
	// built at the upper bound and the control loop decides how many of
	// those replicas have live workers at any moment.
	poolSize := o.replicas
	scfg := serve.Config{
		MaxBatch:   o.maxBatch,
		MaxDelay:   o.maxDelay,
		QueueDepth: o.queue,
	}
	if o.traceSample > 0 {
		scfg.Trace = &serve.TraceConfig{Sample: o.traceSample}
	} else if o.traceJSON != "" {
		return fmt.Errorf("-trace-json needs -trace-sample > 0")
	}
	if o.maxReplicas > 0 {
		poolSize = o.maxReplicas
		scfg.Autoscale = &serve.AutoscaleConfig{
			Min:       o.minReplicas,
			Max:       o.maxReplicas,
			TargetP95: o.sloP95,
		}
	}
	if o.admitRate > 0 {
		weights, err := serve.ParseWeights(o.routeWeights)
		if err != nil {
			return err
		}
		// The benign/adv routes exist only in the load generator; all HTTP
		// traffic submits on route "query". Weights that omit it would
		// silently cap real traffic at the unlisted-route share.
		if !o.loadgen && len(weights) > 0 && weights["query"] <= 0 {
			fmt.Fprintf(os.Stderr, "[peltaserve] warning: -route-weights %q has no \"query\" entry — "+
				"HTTP traffic runs on route \"query\" and gets weight 1 of the total %.0f req/s\n",
				o.routeWeights, o.admitRate)
		}
		scfg.Admission = &serve.AdmissionConfig{Rate: o.admitRate, Weights: weights}
	}
	if o.detect {
		action, err := serve.ParseDetectAction(o.detectAction)
		if err != nil {
			return err
		}
		scfg.Detect = &serve.DetectConfig{
			Config: detect.Config{
				K:         o.detectK,
				Threshold: o.detectThresh,
				Window:    o.detectWindow,
			},
			Action: action,
		}
	}
	var pool *serve.ReplicaPool
	var err error
	if o.shield {
		pool, err = serve.NewShieldedPool(poolSize, 0, buildModel)
	} else {
		pool, err = serve.NewClearPool(poolSize, buildModel)
	}
	if err != nil {
		return err
	}
	svc := serve.NewService(pool, scfg)
	defer svc.Close()
	if scfg.Autoscale != nil {
		fmt.Fprintf(os.Stderr, "[peltaserve] autoscaling %d–%d replicas (shield=%v, slo-p95 %v), max-batch %d, max-delay %v\n",
			o.minReplicas, o.maxReplicas, o.shield, o.sloP95, o.maxBatch, o.maxDelay)
	} else {
		fmt.Fprintf(os.Stderr, "[peltaserve] %d replicas (shield=%v), max-batch %d, max-delay %v\n",
			poolSize, o.shield, o.maxBatch, o.maxDelay)
	}
	if scfg.Admission != nil {
		fmt.Fprintf(os.Stderr, "[peltaserve] weighted-fair admission at %.0f req/s (weights %q)\n",
			o.admitRate, o.routeWeights)
	}
	if scfg.Detect != nil {
		dc := svc.Detector().Config()
		fmt.Fprintf(os.Stderr, "[peltaserve] probe detector on: k=%d thresh=%g window=%d action=%s\n",
			dc.K, dc.Threshold, dc.Window, scfg.Detect.Action)
	}
	if scfg.Trace != nil {
		fmt.Fprintf(os.Stderr, "[peltaserve] tracing %.0f%% of requests (anomalies always); spans on GET /trace, Prometheus text on GET /metrics?format=prom\n",
			100*o.traceSample)
	}

	if o.loadgen {
		if o.detect {
			return runDetectLoadgen(o, svc, base, val)
		}
		return runLoadgen(o, svc, base, val)
	}
	fmt.Fprintf(os.Stderr, "[peltaserve] listening on http://%s (POST /query, GET /metrics; probe identity via %s)\n", o.addr, serve.HeaderClient)
	return http.ListenAndServe(o.addr, serve.NewHandlerWith(svc, serve.HandlerOptions{Pprof: o.pprof}))
}

// accJSON renders a (value, ok) measurement for the bench record: the
// value, or nil when nothing was served (JSON has no NaN, and a fake 0
// would read as a perfect score or instant latency).
func accJSON(v float64, ok bool) any {
	if !ok {
		return nil
	}
	return v
}

// runLoadgen drives the service in-process with mixed benign + adversarial
// traffic and prints the serving report. With -phases the trace is phased
// (rate × duration × adv-frac steps); otherwise it is one fixed-rate run.
func runLoadgen(o options, svc *serve.Service, base models.Model, val *dataset.Dataset) error {
	items, err := buildTraffic(o, base, val)
	if err != nil {
		return err
	}
	nAdv := 0
	for _, it := range items {
		if it.Adversarial {
			nAdv++
		}
	}
	phases, err := serve.ParsePhases(o.phases)
	if err != nil {
		return err
	}
	start := time.Now()
	lcfg := serve.LoadConfig{Rate: o.rate, Requests: o.n, Deadline: o.deadline, Seed: o.seed}

	// In autoscale mode the pool is sized by -max-replicas, not -replicas;
	// the record must carry the pool that actually served.
	poolSize := o.replicas
	if o.maxReplicas > 0 {
		poolSize = o.maxReplicas
	}
	rec := map[string]any{
		"max_batch":    o.maxBatch,
		"max_delay_ms": float64(o.maxDelay) / float64(time.Millisecond),
		"shield":       o.shield,
		"replicas":     poolSize,
	}
	if o.maxReplicas > 0 {
		rec["min_replicas"] = o.minReplicas
		rec["max_replicas"] = o.maxReplicas
		rec["slo_p95_ms"] = float64(o.sloP95) / float64(time.Millisecond)
	}
	if o.admitRate > 0 {
		rec["admit_rate"] = o.admitRate
		rec["route_weights"] = o.routeWeights
	}

	var total *serve.LoadReport
	if len(phases) > 0 {
		fmt.Fprintf(os.Stderr, "[peltaserve] loadgen: %d-item pool (%d adversarial via %s), %d phases: %s\n",
			len(items), nAdv, o.attackN, len(phases), o.phases)
		prep, err := serve.RunLoadPhases(svc, items, phases, lcfg)
		if err != nil {
			return err
		}
		sum := eval.SummarizeServePhases(prep)
		fmt.Print(sum.Render())
		total = &prep.Total
		rec["mode"] = "loadgen-phased"
		var phaseRows []map[string]any
		for i, p := range prep.Phases {
			phaseRows = append(phaseRows, map[string]any{
				"rate":        p.Phase.Rate,
				"duration_s":  p.Phase.Duration.Seconds(),
				"adv_frac":    p.Phase.AdvFrac,
				"sent":        p.Sent,
				"served":      p.Served,
				"shed":        p.Shed,
				"benign_shed": p.BenignShed,
				"adv_shed":    p.AdvShed,
				"throughput":  p.Throughput,
				"p95_ms":      accJSON(sum.PhaseLatency[i].P95, p.Served > 0),
			})
		}
		rec["phases"] = phaseRows
		rec["p50_ms"] = accJSON(sum.Total.P50, total.Served > 0)
		rec["p95_ms"] = accJSON(sum.Total.P95, total.Served > 0)
		rec["p99_ms"] = accJSON(sum.Total.P99, total.Served > 0)
	} else {
		fmt.Fprintf(os.Stderr, "[peltaserve] loadgen: %d-item pool (%d adversarial via %s), %d requests at %.0f req/s\n",
			len(items), nAdv, o.attackN, o.n, o.rate)
		rep, err := serve.RunLoad(svc, items, lcfg)
		if err != nil {
			return err
		}
		sum := eval.SummarizeServeLoad(rep)
		fmt.Print(sum.Render())
		total = rep
		rec["mode"] = "loadgen"
		rec["p50_ms"] = accJSON(sum.Latency.P50, rep.Served > 0)
		rec["p95_ms"] = accJSON(sum.Latency.P95, rep.Served > 0)
		rec["p99_ms"] = accJSON(sum.Latency.P99, rep.Served > 0)
	}

	// With tracing on, the retained span records gate and describe the run:
	// any structural violation (negative stage duration, stage sum drifting
	// from the end-to-end span, served request missing a lifecycle offset)
	// fails the run — this is the CI trace-smoke gate — and the per-route ×
	// per-stage latency table prints after the load summary.
	if tr := svc.Tracer(); tr != nil {
		recs := tr.Records()
		if err := eval.ValidateSpans(recs); err != nil {
			return fmt.Errorf("trace validation: %w", err)
		}
		tsum := eval.SummarizeTrace(recs)
		fmt.Print(tsum.Render())
		rec["trace_spans"] = len(recs)
		rec["trace_begun"] = tr.Total()
		if o.traceJSON != "" {
			f, err := os.Create(o.traceJSON)
			if err != nil {
				return err
			}
			if err := tr.WriteNDJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "[peltaserve] wrote %d span records to %s\n", len(recs), o.traceJSON)
		}
	}

	if o.benchJSON != "" {
		snap := svc.Metrics().Snapshot()
		rec["sent"] = total.Sent
		rec["served"] = total.Served
		rec["shed"] = total.Shed
		rec["offered_rate"] = total.OfferedRate
		rec["throughput"] = total.Throughput
		rec["mean_batch"] = total.MeanBatch
		rec["benign_served"] = total.BenignServed
		rec["benign_shed"] = total.BenignShed
		rec["adv_served"] = total.AdvServed
		rec["adv_shed"] = total.AdvShed
		if total.BenignSent > 0 {
			rec["benign_shed_rate"] = float64(total.BenignShed) / float64(total.BenignSent)
			if total.Seconds > 0 {
				rec["benign_throughput"] = float64(total.BenignServed) / total.Seconds
			}
		}
		rec["benign_acc"] = accJSON(total.BenignAccuracy())
		rec["adv_robust"] = accJSON(total.AdvRobustAccuracy())
		rec["scale_ups"] = snap.ScaleUps
		rec["scale_downs"] = snap.ScaleDowns
		rec["live_replicas"] = snap.LiveReplicas
		rec["seconds"] = time.Since(start).Seconds()
		f, err := os.Create(o.benchJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	}
	return nil
}

// runDetectLoadgen drives the detection-quality trace: per-family probe
// streams recorded from real attack runs against the attacker's local copy
// of the served weights, interleaved with benign client streams, replayed
// through the detection-enabled service. It prints the per-family table
// and optionally gates on detection-rate floor / FPR ceiling.
func runDetectLoadgen(o options, svc *serve.Service, base models.Model, val *dataset.Dataset) error {
	fams := strings.Split(o.detectFams, ",")
	for i := range fams {
		fams[i] = strings.TrimSpace(fams[i])
	}
	// Benign share: spread -n queries over a small client fleet, at least
	// one query each, alongside one probe stream per family.
	benignClients := 8
	benignQueries := o.n / benignClients
	if benignQueries < 1 {
		benignQueries = 1
	}
	streams, err := eval.BuildDetectStreams(base, val, eval.DetectTraceConfig{
		Families:      fams,
		BenignClients: benignClients,
		BenignQueries: benignQueries,
		Eps:           float32(o.eps),
		Steps:         o.steps,
		Seed:          o.seed,
	})
	if err != nil {
		return err
	}
	var probeQ, benignQ int
	for _, st := range streams {
		if st.Probe {
			probeQ += len(st.Items)
		} else {
			benignQ += len(st.Items)
		}
	}
	fmt.Fprintf(os.Stderr, "[peltaserve] detection loadgen: %d benign queries over %d clients + %d probe queries over %d families\n",
		benignQ, benignClients, probeQ, len(fams))

	start := time.Now()
	rep, err := serve.RunDetectLoad(svc, streams, serve.DetectLoadConfig{Rate: o.rate, Deadline: o.deadline})
	if err != nil {
		return err
	}
	sum := eval.SummarizeDetect(rep)
	fmt.Print(sum.Render())

	det, detOK := rep.DetectionRate()
	fpr, fprOK := rep.BenignFPR()
	if o.benchJSON != "" {
		snap := svc.Metrics().Snapshot()
		dc := svc.Detector().Config()
		var famRows []map[string]any
		for _, l := range sum.Families {
			r, ok := l.Rate()
			famRows = append(famRows, map[string]any{
				"family":  l.Family,
				"probe":   l.Probe,
				"streams": l.Streams,
				"queries": l.Queries,
				"served":  l.Served,
				"shed":    l.Shed,
				"flagged": l.Flagged,
				"rate":    accJSON(r, ok),
			})
		}
		rec := map[string]any{
			"mode":           "loadgen-detect",
			"shield":         o.shield,
			"detect_k":       dc.K,
			"detect_thresh":  dc.Threshold,
			"detect_window":  dc.Window,
			"detect_action":  o.detectAction,
			"families":       famRows,
			"detection_rate": accJSON(det, detOK),
			"benign_fpr":     accJSON(fpr, fprOK),
			"flag_events":    snap.FlagEvents,
			"seconds":        time.Since(start).Seconds(),
		}
		f, err := os.Create(o.benchJSON)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.detectMinRate > 0 && (!detOK || det < o.detectMinRate) {
		return fmt.Errorf("detection rate %.3f below the -detect-min-rate floor %.3f", det, o.detectMinRate)
	}
	if fprOK && fpr > o.detectMaxFPR {
		return fmt.Errorf("benign FPR %.3f above the -detect-max-fpr ceiling %.3f", fpr, o.detectMaxFPR)
	}
	return nil
}

// buildTraffic assembles the mixed pool: benign validation samples plus
// adversarial probes crafted against the attacker's local copy of the
// served weights. The oracle matches the deployment's threat model: with
// -shield the compromised client's device is Pelta-shielded too, so its
// gradients are the restricted upsampled adjoint of §IV-C; without it the
// probes are full white-box.
func buildTraffic(o options, base models.Model, val *dataset.Dataset) ([]serve.TrafficItem, error) {
	var items []serve.TrafficItem
	for i := 0; i < val.Len(); i++ {
		items = append(items, serve.TrafficItem{X: val.X.Slice(i), Label: val.Y[i]})
	}
	if o.advFrac <= 0 {
		return items, nil
	}
	// nAdv benign + nAdv·f/(1-f) adversarial makes the adversarial share
	// of the pool exactly -adv-frac; probe sources are distinct correctly
	// classified samples, which caps the share at 50%.
	f := o.advFrac
	if f > 0.5 {
		f = 0.5
	}
	nAdv := int(math.Round(float64(val.Len()) * f / (1 - f)))
	if nAdv < 1 {
		nAdv = 1
	}
	if nAdv > val.Len() {
		nAdv = val.Len()
	}
	var atk attack.Attack
	switch o.attackN {
	case "fgsm":
		atk = &attack.FGSM{Eps: float32(o.eps)}
	case "pgd":
		atk = &attack.PGD{Eps: float32(o.eps), Step: float32(o.eps) / 8, Steps: o.steps}
	default:
		return nil, fmt.Errorf("-attack: want fgsm or pgd, got %q", o.attackN)
	}
	// Astuteness protocol: probes start from correctly classified samples,
	// so robust accuracy starts at 100% and measures only the attack.
	x, y, err := eval.SelectCorrect([]models.Model{base}, val, nAdv)
	if err != nil {
		return nil, fmt.Errorf("selecting probe sources: %w", err)
	}
	nAdv = x.Dim(0)

	addItems := func(xadv *tensor.Tensor, lo int) {
		for i := 0; i < xadv.Dim(0); i++ {
			items = append(items, serve.TrafficItem{X: xadv.Slice(i), Label: y[lo+i], Adversarial: true})
		}
	}
	if !o.shield {
		xadv, err := atk.Perturb(attack.NewClearOracle(base), x, y)
		if err != nil {
			return nil, fmt.Errorf("crafting adversarial traffic: %w", err)
		}
		addItems(xadv, 0)
		return items, nil
	}
	// Shielded deployment: each attacker only has the restricted
	// upsampled-adjoint oracle, and at this reduced scale one random
	// kernel occasionally aligns with the true backward operator (see
	// eval.KernelDraws), so the pool is split across several independent
	// kernel draws — a fleet of compromised clients, each probing blind.
	sm, err := core.NewShieldedModel(base, 0)
	if err != nil {
		return nil, err
	}
	so, err := attack.NewShieldedOracle(sm, o.seed)
	if err != nil {
		return nil, err
	}
	per := (nAdv + eval.KernelDraws - 1) / eval.KernelDraws
	for k := 0; k*per < nAdv; k++ {
		lo, hi := k*per, (k+1)*per
		if hi > nAdv {
			hi = nAdv
		}
		if k > 0 {
			if err := so.Reseed(o.seed + int64(k)*7919); err != nil {
				return nil, err
			}
		}
		xadv, err := atk.Perturb(so, x.SliceRange(lo, hi), y[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("crafting adversarial traffic (kernel %d): %w", k, err)
		}
		addItems(xadv, lo)
	}
	return items, nil
}
