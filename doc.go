// Package pelta reproduces "Mitigating Adversarial Attacks in Federated
// Learning with Trusted Execution Environments" (Queyrut, Schiavoni, Felber,
// ICDCS 2023). The public surface lives in the internal packages:
//
//   - internal/core     — the Pelta shielding scheme (Algorithm 1)
//   - internal/tee      — the TrustZone-style enclave simulation
//   - internal/models   — ViT / ResNet-v2 / BiT defenders
//   - internal/attack   — FGSM, PGD, MIM, APGD, C&W, SAGA, BPDA upsampling
//   - internal/fl       — sync FedAvg server plus the asynchronous sharded
//     round engine (client sampling, staleness-aware buffered aggregation),
//     robust aggregation defenses (Krum/Multi-Krum, trimmed mean, median,
//     norm clipping), honest/compromised/poisoning/Byzantine clients, and
//     the scenario-sweep runner
//   - internal/ensemble — random-selection ensemble defense
//   - internal/eval     — Tables I/III/IV, Figs. 3/4, sweep and serving-load
//     summaries, exact quantile helpers
//   - internal/serve    — the shielded-inference serving subsystem: replica
//     pools, micro-batching scheduler, streaming metrics, and the adaptive
//     control plane (replica autoscaler, weighted-fair per-route admission,
//     phased load generation, stateful probe detection)
//   - internal/detect   — per-client query-similarity caches: pooled
//     fingerprints, K-th-NN near-duplicate matching, m-of-w flagging with
//     TTL expiry and flag decay on an injected clock
//   - internal/obs      — the unified observability layer: per-request
//     span records (detect/admission/queue/batch/infer stages plus
//     per-kernel attribution), FL round-phase spans, and the metric
//     registry behind the JSON and Prometheus text expositions
//   - internal/lint     — the peltalint static analyzer: compile-time
//     enforcement of the repo's determinism, clock-injection, and
//     pool-hygiene invariants, plus a CFG/dataflow engine with
//     interprocedural summaries backing the flow-sensitive rules
//     (shieldtaint confidentiality tracking, errpath, lockorder,
//     clockcomplete); cmd/peltalint is the CLI / CI gate
//
// bench_test.go regenerates every table and figure; cmd/peltabench is the
// command-line entry point, cmd/flsim runs federations and scenario sweeps,
// cmd/peltaserve serves shielded inference over HTTP (with a built-in load
// generator), and examples/ holds runnable scenarios.
package pelta

// Version identifies this reproduction release.
const Version = "1.9.0"
