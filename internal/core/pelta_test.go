package core

import (
	"errors"
	"strings"
	"testing"

	"pelta/internal/autograd"
	"pelta/internal/models"
	"pelta/internal/tee"
	"pelta/internal/tensor"
)

// buildSmallPass runs one forward+backward of a tiny DNN and returns the
// graph, input vertex and the "boundary" (first layer output).
func buildSmallPass(t *testing.T) (*autograd.Graph, *autograd.Value, *autograd.Value) {
	t.Helper()
	rng := tensor.NewRNG(1)
	w1 := autograd.NewParam("w1", rng.Normal(0, 1, 6, 4))
	b1 := autograd.NewParam("b1", rng.Normal(0, 1, 6))
	w2 := autograd.NewParam("w2", rng.Normal(0, 1, 3, 6))

	g := autograd.NewGraph()
	in := g.Input(rng.Uniform(0, 1, 2, 4), "x")
	h := g.ReLU(g.Linear(in, g.Param(w1), g.Param(b1)))
	logits := g.Linear(h, g.Param(w2), nil)
	loss, _ := g.CrossEntropy(logits, []int{0, 2}, autograd.ReduceSum)
	g.Backward(loss)
	return g, in, h
}

func TestProtectShieldsShallowRegion(t *testing.T) {
	g, in, boundary := buildSmallPass(t)
	e, tok, err := tee.NewEnclave("t", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Protect(g, e, []*autograd.Value{boundary}, 1)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	// Shield region: relu + linear vertices, params w1+b1, one input jacobian.
	if report.Vertices != 2 {
		t.Fatalf("vertices = %d, want 2 (linear, relu)", report.Vertices)
	}
	if report.Params != 2 {
		t.Fatalf("params = %d, want 2 (w1, b1)", report.Params)
	}
	if report.Jacobians != 1 {
		t.Fatalf("jacobians = %d, want 1", report.Jacobians)
	}
	if report.Bytes <= 0 || e.Used() != report.Bytes {
		t.Fatalf("bytes = %d, enclave used = %d", report.Bytes, e.Used())
	}
	// Normal world scrubbed.
	if bad := VerifyScrubbed([]*autograd.Value{boundary}); bad != nil {
		t.Fatalf("vertex %v escaped the shield", bad)
	}
	// The input gradient — the quantity gradient-based attacks need — is gone.
	if in.Grad != nil {
		t.Fatal("∇xL must be masked")
	}
	// But the attacker keeps the input itself.
	if in.Data == nil {
		t.Fatal("the input sample belongs to the attacker and must stay")
	}
	// Objects really live in the enclave and are owner-readable.
	loaded := 0
	for _, k := range report.Keys {
		if !e.Has(k) {
			t.Fatalf("key %q not in enclave", k)
		}
		if _, err := e.Load(tok, k); err != nil {
			t.Fatalf("owner load %q: %v", k, err)
		}
		loaded++
	}
	if loaded == 0 {
		t.Fatal("no objects stored")
	}
}

func TestProtectDeepVerticesStayClear(t *testing.T) {
	g, _, boundary := buildSmallPass(t)
	e, _, err := tee.NewEnclave("t", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Protect(g, e, []*autograd.Value{boundary}, 1); err != nil {
		t.Fatal(err)
	}
	// Everything after the boundary (the clear segment) keeps data and
	// gradients — the restricted white-box of §III.
	clear := 0
	for _, v := range g.Nodes() {
		if v.Shielded() || v.IsInput() {
			continue
		}
		if v.Op() == "param" && v.Data == nil {
			t.Fatalf("clear param %s scrubbed", v.Name())
		}
		if v.Data != nil {
			clear++
		}
	}
	if clear < 3 {
		t.Fatalf("only %d clear vertices left; deep segment should stay visible", clear)
	}
}

func TestProtectRejectsInputSelection(t *testing.T) {
	g, in, _ := buildSmallPass(t)
	e, _, err := tee.NewEnclave("t", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Protect(g, e, []*autograd.Value{in}, 1); err == nil {
		t.Fatal("selecting the input leaf must fail (condition u_i ∈ S ⇒ i > l)")
	}
}

func TestProtectEnclaveTooSmall(t *testing.T) {
	g, _, boundary := buildSmallPass(t)
	e, _, err := tee.NewEnclave("tiny", 16) // 4 floats
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Protect(g, e, []*autograd.Value{boundary}, 1); !errors.Is(err, tee.ErrEnclaveFull) {
		t.Fatalf("want ErrEnclaveFull, got %v", err)
	}
}

func TestProtectWithoutGradients(t *testing.T) {
	// Forward-only pass (deployment inference): Alg. 1 still hides the
	// forward quantities; there are no gradients to store.
	rng := tensor.NewRNG(2)
	w := autograd.NewParam("w", rng.Normal(0, 1, 3, 4))
	g := autograd.NewGraph()
	in := g.Input(rng.Uniform(0, 1, 1, 4), "x")
	h := g.ReLU(g.Linear(in, g.Param(w), nil))

	e, _, err := tee.NewEnclave("t", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Protect(g, e, []*autograd.Value{h}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.Jacobians != 1 {
		t.Fatalf("jacobian count should still be recorded, got %d", report.Jacobians)
	}
	for _, k := range report.Keys {
		if strings.Contains(k, "/grad") || strings.Contains(k, "J-x") {
			t.Fatalf("no gradient objects expected, got %q", k)
		}
	}
	if in.Grad != nil {
		t.Fatal("no input grad should exist")
	}
}

func TestSelectDepth(t *testing.T) {
	g, in, _ := buildSmallPass(t)
	d1 := SelectDepth(g, 1)
	if len(d1) != 1 || d1[0].Op() != "linear" {
		t.Fatalf("depth-1 frontier = %v", d1)
	}
	d2 := SelectDepth(g, 2)
	if len(d2) != 1 || d2[0].Op() != "relu" {
		t.Fatalf("depth-2 frontier = %v", d2)
	}
	if got := SelectDepth(g, 0); len(got) != 1 || got[0] != in {
		t.Fatalf("depth-0 should return the input, got %v", got)
	}
}

func TestShieldedModelQueryViT(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := models.NewViT(models.SmallViT("vit-shield", 4, 8, 4), rng)
	sm, err := NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.Uniform(0, 1, 2, 3, 8, 8)
	res, err := sm.Query(x, CrossEntropyLoss([]int{1, 2}))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Logits.Dim(0) != 2 || res.Logits.Dim(1) != 4 {
		t.Fatalf("logits shape = %v", res.Logits.Shape())
	}
	if res.Adjoint == nil {
		t.Fatal("δ_{L+1} missing")
	}
	// ViT adjoint has the boundary's [B,T,D] shape.
	if res.Adjoint.Rank() != 3 || res.Adjoint.Dim(1) != 5 || res.Adjoint.Dim(2) != 48 {
		t.Fatalf("adjoint shape = %v", res.Adjoint.Shape())
	}
	if res.Loss <= 0 {
		t.Fatalf("loss = %v", res.Loss)
	}
	if res.Report.Params != 4 {
		t.Fatalf("shielded params = %d, want 4 (E, E bias, cls, pos)", res.Report.Params)
	}
}

func TestShieldedModelRepeatedQueriesDoNotLeakMemory(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := models.NewBiT(models.SmallBiT("bit-shield", 3, 8), rng)
	sm, err := NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.Uniform(0, 1, 1, 3, 8, 8)
	var first int64
	for i := 0; i < 5; i++ {
		res, err := sm.Query(x, CrossEntropyLoss([]int{0}))
		if err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
		if i == 0 {
			first = res.Report.Bytes
		} else if res.Report.Bytes != first {
			t.Fatalf("pass %d stored %d bytes, first stored %d (per-pass flush broken)", i, res.Report.Bytes, first)
		}
	}
	if used := sm.Enclave().Used(); used != first {
		t.Fatalf("enclave used = %d after 5 passes, want single-pass %d", used, first)
	}
}

func TestShieldedModelPredictMatchesClear(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := models.NewResNet(models.SmallResNet("rn-shield", 4, 8), rng)
	sm, err := NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := rng.Uniform(0, 1, 3, 3, 8, 8)
	want := models.Predict(m, x)
	got, err := sm.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("shielding must not change predictions (defender utility)")
		}
	}
}

func TestShieldedFootprintWithinTrustZone(t *testing.T) {
	// The realized enclave bytes of one single-sample pass must stay under
	// the 30 MB TrustZone budget for the small variants, mirroring the
	// Table I claim that the shield is enclave-sized.
	rng := tensor.NewRNG(6)
	for _, m := range []models.Model{
		models.NewViT(models.SmallViT("vit-fp", 10, 16, 4), rng),
		models.NewResNet(models.SmallResNet("rn-fp", 10, 16), rng),
		models.NewBiT(models.SmallBiT("bit-fp", 10, 16), rng),
	} {
		sm, err := NewShieldedModel(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		bytes, err := sm.Footprint()
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if bytes <= 0 || bytes > tee.DefaultMemoryLimit {
			t.Fatalf("%s footprint = %d bytes", m.Name(), bytes)
		}
	}
}

func TestQueryWithoutLossIsInferenceOnly(t *testing.T) {
	rng := tensor.NewRNG(7)
	m := models.NewViT(models.SmallViT("vit-inf", 3, 8, 4), rng)
	sm, err := NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sm.Query(rng.Uniform(0, 1, 1, 3, 8, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adjoint != nil {
		t.Fatal("inference-only pass must not expose an adjoint")
	}
	for _, k := range res.Report.Keys {
		if strings.Contains(k, "grad") {
			t.Fatalf("no gradient keys expected, got %q", k)
		}
	}
}
