package core

import (
	"testing"

	"pelta/internal/autograd"
	"pelta/internal/models"
	"pelta/internal/tee"
	"pelta/internal/tensor"
)

// shieldedPass runs one forward+backward for m on a pooled graph and
// applies Algorithm 1 at the shield boundary. It returns the graph, its
// pool, and the shapes + backing-array identities of every buffer the
// shield scrubbed into the enclave.
func shieldedPass(t *testing.T, m models.Model, pool *tensor.Pool) (*autograd.Graph, map[*float32][]int) {
	t.Helper()
	g := autograd.NewGraphWithPool(pool)
	x := tensor.NewRNG(9).Uniform(0, 1, 1, 3, 16, 16)
	in := g.Input(x, "x")
	boundary, logits := m.Forward(g, in)
	loss, _ := g.CrossEntropy(logits, []int{0}, autograd.ReduceSum)
	g.Backward(loss)

	// Record the backing arrays of everything Algorithm 1 is about to
	// scrub: the boundary's ancestor chain (data + grads) and ∇x.
	scrubbed := make(map[*float32][]int)
	var walk func(v *autograd.Value)
	seen := map[*autograd.Value]bool{}
	walk = func(v *autograd.Value) {
		if seen[v] {
			return
		}
		seen[v] = true
		if v.IsInput() {
			if v.Grad != nil {
				scrubbed[&v.Grad.Data()[0]] = v.Grad.Shape()
			}
			return
		}
		if v.Param() == nil && v.Data != nil {
			scrubbed[&v.Data.Data()[0]] = v.Data.Shape()
		}
		if v.Param() == nil && v.Grad != nil {
			scrubbed[&v.Grad.Data()[0]] = v.Grad.Shape()
		}
		for _, p := range v.Parents() {
			walk(p)
		}
	}
	walk(boundary)

	enclave, _, err := tee.NewEnclave("pool-test", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Protect(g, enclave, []*autograd.Value{boundary}, 1); err != nil {
		t.Fatal(err)
	}
	if bad := VerifyScrubbed([]*autograd.Value{boundary}); bad != nil {
		t.Fatalf("vertex %v escaped the shield", bad)
	}
	return g, scrubbed
}

// TestReleaseNeverRecyclesShieldedBuffers is the memory-safety contract of
// the pooled engine under Pelta: after Graph.Release, no buffer that
// Algorithm 1 scrubbed into the enclave may ever be handed out by the pool
// again — recycled enclave memory would alias attacker-visible tensors with
// secure-world state.
func TestReleaseNeverRecyclesShieldedBuffers(t *testing.T) {
	m := models.NewViT(models.SmallViT("shield-pool-vit", 5, 16, 4), tensor.NewRNG(3))
	pool := tensor.NewPool()
	g, scrubbed := shieldedPass(t, m, pool)
	if len(scrubbed) < 3 {
		t.Fatalf("expected several scrubbed buffers, got %d", len(scrubbed))
	}
	g.Release()

	// Drain the pool: repeatedly borrow buffers of exactly the scrubbed
	// shapes. None may alias a scrubbed backing array.
	for ptr, shape := range scrubbed {
		for draw := 0; draw < 64; draw++ {
			got := pool.Get(shape...)
			if &got.Data()[0] == ptr {
				t.Fatalf("pool recycled an enclave-held buffer (shape %v)", shape)
			}
		}
	}
}

// TestReleaseDoesRecycleClearBuffers is the positive control: an identical
// pass without shielding must recycle its buffers, proving the regression
// test above can actually observe recycling.
func TestReleaseDoesRecycleClearBuffers(t *testing.T) {
	m := models.NewViT(models.SmallViT("clear-pool-vit", 5, 16, 4), tensor.NewRNG(3))
	pool := tensor.NewPool()
	g := autograd.NewGraphWithPool(pool)
	x := tensor.NewRNG(9).Uniform(0, 1, 1, 3, 16, 16)
	in := g.Input(x, "x")
	boundary, logits := m.Forward(g, in)
	loss, _ := g.CrossEntropy(logits, []int{0}, autograd.ReduceSum)
	g.Backward(loss)
	_ = in
	ptr, shape := &boundary.Data.Data()[0], boundary.Data.Shape()
	g.Release()

	for draw := 0; draw < 4096; draw++ {
		got := pool.Get(shape...)
		if &got.Data()[0] == ptr {
			return // recycled, as expected for a clear pass
		}
	}
	t.Fatal("clear-pass buffer was never recycled; the pool sweep is broken")
}

// TestShieldedQueryStableAcrossArenaReuse runs many shielded queries on one
// ShieldedModel (whose internal arena is recycled per query) and checks the
// observable results stay identical to the first pass — recycled memory must
// never bleed into attacker-visible quantities.
func TestShieldedQueryStableAcrossArenaReuse(t *testing.T) {
	m := models.NewViT(models.SmallViT("stable-vit", 5, 16, 4), tensor.NewRNG(4))
	sm, err := NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(10).Uniform(0, 1, 2, 3, 16, 16)
	first, err := sm.Query(x, CrossEntropyLoss([]int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	logits0 := first.Logits.Clone()
	adjoint0 := first.Adjoint.Clone()
	for pass := 0; pass < 5; pass++ {
		res, err := sm.Query(x, CrossEntropyLoss([]int{1, 2}))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Logits.AllClose(logits0, 0) {
			t.Fatalf("pass %d: logits drifted across arena reuse", pass)
		}
		if !res.Adjoint.AllClose(adjoint0, 0) {
			t.Fatalf("pass %d: adjoint drifted across arena reuse", pass)
		}
	}
}
