package core

import (
	"testing"

	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

func trainerFixture(t *testing.T) (*EnclaveTrainer, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.SynthCIFAR10(8, 81)
	cfg.Classes = 4
	cfg.TrainN, cfg.ValN = 96, 32
	train, _ := dataset.Generate(cfg)
	m := models.NewViT(models.SmallViT("vit-enclave-train", 4, 8, 4), tensor.NewRNG(1))
	sm, err := NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewEnclaveTrainer(sm, 2e-3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return tr, train
}

func TestEnclaveTrainerLearns(t *testing.T) {
	tr, train := trainerFixture(t)
	losses, err := tr.TrainEpochs(train.X, train.Y, 12, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease under enclave training: %v", losses)
	}
	if acc := models.Accuracy(tr.sm.Model(), train.X, train.Y); acc < 0.5 {
		t.Fatalf("train accuracy %.2f after enclave training", acc)
	}
}

func TestEnclaveTrainerBatchesHiddenExports(t *testing.T) {
	tr, train := trainerFixture(t)
	// 6 batches with SyncEvery=3 → exactly 2 automatic exports.
	for i := 0; i < 6; i++ {
		bx, by, err := models.Batch(train.X, train.Y, []int{i, i + 1, i + 2, i + 3})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Step(bx, by); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Exports != 2 {
		t.Fatalf("exports = %d, want 2", tr.Exports)
	}
	if tr.PendingBytes() != 0 {
		t.Fatalf("pending = %d after export", tr.PendingBytes())
	}
}

func TestEnclaveTrainerAccumulatesBetweenExports(t *testing.T) {
	tr, train := trainerFixture(t)
	bx, by, err := models.Batch(train.X, train.Y, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(bx, by); err != nil {
		t.Fatal(err)
	}
	if tr.PendingBytes() == 0 {
		t.Fatal("hidden gradients should be pending before the sync point")
	}
	// The accumulator lives in the enclave, not the normal world.
	found := false
	for _, p := range tr.sm.Model().ShieldedParams() {
		if tr.sm.Enclave().Has(accumKey(p.Name)) {
			found = true
		}
		if tensor.NormL2(p.Grad) != 0 {
			t.Fatalf("shielded grad %s lingers in normal world", p.Name)
		}
	}
	if !found {
		t.Fatal("no enclave accumulator present")
	}
	hidden, err := tr.ExportHidden()
	if err != nil {
		t.Fatal(err)
	}
	if len(hidden) == 0 {
		t.Fatal("export returned nothing")
	}
	for name, g := range hidden {
		if g.Len() == 0 || tensor.NormL2(g) == 0 {
			t.Fatalf("exported gradient %s is empty", name)
		}
	}
}

func TestEnclaveTrainerValidation(t *testing.T) {
	m := models.NewViT(models.SmallViT("vit-val", 4, 8, 4), tensor.NewRNG(2))
	sm, err := NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEnclaveTrainer(sm, 0.01, 0); err == nil {
		t.Fatal("SyncEvery 0 must fail")
	}
}
