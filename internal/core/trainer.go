package core

import (
	"fmt"
	"math"

	"pelta/internal/autograd"
	"pelta/internal/models"
	"pelta/internal/tee"
	"pelta/internal/tensor"
)

// EnclaveTrainer performs defender-side local training under the shield —
// the "second case" of §VI. Gradients of the shielded parameters are
// produced and accumulated *inside* the enclave; they cross the world
// boundary only every SyncEvery batches, amortizing the secure-channel and
// context-switch overhead exactly as the paper suggests ("the frequency at
// which the weight updates are pulled out of the enclave could be lowered
// to allow averaging hidden gradients over larger batches").
type EnclaveTrainer struct {
	sm  *ShieldedModel
	tok tee.Token
	// LR is the SGD learning rate applied inside the secure world for the
	// shielded parameters and in the normal world for the clear ones.
	LR float32
	// SyncEvery is the number of batches accumulated before the hidden
	// update is exported across the boundary.
	SyncEvery int

	shielded map[string]bool
	batchNo  int
	// pending counts hidden-gradient bytes awaiting export.
	pendingBytes int64
	// Exports counts boundary crossings of hidden updates.
	Exports int

	// Adam state. Moments of shielded parameters conceptually reside in
	// the secure world alongside the parameters themselves; moments of
	// clear parameters live in the normal world.
	step int
	m, v map[string]*tensor.Tensor

	// g is the trainer's reusable pooled graph arena, swept between steps.
	g *autograd.Graph
}

// NewEnclaveTrainer wires a trainer to a shielded model. The enclave owner
// token stays inside the trainer (defender side).
func NewEnclaveTrainer(sm *ShieldedModel, lr float32, syncEvery int) (*EnclaveTrainer, error) {
	if syncEvery < 1 {
		return nil, fmt.Errorf("core: SyncEvery must be ≥ 1, got %d", syncEvery)
	}
	shielded := make(map[string]bool)
	for _, p := range sm.model.ShieldedParams() {
		shielded[p.Name] = true
	}
	if len(shielded) == 0 {
		return nil, fmt.Errorf("core: model %s declares no shielded parameters", sm.Name())
	}
	return &EnclaveTrainer{
		sm:        sm,
		tok:       sm.token,
		LR:        lr,
		SyncEvery: syncEvery,
		shielded:  shielded,
		m:         make(map[string]*tensor.Tensor),
		v:         make(map[string]*tensor.Tensor),
	}, nil
}

// adamUpdate applies one Adam step to p from its current gradient.
func (t *EnclaveTrainer) adamUpdate(p *autograd.Param) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	m, ok := t.m[p.Name]
	if !ok {
		m = tensor.New(p.Data.Shape()...)
		t.m[p.Name] = m
		t.v[p.Name] = tensor.New(p.Data.Shape()...)
	}
	v := t.v[p.Name]
	bc1 := 1 - math.Pow(beta1, float64(t.step))
	bc2 := 1 - math.Pow(beta2, float64(t.step))
	md, vd, gd, wd := m.Data(), v.Data(), p.Grad.Data(), p.Data.Data()
	for i := range gd {
		g := float64(gd[i])
		mi := beta1*float64(md[i]) + (1-beta1)*g
		vi := beta2*float64(vd[i]) + (1-beta2)*g*g
		md[i], vd[i] = float32(mi), float32(vi)
		wd[i] -= float32(float64(t.LR) * (mi / bc1) / (math.Sqrt(vi/bc2) + eps))
	}
}

// Model returns the defender model being trained.
func (t *EnclaveTrainer) Model() models.Model { return t.sm.model }

// Enclave exposes the enclave for §VI metering.
func (t *EnclaveTrainer) Enclave() *tee.Enclave { return t.sm.enclave }

// accumKey is the enclave object holding a parameter's accumulated hidden
// gradient between exports.
func accumKey(name string) string { return "trainer/accum/" + name }

// Step trains on one batch and returns the mean loss. Shielded-parameter
// gradients are stored into the enclave accumulators; clear parameters are
// updated in place immediately.
func (t *EnclaveTrainer) Step(x *tensor.Tensor, y []int) (float64, error) {
	m := t.sm.model
	m.SetTraining(true)
	defer m.SetTraining(false)

	if t.g == nil {
		t.g = autograd.NewGraphWithPool(tensor.NewPool())
	}
	g := t.g
	g.Release()
	_, logits := m.Forward(g, g.Input(x, "x"))
	loss, _ := g.CrossEntropy(logits, y, autograd.ReduceMean)
	g.Backward(loss)

	t.step++
	e := t.sm.enclave
	for _, p := range m.Params() {
		if !t.shielded[p.Name] {
			// Clear segment: the update happens in the normal world.
			t.adamUpdate(p)
			p.ZeroGrad()
			continue
		}
		// Shielded segment: the gradient never rests in the normal world.
		// Accumulation is enclave-resident computation — no boundary
		// crossing is metered until the export.
		key := accumKey(p.Name)
		if err := e.Accumulate(t.tok, key, p.Grad); err != nil {
			return 0, fmt.Errorf("core: accumulating %q: %w", key, err)
		}
		t.pendingBytes += p.Grad.Bytes()
		// The secure world applies the update to its copy; in this
		// simulation the parameter tensor doubles as the enclave copy.
		t.adamUpdate(p)
		p.ZeroGrad()
	}

	t.batchNo++
	if t.batchNo%t.SyncEvery == 0 {
		if _, err := t.ExportHidden(); err != nil {
			return 0, err
		}
	}
	return float64(loss.Data.Data()[0]), nil
}

// ExportHidden pulls the accumulated hidden gradients out of the enclave
// (one boundary crossing per shielded parameter) for FL aggregation, and
// resets the accumulators. It returns the exported tensors keyed by
// parameter name.
func (t *EnclaveTrainer) ExportHidden() (map[string]*tensor.Tensor, error) {
	e := t.sm.enclave
	out := make(map[string]*tensor.Tensor, len(t.shielded))
	for name := range t.shielded {
		key := accumKey(name)
		if !e.Has(key) {
			continue
		}
		acc, err := e.Load(t.tok, key)
		if err != nil {
			return nil, fmt.Errorf("core: exporting %q: %w", key, err)
		}
		out[name] = acc
		if err := e.Flush(t.tok, key); err != nil {
			return nil, err
		}
	}
	t.Exports++
	t.pendingBytes = 0
	return out, nil
}

// PendingBytes reports hidden-gradient bytes accumulated since the last
// export (the bandwidth §VI trades against update freshness).
func (t *EnclaveTrainer) PendingBytes() int64 { return t.pendingBytes }

// TrainEpochs runs full epochs over (x, y) with the given batch size and
// returns per-epoch mean losses, mirroring models.Train but under the
// enclave regime.
func (t *EnclaveTrainer) TrainEpochs(x *tensor.Tensor, y []int, epochs, batch int, seed int64) ([]float64, error) {
	n := x.Dim(0)
	rng := tensor.NewRNG(seed)
	losses := make([]float64, 0, epochs)
	for ep := 0; ep < epochs; ep++ {
		perm := rng.Perm(n)
		total, count := 0.0, 0
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			bx, by, err := models.Batch(x, y, perm[start:end])
			if err != nil {
				return losses, fmt.Errorf("core: epoch %d: %w", ep, err)
			}
			l, err := t.Step(bx, by)
			if err != nil {
				return losses, fmt.Errorf("core: epoch %d: %w", ep, err)
			}
			total += l
			count++
		}
		losses = append(losses, total/float64(count))
	}
	return losses, nil
}
