package core

import (
	"fmt"

	"pelta/internal/autograd"
	"pelta/internal/tee"
	"pelta/internal/tensor"
)

// ShieldReport describes what one application of Algorithm 1 stored.
type ShieldReport struct {
	// Vertices is the number of graph vertices u_i moved into the enclave.
	Vertices int
	// Jacobians is the number of input-adjacent local jacobians ∂f_j/∂x
	// masked (realized as the input-gradient products of the pass).
	Jacobians int
	// Params is the number of parameter leaves shielded.
	Params int
	// Bytes is the secure memory consumed by this pass.
	Bytes int64
	// Keys lists the enclave object keys written.
	Keys []string
}

// shielder carries the state of one Algorithm 1 execution.
type shielder struct {
	enclave *tee.Enclave
	pass    int
	report  ShieldReport
}

// Protect applies Algorithm 1 (PELTA(G)) to the completed pass recorded in
// g. sel is the Select(u_{l+1}…u_n) step: the deepest vertices to mask
// (for the paper's models, the single shield-boundary vertex returned by
// Model.Forward). passID namespaces the enclave keys of this pass.
//
// Every selected vertex and its ancestors up to (but excluding) the input
// leaf are stored in the enclave and scrubbed from the normal world. For
// parents that are the input, the local jacobian — realized as the computed
// input gradient ∇xL, the product that only exists because the shielded
// shallow backward ran — is stored and scrubbed as well (Alg. 1 lines 7-9).
func Protect(g *autograd.Graph, enclave *tee.Enclave, sel []*autograd.Value, passID int) (*ShieldReport, error) {
	s := &shielder{enclave: enclave, pass: passID}
	for _, u := range sel {
		if u.IsInput() {
			return nil, fmt.Errorf("core: Select must choose vertices after the input leaves (u%d is the input)", u.ID())
		}
		if err := s.shield(u); err != nil {
			return nil, err
		}
	}
	return &s.report, nil
}

// shield is Algorithm 1's Shield(u_i, E).
func (s *shielder) shield(u *autograd.Value) error {
	if u.Shielded() {
		return nil
	}
	// Line 4: E ← E + {u_i}: store the forward output (and the vertex's
	// intermediate gradient, which leads to ∂f_j/∂x through the chain rule
	// and must be masked too, §IV-B).
	if err := s.storeVertex(u); err != nil {
		return err
	}
	u.SetShielded(true)
	if u.Param() != nil {
		s.report.Params++
	} else {
		s.report.Vertices++
	}

	// Lines 5-10: recurse over the parent vertices α_i.
	for _, p := range u.Parents() {
		if p.IsInput() {
			// Lines 7-9: the local jacobian between the input and its
			// first transformation must be masked. The realized product is
			// the input gradient of the pass; the attacker keeps x itself.
			if err := s.storeInputJacobian(p, u); err != nil {
				return err
			}
			continue
		}
		if err := s.shield(p); err != nil {
			return err
		}
	}
	// Scrub after the recursion so parent stores can still read our data if
	// ever needed; the normal world now observes nothing.
	u.Scrub()
	return nil
}

// storeVertex moves u's tensors across the secure channel.
func (s *shielder) storeVertex(u *autograd.Value) error {
	base := fmt.Sprintf("pass%d/u%d-%s", s.pass, u.ID(), u.Op())
	if err := s.store(base+"/out", u); err != nil {
		return err
	}
	// Parameter leaves alias a persistent, pre-allocated gradient buffer;
	// only store it when this pass actually produced gradients (forward-only
	// deployment passes generate none, §VI).
	grad := u.Grad
	if grad != nil && u.Param() != nil && isZero(grad) {
		grad = nil
	}
	if grad != nil {
		key := base + "/grad"
		if err := s.enclave.Store(key, grad); err != nil {
			return fmt.Errorf("core: shielding gradient of u%d: %w", u.ID(), err)
		}
		s.report.Bytes += grad.Bytes()
		s.report.Keys = append(s.report.Keys, key)
	}
	return nil
}

func isZero(t *tensor.Tensor) bool {
	for _, v := range t.Data() {
		if v != 0 {
			return false
		}
	}
	return true
}

func (s *shielder) store(key string, u *autograd.Value) error {
	if u.Data == nil {
		return nil
	}
	if err := s.enclave.Store(key, u.Data); err != nil {
		return fmt.Errorf("core: shielding u%d (%s): %w", u.ID(), u.Op(), err)
	}
	s.report.Bytes += u.Data.Bytes()
	s.report.Keys = append(s.report.Keys, key)
	return nil
}

// storeInputJacobian masks J_{x→i}: the pass's input gradient.
func (s *shielder) storeInputJacobian(input, child *autograd.Value) error {
	s.report.Jacobians++
	if input.Grad == nil {
		// Device configured not to produce gradients: nothing in memory to
		// hide (the "skipped in practice" case of §IV-B).
		return nil
	}
	key := fmt.Sprintf("pass%d/J-x%d-to-u%d", s.pass, input.ID(), child.ID())
	if err := s.enclave.Store(key, input.Grad); err != nil {
		return fmt.Errorf("core: shielding input jacobian: %w", err)
	}
	s.report.Bytes += input.Grad.Bytes()
	s.report.Keys = append(s.report.Keys, key)
	// The normal world loses ∇xL; the attacker keeps x (their own sample).
	// ScrubGrad also withdraws the buffer from a pooled graph's arena so it
	// can never be recycled into attacker-visible memory.
	input.ScrubGrad()
	return nil
}

// SelectDepth is an alternative Select policy for ablation studies: it
// returns the vertices whose distance from the input equals depth (the
// deepest masked generation), so Protect shields everything shallower.
func SelectDepth(g *autograd.Graph, depth int) []*autograd.Value {
	in := g.InputLeaf()
	if in == nil {
		return nil
	}
	children := g.Children()
	dist := map[*autograd.Value]int{in: 0}
	frontier := []*autograd.Value{in}
	for d := 0; d < depth; d++ {
		var next []*autograd.Value
		for _, v := range frontier {
			for _, c := range children[v] {
				if _, seen := dist[c]; !seen {
					dist[c] = d + 1
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	return frontier
}

// VerifyScrubbed checks that every non-input vertex on a path from the
// input to any selected vertex has been scrubbed — the invariant making the
// shield "unequivocal" (§IV-B). It returns the offending vertex, or nil.
func VerifyScrubbed(sel []*autograd.Value) *autograd.Value {
	var walk func(u *autograd.Value) *autograd.Value
	seen := map[*autograd.Value]bool{}
	walk = func(u *autograd.Value) *autograd.Value {
		if seen[u] {
			return nil
		}
		seen[u] = true
		if u.IsInput() {
			if u.Grad != nil {
				return u // input gradient leaked
			}
			return nil
		}
		if u.Data != nil || u.Grad != nil {
			return u
		}
		for _, p := range u.Parents() {
			if bad := walk(p); bad != nil {
				return bad
			}
		}
		return nil
	}
	for _, u := range sel {
		if bad := walk(u); bad != nil {
			return bad
		}
	}
	return nil
}
