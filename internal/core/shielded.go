package core

import (
	"fmt"

	"pelta/internal/autograd"
	"pelta/internal/models"
	"pelta/internal/tee"
	"pelta/internal/tensor"
)

// LossFn builds the attacker's objective on the clear logits. It returns a
// scalar vertex (use autograd.ReduceSum-style objectives so per-sample
// gradients are unscaled).
type LossFn func(g *autograd.Graph, logits *autograd.Value) *autograd.Value

// CrossEntropyLoss returns the standard untargeted evasion objective.
func CrossEntropyLoss(labels []int) LossFn {
	return func(g *autograd.Graph, logits *autograd.Value) *autograd.Value {
		loss, _ := g.CrossEntropy(logits, labels, autograd.ReduceSum)
		return loss
	}
}

// QueryResult is everything a compromised client observes from one
// inference+backward pass on a Pelta-shielded model: the clear outputs and
// the adjoint of the shallowest clear layer. ∇xL is NOT present — it was
// moved into the enclave and scrubbed.
type QueryResult struct {
	// Logits is the model output [B, classes].
	Logits *tensor.Tensor
	// Loss is the scalar objective value of the pass.
	Loss float64
	// Adjoint is δ_{L+1} = dL/du_{L+1}, the under-factored gradient in the
	// shape of the shield boundary's output. The attacker can compute this
	// from the clear segment alone, so exposing it leaks nothing extra.
	Adjoint *tensor.Tensor
	// Report describes what Algorithm 1 stored during the pass.
	Report *ShieldReport
}

// ShieldedModel wraps a defender model with a Pelta enclave. Every Query
// runs a full pass, then applies Algorithm 1 so the shallow quantities never
// remain in normal-world memory.
type ShieldedModel struct {
	model   models.Model
	enclave *tee.Enclave
	token   tee.Token
	pass    int
	// g is the reusable pooled graph arena of the defender's passes. Buffers
	// scrubbed into the enclave are withdrawn from the arena at Scrub time
	// and never recycled; everything else is swept back per Query.
	g *autograd.Graph
}

// NewShieldedModel shields m with a fresh enclave of the given byte limit
// (≤ 0 selects the 30 MB TrustZone default).
func NewShieldedModel(m models.Model, limit int64) (*ShieldedModel, error) {
	e, tok, err := tee.NewEnclave(m.Name(), limit)
	if err != nil {
		return nil, fmt.Errorf("core: creating enclave for %s: %w", m.Name(), err)
	}
	return &ShieldedModel{model: m, enclave: e, token: tok}, nil
}

// Model returns the wrapped defender (defender-side use only: the attacker
// API is Query/Predict).
func (s *ShieldedModel) Model() models.Model { return s.model }

// Enclave exposes the enclave for memory accounting and §VI metrics.
func (s *ShieldedModel) Enclave() *tee.Enclave { return s.enclave }

// Name returns the wrapped model's name.
func (s *ShieldedModel) Name() string { return s.model.Name() }

// Classes returns the wrapped model's class count.
func (s *ShieldedModel) Classes() int { return s.model.Classes() }

// InputShape returns the wrapped model's input shape.
func (s *ShieldedModel) InputShape() []int { return s.model.InputShape() }

// Predict runs a shielded forward pass and returns argmax classes. (No
// gradients are produced; the shield still hides the shallow activations.)
func (s *ShieldedModel) Predict(x *tensor.Tensor) ([]int, error) {
	res, err := s.Query(x, nil)
	if err != nil {
		return nil, err
	}
	return tensor.ArgmaxRows(res.Logits), nil
}

// Query runs one pass. When loss is nil only the forward runs (inference);
// otherwise backward runs and the adjoint δ_{L+1} is returned. In both
// cases Algorithm 1 shields the shallow region afterwards.
func (s *ShieldedModel) Query(x *tensor.Tensor, loss LossFn) (*QueryResult, error) {
	// The defender flushes the previous pass's objects; Table I reports the
	// worst-case peak of a single pass.
	if err := s.enclave.FlushAll(s.token); err != nil {
		return nil, fmt.Errorf("core: flushing enclave: %w", err)
	}
	s.pass++

	if s.g == nil {
		s.g = autograd.NewGraphWithPool(tensor.NewPool())
	}
	g := s.g
	g.Release()
	in := g.Input(x, "x")
	boundary, logits := s.model.Forward(g, in)

	res := &QueryResult{Logits: logits.Data.Clone()}
	if loss != nil {
		l := loss(g, logits)
		g.Backward(l)
		res.Loss = float64(l.Data.Data()[0])
		if boundary.Grad != nil {
			// δ_{L+1}: computable from the clear segment, handed to the
			// attacker before the boundary vertex is scrubbed.
			res.Adjoint = boundary.Grad.Clone()
		}
	}

	report, err := Protect(g, s.enclave, []*autograd.Value{boundary}, s.pass)
	if err != nil {
		return nil, fmt.Errorf("core: shielding pass %d: %w", s.pass, err)
	}
	res.Report = report
	// Gradients accumulated into the persistent parameters during this pass
	// now live in the enclave (for the shielded region) or belong to the
	// attacker's transient view (clear region); neither may linger in the
	// defender's optimizer state.
	for _, p := range s.model.Params() {
		p.ZeroGrad()
	}
	if bad := VerifyScrubbed([]*autograd.Value{boundary}); bad != nil {
		return nil, fmt.Errorf("core: vertex u%d (%s) escaped the shield", bad.ID(), bad.Op())
	}
	return res, nil
}

// Footprint measures the realized enclave cost of one gradient-producing
// pass with a single sample — the measured counterpart of the analytic
// Table I formulas in internal/models.
func (s *ShieldedModel) Footprint() (int64, error) {
	shape := append([]int{1}, s.model.InputShape()...)
	x := tensor.New(shape...)
	res, err := s.Query(x, CrossEntropyLoss([]int{0}))
	if err != nil {
		return 0, err
	}
	return res.Report.Bytes, nil
}
