package core

import (
	"testing"

	"pelta/internal/autograd"
	"pelta/internal/models"
	"pelta/internal/tee"
	"pelta/internal/tensor"
)

func TestVerifyScrubbedDetectsLeak(t *testing.T) {
	g, _, boundary := buildSmallPass(t)
	e, _, err := tee.NewEnclave("t", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Protect(g, e, []*autograd.Value{boundary}, 1); err != nil {
		t.Fatal(err)
	}
	// Simulate a defective shield: restore data on a shielded vertex.
	leaked := boundary.Parents()[0]
	leaked.Data = tensor.Ones(2)
	if bad := VerifyScrubbed([]*autograd.Value{boundary}); bad != leaked {
		t.Fatalf("VerifyScrubbed returned %v, want the leaked vertex", bad)
	}
}

func TestVerifyScrubbedDetectsInputGradientLeak(t *testing.T) {
	g, in, boundary := buildSmallPass(t)
	e, _, err := tee.NewEnclave("t", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Protect(g, e, []*autograd.Value{boundary}, 1); err != nil {
		t.Fatal(err)
	}
	in.Grad = tensor.Ones(2, 4) // ∇xL reappears in normal world
	if bad := VerifyScrubbed([]*autograd.Value{boundary}); bad != in {
		t.Fatalf("VerifyScrubbed returned %v, want the input", bad)
	}
}

func TestProtectIdempotent(t *testing.T) {
	g, _, boundary := buildSmallPass(t)
	e, _, err := tee.NewEnclave("t", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Protect(g, e, []*autograd.Value{boundary}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A second application finds everything already shielded.
	second, err := Protect(g, e, []*autograd.Value{boundary}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if second.Vertices != 0 || second.Params != 0 || second.Bytes != 0 {
		t.Fatalf("second Protect stored again: %+v (first %+v)", second, first)
	}
}

func TestSelectDepthThenProtect(t *testing.T) {
	// The ablation path: shield only the first generation (the linear
	// transform), leaving the ReLU clear.
	g, _, _ := buildSmallPass(t)
	e, _, err := tee.NewEnclave("t", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	sel := SelectDepth(g, 1)
	report, err := Protect(g, e, sel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.Vertices != 1 {
		t.Fatalf("depth-1 shield covered %d vertices, want 1", report.Vertices)
	}
	// The ReLU (generation 2) stays clear.
	for _, v := range g.Nodes() {
		if v.Op() == "relu" && v.Data == nil {
			t.Fatal("depth-1 shield must not scrub generation 2")
		}
	}
}

func TestShieldedModelEnclaveTooSmall(t *testing.T) {
	m := testViT(t)
	sm, err := NewShieldedModel(m, 64) // 16 floats
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 8, 8)
	if _, err := sm.Query(x, CrossEntropyLoss([]int{0})); err == nil {
		t.Fatal("a 64-byte enclave cannot hold the shield; Query must fail")
	}
}

// testViT builds a tiny ViT for enclave-limit tests.
func testViT(t *testing.T) *models.ViT {
	t.Helper()
	return models.NewViT(models.SmallViT("vit-inv", 4, 8, 4), tensor.NewRNG(1))
}
