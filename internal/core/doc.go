// Package core implements the Pelta shielding scheme (Algorithm 1 of the
// paper): after every inference pass, the shallowest vertices of the
// model's computational graph — their outputs u_i, parameters, intermediate
// gradients, and the input-adjacent local jacobians ∂f_j/∂x — are moved into
// a TEE enclave and scrubbed from normal-world memory. What remains visible
// to a compromised client is the clear deep segment of the network and the
// adjoint δ_{L+1} of the shallowest clear layer, which is not enough to
// complete the back-propagation chain rule to the input (Eq. 1).
//
// A ShieldedModel owns one enclave and one pooled graph arena and serves
// queries sequentially; concurrent attackers each build their own (or fan
// out through attack.ParallelOracle). Query results are deterministic —
// shielding changes what is visible, never the numbers computed.
package core
