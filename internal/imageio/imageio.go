package imageio

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"pelta/internal/tensor"
)

// WritePPM saves a [3,H,W] tensor as binary PPM, clipping into [0,1].
func WritePPM(path string, img *tensor.Tensor) error {
	if img.Rank() != 3 || img.Dim(0) != 3 {
		return fmt.Errorf("imageio: PPM needs [3,H,W], got %v", img.Shape())
	}
	h, w := img.Dim(1), img.Dim(2)
	buf := make([]byte, 0, 20+3*h*w)
	buf = append(buf, []byte(fmt.Sprintf("P6\n%d %d\n255\n", w, h))...)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for c := 0; c < 3; c++ {
				buf = append(buf, quantize(img.At(c, y, x)))
			}
		}
	}
	return writeFile(path, buf)
}

// WritePGM saves the per-pixel channel-summed magnitude of a [C,H,W]
// tensor as grayscale PGM, normalized to its maximum (for perturbation
// maps, which are tiny in absolute value).
func WritePGM(path string, img *tensor.Tensor) error {
	if img.Rank() != 3 {
		return fmt.Errorf("imageio: PGM needs [C,H,W], got %v", img.Shape())
	}
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	mag := make([]float32, h*w)
	var mx float32
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var s float32
			for ch := 0; ch < c; ch++ {
				v := img.At(ch, y, x)
				if v < 0 {
					v = -v
				}
				s += v
			}
			mag[y*w+x] = s
			if s > mx {
				mx = s
			}
		}
	}
	if mx == 0 {
		mx = 1
	}
	buf := make([]byte, 0, 20+h*w)
	buf = append(buf, []byte(fmt.Sprintf("P5\n%d %d\n255\n", w, h))...)
	for _, v := range mag {
		buf = append(buf, quantize(v/mx))
	}
	return writeFile(path, buf)
}

// ReadPPM loads a binary PPM into a [3,H,W] tensor with pixels in [0,1].
func ReadPPM(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("imageio: opening %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	w, h, err := readHeader(r, "P6")
	if err != nil {
		return nil, fmt.Errorf("imageio: %s: %w", path, err)
	}
	raw := make([]byte, 3*w*h)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("imageio: %s payload: %w", path, err)
	}
	img := tensor.New(3, h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for c := 0; c < 3; c++ {
				img.Set(float32(raw[(y*w+x)*3+c])/255, c, y, x)
			}
		}
	}
	return img, nil
}

// ReadPGM loads a binary PGM into a [1,H,W] tensor with values in [0,1].
func ReadPGM(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("imageio: opening %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	w, h, err := readHeader(r, "P5")
	if err != nil {
		return nil, fmt.Errorf("imageio: %s: %w", path, err)
	}
	raw := make([]byte, w*h)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("imageio: %s payload: %w", path, err)
	}
	img := tensor.New(1, h, w)
	for i, v := range raw {
		img.Data()[i] = float32(v) / 255
	}
	return img, nil
}

// readHeader parses "<magic>\n<w> <h>\n255\n" allowing arbitrary
// whitespace, as the netpbm spec does.
func readHeader(r *bufio.Reader, magic string) (w, h int, err error) {
	tok := func() (string, error) {
		var out []byte
		for {
			b, err := r.ReadByte()
			if err != nil {
				return "", err
			}
			if b == ' ' || b == '\n' || b == '\t' || b == '\r' {
				if len(out) > 0 {
					return string(out), nil
				}
				continue
			}
			out = append(out, b)
		}
	}
	m, err := tok()
	if err != nil {
		return 0, 0, err
	}
	if m != magic {
		return 0, 0, fmt.Errorf("bad magic %q, want %q", m, magic)
	}
	for _, dst := range []*int{&w, &h} {
		s, err := tok()
		if err != nil {
			return 0, 0, err
		}
		if _, err := fmt.Sscanf(s, "%d", dst); err != nil {
			return 0, 0, fmt.Errorf("bad dimension %q", s)
		}
	}
	maxv, err := tok()
	if err != nil {
		return 0, 0, err
	}
	if maxv != "255" {
		return 0, 0, fmt.Errorf("unsupported max value %q", maxv)
	}
	if w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("bad dimensions %dx%d", w, h)
	}
	return w, h, nil
}

func quantize(v float32) byte {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return byte(v*255 + 0.5)
}

func writeFile(path string, buf []byte) error {
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("imageio: writing %s: %w", path, err)
	}
	return nil
}
