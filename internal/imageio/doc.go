// Package imageio reads and writes the binary netpbm formats (PPM P6 for
// RGB, PGM P5 for grayscale) used to inspect adversarial samples and
// perturbation maps. Tensors use the model convention: [3,H,W] (or [1,H,W]
// for grayscale) with float pixels in [0,1].
//
// Encoding is pure and deterministic: the same tensor always serializes to
// the same bytes, which keeps Fig. 4 dumps diffable across runs.
package imageio
