package imageio

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"pelta/internal/tensor"
)

func TestPPMRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ppm")
	img := tensor.NewRNG(1).Uniform(0, 1, 3, 5, 7)
	if err := WritePPM(path, img); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPPM(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim(1) != 5 || back.Dim(2) != 7 {
		t.Fatalf("shape = %v", back.Shape())
	}
	// 8-bit quantization: half an LSB of error.
	if !back.AllClose(img, 1.0/255) {
		t.Fatal("round trip lost more than quantization error")
	}
}

func TestPPMRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64, hRaw, wRaw uint8) bool {
		h := int(hRaw%12) + 1
		w := int(wRaw%12) + 1
		img := tensor.NewRNG(seed).Uniform(0, 1, 3, h, w)
		path := filepath.Join(dir, "p.ppm")
		if err := WritePPM(path, img); err != nil {
			return false
		}
		back, err := ReadPPM(path)
		if err != nil {
			return false
		}
		return back.AllClose(img, 1.0/255)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPGMWriteRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.pgm")
	img := tensor.NewRNG(2).Uniform(-0.1, 0.1, 3, 4, 4)
	if err := WritePGM(path, img); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim(0) != 1 || back.Dim(1) != 4 || back.Dim(2) != 4 {
		t.Fatalf("shape = %v", back.Shape())
	}
	// Normalized output: maximum pixel is 1 (255).
	mx, _ := tensor.Max(back)
	if mx != 1 {
		t.Fatalf("max = %v, want normalized 1", mx)
	}
}

func TestWriteRejectsBadShapes(t *testing.T) {
	dir := t.TempDir()
	if err := WritePPM(filepath.Join(dir, "x.ppm"), tensor.New(1, 4, 4)); err == nil {
		t.Fatal("PPM of 1-channel must fail")
	}
	if err := WritePGM(filepath.Join(dir, "x.pgm"), tensor.New(4, 4)); err == nil {
		t.Fatal("PGM of rank-2 must fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ppm")
	if err := os.WriteFile(path, []byte("P3\n2 2\n255\nnot binary"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPPM(path); err == nil {
		t.Fatal("wrong magic must fail")
	}
	if err := os.WriteFile(path, []byte("P6\n2 2\n255\nxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPPM(path); err == nil {
		t.Fatal("truncated payload must fail")
	}
	if _, err := ReadPPM(filepath.Join(dir, "missing.ppm")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestClippingOnWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ppm")
	img := tensor.Full(2.5, 3, 2, 2) // out of range
	if err := WritePPM(path, img); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPPM(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range back.Data() {
		if v != 1 {
			t.Fatalf("clipped value = %v, want 1", v)
		}
	}
}
