package tensor

import (
	"math/bits"
	"sync"
)

// Pool is a size-bucketed free list of tensor backing buffers. Get borrows a
// buffer (contents are unspecified unless GetZero is used) and Put returns
// it. Buffers are bucketed by power-of-two capacity, so a Put'd buffer can
// satisfy any later Get whose element count rounds up to the same class.
//
// The pool is the allocation backbone of the reusable-memory execution
// engine: an autograd.Graph borrows every forward/backward tensor from a
// Pool and returns them in one sweep (Graph.Release) after the pass, making
// steady-state attack and training iterations allocation-free.
//
// A Pool is safe for concurrent use. For the hot single-threaded paths each
// worker owns its own pool, so the mutex stays uncontended.
type Pool struct {
	mu      sync.Mutex
	buckets map[int][]*Tensor
	// intBuckets recycles integer index buffers (max-pool argmax maps) the
	// same way, keyed by power-of-two capacity.
	intBuckets map[int][][]int

	gets   int64
	misses int64
	puts   int64
}

// maxPerBucket bounds how many free buffers one size class retains; beyond
// that, Put drops the buffer for the GC, keeping pathological shape churn
// from pinning unbounded memory.
const maxPerBucket = 512

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{buckets: make(map[int][]*Tensor), intBuckets: make(map[int][][]int)}
}

// GetInts borrows an integer buffer of length n (contents unspecified).
func (p *Pool) GetInts(n int) []int {
	class := sizeClass(n)
	p.mu.Lock()
	free := p.intBuckets[class]
	if len(free) > 0 {
		buf := free[len(free)-1]
		free[len(free)-1] = nil
		p.intBuckets[class] = free[:len(free)-1]
		p.mu.Unlock()
		return buf[:n]
	}
	p.mu.Unlock()
	return make([]int, n, class)
}

// PutInts returns a whole integer buffer (no sub-slices of live buffers)
// to the pool.
func (p *Pool) PutInts(buf []int) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	class := len(buf)
	if class&(class-1) != 0 {
		class = 1 << (bits.Len(uint(class)) - 1)
	}
	p.mu.Lock()
	if len(p.intBuckets[class]) < maxPerBucket {
		p.intBuckets[class] = append(p.intBuckets[class], buf)
	}
	p.mu.Unlock()
}

// sizeClass rounds n up to the next power of two (minimum 1).
func sizeClass(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Get borrows a tensor with the given shape. The contents are NOT zeroed;
// callers must overwrite every element or use GetZero. The *Tensor struct
// itself (and its shape header) is recycled along with the buffer, so a
// warm Get performs no allocation at all.
func (p *Pool) Get(shape ...int) *Tensor {
	n := checkShape(shape)
	class := sizeClass(n)
	p.mu.Lock()
	p.gets++
	free := p.buckets[class]
	if len(free) > 0 {
		t := free[len(free)-1]
		free[len(free)-1] = nil
		p.buckets[class] = free[:len(free)-1]
		p.mu.Unlock()
		t.data = t.data[:n]
		if cap(t.shape) >= len(shape) {
			t.shape = t.shape[:len(shape)]
			copy(t.shape, shape)
		} else {
			t.shape = append([]int(nil), shape...)
		}
		return t
	}
	p.misses++
	p.mu.Unlock()
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n, class)}
}

// GetZero borrows a zero-filled tensor with the given shape.
func (p *Pool) GetZero(shape ...int) *Tensor {
	t := p.Get(shape...)
	t.Zero()
	return t
}

// Put returns a tensor (struct, shape header and backing buffer) to the
// pool. The caller must not use t — or any view sharing its buffer —
// afterwards. Tensors not allocated by the pool are adopted: their buffer
// is filed under the largest power-of-two class not exceeding its capacity.
//
// Only whole buffers may be Put. Views (Slice, Row, SliceRange, Reshape of
// a sub-range) share a backing array whose capacity extends past the view,
// so adopting one would file live memory belonging to the parent tensor
// into the free list.
func (p *Pool) Put(t *Tensor) {
	if t == nil || cap(t.data) == 0 {
		return
	}
	t.data = t.data[:cap(t.data)]
	class := len(t.data)
	if class&(class-1) != 0 { // not a power of two: file under floor class
		class = 1 << (bits.Len(uint(class)) - 1)
	}
	p.mu.Lock()
	p.puts++
	if len(p.buckets[class]) < maxPerBucket {
		p.buckets[class] = append(p.buckets[class], t)
	}
	p.mu.Unlock()
}

// PoolStats is a snapshot of pool traffic, used by benchmarks and tests to
// assert steady-state reuse.
type PoolStats struct {
	// Gets counts borrow requests; Misses counts the subset that had to
	// allocate fresh memory. A warm steady state shows Misses ≪ Gets.
	Gets, Misses, Puts int64
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Gets: p.gets, Misses: p.misses, Puts: p.puts}
}
