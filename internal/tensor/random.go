package tensor

import "math/rand"

// RNG wraps a deterministic random source for reproducible experiments.
// It is not safe for concurrent use; create one per goroutine.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a seeded generator.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// NormFloat64 returns a standard normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Normal returns a tensor of N(mean, std²) samples.
func (g *RNG) Normal(mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(mean + std*g.r.NormFloat64())
	}
	return t
}

// Uniform returns a tensor of uniform samples in [lo, hi).
func (g *RNG) Uniform(lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(lo + (hi-lo)*g.r.Float64())
	}
	return t
}

// FillNormal overwrites t with N(mean, std²) samples.
func (g *RNG) FillNormal(t *Tensor, mean, std float64) {
	for i := range t.data {
		t.data[i] = float32(mean + std*g.r.NormFloat64())
	}
}

// FillUniform overwrites t with uniform samples in [lo, hi).
func (g *RNG) FillUniform(t *Tensor, lo, hi float64) {
	for i := range t.data {
		t.data[i] = float32(lo + (hi-lo)*g.r.Float64())
	}
}
