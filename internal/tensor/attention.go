package tensor

import "fmt"

// Fused scaled-dot-product attention: softmax(q@kᵀ·scale)@v computed slice
// by slice without ever materializing the full [G,T,T] score tensor. Each
// (sample, head) slice is processed in attnRowBlock-row strips — scores,
// scale, softmax and the value product for one strip all happen while the
// strip is cache-resident — and the backward pass recomputes the strip's
// probabilities instead of loading a stored attention map.
//
// Numerics are pinned to the materializing chain
// (BMM → Scale → SoftmaxLastDim → BMM) bit-for-bit: every score is the same
// sequential dot over dh, the softmax uses the same row-max/float64-sum
// routine, and the backward reductions keep the same ascending-row
// accumulation and saxpy2 pairing as the unfused kernels. attnRowBlock must
// stay EVEN so the pairing of strip-local rows coincides with the full-T
// pairing. Slices are sharded over the worker pool; inside a slice
// everything is serial, so results are bit-identical for every worker
// count.

// attnRowBlock is the number of query rows processed per strip (even, see
// above).
const attnRowBlock = 32

func checkFusedAttention(op string, dst, q, k, v *Tensor) (G, T, dh int) {
	qs := q.shape
	if len(qs) != 3 {
		panic(fmt.Sprintf("tensor: %s requires [G,T,dh] operands, got %v", op, qs))
	}
	if !q.SameShape(k) || !q.SameShape(v) {
		panic(fmt.Sprintf("tensor: %s operand shapes %v/%v/%v differ", op, qs, k.shape, v.shape))
	}
	if len(dst.data) != len(q.data) {
		panic(fmt.Sprintf("tensor: %s destination %v incompatible with %v", op, dst.shape, qs))
	}
	return qs[0], qs[1], qs[2]
}

// FusedAttentionInto stores softmax(q@kᵀ·scale)@v into dst for operands
// shaped [G,T,dh], overwriting it. Strip scratch is borrowed from p when
// non-nil.
func FusedAttentionInto(p *Pool, dst, q, k, v *Tensor, scale float32) {
	G, T, dh := checkFusedAttention("FusedAttentionInto", dst, q, k, v)
	hk, t0 := kernelStart()
	parallelFor(G, 2*G*T*T*dh, func(g0, g1 int) {
		srow := scratch(p, attnRowBlock, T)
		for g := g0; g < g1; g++ {
			sl := g * T * dh
			qg, kg, vg := q.data[sl:sl+T*dh], k.data[sl:sl+T*dh], v.data[sl:sl+T*dh]
			og := dst.data[sl : sl+T*dh]
			for r0 := 0; r0 < T; r0 += attnRowBlock {
				rb := T - r0
				if rb > attnRowBlock {
					rb = attnRowBlock
				}
				s := srow.data[:rb*T]
				dotRows(s, qg[r0*dh:(r0+rb)*dh], kg, rb, dh, T)
				for i := range s {
					s[i] = scale * s[i]
				}
				SoftmaxRowsRaw(s, s, rb, T)
				matMulRows(og[r0*dh:], s, vg, 0, rb, T, dh)
			}
		}
		unscratch(p, srow)
	})
	kernelEnd(hk, t0, KernelAttention)
}

// FusedAttentionBackwardInto computes the gradients of FusedAttentionInto
// given upstream gy [G,T,dh]. gq is overwritten; gk and gv must arrive
// holding their accumulation base (typically zeros) and are accumulated
// into. The strip probabilities are recomputed from q and k — exactly the
// forward arithmetic — so no [G,T,T] attention tensor is ever stored.
func FusedAttentionBackwardInto(p *Pool, gq, gk, gv, q, k, v, gy *Tensor, scale float32) {
	G, T, dh := checkFusedAttention("FusedAttentionBackwardInto", gy, q, k, v)
	if len(gq.data) != len(q.data) || len(gk.data) != len(q.data) || len(gv.data) != len(q.data) {
		panic(fmt.Sprintf("tensor: FusedAttentionBackwardInto gradient shapes %v/%v/%v incompatible with %v",
			gq.shape, gk.shape, gv.shape, q.shape))
	}
	hk, t0 := kernelStart()
	parallelFor(G, 5*G*T*T*dh, func(g0, g1 int) {
		pblk := scratch(p, attnRowBlock, T)
		gblk := scratch(p, attnRowBlock, T)
		for g := g0; g < g1; g++ {
			sl := g * T * dh
			qg, kg, vg := q.data[sl:sl+T*dh], k.data[sl:sl+T*dh], v.data[sl:sl+T*dh]
			gyg := gy.data[sl : sl+T*dh]
			gqg, gkg, gvg := gq.data[sl:sl+T*dh], gk.data[sl:sl+T*dh], gv.data[sl:sl+T*dh]
			for r0 := 0; r0 < T; r0 += attnRowBlock {
				rb := T - r0
				if rb > attnRowBlock {
					rb = attnRowBlock
				}
				P := pblk.data[:rb*T]
				gA := gblk.data[:rb*T]
				qBlk, gyBlk := qg[r0*dh:(r0+rb)*dh], gyg[r0*dh:(r0+rb)*dh]
				// Recompute this strip's probabilities with the forward
				// arithmetic.
				dotRows(P, qBlk, kg, rb, dh, T)
				for i := range P {
					P[i] = scale * P[i]
				}
				SoftmaxRowsRaw(P, P, rb, T)
				// ∂/∂attn and ∂/∂v of the attn@v product.
				dotRows(gA, gyBlk, vg, rb, dh, T)
				transAOuter(gvg, P, gyBlk, T, rb, dh)
				// Softmax backward per row (float32 row dot, as the softmax
				// vertex computes it), then the Scale-vertex backward as its
				// own alpha pass.
				for i := 0; i < rb; i++ {
					row := gA[i*T : (i+1)*T]
					prow := P[i*T : (i+1)*T]
					var dot float32
					for c := 0; c < T; c++ {
						dot += row[c] * prow[c]
					}
					for c := 0; c < T; c++ {
						row[c] = prow[c] * (row[c] - dot)
					}
					for c := 0; c < T; c++ {
						row[c] = scale * row[c]
					}
				}
				// ∂/∂q rows of this strip, and the cross-strip ∂/∂k sum.
				matMulRows(gqg[r0*dh:], gA, kg, 0, rb, T, dh)
				transAOuter(gkg, gA, qBlk, T, rb, dh)
			}
		}
		unscratch(p, pblk, gblk)
	})
	kernelEnd(hk, t0, KernelAttention)
}
