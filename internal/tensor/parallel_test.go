package tensor

import (
	"math"
	"sync"
	"testing"
)

// withWorkers runs f with the kernel worker override pinned to n, restoring
// the previous override afterwards.
func withWorkers(n int, f func()) {
	prev := SetKernelWorkers(n)
	defer SetKernelWorkers(prev)
	f()
}

// bitEqual reports whether two float32 buffers are identical bit patterns
// (NaNs compare by payload, ±0 are distinguished).
func bitEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestKernelWorkersSerialPath is the PELTA_KERNEL_WORKERS=1 regression: with
// the override pinned to 1, parallelFor must degrade to exactly one inline
// body call covering the whole range — the single-threaded path, not a
// 1-worker sharding of it.
func TestKernelWorkersSerialPath(t *testing.T) {
	withWorkers(1, func() {
		if KernelWorkers() != 1 {
			t.Fatalf("KernelWorkers() = %d, want 1", KernelWorkers())
		}
		var calls [][2]int
		parallelFor(1024, 1<<22, func(lo, hi int) {
			calls = append(calls, [2]int{lo, hi})
		})
		if len(calls) != 1 || calls[0] != [2]int{0, 1024} {
			t.Fatalf("worker override 1 sharded the range: calls = %v", calls)
		}
	})
	if prev := SetKernelWorkers(6); prev != 0 {
		t.Fatalf("override not restored: %d", prev)
	}
	if KernelWorkers() != 6 {
		t.Fatalf("KernelWorkers() = %d, want pinned 6", KernelWorkers())
	}
	SetKernelWorkers(0)
}

// TestParallelForCoversRange checks the sharded path partitions [0,n)
// exactly once per index for worker counts that exceed the chunk count and
// for n smaller than the would-be chunk count.
func TestParallelForCoversRange(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{{4, 1024}, {16, 5}, {3, 7}, {8, 999}} {
		withWorkers(tc.workers, func() {
			var mu sync.Mutex
			seen := make([]int, tc.n)
			parallelFor(tc.n, 1<<22, func(lo, hi int) {
				mu.Lock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", tc.workers, tc.n, i, c)
				}
			}
		})
	}
}

// TestMatMulBitIdentityAcrossWorkers pins the tiled matmul (and the transA /
// transB variants) to exact bit equality between the single-threaded path
// and a sharded run. Odd dimensions exercise every tail path of the
// blocked kernels.
func TestMatMulBitIdentityAcrossWorkers(t *testing.T) {
	rng := NewRNG(101)
	// k and n straddle the matmulKC/matmulNC tile sizes so the packed-panel
	// path engages; m*k*n clears parallelThreshold.
	a := rng.Uniform(-1, 1, 67, 193)
	b := rng.Uniform(-1, 1, 193, 301)
	at := rng.Uniform(-1, 1, 193, 67)  // [k,m] for transA
	bt := rng.Uniform(-1, 1, 301, 193) // [n,k] for transB
	var serialMM, serialTB, serialTA *Tensor
	withWorkers(1, func() {
		serialMM = MatMul(a, b)
		serialTB = MatMulTransB(a, bt)
		serialTA = MatMulTransA(at, b)
	})
	for _, w := range []int{2, 5, 8} {
		withWorkers(w, func() {
			if got := MatMul(a, b); !bitEqual(got.Data(), serialMM.Data()) {
				t.Fatalf("workers=%d: MatMul bits diverge from single-threaded", w)
			}
			if got := MatMulTransB(a, bt); !bitEqual(got.Data(), serialTB.Data()) {
				t.Fatalf("workers=%d: MatMulTransB bits diverge", w)
			}
			if got := MatMulTransA(at, b); !bitEqual(got.Data(), serialTA.Data()) {
				t.Fatalf("workers=%d: MatMulTransA bits diverge", w)
			}
		})
	}
}

// TestConvBitIdentityAcrossWorkers pins parallel convolution forward and
// backward (gx, gw and gb) to the single-threaded bits.
func TestConvBitIdentityAcrossWorkers(t *testing.T) {
	rng := NewRNG(202)
	x := rng.Uniform(-1, 1, 5, 3, 13, 13)
	w := rng.Uniform(-1, 1, 7, 3, 3, 3)
	bias := rng.Uniform(-1, 1, 7)
	oh, ow := ConvOut(13, 3, 2, 1), ConvOut(13, 3, 2, 1)
	gy := rng.Uniform(-1, 1, 5, 7, oh, ow)

	run := func() (y, gx, gw, gb *Tensor) {
		p := NewPool()
		y = New(5, 7, oh, ow)
		Conv2dInto(p, y, x, w, bias, 2, 1)
		gx, gw, gb = New(x.Shape()...), New(w.Shape()...), New(7)
		Conv2dBackwardInto(p, gx, gw, gb, x, w, gy, 2, 1)
		return
	}
	var sy, sgx, sgw, sgb *Tensor
	withWorkers(1, func() { sy, sgx, sgw, sgb = run() })
	for _, workers := range []int{2, 8} {
		withWorkers(workers, func() {
			y, gx, gw, gb := run()
			if !bitEqual(y.Data(), sy.Data()) {
				t.Fatalf("workers=%d: conv forward bits diverge", workers)
			}
			if !bitEqual(gx.Data(), sgx.Data()) {
				t.Fatalf("workers=%d: conv gx bits diverge", workers)
			}
			if !bitEqual(gw.Data(), sgw.Data()) {
				t.Fatalf("workers=%d: conv gw bits diverge", workers)
			}
			if !bitEqual(gb.Data(), sgb.Data()) {
				t.Fatalf("workers=%d: conv gb bits diverge", workers)
			}
		})
	}
}

// TestConvTransposeBitIdentityAcrossWorkers pins the pooled transposed
// convolution to the single-threaded bits.
func TestConvTransposeBitIdentityAcrossWorkers(t *testing.T) {
	rng := NewRNG(303)
	x := rng.Uniform(-1, 1, 4, 6, 9, 9)
	w := rng.Uniform(-1, 1, 6, 3, 4, 4)
	var serial *Tensor
	withWorkers(1, func() { serial = ConvTranspose2d(x, w, 3, 0) })
	withWorkers(8, func() {
		p := NewPool()
		got := New(serial.Shape()...)
		ConvTranspose2dInto(p, got, x, w, 3, 0)
		if !bitEqual(got.Data(), serial.Data()) {
			t.Fatal("workers=8: ConvTranspose2dInto bits diverge from single-threaded")
		}
	})
}

// TestFusedAttentionBitIdentityAcrossWorkers pins the fused attention
// forward and backward to the single-threaded bits. T=65 (ViT token count)
// exercises the odd tail strip.
func TestFusedAttentionBitIdentityAcrossWorkers(t *testing.T) {
	rng := NewRNG(404)
	const G, T, dh = 12, 65, 16
	q := rng.Uniform(-1, 1, G, T, dh)
	k := rng.Uniform(-1, 1, G, T, dh)
	v := rng.Uniform(-1, 1, G, T, dh)
	gy := rng.Uniform(-1, 1, G, T, dh)
	scale := float32(1 / math.Sqrt(float64(dh)))

	run := func() (y, gq, gk, gv *Tensor) {
		p := NewPool()
		y = New(G, T, dh)
		FusedAttentionInto(p, y, q, k, v, scale)
		gq, gk, gv = New(G, T, dh), New(G, T, dh), New(G, T, dh)
		FusedAttentionBackwardInto(p, gq, gk, gv, q, k, v, gy, scale)
		return
	}
	var sy, sgq, sgk, sgv *Tensor
	withWorkers(1, func() { sy, sgq, sgk, sgv = run() })
	for _, workers := range []int{3, 8} {
		withWorkers(workers, func() {
			y, gq, gk, gv := run()
			if !bitEqual(y.Data(), sy.Data()) {
				t.Fatalf("workers=%d: fused attention forward bits diverge", workers)
			}
			if !bitEqual(gq.Data(), sgq.Data()) {
				t.Fatalf("workers=%d: fused attention gq bits diverge", workers)
			}
			if !bitEqual(gk.Data(), sgk.Data()) {
				t.Fatalf("workers=%d: fused attention gk bits diverge", workers)
			}
			if !bitEqual(gv.Data(), sgv.Data()) {
				t.Fatalf("workers=%d: fused attention gv bits diverge", workers)
			}
		})
	}
}

// TestFusedAttentionMatchesMaterializingChain pins the fused kernel to the
// unfused BMM → Scale → SoftmaxRows → BMM composition bit-for-bit — the
// property that lets nn.MultiHeadSelfAttention switch paths freely.
func TestFusedAttentionMatchesMaterializingChain(t *testing.T) {
	rng := NewRNG(505)
	const G, T, dh = 6, 33, 8
	q := rng.Uniform(-1, 1, G, T, dh)
	k := rng.Uniform(-1, 1, G, T, dh)
	v := rng.Uniform(-1, 1, G, T, dh)
	scale := float32(1 / math.Sqrt(float64(dh)))

	fused := New(G, T, dh)
	FusedAttentionInto(nil, fused, q, k, v, scale)

	// Materializing reference: kᵀ per slice, scores, scale, softmax, @v.
	kT := New(G, dh, T)
	for g := 0; g < G; g++ {
		transposeScatterBias(kT.Data()[g*T*dh:(g+1)*T*dh], k.Data()[g*T*dh:(g+1)*T*dh], nil, dh, T)
	}
	scores := New(G, T, T)
	BMMInto(scores, q, kT)
	ScaleInto(scores, scores, scale)
	SoftmaxRowsRaw(scores.Data(), scores.Data(), G*T, T)
	ref := New(G, T, dh)
	BMMInto(ref, scores, v)

	if !bitEqual(fused.Data(), ref.Data()) {
		t.Fatal("fused attention bits diverge from the materializing chain")
	}
}

// TestWorkerPoolConcurrentCallers hammers the shared pool from many
// concurrent ParallelOracle-style callers, each running nested parallel
// kernels, and checks every caller still gets bit-exact results. Run under
// -race this doubles as the data-race probe for the caller-runs scheduler.
func TestWorkerPoolConcurrentCallers(t *testing.T) {
	rng := NewRNG(606)
	a := rng.Uniform(-1, 1, 96, 160)
	b := rng.Uniform(-1, 1, 160, 224)
	x := rng.Uniform(-1, 1, 4, 3, 11, 11)
	w := rng.Uniform(-1, 1, 5, 3, 3, 3)
	var wantMM, wantConv *Tensor
	withWorkers(1, func() {
		wantMM = MatMul(a, b)
		wantConv = Conv2d(x, w, nil, 1, 1)
	})

	withWorkers(8, func() {
		const callers = 8
		errs := make(chan string, callers)
		var wg sync.WaitGroup
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p := NewPool()
				dst := New(96, 224)
				conv := New(wantConv.Shape()...)
				for it := 0; it < 20; it++ {
					MatMulInto(dst, a, b)
					if !bitEqual(dst.Data(), wantMM.Data()) {
						errs <- "matmul bits diverged under concurrency"
						return
					}
					Conv2dInto(p, conv, x, w, nil, 1, 1)
					if !bitEqual(conv.Data(), wantConv.Data()) {
						errs <- "conv bits diverged under concurrency"
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	})
}
