package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		want  int
	}{
		{"scalar-ish", []int{1}, 1},
		{"vector", []int{7}, 7},
		{"matrix", []int{3, 4}, 12},
		{"image", []int{2, 3, 8, 8}, 384},
		{"empty-dim", []int{0, 5}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if x.Len() != tt.want {
				t.Fatalf("Len = %d, want %d", x.Len(), tt.want)
			}
			if x.Rank() != len(tt.shape) {
				t.Fatalf("Rank = %d, want %d", x.Rank(), len(tt.shape))
			}
		})
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(42, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 42 {
		t.Fatalf("At = %v, want 42", got)
	}
	if got := x.Data()[1*12+2*4+3]; got != 42 {
		t.Fatalf("flat layout wrong: %v", got)
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 1)
	if x.At(0, 1) != 99 {
		t.Fatal("Reshape must share backing data")
	}
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Dim(0))
	}
}

func TestReshapeBadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 7
	if x.Data()[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestSliceView(t *testing.T) {
	x := New(2, 3, 2, 2)
	x.Set(5, 1, 2, 1, 1)
	s := x.Slice(1)
	if s.At(2, 1, 1) != 5 {
		t.Fatal("Slice should view second sample")
	}
	s.Set(9, 0, 0, 0)
	if x.At(1, 0, 0, 0) != 9 {
		t.Fatal("Slice must share data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3}, 3)
	b := FromSlice([]float32{4, 5, -6}, 3)
	if got := Add(a, b).Data(); got[0] != 5 || got[1] != 3 || got[2] != -3 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(a, b).Data(); got[0] != -3 || got[1] != -7 || got[2] != 9 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data(); got[0] != 4 || got[1] != -10 || got[2] != -18 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Sign(a).Data(); got[0] != 1 || got[1] != -1 || got[2] != 1 {
		t.Fatalf("Sign = %v", got)
	}
	if got := Abs(a).Data(); got[1] != 2 {
		t.Fatalf("Abs = %v", got)
	}
	if got := Clamp(a, -1, 1).Data(); got[1] != -1 || got[2] != 1 {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 4}, 2)
	AddIn(a, b)
	if a.Data()[0] != 4 || a.Data()[1] != 6 {
		t.Fatalf("AddIn = %v", a.Data())
	}
	AddScaledIn(a, 0.5, b)
	if a.Data()[0] != 5.5 || a.Data()[1] != 8 {
		t.Fatalf("AddScaledIn = %v", a.Data())
	}
	ScaleIn(a, 2)
	if a.Data()[0] != 11 {
		t.Fatalf("ScaleIn = %v", a.Data())
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{1, 5, -3, 2}, 4)
	if Sum(a) != 5 {
		t.Fatalf("Sum = %v", Sum(a))
	}
	if Mean(a) != 1.25 {
		t.Fatalf("Mean = %v", Mean(a))
	}
	if v, at := Max(a); v != 5 || at != 1 {
		t.Fatalf("Max = %v @ %d", v, at)
	}
	if Argmax(a) != 1 {
		t.Fatal("Argmax wrong")
	}
	if got := NormLInf(a); got != 5 {
		t.Fatalf("NormLInf = %v", got)
	}
	if got := NormL2(FromSlice([]float32{3, 4}, 2)); math.Abs(got-5) > 1e-9 {
		t.Fatalf("NormL2 = %v", got)
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 9, 2, 8, 0, 3}, 2, 3)
	got := ArgmaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows = %v", got)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 1, 1, 1000, 0, 0}, 2, 3)
	s := SoftmaxRows(a)
	for c := 0; c < 3; c++ {
		if math.Abs(float64(s.At(0, c))-1.0/3) > 1e-6 {
			t.Fatalf("uniform softmax row wrong: %v", s.Row(0).Data())
		}
	}
	if s.At(1, 0) < 0.999 {
		t.Fatal("softmax should be stable for large logits")
	}
	sum := Sum(s.Row(1).Reshape(1, 3))
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("softmax row must sum to 1, got %v", sum)
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("shape = %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatal("Transpose values wrong")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := NewRNG(1)
	a := rng.Normal(0, 1, 7, 5)
	b := rng.Normal(0, 1, 5, 9)
	want := MatMul(a, b)
	gotTB := MatMulTransB(a, Transpose(b))
	if !want.AllClose(gotTB, 1e-4) {
		t.Fatal("MatMulTransB disagrees with MatMul")
	}
	gotTA := MatMulTransA(Transpose(a), b)
	if !want.AllClose(gotTA, 1e-4) {
		t.Fatal("MatMulTransA disagrees with MatMul")
	}
}

func TestMatMulLargeParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(2)
	a := rng.Normal(0, 1, 130, 64)
	b := rng.Normal(0, 1, 64, 70)
	got := MatMul(a, b) // exercises the parallel path
	// Serial reference.
	want := New(130, 70)
	for i := 0; i < 130; i++ {
		for j := 0; j < 70; j++ {
			var s float64
			for p := 0; p < 64; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			want.Set(float32(s), i, j)
		}
	}
	if !got.AllClose(want, 1e-3) {
		t.Fatal("parallel MatMul disagrees with serial reference")
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner-dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

func TestMatMulAssociativityWithIdentity(t *testing.T) {
	// Property: A @ I == A for random A.
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		a := rng.Normal(0, 1, 4, 4)
		id := New(4, 4)
		for i := 0; i < 4; i++ {
			id.Set(1, i, i)
		}
		return MatMul(a, id).AllClose(a, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7).Normal(0, 1, 10)
	b := NewRNG(7).Normal(0, 1, 10)
	if !a.AllClose(b, 0) {
		t.Fatal("same seed must give same tensor")
	}
	c := NewRNG(8).Normal(0, 1, 10)
	if a.AllClose(c, 1e-9) {
		t.Fatal("different seeds should differ")
	}
}

func TestUniformRange(t *testing.T) {
	u := NewRNG(3).Uniform(-0.5, 0.5, 1000)
	for _, v := range u.Data() {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("uniform sample %v out of range", v)
		}
	}
}
