package tensor

import (
	"fmt"
	"testing"
)

// Kernel-layer benchmarks: the raw hot loops under every attack iteration,
// FL round and served query. Shapes are BiT-stem-scale so the cache-blocked
// and parallel paths actually engage (the -short model zoo runs below the
// parallel threshold by design).

func benchConvOperands(b *testing.B) (p *Pool, x, w, bias *Tensor, stride, pad int) {
	b.Helper()
	rng := NewRNG(42)
	p = NewPool()
	x = rng.Uniform(-1, 1, 8, 16, 32, 32) // [B,C,H,W]
	w = rng.Uniform(-1, 1, 32, 16, 3, 3)  // [O,C,kh,kw]
	bias = rng.Uniform(-1, 1, 32)
	return p, x, w, bias, 1, 1
}

// BenchmarkConv2dForward times the batched pooled convolution forward.
func BenchmarkConv2dForward(b *testing.B) {
	p, x, w, bias, stride, pad := benchConvOperands(b)
	oh := ConvOut(x.Dim(2), w.Dim(2), stride, pad)
	ow := ConvOut(x.Dim(3), w.Dim(3), stride, pad)
	dst := New(x.Dim(0), w.Dim(0), oh, ow)
	Conv2dInto(p, dst, x, w, bias, stride, pad)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2dInto(p, dst, x, w, bias, stride, pad)
	}
}

// BenchmarkConv2dBackward times the convolution backward kernel with weight
// and bias gradients on (the training path; attack oracles skip gw/gb).
func BenchmarkConv2dBackward(b *testing.B) {
	p, x, w, _, stride, pad := benchConvOperands(b)
	oh := ConvOut(x.Dim(2), w.Dim(2), stride, pad)
	ow := ConvOut(x.Dim(3), w.Dim(3), stride, pad)
	rng := NewRNG(43)
	gy := rng.Uniform(-1, 1, x.Dim(0), w.Dim(0), oh, ow)
	gx := New(x.Shape()...)
	gw := New(w.Shape()...)
	gb := New(w.Dim(0))
	Conv2dBackwardInto(p, gx, gw, gb, x, w, gy, stride, pad)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gb.Zero()
		Conv2dBackwardInto(p, gx, gw, gb, x, w, gy, stride, pad)
	}
}

// BenchmarkConv2dBackwardInputOnly times the attack-oracle variant: ∇x only,
// no weight or bias gradient products.
func BenchmarkConv2dBackwardInputOnly(b *testing.B) {
	p, x, w, _, stride, pad := benchConvOperands(b)
	oh := ConvOut(x.Dim(2), w.Dim(2), stride, pad)
	ow := ConvOut(x.Dim(3), w.Dim(3), stride, pad)
	rng := NewRNG(44)
	gy := rng.Uniform(-1, 1, x.Dim(0), w.Dim(0), oh, ow)
	gx := New(x.Shape()...)
	Conv2dBackwardInto(p, gx, nil, nil, x, w, gy, stride, pad)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2dBackwardInto(p, gx, nil, nil, x, w, gy, stride, pad)
	}
}

// BenchmarkConvTranspose2d times the §V-B adjoint upsampling kernel.
func BenchmarkConvTranspose2d(b *testing.B) {
	rng := NewRNG(45)
	x := rng.Uniform(-1, 1, 8, 16, 16, 16)
	w := rng.Uniform(-1, 1, 16, 3, 4, 4) // [C,O,kh,kw]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := ConvTranspose2d(x, w, 2, 0)
		_ = out
	}
}

func benchAttentionOperands(b *testing.B) (q, k, v *Tensor, scale float32) {
	b.Helper()
	// [B*heads, T, dh] at ViT scale: batch 4 × 4 heads, 65 tokens, 48-dim heads.
	rng := NewRNG(47)
	q = rng.Uniform(-1, 1, 16, 65, 48)
	k = rng.Uniform(-1, 1, 16, 65, 48)
	v = rng.Uniform(-1, 1, 16, 65, 48)
	return q, k, v, float32(1.0 / 8)
}

// BenchmarkAttentionFused times the strip-blocked fused attention kernel
// (QKᵀ → scale → softmax → @V without materializing the [G,T,T] scores).
func BenchmarkAttentionFused(b *testing.B) {
	q, k, v, scale := benchAttentionOperands(b)
	p := NewPool()
	dst := New(q.Shape()...)
	FusedAttentionInto(p, dst, q, k, v, scale)
	b.Run("Forward", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			FusedAttentionInto(p, dst, q, k, v, scale)
		}
	})
	b.Run("Backward", func(b *testing.B) {
		rng := NewRNG(48)
		gy := rng.Uniform(-1, 1, q.Shape()...)
		gq, gk, gv := New(q.Shape()...), New(q.Shape()...), New(q.Shape()...)
		FusedAttentionBackwardInto(p, gq, gk, gv, q, k, v, gy, scale)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gk.Zero()
			gv.Zero()
			FusedAttentionBackwardInto(p, gq, gk, gv, q, k, v, gy, scale)
		}
	})
}

// BenchmarkAttentionMaterializing times the pre-fusion forward chain
// (kᵀ, BMM scores, scale, softmax, BMM context) over preallocated buffers —
// the memory-traffic baseline the fused kernel replaces.
func BenchmarkAttentionMaterializing(b *testing.B) {
	q, k, v, scale := benchAttentionOperands(b)
	g, t, dh := q.Dim(0), q.Dim(1), q.Dim(2)
	kT := New(g, dh, t)
	scores := New(g, t, t)
	dst := New(g, t, dh)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < g; s++ {
			transposeScatterBias(kT.Data()[s*t*dh:(s+1)*t*dh], k.Data()[s*t*dh:(s+1)*t*dh], nil, dh, t)
		}
		BMMInto(scores, q, kT)
		ScaleInto(scores, scores, scale)
		SoftmaxRowsRaw(scores.Data(), scores.Data(), g*t, t)
		BMMInto(dst, scores, v)
	}
}

// BenchmarkMatMul times the 2-D product at a paper-scale-ish shape where the
// cache-blocked path engages.
func BenchmarkMatMul(b *testing.B) {
	for _, sz := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", sz), func(b *testing.B) {
			rng := NewRNG(46)
			a := rng.Uniform(-1, 1, sz, sz)
			bb := rng.Uniform(-1, 1, sz, sz)
			dst := New(sz, sz)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, bb)
			}
		})
	}
}
