package tensor

import (
	"sync/atomic"
	"time"
)

// KernelOp classifies the kernel families reported by the boundary hook.
// The values mirror internal/obs's kernel indices.
type KernelOp int32

// Kernel families.
const (
	KernelMatMul KernelOp = iota
	KernelConv
	KernelAttention
)

// KernelHook observes kernel-boundary timing: Now supplies the timebase
// (so observers run on an injected clock) and Observe receives one
// completed kernel invocation. Observe may be called concurrently from
// worker goroutines and must not call back into tensor ops.
type KernelHook struct {
	Now     func() time.Time
	Observe func(op KernelOp, d time.Duration)
}

// kernelHook is the process-global boundary observer; nil (the default)
// keeps every kernel entry at a single atomic load of overhead.
var kernelHook atomic.Pointer[KernelHook]

// SetKernelHook installs h as the kernel-boundary observer (nil removes
// it). A hook with a missing Now or Observe func is rejected by panic —
// half-installed hooks would crash inside the kernels instead.
func SetKernelHook(h *KernelHook) {
	if h != nil && (h.Now == nil || h.Observe == nil) {
		panic("tensor: SetKernelHook requires both Now and Observe")
	}
	kernelHook.Store(h)
}

// kernelStart loads the hook and samples the start instant. A nil hook
// costs one atomic load and no clock read.
func kernelStart() (*KernelHook, time.Time) {
	h := kernelHook.Load()
	if h == nil {
		return nil, time.Time{}
	}
	return h, h.Now()
}

// kernelEnd reports the completed invocation to the hook, if any.
func kernelEnd(h *KernelHook, t0 time.Time, op KernelOp) {
	if h != nil {
		h.Observe(op, h.Now().Sub(t0))
	}
}
