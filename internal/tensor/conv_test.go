package tensor

import (
	"math"
	"testing"
)

func TestConvOut(t *testing.T) {
	tests := []struct {
		in, k, s, p, want int
	}{
		{32, 3, 1, 1, 32},
		{32, 3, 2, 1, 16},
		{8, 2, 2, 0, 4},
		{5, 3, 1, 0, 3},
		{7, 7, 1, 3, 7},
	}
	for _, tt := range tests {
		if got := ConvOut(tt.in, tt.k, tt.s, tt.p); got != tt.want {
			t.Errorf("ConvOut(%d,%d,%d,%d) = %d, want %d", tt.in, tt.k, tt.s, tt.p, got, tt.want)
		}
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: rows are just the pixels.
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	cols := Im2Col(x, 1, 1, 1, 0)
	if cols.Dim(0) != 4 || cols.Dim(1) != 1 {
		t.Fatalf("cols shape = %v", cols.Shape())
	}
	for i, want := range []float32{1, 2, 3, 4} {
		if cols.At(i, 0) != want {
			t.Fatalf("cols = %v", cols.Data())
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	x := Ones(1, 2, 2)
	cols := Im2Col(x, 3, 3, 1, 1) // 2x2 outputs, 9 taps each
	// Center output (0,0) window covers pad row/col: 4 ones, 5 zeros.
	row := cols.Row(0).Data()
	var n float32
	for _, v := range row {
		n += v
	}
	if n != 4 {
		t.Fatalf("padded window sum = %v, want 4", n)
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> for random x, y — the defining
	// property of an adjoint, which conv backward relies on.
	rng := NewRNG(11)
	c, h, w, kh, kw, s, p := 3, 6, 5, 3, 3, 2, 1
	x := rng.Normal(0, 1, c, h, w)
	oh, ow := ConvOut(h, kh, s, p), ConvOut(w, kw, s, p)
	y := rng.Normal(0, 1, oh*ow, c*kh*kw)
	lhs := Dot(Im2Col(x, kh, kw, s, p), y)
	rhs := Dot(x, Col2Im(y, c, h, w, kh, kw, s, p))
	if math.Abs(lhs-rhs) > 1e-3 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestConv2dKnownValues(t *testing.T) {
	// Single 2x2 input, 2x2 kernel of ones, no pad: output = sum of input.
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	w := Ones(1, 1, 2, 2)
	y := Conv2d(x, w, nil, 1, 0)
	if y.Len() != 1 || y.Data()[0] != 10 {
		t.Fatalf("conv = %v", y.Data())
	}
}

func TestConv2dBias(t *testing.T) {
	x := Ones(1, 1, 2, 2)
	w := Ones(2, 1, 1, 1)
	b := FromSlice([]float32{10, -10}, 2)
	y := Conv2d(x, w, b, 1, 0)
	if y.At(0, 0, 0, 0) != 11 || y.At(0, 1, 0, 0) != -9 {
		t.Fatalf("conv+bias = %v", y.Data())
	}
}

func TestConv2dBatchConsistency(t *testing.T) {
	rng := NewRNG(5)
	x := rng.Normal(0, 1, 3, 2, 5, 5)
	w := rng.Normal(0, 1, 4, 2, 3, 3)
	b := rng.Normal(0, 1, 4)
	y := Conv2d(x, w, b, 1, 1)
	// Per-sample conv must equal the batched result.
	for i := 0; i < 3; i++ {
		xi := x.Slice(i).Reshape(1, 2, 5, 5)
		yi := Conv2d(xi, w, b, 1, 1)
		if !yi.Reshape(4, 5, 5).AllClose(y.Slice(i), 1e-5) {
			t.Fatalf("sample %d disagrees with batch", i)
		}
	}
}

func TestConv2dBackwardNumeric(t *testing.T) {
	// Finite-difference check of gx, gw, gb on a small conv.
	rng := NewRNG(6)
	x := rng.Normal(0, 1, 1, 2, 4, 4)
	w := rng.Normal(0, 0.5, 3, 2, 3, 3)
	b := rng.Normal(0, 0.5, 3)
	loss := func(x, w, b *Tensor) float64 {
		y := Conv2d(x, w, b, 1, 1)
		// Quadratic loss 0.5*||y||² so dL/dy = y.
		return 0.5 * Dot(y, y)
	}
	y := Conv2d(x, w, b, 1, 1)
	gx, gw, gb := Conv2dBackward(x, w, true, y, 1, 1)

	const eps = 1e-2
	checkGrad := func(name string, param, grad *Tensor, idxs []int) {
		for _, i := range idxs {
			orig := param.Data()[i]
			param.Data()[i] = orig + eps
			lp := loss(x, w, b)
			param.Data()[i] = orig - eps
			lm := loss(x, w, b)
			param.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			got := float64(grad.Data()[i])
			if math.Abs(num-got) > 2e-2*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: numeric %v vs analytic %v", name, i, num, got)
			}
		}
	}
	checkGrad("x", x, gx, []int{0, 7, 15, 31})
	checkGrad("w", w, gw, []int{0, 9, 17, 53})
	checkGrad("b", b, gb, []int{0, 1, 2})
}

func TestConvTranspose2dUpsamples(t *testing.T) {
	// stride-2 transposed conv on [1,1,2,2] with 2x2 kernel -> [1,1,4,4].
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	w := Ones(1, 1, 2, 2)
	y := ConvTranspose2d(x, w, 2, 0)
	if y.Dim(2) != 4 || y.Dim(3) != 4 {
		t.Fatalf("shape = %v", y.Shape())
	}
	// Each input pixel paints a disjoint 2x2 block.
	if y.At(0, 0, 0, 0) != 1 || y.At(0, 0, 0, 2) != 2 || y.At(0, 0, 2, 0) != 3 || y.At(0, 0, 3, 3) != 4 {
		t.Fatalf("values = %v", y.Data())
	}
}

func TestConvTransposeShapeInverse(t *testing.T) {
	// A stride-s conv followed by a stride-s transposed conv with the same
	// geometry must restore the spatial dims (geometric inverse property
	// exploited by the BPDA upsampler).
	rng := NewRNG(9)
	x := rng.Normal(0, 1, 2, 3, 8, 8)
	w := rng.Normal(0, 1, 5, 3, 4, 4)
	y := Conv2d(x, w, nil, 4, 0) // [2,5,2,2]
	wt := rng.Normal(0, 1, 5, 3, 4, 4)
	up := ConvTranspose2d(y, wt, 4, 0)
	if up.Dim(1) != 3 || up.Dim(2) != 8 || up.Dim(3) != 8 {
		t.Fatalf("upsampled shape = %v, want [2 3 8 8]", up.Shape())
	}
}

func TestMaxPool2d(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y, idx := MaxPool2d(x, 2, 2)
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("pool = %v, want %v", y.Data(), want)
		}
	}
	if idx[0] != 5 || idx[3] != 15 {
		t.Fatalf("argmax idx = %v", idx)
	}
}

func TestAvgPool2dGlobal(t *testing.T) {
	x := FromSlice([]float32{1, 3, 5, 7, 2, 2, 2, 2}, 1, 2, 2, 2)
	y := AvgPool2dGlobal(x)
	if y.At(0, 0) != 4 || y.At(0, 1) != 2 {
		t.Fatalf("avg = %v", y.Data())
	}
}

func TestPadUnpadRoundTrip(t *testing.T) {
	rng := NewRNG(4)
	x := rng.Normal(0, 1, 2, 3, 5, 5)
	p := Pad2d(x, 2)
	if p.Dim(2) != 9 || p.Dim(3) != 9 {
		t.Fatalf("pad shape = %v", p.Shape())
	}
	back := Unpad2d(p, 2)
	if !back.AllClose(x, 0) {
		t.Fatal("Unpad(Pad(x)) != x")
	}
	// Border must be zero.
	if p.At(0, 0, 0, 0) != 0 || p.At(1, 2, 8, 8) != 0 {
		t.Fatal("padding should be zero")
	}
}
