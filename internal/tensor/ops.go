package tensor

import (
	"fmt"
	"math"
)

// binOp applies f elementwise over equal-shaped tensors into a fresh tensor.
func binOp(a, b *Tensor, f func(x, y float32) float32) *Tensor {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: elementwise op on mismatched shapes %v vs %v", a.shape, b.shape))
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i], b.data[i])
	}
	return out
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor { return binOp(a, b, func(x, y float32) float32 { return x + y }) }

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor { return binOp(a, b, func(x, y float32) float32 { return x - y }) }

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor { return binOp(a, b, func(x, y float32) float32 { return x * y }) }

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor { return binOp(a, b, func(x, y float32) float32 { return x / y }) }

// AddIn accumulates src into dst in place.
func AddIn(dst, src *Tensor) {
	if len(dst.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: AddIn size mismatch %v vs %v", dst.shape, src.shape))
	}
	for i := range dst.data {
		dst.data[i] += src.data[i]
	}
}

// SubIn subtracts src from dst in place.
func SubIn(dst, src *Tensor) {
	if len(dst.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: SubIn size mismatch %v vs %v", dst.shape, src.shape))
	}
	for i := range dst.data {
		dst.data[i] -= src.data[i]
	}
}

// MulIn multiplies dst by src elementwise in place.
func MulIn(dst, src *Tensor) {
	if len(dst.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: MulIn size mismatch %v vs %v", dst.shape, src.shape))
	}
	for i := range dst.data {
		dst.data[i] *= src.data[i]
	}
}

// AddScaledIn performs dst += alpha*src in place (axpy).
func AddScaledIn(dst *Tensor, alpha float32, src *Tensor) {
	if len(dst.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: AddScaledIn size mismatch %v vs %v", dst.shape, src.shape))
	}
	for i := range dst.data {
		dst.data[i] += alpha * src.data[i]
	}
}

// Scale returns alpha*a.
func Scale(a *Tensor, alpha float32) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = alpha * v
	}
	return out
}

// ScaleIn multiplies a by alpha in place.
func ScaleIn(a *Tensor, alpha float32) {
	for i := range a.data {
		a.data[i] *= alpha
	}
}

// AddScalar returns a + c.
func AddScalar(a *Tensor, c float32) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = v + c
	}
	return out
}

// Apply returns f applied elementwise.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.shape...)
	for i, v := range a.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyIn applies f elementwise in place.
func ApplyIn(a *Tensor, f func(float32) float32) {
	for i, v := range a.data {
		a.data[i] = f(v)
	}
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return Scale(a, -1) }

// Sign returns the elementwise sign of a (-1, 0, or +1).
func Sign(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 {
		switch {
		case v > 0:
			return 1
		case v < 0:
			return -1
		default:
			return 0
		}
	})
}

// Abs returns |a| elementwise.
func Abs(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 {
		if v < 0 {
			return -v
		}
		return v
	})
}

// Exp returns e^a elementwise.
func Exp(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(math.Exp(float64(v))) })
}

// Log returns ln(a) elementwise.
func Log(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(math.Log(float64(v))) })
}

// Sqrt returns sqrt(a) elementwise.
func Sqrt(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(math.Sqrt(float64(v))) })
}

// Tanh returns tanh(a) elementwise.
func Tanh(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(math.Tanh(float64(v))) })
}

// Clamp returns a with every element clipped into [lo, hi].
func Clamp(a *Tensor, lo, hi float32) *Tensor {
	return Apply(a, func(v float32) float32 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}

// ClampIn clips in place.
func ClampIn(a *Tensor, lo, hi float32) {
	ApplyIn(a, func(v float32) float32 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Sum returns the sum of all elements in float64 for accuracy.
func Sum(a *Tensor) float64 {
	s := 0.0
	for _, v := range a.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func Mean(a *Tensor) float64 {
	if len(a.data) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a.data))
}

// Max returns the maximum element and its flat index.
func Max(a *Tensor) (float32, int) {
	if len(a.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, at := a.data[0], 0
	for i, v := range a.data {
		if v > best {
			best, at = v, i
		}
	}
	return best, at
}

// Argmax returns the flat index of the maximum element.
func Argmax(a *Tensor) int {
	_, at := Max(a)
	return at
}

// ArgmaxRows returns, for a 2-D tensor, the argmax of every row.
func ArgmaxRows(a *Tensor) []int {
	if len(a.shape) != 2 {
		panic("tensor: ArgmaxRows requires a 2-D tensor")
	}
	rows, cols := a.shape[0], a.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best := a.data[r*cols]
		for c := 1; c < cols; c++ {
			if v := a.data[r*cols+c]; v > best {
				best = v
				out[r] = c
			}
		}
	}
	return out
}

// Dot returns the inner product of two equal-length tensors.
func Dot(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %v vs %v", a.shape, b.shape))
	}
	s := 0.0
	for i := range a.data {
		s += float64(a.data[i]) * float64(b.data[i])
	}
	return s
}

// NormL2 returns the Euclidean norm.
func NormL2(a *Tensor) float64 { return math.Sqrt(Dot(a, a)) }

// NormLInf returns the maximum absolute element.
func NormLInf(a *Tensor) float64 {
	m := 0.0
	for _, v := range a.data {
		av := math.Abs(float64(v))
		if av > m {
			m = av
		}
	}
	return m
}

// SoftmaxRows returns row-wise softmax of a 2-D tensor, numerically
// stabilized by the row max.
func SoftmaxRows(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: SoftmaxRows requires a 2-D tensor")
	}
	rows, cols := a.shape[0], a.shape[1]
	out := New(rows, cols)
	for r := 0; r < rows; r++ {
		row := a.data[r*cols : (r+1)*cols]
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		o := out.data[r*cols : (r+1)*cols]
		for i, v := range row {
			e := math.Exp(float64(v - mx))
			o[i] = float32(e)
			sum += e
		}
		inv := float32(1.0 / sum)
		for i := range o {
			o[i] *= inv
		}
	}
	return out
}

// SumRows returns the column-wise sum of a 2-D tensor (shape [cols]).
func SumRows(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: SumRows requires a 2-D tensor")
	}
	rows, cols := a.shape[0], a.shape[1]
	out := New(cols)
	for r := 0; r < rows; r++ {
		row := a.data[r*cols : (r+1)*cols]
		for c, v := range row {
			out.data[c] += v
		}
	}
	return out
}

// AddRowVectorIn adds a length-cols vector to every row of a 2-D tensor in
// place (broadcast bias add).
func AddRowVectorIn(a, v *Tensor) {
	if len(a.shape) != 2 {
		panic("tensor: AddRowVectorIn requires a 2-D tensor")
	}
	cols := a.shape[1]
	if v.Len() != cols {
		panic(fmt.Sprintf("tensor: AddRowVectorIn vector length %d != cols %d", v.Len(), cols))
	}
	for r := 0; r < a.shape[0]; r++ {
		row := a.data[r*cols : (r+1)*cols]
		for c := range row {
			row[c] += v.data[c]
		}
	}
}

// checkSameLen panics unless all operands have equal element counts.
func checkSameLen(op string, dst *Tensor, srcs ...*Tensor) {
	for _, s := range srcs {
		if len(dst.data) != len(s.data) {
			panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, dst.shape, s.shape))
		}
	}
}

// AddInto stores a + b into dst. dst may alias either operand.
func AddInto(dst, a, b *Tensor) {
	checkSameLen("AddInto", dst, a, b)
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
}

// SubInto stores a - b into dst. dst may alias either operand.
func SubInto(dst, a, b *Tensor) {
	checkSameLen("SubInto", dst, a, b)
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
}

// MulInto stores a ⊙ b into dst. dst may alias either operand.
func MulInto(dst, a, b *Tensor) {
	checkSameLen("MulInto", dst, a, b)
	for i := range dst.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
}

// ScaleInto stores alpha*a into dst. dst may alias a.
func ScaleInto(dst, a *Tensor, alpha float32) {
	checkSameLen("ScaleInto", dst, a)
	for i := range dst.data {
		dst.data[i] = alpha * a.data[i]
	}
}

// ApplyInto stores f applied elementwise over a into dst. dst may alias a.
func ApplyInto(dst, a *Tensor, f func(float32) float32) {
	checkSameLen("ApplyInto", dst, a)
	for i := range dst.data {
		dst.data[i] = f(a.data[i])
	}
}

// SoftmaxRowsInto stores the row-wise softmax of a 2-D tensor into dst,
// numerically stabilized by the row max. dst may alias a.
func SoftmaxRowsInto(dst, a *Tensor) {
	if len(a.shape) != 2 {
		panic("tensor: SoftmaxRowsInto requires a 2-D tensor")
	}
	checkSameLen("SoftmaxRowsInto", dst, a)
	SoftmaxRowsRaw(dst.data, a.data, a.shape[0], a.shape[1])
}

// SoftmaxRowsRaw is SoftmaxRowsInto on raw buffers interpreted as
// [rows, cols] row-major.
func SoftmaxRowsRaw(dst, a []float32, rows, cols int) {
	for r := 0; r < rows; r++ {
		row := a[r*cols : (r+1)*cols]
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		o := dst[r*cols : (r+1)*cols]
		for i, v := range row {
			e := math.Exp(float64(v - mx))
			o[i] = float32(e)
			sum += e
		}
		inv := float32(1.0 / sum)
		for i := range o {
			o[i] *= inv
		}
	}
}

// AddRowVectorRaw adds a length-cols vector to every row of a [rows, cols]
// raw buffer in place.
func AddRowVectorRaw(a []float32, rows, cols int, v []float32) {
	for r := 0; r < rows; r++ {
		row := a[r*cols : (r+1)*cols]
		for c := range row {
			row[c] += v[c]
		}
	}
}

// SumRowsRaw stores the column-wise sum of a [rows, cols] raw buffer into
// dst [cols], overwriting it.
func SumRowsRaw(dst, a []float32, rows, cols int) {
	for c := range dst {
		dst[c] = 0
	}
	for r := 0; r < rows; r++ {
		row := a[r*cols : (r+1)*cols]
		for c, v := range row {
			dst[c] += v
		}
	}
}

// SumRowsInto stores the column-wise sum of a 2-D tensor into dst [cols].
func SumRowsInto(dst, a *Tensor) {
	if len(a.shape) != 2 {
		panic("tensor: SumRowsInto requires a 2-D tensor")
	}
	rows, cols := a.shape[0], a.shape[1]
	if len(dst.data) != cols {
		panic(fmt.Sprintf("tensor: SumRowsInto dst %v vs cols %d", dst.shape, cols))
	}
	dst.Zero()
	for r := 0; r < rows; r++ {
		row := a.data[r*cols : (r+1)*cols]
		for c, v := range row {
			dst.data[c] += v
		}
	}
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: Transpose requires a 2-D tensor")
	}
	rows, cols := a.shape[0], a.shape[1]
	out := New(cols, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.data[c*rows+r] = a.data[r*cols+c]
		}
	}
	return out
}
