package tensor

import "fmt"

// ConvOut returns the output spatial size of a convolution with the given
// input size, kernel, stride, and symmetric zero padding.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers one [C,H,W] image into a [outH*outW, C*kh*kw] matrix where
// every row holds the receptive field of one output position. Zero padding
// is applied implicitly.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if len(x.shape) != 3 {
		panic(fmt.Sprintf("tensor: Im2Col requires [C,H,W], got %v", x.shape))
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	cols := New(oh*ow, c*kh*kw)
	Im2ColInto(cols, x, kh, kw, stride, pad)
	return cols
}

// Im2ColInto lowers x [C,H,W] into the pre-allocated cols matrix
// [outH*outW, C*kh*kw], overwriting every element.
func Im2ColInto(cols, x *Tensor, kh, kw, stride, pad int) {
	if len(x.shape) != 3 {
		panic(fmt.Sprintf("tensor: Im2ColInto requires [C,H,W], got %v", x.shape))
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	if len(cols.data) != oh*ow*c*kh*kw {
		panic(fmt.Sprintf("tensor: Im2ColInto destination %v incompatible", cols.shape))
	}
	im2colRaw(cols.data, x.data, c, h, w, kh, kw, stride, pad)
}

// im2colRaw lowers one [C,H,W] raw image into cols [outH*outW, C*kh*kw].
// Output rows are disjoint, so the lowering is sharded over the worker pool
// for large images (each row is written identically on every path).
func im2colRaw(cols, x []float32, c, h, w, kh, kw, stride, pad int) {
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	parallelFor(oh, oh*ow*c*kh*kw, func(y0, y1 int) {
		im2colRows(cols, x, c, h, w, kh, kw, stride, pad, y0, y1)
	})
}

// im2colRows lowers output rows [y0,y1) of one image.
func im2colRows(cols, x []float32, c, h, w, kh, kw, stride, pad, y0, y1 int) {
	ow := ConvOut(w, kw, stride, pad)
	for oy := y0; oy < y1; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := cols[(oy*ow+ox)*c*kh*kw:]
			idx := 0
			for ch := 0; ch < c; ch++ {
				plane := x[ch*h*w:]
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride - pad + kx
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							row[idx] = plane[iy*w+ix]
						} else {
							row[idx] = 0
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2Im scatters a [outH*outW, C*kh*kw] matrix back onto a [C,H,W] image,
// accumulating overlapping contributions. It is the adjoint of Im2Col and is
// used in convolution backward passes and transposed convolutions.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	img := New(c, h, w)
	Col2ImInto(img, cols, kh, kw, stride, pad)
	return img
}

// Col2ImInto scatters cols back onto the pre-allocated img [C,H,W],
// overwriting it (img is zeroed first, then overlapping contributions are
// accumulated).
func Col2ImInto(img, cols *Tensor, kh, kw, stride, pad int) {
	if len(img.shape) != 3 {
		panic(fmt.Sprintf("tensor: Col2ImInto requires a [C,H,W] destination, got %v", img.shape))
	}
	c, h, w := img.shape[0], img.shape[1], img.shape[2]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	if cols.shape[0] != oh*ow || cols.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with image [%d,%d,%d] k=%dx%d s=%d p=%d", cols.shape, c, h, w, kh, kw, stride, pad))
	}
	col2imRaw(img.data, cols.data, c, h, w, kh, kw, stride, pad)
}

// col2imRaw scatters cols back onto a [C,H,W] raw image buffer (img is
// zeroed first). Output rows of the scatter overlap, so the parallel axis is
// channels: each channel plane receives its contributions from exactly one
// worker. Serially the row-major loop is preferred — it reads cols exactly
// once in storage order, where the channel-major loop re-walks it per
// channel. Both orders deliver every output element its contributions in
// the same ascending (oy, ox) sequence (an element only receives from its
// own channel's columns), so the accumulation is bit-identical either way
// and for every worker count.
func col2imRaw(img, cols []float32, c, h, w, kh, kw, stride, pad int) {
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	ckk := c * kh * kw
	if !shouldParallel(c, oh*ow*ckk) {
		col2imRowMajor(img, cols, c, h, w, kh, kw, stride, pad)
		return
	}
	parallelFor(c, oh*ow*ckk, func(c0, c1 int) {
		for ch := c0; ch < c1; ch++ {
			plane := img[ch*h*w : (ch+1)*h*w]
			for i := range plane {
				plane[i] = 0
			}
			base := ch * kh * kw
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					row := cols[(oy*ow+ox)*ckk+base:]
					idx := 0
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							idx += kw
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride - pad + kx
							if ix >= 0 && ix < w {
								plane[iy*w+ix] += row[idx]
							}
							idx++
						}
					}
				}
			}
		}
	})
}

// col2imRowMajor is the cache-friendly serial scatter: one sequential pass
// over cols in storage order.
func col2imRowMajor(img, cols []float32, c, h, w, kh, kw, stride, pad int) {
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	ckk := c * kh * kw
	for i := 0; i < c*h*w; i++ {
		img[i] = 0
	}
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := cols[(oy*ow+ox)*ckk:]
			idx := 0
			for ch := 0; ch < c; ch++ {
				plane := img[ch*h*w : (ch+1)*h*w]
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						idx += kw
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							plane[iy*w+ix] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// Conv2d performs a batched 2-D convolution.
// x is [B,C,H,W], weight is [outC, C, kh, kw], bias is [outC] or nil.
// Returns [B, outC, outH, outW].
func Conv2d(x, weight, bias *Tensor, stride, pad int) *Tensor {
	b := x.shape[0]
	oc, kh, kw := weight.shape[0], weight.shape[2], weight.shape[3]
	oh, ow := ConvOut(x.shape[2], kh, stride, pad), ConvOut(x.shape[3], kw, stride, pad)
	out := New(b, oc, oh, ow)
	Conv2dInto(nil, out, x, weight, bias, stride, pad)
	return out
}

// scratch borrows a tensor from p, or allocates fresh when p is nil.
func scratch(p *Pool, shape ...int) *Tensor {
	if p == nil {
		return New(shape...)
	}
	return p.Get(shape...)
}

func unscratch(p *Pool, ts ...*Tensor) {
	if p == nil {
		return
	}
	for _, t := range ts {
		p.Put(t)
	}
}

// Conv2dInto performs a batched 2-D convolution into dst [B,outC,oh,ow],
// overwriting it. Per-sample im2col scratch is borrowed from p when non-nil,
// making the steady-state kernel allocation-free.
func Conv2dInto(p *Pool, dst, x, weight, bias *Tensor, stride, pad int) {
	if len(x.shape) != 4 || len(weight.shape) != 4 {
		panic(fmt.Sprintf("tensor: Conv2d requires x [B,C,H,W] and weight [O,C,kh,kw], got %v and %v", x.shape, weight.shape))
	}
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oc, kc, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if kc != c {
		panic(fmt.Sprintf("tensor: Conv2d channel mismatch x=%v weight=%v", x.shape, weight.shape))
	}
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	if len(dst.data) != b*oc*oh*ow {
		panic(fmt.Sprintf("tensor: Conv2dInto destination %v incompatible", dst.shape))
	}
	wmat := weight.Reshape(oc, c*kh*kw)
	var biasData []float32
	if bias != nil {
		biasData = bias.data
	}
	hk, t0 := kernelStart()
	// Samples are independent: shard the batch over the worker pool, with
	// im2col/product scratch borrowed per shard (Pool is concurrency-safe).
	parallelFor(b, b*oh*ow*oc*c*kh*kw, func(i0, i1 int) {
		cols := scratch(p, oh*ow, c*kh*kw)
		prod := scratch(p, oh*ow, oc)
		for i := i0; i < i1; i++ {
			im2colRaw(cols.data, x.data[i*c*h*w:(i+1)*c*h*w], c, h, w, kh, kw, stride, pad)
			matMulTransBRaw(prod.data, cols.data, wmat.data, oh*ow, c*kh*kw, oc) // [oh*ow, oc]
			transposeScatterBias(dst.data[i*oc*oh*ow:(i+1)*oc*oh*ow], prod.data, biasData, oc, oh*ow)
		}
		unscratch(p, cols, prod)
	})
	kernelEnd(hk, t0, KernelConv)
}

// transposeScatterBias transposes prod [np, oc] into dst [oc, np] in square
// cache-resident tiles, folding the bias add into the same pass. Each dst
// element is produced by a single rounded add (prod + bias), exactly what
// the historical copy-then-add loops computed.
func transposeScatterBias(dst, prod, bias []float32, oc, np int) {
	const tb = 32
	for o0 := 0; o0 < oc; o0 += tb {
		o1 := o0 + tb
		if o1 > oc {
			o1 = oc
		}
		for p0 := 0; p0 < np; p0 += tb {
			p1 := p0 + tb
			if p1 > np {
				p1 = np
			}
			for o := o0; o < o1; o++ {
				dr := dst[o*np:]
				if bias != nil {
					bv := bias[o]
					for pp := p0; pp < p1; pp++ {
						dr[pp] = prod[pp*oc+o] + bv
					}
				} else {
					for pp := p0; pp < p1; pp++ {
						dr[pp] = prod[pp*oc+o]
					}
				}
			}
		}
	}
}

// Conv2dBackward computes the gradients of a Conv2d given the upstream
// gradient gy [B,outC,outH,outW]. It returns (gx, gw, gb); gb is nil when
// bias was nil.
func Conv2dBackward(x, weight *Tensor, hasBias bool, gy *Tensor, stride, pad int) (gx, gw, gb *Tensor) {
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oc, kh, kw := weight.shape[0], weight.shape[2], weight.shape[3]
	gx = New(b, c, h, w)
	gw = New(oc, c, kh, kw)
	if hasBias {
		gb = New(oc)
	}
	Conv2dBackwardInto(nil, gx, gw, gb, x, weight, gy, stride, pad)
	return gx, gw, gb
}

// Conv2dBackwardInto computes convolution gradients into pre-allocated
// gx [B,C,H,W] and gw [O,C,kh,kw] (both overwritten) and accumulates the
// bias gradient into gb when non-nil (gb must be pre-zeroed by the caller or
// freshly borrowed with GetZero). gw may be nil to skip the weight gradient
// entirely (attack oracles differentiate w.r.t. the input only). Scratch is
// borrowed from p when non-nil.
func Conv2dBackwardInto(p *Pool, gx, gw, gb, x, weight, gy *Tensor, stride, pad int) {
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oc, kh, kw := weight.shape[0], weight.shape[2], weight.shape[3]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	ckk := c * kh * kw
	wmat := weight.Reshape(oc, ckk)
	hk, t0 := kernelStart()

	// gx is per-sample disjoint and parallelizes directly. The gw/gb
	// reductions cross samples, so the parallel phase only writes per-sample
	// partials; the cross-sample sum happens serially below, in ascending
	// sample order, reproducing the historical accumulation bit-for-bit.
	var gwPart, gbPart *Tensor
	if gw != nil {
		gwPart = scratch(p, b, oc*ckk)
	}
	if gb != nil {
		gbPart = scratch(p, b, oc)
	}
	parallelFor(b, 2*b*oh*ow*oc*ckk, func(i0, i1 int) {
		gyMat := scratch(p, oh*ow, oc)
		gcols := scratch(p, oh*ow, ckk)
		var cols *Tensor
		if gw != nil {
			cols = scratch(p, oh*ow, ckk)
		}
		for i := i0; i < i1; i++ {
			gyData := gy.data[i*oc*oh*ow : (i+1)*oc*oh*ow] // [oc, oh, ow]
			// gyMat [oh*ow, oc]
			for o := 0; o < oc; o++ {
				plane := gyData[o*oh*ow : (o+1)*oh*ow]
				for pp, v := range plane {
					gyMat.data[pp*oc+o] = v
				}
				if gbPart != nil {
					var s float32
					for _, v := range plane {
						s += v
					}
					gbPart.data[i*oc+o] = s
				}
			}
			if gw != nil {
				// Per-sample partial gyMatᵀ @ cols into this sample's row.
				im2colRaw(cols.data, x.data[i*c*h*w:(i+1)*c*h*w], c, h, w, kh, kw, stride, pad)
				gwRow := gwPart.data[i*oc*ckk : (i+1)*oc*ckk]
				for j := range gwRow {
					gwRow[j] = 0
				}
				transAOuter(gwRow, gyMat.data, cols.data, oc, oh*ow, ckk)
			}
			// gcols = gyMat @ wmat, then scatter back
			matMulInto(gcols.data, gyMat.data, wmat.data, oh*ow, oc, ckk)
			col2imRaw(gx.data[i*c*h*w:(i+1)*c*h*w], gcols.data, c, h, w, kh, kw, stride, pad)
		}
		unscratch(p, gyMat, gcols)
		if cols != nil {
			unscratch(p, cols)
		}
	})
	if gw != nil {
		gw.Zero()
		for i := 0; i < b; i++ {
			saxpy(gw.data, gwPart.data[i*oc*ckk:(i+1)*oc*ckk], 1)
		}
		unscratch(p, gwPart)
	}
	if gb != nil {
		for i := 0; i < b; i++ {
			row := gbPart.data[i*oc : (i+1)*oc]
			for o, v := range row {
				gb.data[o] += v
			}
		}
		unscratch(p, gbPart)
	}
	kernelEnd(hk, t0, KernelConv)
}

// ConvTranspose2d applies a transposed convolution (fractionally-strided
// convolution) mapping [B,C,H,W] with kernel [C, outC, kh, kw] to
// [B, outC, outH, outW] where outH = (H-1)*stride - 2*pad + kh. This is the
// geometric upsampling used by the BPDA-style attack on the adjoint (§V-B).
func ConvTranspose2d(x, weight *Tensor, stride, pad int) *Tensor {
	if len(x.shape) != 4 || len(weight.shape) != 4 {
		panic(fmt.Sprintf("tensor: ConvTranspose2d requires x [B,C,H,W] and weight [C,O,kh,kw], got %v and %v", x.shape, weight.shape))
	}
	h, w := x.shape[2], x.shape[3]
	oc, kh, kw := weight.shape[1], weight.shape[2], weight.shape[3]
	oh := (h-1)*stride - 2*pad + kh
	ow := (w-1)*stride - 2*pad + kw
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: ConvTranspose2d output would be empty (%dx%d)", oh, ow))
	}
	out := New(x.shape[0], oc, oh, ow)
	ConvTranspose2dInto(nil, out, x, weight, stride, pad)
	return out
}

// ConvTranspose2dInto performs the transposed convolution into the
// pre-allocated dst [B,outC,outH,outW], overwriting it, with scratch
// borrowed from p when non-nil. Instead of the naive scalar scatter it runs
// the adjoint of the im2col convolution: per sample, lift x [C,h,w] to
// [h*w, C], multiply by the [C, outC*kh*kw] kernel matrix through the
// blocked matmul, and Col2Im-scatter the result onto the output grid. The
// batch is sharded over the worker pool; each sample stays serial, so
// results are bit-identical for every worker count.
func ConvTranspose2dInto(p *Pool, dst, x, weight *Tensor, stride, pad int) {
	if len(x.shape) != 4 || len(weight.shape) != 4 {
		panic(fmt.Sprintf("tensor: ConvTranspose2dInto requires x [B,C,H,W] and weight [C,O,kh,kw], got %v and %v", x.shape, weight.shape))
	}
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	wc, oc, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if wc != c {
		panic(fmt.Sprintf("tensor: ConvTranspose2dInto channel mismatch x=%v weight=%v", x.shape, weight.shape))
	}
	oh := (h-1)*stride - 2*pad + kh
	ow := (w-1)*stride - 2*pad + kw
	if len(dst.data) != b*oc*oh*ow {
		panic(fmt.Sprintf("tensor: ConvTranspose2dInto destination %v incompatible", dst.shape))
	}
	okk := oc * kh * kw
	wmat := weight.Reshape(c, okk)
	hk, t0 := kernelStart()
	parallelFor(b, b*h*w*c*okk, func(i0, i1 int) {
		xT := scratch(p, h*w, c)
		gcols := scratch(p, h*w, okk)
		for i := i0; i < i1; i++ {
			// x sample [c, h*w] -> xT [h*w, c]
			transposeScatterBias(xT.data, x.data[i*c*h*w:(i+1)*c*h*w], nil, h*w, c)
			matMulInto(gcols.data, xT.data, wmat.data, h*w, c, okk)
			// The (h,w) grid is exactly the conv-output grid of the adjoint
			// ((oh+2*pad-kh)/stride+1 == h), so Col2Im scatters gcols onto
			// the upsampled [oc,oh,ow] sample.
			col2imRaw(dst.data[i*oc*oh*ow:(i+1)*oc*oh*ow], gcols.data, oc, oh, ow, kh, kw, stride, pad)
		}
		unscratch(p, xT, gcols)
	})
	kernelEnd(hk, t0, KernelConv)
}

// MaxPool2d applies max pooling with square window k and stride s over a
// [B,C,H,W] tensor. It returns the pooled tensor and the flat argmax index
// (within each sample's [C,H,W] layout) of every output element, used by the
// backward pass.
func MaxPool2d(x *Tensor, k, s int) (*Tensor, []int) {
	b, c := x.shape[0], x.shape[1]
	oh, ow := ConvOut(x.shape[2], k, s, 0), ConvOut(x.shape[3], k, s, 0)
	out := New(b, c, oh, ow)
	return out, MaxPool2dInto(out, x, k, s)
}

// MaxPool2dInto max-pools x into the pre-allocated out [B,C,oh,ow],
// overwriting it, and returns the per-element argmax indices for the
// backward pass.
func MaxPool2dInto(out, x *Tensor, k, s int) []int {
	b, c := x.shape[0], x.shape[1]
	oh, ow := ConvOut(x.shape[2], k, s, 0), ConvOut(x.shape[3], k, s, 0)
	idx := make([]int, b*c*oh*ow)
	MaxPool2dIdxInto(out, x, k, s, idx)
	return idx
}

// MaxPool2dIdxInto is MaxPool2dInto with a caller-provided (e.g. pooled)
// argmax buffer of length B*C*oh*ow.
func MaxPool2dIdxInto(out, x *Tensor, k, s int, idx []int) {
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, k, s, 0), ConvOut(w, k, s, 0)
	if len(out.data) != b*c*oh*ow || len(idx) != b*c*oh*ow {
		panic(fmt.Sprintf("tensor: MaxPool2dIdxInto destination %v incompatible", out.shape))
	}
	for i := 0; i < b; i++ {
		xi := x.data[i*c*h*w : (i+1)*c*h*w]
		oi := out.data[i*c*oh*ow : (i+1)*c*oh*ow]
		for ch := 0; ch < c; ch++ {
			plane := xi[ch*h*w:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := -1
					var best float32
					for ky := 0; ky < k; ky++ {
						iy := oy*s + ky
						if iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*s + kx
							if ix >= w {
								continue
							}
							v := plane[iy*w+ix]
							if bestIdx < 0 || v > best {
								best, bestIdx = v, ch*h*w+iy*w+ix
							}
						}
					}
					o := ch*oh*ow + oy*ow + ox
					oi[o] = best
					idx[i*c*oh*ow+o] = bestIdx
				}
			}
		}
	}
}

// AvgPool2dGlobal averages each channel plane of [B,C,H,W] to [B,C].
func AvgPool2dGlobal(x *Tensor) *Tensor {
	out := New(x.shape[0], x.shape[1])
	AvgPool2dGlobalInto(out, x)
	return out
}

// AvgPool2dGlobalInto averages each channel plane of x [B,C,H,W] into the
// pre-allocated out [B,C], overwriting it.
func AvgPool2dGlobalInto(out, x *Tensor) {
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if len(out.data) != b*c {
		panic(fmt.Sprintf("tensor: AvgPool2dGlobalInto destination %v incompatible", out.shape))
	}
	inv := 1 / float32(h*w)
	for i := 0; i < b; i++ {
		xi := x.data[i*c*h*w : (i+1)*c*h*w]
		for ch := 0; ch < c; ch++ {
			plane := xi[ch*h*w : (ch+1)*h*w]
			var s float32
			for _, v := range plane {
				s += v
			}
			out.data[i*c+ch] = s * inv
		}
	}
}

// Pad2d zero-pads the spatial dimensions of [B,C,H,W] by p on every side.
func Pad2d(x *Tensor, p int) *Tensor {
	out := New(x.shape[0], x.shape[1], x.shape[2]+2*p, x.shape[3]+2*p)
	Pad2dInto(out, x, p)
	return out
}

// Pad2dInto copies x into the interior of the pre-allocated out
// [B,C,H+2p,W+2p]. The padding border is NOT written: out must arrive
// zeroed (freshly allocated or Pool.GetZero).
func Pad2dInto(out, x *Tensor, p int) {
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := h+2*p, w+2*p
	if len(out.data) != b*c*oh*ow {
		panic(fmt.Sprintf("tensor: Pad2dInto destination %v incompatible", out.shape))
	}
	for i := 0; i < b; i++ {
		xi := x.data[i*c*h*w : (i+1)*c*h*w]
		oi := out.data[i*c*oh*ow : (i+1)*c*oh*ow]
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				src := xi[ch*h*w+y*w : ch*h*w+(y+1)*w]
				dst := oi[ch*oh*ow+(y+p)*ow+p:]
				copy(dst[:w], src)
			}
		}
	}
}

// Unpad2d removes p rows/cols from every side of the spatial dims, the
// adjoint of Pad2d.
func Unpad2d(x *Tensor, p int) *Tensor {
	b, c, oh, ow := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(b, c, oh-2*p, ow-2*p)
	Unpad2dInto(out, x, p)
	return out
}

// Unpad2dInto crops the p-wide border of x [B,C,H,W] into the pre-allocated
// out [B,C,H-2p,W-2p], overwriting every element.
func Unpad2dInto(out, x *Tensor, p int) {
	b, c, oh, ow := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	h, w := oh-2*p, ow-2*p
	if len(out.data) != b*c*h*w {
		panic(fmt.Sprintf("tensor: Unpad2dInto destination %v incompatible", out.shape))
	}
	for i := 0; i < b; i++ {
		xi := x.data[i*c*oh*ow : (i+1)*c*oh*ow]
		oi := out.data[i*c*h*w : (i+1)*c*h*w]
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				src := xi[ch*oh*ow+(y+p)*ow+p:]
				copy(oi[ch*h*w+y*w:ch*h*w+(y+1)*w], src[:w])
			}
		}
	}
}
