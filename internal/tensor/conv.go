package tensor

import "fmt"

// ConvOut returns the output spatial size of a convolution with the given
// input size, kernel, stride, and symmetric zero padding.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col lowers one [C,H,W] image into a [outH*outW, C*kh*kw] matrix where
// every row holds the receptive field of one output position. Zero padding
// is applied implicitly.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if len(x.shape) != 3 {
		panic(fmt.Sprintf("tensor: Im2Col requires [C,H,W], got %v", x.shape))
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	cols := New(oh*ow, c*kh*kw)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := cols.data[(oy*ow+ox)*c*kh*kw:]
			idx := 0
			for ch := 0; ch < c; ch++ {
				plane := x.data[ch*h*w:]
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride - pad + kx
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							row[idx] = plane[iy*w+ix]
						} else {
							row[idx] = 0
						}
						idx++
					}
				}
			}
		}
	}
	return cols
}

// Col2Im scatters a [outH*outW, C*kh*kw] matrix back onto a [C,H,W] image,
// accumulating overlapping contributions. It is the adjoint of Im2Col and is
// used in convolution backward passes and transposed convolutions.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	if cols.shape[0] != oh*ow || cols.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Col2Im shape %v incompatible with image [%d,%d,%d] k=%dx%d s=%d p=%d", cols.shape, c, h, w, kh, kw, stride, pad))
	}
	img := New(c, h, w)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := cols.data[(oy*ow+ox)*c*kh*kw:]
			idx := 0
			for ch := 0; ch < c; ch++ {
				plane := img.data[ch*h*w:]
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride - pad + kx
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							plane[iy*w+ix] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
	return img
}

// Conv2d performs a batched 2-D convolution.
// x is [B,C,H,W], weight is [outC, C, kh, kw], bias is [outC] or nil.
// Returns [B, outC, outH, outW].
func Conv2d(x, weight, bias *Tensor, stride, pad int) *Tensor {
	if len(x.shape) != 4 || len(weight.shape) != 4 {
		panic(fmt.Sprintf("tensor: Conv2d requires x [B,C,H,W] and weight [O,C,kh,kw], got %v and %v", x.shape, weight.shape))
	}
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oc, kc, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if kc != c {
		panic(fmt.Sprintf("tensor: Conv2d channel mismatch x=%v weight=%v", x.shape, weight.shape))
	}
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	out := New(b, oc, oh, ow)
	wmat := weight.Reshape(oc, c*kh*kw)
	for i := 0; i < b; i++ {
		cols := Im2Col(x.Slice(i), kh, kw, stride, pad) // [oh*ow, c*kh*kw]
		prod := MatMulTransB(cols, wmat)                // [oh*ow, oc]
		dst := out.Slice(i)                             // [oc, oh, ow]
		for p := 0; p < oh*ow; p++ {
			for o := 0; o < oc; o++ {
				dst.data[o*oh*ow+p] = prod.data[p*oc+o]
			}
		}
		if bias != nil {
			for o := 0; o < oc; o++ {
				plane := dst.data[o*oh*ow : (o+1)*oh*ow]
				bv := bias.data[o]
				for j := range plane {
					plane[j] += bv
				}
			}
		}
	}
	return out
}

// Conv2dBackward computes the gradients of a Conv2d given the upstream
// gradient gy [B,outC,outH,outW]. It returns (gx, gw, gb); gb is nil when
// bias was nil.
func Conv2dBackward(x, weight *Tensor, hasBias bool, gy *Tensor, stride, pad int) (gx, gw, gb *Tensor) {
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oc, kh, kw := weight.shape[0], weight.shape[2], weight.shape[3]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	wmat := weight.Reshape(oc, c*kh*kw)

	gx = New(b, c, h, w)
	gw = New(oc, c, kh, kw)
	gwmat := gw.Reshape(oc, c*kh*kw)
	if hasBias {
		gb = New(oc)
	}
	for i := 0; i < b; i++ {
		gyi := gy.Slice(i) // [oc, oh, ow]
		// gyMat [oh*ow, oc]
		gyMat := New(oh*ow, oc)
		for o := 0; o < oc; o++ {
			plane := gyi.data[o*oh*ow : (o+1)*oh*ow]
			for p, v := range plane {
				gyMat.data[p*oc+o] = v
			}
			if gb != nil {
				var s float32
				for _, v := range plane {
					s += v
				}
				gb.data[o] += s
			}
		}
		// gw += gyMatᵀ @ cols
		cols := Im2Col(x.Slice(i), kh, kw, stride, pad)
		AddIn(gwmat, MatMulTransA(gyMat, cols))
		// gcols = gyMat @ wmat, then scatter back
		gcols := MatMul(gyMat, wmat)
		gx.Slice(i).CopyFrom(Col2Im(gcols, c, h, w, kh, kw, stride, pad))
	}
	return gx, gw, gb
}

// ConvTranspose2d applies a transposed convolution (fractionally-strided
// convolution) mapping [B,C,H,W] with kernel [C, outC, kh, kw] to
// [B, outC, outH, outW] where outH = (H-1)*stride - 2*pad + kh. This is the
// geometric upsampling used by the BPDA-style attack on the adjoint (§V-B).
func ConvTranspose2d(x, weight *Tensor, stride, pad int) *Tensor {
	if len(x.shape) != 4 || len(weight.shape) != 4 {
		panic(fmt.Sprintf("tensor: ConvTranspose2d requires x [B,C,H,W] and weight [C,O,kh,kw], got %v and %v", x.shape, weight.shape))
	}
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	wc, oc, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if wc != c {
		panic(fmt.Sprintf("tensor: ConvTranspose2d channel mismatch x=%v weight=%v", x.shape, weight.shape))
	}
	oh := (h-1)*stride - 2*pad + kh
	ow := (w-1)*stride - 2*pad + kw
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: ConvTranspose2d output would be empty (%dx%d)", oh, ow))
	}
	out := New(b, oc, oh, ow)
	for i := 0; i < b; i++ {
		xi := x.Slice(i)
		dst := out.Slice(i)
		for iy := 0; iy < h; iy++ {
			for ix := 0; ix < w; ix++ {
				for ch := 0; ch < c; ch++ {
					v := xi.data[ch*h*w+iy*w+ix]
					if v == 0 {
						continue
					}
					kern := weight.data[ch*oc*kh*kw:]
					for o := 0; o < oc; o++ {
						plane := dst.data[o*oh*ow : (o+1)*oh*ow]
						for ky := 0; ky < kh; ky++ {
							oy := iy*stride - pad + ky
							if oy < 0 || oy >= oh {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ox := ix*stride - pad + kx
								if ox < 0 || ox >= ow {
									continue
								}
								plane[oy*ow+ox] += v * kern[o*kh*kw+ky*kw+kx]
							}
						}
					}
				}
			}
		}
	}
	return out
}

// MaxPool2d applies max pooling with square window k and stride s over a
// [B,C,H,W] tensor. It returns the pooled tensor and the flat argmax index
// (within each sample's [C,H,W] layout) of every output element, used by the
// backward pass.
func MaxPool2d(x *Tensor, k, s int) (*Tensor, []int) {
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, k, s, 0), ConvOut(w, k, s, 0)
	out := New(b, c, oh, ow)
	idx := make([]int, b*c*oh*ow)
	for i := 0; i < b; i++ {
		xi := x.Slice(i)
		oi := out.Slice(i)
		for ch := 0; ch < c; ch++ {
			plane := xi.data[ch*h*w:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := -1
					var best float32
					for ky := 0; ky < k; ky++ {
						iy := oy*s + ky
						if iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*s + kx
							if ix >= w {
								continue
							}
							v := plane[iy*w+ix]
							if bestIdx < 0 || v > best {
								best, bestIdx = v, ch*h*w+iy*w+ix
							}
						}
					}
					o := ch*oh*ow + oy*ow + ox
					oi.data[o] = best
					idx[i*c*oh*ow+o] = bestIdx
				}
			}
		}
	}
	return out, idx
}

// AvgPool2dGlobal averages each channel plane of [B,C,H,W] to [B,C].
func AvgPool2dGlobal(x *Tensor) *Tensor {
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(b, c)
	inv := 1 / float32(h*w)
	for i := 0; i < b; i++ {
		xi := x.Slice(i)
		for ch := 0; ch < c; ch++ {
			plane := xi.data[ch*h*w : (ch+1)*h*w]
			var s float32
			for _, v := range plane {
				s += v
			}
			out.data[i*c+ch] = s * inv
		}
	}
	return out
}

// Pad2d zero-pads the spatial dimensions of [B,C,H,W] by p on every side.
func Pad2d(x *Tensor, p int) *Tensor {
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := h+2*p, w+2*p
	out := New(b, c, oh, ow)
	for i := 0; i < b; i++ {
		xi, oi := x.Slice(i), out.Slice(i)
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				src := xi.data[ch*h*w+y*w : ch*h*w+(y+1)*w]
				dst := oi.data[ch*oh*ow+(y+p)*ow+p:]
				copy(dst[:w], src)
			}
		}
	}
	return out
}

// Unpad2d removes p rows/cols from every side of the spatial dims, the
// adjoint of Pad2d.
func Unpad2d(x *Tensor, p int) *Tensor {
	b, c, oh, ow := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	h, w := oh-2*p, ow-2*p
	out := New(b, c, h, w)
	for i := 0; i < b; i++ {
		xi, oi := x.Slice(i), out.Slice(i)
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				src := xi.data[ch*oh*ow+(y+p)*ow+p:]
				copy(oi.data[ch*h*w+y*w:ch*h*w+(y+1)*w], src[:w])
			}
		}
	}
	return out
}
