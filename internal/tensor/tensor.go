package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, contiguous, row-major float32 array with a shape.
// The zero value is an empty scalar-less tensor; use New or FromSlice to
// construct usable values.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it panics if len(data) does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Scalar returns a 1-element tensor holding v.
func Scalar(v float32) *Tensor { return FromSlice([]float32{v}, 1) }

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Dim returns the size of dimension i, supporting negative indices from the
// end (Dim(-1) is the last dimension).
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.shape)
	}
	return t.shape[i]
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Reshape returns a view with a new shape sharing the same backing data.
// One dimension may be -1 to be inferred. It panics on element-count
// mismatch.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dims in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dim reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / n
		n *= shape[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: shape, data: t.data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description with a data preview.
func (t *Tensor) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor%v[", t.shape)
	limit := len(t.data)
	if limit > 8 {
		limit = 8
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%.4g", t.data[i])
	}
	if len(t.data) > limit {
		sb.WriteString(", …")
	}
	sb.WriteString("]")
	return sb.String()
}

// Bytes returns the size of the tensor's payload in bytes assuming
// single-precision floats, as used by the enclave memory accounting.
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// AllClose reports whether all elements of t and o differ by at most tol.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if len(t.data) != len(o.data) {
		return false
	}
	for i := range t.data {
		if math.Abs(float64(t.data[i]-o.data[i])) > tol {
			return false
		}
	}
	return true
}

// Row returns a view of row i of a 2-D tensor as a 1-D tensor sharing data.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Row requires a 2-D tensor")
	}
	c := t.shape[1]
	return &Tensor{shape: []int{c}, data: t.data[i*c : (i+1)*c]}
}

// SliceRange returns a view of sub-tensors [i,j) along the first dimension,
// sharing backing data. For a [B,C,H,W] tensor, SliceRange(i, j) is the
// [j-i,C,H,W] chunk of samples i..j-1 — the zero-copy unit the parallel
// batched oracle hands to each worker.
func (t *Tensor) SliceRange(i, j int) *Tensor {
	if len(t.shape) < 1 {
		panic("tensor: SliceRange requires rank >= 1")
	}
	if i < 0 || j < i || j > t.shape[0] {
		panic(fmt.Sprintf("tensor: SliceRange [%d,%d) out of range %d", i, j, t.shape[0]))
	}
	sub := len(t.data) / t.shape[0]
	shape := append([]int{j - i}, t.shape[1:]...)
	return &Tensor{shape: shape, data: t.data[i*sub : j*sub]}
}

// Slice returns a view of sub-tensor i along the first dimension, sharing
// backing data. For a [B,C,H,W] tensor, Slice(i) is the [C,H,W] sample i.
func (t *Tensor) Slice(i int) *Tensor {
	if len(t.shape) < 1 {
		panic("tensor: Slice requires rank >= 1")
	}
	if i < 0 || i >= t.shape[0] {
		panic(fmt.Sprintf("tensor: Slice index %d out of range %d", i, t.shape[0]))
	}
	sub := len(t.data) / t.shape[0]
	return &Tensor{shape: append([]int(nil), t.shape[1:]...), data: t.data[i*sub : (i+1)*sub]}
}
