package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which matmul runs
// serially; spawning goroutines for tiny products costs more than it saves.
const parallelThreshold = 1 << 16

// MatMul returns the matrix product a@b for 2-D tensors [m,k]x[k,n] -> [m,n].
// Large products are parallelized across rows.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b, false, false)
	out := New(m, n)
	matMulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulTransB returns a@bᵀ for a [m,k] and b [n,k] -> [m,n]. Used by
// backward passes to avoid materializing transposes.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b, false, true)
	out := New(m, n)
	rows := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ar := a.data[i*k : (i+1)*k]
			for j := 0; j < n; j++ {
				br := b.data[j*k : (j+1)*k]
				var s float32
				for p := 0; p < k; p++ {
					s += ar[p] * br[p]
				}
				out.data[i*n+j] = s
			}
		}
	}
	parallelRows(m, m*k*n, rows)
	return out
}

// MatMulTransA returns aᵀ@b for a [k,m] and b [k,n] -> [m,n].
func MatMulTransA(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b, true, false)
	out := New(m, n)
	// Accumulate k outer products; parallelize over output rows to keep
	// writes disjoint.
	rows := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			or := out.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.data[p*m+i]
				if av == 0 {
					continue
				}
				br := b.data[p*n : (p+1)*n]
				for j := range or {
					or[j] += av * br[j]
				}
			}
		}
	}
	parallelRows(m, m*k*n, rows)
	return out
}

func checkMatMul(a, b *Tensor, transA, transB bool) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	am, ak := a.shape[0], a.shape[1]
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.shape[0], b.shape[1]
	if transB {
		bk, bn = bn, bk
	}
	if ak != bk {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v (transA=%v transB=%v)", a.shape, b.shape, transA, transB))
	}
	return am, ak, bn
}

// matMulInto computes out = a@b with a [m,k], b [k,n] row-major.
func matMulInto(out, a, b []float32, m, k, n int) {
	rows := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			or := out[i*n : (i+1)*n]
			for j := range or {
				or[j] = 0
			}
			ar := a[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := ar[p]
				if av == 0 {
					continue
				}
				br := b[p*n : (p+1)*n]
				for j := range or {
					or[j] += av * br[j]
				}
			}
		}
	}
	parallelRows(m, m*k*n, rows)
}

// parallelRows splits [0,m) into chunks and runs body on each chunk in
// parallel when the work (multiply-add count) is large enough.
func parallelRows(m, work int, body func(r0, r1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers <= 1 || m < 2 {
		body(0, m)
		return
	}
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for r0 := 0; r0 < m; r0 += chunk {
		r1 := r0 + chunk
		if r1 > m {
			r1 = m
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			body(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}
