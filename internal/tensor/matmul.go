package tensor

import (
	"fmt"
	"sync"
)

// MatMul returns the matrix product a@b for 2-D tensors [m,k]x[k,n] -> [m,n].
// Large products are parallelized across rows.
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := checkMatMul(a, b, false, false)
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto stores a@b into dst [m,n]. dst must not alias the operands.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b, false, false)
	checkMatMulDst("MatMulInto", dst, m, n)
	h, t0 := kernelStart()
	matMulInto(dst.data, a.data, b.data, m, k, n)
	kernelEnd(h, t0, KernelMatMul)
}

// MatMulTransB returns a@bᵀ for a [m,k] and b [n,k] -> [m,n]. Used by
// backward passes to avoid materializing transposes.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, _, n := checkMatMul(a, b, false, true)
	out := New(m, n)
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto stores a@bᵀ into dst. dst must not alias the operands.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b, false, true)
	checkMatMulDst("MatMulTransBInto", dst, m, n)
	MatMulTransBRaw(dst.data, a.data, b.data, m, k, n)
}

// dotTileElems bounds (in float32 elements, ~32KB) the window of B rows the
// tiled dot kernel keeps hot while sweeping all A rows over it.
const dotTileElems = 1 << 13

// dotRows computes out[i,j] = Σ_p a[i,p]·b[j,p] for a [m,k] and b [n,k].
// When B is too large to stay cache-resident across the m-row sweep, the
// column range is tiled so each window of B rows is reused by every A row
// before moving on. Each output element is an independent register dot with
// sequential summation over p, so tiling cannot change any bit.
func dotRows(out, a, b []float32, m, k, n int) {
	if m == 1 || n*k <= 4*dotTileElems {
		dotRowsSeg(out, a, b, m, k, n, 0, n)
		return
	}
	jb := (dotTileElems / k) &^ 3
	if jb < 4 {
		jb = 4
	}
	for j0 := 0; j0 < n; j0 += jb {
		j1 := j0 + jb
		if j1 > n {
			j1 = n
		}
		dotRowsSeg(out, a, b, m, k, n, j0, j1)
	}
}

// dotRowsSeg computes the [j0,j1) column segment of every out row. Four
// output columns share each a-row load.
func dotRowsSeg(out, a, b []float32, m, k, n, j0, j1 int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		or := out[i*n : (i+1)*n]
		j := j0
		for ; j+4 <= j1; j += 4 {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			for p, av := range ar {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			or[j], or[j+1], or[j+2], or[j+3] = s0, s1, s2, s3
		}
		for ; j < j1; j++ {
			br := b[j*k : (j+1)*k]
			var s float32
			for p, av := range ar {
				s += av * br[p]
			}
			or[j] = s
		}
	}
}

// MatMulTransA returns aᵀ@b for a [k,m] and b [k,n] -> [m,n].
func MatMulTransA(a, b *Tensor) *Tensor {
	m, _, n := checkMatMul(a, b, true, false)
	out := New(m, n)
	matMulTransAInto(out, a, b, false)
	return out
}

// MatMulTransAInto stores aᵀ@b into dst, overwriting it. dst must not alias
// the operands.
func MatMulTransAInto(dst, a, b *Tensor) { matMulTransAInto(dst, a, b, true) }

// MatMulTransAAddInto accumulates aᵀ@b into dst (dst += aᵀ@b), the fused
// form used by convolution weight gradients.
func MatMulTransAAddInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b, true, false)
	checkMatMulDst("MatMulTransAAddInto", dst, m, n)
	h, t0 := kernelStart()
	transAOuter(dst.data, a.data, b.data, m, k, n)
	kernelEnd(h, t0, KernelMatMul)
}

func matMulTransAInto(dst, a, b *Tensor, zero bool) {
	m, k, n := checkMatMul(a, b, true, false)
	checkMatMulDst("MatMulTransAInto", dst, m, n)
	h, t0 := kernelStart()
	if zero {
		dst.Zero()
	}
	transAOuter(dst.data, a.data, b.data, m, k, n)
	kernelEnd(h, t0, KernelMatMul)
}

// transAOuter accumulates k outer products into out; parallelized over
// output rows to keep writes disjoint. out must be pre-zeroed (or hold the
// accumulation base).
func transAOuter(out, a, b []float32, m, k, n int) {
	if !shouldParallel(m, m*k*n) {
		transARows(out, a, b, 0, m, m, k, n)
		return
	}
	parallelRows(m, m*k*n, func(r0, r1 int) {
		transARows(out, a, b, r0, r1, m, k, n)
	})
}

func transARows(out, a, b []float32, r0, r1, m, k, n int) {
	for i := r0; i < r1; i++ {
		or := out[i*n : (i+1)*n]
		p := 0
		for ; p+2 <= k; p += 2 {
			a1, a2 := a[p*m+i], a[(p+1)*m+i]
			switch {
			case a1 == 0 && a2 == 0:
			case a2 == 0:
				saxpy(or, b[p*n:(p+1)*n], a1)
			case a1 == 0:
				saxpy(or, b[(p+1)*n:(p+2)*n], a2)
			default:
				saxpy2(or, b[p*n:(p+1)*n], b[(p+1)*n:(p+2)*n], a1, a2)
			}
		}
		if p < k {
			if av := a[p*m+i]; av != 0 {
				saxpy(or, b[p*n:(p+1)*n], av)
			}
		}
	}
}

func checkMatMulDst(op string, dst *Tensor, m, n int) {
	if len(dst.data) != m*n {
		panic(fmt.Sprintf("tensor: %s destination %v incompatible with [%d,%d]", op, dst.shape, m, n))
	}
}

// checkBMM validates batched operands [G,m,k]x[G,k,n] -> dst [G,m,n] (with
// the b operand transposed per-slice when transB is set) and returns the
// dimensions.
func checkBMM(op string, dst, a, b *Tensor, transA, transB bool) (G, m, k, n int) {
	as, bs := a.shape, b.shape
	if len(as) != 3 || len(bs) != 3 || as[0] != bs[0] {
		panic(fmt.Sprintf("tensor: %s shapes %v x %v invalid", op, as, bs))
	}
	G = as[0]
	m, k = as[1], as[2]
	if transA {
		m, k = k, m
	}
	bk, bn := bs[1], bs[2]
	if transB {
		bk, bn = bn, bk
	}
	if bk != k {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v x %v", op, as, bs))
	}
	if len(dst.data) != G*m*bn {
		panic(fmt.Sprintf("tensor: %s destination %v incompatible", op, dst.shape))
	}
	return G, m, k, bn
}

// BMMInto stores the batched product a[G,m,k] @ b[G,k,n] into dst [G,m,n],
// overwriting it. Slices are independent, so large batches are sharded over
// the worker pool (per-slice kernels stay serial, keeping bits fixed); it
// walks raw offsets, so the hot attention loops allocate nothing.
func BMMInto(dst, a, b *Tensor) {
	G, m, k, n := checkBMM("BMMInto", dst, a, b, false, false)
	h, t0 := kernelStart()
	if G == 1 {
		matMulInto(dst.data, a.data, b.data, m, k, n)
	} else {
		parallelFor(G, G*m*k*n, func(g0, g1 int) {
			for i := g0; i < g1; i++ {
				matMulRowsBlocked(dst.data[i*m*n:(i+1)*m*n], a.data[i*m*k:(i+1)*m*k], b.data[i*k*n:(i+1)*k*n], 0, m, k, n)
			}
		})
	}
	kernelEnd(h, t0, KernelMatMul)
}

// BMMTransBInto stores a[G,m,k] @ bᵀ[G,n,k] into dst [G,m,n], sharding
// slices over the worker pool.
func BMMTransBInto(dst, a, b *Tensor) {
	G, m, k, n := checkBMM("BMMTransBInto", dst, a, b, false, true)
	h, t0 := kernelStart()
	if G == 1 {
		matMulTransBRaw(dst.data, a.data, b.data, m, k, n)
	} else {
		parallelFor(G, G*m*k*n, func(g0, g1 int) {
			for i := g0; i < g1; i++ {
				dotRows(dst.data[i*m*n:(i+1)*m*n], a.data[i*m*k:(i+1)*m*k], b.data[i*n*k:(i+1)*n*k], m, k, n)
			}
		})
	}
	kernelEnd(h, t0, KernelMatMul)
}

// BMMTransAAddInto accumulates aᵀ[G,k,m] @ gy[G,k,n] into dst [G,m,n]
// (dst += per slice; dst must hold the accumulation base, typically zeros),
// sharding slices over the worker pool.
func BMMTransAAddInto(dst, a, b *Tensor) {
	G, m, k, n := checkBMM("BMMTransAAddInto", dst, a, b, true, false)
	h, t0 := kernelStart()
	if G == 1 {
		transAOuter(dst.data, a.data, b.data, m, k, n)
	} else {
		parallelFor(G, G*m*k*n, func(g0, g1 int) {
			for i := g0; i < g1; i++ {
				transARows(dst.data[i*m*n:(i+1)*m*n], a.data[i*k*m:(i+1)*k*m], b.data[i*k*n:(i+1)*k*n], 0, m, m, k, n)
			}
		})
	}
	kernelEnd(h, t0, KernelMatMul)
}

func checkMatMul(a, b *Tensor, transA, transB bool) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v and %v", a.shape, b.shape))
	}
	am, ak := a.shape[0], a.shape[1]
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.shape[0], b.shape[1]
	if transB {
		bk, bn = bn, bk
	}
	if ak != bk {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v (transA=%v transB=%v)", a.shape, b.shape, transA, transB))
	}
	return am, ak, bn
}

// matMulInto computes out = a@b with a [m,k], b [k,n] row-major. Rows are
// sharded over the worker pool when the product is large enough; each shard
// runs the cache-blocked row kernel.
func matMulInto(out, a, b []float32, m, k, n int) {
	work := m * k * n
	if !shouldParallel(m, work) {
		matMulRowsBlocked(out, a, b, 0, m, k, n)
		return
	}
	parallelRows(m, work, func(r0, r1 int) {
		matMulRowsBlocked(out, a, b, r0, r1, k, n)
	})
}

// Cache-blocking parameters for the packed-panel matmul path. matmulKC must
// stay EVEN: blocks then start on even k indices, so the saxpy2 pairing of
// (p, p+1) rows inside each block coincides with the unblocked kernel's
// pairing and blocked results stay bit-identical.
const (
	matmulKC = 128
	matmulNC = 256
)

// panelBuf recycles packed B-panels across matmul calls and across workers.
var panelBuf = sync.Pool{New: func() any {
	s := make([]float32, matmulKC*matmulNC)
	return &s
}}

// matMulRowsBlocked computes rows [r0,r1) of out = a@b. When B spills out of
// a single [matmulKC, matmulNC] tile, it is packed panel by panel into a
// contiguous scratch buffer that every row of the shard then reuses, keeping
// the inner saxpy sweeps inside L1/L2 regardless of n's stride. Per output
// element the summation still runs over p in ascending order with the same
// saxpy2 pairing as matMulRows, so blocked, unblocked, serial and parallel
// paths all produce identical bits.
func matMulRowsBlocked(out, a, b []float32, r0, r1, k, n int) {
	if k <= matmulKC && n <= matmulNC {
		matMulRows(out, a, b, r0, r1, k, n)
		return
	}
	bufp := panelBuf.Get().(*[]float32)
	pack := *bufp
	for j0 := 0; j0 < n; j0 += matmulNC {
		nc := n - j0
		if nc > matmulNC {
			nc = matmulNC
		}
		for p0 := 0; p0 < k; p0 += matmulKC {
			kc := k - p0
			if kc > matmulKC {
				kc = matmulKC
			}
			for t := 0; t < kc; t++ {
				copy(pack[t*nc:(t+1)*nc], b[(p0+t)*n+j0:(p0+t)*n+j0+nc])
			}
			for i := r0; i < r1; i++ {
				or := out[i*n+j0 : i*n+j0+nc]
				if p0 == 0 {
					for j := range or {
						or[j] = 0
					}
				}
				saxpyRows(or, a[i*k+p0:i*k+p0+kc], pack, kc, nc)
			}
		}
	}
	panelBuf.Put(bufp)
}

func matMulRows(out, a, b []float32, r0, r1, k, n int) {
	for i := r0; i < r1; i++ {
		or := out[i*n : (i+1)*n]
		for j := range or {
			or[j] = 0
		}
		saxpyRows(or, a[i*k:(i+1)*k], b, k, n)
	}
}

// saxpyRows accumulates or += Σ_p ar[p]·b[p,:], pairing two p-rows per
// sweep to halve the passes over or. The written association
// ((or + a1·b1) + a2·b2) matches two sequential saxpy calls bit-for-bit.
func saxpyRows(or, ar, b []float32, k, n int) {
	p := 0
	for ; p+2 <= k; p += 2 {
		a1, a2 := ar[p], ar[p+1]
		switch {
		case a1 == 0 && a2 == 0:
		case a2 == 0:
			saxpy(or, b[p*n:(p+1)*n], a1)
		case a1 == 0:
			saxpy(or, b[(p+1)*n:(p+2)*n], a2)
		default:
			saxpy2(or, b[p*n:(p+1)*n], b[(p+1)*n:(p+2)*n], a1, a2)
		}
	}
	if p < k {
		if av := ar[p]; av != 0 {
			saxpy(or, b[p*n:(p+1)*n], av)
		}
	}
}

// saxpy performs or += av·br elementwise, unrolled 4-wide. Elements are
// independent, so results match the plain loop bit-for-bit.
func saxpy(or, br []float32, av float32) {
	n := len(or)
	j := 0
	for ; j+4 <= n; j += 4 {
		or[j] += av * br[j]
		or[j+1] += av * br[j+1]
		or[j+2] += av * br[j+2]
		or[j+3] += av * br[j+3]
	}
	for ; j < n; j++ {
		or[j] += av * br[j]
	}
}

// saxpy2 performs or = (or + a1·b1) + a2·b2 elementwise, preserving the
// association of two sequential saxpy calls exactly.
func saxpy2(or, b1, b2 []float32, a1, a2 float32) {
	n := len(or)
	if len(b1) < n || len(b2) < n {
		panic("tensor: saxpy2 operand too short")
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		t0 := or[j] + a1*b1[j]
		t1 := or[j+1] + a1*b1[j+1]
		t2 := or[j+2] + a1*b1[j+2]
		t3 := or[j+3] + a1*b1[j+3]
		or[j] = t0 + a2*b2[j]
		or[j+1] = t1 + a2*b2[j+1]
		or[j+2] = t2 + a2*b2[j+2]
		or[j+3] = t3 + a2*b2[j+3]
	}
	for ; j < n; j++ {
		or[j] = (or[j] + a1*b1[j]) + a2*b2[j]
	}
}

// MatMulRaw computes out = a@b on raw row-major buffers: a [m,k], b [k,n],
// out [m,n] (overwritten). The raw kernels let graph ops on higher-rank
// tensors skip the 2-D view tensors entirely.
func MatMulRaw(out, a, b []float32, m, k, n int) {
	h, t0 := kernelStart()
	matMulInto(out, a, b, m, k, n)
	kernelEnd(h, t0, KernelMatMul)
}

// MatMulTransBRaw computes out = a@bᵀ on raw buffers: a [m,k], b [n,k],
// out [m,n] (overwritten).
func MatMulTransBRaw(out, a, b []float32, m, k, n int) {
	h, t0 := kernelStart()
	matMulTransBRaw(out, a, b, m, k, n)
	kernelEnd(h, t0, KernelMatMul)
}

// matMulTransBRaw is the unhooked a@bᵀ kernel, shared with the conv and
// batched paths so nested uses are not double-counted by the hook.
func matMulTransBRaw(out, a, b []float32, m, k, n int) {
	if !shouldParallel(m, m*k*n) {
		dotRows(out, a, b, m, k, n)
		return
	}
	parallelRows(m, m*k*n, func(r0, r1 int) {
		dotRows(out[r0*n:r1*n], a[r0*k:r1*k], b, r1-r0, k, n)
	})
}

// MatMulTransAAddRaw accumulates out += aᵀ@b on raw buffers: a [k,m],
// b [k,n], out [m,n] (must hold the accumulation base, typically zeros).
func MatMulTransAAddRaw(out, a, b []float32, m, k, n int) {
	h, t0 := kernelStart()
	transAOuter(out, a, b, m, k, n)
	kernelEnd(h, t0, KernelMatMul)
}
