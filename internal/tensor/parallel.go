package tensor

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is the parallel backbone of the kernel layer: one shared,
// bounded pool of persistent worker goroutines that every data-parallel
// kernel (tiled matmul, batched convolution, fused attention) dispatches
// through, instead of spawning ad-hoc goroutines per call.
//
// Scheduling is caller-runs: parallelFor shards [0,n) into chunks behind an
// atomic cursor, offers the pool a bounded number of helper tasks without
// blocking, and then executes chunks itself until none remain. Two
// properties follow:
//
//   - Nesting guard. A kernel running inside another parallel region (a
//     matmul inside a batch-parallel convolution, or inside an
//     attack.ParallelOracle worker) cannot oversubscribe the machine: the
//     helper budget is the fixed pool size no matter how many concurrent
//     callers exist, and when all workers are busy the nested call simply
//     degrades to inline execution on its own goroutine. Workers never
//     block on anything but strictly-nested work, so no cycle of waits —
//     and hence no deadlock — can form.
//
//   - Bit determinism. Every chunk is executed by exactly one goroutine
//     with the same intra-chunk iteration order as the serial path, and
//     chunk boundaries depend only on (n, worker count), never on
//     scheduling. Kernels built on parallelFor therefore produce results
//     bit-identical to their single-threaded runs as long as chunk writes
//     are disjoint and cross-chunk reductions are performed serially in a
//     fixed order (see Conv2dBackwardInto).
//
// The single-threaded path is taken whenever the sharded work is below
// parallelThreshold, the effective worker count is 1 (GOMAXPROCS(0)==1 or
// PELTA_KERNEL_WORKERS=1), or there is nothing to shard.

// kernelWorkerOverride pins the kernel worker count when positive; 0 means
// auto (runtime.GOMAXPROCS). Set from PELTA_KERNEL_WORKERS at init and from
// SetKernelWorkers at runtime.
var kernelWorkerOverride atomic.Int64

func init() {
	if v, ok := os.LookupEnv("PELTA_KERNEL_WORKERS"); ok {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			kernelWorkerOverride.Store(int64(n))
		}
	}
}

// KernelWorkers returns the effective kernel parallelism: the
// PELTA_KERNEL_WORKERS / SetKernelWorkers override when pinned, otherwise
// runtime.GOMAXPROCS(0). A value of 1 forces every kernel onto the serial
// deterministic path.
func KernelWorkers() int {
	if n := int(kernelWorkerOverride.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetKernelWorkers pins the kernel worker count (0 restores auto) and
// returns the previous override. It is the programmatic twin of the
// PELTA_KERNEL_WORKERS environment variable, used by tests and by hosts
// that must pin determinism-sensitive cells.
func SetKernelWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(kernelWorkerOverride.Swap(int64(n)))
}

// workerPool is the shared set of persistent helper goroutines. Workers
// block on the task channel when idle and cost nothing; the pool is started
// lazily on the first parallel dispatch.
type workerPool struct {
	tasks chan func()
	size  int
}

var (
	poolOnce   sync.Once
	sharedPool *workerPool
)

// minPoolWorkers floors the pool size so test hosts with few cores can
// still exercise (and race-detect) the parallel paths by raising
// GOMAXPROCS above the physical core count.
const minPoolWorkers = 8

func kernelPool() *workerPool {
	poolOnce.Do(func() {
		size := runtime.GOMAXPROCS(0)
		if size < minPoolWorkers {
			size = minPoolWorkers
		}
		p := &workerPool{tasks: make(chan func(), size), size: size}
		for i := 0; i < size; i++ {
			go func() {
				for f := range p.tasks {
					f()
				}
			}()
		}
		sharedPool = p
	})
	return sharedPool
}

// parallelThreshold is the amount of work (multiply-add count) below which
// kernels run serially; sharding tiny operations costs more than it saves.
const parallelThreshold = 1 << 16

// shouldParallel reports whether a kernel sharding n independent units of
// `work` total multiply-adds is worth dispatching to the pool.
func shouldParallel(n, work int) bool {
	return work >= parallelThreshold && n >= 2 && KernelWorkers() > 1
}

// parallelFor shards [0,n) into chunks and runs body on each chunk, using
// the shared worker pool when the work is large enough and the serial
// inline path otherwise. body(lo, hi) must write only state owned by
// [lo,hi); results are then bit-identical for every worker count.
func parallelFor(n, work int, body func(lo, hi int)) {
	w := KernelWorkers()
	if w <= 1 || n < 2 || work < parallelThreshold {
		body(0, n)
		return
	}
	pool := kernelPool()
	if w > pool.size+1 {
		w = pool.size + 1
	}
	// Twice as many chunks as runners: the atomic cursor load-balances
	// uneven chunk costs without affecting per-chunk determinism.
	nchunks := 2 * w
	if nchunks > n {
		nchunks = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nchunks)
	run := func() bool {
		i := int(next.Add(1)) - 1
		if i >= nchunks {
			return false
		}
		body(i*n/nchunks, (i+1)*n/nchunks)
		wg.Done()
		return true
	}
	helper := func() {
		for run() {
		}
	}
	// Offer helpers without blocking: a full channel means every worker is
	// busy (typically because this call is nested inside another parallel
	// region), and the caller simply runs its chunks inline.
	helpers := w - 1
	if helpers > nchunks-1 {
		helpers = nchunks - 1
	}
offer:
	for h := 0; h < helpers; h++ {
		select {
		case pool.tasks <- helper:
		default:
			break offer
		}
	}
	helper()
	wg.Wait()
}

// parallelRows shards [0,m) row ranges of a kernel whose total work is
// `work` multiply-adds across the worker pool.
func parallelRows(m, work int, body func(r0, r1 int)) {
	parallelFor(m, work, body)
}
