// Package tensor provides dense float32 n-dimensional tensors and the
// numerical kernels (elementwise ops, matrix multiplication, convolution,
// fused attention, pooling) used by the autograd engine, the model zoo and
// the attack suite.
//
// Tensors are row-major and contiguous. The package is deliberately free of
// any autodiff logic: it only moves numbers around. All operations that
// allocate return fresh tensors; operations suffixed In or prefixed with a
// destination receiver mutate in place.
//
// # Parallelism
//
// The hot kernels (tiled matmul, batched convolution forward/backward,
// transposed convolution, fused attention) shard their outermost loop over a
// shared worker pool of persistent goroutines sized to GOMAXPROCS. Work
// below parallelThreshold (~64k multiply-adds) runs inline — the model-zoo
// shapes used in -short tests sit below it on purpose. The pool uses
// caller-runs scheduling: helpers are offered to the pool non-blocking and
// the calling goroutine always executes chunks itself, so kernels invoked
// from inside another parallel region (or from the attack-layer
// ParallelOracle workers) degrade to inline execution instead of
// oversubscribing or deadlocking.
//
// PELTA_KERNEL_WORKERS overrides the worker count at process start
// (0 = GOMAXPROCS); SetKernelWorkers does the same at runtime. Setting 1
// bypasses sharding entirely and runs the historical single-threaded loop.
//
// # Determinism
//
// Every kernel is bit-deterministic at any worker count: parallel shards
// own disjoint output ranges and each output element is reduced in a fixed
// serial order, so workers=1 and workers=N produce identical float32 bits
// (pinned by the property tests in parallel_test.go). Cache-blocked tiling
// preserves the same guarantee by keeping per-element summation order
// unchanged (k-blocks start on even indices to match the pairwise saxpy
// kernel). Gradient reductions that cross shard boundaries (conv gw/gb)
// accumulate per-sample partials in scratch and reduce serially in sample
// order.
//
// The size-bucketed Pool is safe for concurrent use, but the hot paths give
// each worker its own pool so the mutex stays uncontended. RNG wraps
// math/rand with an explicit seed — every random draw in the repo flows
// through it, which is what makes experiments replayable.
package tensor
