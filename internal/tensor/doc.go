// Package tensor provides dense float32 n-dimensional tensors and the
// numerical kernels (elementwise ops, matrix multiplication, convolution,
// pooling) used by the autograd engine, the model zoo and the attack suite.
//
// Tensors are row-major and contiguous. The package is deliberately free of
// any autodiff logic: it only moves numbers around. All operations that
// allocate return fresh tensors; operations suffixed In or prefixed with a
// destination receiver mutate in place.
//
// Kernels are single-threaded and bit-deterministic (fixed reduction
// order); callers parallelize across tensors, not inside them. The
// size-bucketed Pool is safe for concurrent use, but the hot paths give
// each worker its own pool so the mutex stays uncontended. RNG wraps
// math/rand with an explicit seed — every random draw in the repo flows
// through it, which is what makes experiments replayable.
package tensor
