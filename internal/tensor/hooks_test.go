package tensor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingHook collects observed kernel ops; its clock advances 1µs per
// read so every observation has a positive duration.
type countingHook struct {
	ticks atomic.Int64
	mu    sync.Mutex
	ops   []KernelOp
	durs  []time.Duration
}

func (c *countingHook) install(t *testing.T) {
	t.Helper()
	SetKernelHook(&KernelHook{
		Now: func() time.Time { return time.Unix(0, c.ticks.Add(1000)) },
		Observe: func(op KernelOp, d time.Duration) {
			c.mu.Lock()
			c.ops = append(c.ops, op)
			c.durs = append(c.durs, d)
			c.mu.Unlock()
		},
	})
	t.Cleanup(func() { SetKernelHook(nil) })
}

func (c *countingHook) count(op KernelOp) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, o := range c.ops {
		if o == op {
			n++
		}
	}
	return n
}

// TestKernelHookObservesEntries pins that each kernel family reports
// exactly one observation per public entry, with positive durations.
func TestKernelHookObservesEntries(t *testing.T) {
	h := &countingHook{}
	h.install(t)

	a, b := New(4, 6), New(6, 5)
	a.Fill(0.5)
	b.Fill(0.25)
	MatMul(a, b)
	if got := h.count(KernelMatMul); got != 1 {
		t.Fatalf("MatMul observed %d matmul spans, want 1", got)
	}

	x := New(2, 3, 8, 8)
	w := New(4, 3, 3, 3)
	x.Fill(0.1)
	w.Fill(0.2)
	Conv2d(x, w, nil, 1, 1)
	if got := h.count(KernelConv); got != 1 {
		t.Fatalf("Conv2d observed %d conv spans, want 1", got)
	}
	// The conv's internal lowered products must NOT also count as matmul —
	// the hook reports kernel families at their public boundary only.
	if got := h.count(KernelMatMul); got != 1 {
		t.Fatalf("Conv2d leaked %d extra matmul spans (nested double count)", got-1)
	}

	G, T, dh := 2, 4, 3
	q, k, v, dst := New(G, T, dh), New(G, T, dh), New(G, T, dh), New(G, T, dh)
	q.Fill(0.3)
	k.Fill(0.2)
	v.Fill(0.1)
	FusedAttentionInto(nil, dst, q, k, v, 0.5)
	if got := h.count(KernelAttention); got != 1 {
		t.Fatalf("FusedAttentionInto observed %d attention spans, want 1", got)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, d := range h.durs {
		if d <= 0 {
			t.Fatalf("observation %d has non-positive duration %v", i, d)
		}
	}
}

// TestKernelHookBackwardEntries covers the backward-pass boundaries.
func TestKernelHookBackwardEntries(t *testing.T) {
	h := &countingHook{}
	h.install(t)

	x := New(2, 3, 8, 8)
	w := New(4, 3, 3, 3)
	x.Fill(0.1)
	w.Fill(0.2)
	gy := New(2, 4, 8, 8)
	gy.Fill(0.05)
	Conv2dBackward(x, w, true, gy, 1, 1)
	if got := h.count(KernelConv); got != 1 {
		t.Fatalf("Conv2dBackward observed %d conv spans, want 1", got)
	}
	if got := h.count(KernelMatMul); got != 0 {
		t.Fatalf("Conv2dBackward leaked %d matmul spans", got)
	}

	G, T, dh := 2, 4, 3
	q, k, v, gyA := New(G, T, dh), New(G, T, dh), New(G, T, dh), New(G, T, dh)
	gq, gk, gv := New(G, T, dh), New(G, T, dh), New(G, T, dh)
	q.Fill(0.3)
	k.Fill(0.2)
	v.Fill(0.1)
	gyA.Fill(0.4)
	FusedAttentionBackwardInto(nil, gq, gk, gv, q, k, v, gyA, 0.5)
	if got := h.count(KernelAttention); got != 1 {
		t.Fatalf("FusedAttentionBackwardInto observed %d attention spans, want 1", got)
	}
}

// TestKernelHookDisabledIsFree pins that without a hook the kernels never
// read a clock (SetKernelHook(nil) fully disarms).
func TestKernelHookDisabledIsFree(t *testing.T) {
	SetKernelHook(nil)
	a, b := New(2, 2), New(2, 2)
	a.Fill(1)
	b.Fill(1)
	MatMul(a, b) // must not panic dereferencing a nil hook
}

// TestSetKernelHookRejectsPartial pins the half-installed-hook guard.
func TestSetKernelHookRejectsPartial(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("partial hook (nil Observe) must panic")
		}
	}()
	SetKernelHook(&KernelHook{Now: time.Now})
}
