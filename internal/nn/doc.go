// Package nn provides neural-network building blocks (layers, initializers,
// optimizers) on top of the autograd engine. Layers own their parameters and
// record vertices into a per-pass graph, so the same layer instance can be
// trained, attacked, and shielded.
//
// Layers hold no per-pass state — everything transient lives in the graph
// — so one layer instance can serve concurrent passes over frozen
// parameters. Initializers and Adam consume explicit seeds/state, keeping
// parameter evolution reproducible run to run.
package nn
