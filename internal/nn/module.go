package nn

import (
	"fmt"

	"pelta/internal/autograd"
	"pelta/internal/tensor"
)

// Module is anything owning trainable parameters.
type Module interface {
	Params() []*autograd.Param
}

// CollectParams concatenates the parameters of several modules.
func CollectParams(ms ...Module) []*autograd.Param {
	var out []*autograd.Param
	for _, m := range ms {
		out = append(out, m.Params()...)
	}
	return out
}

// ParamBytes returns the total fp32 byte footprint of the parameters.
func ParamBytes(params []*autograd.Param) int64 {
	var n int64
	for _, p := range params {
		n += p.Data.Bytes()
	}
	return n
}

// Linear is a fully connected layer y = x·Wᵀ + b.
type Linear struct {
	W *autograd.Param
	B *autograd.Param // nil when bias is disabled
}

// NewLinear creates a Linear layer with Xavier-uniform weights.
func NewLinear(name string, in, out int, bias bool, rng *tensor.RNG) *Linear {
	l := &Linear{W: autograd.NewParam(name+".weight", XavierUniform(rng, out, in))}
	if bias {
		l.B = autograd.NewParam(name+".bias", tensor.New(out))
	}
	return l
}

// Forward applies the layer over the last dimension of x.
func (l *Linear) Forward(g *autograd.Graph, x *autograd.Value) *autograd.Value {
	var b *autograd.Value
	if l.B != nil {
		b = g.Param(l.B)
	}
	return g.Linear(x, g.Param(l.W), b)
}

// Params implements Module.
func (l *Linear) Params() []*autograd.Param {
	if l.B == nil {
		return []*autograd.Param{l.W}
	}
	return []*autograd.Param{l.W, l.B}
}

// Conv2d is a standard convolution layer.
type Conv2d struct {
	W      *autograd.Param // [out, in, k, k]
	B      *autograd.Param // nil when bias is disabled
	Stride int
	Pad    int
}

// NewConv2d creates a conv layer with He-normal weights.
func NewConv2d(name string, in, out, k, stride, pad int, bias bool, rng *tensor.RNG) *Conv2d {
	c := &Conv2d{
		W:      autograd.NewParam(name+".weight", HeNormal(rng, out, in, k, k)),
		Stride: stride,
		Pad:    pad,
	}
	if bias {
		c.B = autograd.NewParam(name+".bias", tensor.New(out))
	}
	return c
}

// Forward applies the convolution to a [B,C,H,W] vertex.
func (c *Conv2d) Forward(g *autograd.Graph, x *autograd.Value) *autograd.Value {
	var b *autograd.Value
	if c.B != nil {
		b = g.Param(c.B)
	}
	return g.Conv2d(x, g.Param(c.W), b, c.Stride, c.Pad)
}

// Params implements Module.
func (c *Conv2d) Params() []*autograd.Param {
	if c.B == nil {
		return []*autograd.Param{c.W}
	}
	return []*autograd.Param{c.W, c.B}
}

// WSConv2d is a weight-standardized convolution (BiT).
type WSConv2d struct {
	W      *autograd.Param
	B      *autograd.Param
	Stride int
	Pad    int
}

// NewWSConv2d creates a weight-standardized conv layer.
func NewWSConv2d(name string, in, out, k, stride, pad int, bias bool, rng *tensor.RNG) *WSConv2d {
	c := &WSConv2d{
		W:      autograd.NewParam(name+".weight", HeNormal(rng, out, in, k, k)),
		Stride: stride,
		Pad:    pad,
	}
	if bias {
		c.B = autograd.NewParam(name+".bias", tensor.New(out))
	}
	return c
}

// Forward applies the standardized convolution to [B,C,H,W].
func (c *WSConv2d) Forward(g *autograd.Graph, x *autograd.Value) *autograd.Value {
	var b *autograd.Value
	if c.B != nil {
		b = g.Param(c.B)
	}
	return g.WSConv2d(x, g.Param(c.W), b, c.Stride, c.Pad)
}

// Params implements Module.
func (c *WSConv2d) Params() []*autograd.Param {
	if c.B == nil {
		return []*autograd.Param{c.W}
	}
	return []*autograd.Param{c.W, c.B}
}

// LayerNorm normalizes the last dimension with a learned affine transform.
type LayerNorm struct {
	Gamma *autograd.Param
	Beta  *autograd.Param
}

// NewLayerNorm creates a LayerNorm over d features.
func NewLayerNorm(name string, d int) *LayerNorm {
	return &LayerNorm{
		Gamma: autograd.NewParam(name+".gamma", tensor.Ones(d)),
		Beta:  autograd.NewParam(name+".beta", tensor.New(d)),
	}
}

// Forward applies the normalization.
func (l *LayerNorm) Forward(g *autograd.Graph, x *autograd.Value) *autograd.Value {
	return g.LayerNorm(x, g.Param(l.Gamma), g.Param(l.Beta))
}

// Params implements Module.
func (l *LayerNorm) Params() []*autograd.Param { return []*autograd.Param{l.Gamma, l.Beta} }

// BatchNorm2d normalizes channels of [B,C,H,W] with running statistics.
type BatchNorm2d struct {
	Gamma *autograd.Param
	Beta  *autograd.Param
	State *autograd.BatchNormState
}

// NewBatchNorm2d creates a BatchNorm over c channels.
func NewBatchNorm2d(name string, c int) *BatchNorm2d {
	return &BatchNorm2d{
		Gamma: autograd.NewParam(name+".gamma", tensor.Ones(c)),
		Beta:  autograd.NewParam(name+".beta", tensor.New(c)),
		State: autograd.NewBatchNormState(c, 0.1),
	}
}

// Forward applies the normalization; training selects batch statistics.
func (l *BatchNorm2d) Forward(g *autograd.Graph, x *autograd.Value, training bool) *autograd.Value {
	return g.BatchNorm2d(x, g.Param(l.Gamma), g.Param(l.Beta), l.State, training)
}

// Params implements Module.
func (l *BatchNorm2d) Params() []*autograd.Param { return []*autograd.Param{l.Gamma, l.Beta} }

// GroupNorm2d normalizes channel groups of [B,C,H,W].
type GroupNorm2d struct {
	Gamma  *autograd.Param
	Beta   *autograd.Param
	Groups int
}

// NewGroupNorm2d creates a GroupNorm over c channels in the given groups.
func NewGroupNorm2d(name string, c, groups int) *GroupNorm2d {
	if c%groups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm2d channels %d not divisible by groups %d", c, groups))
	}
	return &GroupNorm2d{
		Gamma:  autograd.NewParam(name+".gamma", tensor.Ones(c)),
		Beta:   autograd.NewParam(name+".beta", tensor.New(c)),
		Groups: groups,
	}
}

// Forward applies the normalization.
func (l *GroupNorm2d) Forward(g *autograd.Graph, x *autograd.Value) *autograd.Value {
	return g.GroupNorm2d(x, g.Param(l.Gamma), g.Param(l.Beta), l.Groups)
}

// Params implements Module.
func (l *GroupNorm2d) Params() []*autograd.Param { return []*autograd.Param{l.Gamma, l.Beta} }
