package nn

import (
	"math"

	"pelta/internal/tensor"
)

// XavierUniform returns a [out,in] weight matrix drawn from the Glorot
// uniform distribution U(−a, a) with a = sqrt(6/(in+out)).
func XavierUniform(rng *tensor.RNG, out, in int) *tensor.Tensor {
	a := math.Sqrt(6.0 / float64(in+out))
	return rng.Uniform(-a, a, out, in)
}

// HeNormal returns a conv kernel [out,in,kh,kw] from N(0, 2/fanIn), the
// Kaiming initialization used for ReLU networks.
func HeNormal(rng *tensor.RNG, out, in, kh, kw int) *tensor.Tensor {
	fanIn := float64(in * kh * kw)
	return rng.Normal(0, math.Sqrt(2/fanIn), out, in, kh, kw)
}

// TruncNormal returns a tensor from N(0, std²) with values resampled into
// ±2std, the ViT embedding initialization.
func TruncNormal(rng *tensor.RNG, std float64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data() {
		for {
			v := rng.NormFloat64() * std
			if math.Abs(v) <= 2*std {
				t.Data()[i] = float32(v)
				break
			}
		}
	}
	return t
}
