package nn

import (
	"math"

	"pelta/internal/autograd"
	"pelta/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step()
	// ZeroGrad clears gradients without updating.
	ZeroGrad()
}

// SGD is stochastic gradient descent with optional momentum and weight decay.
type SGD struct {
	params   []*autograd.Param
	lr       float32
	momentum float32
	decay    float32
	velocity []*tensor.Tensor
}

// NewSGD creates an SGD optimizer over params.
func NewSGD(params []*autograd.Param, lr, momentum, weightDecay float32) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum, decay: weightDecay}
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Data.Shape()...)
		}
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		g := p.Grad
		if s.decay != 0 {
			tensor.AddScaledIn(g, s.decay, p.Data)
		}
		if s.velocity != nil {
			v := s.velocity[i]
			tensor.ScaleIn(v, s.momentum)
			tensor.AddIn(v, g)
			g = v
		}
		tensor.AddScaledIn(p.Data, -s.lr, g)
		p.ZeroGrad()
	}
}

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// SetLR changes the learning rate (step-decay schedules).
func (s *SGD) SetLR(lr float32) { s.lr = lr }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	params []*autograd.Param
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	m, v   []*tensor.Tensor
}

// NewAdam creates an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(params []*autograd.Param, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Data.Shape()...)
		a.v[i] = tensor.New(p.Data.Shape()...)
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		m, v, g := a.m[i].Data(), a.v[i].Data(), p.Grad.Data()
		w := p.Data.Data()
		for j := range g {
			gj := float64(g[j])
			mj := a.beta1*float64(m[j]) + (1-a.beta1)*gj
			vj := a.beta2*float64(v[j]) + (1-a.beta2)*gj*gj
			m[j], v[j] = float32(mj), float32(vj)
			w[j] -= float32(a.lr * (mj / bc1) / (math.Sqrt(vj/bc2) + a.eps))
		}
		p.ZeroGrad()
	}
}

// ZeroGrad implements Optimizer.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}
