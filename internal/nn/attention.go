package nn

import (
	"math"

	"pelta/internal/autograd"
	"pelta/internal/tensor"
)

// MultiHeadSelfAttention implements the transformer self-attention block.
// By default it runs the fused strip kernel (tensor.FusedAttentionInto),
// which never materializes the [B*heads, T, T] score tensor. When the
// pass's consumer has called g.RequestRecorded(autograd.RecordAttention) —
// the W^(att) matrices consumed by the Self-Attention Gradient Attack
// (Eq. 4) — the layer falls back to the materializing chain and records the
// softmax probability vertex into the graph; both paths produce identical
// bits. Keeping the record graph-scoped (instead of on the layer) lets
// concurrent passes share the same weights race-free, which the parallel
// batched oracle relies on.
type MultiHeadSelfAttention struct {
	Heads int
	Dim   int

	Wq, Wk, Wv, Wo *Linear
}

// NewMHSA creates a multi-head self-attention layer for dim features.
func NewMHSA(name string, dim, heads int, rng *tensor.RNG) *MultiHeadSelfAttention {
	if dim%heads != 0 {
		panic("nn: attention dim must be divisible by heads")
	}
	return &MultiHeadSelfAttention{
		Heads: heads,
		Dim:   dim,
		Wq:    NewLinear(name+".q", dim, dim, true, rng),
		Wk:    NewLinear(name+".k", dim, dim, true, rng),
		Wv:    NewLinear(name+".v", dim, dim, true, rng),
		Wo:    NewLinear(name+".out", dim, dim, true, rng),
	}
}

// Forward applies attention to a [B,T,D] vertex.
func (m *MultiHeadSelfAttention) Forward(g *autograd.Graph, x *autograd.Value) *autograd.Value {
	xs := x.Data.Shape()
	b, t, d := xs[0], xs[1], xs[2]
	h := m.Heads
	dh := d / h

	split := func(v *autograd.Value) *autograd.Value {
		// [B,T,D] -> [B,T,h,dh] -> [B,h,T,dh] -> [B*h,T,dh]
		return g.Reshape(g.Permute(g.Reshape(v, b, t, h, dh), 0, 2, 1, 3), b*h, t, dh)
	}
	q := split(m.Wq.Forward(g, x))
	k := split(m.Wk.Forward(g, x))
	v := split(m.Wv.Forward(g, x))

	scale := float32(1 / math.Sqrt(float64(dh)))
	var ctx *autograd.Value
	if g.WantsRecorded(autograd.RecordAttention) {
		// Recording path: materialize the [B*h,T,T] probability vertex the
		// SAGA rollout consumes. Bit-identical to the fused kernel below.
		kT := g.Permute(k, 0, 2, 1)            // [B*h, dh, T]
		scores := g.Scale(g.BMM(q, kT), scale) // [B*h, T, T]
		attn := g.SoftmaxLastDim(scores)
		g.Record(autograd.RecordAttention, attn)
		ctx = g.BMM(attn, v) // [B*h, T, dh]
	} else {
		ctx = g.FusedAttention(q, k, v, scale) // [B*h, T, dh]
	}
	// [B*h,T,dh] -> [B,h,T,dh] -> [B,T,h,dh] -> [B,T,D]
	merged := g.Reshape(g.Permute(g.Reshape(ctx, b, h, t, dh), 0, 2, 1, 3), b, t, d)
	return m.Wo.Forward(g, merged)
}

// Params implements Module.
func (m *MultiHeadSelfAttention) Params() []*autograd.Param {
	return CollectParams(m.Wq, m.Wk, m.Wv, m.Wo)
}

// EncoderBlock is a pre-norm transformer encoder block:
// x + MHSA(LN(x)) followed by x + MLP(LN(x)).
type EncoderBlock struct {
	Norm1 *LayerNorm
	Attn  *MultiHeadSelfAttention
	Norm2 *LayerNorm
	FC1   *Linear
	FC2   *Linear
}

// NewEncoderBlock creates a ViT encoder block with an MLP of mlpDim.
func NewEncoderBlock(name string, dim, heads, mlpDim int, rng *tensor.RNG) *EncoderBlock {
	return &EncoderBlock{
		Norm1: NewLayerNorm(name+".ln1", dim),
		Attn:  NewMHSA(name+".attn", dim, heads, rng),
		Norm2: NewLayerNorm(name+".ln2", dim),
		FC1:   NewLinear(name+".mlp1", dim, mlpDim, true, rng),
		FC2:   NewLinear(name+".mlp2", mlpDim, dim, true, rng),
	}
}

// Forward applies the block to [B,T,D].
func (e *EncoderBlock) Forward(g *autograd.Graph, x *autograd.Value) *autograd.Value {
	y := g.Add(x, e.Attn.Forward(g, e.Norm1.Forward(g, x)))
	mlp := e.FC2.Forward(g, g.GELU(e.FC1.Forward(g, e.Norm2.Forward(g, y))))
	return g.Add(y, mlp)
}

// Params implements Module.
func (e *EncoderBlock) Params() []*autograd.Param {
	return CollectParams(e.Norm1, e.Attn, e.Norm2, e.FC1, e.FC2)
}
