package nn

import (
	"math"
	"testing"
	"testing/quick"

	"pelta/internal/autograd"
	"pelta/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("fc", 4, 3, true, rng)
	g := autograd.NewGraph()
	y := l.Forward(g, g.Input(rng.Normal(0, 1, 5, 4), "x"))
	if y.Data.Dim(0) != 5 || y.Data.Dim(1) != 3 {
		t.Fatalf("shape = %v", y.Data.Shape())
	}
	if len(l.Params()) != 2 {
		t.Fatalf("params = %d", len(l.Params()))
	}
	noBias := NewLinear("fc2", 4, 3, false, rng)
	if len(noBias.Params()) != 1 {
		t.Fatal("bias-less linear should expose one param")
	}
}

func TestConvLayersForwardShape(t *testing.T) {
	rng := tensor.NewRNG(2)
	x := rng.Normal(0, 1, 2, 3, 8, 8)
	conv := NewConv2d("c", 3, 5, 3, 2, 1, true, rng)
	g := autograd.NewGraph()
	y := conv.Forward(g, g.Input(x, "x"))
	if y.Data.Dim(1) != 5 || y.Data.Dim(2) != 4 {
		t.Fatalf("conv shape = %v", y.Data.Shape())
	}
	ws := NewWSConv2d("w", 3, 5, 3, 1, 1, false, rng)
	g2 := autograd.NewGraph()
	y2 := ws.Forward(g2, g2.Input(x, "x"))
	if y2.Data.Dim(2) != 8 {
		t.Fatalf("wsconv shape = %v", y2.Data.Shape())
	}
}

func TestWSConvStandardizesKernels(t *testing.T) {
	// The effective kernel of a WSConv has ~zero mean per output channel:
	// feeding a constant image through a 1-channel WSConv (no bias) with
	// full padding yields near-zero interior responses.
	rng := tensor.NewRNG(3)
	ws := NewWSConv2d("w", 1, 1, 3, 1, 1, false, rng)
	g := autograd.NewGraph()
	x := tensor.Full(5, 1, 1, 8, 8)
	y := ws.Forward(g, g.Input(x, "x"))
	// Interior output (away from padding) = 5 * sum(standardized kernel) ≈ 0.
	if v := math.Abs(float64(y.Data.At(0, 0, 4, 4))); v > 1e-4 {
		t.Fatalf("interior response %v, want ~0 for standardized kernel", v)
	}
}

func TestNormLayersPreserveShape(t *testing.T) {
	rng := tensor.NewRNG(4)
	g := autograd.NewGraph()
	ln := NewLayerNorm("ln", 6)
	x := g.Input(rng.Normal(3, 2, 4, 6), "x")
	y := ln.Forward(g, x)
	if !y.Data.SameShape(x.Data) {
		t.Fatal("layernorm changed shape")
	}
	// Normalized rows have ~zero mean.
	row := y.Data.Row(0)
	if m := tensor.Mean(row.Reshape(1, 6)); math.Abs(m) > 1e-4 {
		t.Fatalf("row mean = %v", m)
	}

	img := rng.Normal(0, 1, 2, 4, 3, 3)
	bn := NewBatchNorm2d("bn", 4)
	gn := NewGroupNorm2d("gn", 4, 2)
	g2 := autograd.NewGraph()
	in := g2.Input(img, "x")
	if !bn.Forward(g2, in, true).Data.SameShape(img) {
		t.Fatal("batchnorm changed shape")
	}
	if !gn.Forward(g2, in).Data.SameShape(img) {
		t.Fatal("groupnorm changed shape")
	}
}

func TestGroupNormRejectsBadGroups(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 4 channels / 3 groups")
		}
	}()
	NewGroupNorm2d("gn", 4, 3)
}

func TestMHSAAttentionRecorded(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := NewMHSA("attn", 8, 2, rng)
	g := autograd.NewGraph()
	g.RequestRecorded(autograd.RecordAttention)
	y := m.Forward(g, g.Input(rng.Normal(0, 1, 2, 5, 8), "x"))
	if !y.Data.SameShape(tensor.New(2, 5, 8)) {
		t.Fatalf("attn out shape = %v", y.Data.Shape())
	}
	maps := g.Recorded(autograd.RecordAttention)
	if len(maps) != 1 {
		t.Fatalf("attention probabilities recorded = %d, want 1", len(maps))
	}
	if maps[0].Data.Dim(0) != 4 { // B*heads
		t.Fatalf("attn shape = %v", maps[0].Data.Shape())
	}
	if len(m.Params()) != 8 {
		t.Fatalf("params = %d, want 8 (4 linears × W,b)", len(m.Params()))
	}
}

func TestMHSAFusedMatchesRecordedBitwise(t *testing.T) {
	// The fused attention kernel and the materializing RequestRecorded chain
	// must be interchangeable: identical logits AND identical input
	// gradients, bit for bit, so consumers can opt into recording without
	// perturbing the attack trajectory.
	rng := tensor.NewRNG(21)
	m := NewMHSA("attn", 16, 4, rng)
	x := rng.Normal(0, 1, 3, 9, 16)

	run := func(record bool) (y, gx []float32) {
		g := autograd.NewGraph()
		if record {
			g.RequestRecorded(autograd.RecordAttention)
		}
		in := g.Input(x, "x")
		out := m.Forward(g, in)
		g.Backward(g.Sum(out))
		y = append([]float32(nil), out.Data.Data()...)
		gx = append([]float32(nil), in.Grad.Data()...)
		return
	}
	yF, gxF := run(false)
	yR, gxR := run(true)
	for i := range yF {
		if math.Float32bits(yF[i]) != math.Float32bits(yR[i]) {
			t.Fatalf("fused and recorded outputs diverge at %d: %v vs %v", i, yF[i], yR[i])
		}
	}
	for i := range gxF {
		if math.Float32bits(gxF[i]) != math.Float32bits(gxR[i]) {
			t.Fatalf("fused and recorded input grads diverge at %d: %v vs %v", i, gxF[i], gxR[i])
		}
	}
}

func TestMHSARejectsIndivisibleHeads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dim 7, heads 2")
		}
	}()
	NewMHSA("bad", 7, 2, tensor.NewRNG(1))
}

func TestEncoderBlockResidualProperty(t *testing.T) {
	// With zeroed output projections the block must be the identity.
	rng := tensor.NewRNG(6)
	e := NewEncoderBlock("blk", 8, 2, 16, rng)
	e.Attn.Wo.W.Data.Zero()
	e.Attn.Wo.B.Data.Zero()
	e.FC2.W.Data.Zero()
	e.FC2.B.Data.Zero()
	g := autograd.NewGraph()
	x := rng.Normal(0, 1, 1, 3, 8)
	y := e.Forward(g, g.Input(x, "x"))
	if !y.Data.AllClose(x, 1e-6) {
		t.Fatal("zeroed-projection encoder block should be the identity (pre-norm residual)")
	}
}

func TestSGDStep(t *testing.T) {
	p := autograd.NewParam("w", tensor.FromSlice([]float32{1, 2}, 2))
	p.Grad.CopyFrom(tensor.FromSlice([]float32{1, -1}, 2))
	opt := NewSGD([]*autograd.Param{p}, 0.5, 0, 0)
	opt.Step()
	if p.Data.Data()[0] != 0.5 || p.Data.Data()[1] != 2.5 {
		t.Fatalf("after step: %v", p.Data.Data())
	}
	if p.Grad.Data()[0] != 0 {
		t.Fatal("grad not cleared")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := autograd.NewParam("w", tensor.FromSlice([]float32{0}, 1))
	opt := NewSGD([]*autograd.Param{p}, 1, 0.9, 0)
	// Two identical unit gradients: second step moves 1.9.
	p.Grad.Fill(1)
	opt.Step()
	first := p.Data.Data()[0]
	p.Grad.Fill(1)
	opt.Step()
	second := p.Data.Data()[0] - first
	if math.Abs(float64(first)+1) > 1e-6 {
		t.Fatalf("first step = %v, want -1", first)
	}
	if math.Abs(float64(second)+1.9) > 1e-6 {
		t.Fatalf("second step = %v, want -1.9", second)
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := autograd.NewParam("w", tensor.FromSlice([]float32{10}, 1))
	opt := NewSGD([]*autograd.Param{p}, 0.1, 0, 0.5)
	opt.Step() // grad 0 + decay 0.5*10 = 5; w -= 0.1*5
	if math.Abs(float64(p.Data.Data()[0])-9.5) > 1e-5 {
		t.Fatalf("w = %v, want 9.5", p.Data.Data()[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)² with Adam.
	p := autograd.NewParam("w", tensor.FromSlice([]float32{0}, 1))
	opt := NewAdam([]*autograd.Param{p}, 0.1)
	for i := 0; i < 300; i++ {
		w := p.Data.Data()[0]
		p.Grad.Data()[0] = 2 * (w - 3)
		opt.Step()
	}
	if w := p.Data.Data()[0]; math.Abs(float64(w)-3) > 0.05 {
		t.Fatalf("Adam converged to %v, want 3", w)
	}
}

func TestXavierUniformBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		w := XavierUniform(rng, 8, 12)
		bound := math.Sqrt(6.0 / 20.0)
		for _, v := range w.Data() {
			if float64(v) < -bound || float64(v) >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHeNormalVariance(t *testing.T) {
	rng := tensor.NewRNG(7)
	w := HeNormal(rng, 64, 16, 3, 3)
	var sum, sq float64
	for _, v := range w.Data() {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	n := float64(w.Len())
	variance := sq/n - (sum/n)*(sum/n)
	want := 2.0 / (16 * 9)
	if variance < want/2 || variance > want*2 {
		t.Fatalf("He variance = %v, want ≈ %v", variance, want)
	}
}

func TestTruncNormalWithinBounds(t *testing.T) {
	rng := tensor.NewRNG(8)
	w := TruncNormal(rng, 0.02, 1000)
	for _, v := range w.Data() {
		if math.Abs(float64(v)) > 0.04 {
			t.Fatalf("value %v outside ±2σ", v)
		}
	}
}

func TestCollectParamsAndBytes(t *testing.T) {
	rng := tensor.NewRNG(9)
	a := NewLinear("a", 2, 3, true, rng)  // 6 + 3 params
	b := NewLinear("b", 3, 1, false, rng) // 3 params
	ps := CollectParams(a, b)
	if len(ps) != 3 {
		t.Fatalf("collected %d params", len(ps))
	}
	if got := ParamBytes(ps); got != (6+3+3)*4 {
		t.Fatalf("ParamBytes = %d", got)
	}
}
