package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The interprocedural layer: bottom-up function summaries computed over
// the package graph `go list -export -deps` already supplies to the
// loader. A summary abstracts one function for its callers:
//
//   - taint flow: which result positions carry taint given tainted
//     parameters (and which are tainted unconditionally, e.g. a wrapper
//     returning Enclave.Load output), and which parameters reach a
//     confidentiality sink inside the function;
//   - lock acquisition: the set of mutexes the function may (transitively)
//     acquire, so a caller holding lock A that dials into it records the
//     A→B ordering edges lockorder needs.
//
// Packages are processed in dependency order (imports before importers),
// so a callee in another loaded package is summarized before its callers.
// Within one package, summary computation iterates a bounded number of
// rounds (summaryRounds) to let intra-package call chains converge; calls
// into functions never loaded from source (the standard library, export-
// data-only deps) fall back to the conservative default — every argument
// may flow to every result.

// Taint label bits: bitSource marks real shielded/enclave data; bitRecv
// and paramBit(i) are the symbolic labels summaries are computed over.
const (
	bitSource uint64 = 1 << 0
	bitRecv   uint64 = 1 << 1
)

// paramBit returns the label bit of parameter i, or 0 when the function
// has more parameters than the lattice has bits (excess parameters are
// untracked — conservative only for 60+-ary functions, which do not
// exist in this repo).
func paramBit(i int) uint64 {
	if i > 61 {
		return 0
	}
	return 1 << (2 + uint(i))
}

// paramMask is every symbolic label: the receiver plus all parameters.
const paramMask = ^bitSource

// funcSummary abstracts one function body for taint purposes.
type funcSummary struct {
	// results holds one label mask per result position: which entry
	// labels (bitRecv/paramBit) and/or bitSource may flow into it,
	// merged over every return statement.
	results []uint64
	// sinks is the set of entry labels observed reaching a sink inside
	// the function body (directly or through a callee summary).
	sinks uint64
	// sinkWhat names the first sink class observed, for call-site
	// diagnostics ("fmt output", "Pool.Put", ...).
	sinkWhat string
}

// summaryIndex holds every computed summary, keyed by summaryKey. Lock
// acquisition sets live beside the taint summaries.
type summaryIndex struct {
	taint    map[string]*funcSummary
	acquires map[string]map[string]bool
}

// summaryRounds bounds the per-package fixpoint iteration for
// intra-package call chains (cross-package order is handled by the
// topological sweep).
const summaryRounds = 3

// summaryKey names a function across type-checker instances. Objects for
// the same function differ between a source-checked package and its
// export-data image in a dependent's checker, so summaries are keyed by
// path+receiver+name instead of object identity.
func summaryKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = namedTypeName(sig.Recv().Type())
	}
	return pkg + "." + recv + "." + fn.Name()
}

// namedTypeName returns the bare name of a (possibly pointered) named
// type, or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// calleeFunc resolves a call's static callee to its *types.Func (method
// or package function), or nil for anonymous/builtin/computed callees.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pkg.Info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pkg.Info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// topoOrder sorts pkgs so that every package follows the packages it
// imports (restricted to the given set). Ties and cycles fall back to
// import-path order, keeping the result deterministic.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	ordered := make([]*Package, 0, len(pkgs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.ImportPath] {
		case 1, 2:
			return
		}
		state[p.ImportPath] = 1
		imps := append([]string(nil), p.Imports...)
		sort.Strings(imps)
		for _, im := range imps {
			if dep, ok := byPath[im]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		ordered = append(ordered, p)
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		visit(p)
	}
	return ordered
}

// buildSummaries computes taint and lock summaries for every function in
// every loaded package, bottom-up over the import graph.
func buildSummaries(pkgs []*Package) *summaryIndex {
	idx := &summaryIndex{taint: map[string]*funcSummary{}, acquires: map[string]map[string]bool{}}
	for _, pkg := range topoOrder(pkgs) {
		for round := 0; round < summaryRounds; round++ {
			changed := false
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if updateTaintSummary(pkg, idx, fd) {
						changed = true
					}
					if updateLockSummary(pkg, idx, fd) {
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
	}
	return idx
}

// updateTaintSummary recomputes fd's taint summary against the current
// index, reporting whether it changed.
func updateTaintSummary(pkg *Package, idx *summaryIndex, fd *ast.FuncDecl) bool {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return false
	}
	key := summaryKey(obj)
	tc := newTaintChecker(pkg, idx, fd, false)
	tc.run()
	old := idx.taint[key]
	if old != nil && summariesEqual(old, tc.summary) {
		return false
	}
	idx.taint[key] = tc.summary
	return true
}

func summariesEqual(a, b *funcSummary) bool {
	if a.sinks != b.sinks || a.sinkWhat != b.sinkWhat || len(a.results) != len(b.results) {
		return false
	}
	for i := range a.results {
		if a.results[i] != b.results[i] {
			return false
		}
	}
	return true
}

// substitute rewrites a callee-side label mask into caller-side labels:
// the callee's receiver/parameter bits are replaced by the caller's
// masks for the corresponding receiver/argument expressions; bitSource
// passes through unchanged.
func substitute(mask uint64, recvMask uint64, argMasks []uint64, nParams int, variadic bool) uint64 {
	out := mask & bitSource
	if mask&bitRecv != 0 {
		out |= recvMask
	}
	for i, am := range argMasks {
		pi := i
		if variadic && pi >= nParams-1 {
			pi = nParams - 1
		}
		if pi >= 0 && mask&paramBit(pi) != 0 {
			out |= am
		}
	}
	return out
}

// pkgPathEndsWith reports whether a package path's last segment equals
// name (matching both "pelta/internal/obs" and a bare "obs").
func pkgPathEndsWith(p *types.Package, name string) bool {
	if p == nil {
		return false
	}
	path := p.Path()
	return path == name || strings.HasSuffix(path, "/"+name)
}
