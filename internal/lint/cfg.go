package lint

import (
	"go/ast"
)

// The control-flow layer: an intraprocedural CFG built directly from the
// AST. Each function body becomes a graph of basic blocks whose nodes are
// *simple* statements and branch-condition expressions — compound
// statements (if/for/switch/select) are decomposed into their condition
// and body blocks, so a dataflow walk over a block's nodes never descends
// into a nested body twice. The flow-sensitive rules (shieldtaint,
// errpath, lockorder) run forward may-analyses over this graph; see
// dataflow.go.
//
// Defer semantics are handled per-rule rather than by cloning exit
// blocks: a *ast.DeferStmt appears in the block where it executes (its
// arguments are evaluated there, which is where taint is captured), and
// the CFG records every defer in funcCFG.defers so a rule that cares
// about exit-time effects (lockorder: `defer mu.Unlock()` keeps the lock
// held to the end of the function) can treat them specially.

// cfgBlock is one basic block: a straight-line run of simple statements
// and condition expressions, ending in zero or more successor edges.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body. exit is a
// synthetic empty block every return (and the natural fall-off-the-end)
// flows into.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
	defers []*ast.DeferStmt
}

// edge links from src to dst unless src is nil (control never reaches).
func edge(src, dst *cfgBlock) {
	if src == nil || dst == nil {
		return
	}
	src.succs = append(src.succs, dst)
}

// cfgBuilder carries the break/continue/goto context during construction.
type cfgBuilder struct {
	pkg *Package
	c   *funcCFG
	// breakTargets/continueTargets map a label ("" = innermost) to the
	// block a break/continue jumps to. Entries are pushed per loop/switch
	// and popped on the way out; innermost wins by stack order.
	breaks    []labeledTarget
	continues []labeledTarget
	labels    map[string]*cfgBlock // goto targets
	gotos     []pendingGoto
}

type labeledTarget struct {
	label string
	block *cfgBlock
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

// buildCFG constructs the CFG for one function body.
func buildCFG(pkg *Package, body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{pkg: pkg, c: &funcCFG{}, labels: map[string]*cfgBlock{}}
	b.c.entry = b.newBlock()
	b.c.exit = b.newBlock()
	last := b.stmts(body.List, b.c.entry)
	edge(last, b.c.exit)
	for _, g := range b.gotos {
		if t := b.labels[g.label]; t != nil {
			edge(g.from, t)
		} else {
			// Label not found (shouldn't type-check); be conservative.
			edge(g.from, b.c.exit)
		}
	}
	return b.c
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

// target resolves a break/continue target for label (last matching entry;
// "" matches any, a named label must match exactly).
func target(stack []labeledTarget, label string) *cfgBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// stmts threads a statement list through cur, returning the block where
// control continues (nil when control cannot fall through).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *cfgBlock) *cfgBlock {
	for i, s := range list {
		cur = b.stmt(s, cur, "")
		if cur == nil && i < len(list)-1 {
			// Unreachable trailing statements still get blocks so their
			// nodes are walkable (labels inside may be goto targets).
			cur = b.newBlock()
		}
	}
	return cur
}

// stmt adds s to the graph starting at cur; label is the pending label
// naming this statement (for labeled for/switch). It returns the
// fall-through block, or nil when control cannot continue.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	if cur == nil {
		cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.LabeledStmt:
		// A label is both a goto target and the name of the loop/switch it
		// precedes for break/continue resolution.
		lblBlock := b.newBlock()
		edge(cur, lblBlock)
		b.labels[s.Label.Name] = lblBlock
		return b.stmt(s.Stmt, lblBlock, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, "")
		}
		cur.nodes = append(cur.nodes, s.Cond)
		thenB := b.newBlock()
		edge(cur, thenB)
		thenEnd := b.stmts(s.Body.List, thenB)
		merge := b.newBlock()
		edge(thenEnd, merge)
		if s.Else != nil {
			elseB := b.newBlock()
			edge(cur, elseB)
			edge(b.stmt(s.Else, elseB, ""), merge)
		} else {
			edge(cur, merge)
		}
		if !hasPred(b.c, merge) {
			return nil // both arms terminated
		}
		return merge

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, "")
		}
		head := b.newBlock()
		edge(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		after := b.newBlock()
		body := b.newBlock()
		edge(head, body)
		if s.Cond != nil {
			edge(head, after) // condition false
		}
		b.breaks = append(b.breaks, labeledTarget{label, after})
		b.continues = append(b.continues, labeledTarget{label, head})
		bodyEnd := b.stmts(s.Body.List, body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		if s.Post != nil {
			post := b.newBlock()
			edge(bodyEnd, post)
			post = b.stmt(s.Post, post, "")
			edge(post, head) // loop back edge
		} else {
			edge(bodyEnd, head) // loop back edge
		}
		if s.Cond == nil && !hasPred(b.c, after) {
			return nil // for {} with no break never falls through
		}
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		edge(cur, head)
		// Key/value bindings and the ranged expression live in the header:
		// they are (re)evaluated per iteration.
		head.nodes = append(head.nodes, s)
		after := b.newBlock()
		body := b.newBlock()
		edge(head, body)
		edge(head, after) // range may be empty
		b.breaks = append(b.breaks, labeledTarget{label, after})
		b.continues = append(b.continues, labeledTarget{label, head})
		bodyEnd := b.stmts(s.Body.List, body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		edge(bodyEnd, head) // loop back edge
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, "")
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		return b.switchBody(cur, s.Body, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur, "")
		}
		// The assign carries the x.(type) expression (and binding).
		cur.nodes = append(cur.nodes, s.Assign)
		return b.switchBody(cur, s.Body, label)

	case *ast.SelectStmt:
		after := b.newBlock()
		b.breaks = append(b.breaks, labeledTarget{label, after})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			caseB := b.newBlock()
			edge(cur, caseB)
			if comm.Comm != nil {
				caseB = b.stmt(comm.Comm, caseB, "")
			}
			edge(b.stmts(comm.Body, caseB), after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(s.Body.List) == 0 {
			edge(cur, after)
		}
		if !hasPred(b.c, after) {
			return nil // select with no default and all arms terminating
		}
		return after

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		edge(cur, b.c.exit)
		return nil

	case *ast.BranchStmt:
		lbl := ""
		if s.Label != nil {
			lbl = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			edge(cur, target(b.breaks, lbl))
			return nil
		case "continue":
			edge(cur, target(b.continues, lbl))
			return nil
		case "goto":
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: lbl})
			return nil
		case "fallthrough":
			// Handled by switchBody wiring; treat as fall-through marker.
			cur.nodes = append(cur.nodes, s)
			return cur
		}
		return cur

	case *ast.DeferStmt:
		b.c.defers = append(b.c.defers, s)
		cur.nodes = append(cur.nodes, s)
		return cur

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if callTerminates(b.pkg, s.X) {
			edge(cur, b.c.exit)
			return nil
		}
		return cur

	default:
		// Assign, Decl, IncDec, Go, Send, Empty — simple statements.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchBody wires the case clauses of a switch/type-switch: every clause
// is a successor of the header (a may-analysis does not evaluate the
// tag), fallthrough chains a case body into the next clause's body.
func (b *cfgBuilder) switchBody(header *cfgBlock, body *ast.BlockStmt, label string) *cfgBlock {
	after := b.newBlock()
	b.breaks = append(b.breaks, labeledTarget{label, after})
	clauses := body.List
	caseBlocks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		caseBlocks[i] = b.newBlock()
	}
	hasDefault := len(clauses) == 0
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		// Case expressions are evaluated while deciding at the header.
		for _, e := range cc.List {
			header.nodes = append(header.nodes, e)
		}
		edge(header, caseBlocks[i])
		end := b.stmts(cc.Body, caseBlocks[i])
		if endsInFallthrough(cc.Body) && i+1 < len(clauses) {
			edge(end, caseBlocks[i+1])
		} else {
			edge(end, after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault {
		edge(header, after) // no case matched
	}
	if !hasPred(b.c, after) {
		return nil
	}
	return after
}

// endsInFallthrough reports whether a case body's last statement is the
// fallthrough branch.
func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// hasPred reports whether blk has any predecessor edge.
func hasPred(c *funcCFG, blk *cfgBlock) bool {
	for _, b := range c.blocks {
		for _, s := range b.succs {
			if s == blk {
				return true
			}
		}
	}
	return false
}

// callTerminates reports whether the expression statement is a call that
// never returns: panic, os.Exit, log.Fatal*/Panic*, runtime.Goexit. Paths
// ending in one of these are not "drops" for errpath and hold no locks
// for lockorder's purposes beyond them.
func callTerminates(pkg *Package, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pn := pkgNameOf(pkg, fn.X)
		if pn == nil {
			return false
		}
		switch pn.Imported().Path() {
		case "os":
			return fn.Sel.Name == "Exit"
		case "log":
			switch fn.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		case "runtime":
			return fn.Sel.Name == "Goexit"
		}
	}
	return false
}
