package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// checkClockComplete is the completeness dual of noclock: noclock bans
// ambient time.Now/time.Since calls inside clock-scoped packages, and
// clockcomplete demands that the escape hatch actually exists — every
// exported constructor returning a type that *holds* wall-clock state
// (a time.Time field, directly or transitively) must offer a way to
// inject that clock. Otherwise the type is only constructible on the
// real clock and the fake-clock reproducibility story silently dies at
// construction time.
//
// A constructor group (all exported New* functions returning the same
// named type) is satisfied when ANY of:
//   - some constructor in the group takes a clock-providing parameter:
//     a `func() time.Time`, a `time.Time`, a named/interface type whose
//     name contains "Clock", or an interface with a `Now() time.Time`
//     method (NewMetrics/NewMetricsAt pairs count via the group);
//   - some constructor takes a config struct with such a clock field;
//   - the returned type has an exported clock-typed field callers can
//     set after construction;
//   - the type threads time explicitly instead of storing a clock: some
//     exported method takes a time.Time parameter (detect.New's
//     Observe(now, ...) idiom).
func checkClockComplete(pkg *Package) []Diagnostic {
	cc := &clockCompleteChecker{pkg: pkg, timeState: map[*types.Named]bool{}}

	type group struct {
		ctors    []*ast.FuncDecl
		injected bool
	}
	groups := map[*types.Named]*group{}
	var order []*types.Named

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() || !isConstructorName(fd.Name.Name) {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sig := obj.Type().(*types.Signature)
			named := cc.constructedType(sig)
			if named == nil {
				continue
			}
			g := groups[named]
			if g == nil {
				g = &group{}
				groups[named] = g
				order = append(order, named)
			}
			g.ctors = append(g.ctors, fd)
			if cc.signatureInjects(sig) {
				g.injected = true
			}
		}
	}

	sort.Slice(order, func(i, j int) bool { return order[i].Obj().Name() < order[j].Obj().Name() })
	var diags []Diagnostic
	for _, named := range order {
		g := groups[named]
		if g.injected || !cc.holdsTime(named, 0) {
			continue
		}
		if cc.exportedClockField(named) || cc.threadsNow(named) {
			continue
		}
		for _, fd := range g.ctors {
			diags = append(diags, diag(pkg, "clockcomplete", fd.Name.Pos(),
				"exported constructor %s returns %s, which holds time.Time state, but provides no injectable clock (accept a Clock/func() time.Time/time.Time, expose a clock field, or thread `now` through exported methods)",
				fd.Name.Name, named.Obj().Name()))
		}
	}
	return diags
}

type clockCompleteChecker struct {
	pkg       *Package
	timeState map[*types.Named]bool // memoized holdsTime results
}

// isConstructorName matches the repo's constructor convention.
func isConstructorName(name string) bool {
	return name == "New" || (len(name) > 3 && name[:3] == "New")
}

// constructedType resolves the named struct type a constructor returns:
// the first (pointer-to-)named-struct result declared in this package.
func (cc *clockCompleteChecker) constructedType(sig *types.Signature) *types.Named {
	for i := 0; i < sig.Results().Len(); i++ {
		named, ok := derefType(sig.Results().At(i).Type()).(*types.Named)
		if !ok || named.Obj().Pkg() != cc.pkg.Types {
			continue
		}
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			return named
		}
	}
	return nil
}

// holdsTime reports whether a value of the named type carries a
// time.Time field, looking through same-package struct fields and
// embeddings to a small depth. time.Duration does not count: durations
// are clock-free.
func (cc *clockCompleteChecker) holdsTime(named *types.Named, depth int) bool {
	if depth > 3 {
		return false
	}
	if v, memoized := cc.timeState[named]; memoized && depth == 0 {
		return v
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	holds := false
	for i := 0; i < st.NumFields() && !holds; i++ {
		ft := st.Field(i).Type()
		if isTimeTime(ft) {
			holds = true
			break
		}
		switch t := derefType(ft).(type) {
		case *types.Named:
			if t.Obj().Pkg() == cc.pkg.Types || st.Field(i).Embedded() {
				holds = cc.holdsTime(t, depth+1)
			}
		case *types.Slice:
			if n, ok := derefType(t.Elem()).(*types.Named); ok && n.Obj().Pkg() == cc.pkg.Types {
				holds = cc.holdsTime(n, depth+1)
			}
		case *types.Map:
			if n, ok := derefType(t.Elem()).(*types.Named); ok && n.Obj().Pkg() == cc.pkg.Types {
				holds = cc.holdsTime(n, depth+1)
			}
		}
	}
	if depth == 0 {
		cc.timeState[named] = holds
	}
	return holds
}

// signatureInjects reports whether any parameter provides a clock,
// directly or via a config struct.
func (cc *clockCompleteChecker) signatureInjects(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		pt := params.At(i).Type()
		if isClockish(pt) {
			return true
		}
		// Config struct with a clock field (exported or not: the
		// constructor itself copies it in).
		if st, ok := derefType(pt).Underlying().(*types.Struct); ok {
			if named, isNamed := derefType(pt).(*types.Named); !isNamed || named.Obj().Pkg() == cc.pkg.Types {
				for j := 0; j < st.NumFields(); j++ {
					if isClockish(st.Field(j).Type()) {
						return true
					}
				}
			}
		}
	}
	return false
}

// exportedClockField reports whether the type exposes a settable
// exported clock field.
func (cc *clockCompleteChecker) exportedClockField(named *types.Named) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Exported() && isClockish(f.Type()) {
			return true
		}
	}
	return false
}

// threadsNow reports whether the type uses the threaded-now idiom: an
// exported method taking an explicit time.Time parameter, making the
// stored timestamps caller-controlled.
func (cc *clockCompleteChecker) threadsNow(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if !m.Exported() {
			continue
		}
		sig := m.Type().(*types.Signature)
		for j := 0; j < sig.Params().Len(); j++ {
			if isTimeTime(sig.Params().At(j).Type()) {
				return true
			}
		}
	}
	return false
}

// isTimeTime reports whether t is exactly time.Time.
func isTimeTime(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "time" && n.Obj().Name() == "Time"
}

// isClockish reports whether t can deliver the current time under the
// caller's control: time.Time itself, func() time.Time, a named type
// whose name contains "Clock", or an interface with Now() time.Time.
func isClockish(t types.Type) bool {
	if isTimeTime(t) {
		return true
	}
	if sig, ok := t.Underlying().(*types.Signature); ok {
		return sig.Params().Len() == 0 && sig.Results().Len() == 1 && isTimeTime(sig.Results().At(0).Type())
	}
	if named, ok := derefType(t).(*types.Named); ok {
		if containsClockName(named.Obj().Name()) {
			return true
		}
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			sig := m.Type().(*types.Signature)
			if m.Name() == "Now" && sig.Params().Len() == 0 && sig.Results().Len() == 1 && isTimeTime(sig.Results().At(0).Type()) {
				return true
			}
		}
	}
	return false
}

func containsClockName(name string) bool {
	for i := 0; i+5 <= len(name); i++ {
		seg := name[i : i+5]
		if seg == "Clock" || seg == "clock" {
			return true
		}
	}
	return false
}
