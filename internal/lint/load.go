package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for rule application.
type Package struct {
	// ImportPath is the package's import path ("pelta/internal/serve").
	// Testdata packages loaded with LoadDir use the directory base name.
	ImportPath string
	// Dir is the directory holding the package's files.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Imports lists the package's direct imports, for the bottom-up
	// summary sweep's topological order. Empty for LoadDir packages
	// (testdata fixtures import at most the standard library).
	Imports []string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the given package patterns ("./...", "./internal/serve")
// with the go command and type-checks every matched package from source,
// importing dependencies through their compiled export data. It is the
// go/packages-free loader: one `go list -export -deps -json` invocation
// supplies both the file lists and the export data the stdlib gc importer
// needs, so the tool has no module dependencies of its own.
//
// Only non-test Go files are checked: the invariants peltalint enforces
// (injected clocks, seeded RNGs, deterministic iteration) are production
// properties; tests legitimately sleep, race and shuffle.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkg.Imports = t.Imports
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir without going
// through package-pattern resolution. It is how the golden-diagnostic tests
// load testdata packages, which live under a testdata/ directory the go
// tool's wildcards refuse to match. The package may import anything the go
// command can produce export data for (in practice: the standard library).
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	fset := token.NewFileSet()
	var files []string
	var parsed []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, path)
		parsed = append(parsed, af)
		for _, im := range af.Imports {
			imports[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	if len(parsed) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		args := []string{"list", "-export", "-deps", "-json"}
		for im := range imports {
			args = append(args, im)
		}
		sort.Strings(args[4:])
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("lint: go list (testdata imports): %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("lint: decoding go list output: %v", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	return checkParsed(fset, imp, filepath.Base(dir), dir, parsed)
}

// exportImporter returns a gc-export-data importer whose lookup resolves
// import paths through the map produced by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	parsed := make([]*ast.File, 0, len(files))
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		parsed = append(parsed, af)
	}
	return checkParsed(fset, imp, importPath, dir, parsed)
}

func checkParsed(fset *token.FileSet, imp types.Importer, importPath, dir string, parsed []*ast.File) (*Package, error) {
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      parsed,
		Types:      tpkg,
		Info:       info,
	}, nil
}
