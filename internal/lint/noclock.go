package lint

import (
	"go/ast"
)

// clockFuncs are the package-time entry points that read or schedule on
// the process wall clock. Referencing one — calling it or assigning it as
// a default (`now = time.Now`) — defeats the injected-Clock determinism
// story, so the rule flags any selector mention, not just calls.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// checkNoClock implements the noclock rule: inside the clock-scoped
// packages every path must run on the injected Clock; package time may
// only supply types (time.Time, time.Duration) and constants.
func checkNoClock(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(pkg, sel.X)
			if pn == nil || pn.Imported().Path() != "time" || !clockFuncs[sel.Sel.Name] {
				return true
			}
			diags = append(diags, diag(pkg, "noclock", sel.Pos(),
				"time.%s reads the process wall clock; %s must run on the injected Clock", sel.Sel.Name, pkg.ImportPath))
			return true
		})
	}
	return diags
}
