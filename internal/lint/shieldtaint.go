package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkShieldTaint implements the shieldtaint rule: a forward taint
// analysis over the CFG proving that shield-confidential data — enclave
// object contents, the enclave owner Token, and shield-marked buffers —
// never reaches an attacker-visible sink.
//
// Sources:
//   - results of Enclave.Load (the only API returning enclave contents),
//   - values of the enclave capability type Token,
//   - Pool.Get/GetZero results drawn from a shield-named pool,
//   - identifiers/fields whose name marks them shielded ("shield...")
//     and whose type is a tensor or float buffer.
//
// Sinks:
//   - http.ResponseWriter writes and NDJSON/JSON encoder Encode calls,
//   - obs span/metric/trace emission (any call into internal/obs),
//   - fmt/log output (Print/Fprint families, log.*),
//   - gob checkpoint serialization (gob.Encoder.Encode),
//   - Pool.Put/PutInts (recycling shielded memory hands it to the next
//     Get) reached without an intervening Scrub.
//
// Sanitizers: Scrub/ScrubGrad kill the taint of their receiver;
// deliberate declassification is an explicit `//pelta:allow shieldtaint
// <reason>` at the sink.
//
// The analysis is interprocedural through function summaries: a callee
// that forwards parameter taint to its results, or passes a parameter
// into a sink, propagates or reports at the caller (see summary.go).
func checkShieldTaint(pkg *Package, idx *summaryIndex) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tc := newTaintChecker(pkg, idx, fd, true)
			tc.run()
			diags = append(diags, tc.diags...)
		}
	}
	return diags
}

// taintChecker runs the taint dataflow over one function body. With
// report=false it only computes the function's summary (the bottom-up
// pass); with report=true it also emits diagnostics for bitSource
// reaching a sink.
type taintChecker struct {
	pkg     *Package
	idx     *summaryIndex
	fd      *ast.FuncDecl
	report  bool
	diags   []Diagnostic
	summary *funcSummary
	// entry maps receiver/parameter objects to their symbolic bits.
	entry flowState
	// named results, for bare-return result masks.
	resultObjs []types.Object
	seen       map[string]bool // diagnostic dedupe across walk revisits
}

func newTaintChecker(pkg *Package, idx *summaryIndex, fd *ast.FuncDecl, report bool) *taintChecker {
	tc := &taintChecker{
		pkg: pkg, idx: idx, fd: fd, report: report,
		summary: &funcSummary{},
		entry:   flowState{},
		seen:    map[string]bool{},
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if obj := pkg.Info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			tc.entry[obj] = bitRecv
		}
	}
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil && paramBit(i) != 0 {
					tc.entry[obj] = paramBit(i)
				}
				i++
			}
		}
	}
	if fd.Type.Results != nil {
		tc.summary.results = make([]uint64, fd.Type.Results.NumFields())
		n := 0
		for _, field := range fd.Type.Results.List {
			if len(field.Names) == 0 {
				n++
				continue
			}
			for _, name := range field.Names {
				tc.resultObjs = append(tc.resultObjs, pkg.Info.Defs[name])
				n++
			}
		}
		tc.summary.results = make([]uint64, n)
	}
	return tc
}

func (tc *taintChecker) run() {
	c := buildCFG(tc.pkg, tc.fd.Body)
	in := forwardMay(c, tc.entry, tc.transfer)
	walkBlocks(c, in, tc.transfer, tc.visit)
}

// transfer applies one node's effect on the taint state.
func (tc *taintChecker) transfer(n ast.Node, st flowState) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		tc.assign(n, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := tc.pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					mask := uint64(0)
					if len(vs.Values) == 1 && len(vs.Names) > 1 {
						if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
							mask = tc.resultMask(call, i, st)
						}
					} else if i < len(vs.Values) {
						mask = tc.evalMask(vs.Values[i], st)
					}
					setMask(st, obj, mask)
				}
			}
		}
	case *ast.RangeStmt:
		// Ranging over a tainted container taints the bindings.
		mask := tc.evalMask(n.X, st)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := tc.identObj(id); obj != nil {
					setMask(st, obj, mask)
				}
			}
		}
	case *ast.ExprStmt:
		tc.scrubKill(n.X, st)
	case *ast.DeferStmt:
		tc.scrubKill(n.Call, st)
	}
}

// scrubKill handles the sanitizer: x.Scrub()/x.ScrubGrad() clears x's
// taint — the buffer's contents have been moved into the enclave and
// zeroed in normal-world memory.
func (tc *taintChecker) scrubKill(x ast.Expr, st flowState) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Scrub" && sel.Sel.Name != "ScrubGrad") {
		return
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if obj := tc.identObj(id); obj != nil {
			delete(st, obj)
		}
	}
}

// assign updates the state for one assignment statement.
func (tc *taintChecker) assign(as *ast.AssignStmt, st flowState) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// a, b := f() — per-result masks.
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			for i, lhs := range as.Lhs {
				tc.assignOne(lhs, tc.resultMask(call, i, st), st)
			}
			return
		}
		// a, ok := m[k] / x.(T) / <-ch: propagate the container mask.
		mask := tc.evalMask(as.Rhs[0], st)
		for _, lhs := range as.Lhs {
			tc.assignOne(lhs, mask, st)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		mask := tc.evalMask(as.Rhs[i], st)
		if as.Tok.String() == "+=" || as.Tok.String() == "-=" || as.Tok.String() == "*=" || as.Tok.String() == "/=" {
			mask |= tc.evalMask(lhs, st)
		}
		tc.assignOne(lhs, mask, st)
	}
}

// assignOne writes mask into the LHS: a strong update for plain
// identifiers, a weak (OR) update through selectors/indexes — writing a
// tainted element into a container taints the container.
func (tc *taintChecker) assignOne(lhs ast.Expr, mask uint64, st flowState) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if obj := tc.identObj(l); obj != nil {
			setMask(st, obj, mask)
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if mask == 0 {
			return
		}
		if root := rootIdent(lhs); root != nil {
			if obj := tc.identObj(root); obj != nil {
				st[obj] |= mask
			}
		}
	}
}

// setMask strong-updates obj's taint (deleting on zero keeps the state
// small and the fixpoint monotone per path).
func setMask(st flowState, obj types.Object, mask uint64) {
	if mask == 0 {
		delete(st, obj)
		return
	}
	st[obj] = mask
}

// identObj resolves an identifier to its object (use or def).
func (tc *taintChecker) identObj(id *ast.Ident) types.Object {
	if obj := tc.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return tc.pkg.Info.Defs[id]
}

// rootIdent returns the base identifier of a selector/index/star chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// evalMask computes the taint label mask of an expression under st.
func (tc *taintChecker) evalMask(e ast.Expr, st flowState) uint64 {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		mask := uint64(0)
		if obj := tc.identObj(e); obj != nil {
			mask = st[obj]
		}
		if shieldMarked(e.Name) && tensorish(tc.typeOf(e)) {
			mask |= bitSource
		}
		if isTokenType(tc.typeOf(e)) {
			mask |= bitSource
		}
		return mask
	case *ast.SelectorExpr:
		mask := tc.evalMask(e.X, st)
		if shieldMarked(e.Sel.Name) && tensorish(tc.typeOf(e)) {
			mask |= bitSource
		}
		if isTokenType(tc.typeOf(e)) {
			mask |= bitSource
		}
		return mask
	case *ast.CallExpr:
		return tc.resultMask(e, -1, st)
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return 0 // boolean outcomes don't carry buffer contents
		}
		return tc.evalMask(e.X, st) | tc.evalMask(e.Y, st)
	case *ast.UnaryExpr:
		return tc.evalMask(e.X, st)
	case *ast.StarExpr:
		return tc.evalMask(e.X, st)
	case *ast.IndexExpr:
		return tc.evalMask(e.X, st)
	case *ast.SliceExpr:
		return tc.evalMask(e.X, st)
	case *ast.TypeAssertExpr:
		return tc.evalMask(e.X, st)
	case *ast.CompositeLit:
		mask := uint64(0)
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				mask |= tc.evalMask(kv.Value, st)
			} else {
				mask |= tc.evalMask(elt, st)
			}
		}
		return mask
	case *ast.KeyValueExpr:
		return tc.evalMask(e.Value, st)
	}
	return 0
}

// resultMask computes the taint mask of a call's result (result index i,
// or the union of all results when i < 0).
func (tc *taintChecker) resultMask(call *ast.CallExpr, i int, st flowState) uint64 {
	// Type conversions propagate their operand.
	if tv, ok := tc.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return tc.evalMask(call.Args[0], st)
		}
		return 0
	}
	if mask, handled := tc.builtinMask(call, st); handled {
		return mask
	}
	if src := tc.sourceMask(call, st); src != 0 {
		return src
	}
	recvMask, argMasks := tc.callMasks(call, st)
	fn := calleeFunc(tc.pkg, call)
	if fn != nil {
		if sum := tc.idx.taint[summaryKey(fn)]; sum != nil && len(sum.results) > 0 {
			sig, _ := fn.Type().(*types.Signature)
			nParams, variadic := 0, false
			if sig != nil {
				nParams, variadic = sig.Params().Len(), sig.Variadic()
			}
			if i >= 0 && i < len(sum.results) {
				return tc.tokenResult(call, i, substitute(sum.results[i], recvMask, argMasks, nParams, variadic))
			}
			mask := uint64(0)
			for _, r := range sum.results {
				mask |= substitute(r, recvMask, argMasks, nParams, variadic)
			}
			return tc.tokenResult(call, i, mask)
		}
	}
	// Unknown callee: conservative — any argument (or the receiver) may
	// flow into any result.
	mask := recvMask
	for _, am := range argMasks {
		mask |= am
	}
	return tc.tokenResult(call, i, mask)
}

// tokenResult adds bitSource when the call's (selected) result type is
// the enclave capability Token — NewEnclave-style constructors mint the
// secret even though no argument was tainted.
func (tc *taintChecker) tokenResult(call *ast.CallExpr, i int, mask uint64) uint64 {
	tv, ok := tc.pkg.Info.Types[call]
	if !ok {
		return mask
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for j := 0; j < t.Len(); j++ {
			if (i < 0 || i == j) && isTokenType(t.At(j).Type()) {
				mask |= bitSource
			}
		}
	default:
		if isTokenType(tv.Type) {
			mask |= bitSource
		}
	}
	return mask
}

// callMasks evaluates the receiver and argument masks of a call.
func (tc *taintChecker) callMasks(call *ast.CallExpr, st flowState) (recvMask uint64, argMasks []uint64) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkgNameOf(tc.pkg, sel.X) == nil {
			recvMask = tc.evalMask(sel.X, st)
		}
	}
	argMasks = make([]uint64, len(call.Args))
	for i, a := range call.Args {
		argMasks[i] = tc.evalMask(a, st)
	}
	return recvMask, argMasks
}

// builtinMask handles calls to builtins, which never alias their
// arguments into results except append/copy/min/max.
func (tc *taintChecker) builtinMask(call *ast.CallExpr, st flowState) (uint64, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return 0, false
	}
	if _, isBuiltin := tc.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return 0, false
	}
	switch id.Name {
	case "append", "copy", "min", "max":
		mask := uint64(0)
		for _, a := range call.Args {
			mask |= tc.evalMask(a, st)
		}
		return mask, true
	}
	return 0, true // len, cap, make, new, delete, clear, ...
}

// sourceMask recognizes the taint sources that are calls.
func (tc *taintChecker) sourceMask(call *ast.CallExpr, st flowState) uint64 {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	recv := tc.typeOf(sel.X)
	switch sel.Sel.Name {
	case "Load":
		// Enclave.Load returns enclave-resident contents.
		if namedTypeName(recv) == "Enclave" {
			return bitSource
		}
	case "Get", "GetZero":
		// A shield-marked pool hands out shielded buffers.
		if namedTypeName(recv) == "Pool" && exprHasShieldName(sel.X) {
			return bitSource
		}
	}
	return 0
}

func (tc *taintChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := tc.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// visit is the reporting pass: inspect every call in the node for sinks
// and fold return-statement masks into the summary.
func (tc *taintChecker) visit(n ast.Node, st flowState) {
	if ret, ok := n.(*ast.ReturnStmt); ok {
		tc.recordReturn(ret, st)
	}
	inspectShallow(n, func(sub ast.Node) bool {
		if call, ok := sub.(*ast.CallExpr); ok {
			tc.sinkCheck(call, st)
		}
		return true
	})
}

// recordReturn merges this return's result masks into the summary.
func (tc *taintChecker) recordReturn(ret *ast.ReturnStmt, st flowState) {
	if len(tc.summary.results) == 0 {
		return
	}
	if len(ret.Results) == 0 {
		// Bare return: named results carry their current masks.
		for i, obj := range tc.resultObjs {
			if obj != nil && i < len(tc.summary.results) {
				tc.summary.results[i] |= st[obj]
			}
		}
		return
	}
	if len(ret.Results) == 1 && len(tc.summary.results) > 1 {
		// return f() — a tuple-forwarding return.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			for i := range tc.summary.results {
				tc.summary.results[i] |= tc.resultMask(call, i, st)
			}
		}
		return
	}
	for i, r := range ret.Results {
		if i < len(tc.summary.results) {
			tc.summary.results[i] |= tc.evalMask(r, st)
		}
	}
}

// sinkCheck classifies a call as a sink and reports/records tainted
// flows into it.
func (tc *taintChecker) sinkCheck(call *ast.CallExpr, st flowState) {
	recvMask, argMasks := tc.callMasks(call, st)
	argUnion := uint64(0)
	for _, m := range argMasks {
		argUnion |= m
	}

	if desc := tc.directSink(call); desc != "" {
		tc.sinkHit(call, desc, argUnion)
		return
	}

	// A callee that routes a parameter into a sink is a sink for the
	// corresponding argument (bottom-up interprocedural step).
	fn := calleeFunc(tc.pkg, call)
	if fn == nil {
		return
	}
	sum := tc.idx.taint[summaryKey(fn)]
	if sum == nil || sum.sinks == 0 {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	nParams, variadic := 0, false
	if sig != nil {
		nParams, variadic = sig.Params().Len(), sig.Variadic()
	}
	hit := substitute(sum.sinks, recvMask, argMasks, nParams, variadic)
	tc.sinkHit(call, sum.sinkWhat+" (inside "+fn.Name()+")", hit)
}

// directSink names the sink class of a call, or "".
func (tc *taintChecker) directSink(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if pn := pkgNameOf(tc.pkg, fn.X); pn != nil {
			switch pn.Imported().Path() {
			case "fmt":
				switch fn.Sel.Name {
				case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
					return "fmt output"
				}
				return ""
			case "log":
				return "log output"
			}
			return ""
		}
		recv := tc.typeOf(fn.X)
		recvName := namedTypeName(recv)
		switch fn.Sel.Name {
		case "Write", "WriteString":
			if recvName == "ResponseWriter" {
				return "the HTTP response"
			}
		case "Encode", "EncodeValue":
			if recvName == "Encoder" {
				if named, ok := derefType(recv).(*types.Named); ok && named.Obj().Pkg() != nil {
					switch named.Obj().Pkg().Path() {
					case "encoding/gob":
						return "gob serialization"
					case "encoding/json":
						return "the NDJSON/JSON encoding"
					}
				}
				return "an Encoder"
			}
		case "Put", "PutInts":
			if recvName == "Pool" {
				return "Pool." + fn.Sel.Name + " (recycled without Scrub)"
			}
		case "Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln", "Output":
			if recvName == "Logger" {
				return "log output"
			}
		}
		// Any call into the telemetry layer is an emission sink.
		if f, ok := tc.pkg.Info.Uses[fn.Sel].(*types.Func); ok && pkgPathEndsWith(f.Pkg(), "obs") && f.Pkg() != tc.pkg.Types {
			return "obs telemetry emission"
		}
		switch recvName {
		case "Tracer", "SpanRecord", "RoundSpan", "Registry":
			if named, ok := derefType(recv).(*types.Named); ok && (pkgPathEndsWith(named.Obj().Pkg(), "obs") || named.Obj().Pkg() == tc.pkg.Types && tc.pkg.ImportPath == "shieldtaint") {
				return "obs telemetry emission"
			}
		}
	case *ast.Ident:
		if f, ok := tc.pkg.Info.Uses[fn].(*types.Func); ok && pkgPathEndsWith(f.Pkg(), "obs") && f.Pkg() != tc.pkg.Types {
			return "obs telemetry emission"
		}
	}
	return ""
}

// sinkHit records (and in report mode, diagnoses) a mask reaching a sink.
func (tc *taintChecker) sinkHit(call *ast.CallExpr, desc string, mask uint64) {
	if mask == 0 {
		return
	}
	if mask&paramMask != 0 {
		tc.summary.sinks |= mask & paramMask
		if tc.summary.sinkWhat == "" {
			tc.summary.sinkWhat = desc
		}
	}
	if tc.report && mask&bitSource != 0 {
		pos := tc.pkg.Fset.Position(call.Pos())
		key := pos.String() + "|" + desc
		if tc.seen[key] {
			return
		}
		tc.seen[key] = true
		tc.diags = append(tc.diags, diag(tc.pkg, "shieldtaint", call.Pos(),
			"shield-confidential data reaches %s; enclave state must never leave the shield (Scrub it first or declassify with //pelta:allow shieldtaint <reason>)", desc))
	}
}

// derefType strips one pointer level.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// shieldMarked reports whether a name marks its value as shielded.
func shieldMarked(name string) bool {
	return strings.Contains(strings.ToLower(name), "shield")
}

// exprHasShieldName reports whether any identifier inside e is
// shield-marked (matching poolsafety's convention).
func exprHasShieldName(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && shieldMarked(id.Name) {
			found = true
		}
		return !found
	})
	return found
}

// tensorish reports whether t is a buffer type that can hold shielded
// contents: a (pointer to) named Tensor/Value, or a float slice.
func tensorish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch name := namedTypeName(t); name {
	case "Tensor", "Value":
		return true
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if b, ok := sl.Elem().Underlying().(*types.Basic); ok {
			return b.Kind() == types.Float32 || b.Kind() == types.Float64
		}
	}
	return false
}

// isTokenType reports whether t is the enclave capability type: a named
// Token declared in a package that also declares Enclave.
func isTokenType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := derefType(t).(*types.Named)
	if !ok || n.Obj().Name() != "Token" || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Scope().Lookup("Enclave") != nil
}

// inspectShallow walks n like ast.Inspect but does not descend into the
// bodies nested under a RangeStmt CFG header node (those statements live
// in their own blocks) — only its range expression and bindings.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if r.Key != nil {
			ast.Inspect(r.Key, f)
		}
		if r.Value != nil {
			ast.Inspect(r.Value, f)
		}
		ast.Inspect(r.X, f)
		return
	}
	ast.Inspect(n, f)
}
