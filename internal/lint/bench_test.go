package lint

import "testing"

// BenchmarkCheckAll measures a full analyzer pass — all ten rules,
// summaries included — over every package in the module. CI runs it in
// the kernel smoke cell so analyzer runtime regressions are visible next
// to the kernel numbers. Loading (go list + type-check) is excluded: the
// interesting cost is rule evaluation, not the toolchain.
func BenchmarkCheckAll(b *testing.B) {
	pkgs, err := Load([]string{"pelta/..."})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := CheckAll(pkgs, &Config{}); len(diags) != 0 {
			b.Fatalf("dogfood regression: %d findings, first: %s", len(diags), diags[0])
		}
	}
}
