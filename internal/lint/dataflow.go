package lint

import (
	"go/ast"
)

// The dataflow layer: a forward may-analysis over the CFG with a small
// join-semilattice of facts. State maps a fact key (a types.Object, a
// lock identity string, a definition position — whatever the rule tracks)
// to a bitmask; join is pointwise OR, so a fact holds at a program point
// iff it holds on SOME path reaching it. The engine computes block-entry
// states to fixpoint; rules then make a reporting walk through each block
// re-applying the transfer function node by node.

// flowState maps fact keys to label bitmasks. The zero mask is never
// stored (delete instead), so map length is the fact count.
type flowState map[any]uint64

func (s flowState) clone() flowState {
	t := make(flowState, len(s))
	for k, v := range s {
		t[k] = v
	}
	return t
}

// joinInto ORs src into dst, reporting whether dst changed.
func joinInto(dst, src flowState) bool {
	changed := false
	for k, v := range src {
		if dst[k]&v != v {
			dst[k] |= v
			changed = true
		}
	}
	return changed
}

// transferFn mutates st with the effect of one CFG node.
type transferFn func(n ast.Node, st flowState)

// forwardMay iterates the transfer function to fixpoint and returns the
// entry state of every block. entry seeds the function's entry block
// (parameter facts for taint summaries; nil otherwise).
func forwardMay(c *funcCFG, entry flowState, tf transferFn) map[*cfgBlock]flowState {
	in := make(map[*cfgBlock]flowState, len(c.blocks))
	for _, b := range c.blocks {
		in[b] = flowState{}
	}
	if entry != nil {
		joinInto(in[c.entry], entry)
	}
	// Worklist seeded in construction order (roughly reverse post-order
	// for the structured CFGs the builder emits).
	work := make([]*cfgBlock, len(c.blocks))
	copy(work, c.blocks)
	queued := make(map[*cfgBlock]bool, len(c.blocks))
	for _, b := range work {
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := in[b].clone()
		for _, n := range b.nodes {
			tf(n, out)
		}
		for _, succ := range b.succs {
			if joinInto(in[succ], out) && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// walkBlocks re-runs the transfer over every block from its fixpoint
// entry state, invoking visit with the state holding *before* each node.
// This is the reporting pass: visit sees exactly the facts that may reach
// the node.
func walkBlocks(c *funcCFG, in map[*cfgBlock]flowState, tf transferFn, visit func(n ast.Node, st flowState)) {
	for _, b := range c.blocks {
		st := in[b].clone()
		for _, n := range b.nodes {
			visit(n, st)
			tf(n, st)
		}
	}
}

// exitState returns the fixpoint entry state of the synthetic exit block:
// the facts that may hold when the function returns on some path.
func exitState(c *funcCFG, in map[*cfgBlock]flowState) flowState {
	return in[c.exit]
}
