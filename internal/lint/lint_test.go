package lint

import (
	"path/filepath"
	"regexp"
	"testing"
)

// ruleCases pairs each rule with a config scoping it onto its testdata
// package (LoadDir uses the directory base name as the import path).
var ruleCases = []struct {
	rule string
	cfg  *Config
}{
	{"noclock", &Config{Rules: map[string]bool{"noclock": true}, ClockScope: []string{"noclock"}}},
	{"seededrand", &Config{Rules: map[string]bool{"seededrand": true}, RandScope: []string{"seededrand"}}},
	{"maporder", &Config{Rules: map[string]bool{"maporder": true}}},
	{"intoerr", &Config{Rules: map[string]bool{"intoerr": true}, IntoScope: []string{"intoerr"}}},
	{"poolsafety", &Config{Rules: map[string]bool{"poolsafety": true}}},
	{"parallelsum", &Config{Rules: map[string]bool{"parallelsum": true}}},
	{"shieldtaint", &Config{Rules: map[string]bool{"shieldtaint": true}, TaintScope: []string{"shieldtaint"}}},
	{"errpath", &Config{Rules: map[string]bool{"errpath": true}}},
	{"lockorder", &Config{Rules: map[string]bool{"lockorder": true}, LockScope: []string{"lockorder"}}},
	{"clockcomplete", &Config{Rules: map[string]bool{"clockcomplete": true}, ClockScope: []string{"clockcomplete"}}},
}

// TestGoldenDiagnostics runs every rule against its testdata package and
// compares the diagnostics against the "// want" expectation comments
// (each carrying a backtick-quoted regex): every want must be matched by
// a diagnostic on its line, and
// every diagnostic must be claimed by a want. A disabled or broken rule
// therefore fails the test through its unmatched wants.
func TestGoldenDiagnostics(t *testing.T) {
	for _, tc := range ruleCases {
		t.Run(tc.rule, func(t *testing.T) {
			runGolden(t, filepath.Join("testdata", "src", tc.rule), tc.cfg)
		})
	}
}

// TestAllowStatementExtent pins //pelta:allow attachment on multi-line
// statements and inside defer/closure bodies (testdata/src/allowext):
// a directive anywhere on a wrapped statement — or the line above it —
// covers diagnostics across the statement's extent, while a directive on
// a defer header does NOT blanket the closure body.
func TestAllowStatementExtent(t *testing.T) {
	runGolden(t, filepath.Join("testdata", "src", "allowext"),
		&Config{Rules: map[string]bool{"noclock": true}, ClockScope: []string{"allowext"}})
}

// TestRuleDisabled proves the config wiring: with the rule switched off,
// the same testdata produces zero diagnostics.
func TestRuleDisabled(t *testing.T) {
	for _, tc := range ruleCases {
		t.Run(tc.rule, func(t *testing.T) {
			pkg, err := LoadDir(filepath.Join("testdata", "src", tc.rule))
			if err != nil {
				t.Fatal(err)
			}
			off := &Config{
				Rules:      map[string]bool{tc.rule: false},
				ClockScope: tc.cfg.ClockScope,
				RandScope:  tc.cfg.RandScope,
				IntoScope:  tc.cfg.IntoScope,
				TaintScope: tc.cfg.TaintScope,
				LockScope:  tc.cfg.LockScope,
			}
			if diags := Check(pkg, off); len(diags) != 0 {
				t.Fatalf("rule %s disabled but produced %d diagnostics, first: %s", tc.rule, len(diags), diags[0])
			}
		})
	}
}

// TestScopedRulesRespectScope: a clock-scoped rule must not fire on a
// package outside its scope even when the package is full of violations.
func TestScopedRulesRespectScope(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "noclock"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Rules: map[string]bool{"noclock": true}, ClockScope: []string{"internal/serve"}}
	if diags := Check(pkg, cfg); len(diags) != 0 {
		t.Fatalf("noclock fired outside its scope: %s", diags[0])
	}
}

func TestInScope(t *testing.T) {
	cases := []struct {
		path, scope string
		want        bool
	}{
		{"pelta/internal/serve", "internal/serve", true},
		{"pelta/internal/serve", "internal", true},
		{"pelta/internal/servedata", "internal/serve", false},
		{"internal/serve", "internal/serve", true},
		{"pelta/internal/fl", "internal/serve", false},
		{"pelta/cmd/peltaserve", "internal", false},
		{"noclock", "noclock", true},
	}
	for _, c := range cases {
		if got := inScope(c.path, []string{c.scope}); got != c.want {
			t.Errorf("inScope(%q, %q) = %v, want %v", c.path, c.scope, got, c.want)
		}
	}
}

// want comments: "// want" followed by a backtick-quoted regex, which
// keeps the regexes free of escaping noise.
var wantRE = regexp.MustCompile("// want `([^`]+)`")

type wantKey struct {
	file string
	line int
}

// runGolden loads dir, runs Check under cfg, and diffs diagnostics against
// the want comments.
func runGolden(t *testing.T, dir string, cfg *Config) {
	t.Helper()
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[wantKey][]*regexp.Regexp{}
	total := 0
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regex %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				k := wantKey{file: pos.Filename, line: pos.Line}
				wants[k] = append(wants[k], re)
				total++
			}
		}
	}
	if total == 0 {
		t.Fatalf("no want comments in %s", dir)
	}

	for _, d := range Check(pkg, cfg) {
		k := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// TestSortDiagnosticsStable pins the global report order: (file, line,
// column, rule, message), independent of production order — so -json
// output is byte-stable across runs and package-load order.
func TestSortDiagnosticsStable(t *testing.T) {
	mk := func(file string, line, col int, rule, msg string) Diagnostic {
		d := Diagnostic{Rule: rule, Message: msg}
		d.Pos.Filename, d.Pos.Line, d.Pos.Column = file, line, col
		return d
	}
	want := []Diagnostic{
		mk("a.go", 1, 1, "errpath", "x"),
		mk("a.go", 1, 1, "noclock", "x"),
		mk("a.go", 1, 2, "noclock", "x"),
		mk("a.go", 2, 1, "maporder", "a"),
		mk("a.go", 2, 1, "maporder", "b"),
		mk("b.go", 1, 1, "lockorder", "x"),
	}
	// Three adversarial production orders, including reversed.
	perms := [][]int{{5, 4, 3, 2, 1, 0}, {2, 0, 5, 1, 4, 3}, {3, 5, 0, 4, 2, 1}}
	for _, perm := range perms {
		got := make([]Diagnostic, len(want))
		for i, j := range perm {
			got[i] = want[j]
		}
		SortDiagnostics(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("perm %v: position %d = %v, want %v", perm, i, got[i], want[i])
			}
		}
	}
}

// TestDiagnosticString pins the report line format CI greps.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "noclock", Message: "boom"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "x.go", 3, 7
	if got, want := d.String(), "x.go:3:7: noclock: boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestDefaultScopes pins the production scope lists the repo's invariants
// depend on: losing a package from the clock scope would silently stop
// guarding it.
func TestDefaultScopes(t *testing.T) {
	for _, p := range []string{"internal/serve", "internal/detect", "internal/obs", "internal/fl", "internal/tee"} {
		if !inScope("pelta/"+p, DefaultClockScope) {
			t.Errorf("clock scope lost %s", p)
		}
	}
	if !inScope("pelta/internal/tensor", DefaultRandScope) {
		t.Error("rand scope must cover all of internal/")
	}
	for _, p := range []string{"internal/tensor", "internal/autograd", "internal/nn", "internal/models"} {
		if !inScope("pelta/"+p, DefaultIntoScope) {
			t.Errorf("into scope lost %s", p)
		}
	}
	if inScope("pelta/cmd/peltaserve", DefaultClockScope) {
		t.Error("cmd/ must stay outside the clock scope: process edges stamp wall time")
	}
	for _, p := range []string{"internal/core", "internal/tee", "internal/serve", "internal/fl", "internal/obs"} {
		if !inScope("pelta/"+p, DefaultTaintScope) {
			t.Errorf("taint scope lost %s", p)
		}
	}
	for _, p := range []string{"internal/serve", "internal/fl", "internal/detect"} {
		if !inScope("pelta/"+p, DefaultLockScope) {
			t.Errorf("lock scope lost %s", p)
		}
	}
	if inScope("pelta/internal/attack", DefaultTaintScope) {
		t.Error("attack stays outside the taint scope: the attacker-side oracle is MEANT to study shielded outputs")
	}
}
