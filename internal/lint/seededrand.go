package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand package functions that BUILD a seeded
// generator rather than consuming the ambient global one; they are the
// sanctioned way to obtain randomness and stay legal.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 additions.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// checkSeededRand implements the seededrand rule: top-level math/rand (and
// math/rand/v2) functions draw from unseeded, process-global state, which
// destroys run-to-run reproducibility. All randomness inside internal/
// must flow through a seeded *rand.Rand (see tensor.NewRNG).
func checkSeededRand(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(pkg, sel.X)
			if pn == nil {
				return true
			}
			if p := pn.Imported().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			// Only package-level functions touch the global generator;
			// types (rand.Rand, rand.Source) and constructors are fine.
			if _, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc || randConstructors[sel.Sel.Name] {
				return true
			}
			diags = append(diags, diag(pkg, "seededrand", sel.Pos(),
				"rand.%s draws from the process-global generator; thread a seeded *rand.Rand instead", sel.Sel.Name))
			return true
		})
	}
	return diags
}
