package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// checkLockOrder enforces pairwise mutex acquisition-order consistency
// across the lock-scoped packages (internal/{serve,fl,detect}): if some
// path acquires lock A while holding B and another path acquires B while
// holding A, the two can deadlock. The rule runs the held-lock
// may-analysis over every function's CFG, records every ordered
// acquisition edge (held → acquired), extends edges through callees via
// the acquires summaries, and reports every AB/BA cycle at both sites.
//
// `defer mu.Unlock()` is deliberately ignored by the transfer: the lock
// stays held until the function exits, which is exactly when deferred
// unlocks run.
func checkLockOrder(pkgs []*Package, idx *summaryIndex) []Diagnostic {
	lc := &lockChecker{idx: idx, edges: map[lockEdge]lockSite{}}
	for _, pkg := range pkgs {
		lc.pkg = pkg
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c := buildCFG(pkg, fd.Body)
				in := forwardMay(c, nil, lc.transfer)
				walkBlocks(c, in, lc.transfer, func(ast.Node, flowState) {})
			}
		}
	}
	return lc.cycles()
}

// lockEdge is one observed ordering: `to` acquired while `from` is held.
type lockEdge struct{ from, to string }

// lockSite remembers where an edge was first observed.
type lockSite struct {
	pkg *Package
	pos token.Pos
}

type lockChecker struct {
	pkg   *Package
	idx   *summaryIndex
	edges map[lockEdge]lockSite
}

// transfer updates the held-lock set for one CFG node and records
// ordering edges as acquisitions happen. With a may-analysis the held
// set at a point is the union over paths, which over-approximates —
// exactly what a deadlock check wants.
func (lc *lockChecker) transfer(n ast.Node, st flowState) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return // deferred unlocks keep the lock held to exit
	}
	inspectShallow(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // closure bodies run elsewhere
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		lc.call(call, st)
		return true
	})
}

// call applies one call's lock effect.
func (lc *lockChecker) call(call *ast.CallExpr, st flowState) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id := lockIdent(lc.pkg, sel); id != "" {
			switch sel.Sel.Name {
			case "Lock", "RLock":
				lc.acquire(id, call.Pos(), st)
				return
			case "Unlock", "RUnlock":
				delete(st, lockKey(id))
				return
			}
		}
	}
	// A callee that (transitively) acquires locks imposes held → callee
	// orderings at the call site. The callee releases before returning
	// (or its own analysis flags it), so the held set is unchanged.
	fn := calleeFunc(lc.pkg, call)
	if fn == nil {
		return
	}
	acq := lc.idx.acquires[summaryKey(fn)]
	for inner := range acq {
		for k := range st {
			held, ok := k.(lockKey)
			if !ok || string(held) == inner {
				continue
			}
			lc.record(lockEdge{from: string(held), to: inner}, call.Pos())
		}
	}
}

func (lc *lockChecker) acquire(id string, pos token.Pos, st flowState) {
	for k := range st {
		if held, ok := k.(lockKey); ok && string(held) != id {
			lc.record(lockEdge{from: string(held), to: id}, pos)
		}
	}
	st[lockKey(id)] = 1
}

func (lc *lockChecker) record(e lockEdge, pos token.Pos) {
	if _, seen := lc.edges[e]; !seen {
		lc.edges[e] = lockSite{pkg: lc.pkg, pos: pos}
	}
}

// cycles reports every AB/BA pair among the recorded edges, at both
// acquisition sites.
func (lc *lockChecker) cycles() []Diagnostic {
	var diags []Diagnostic
	keys := make([]lockEdge, 0, len(lc.edges))
	for e := range lc.edges {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, e := range keys {
		rev := lockEdge{from: e.to, to: e.from}
		revSite, ok := lc.edges[rev]
		if !ok || e.from >= e.to {
			continue // report each pair once, from the lexically smaller edge
		}
		site := lc.edges[e]
		diags = append(diags,
			diag(site.pkg, "lockorder", site.pos,
				"%s acquired while holding %s, but the opposite order occurs at %s (AB/BA deadlock risk)",
				e.to, e.from, shortPos(revSite.pkg, revSite.pos)),
			diag(revSite.pkg, "lockorder", revSite.pos,
				"%s acquired while holding %s, but the opposite order occurs at %s (AB/BA deadlock risk)",
				e.from, e.to, shortPos(site.pkg, site.pos)),
		)
	}
	return diags
}

// shortPos renders a cross-reference position as base-file:line.
func shortPos(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	file := p.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}

// lockKey distinguishes held-lock facts from other rules' fact keys.
type lockKey string

// lockIdent names the mutex a Lock/Unlock selector targets, as a stable
// string identity: "pkg.Type.field" for a struct-owned mutex,
// "pkg.name" for a package-level one. Returns "" when the receiver is
// not a mutex or its identity is dynamic.
func lockIdent(pkg *Package, sel *ast.SelectorExpr) string {
	recv := ast.Unparen(sel.X)
	if u, ok := recv.(*ast.UnaryExpr); ok && u.Op == token.AND {
		recv = ast.Unparen(u.X)
	}
	tv, ok := pkg.Info.Types[recv]
	if !ok {
		return ""
	}
	switch name := namedTypeName(tv.Type); name {
	case "Mutex", "RWMutex":
	default:
		return ""
	}
	switch r := recv.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[r]
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return lastSeg(obj.Pkg().Path()) + "." + r.Name
		}
		// A local or parameter mutex has no stable cross-function
		// identity worth ordering.
		return ""
	case *ast.SelectorExpr:
		// s.mu, s.metrics.mu, ... — identity is the owner's named type
		// plus the field name, so every method of the type agrees on it.
		ownerTv, ok := pkg.Info.Types[r.X]
		if !ok {
			return ""
		}
		named, ok := derefType(ownerTv.Type).(*types.Named)
		if !ok {
			return ""
		}
		pkgSeg := ""
		if named.Obj().Pkg() != nil {
			pkgSeg = lastSeg(named.Obj().Pkg().Path()) + "."
		}
		return pkgSeg + named.Obj().Name() + "." + r.Sel.Name
	}
	return ""
}

// lastSeg returns the final path segment.
func lastSeg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// updateLockSummary recomputes fd's transitive lock-acquisition set —
// every mutex a call to fd may take — reporting whether it changed. The
// summary is flow-insensitive (a set, not an order): ordering is imposed
// at call sites by the caller's held set.
func updateLockSummary(pkg *Package, idx *summaryIndex, fd *ast.FuncDecl) bool {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return false
	}
	key := summaryKey(obj)
	acq := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				if id := lockIdent(pkg, sel); id != "" {
					acq[id] = true
					return true
				}
			}
		}
		if fn := calleeFunc(pkg, call); fn != nil {
			for inner := range idx.acquires[summaryKey(fn)] {
				acq[inner] = true
			}
		}
		return true
	})
	old := idx.acquires[key]
	if len(old) == len(acq) {
		same := true
		for k := range acq {
			if !old[k] {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	idx.acquires[key] = acq
	return true
}
