// Package lint implements peltalint: a stdlib-only static-analysis pass
// over the repo enforcing the invariants the Pelta reproduction's
// determinism story rests on. The paper-grade claims — bit-identical FL
// rounds, fake-clock-reproducible serving traces, kernels deterministic at
// any worker count, enclave memory never leaving the shield — are all
// properties a single stray expression can silently break; the rules here
// turn each class of regression into a build failure instead of a reviewer
// grep.
//
// # Rules
//
//   - noclock: time.Now/Since/Until/Sleep/After/AfterFunc/Tick/NewTimer/
//     NewTicker are forbidden inside the clock-scoped packages
//     (internal/serve, detect, obs, fl, tee). Everything there runs on an
//     injected Clock; even `now = time.Now` defaults are flagged so every
//     wall-clock edge carries an explicit annotation.
//   - seededrand: top-level math/rand functions (rand.Intn, rand.Float64,
//     ...) are forbidden everywhere under internal/ — they draw from
//     process-global state. Constructors (rand.New, rand.NewSource) stay
//     legal; experiments thread a seeded *rand.Rand (tensor.NewRNG).
//   - maporder: a `range` over a map whose body appends to a slice, writes
//     to a Writer, formats with fmt, or builds a string is flagged unless
//     the enclosing function sorts (the collect-keys-then-sort idiom).
//     Rendered tables and JSON rows must not depend on Go's randomized map
//     iteration order.
//   - intoerr: error results of *Into/*Raw kernel calls must not be
//     discarded (expression statement, go/defer, or `_` at the error
//     position) in internal/tensor, autograd, nn and models.
//   - poolsafety: a tensor.Pool.Get/GetZero/GetInts or NewGraphWithPool
//     acquisition whose result never reaches Put/Release/Scrub and never
//     escapes the function leaks pooled memory; Pool.Put of a
//     shielded-named value would recycle enclave memory and is flagged
//     unconditionally.
//   - parallelsum: `+=`/`-=` on a float captured from outside a closure
//     passed to parallelFor races and accumulates in scheduling order —
//     the bit-determinism hazard the kernel layer's per-chunk-partials
//     pattern exists to avoid.
//
// # Opt-out directives
//
// A legitimate site is annotated in place, on the offending line or the
// line directly above:
//
//	//pelta:allow <rule> <reason>
//
// The reason is mandatory and the rule name must be real; malformed
// directives are "directive" diagnostics and never suppress. Suppression
// is per-rule and per-line, so an allow cannot blanket a whole file.
//
// # Loading
//
// The loader is go/packages-free: one `go list -export -deps -json`
// invocation supplies file lists plus compiled export data, and the stdlib
// gc importer (go/importer with a lookup function) resolves imports from
// it. Only non-test files are checked. LoadDir loads a single directory
// outside pattern matching, which is how the golden-diagnostic tests reach
// the testdata packages.
package lint
