// Package lint implements peltalint: a stdlib-only static-analysis pass
// over the repo enforcing the invariants the Pelta reproduction's
// determinism story rests on. The paper-grade claims — bit-identical FL
// rounds, fake-clock-reproducible serving traces, kernels deterministic at
// any worker count, enclave memory never leaving the shield — are all
// properties a single stray expression can silently break; the rules here
// turn each class of regression into a build failure instead of a reviewer
// grep.
//
// # Syntactic rules
//
//   - noclock: time.Now/Since/Until/Sleep/After/AfterFunc/Tick/NewTimer/
//     NewTicker are forbidden inside the clock-scoped packages
//     (internal/serve, detect, obs, fl, tee). Everything there runs on an
//     injected Clock; even `now = time.Now` defaults are flagged so every
//     wall-clock edge carries an explicit annotation.
//   - seededrand: top-level math/rand functions (rand.Intn, rand.Float64,
//     ...) are forbidden everywhere under internal/ — they draw from
//     process-global state. Constructors (rand.New, rand.NewSource) stay
//     legal; experiments thread a seeded *rand.Rand (tensor.NewRNG).
//   - maporder: a `range` over a map whose body appends to a slice, writes
//     to a Writer, formats with fmt, or builds a string is flagged unless
//     the enclosing function sorts (the collect-keys-then-sort idiom).
//     Rendered tables and JSON rows must not depend on Go's randomized map
//     iteration order.
//   - intoerr: error results of *Into/*Raw kernel calls must not be
//     discarded (expression statement, go/defer, or `_` at the error
//     position) in internal/tensor, autograd, nn and models.
//   - poolsafety: a tensor.Pool.Get/GetZero/GetInts or NewGraphWithPool
//     acquisition whose result never reaches Put/Release/Scrub and never
//     escapes the function leaks pooled memory; Pool.Put of a
//     shielded-named value would recycle enclave memory and is flagged
//     unconditionally.
//   - parallelsum: `+=`/`-=` on a float captured from outside a closure
//     passed to parallelFor races and accumulates in scheduling order —
//     the bit-determinism hazard the kernel layer's per-chunk-partials
//     pattern exists to avoid.
//
// # Flow-sensitive rules
//
// Four rules run on the CFG/dataflow engine (below) instead of
// per-statement syntax:
//
//   - shieldtaint: a taint analysis proving shield-confidential data —
//     tee.Enclave.Load results, Enclave capability Tokens, shield-marked
//     Pool.Get buffers and shield-named tensors — never reaches an
//     attacker-visible sink: http.ResponseWriter writes, NDJSON/gob
//     Encoder.Encode, obs span/metric/trace emission, fmt/log output, or
//     Pool.Put without an intervening Scrub. Scrub/ScrubGrad sanitize;
//     deliberate declassification is an explicit //pelta:allow
//     shieldtaint with a reason. Scoped to internal/{core,tee,serve,fl,
//     obs}; internal/attack stays out — the attacker-side oracle studies
//     shielded outputs by design.
//   - errpath: the path-sensitive upgrade of intoerr — an error value
//     consumed (checked, returned, wrapped) on one CFG path but silently
//     dropped on another. Unscoped.
//   - lockorder: pairwise mutex acquisition-order consistency across
//     internal/{serve,fl,detect}: if one path locks A then B and another
//     locks B then A (directly or through a callee's transitive
//     acquisition summary), both sites are flagged as an AB/BA deadlock
//     risk. `defer mu.Unlock()` keeps the lock held to function exit.
//   - clockcomplete: the completeness dual of noclock — every exported
//     constructor in the clock-scoped packages returning a type that
//     holds time.Time state must offer an injectable clock: a clock
//     parameter (func() time.Time, time.Time, Clock-named type, or a
//     Now() interface), a config-struct clock field, an exported clock
//     field, a threaded-now exported method, or a sibling constructor in
//     the same group that does.
//
// # CFG and dataflow architecture
//
// The engine (cfg.go, dataflow.go, summary.go) is intraprocedural with
// bottom-up interprocedural summaries:
//
//   - cfg.go derives basic blocks straight from the AST: block nodes are
//     simple statements and branch-condition expressions; if/for/range/
//     switch/select decompose into header and body blocks with branch,
//     loop back-edge, break/continue/goto/fallthrough and empty-range
//     edges. panic/os.Exit/log.Fatal ends a path; defers are recorded
//     per-function and interpreted per-rule.
//   - dataflow.go runs a forward may-analysis: state maps fact keys to
//     label bitmasks, join is pointwise OR, and a worklist iterates block
//     transfer functions to fixpoint. A reporting walk then replays each
//     block from its fixpoint entry state so rules see exactly the facts
//     reaching every node.
//   - summary.go abstracts each function for its callers, computed over
//     the `go list -export -deps` package graph in dependency order:
//     taint summaries say which parameter/receiver labels may flow into
//     each result and which reach a sink inside the callee (evaluated by
//     running the same taint transfer with symbolic parameter bits);
//     lock summaries hold the transitive mutex-acquisition set. Within a
//     package, summaries iterate a bounded number of rounds for
//     intra-package call chains. Calls without a source-level summary
//     (standard library, export-data-only deps) are treated
//     conservatively: any argument may flow into any result.
//
// # Opt-out directives
//
// A legitimate site is annotated in place, on the offending line or the
// line directly above:
//
//	//pelta:allow <rule> <reason>
//
// On a statement wrapped across several lines the directive may sit on
// any of the statement's lines (or the line above) and covers the whole
// statement extent — but never a nested function literal's body, whose
// statements carry their own directives. The reason is mandatory and the
// rule name must be real; malformed directives are "directive"
// diagnostics and never suppress. Suppression is per-rule and per-line,
// so an allow cannot blanket a whole file.
//
// # Loading
//
// The loader is go/packages-free: one `go list -export -deps -json`
// invocation supplies file lists plus compiled export data, and the stdlib
// gc importer (go/importer with a lookup function) resolves imports from
// it. Only non-test files are checked. LoadDir loads a single directory
// outside pattern matching, which is how the golden-diagnostic tests reach
// the testdata packages.
package lint
