package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadDirectivePkg checks the directive testdata with noclock scoped onto
// it, so suppression behavior is observable.
func loadDirectivePkg(t *testing.T) []Diagnostic {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", "directive"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Rules: map[string]bool{"noclock": true}, ClockScope: []string{"directive"}}
	return Check(pkg, cfg)
}

// findIn returns the diagnostics of the given rule inside the named
// function's body (identified by a marker substring of the source line —
// here we key on line ranges via the function comments instead of
// positions, so the test stays robust to edits above).
func countByRule(diags []Diagnostic, rule string) int {
	n := 0
	for _, d := range diags {
		if d.Rule == rule {
			n++
		}
	}
	return n
}

// TestMissingReasonIsDiagnostic: `//pelta:allow noclock` without a reason
// is a directive diagnostic — and it must not suppress the underlying
// finding.
func TestMissingReasonIsDiagnostic(t *testing.T) {
	diags := loadDirectivePkg(t)
	var foundMissing bool
	for _, d := range diags {
		if d.Rule == "directive" && strings.Contains(d.Message, "needs a reason") {
			foundMissing = true
		}
	}
	if !foundMissing {
		t.Fatalf("no 'needs a reason' directive diagnostic in %v", diags)
	}
}

// TestUnknownRuleIsDiagnostic: naming a rule that does not exist is
// reported, listing the real rules.
func TestUnknownRuleIsDiagnostic(t *testing.T) {
	diags := loadDirectivePkg(t)
	for _, d := range diags {
		if d.Rule == "directive" && strings.Contains(d.Message, `"nosuchrule"`) {
			if !strings.Contains(d.Message, "noclock") {
				t.Fatalf("unknown-rule diagnostic should list known rules: %s", d.Message)
			}
			return
		}
	}
	t.Fatalf("no unknown-rule directive diagnostic in %v", diags)
}

// TestMalformedAndWrongRuleDoNotSuppress: the directive package has six
// time.Now sites; only the two well-formed noclock allows (Suppressed,
// SuppressedLeading) may suppress. MissingReason, UnknownRule, WrongRule
// and Bare must all still fire.
func TestMalformedAndWrongRuleDoNotSuppress(t *testing.T) {
	diags := loadDirectivePkg(t)
	if got, want := countByRule(diags, "noclock"), 4; got != want {
		t.Fatalf("noclock diagnostics = %d, want %d (malformed/mismatched allows must not suppress): %v", got, want, diags)
	}
	// Three malformed directives: missing reason, unknown rule, bare.
	if got, want := countByRule(diags, "directive"), 3; got != want {
		t.Fatalf("directive diagnostics = %d, want %d: %v", got, want, diags)
	}
}

// TestWellFormedAllowSuppresses: the two well-formed sites are absent from
// the report.
func TestWellFormedAllowSuppresses(t *testing.T) {
	for _, d := range loadDirectivePkg(t) {
		if d.Rule != "noclock" {
			continue
		}
		// Suppressed() is on the line carrying the trailing allow;
		// SuppressedLeading() the line after a leading allow. Neither may
		// appear; their line numbers sit above MissingReason's finding.
		if d.Pos.Line < 23 {
			t.Fatalf("suppressed finding leaked through: %s", d)
		}
	}
}
