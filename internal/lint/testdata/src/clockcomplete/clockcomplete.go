// Package clockcomplete is the golden fixture for the clockcomplete
// rule: every exported constructor of a type holding time.Time state
// must offer an injectable clock (parameter, config field, exported
// field, or threaded-now methods).
package clockcomplete

import "time"

// Tracker holds wall-clock state with no way to inject it: flagged.
type Tracker struct{ start time.Time }

func NewTracker() *Tracker { // want `exported constructor NewTracker returns Tracker`
	return &Tracker{}
}

// Sampler injects through a func() time.Time parameter: clean.
type Sampler struct{ at time.Time }

func NewSampler(now func() time.Time) *Sampler { return &Sampler{at: now()} }

// Meter is clean through its constructor group: NewMeter alone would be
// flagged, but NewMeterAt gives callers the injection path.
type Meter struct{ at time.Time }

func NewMeter() *Meter               { return &Meter{} }
func NewMeterAt(at time.Time) *Meter { return &Meter{at: at} }

// Window threads `now` through its exported methods instead of storing a
// clock: clean.
type Window struct{ last time.Time }

func NewWindow() *Window                { return &Window{} }
func (w *Window) Observe(now time.Time) { w.last = now }

// Poller takes a config struct carrying a clock field: clean.
type Config struct{ Clock func() time.Time }

type Poller struct{ at time.Time }

func NewPoller(c Config) *Poller { return &Poller{} }

// Gauge exposes an exported clock field callers can set: clean.
type Gauge struct {
	Now func() time.Time
	at  time.Time
}

func NewGauge() *Gauge { return &Gauge{} }

// Ticker takes a Now()-method interface: clean.
type Clock interface{ Now() time.Time }

type Ticker struct{ at time.Time }

func NewTicker(c Clock) *Ticker { return &Ticker{} }

// Counter holds no wall-clock state at all: out of the rule's reach.
type Counter struct{ n int }

func NewCounter() *Counter { return &Counter{} }

// Span only stores a Duration — durations are clock-free: clean.
type Span struct{ d time.Duration }

func NewSpan() *Span { return &Span{} }

// Outer holds time.Time transitively through an unexported same-package
// struct field: still flagged.
type inner struct{ at time.Time }

type Outer struct{ in inner }

func NewOuter() *Outer { // want `exported constructor NewOuter returns Outer`
	return &Outer{}
}

// Legacy is flagged but carries a reasoned opt-out.
type Legacy struct{ born time.Time }

//pelta:allow clockcomplete construction time is cosmetic metadata only
func NewLegacy() *Legacy { return &Legacy{} }
