// Package lockorder is the golden fixture for the lockorder rule:
// pairwise mutex acquisition-order consistency. Each AB/BA cycle is
// reported at both acquisition sites.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// ABPath acquires A before B ...
func ABPath(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lockorder.B.mu acquired while holding lockorder.A.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

// ... and BAPath acquires B before A: together they can deadlock.
func BAPath(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lockorder.A.mu acquired while holding lockorder.B.mu`
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

// lockD takes D's lock; its acquisition summary makes any call to it an
// ordering edge for whatever the caller holds.
func lockD(d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
}

// TransitiveCD imposes C→D through the callee ...
func TransitiveCD(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want `lockorder.D.mu acquired while holding lockorder.C.mu`
	c.mu.Unlock()
}

// ... while DirectDC imposes D→C directly: an AB/BA cycle through a
// function summary.
func DirectDC(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want `lockorder.C.mu acquired while holding lockorder.D.mu`
	c.mu.Unlock()
	d.mu.Unlock()
}

type E struct{ mu sync.Mutex }

type F struct{ mu sync.RWMutex }

// ConsistentOne and ConsistentTwo always take E before F — one order,
// no cycle, nothing to report. Deferred unlocks keep both locks held to
// the end of the function, which is exactly the conservative view the
// rule wants.
func ConsistentOne(e *E, f *F) {
	e.mu.Lock()
	f.mu.RLock()
	f.mu.RUnlock()
	e.mu.Unlock()
}

func ConsistentTwo(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}

// ReleasedBetween: B-then-A is fine here because A's lock is already
// released — no overlap, no ordering edge.
func ReleasedBetween(e *E, f *F) {
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}
