// Package errpath is the golden fixture for the errpath rule: error
// values consumed on one CFG path but dropped on another.
package errpath

import "errors"

func step() error { return errors.New("boom") }

func report(error) {}

// DroppedOnFast: the classic shape — err is checked on the slow path but
// the fast path returns before ever looking at it.
func DroppedOnFast(fast bool) error {
	err := step() // want `error "err" is checked on some paths but dropped on others`
	if fast {
		return nil
	}
	if err != nil {
		return err
	}
	return nil
}

// CheckedEverywhere: the immediate check consumes the value on all paths.
func CheckedEverywhere() error {
	err := step()
	if err != nil {
		return err
	}
	return nil
}

// ExplicitDrop: assigning to _ is a deliberate, visible drop — not a
// path asymmetry.
func ExplicitDrop() {
	_ = step()
}

// SwitchDrop: one case returns the error, another silently succeeds.
func SwitchDrop(mode int) error {
	err := step() // want `error "err" is checked on some paths but dropped on others`
	switch mode {
	case 0:
		return err
	case 1:
		return nil
	}
	return err
}

// DroppedOnContinue: the loop skips the check for positive inputs, so
// those iterations drop the error into the next round.
func DroppedOnContinue(xs []int) error {
	for _, x := range xs {
		err := step() // want `error "err" is checked on some paths but dropped on others`
		if x > 0 {
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// LoopOverwriteChecked: reassigning in the loop is fine when every exit
// still reads the latest value.
func LoopOverwriteChecked(xs []int) error {
	var last error
	for range xs {
		last = step()
	}
	return last
}

// CapturedByClosure: a closure may consume the error after this frame's
// CFG ends; captured objects are out of scope for the rule.
func CapturedByClosure(fast bool) error {
	err := step()
	go func() { report(err) }()
	if fast {
		return nil
	}
	return err
}

// DeferConsumes: the deferred call reads err when the defer statement
// executes, consuming it on every path through the function.
func DeferConsumes(fast bool) error {
	err := step()
	defer report(err)
	if fast {
		return nil
	}
	return err
}

// BareReturnNamed: a bare return hands the named result to the caller —
// nothing is dropped.
func BareReturnNamed() (err error) {
	err = step()
	return
}

// AllowedDrop: a reasoned opt-out for a best-effort path.
func AllowedDrop(fast bool) error {
	//pelta:allow errpath fast path is best-effort by design
	err := step()
	if fast {
		return nil
	}
	return err
}
