// Package parallelsum is golden testdata for the parallelsum rule. It
// models the kernel layer's parallelFor sharding helper.
package parallelsum

// parallelFor models tensor's worker-pool sharding: body may run
// concurrently for disjoint [lo,hi) chunks.
func parallelFor(n, work int, body func(lo, hi int)) {
	body(0, n)
}

func BadSum(xs []float32) float32 {
	var total float32
	parallelFor(len(xs), len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] // want `\+= on float total captured from outside the parallelFor closure`
		}
	})
	return total
}

func BadSub(xs []float64) float64 {
	residual := 1.0
	parallelFor(len(xs), len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			residual -= xs[i] // want `-= on float residual captured from outside the parallelFor closure`
		}
	})
	return residual
}

type stats struct {
	sum float64
}

func BadField(xs []float64) float64 {
	var s stats
	parallelFor(len(xs), len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.sum += xs[i] // want `\+= on float s captured from outside the parallelFor closure`
		}
	})
	return s.sum
}

// GoodPartials is the sanctioned pattern: chunk-local accumulation into a
// per-chunk slot, reduced serially afterwards.
func GoodPartials(xs []float32) float32 {
	partials := make([]float32, 4)
	parallelFor(4, len(xs), func(lo, hi int) {
		var local float32
		for i := lo; i < hi; i++ {
			local += xs[i]
		}
		partials[lo] += local
	})
	var total float32
	for _, p := range partials {
		total += p
	}
	return total
}

// GoodIntCount: integer accumulation is a race but not a float
// determinism hazard; this rule leaves it to the race detector.
func GoodIntCount(xs []int) int {
	n := 0
	parallelFor(len(xs), len(xs), func(lo, hi int) {
		n += hi - lo
	})
	return n
}

func AllowedApprox(xs []float32) float32 {
	var approx float32
	parallelFor(len(xs), len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			approx += xs[i] //pelta:allow parallelsum diagnostic-only running total; never compared bitwise
		}
	})
	return approx
}
