// Package maporder is golden testdata for the maporder rule.
package maporder

import (
	"fmt"
	"io"
	"slices"
	"sort"
)

// BadAppend returns keys in randomized iteration order.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is random but the body appends to a slice`
		out = append(out, k)
	}
	return out
}

// BadWrite streams map entries to a Writer in randomized order.
func BadWrite(w io.Writer, m map[string]int) {
	for k := range m { // want `map iteration order is random but the body writes to a Writer`
		w.Write([]byte(k))
	}
}

// BadFormat renders rows through fmt in randomized order.
func BadFormat(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order is random but the body formats output`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// BadString builds a string iteration by iteration.
func BadString(m map[string]int) string {
	s := ""
	for k := range m { // want `map iteration order is random but the body builds a string`
		s += k
	}
	return s
}

// GoodSorted is the collect-keys-then-sort idiom: the append inside the
// map range is fine because the function sorts before the keys are used.
func GoodSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// GoodSlicesSorted uses package slices for the ordering.
func GoodSlicesSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// GoodCount performs an order-independent reduction.
func GoodCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// AllowedUnordered documents an intentionally order-free accumulation.
func AllowedUnordered(m map[string]int) []int {
	var vals []int
	//pelta:allow maporder values are summed by the caller; order never observable
	for _, v := range m {
		vals = append(vals, v)
	}
	return vals
}
