// Package shieldtaint is the golden fixture for the shieldtaint rule.
// It models the repo's shield surface locally — the rule matches by type
// and method name, so the fixture exercises the same matchers production
// code hits: Enclave.Load sources, Token values, shield-named pools and
// buffers, fmt/ResponseWriter/Encoder/Pool.Put sinks, Scrub sanitizing.
package shieldtaint

import "fmt"

// Token is the enclave capability; any value of it is secret.
type Token struct{ secret [16]byte }

// Obj is an enclave-resident object.
type Obj struct{ data []float64 }

func (o *Obj) Data() []float64 { return o.data }

// Enclave mirrors tee.Enclave: Load is THE source of shielded contents.
type Enclave struct{ objects map[string]*Obj }

func (e *Enclave) Load(tok Token, key string) (*Obj, error) { return e.objects[key], nil }

// Tensor mirrors tensor.Tensor; Scrub is the sanitizer.
type Tensor struct{ data []float64 }

func (t *Tensor) Scrub() {
	for i := range t.data {
		t.data[i] = 0
	}
}
func (t *Tensor) Data() []float64 { return t.data }

// Pool mirrors tensor.Pool: shield-named Get results are sources, Put is
// the recycling sink.
type Pool struct{ free []*Tensor }

func (p *Pool) Get(shape ...int) *Tensor { return &Tensor{data: make([]float64, 4)} }
func (p *Pool) Put(t *Tensor)            { p.free = append(p.free, t) }

// ResponseWriter mirrors http.ResponseWriter.
type ResponseWriter struct{}

func (w *ResponseWriter) Write(b []byte) (int, error) { return len(b), nil }

// BranchyLeak: taint flows into buf on one branch only; the may-analysis
// joins the branches and still reports the sink.
func BranchyLeak(e *Enclave, tok Token, fast bool) {
	obj, _ := e.Load(tok, "acc")
	var buf []float64
	if fast {
		buf = obj.Data()
	} else {
		buf = nil
	}
	fmt.Println(buf) // want `shield-confidential data reaches fmt output`
}

// LoopCarried: the range binding carries taint out of the loop through
// the accumulator.
func LoopCarried(e *Enclave, tok Token) {
	obj, _ := e.Load(tok, "acc")
	acc := 0.0
	for _, v := range obj.Data() {
		acc += v
	}
	fmt.Println(acc) // want `shield-confidential data reaches fmt output`
}

// ScrubbedPut: sanitizer-then-sink is clean — Scrub kills the taint
// before the buffer is recycled.
func ScrubbedPut(p *Pool, shieldPool *Pool) {
	t := shieldPool.Get(4)
	t.Scrub()
	p.Put(t)
}

// UnscrubbedPut: the same flow without the Scrub is the leak.
func UnscrubbedPut(shieldPool *Pool) {
	t := shieldPool.Get(4)
	shieldPool.Put(t) // want `shield-confidential data reaches Pool.Put`
}

// ScrubOnePath: scrubbed on one branch only — the unscrubbed path still
// reaches the sink.
func ScrubOnePath(shieldPool *Pool, big bool) {
	t := shieldPool.Get(8)
	if big {
		t.Scrub()
	}
	shieldPool.Put(t) // want `shield-confidential data reaches Pool.Put`
}

// emit routes its buffer parameter into the HTTP response; the summary
// records paramBit(1) reaching the sink, so tainted callers report at
// their call site instead.
func emit(w *ResponseWriter, buf []float64) {
	raw := make([]byte, len(buf))
	for i, v := range buf {
		raw[i] = byte(v)
	}
	w.Write(raw)
}

// HelperLeak: interprocedural flow — the leak happens inside emit, the
// report lands on the tainted call.
func HelperLeak(e *Enclave, tok Token, w *ResponseWriter) {
	obj, _ := e.Load(tok, "acc")
	emit(w, obj.Data()) // want `shield-confidential data reaches the HTTP response \(inside emit\)`
}

// ShieldName: a shield-marked identifier of buffer type is a source even
// without an enclave in sight.
func ShieldName() {
	shieldGrad := []float64{1, 2}
	fmt.Println(shieldGrad) // want `shield-confidential data reaches fmt output`
}

// TokenLeak: the capability itself must never be printed.
func TokenLeak(tok Token) {
	fmt.Printf("tok=%v\n", tok) // want `shield-confidential data reaches fmt output`
}

// CleanPool: an unshielded pool round-trip is fine.
func CleanPool(p *Pool, w *ResponseWriter) {
	t := p.Get(4)
	p.Put(t)
	fmt.Println("served")
	w.Write([]byte("ok"))
}

// Declassified: explicit declassification with a reasoned allow.
func Declassified(e *Enclave, tok Token) {
	obj, _ := e.Load(tok, "acc")
	//pelta:allow shieldtaint aggregate exported for FL by design
	fmt.Println(obj.Data())
}

// LenOnly: lengths and comparisons are not contents; builtins do not
// propagate taint.
func LenOnly(e *Enclave, tok Token, w *ResponseWriter) {
	obj, _ := e.Load(tok, "acc")
	w.Write([]byte{byte(len(obj.Data()))})
}
