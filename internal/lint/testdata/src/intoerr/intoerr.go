// Package intoerr is golden testdata for the intoerr rule. It models the
// kernel layer's destination-passing contract: *Into/*Raw variants report
// shape mismatches through an error result.
package intoerr

import "fmt"

type Tensor struct {
	shape []int
	data  []float32
}

// CopyInto models an error-returning kernel.
func CopyInto(dst, src *Tensor) error {
	if len(dst.data) != len(src.data) {
		return fmt.Errorf("intoerr: size mismatch %v vs %v", dst.shape, src.shape)
	}
	copy(dst.data, src.data)
	return nil
}

// FillRaw models a Raw variant with a leading result before the error.
func FillRaw(dst []float32, v float32) (int, error) {
	for i := range dst {
		dst[i] = v
	}
	return len(dst), nil
}

// ScaleInto is void: kernels without an error result are never findings.
func ScaleInto(dst *Tensor, alpha float32) {
	for i := range dst.data {
		dst.data[i] *= alpha
	}
}

func Bad(dst, src *Tensor) {
	CopyInto(dst, src) // want `CopyInto returns an error that is discarded`
}

func BadBlank(dst, src *Tensor) {
	_ = CopyInto(dst, src) // want `CopyInto returns an error that is assigned to _`
}

func BadBlankTuple(dst []float32) int {
	n, _ := FillRaw(dst, 1) // want `FillRaw returns an error that is assigned to _`
	return n
}

func BadDefer(dst, src *Tensor) {
	defer CopyInto(dst, src) // want `CopyInto returns an error that is discarded`
}

func BadGo(dst, src *Tensor) {
	go CopyInto(dst, src) // want `CopyInto returns an error that is discarded`
}

func Good(dst, src *Tensor) error {
	if err := CopyInto(dst, src); err != nil {
		return fmt.Errorf("intoerr: %w", err)
	}
	return nil
}

func GoodTuple(dst []float32) (int, error) {
	return FillRaw(dst, 2)
}

func GoodVoid(dst *Tensor) {
	ScaleInto(dst, 0.5)
}

func Allowed(dst, src *Tensor) {
	CopyInto(dst, src) //pelta:allow intoerr shapes constructed equal three lines up; cannot mismatch
}
