// Package noclock is golden testdata for the noclock rule.
package noclock

import "time"

// Clock is the injected-clock seam; calling through it is always legal.
type Clock interface {
	Now() time.Time
}

func Bad() time.Time {
	return time.Now() // want `time\.Now reads the process wall clock`
}

func BadSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the process wall clock`
}

func BadUntil(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until reads the process wall clock`
}

func BadSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the process wall clock`
}

func BadAfter() <-chan time.Time {
	return time.After(time.Second) // want `time\.After reads the process wall clock`
}

func BadTimer() bool {
	t := time.NewTimer(time.Second) // want `time\.NewTimer reads the process wall clock`
	return t.Stop()
}

func BadTicker() {
	tk := time.NewTicker(time.Second) // want `time\.NewTicker reads the process wall clock`
	tk.Stop()
}

// BadDefault is the fallback pattern `now = time.Now`: referencing the
// function without calling it is still a wall-clock dependency.
func BadDefault(now func() time.Time) func() time.Time {
	if now == nil {
		now = time.Now // want `time\.Now reads the process wall clock`
	}
	return now
}

func AllowedLeading() time.Time {
	//pelta:allow noclock wall-clock stamp at the process edge by design
	return time.Now()
}

func AllowedTrailing() time.Time {
	return time.Now() //pelta:allow noclock wall-clock stamp at the process edge by design
}

// OKThroughClock uses only the injected seam and time's types/constants.
func OKThroughClock(c Clock, d time.Duration) time.Time {
	return c.Now().Add(d).Truncate(time.Millisecond)
}
