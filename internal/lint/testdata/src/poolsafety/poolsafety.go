// Package poolsafety is golden testdata for the poolsafety rule. It
// models the tensor.Pool / graph-arena ownership contract locally.
package poolsafety

type Tensor struct {
	data []float32
}

func (t *Tensor) Data() []float32 { return t.data }
func (t *Tensor) Scrub()          {}

// Pool models tensor.Pool: Get borrows, Put returns, shielded buffers are
// Scrubbed instead of recycled.
type Pool struct {
	free []*Tensor
}

func (p *Pool) Get(shape ...int) *Tensor     { return &Tensor{data: make([]float32, 1)} }
func (p *Pool) GetZero(shape ...int) *Tensor { return &Tensor{data: make([]float32, 1)} }
func (p *Pool) GetInts(n int) []int          { return make([]int, n) }
func (p *Pool) Put(t *Tensor)                {}
func (p *Pool) PutInts(buf []int)            {}

// Graph models the pooled autograd arena.
type Graph struct {
	pool *Pool
}

func NewGraphWithPool(p *Pool) *Graph { return &Graph{pool: p} }
func (g *Graph) Release()             {}
func (g *Graph) Nodes() int           { return 0 }

func BadLeak(p *Pool) float32 {
	buf := p.Get(4, 4) // want `Pool\.Get acquired by "buf" is never Put/Released/Scrubbed`
	return buf.Data()[0]
}

func BadLeakZero(p *Pool) float32 {
	buf := p.GetZero(8) // want `Pool\.GetZero acquired by "buf" is never Put/Released/Scrubbed`
	return buf.Data()[0]
}

func BadLeakInts(p *Pool) int {
	idx := p.GetInts(8) // want `Pool\.GetInts acquired by "idx" is never Put/Released/Scrubbed`
	return idx[0]
}

func BadGraphLeak(p *Pool) int {
	g := NewGraphWithPool(p) // want `NewGraphWithPool acquired by "g" is never Put/Released/Scrubbed`
	return g.Nodes()
}

func BadShieldedPut(p *Pool, shieldedBuf *Tensor) {
	p.Put(shieldedBuf) // want `Pool\.Put of shielded value "shieldedBuf" would recycle enclave memory`
}

func GoodPut(p *Pool) float32 {
	buf := p.Get(16)
	v := buf.Data()[0]
	p.Put(buf)
	return v
}

func GoodDeferredRelease(p *Pool) int {
	g := NewGraphWithPool(p)
	defer g.Release()
	return g.Nodes()
}

func GoodScrubbed(p *Pool) {
	buf := p.Get(16)
	buf.Scrub()
}

// GoodTransfer hands the buffer to the caller; the release obligation
// moves with it.
func GoodTransfer(p *Pool) *Tensor {
	return transferInner(p)
}

func transferInner(p *Pool) *Tensor {
	buf := p.Get(16)
	return buf
}

// GoodStored stashes the buffer in a struct: ownership escapes.
type holder struct {
	scratch *Tensor
}

func (h *holder) GoodStored(p *Pool) {
	buf := p.Get(16)
	h.scratch = buf
}

func AllowedLeak(p *Pool) float32 {
	//pelta:allow poolsafety warm-up buffer pinned for the process lifetime
	warm := p.Get(1024)
	return warm.Data()[0]
}

func AllowedShieldedPut(p *Pool, shieldedScratch *Tensor) {
	p.Put(shieldedScratch) //pelta:allow poolsafety scratch only mirrors shielded shape; holds no enclave bytes
}
