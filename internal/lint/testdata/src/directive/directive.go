// Package directive is testdata for the //pelta:allow parser: well-formed
// directives suppress, malformed ones are diagnostics and suppress nothing.
// Exercised programmatically by directive_test.go rather than through the
// golden want-comment harness, since the findings land on comment lines.
package directive

import "time"

// Suppressed: well-formed trailing directive.
func Suppressed() time.Time {
	return time.Now() //pelta:allow noclock wall-clock stamp at the process edge
}

// SuppressedLeading: well-formed directive on the line above.
func SuppressedLeading() time.Time {
	//pelta:allow noclock wall-clock stamp at the process edge
	return time.Now()
}

// MissingReason: the directive lacks a reason — it is itself a diagnostic
// and the underlying noclock finding still fires.
func MissingReason() time.Time {
	//pelta:allow noclock
	return time.Now()
}

// UnknownRule: the directive names a rule that does not exist.
func UnknownRule() time.Time {
	//pelta:allow nosuchrule because I said so
	return time.Now()
}

// WrongRule: a well-formed allow for a different rule does not suppress a
// noclock finding.
func WrongRule() time.Time {
	//pelta:allow maporder reasons belong to their own rule
	return time.Now()
}

// Bare: no rule name at all.
func Bare() time.Time {
	//pelta:allow
	return time.Now()
}
