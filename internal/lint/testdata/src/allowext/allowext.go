// Package allowext pins //pelta:allow attachment beyond the single-line
// cases: directives on multi-line statements and inside defer/closure
// bodies. Suppressed violations carry no want comment — the golden
// harness is bidirectional, so a suppression regression shows up as an
// unexpected diagnostic.
package allowext

import "time"

func sink(...any) {}

// Control: an unsuppressed violation proving the rule runs here at all.
func Control() time.Time {
	return time.Now() // want `time\.Now reads the process wall clock`
}

// LeadingOnWrappedCall: the diagnostic anchors two lines below the
// directive, inside the wrapped statement's extent.
func LeadingOnWrappedCall() {
	//pelta:allow noclock fixture pins statement-extent attachment
	sink(
		time.Now(),
		1,
	)
}

// TrailingInsideWrappedCall: the directive sits on a later line of the
// same statement than the diagnostic.
func TrailingInsideWrappedCall() {
	sink(
		time.Now(),
		//pelta:allow noclock fixture pins in-statement attachment
	)
}

// InsideDeferBody: directives attach to the closure body's own
// statements, same as top-level code.
func InsideDeferBody() {
	defer func() {
		//pelta:allow noclock fixture pins defer-body attachment
		sink(time.Now())
	}()
}

// InsideClosureTrailing: trailing same-line form inside a goroutine
// closure.
func InsideClosureTrailing() {
	go func() {
		sink(time.Now()) //pelta:allow noclock fixture pins closure attachment
	}()
}

// DeferHeaderDoesNotBlanketBody: a directive on the defer line must NOT
// cover violations inside the closure body — only the body's own
// directives do.
func DeferHeaderDoesNotBlanketBody() {
	//pelta:allow noclock covers nothing: funclit statements are excluded
	defer func() {
		sink(
			1,
			time.Now(), // want `time\.Now reads the process wall clock`
		)
	}()
}
