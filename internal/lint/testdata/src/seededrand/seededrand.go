// Package seededrand is golden testdata for the seededrand rule.
package seededrand

import (
	"math/rand"
	rv2 "math/rand/v2"
)

func Bad() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global generator`
}

func BadFloat() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global generator`
}

func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global generator`
}

func BadPerm(n int) []int {
	return rand.Perm(n) // want `rand\.Perm draws from the process-global generator`
}

func BadV2() int {
	return rv2.IntN(3) // want `rand\.IntN draws from the process-global generator`
}

// OKSeeded builds a seeded generator through the sanctioned constructors
// and draws from it; only the package-global entry points are banned.
func OKSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// OKType references rand.Rand as a type, which is never a finding.
func OKType(r *rand.Rand) float64 {
	return r.Float64()
}

func Allowed() float64 {
	return rand.Float64() //pelta:allow seededrand startup jitter at the process edge, outside any experiment
}
