package lint

import (
	"go/ast"
	"sort"
	"strconv"
	"strings"
)

// allowDirective is one parsed //pelta:allow comment.
type allowDirective struct {
	file   string
	line   int
	rule   string
	reason string
}

// allowRange extends a directive's reach over a multi-line statement:
// a //pelta:allow on any line of the statement (or the line above it)
// covers diagnostics anywhere in the statement's line span. Statements
// containing function literals are excluded — a directive on a `defer
// func() {` line must not blanket the whole closure body; directives
// inside the body attach to the body's own statements instead.
type allowRange struct {
	start, end int
	rule       string
}

// allowSet indexes well-formed allow directives by file: exact lines for
// the single-line case, statement extents for multi-line statements.
type allowSet struct {
	lines  map[string]map[int][]allowDirective
	ranges map[string][]allowRange
}

func newAllowSet() allowSet {
	return allowSet{lines: map[string]map[int][]allowDirective{}, ranges: map[string][]allowRange{}}
}

// merge folds other's directives into s (the per-package → global step;
// filenames are absolute, so there are no collisions to resolve).
func (s allowSet) merge(other allowSet) {
	for file, lines := range other.lines {
		s.lines[file] = lines
	}
	files := make([]string, 0, len(other.ranges))
	for file := range other.ranges {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		s.ranges[file] = append(s.ranges[file], other.ranges[file]...)
	}
}

// suppresses reports whether d carries a matching directive: an allow for
// the same rule on the diagnostic's own line (trailing comment), on the
// line directly above it (leading comment), or anywhere on a multi-line
// statement enclosing the diagnostic.
func (s allowSet) suppresses(d Diagnostic) bool {
	lines := s.lines[d.Pos.Filename]
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, a := range lines[ln] {
			if a.rule == d.Rule {
				return true
			}
		}
	}
	for _, r := range s.ranges[d.Pos.Filename] {
		if r.rule == d.Rule && d.Pos.Line >= r.start && d.Pos.Line <= r.end {
			return true
		}
	}
	return false
}

const allowPrefix = "//pelta:allow"

// collectDirectives parses every //pelta:allow comment in the package.
// Malformed directives — an unknown rule name, or a missing reason — are
// returned as "directive" diagnostics and do NOT suppress anything: an
// opt-out must always say which rule it disarms and why.
func collectDirectives(pkg *Package) (allowSet, []Diagnostic) {
	allows := newAllowSet()
	var diags []Diagnostic
	known := map[string]bool{}
	for _, r := range RuleNames {
		known[r] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //pelta:allowance — not ours.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{
						Rule: "directive", Pos: pos,
						Message: "pelta:allow needs a rule name and a reason: //pelta:allow <rule> <reason>",
					})
					continue
				}
				rule := fields[0]
				if !known[rule] {
					diags = append(diags, Diagnostic{
						Rule: "directive", Pos: pos,
						Message: "pelta:allow names unknown rule " + strconv.Quote(rule) + " (known: " + strings.Join(RuleNames, ", ") + ")",
					})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), rule))
				if reason == "" {
					diags = append(diags, Diagnostic{
						Rule: "directive", Pos: pos,
						Message: "pelta:allow " + rule + " needs a reason: //pelta:allow " + rule + " <reason>",
					})
					continue
				}
				file := allows.lines[pos.Filename]
				if file == nil {
					file = map[int][]allowDirective{}
					allows.lines[pos.Filename] = file
				}
				file[pos.Line] = append(file[pos.Line], allowDirective{
					file: pos.Filename, line: pos.Line, rule: rule, reason: reason,
				})
			}
		}
	}
	collectRanges(pkg, allows)
	return allows, diags
}

// collectRanges widens directives attached to multi-line simple
// statements into statement-extent ranges. A diagnostic anchored on,
// say, the third line of a wrapped call is still covered by the allow on
// the statement's first line or the line above it.
func collectRanges(pkg *Package, allows allowSet) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeclStmt,
				*ast.SendStmt, *ast.IncDecStmt, *ast.DeferStmt, *ast.GoStmt:
			default:
				return true
			}
			pos := pkg.Fset.Position(n.Pos())
			end := pkg.Fset.Position(n.End()).Line
			if end <= pos.Line || containsFuncLit(n) {
				return true
			}
			fileLines := allows.lines[pos.Filename]
			for ln := pos.Line - 1; ln <= end; ln++ {
				for _, a := range fileLines[ln] {
					allows.ranges[pos.Filename] = append(allows.ranges[pos.Filename],
						allowRange{start: pos.Line, end: end, rule: a.rule})
				}
			}
			return true
		})
	}
}

// containsFuncLit reports whether the statement nests a function literal.
func containsFuncLit(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			found = true
		}
		return !found
	})
	return found
}
