package lint

import (
	"strconv"
	"strings"
)

// allowDirective is one parsed //pelta:allow comment.
type allowDirective struct {
	file   string
	line   int
	rule   string
	reason string
}

// allowSet indexes well-formed allow directives by file and line.
type allowSet map[string]map[int][]allowDirective

// suppresses reports whether d carries a matching directive: an allow for
// the same rule on the diagnostic's own line (trailing comment) or on the
// line directly above it (leading comment).
func (s allowSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, a := range lines[ln] {
			if a.rule == d.Rule {
				return true
			}
		}
	}
	return false
}

const allowPrefix = "//pelta:allow"

// collectDirectives parses every //pelta:allow comment in the package.
// Malformed directives — an unknown rule name, or a missing reason — are
// returned as "directive" diagnostics and do NOT suppress anything: an
// opt-out must always say which rule it disarms and why.
func collectDirectives(pkg *Package) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var diags []Diagnostic
	known := map[string]bool{}
	for _, r := range RuleNames {
		known[r] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //pelta:allowance — not ours.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{
						Rule: "directive", Pos: pos,
						Message: "pelta:allow needs a rule name and a reason: //pelta:allow <rule> <reason>",
					})
					continue
				}
				rule := fields[0]
				if !known[rule] {
					diags = append(diags, Diagnostic{
						Rule: "directive", Pos: pos,
						Message: "pelta:allow names unknown rule " + strconv.Quote(rule) + " (known: " + strings.Join(RuleNames, ", ") + ")",
					})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), rule))
				if reason == "" {
					diags = append(diags, Diagnostic{
						Rule: "directive", Pos: pos,
						Message: "pelta:allow " + rule + " needs a reason: //pelta:allow " + rule + " <reason>",
					})
					continue
				}
				file := allows[pos.Filename]
				if file == nil {
					file = map[int][]allowDirective{}
					allows[pos.Filename] = file
				}
				file[pos.Line] = append(file[pos.Line], allowDirective{
					file: pos.Filename, line: pos.Line, rule: rule, reason: reason,
				})
			}
		}
	}
	return allows, diags
}
