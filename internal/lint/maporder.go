package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkMapOrder implements the maporder rule: ranging over a map while
// producing ordered output (appending to a slice, writing to an io.Writer,
// building a string) leaks Go's randomized map iteration order into
// rendered tables, JSON rows and golden files. The rule flags a map range
// whose body performs such an op, unless the enclosing function also calls
// a sort — the collect-keys-then-sort idiom:
//
//	keys := make([]string, 0, len(m))
//	for k := range m { keys = append(keys, k) } // append, but...
//	sort.Strings(keys)                          // ...sorted before use
//
// A sort call anywhere in the function is taken as evidence the author
// ordered the data; order-independent bodies (counter bumps, set inserts)
// are never flagged.
func checkMapOrder(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasSortCall(pkg, fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if op := orderedOutputOp(pkg, rs.Body); op != "" {
					diags = append(diags, diag(pkg, "maporder", rs.Pos(),
						"map iteration order is random but the body %s; sort the keys first", op))
				}
				return true
			})
		}
	}
	return diags
}

// hasSortCall reports whether the body calls a sorting function from
// package sort or slices.
func hasSortCall(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn := pkgNameOf(pkg, sel.X)
		if pn == nil {
			return true
		}
		name := sel.Sel.Name
		switch pn.Imported().Path() {
		case "sort":
			switch name {
			case "Sort", "Stable", "Strings", "Ints", "Float64s", "Slice", "SliceStable":
				found = true
			}
		case "slices":
			if len(name) >= 4 && name[:4] == "Sort" {
				found = true
			}
		}
		return !found
	})
	return found
}

// orderedOutputOp reports the first order-sensitive operation in a map
// range body, or "" if the body is order-independent. Recognized ops:
// append, io.Writer-style Write* method calls, fmt print/format calls,
// and string concatenation (s += ...).
func orderedOutputOp(pkg *Package, body *ast.BlockStmt) string {
	op := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if op != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fn := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fn.Name == "append" && pkg.Info.Uses[fn] == types.Universe.Lookup("append") {
					op = "appends to a slice"
				}
			case *ast.SelectorExpr:
				switch fn.Sel.Name {
				case "Write", "WriteString", "WriteByte", "WriteRune":
					op = "writes to a Writer"
				case "Printf", "Print", "Println", "Fprintf", "Fprint", "Fprintln",
					"Sprintf", "Sprint", "Sprintln", "Appendf":
					if pn := pkgNameOf(pkg, fn.X); pn != nil && pn.Imported().Path() == "fmt" {
						op = "formats output"
					}
				}
			}
		case *ast.AssignStmt:
			// s += part — building a string iteration by iteration.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if tv, ok := pkg.Info.Types[n.Lhs[0]]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						op = "builds a string"
					}
				}
			}
		}
		return op == ""
	})
	return op
}
