package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkParallelSum implements the parallelsum rule: inside a closure
// passed to parallelFor, a compound float assignment (`+=`, `-=`) whose
// target is captured from the enclosing scope accumulates across chunks in
// scheduling order — the canonical bit-determinism hazard (float addition
// is not associative, and the write races at any worker count > 1). The
// deterministic pattern is a per-chunk partial reduced serially afterwards;
// indexed writes (`partial[chunk] += v`) are therefore not flagged.
func checkParallelSum(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := calleeName(call); name != "parallelFor" && name != "ParallelFor" {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				diags = append(diags, checkClosureSums(pkg, lit)...)
			}
			return true
		})
	}
	return diags
}

// checkClosureSums flags captured-float compound assignments in one
// closure body.
func checkClosureSums(pkg *Package, lit *ast.FuncLit) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		if !isFloat(pkg, lhs) {
			return true
		}
		// The accumulation target: a plain captured variable, or a field
		// on one. Indexed writes are the sanctioned per-chunk pattern.
		var root *ast.Ident
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			root = l
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
				root = id
			}
		}
		if root == nil {
			return true
		}
		obj := pkg.Info.Uses[root]
		if obj == nil || !obj.Pos().IsValid() {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure: chunk-local, fine
		}
		diags = append(diags, diag(pkg, "parallelsum", as.Pos(),
			"%s on float %s captured from outside the parallelFor closure races and breaks bit-determinism; accumulate per-chunk partials and reduce serially", as.Tok, root.Name))
		return true
	})
	return diags
}

// isFloat reports whether the expression's type is float32 or float64.
func isFloat(pkg *Package, x ast.Expr) bool {
	tv, ok := pkg.Info.Types[x]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float32 || b.Kind() == types.Float64)
}
