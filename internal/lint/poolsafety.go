package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// releaseNames are the calls that return pooled memory or withdraw it from
// recycling: Pool.Put/PutInts, arena Graph.Release, and Scrub (which marks
// a shielded buffer as never-recyclable).
var releaseNames = map[string]bool{
	"Put":       true,
	"PutInts":   true,
	"Release":   true,
	"Scrub":     true,
	"ScrubGrad": true,
}

// acquireMethods are the Pool methods that borrow a buffer.
var acquireMethods = map[string]bool{"Get": true, "GetZero": true, "GetInts": true}

// checkPoolSafety implements the poolsafety rule, two hazards:
//
//  1. Leaked acquisition: a Pool.Get*/NewGraphWithPool result bound to a
//     local that is only ever read locally — never Put/Released/Scrubbed,
//     never returned, stored or passed on — leaks the buffer out of the
//     pool's steady state. Ownership transfers (returning the buffer,
//     stashing it in a struct, handing it to another call) are assumed to
//     move the release obligation and are not flagged.
//
//  2. Shielded recycle: Pool.Put/PutInts of a value whose name marks it as
//     shielded enclave memory. Shielded buffers must be Scrubbed — filing
//     one into a free list would hand enclave contents to the next Get.
func checkPoolSafety(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			parents := parentMap(fd.Body)
			diags = append(diags, checkLeakedAcquires(pkg, fd, parents)...)
			diags = append(diags, checkShieldedRecycle(pkg, fd)...)
		}
	}
	return diags
}

// parentMap records the immediate parent of every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// isPoolRecv reports whether x's static type (pointer-stripped) is a named
// type called Pool. Matching by type name keeps the rule applicable to the
// golden testdata packages, which model the tensor.Pool contract locally.
func isPoolRecv(pkg *Package, x ast.Expr) bool {
	tv, ok := pkg.Info.Types[x]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Pool"
}

// checkLeakedAcquires flags pool/arena acquisitions whose result never
// reaches a release call and never escapes the function.
func checkLeakedAcquires(pkg *Package, fd *ast.FuncDecl, parents map[ast.Node]ast.Node) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		what := ""
		switch fn := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if acquireMethods[fn.Sel.Name] && isPoolRecv(pkg, fn.X) {
				what = "Pool." + fn.Sel.Name
			}
		case *ast.Ident:
			if fn.Name == "NewGraphWithPool" {
				what = fn.Name
			}
		}
		if what == "" {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id] // plain `=` rebind
		}
		if obj == nil {
			return true
		}
		released, escapes := traceUses(pkg, fd, parents, obj, id)
		if !released && !escapes {
			diags = append(diags, diag(pkg, "poolsafety", as.Pos(),
				"%s acquired by %q is never Put/Released/Scrubbed on any path", what, id.Name))
		}
		return true
	})
	return diags
}

// traceUses classifies every use of obj inside fd: released when it
// reaches a Put/Release/Scrub call (as receiver or argument, including
// deferred ones); escapes when it is returned, reassigned, stored, or
// passed to any other call — ownership moves, so the local function no
// longer owes the release.
func traceUses(pkg *Package, fd *ast.FuncDecl, parents map[ast.Node]ast.Node, obj types.Object, def *ast.Ident) (released, escapes bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def || pkg.Info.Uses[id] != obj {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.SelectorExpr:
			if p.X != ast.Expr(id) {
				return true
			}
			if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) && releaseNames[p.Sel.Name] {
				released = true
			}
			// Other selector uses are reads (method calls, field access).
		case *ast.CallExpr:
			for _, a := range p.Args {
				if ast.Unparen(a) == ast.Expr(id) {
					if releaseNames[calleeName(p)] {
						released = true
					} else {
						escapes = true
					}
				}
			}
		case *ast.IndexExpr, *ast.RangeStmt, *ast.StarExpr, *ast.ParenExpr:
			// Local reads.
		default:
			// Returns, assignments, composite literals, channel sends,
			// address-taking — ownership may move; stay quiet.
			escapes = true
		}
		return true
	})
	return released, escapes
}

// checkShieldedRecycle flags Pool.Put/PutInts calls whose argument names a
// shielded value.
func checkShieldedRecycle(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Put" && sel.Sel.Name != "PutInts") || !isPoolRecv(pkg, sel.X) {
			return true
		}
		for _, a := range call.Args {
			if name := shieldedName(a); name != "" {
				diags = append(diags, diag(pkg, "poolsafety", call.Pos(),
					"Pool.%s of shielded value %q would recycle enclave memory; Scrub it instead", sel.Sel.Name, name))
			}
		}
		return true
	})
	return diags
}

// shieldedName returns the first identifier mentioning "shield" inside the
// expression, or "".
func shieldedName(x ast.Expr) string {
	name := ""
	ast.Inspect(x, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "shield") {
			name = id.Name
		}
		return name == ""
	})
	return name
}
