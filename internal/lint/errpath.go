package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// checkErrPath is the path-sensitive upgrade of intoerr: it flags an
// error value that is consumed (checked, returned, wrapped) on at least
// one CFG path but silently dropped on another. The classic shape:
//
//	err := step()
//	if fast {
//	    return nil // err checked on the slow path only — dropped here
//	}
//	if err != nil { ... }
//
// intoerr only sees assignments to `_`; errpath follows the value
// through branches, loops and switches.
//
// Facts are (object, definition site) pairs; an error-typed identifier
// assigned from a call GENs a fact, any later read of the identifier
// (a nil comparison, a return, a wrap, a reassignment) KILLs it. A fact
// surviving to the synthetic exit block means some path drops the value;
// a kill-use existing anywhere means another path consumes it — both
// together make the finding.
func checkErrPath(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, errPathFunc(pkg, fd)...)
		}
	}
	return diags
}

// errFact identifies one error definition: which object, defined where.
type errFact struct {
	obj types.Object
	pos token.Pos
}

type errPathChecker struct {
	pkg *Package
	// escaped objects — captured by a closure or address-taken — are
	// excluded: their consumption can happen outside the CFG.
	escaped map[types.Object]bool
	// reads counts identifier reads per object (excluding assignment
	// targets): a dropped error is only reported when the object is
	// consumed somewhere, i.e. on some *other* path.
	reads map[types.Object]int
	// named results are implicitly consumed by a bare return.
	namedResults []types.Object
}

func errPathFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	ec := &errPathChecker{
		pkg:     pkg,
		escaped: map[types.Object]bool{},
		reads:   map[types.Object]int{},
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					ec.namedResults = append(ec.namedResults, obj)
				}
			}
		}
	}
	ec.prescan(fd.Body)

	c := buildCFG(pkg, fd.Body)
	in := forwardMay(c, nil, ec.transfer)
	// Deferred calls run after every path's last statement: a deferred
	// read of the error (cleanup hooks logging err) consumes it on all
	// paths.
	exit := exitState(c, in).clone()
	for _, d := range c.defers {
		ec.transfer(d.Call, exit)
	}

	var facts []errFact
	seen := map[token.Pos]bool{}
	for k := range exit {
		if fact, ok := k.(errFact); ok && !seen[fact.pos] {
			seen[fact.pos] = true
			facts = append(facts, fact)
		}
	}
	sort.Slice(facts, func(i, j int) bool { return facts[i].pos < facts[j].pos })

	var diags []Diagnostic
	for _, fact := range facts {
		if ec.reads[fact.obj] == 0 {
			// Never consumed anywhere: the compiler (for :=) or intoerr-style
			// review handles the fully-unused case; errpath is specifically
			// about path asymmetry.
			continue
		}
		diags = append(diags, diag(pkg, "errpath", fact.pos,
			"error %q is checked on some paths but dropped on others; handle it on every path or assign to _ explicitly", fact.obj.Name()))
	}
	return diags
}

// prescan records escaped objects and read counts over the whole body.
func (ec *errPathChecker) prescan(body *ast.BlockStmt) {
	assignTargets := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					assignTargets[id] = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := ec.obj(id); obj != nil {
						ec.escaped[obj] = true
					}
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := ec.pkg.Info.Uses[id]; obj != nil {
						ec.escaped[obj] = true
					}
				}
				return true
			})
			return false
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && !assignTargets[id] {
			if obj := ec.pkg.Info.Uses[id]; obj != nil {
				ec.reads[obj]++
			}
		}
		return true
	})
}

func (ec *errPathChecker) obj(id *ast.Ident) types.Object {
	if obj := ec.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return ec.pkg.Info.Defs[id]
}

// transfer: reads kill facts for their object; error-typed call results
// gen a fact for the assigned identifier.
func (ec *errPathChecker) transfer(n ast.Node, st flowState) {
	as, isAssign := n.(*ast.AssignStmt)

	// KILL: every identifier read inside the node consumes its object's
	// pending facts. For assignments only the RHS reads; for everything
	// else (conditions, returns, calls, sends) the whole node reads.
	killRoots := []ast.Node{n}
	if isAssign {
		killRoots = killRoots[:0]
		for _, rhs := range as.Rhs {
			killRoots = append(killRoots, rhs)
		}
	}
	if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 0 {
		// Bare return: named results are consumed.
		for _, obj := range ec.namedResults {
			killObj(st, obj)
		}
	}
	for _, root := range killRoots {
		inspectShallow(root, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if id, ok := m.(*ast.Ident); ok {
				if obj := ec.pkg.Info.Uses[id]; obj != nil {
					killObj(st, obj)
				}
			}
			return true
		})
	}

	if !isAssign {
		return
	}
	// GEN: an error-typed identifier bound from a call starts a fact.
	// Reassignment strong-kills the previous definition first — only
	// drops that reach the exit are reported.
	fromCall := len(as.Rhs) == 1
	if fromCall {
		_, fromCall = ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	}
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := ec.obj(id)
		if obj == nil {
			continue
		}
		killObj(st, obj) // strong update: previous definition is gone
		if !fromCall || ec.escaped[obj] || !types.Identical(obj.Type(), errorType) {
			continue
		}
		st[errFact{obj: obj, pos: id.Pos()}] = 1
	}
}

// killObj deletes every fact tracking obj.
func killObj(st flowState, obj types.Object) {
	for k := range st {
		if f, ok := k.(errFact); ok && f.obj == obj {
			delete(st, k)
		}
	}
}
