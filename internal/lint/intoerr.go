package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkIntoErr implements the intoerr rule: a call to an *Into/*Raw kernel
// that returns an error must not discard it. The pooled kernel layer's
// destination-passing variants report shape mismatches through that error;
// dropping it turns a wrong-shape pass into silently corrupted numbers.
// Flagged forms: the bare expression statement, `go`/`defer` of the call,
// and assignments that bind the error position to the blank identifier.
func checkIntoErr(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, idx := intoErrResult(pkg, call); idx >= 0 {
						diags = append(diags, diag(pkg, "intoerr", call.Pos(),
							"%s returns an error that is discarded; shape mismatches must propagate", name))
					}
				}
			case *ast.GoStmt:
				if name, idx := intoErrResult(pkg, n.Call); idx >= 0 {
					diags = append(diags, diag(pkg, "intoerr", n.Call.Pos(),
						"%s returns an error that is discarded; shape mismatches must propagate", name))
				}
			case *ast.DeferStmt:
				if name, idx := intoErrResult(pkg, n.Call); idx >= 0 {
					diags = append(diags, diag(pkg, "intoerr", n.Call.Pos(),
						"%s returns an error that is discarded; shape mismatches must propagate", name))
				}
			case *ast.AssignStmt:
				// Multi-value form: v, _ := FooInto(...) with the blank at
				// the error position.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, idx := intoErrResult(pkg, call)
				if idx < 0 || idx >= len(n.Lhs) {
					return true
				}
				if id, ok := n.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
					diags = append(diags, diag(pkg, "intoerr", call.Pos(),
						"%s returns an error that is assigned to _; shape mismatches must propagate", name))
				}
			}
			return true
		})
	}
	return diags
}

// intoErrResult reports the callee name and the index of the error result
// for calls to *Into/*Raw functions that return an error; idx is -1 when
// the call is not such a kernel call.
func intoErrResult(pkg *Package, call *ast.CallExpr) (string, int) {
	name := calleeName(call)
	if !strings.HasSuffix(name, "Into") && !strings.HasSuffix(name, "Raw") {
		return name, -1
	}
	sig := signatureOf(pkg, call)
	if sig == nil {
		return name, -1
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return name, i
		}
	}
	return name, -1
}
