package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one rule violation at one source position.
type Diagnostic struct {
	// Rule names the violated rule (noclock, seededrand, maporder,
	// intoerr, poolsafety, parallelsum) or "directive" for malformed
	// //pelta:allow comments.
	Rule    string
	Pos     token.Position
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// RuleNames lists every rule in the order reports group them. "directive"
// is not listed: it guards the opt-out mechanism itself and cannot be
// disabled or suppressed. The first six are the syntactic (per-statement)
// rules; shieldtaint, errpath, lockorder and clockcomplete are the
// flow-sensitive rules built on the CFG/dataflow engine (cfg.go,
// dataflow.go, summary.go).
var RuleNames = []string{
	"noclock", "seededrand", "maporder", "intoerr", "poolsafety", "parallelsum",
	"shieldtaint", "errpath", "lockorder", "clockcomplete",
}

// Default scopes: which package paths each scoped rule applies to. A scope
// entry matches a package whose import path equals it, starts with it, or
// contains it as a path-segment run (so "internal/serve" matches
// "pelta/internal/serve").
var (
	// DefaultClockScope lists the packages whose entire execution must run
	// on an injected Clock for the fake-clock reproducibility story to
	// hold: the serving scheduler, probe detector, telemetry layer, FL
	// engines and TEE simulation.
	DefaultClockScope = []string{"internal/serve", "internal/detect", "internal/obs", "internal/fl", "internal/tee"}
	// DefaultRandScope bans ambient math/rand state everywhere under
	// internal/: every experiment must thread a seeded *rand.Rand.
	DefaultRandScope = []string{"internal"}
	// DefaultIntoScope lists the packages whose *Into/*Raw kernel calls
	// must not discard error results.
	DefaultIntoScope = []string{"internal/tensor", "internal/autograd", "internal/nn", "internal/models"}
	// DefaultTaintScope lists the packages shieldtaint audits: everywhere
	// shielded buffers are produced (core, tee), recycled (via tensor
	// pools used from core/fl), or could leak (serve, fl, obs).
	DefaultTaintScope = []string{"internal/core", "internal/tee", "internal/serve", "internal/fl", "internal/obs"}
	// DefaultLockScope lists the packages lockorder audits for AB/BA
	// mutex cycles: the concurrent serving, FL-transport and detection
	// layers.
	DefaultLockScope = []string{"internal/serve", "internal/fl", "internal/detect"}
)

// Config selects rules and scopes. The zero value enables every rule with
// the default scopes.
type Config struct {
	// Rules enables a subset by name; nil enables all rules.
	Rules map[string]bool
	// ClockScope/RandScope/IntoScope override the package scopes of the
	// noclock, seededrand and intoerr rules (nil = defaults). TaintScope
	// and LockScope do the same for shieldtaint and lockorder;
	// clockcomplete shares ClockScope with noclock. The remaining rules
	// (maporder, poolsafety, parallelsum, errpath) apply to every
	// checked package.
	ClockScope []string
	RandScope  []string
	IntoScope  []string
	TaintScope []string
	LockScope  []string
}

func (c *Config) enabled(rule string) bool {
	if c == nil || c.Rules == nil {
		return true
	}
	return c.Rules[rule]
}

func (c *Config) clockScope() []string {
	if c == nil || c.ClockScope == nil {
		return DefaultClockScope
	}
	return c.ClockScope
}

func (c *Config) randScope() []string {
	if c == nil || c.RandScope == nil {
		return DefaultRandScope
	}
	return c.RandScope
}

func (c *Config) intoScope() []string {
	if c == nil || c.IntoScope == nil {
		return DefaultIntoScope
	}
	return c.IntoScope
}

func (c *Config) taintScope() []string {
	if c == nil || c.TaintScope == nil {
		return DefaultTaintScope
	}
	return c.TaintScope
}

func (c *Config) lockScope() []string {
	if c == nil || c.LockScope == nil {
		return DefaultLockScope
	}
	return c.LockScope
}

// inScope reports whether importPath falls under any scope entry.
func inScope(importPath string, scope []string) bool {
	for _, s := range scope {
		if importPath == s || strings.HasPrefix(importPath, s+"/") ||
			strings.HasSuffix(importPath, "/"+s) || strings.Contains(importPath, "/"+s+"/") {
			return true
		}
	}
	return false
}

// Check runs every enabled rule over one package. It is CheckAll
// restricted to a single-package universe: interprocedural summaries
// only cover pkg itself, so cross-package taint/lock flows need CheckAll.
func Check(pkg *Package, cfg *Config) []Diagnostic {
	return CheckAll([]*Package{pkg}, cfg)
}

// CheckAll runs every enabled rule over the loaded packages and returns
// the surviving diagnostics in the global (file, line, col, rule) order.
// Function summaries for the interprocedural rules (shieldtaint,
// lockorder) are computed bottom-up over the whole package set first, so
// a flow through a helper in another checked package is still caught.
// Diagnostics carrying a matching //pelta:allow directive are
// suppressed; malformed directives are themselves reported and never
// suppress.
func CheckAll(pkgs []*Package, cfg *Config) []Diagnostic {
	var idx *summaryIndex
	if cfg.enabled("shieldtaint") || cfg.enabled("lockorder") {
		idx = buildSummaries(pkgs)
	}

	var diags []Diagnostic
	allows := newAllowSet()
	for _, pkg := range pkgs {
		pkgAllows, dirDiags := collectDirectives(pkg)
		allows.merge(pkgAllows)
		diags = append(diags, dirDiags...)

		if cfg.enabled("noclock") && inScope(pkg.ImportPath, cfg.clockScope()) {
			diags = append(diags, checkNoClock(pkg)...)
		}
		if cfg.enabled("seededrand") && inScope(pkg.ImportPath, cfg.randScope()) {
			diags = append(diags, checkSeededRand(pkg)...)
		}
		if cfg.enabled("maporder") {
			diags = append(diags, checkMapOrder(pkg)...)
		}
		if cfg.enabled("intoerr") && inScope(pkg.ImportPath, cfg.intoScope()) {
			diags = append(diags, checkIntoErr(pkg)...)
		}
		if cfg.enabled("poolsafety") {
			diags = append(diags, checkPoolSafety(pkg)...)
		}
		if cfg.enabled("parallelsum") {
			diags = append(diags, checkParallelSum(pkg)...)
		}
		if cfg.enabled("shieldtaint") && inScope(pkg.ImportPath, cfg.taintScope()) {
			diags = append(diags, checkShieldTaint(pkg, idx)...)
		}
		if cfg.enabled("errpath") {
			diags = append(diags, checkErrPath(pkg)...)
		}
		if cfg.enabled("clockcomplete") && inScope(pkg.ImportPath, cfg.clockScope()) {
			diags = append(diags, checkClockComplete(pkg)...)
		}
	}
	if cfg.enabled("lockorder") {
		var scoped []*Package
		for _, pkg := range pkgs {
			if inScope(pkg.ImportPath, cfg.lockScope()) {
				scoped = append(scoped, pkg)
			}
		}
		diags = append(diags, checkLockOrder(scoped, idx)...)
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Rule != "directive" && allows.suppresses(d) {
			continue
		}
		kept = append(kept, d)
	}
	SortDiagnostics(kept)
	return kept
}

// SortDiagnostics orders diagnostics by (file, line, column, rule, message)
// so output is byte-stable across runs and package-load order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Rule != diags[j].Rule {
			return diags[i].Rule < diags[j].Rule
		}
		return diags[i].Message < diags[j].Message
	})
}

// diag builds a Diagnostic for a node position.
func diag(pkg *Package, rule string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Rule: rule, Pos: pkg.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
}

// pkgNameOf resolves an expression to the imported package it names, or nil.
func pkgNameOf(pkg *Package, x ast.Expr) *types.PkgName {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := pkg.Info.Uses[id].(*types.PkgName)
	return pn
}

// calleeName returns the bare name a call dials: the selector method/func
// name, or the identifier for plain calls. Empty when the callee is an
// anonymous or computed expression.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// errorType is the universe error interface, for result-tuple matching.
var errorType = types.Universe.Lookup("error").Type()

// signatureOf returns the static signature of a call's callee, following
// the Fun expression's type. Returns nil for conversions and builtins.
func signatureOf(pkg *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}
