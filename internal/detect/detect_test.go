package detect

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"pelta/internal/tensor"
)

// refNeighbors is the independent O(n²)-style reference: every pairwise
// distance computed by its own loop, fully sorted with explicit (dist,
// index) ordering, then truncated — deliberately sharing no code with
// Neighbors beyond the metric definition.
func refNeighbors(vecs [][]float32, q []float32, k int, m Metric) []Neighbor {
	type pair struct {
		i int
		d float64
	}
	var all []pair
	for i, v := range vecs {
		var dot, ss float64
		for j := range v {
			dot += float64(q[j]) * float64(v[j])
			diff := float64(q[j]) - float64(v[j])
			ss += diff * diff
		}
		d := 1 - dot
		if m == L2 {
			d = math.Sqrt(ss)
		}
		all = append(all, pair{i: i, d: d})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d != all[b].d {
			return all[a].d < all[b].d
		}
		return all[a].i < all[b].i
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]Neighbor, len(all))
	for i, p := range all {
		out[i] = Neighbor{Index: p.i, Dist: p.d}
	}
	return out
}

// TestNeighborsMatchesReference pins the brute-force index against the
// independent reference on random fingerprints, for both metrics and
// several k, including exact-duplicate vectors that force distance ties.
func TestNeighborsMatchesReference(t *testing.T) {
	rng := tensor.NewRNG(42)
	const n, dim = 60, 24
	vecs := make([][]float32, n)
	for i := range vecs {
		v := make([]float32, dim)
		var norm float64
		for j := range v {
			v[j] = float32(rng.NormFloat64())
			norm += float64(v[j]) * float64(v[j])
		}
		inv := float32(1 / math.Sqrt(norm))
		for j := range v {
			v[j] *= inv
		}
		vecs[i] = v
	}
	// Duplicates at spread-out indices: their distances to any query tie
	// exactly, so ordering must fall back to insertion order.
	vecs[7] = vecs[3]
	vecs[41] = vecs[3]
	vecs[55] = vecs[12]

	for _, m := range []Metric{Cosine, L2} {
		for _, k := range []int{1, 2, 3, 7, n, n + 5} {
			for qi := 0; qi < 10; qi++ {
				q := vecs[qi*5]
				got := Neighbors(vecs, q, k, m)
				want := refNeighbors(vecs, q, k, m)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("metric %v k=%d query %d:\n got %v\nwant %v", m, k, qi, got, want)
				}
			}
		}
	}

	// Tie ordering explicitly: querying with the duplicated vector must
	// rank indices 3, 7, 41 in insertion order at distance 0.
	nn := Neighbors(vecs, vecs[3], 3, Cosine)
	if nn[0].Index != 3 || nn[1].Index != 7 || nn[2].Index != 41 {
		t.Fatalf("tie ordering = %v, want indices 3,7,41", nn)
	}
	if KthDistance(vecs[:1], vecs[0], 2, Cosine) != math.Inf(1) {
		t.Fatal("KthDistance below k vectors must be +Inf")
	}
}

// probeTensor builds a [3,16,16] sample from a base pattern plus a
// per-pixel perturbation amplitude, mimicking one ε-ball iterate.
func probeTensor(rng *tensor.RNG, base []float32, eps float32) *tensor.Tensor {
	x := tensor.New(3, 16, 16)
	d := x.Data()
	for i := range d {
		s := float32(1)
		if rng.Intn(2) == 0 {
			s = -1
		}
		d[i] = base[i] + s*eps
	}
	return x
}

func basePattern(rng *tensor.RNG) []float32 {
	base := make([]float32, 3*16*16)
	for i := range base {
		base[i] = 0.15 + 0.7*float32(rng.Float64())
	}
	return base
}

// TestFlagDecayBoundary pins flag decay on the injected clock: a flagged
// client stays flagged strictly inside the decay window and is unflagged
// exactly at the boundary, never early.
func TestFlagDecayBoundary(t *testing.T) {
	d := New(Config{K: 2, MatchM: 3, MatchW: 8, Decay: 30 * time.Second})
	rng := tensor.NewRNG(1)
	base := basePattern(rng)
	t0 := time.Unix(5000, 0)

	var last Decision
	var lastAt time.Time
	for i := 0; i < 8; i++ {
		lastAt = t0.Add(time.Duration(i) * 10 * time.Millisecond)
		last = d.Observe("c", probeTensor(rng, base, 0.01), lastAt)
	}
	if !last.Flagged {
		t.Fatal("a sustained near-duplicate stream must flag the client")
	}
	boundary := lastAt.Add(30 * time.Second)
	if !d.Flagged("c", boundary.Add(-time.Nanosecond)) {
		t.Fatal("client unflagged before the decay boundary")
	}
	if d.Flagged("c", boundary) {
		t.Fatal("client still flagged at the decay boundary")
	}
	if d.Flagged("c", boundary.Add(time.Nanosecond)) {
		t.Fatal("client still flagged past the decay boundary")
	}
}

// TestFingerprintTTLBoundary pins fingerprint expiry: entries are searched
// strictly inside TTL and dropped exactly at the TTL boundary — and a
// fully expired cache resets the m-of-w window, so a long-idle flagged
// client is not re-flagged by its first query back.
func TestFingerprintTTLBoundary(t *testing.T) {
	d := New(Config{K: 1, MatchM: 3, MatchW: 4, TTL: time.Minute, Decay: time.Second})
	rng := tensor.NewRNG(2)
	base := basePattern(rng)
	t0 := time.Unix(9000, 0)

	x := probeTensor(rng, base, 0.01)
	d.Observe("c", x.Clone(), t0)

	// Just inside TTL: the buffered fingerprint is still a neighbor.
	dec := d.Observe("c", x.Clone(), t0.Add(time.Minute-time.Nanosecond))
	if !dec.Hit {
		t.Fatalf("entry inside TTL must still match (dist %v)", dec.Dist)
	}

	// Rebuild a fresh detector and cross the boundary exactly: the entry
	// from t0 must be gone, so the same query has no neighbors at all.
	d2 := New(Config{K: 1, MatchM: 3, MatchW: 4, TTL: time.Minute, Decay: time.Second})
	d2.Observe("c", x.Clone(), t0)
	dec = d2.Observe("c", x.Clone(), t0.Add(time.Minute))
	if dec.Hit || !math.IsInf(dec.Dist, 1) {
		t.Fatalf("entry at the TTL boundary must be expired (hit=%v dist=%v)", dec.Hit, dec.Dist)
	}

	// Flag, idle past TTL, return: the stale hit bits must not re-flag.
	d3 := New(Config{K: 1, MatchM: 2, MatchW: 4, TTL: time.Minute, Decay: time.Second})
	at := t0
	var last Decision
	for i := 0; i < 4; i++ {
		at = t0.Add(time.Duration(i) * time.Millisecond)
		last = d3.Observe("c", x.Clone(), at)
	}
	if !last.Flagged {
		t.Fatal("setup: client must be flagged")
	}
	back := at.Add(2 * time.Minute)
	dec = d3.Observe("c", probeTensor(rng, base, 0.01), back)
	if dec.Flagged || dec.Hit {
		t.Fatalf("long-idle client re-flagged on return (flagged=%v hit=%v)", dec.Flagged, dec.Hit)
	}
}

// clientTrace is one client's deterministic query stream for the
// determinism property test.
func clientTrace(seed int64, n int) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	base := basePattern(rng)
	out := make([]*tensor.Tensor, n)
	for i := range out {
		if seed%2 == 0 {
			// Probe-like: iterates around one base.
			out[i] = probeTensor(rng, base, 0.01)
		} else {
			// Benign-like: a fresh pattern every query.
			out[i] = probeTensor(rng, basePattern(rng), 0.01)
		}
	}
	return out
}

// runConcurrent replays 16 client traces from 16 goroutines (sequential
// within a client, racing across clients) and returns the final snapshot
// plus every per-client decision sequence.
func runConcurrent(t *testing.T, traces map[string][]*tensor.Tensor) ([]ClientSnapshot, map[string][]Decision) {
	t.Helper()
	d := New(Config{})
	t0 := time.Unix(7000, 0)
	decisions := make(map[string][]Decision, len(traces))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for name, trace := range traces {
		wg.Add(1)
		go func(name string, trace []*tensor.Tensor) {
			defer wg.Done()
			out := make([]Decision, len(trace))
			for i, x := range trace {
				// Fixed per-query timestamps: time is part of the replayed
				// trace, exactly as under the serving layer's fake clock.
				out[i] = d.Observe(name, x, t0.Add(time.Duration(i)*time.Millisecond))
			}
			mu.Lock()
			decisions[name] = out
			mu.Unlock()
		}(name, trace)
	}
	wg.Wait()
	return d.Snapshot(), decisions
}

// TestDetectorDeterministicAcrossRunsAndConcurrency is the bit-determinism
// property test: 16 concurrent clients (run under -race this is also the
// detector's data-race probe) replayed twice must produce deeply equal
// detector state — every buffered fingerprint bit — and identical
// per-client decision sequences, because decisions depend only on a
// client's own ordered history.
func TestDetectorDeterministicAcrossRunsAndConcurrency(t *testing.T) {
	traces := make(map[string][]*tensor.Tensor, 16)
	for c := 0; c < 16; c++ {
		traces[fmt.Sprintf("client-%02d", c)] = clientTrace(int64(c), 40)
	}
	snap1, dec1 := runConcurrent(t, traces)
	snap2, dec2 := runConcurrent(t, traces)
	if !reflect.DeepEqual(snap1, snap2) {
		t.Fatal("detector state differs between two identical runs")
	}
	if !reflect.DeepEqual(dec1, dec2) {
		t.Fatal("flag decisions differ between two identical runs")
	}
	flagged := 0
	for c := 0; c < 16; c += 2 {
		name := fmt.Sprintf("client-%02d", c)
		seq := dec1[name]
		if seq[len(seq)-1].Flagged {
			flagged++
		}
	}
	if flagged != 8 {
		t.Fatalf("%d of 8 probe-like clients flagged, want all 8", flagged)
	}
	for c := 1; c < 16; c += 2 {
		for i, dec := range dec1[fmt.Sprintf("client-%02d", c)] {
			if dec.Flagged {
				t.Fatalf("benign-like client %d flagged at query %d", c, i)
			}
		}
	}
}

// TestFingerprintInvariances pins the fingerprint contract: unit norm,
// brightness invariance, and worker-pool independence is moot because the
// pooling is plain sequential code — but shape handling must not panic on
// non-[C,H,W] inputs.
func TestFingerprintInvariances(t *testing.T) {
	rng := tensor.NewRNG(3)
	x := probeTensor(rng, basePattern(rng), 0.01)
	fp := Fingerprint(x, 8)
	var norm float64
	for _, v := range fp {
		norm += float64(v) * float64(v)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Fatalf("fingerprint norm² = %v, want 1", norm)
	}
	// A global brightness offset must not move the fingerprint (beyond
	// float noise): centering removes it.
	bright := x.Clone()
	for i, v := range bright.Data() {
		bright.Data()[i] = v + 0.08
	}
	if d := Distance(fp, Fingerprint(bright, 8), Cosine); d > 1e-6 {
		t.Fatalf("brightness offset moved the fingerprint by %v", d)
	}
	if got := Fingerprint(tensor.New(7), 4); len(got) != 16 {
		t.Fatalf("flat input fingerprint has %d dims, want 16", len(got))
	}
}
