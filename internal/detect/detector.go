package detect

import (
	"sort"
	"sync"
	"time"

	"pelta/internal/tensor"
)

// Config tunes the detector. The zero value selects the defaults, which
// are calibrated on the repo's synthetic CIFAR traffic: ε-ball attack
// iterates sit one to two orders of magnitude inside the threshold while
// same-class benign pairs (shared prototype, independent noise) stay well
// outside it.
type Config struct {
	// Grid is the fingerprint pooling grid per side (default DefaultGrid).
	Grid int
	// Metric selects cosine or L2 k-NN (default Cosine).
	Metric Metric
	// K consults the K-th nearest neighbor (default 2): one accidental
	// near-duplicate never scores a hit, a probe stream has arbitrarily
	// many.
	K int
	// Threshold is the K-th-NN distance at or below which a query counts
	// as a near-duplicate hit. Default 0.01 under Cosine, 0.14 under L2
	// (the same ball: ‖a−b‖ = √(2·0.01) on unit vectors). The default
	// sits an order of magnitude above typical ε-ball iterate distances
	// and several times below the closest same-class benign pairs of the
	// synthetic CIFAR traffic.
	Threshold float64
	// Window is the per-client fingerprint ring capacity (default 64).
	Window int
	// MatchM of the last MatchW queries must hit to flag the client
	// (defaults 3 of 8) — a burst of coincidences is forgiven, a sustained
	// near-duplicate stream is not.
	MatchM int
	MatchW int
	// TTL expires buffered fingerprints: an entry older than TTL is
	// dropped before the next search (default 60s). Expiry is evaluated
	// against the timestamps passed to Observe, never wall time.
	TTL time.Duration
	// Decay is how long a flag outlives its last flagging query (default
	// 30s). A client is unflagged exactly when now reaches the boundary.
	Decay time.Duration
	// MaxClients bounds the tracked-client table (default 4096); the
	// least-recently-seen client is evicted first.
	MaxClients int
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.Grid <= 0 {
		c.Grid = DefaultGrid
	}
	if c.K <= 0 {
		c.K = 2
	}
	if c.Threshold <= 0 {
		if c.Metric == L2 {
			c.Threshold = 0.14
		} else {
			c.Threshold = 0.01
		}
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MatchM <= 0 {
		c.MatchM = 3
	}
	if c.MatchW <= 0 {
		c.MatchW = 8
	}
	if c.MatchW < c.MatchM {
		c.MatchW = c.MatchM
	}
	if c.TTL <= 0 {
		c.TTL = 60 * time.Second
	}
	if c.Decay <= 0 {
		c.Decay = 30 * time.Second
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
	return c
}

// entry is one buffered fingerprint.
type entry struct {
	fp []float32
	at time.Time
}

// clientState is one client's ring buffer plus flagging state.
type clientState struct {
	name string
	// ring holds the last Window fingerprints, oldest first after
	// normalization by head: logical index i lives at (head+i)%cap.
	ring []entry
	head int
	// hits is the m-of-w decision window over the last MatchW queries.
	hits     []bool
	hitHead  int
	hitN     int
	hitCount int

	flaggedUntil time.Time
	lastSeen     time.Time

	observed uint64
	hitTotal uint64
	flaggedQ uint64
}

// Decision is the detector's verdict on one observed query.
type Decision struct {
	// Hit reports a near-duplicate: the K-th-NN distance over the
	// client's buffered fingerprints was at or below the threshold.
	Hit bool
	// Dist is that K-th-NN distance (+Inf with fewer than K neighbors).
	Dist float64
	// Flagged reports whether the client's flag is active after this
	// query (the query that completes m-of-w counts as flagged).
	Flagged bool
	// NewFlag marks an unflagged→flagged transition on this query.
	NewFlag bool
}

// Stats is the detector's aggregate view.
type Stats struct {
	// Clients is the tracked-client count; FlaggedClients how many of
	// them hold an active flag at the Stats timestamp.
	Clients        int
	FlaggedClients int
	// Observed / Hits / FlaggedQueries are lifetime query counters;
	// FlagEvents counts unflagged→flagged transitions.
	Observed       uint64
	Hits           uint64
	FlaggedQueries uint64
	FlagEvents     uint64
}

// Detector holds per-client similarity caches. Safe for concurrent use;
// every decision depends only on the observed client's own history.
type Detector struct {
	mu         sync.Mutex
	cfg        Config
	clients    map[string]*clientState
	observed   uint64
	hits       uint64
	flaggedQ   uint64
	flagEvents uint64
}

// New returns a Detector with cfg's unset fields defaulted.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), clients: make(map[string]*clientState)}
}

// Config returns the detector's effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// Observe fingerprints one query sample and folds it into client's
// similarity cache at time now, returning the flagging decision. now must
// be non-decreasing per client (the serving layer passes its Clock, which
// is); timestamps are never read from wall time here.
func (d *Detector) Observe(client string, x *tensor.Tensor, now time.Time) Decision {
	return d.ObserveFingerprint(client, Fingerprint(x, d.cfg.Grid), now)
}

// ObserveFingerprint is Observe for a precomputed fingerprint. The
// detector takes ownership of fp.
func (d *Detector) ObserveFingerprint(client string, fp []float32, now time.Time) Decision {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.clients[client]
	if c == nil {
		d.evictLocked(now)
		c = &clientState{
			name: client,
			ring: make([]entry, 0, d.cfg.Window),
			hits: make([]bool, d.cfg.MatchW),
		}
		d.clients[client] = c
	}
	c.lastSeen = now
	c.observed++
	d.observed++

	// Expire stale fingerprints: an entry is dropped once its age reaches
	// TTL, so a client idle past the window starts from a cold cache.
	for len(c.ring) > 0 {
		oldest := c.ring[c.head%len(c.ring)]
		if now.Sub(oldest.at) < d.cfg.TTL {
			break
		}
		c.dropOldest()
	}
	if len(c.ring) == 0 {
		// A fully expired cache also resets the m-of-w window: hit bits
		// describe queries against fingerprints that no longer exist, and
		// keeping them would re-flag a long-idle client on its first
		// innocuous query back.
		for i := range c.hits {
			c.hits[i] = false
		}
		c.hitHead, c.hitN, c.hitCount = 0, 0, 0
	}

	// K-th-NN over the buffered fingerprints, oldest first so tie order is
	// insertion order.
	vecs := make([][]float32, len(c.ring))
	for i := range vecs {
		vecs[i] = c.ring[(c.head+i)%len(c.ring)].fp
	}
	dist := KthDistance(vecs, fp, d.cfg.K, d.cfg.Metric)
	hit := dist <= d.cfg.Threshold

	// Slide the m-of-w window.
	if c.hitN == len(c.hits) {
		if c.hits[c.hitHead] {
			c.hitCount--
		}
		c.hits[c.hitHead] = hit
		c.hitHead = (c.hitHead + 1) % len(c.hits)
	} else {
		c.hits[(c.hitHead+c.hitN)%len(c.hits)] = hit
		c.hitN++
	}
	if hit {
		c.hitCount++
		c.hitTotal++
		d.hits++
	}

	dec := Decision{Hit: hit, Dist: dist}
	wasFlagged := now.Before(c.flaggedUntil)
	if c.hitCount >= d.cfg.MatchM {
		c.flaggedUntil = now.Add(d.cfg.Decay)
	}
	dec.Flagged = now.Before(c.flaggedUntil)
	dec.NewFlag = dec.Flagged && !wasFlagged
	if dec.NewFlag {
		d.flagEvents++
	}
	if dec.Flagged {
		c.flaggedQ++
		d.flaggedQ++
	}

	// Buffer the fingerprint last: a query is never its own neighbor.
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, entry{fp: fp, at: now})
	} else {
		c.ring[c.head] = entry{fp: fp, at: now}
		c.head = (c.head + 1) % len(c.ring)
	}
	return dec
}

// dropOldest removes the ring's oldest entry, preserving logical order.
func (c *clientState) dropOldest() {
	n := len(c.ring)
	h := c.head % n
	// Shift the wrapped suffix down over the vacated head slot by
	// rebuilding in logical order — rings are small (≤ Window).
	out := make([]entry, 0, cap(c.ring))
	for i := 1; i < n; i++ {
		out = append(out, c.ring[(h+i)%n])
	}
	c.ring = out
	c.head = 0
}

// evictLocked drops the least-recently-seen client when the table is at
// MaxClients (ties evict the lexicographically smallest name, so eviction
// is deterministic).
func (d *Detector) evictLocked(now time.Time) {
	if len(d.clients) < d.cfg.MaxClients {
		return
	}
	var victim *clientState
	for _, c := range d.clients {
		if victim == nil || c.lastSeen.Before(victim.lastSeen) ||
			(c.lastSeen.Equal(victim.lastSeen) && c.name < victim.name) {
			victim = c
		}
	}
	if victim != nil {
		delete(d.clients, victim.name)
	}
}

// Flagged reports whether client holds an active flag at time now.
func (d *Detector) Flagged(client string, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.clients[client]
	return c != nil && now.Before(c.flaggedUntil)
}

// Stats returns the aggregate counters; FlaggedClients is evaluated at
// now on the caller's clock.
func (d *Detector) Stats(now time.Time) Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := Stats{
		Clients:        len(d.clients),
		Observed:       d.observed,
		Hits:           d.hits,
		FlaggedQueries: d.flaggedQ,
		FlagEvents:     d.flagEvents,
	}
	for _, c := range d.clients {
		if now.Before(c.flaggedUntil) {
			s.FlaggedClients++
		}
	}
	return s
}

// ClientSnapshot is one client's full detector state in logical order —
// the bit-identity surface of the determinism property tests.
type ClientSnapshot struct {
	Client       string
	Fingerprints [][]float32 // oldest first
	At           []time.Time // per-fingerprint observation times
	Hits         []bool      // the m-of-w window, oldest first
	HitCount     int
	FlaggedUntil time.Time
	Observed     uint64
	HitTotal     uint64
	FlaggedQ     uint64
}

// Snapshot returns every client's state sorted by client name. Fingerprint
// slices are copied; two runs over the same trace must produce deeply
// equal snapshots.
func (d *Detector) Snapshot() []ClientSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.clients))
	for name := range d.clients {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ClientSnapshot, 0, len(names))
	for _, name := range names {
		c := d.clients[name]
		cs := ClientSnapshot{
			Client:       name,
			HitCount:     c.hitCount,
			FlaggedUntil: c.flaggedUntil,
			Observed:     c.observed,
			HitTotal:     c.hitTotal,
			FlaggedQ:     c.flaggedQ,
		}
		for i := range c.ring {
			e := c.ring[(c.head+i)%len(c.ring)]
			cs.Fingerprints = append(cs.Fingerprints, append([]float32(nil), e.fp...))
			cs.At = append(cs.At, e.at)
		}
		for i := 0; i < c.hitN; i++ {
			cs.Hits = append(cs.Hits, c.hits[(c.hitHead+i)%len(c.hits)])
		}
		out = append(out, cs)
	}
	return out
}
