package detect

import (
	"math"

	"pelta/internal/tensor"
)

// DefaultGrid is the fingerprint pooling grid used when Config.Grid is
// unset: 8×8 cells per channel keeps enough spatial detail to separate
// same-class dataset noise from ε-ball attack iterates while downsampling
// high-resolution inputs ~16× per side.
const DefaultGrid = 8

// Fingerprint condenses a query sample into its similarity signature: each
// channel is average-pooled onto a grid×grid cell grid, the pooled vector
// is mean-centered, then L2-normalized. Pooling averages out per-pixel
// dataset noise (i.i.d. across two benign samples) while an attack
// iterate's structured ε-ball perturbation survives, which is exactly the
// contrast the detector thresholds; centering removes global brightness
// offsets so a dark and a bright draw of one scene are no nearer than any
// other pair.
//
// x is a [C,H,W] sample; any other rank is treated as a single flat
// channel row. The result has C·grid·grid entries (cells an undersized
// image never touches stay zero and are excluded from the centering mean).
// The computation is sequential float64 accumulation in index order —
// bit-identical regardless of kernel worker pools.
func Fingerprint(x *tensor.Tensor, grid int) []float32 {
	if grid <= 0 {
		grid = DefaultGrid
	}
	c, h, w := 1, 1, x.Len()
	if x.Rank() == 3 {
		c, h, w = x.Dim(0), x.Dim(1), x.Dim(2)
	}
	sum := make([]float64, c*grid*grid)
	cnt := make([]int, c*grid*grid)
	data := x.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		cbase := ch * grid * grid
		for y := 0; y < h; y++ {
			by := y * grid / h
			row := base + y*w
			brow := cbase + by*grid
			for xx := 0; xx < w; xx++ {
				cell := brow + xx*grid/w
				sum[cell] += float64(data[row+xx])
				cnt[cell]++
			}
		}
	}
	var mean float64
	filled := 0
	for i, n := range cnt {
		if n > 0 {
			sum[i] /= float64(n)
			mean += sum[i]
			filled++
		}
	}
	if filled > 0 {
		mean /= float64(filled)
	}
	var norm float64
	for i, n := range cnt {
		if n > 0 {
			sum[i] -= mean
			norm += sum[i] * sum[i]
		}
	}
	fp := make([]float32, len(sum))
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for i := range sum {
			fp[i] = float32(sum[i] * inv)
		}
	}
	return fp
}
