// Package detect implements stateful probe detection for the serving
// layer: a per-client similarity cache over recent query fingerprints that
// catches the signature the paper's threat model leaves on the wire —
// iterative evasion attacks (PGD, APGD, SAGA, Square) submit sequences of
// near-duplicate inputs, because every iterate stays inside the same
// ε-ball around one source sample. A nearest-neighbor index over a
// client's recent queries sees that sequence even though each individual
// query is benign-looking, opening a defense axis Pelta itself does not
// cover: detecting the attack instead of only degrading its gradient.
//
// Key pieces (plain Go, no dependencies — the FAISS-style flat index of
// SNIPPETS.md Snippet 1 reduced to what serving admission needs):
//
//   - Fingerprint — a query's compact signature: the [C,H,W] sample is
//     average-pooled onto a Grid×Grid cell grid per channel, mean-centered
//     (so the dataset's brightness jitter is not a similarity signal) and
//     L2-normalized. Plain sequential loops, so fingerprints are
//     bit-identical at any kernel worker count.
//   - Neighbors / Distance — brute-force k-NN over a fingerprint set under
//     Cosine or L2, with deterministic tie ordering (equal distances rank
//     by insertion order). At ring-buffer scale (≤ a few hundred entries)
//     flat search beats any index structure and stays exactly
//     reproducible.
//   - Detector — the per-client state machine. Observe computes the query
//     fingerprint, measures the K-th-nearest-neighbor distance over the
//     client's ring buffer, records a hit when it is ≤ Threshold, and
//     flags the client when ≥ MatchM of its last MatchW queries hit.
//     Fingerprints expire after TTL and a flag decays Decay after the last
//     flagging query — both on caller-supplied timestamps (the serving
//     layer passes its injected Clock), so expiry and decay are exactly
//     testable under a fake clock and never read wall time themselves.
//
// Concurrency: a Detector is safe for concurrent use; one mutex guards the
// client table. Determinism: a client's decisions depend only on its own
// query order and the timestamps it was observed at — never on other
// clients' traffic, goroutine scheduling, or worker counts — so a seeded
// trace replays bit-identically (pinned by the property tests).
//
// The serving integration lives in internal/serve: Config.Detect runs a
// Detector inside Submit admission as a third signal next to the token
// buckets, with a configurable action (log, deprioritize, shed).
package detect
