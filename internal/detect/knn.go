package detect

import (
	"fmt"
	"math"
	"sort"
)

// Metric selects the k-NN distance.
type Metric int

const (
	// Cosine is cosine distance, 1 − a·b. Fingerprints are L2-normalized,
	// so it ranges [0,2] and relates to L2 by ‖a−b‖² = 2·(1 − a·b).
	Cosine Metric = iota
	// L2 is plain Euclidean distance.
	L2
)

// String renders the metric's flag spelling.
func (m Metric) String() string {
	if m == L2 {
		return "l2"
	}
	return "cosine"
}

// ParseMetric parses "cosine" or "l2".
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "cosine":
		return Cosine, nil
	case "l2":
		return L2, nil
	}
	return 0, fmt.Errorf("detect: metric %q, want cosine or l2", s)
}

// Distance returns the metric distance between two equal-length vectors.
// Accumulation is float64 in index order, so it is bit-deterministic.
func Distance(a, b []float32, m Metric) float64 {
	switch m {
	case L2:
		var s float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			s += d * d
		}
		return math.Sqrt(s)
	default:
		var dot float64
		for i := range a {
			dot += float64(a[i]) * float64(b[i])
		}
		return 1 - dot
	}
}

// Neighbor is one k-NN result: the index of the matched vector and its
// distance to the query.
type Neighbor struct {
	Index int
	Dist  float64
}

// Neighbors returns the k nearest vectors to q under m, sorted by distance
// ascending. Ties rank by lower index (insertion order in the detector's
// ring buffer), so results are fully deterministic even on duplicate
// fingerprints. Fewer than k vectors return them all.
func Neighbors(vecs [][]float32, q []float32, k int, m Metric) []Neighbor {
	if k <= 0 || len(vecs) == 0 {
		return nil
	}
	out := make([]Neighbor, len(vecs))
	for i, v := range vecs {
		out[i] = Neighbor{Index: i, Dist: Distance(q, v, m)}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Index < out[b].Index
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// KthDistance returns the K-th-nearest-neighbor distance of q over vecs
// (1-based: k=1 is the nearest). With fewer than k vectors it returns
// +Inf — a query with no history can never look like a duplicate.
func KthDistance(vecs [][]float32, q []float32, k int, m Metric) float64 {
	nn := Neighbors(vecs, q, k, m)
	if len(nn) < k {
		return math.Inf(1)
	}
	return nn[k-1].Dist
}
