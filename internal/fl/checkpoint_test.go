package fl

import (
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"pelta/internal/models"
	"pelta/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vit.ckpt")

	src := newTestModel(1)
	if err := SaveModel(path, src); err != nil {
		t.Fatal(err)
	}
	dst := newTestModel(2)
	if err := LoadModel(path, dst); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(3).Uniform(0, 1, 3, 3, 8, 8)
	ps, pd := models.Predict(src, x), models.Predict(dst, x)
	for i := range ps {
		if ps[i] != pd[i] {
			t.Fatal("restored model behaves differently")
		}
	}
}

// TestCheckpointMetaStamp: a stamped checkpoint must round-trip its
// provenance alongside bit-identical weights.
func TestCheckpointMetaStamp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stamped.ckpt")
	src := Snapshot(newTestModel(5))
	meta := CheckpointMeta{Aggregator: DefenseMultiKrum, Rounds: 7, Seed: 41}
	if err := SaveCheckpoint(path, src, meta); err != nil {
		t.Fatal(err)
	}
	w, got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("meta = %+v, want %+v", got, meta)
	}
	for i := range src.Data {
		for j := range src.Data[i] {
			if w.Data[i][j] != src.Data[i][j] {
				t.Fatal("stamped checkpoint changed the weights")
			}
		}
	}
}

// TestCheckpointLegacyFormat: bare gob-encoded Weights written before the
// provenance stamp must still load, with a zero meta.
func TestCheckpointLegacyFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	src := Snapshot(newTestModel(6))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(src); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, meta, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta != (CheckpointMeta{}) {
		t.Fatalf("legacy checkpoint grew a meta: %+v", meta)
	}
	if len(w.Data) != len(src.Data) || w.Data[0][0] != src.Data[0][0] {
		t.Fatal("legacy weights mangled")
	}
}

func TestLoadWeightsMissingFile(t *testing.T) {
	if _, err := LoadWeights(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing checkpoint must fail")
	}
}

func TestLoadModelArchitectureMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vit.ckpt")
	if err := SaveModel(path, newTestModel(1)); err != nil {
		t.Fatal(err)
	}
	other := models.NewViT(models.SmallViT("vit-other", 7, 8, 4), tensor.NewRNG(4))
	if err := LoadModel(path, other); err == nil {
		t.Fatal("architecture mismatch must fail")
	}
}
