package fl

import (
	"path/filepath"
	"testing"

	"pelta/internal/models"
	"pelta/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vit.ckpt")

	src := newTestModel(1)
	if err := SaveModel(path, src); err != nil {
		t.Fatal(err)
	}
	dst := newTestModel(2)
	if err := LoadModel(path, dst); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(3).Uniform(0, 1, 3, 3, 8, 8)
	ps, pd := models.Predict(src, x), models.Predict(dst, x)
	for i := range ps {
		if ps[i] != pd[i] {
			t.Fatal("restored model behaves differently")
		}
	}
}

func TestLoadWeightsMissingFile(t *testing.T) {
	if _, err := LoadWeights(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing checkpoint must fail")
	}
}

func TestLoadModelArchitectureMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vit.ckpt")
	if err := SaveModel(path, newTestModel(1)); err != nil {
		t.Fatal(err)
	}
	other := models.NewViT(models.SmallViT("vit-other", 7, 8, 4), tensor.NewRNG(4))
	if err := LoadModel(path, other); err == nil {
		t.Fatal("architecture mismatch must fail")
	}
}
