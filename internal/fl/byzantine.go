package fl

import (
	"fmt"

	"pelta/internal/dataset"
	"pelta/internal/models"
)

// Poisoning strategy names accepted by the sweep's poison axis (cmd/flsim
// -sweep.poisons). Label-flip is the adversarial-example poisoner of
// PoisoningClient; the other two are the update-space Byzantine attacks the
// robust aggregators exist to stop.
const (
	PoisonLabelFlip        = "label-flip"
	PoisonSignFlip         = "sign-flip"
	PoisonModelReplacement = "model-replacement"
)

// PoisonStrategies lists the canonical poison strategy names.
func PoisonStrategies() []string {
	return []string{PoisonLabelFlip, PoisonSignFlip, PoisonModelReplacement}
}

// ValidPoison rejects unknown poison strategy names ("" and "none" mean no
// poisoning and are accepted).
func ValidPoison(name string) error {
	switch name {
	case "", "none", PoisonLabelFlip, PoisonSignFlip, PoisonModelReplacement:
		return nil
	}
	return fmt.Errorf("fl: unknown poison strategy %q (want %s, %s or %s)",
		name, PoisonLabelFlip, PoisonSignFlip, PoisonModelReplacement)
}

// boostDelta returns prev + scale·(w - prev) — the update-space arithmetic
// shared by the Byzantine clients (scale < 0 reverses the update, scale > 1
// boosts it).
func boostDelta(prev, w Weights, scale float64) Weights {
	out := emptyLike(prev)
	for i := range out.Data {
		dst, p, v := out.Data[i], prev.Data[i], w.Data[i]
		for j := range dst {
			dst[j] = p[j] + float32(scale*(float64(v[j])-float64(p[j])))
		}
	}
	return out
}

// SignFlipClient trains honestly, then reverses its update: it reports
// prev - Gamma·(local - prev), pushing the aggregate up the loss surface it
// just descended. Under plain FedAvg a single sign-flipper cancels an
// honest client of equal sample count; robust rules spot the reversed
// coordinates as outliers.
type SignFlipClient struct {
	Honest *HonestClient
	// Gamma scales the reversed update (default 1: an exact mirror).
	Gamma float64
}

var _ Client = (*SignFlipClient)(nil)

// NewSignFlipClient builds a sign-flipping poisoner over shard.
func NewSignFlipClient(name string, m models.Model, shard *dataset.Dataset, tc models.TrainConfig) *SignFlipClient {
	return &SignFlipClient{Honest: NewHonestClient(name, m, shard, tc), Gamma: 1}
}

// ID implements Client.
func (c *SignFlipClient) ID() string { return c.Honest.Name }

// Update implements Client.
func (c *SignFlipClient) Update(req UpdateRequest) (UpdateResponse, error) {
	resp, err := c.Honest.Update(req)
	if err != nil {
		return resp, err
	}
	gamma := c.Gamma
	if gamma <= 0 {
		gamma = 1
	}
	resp.Weights = boostDelta(req.Weights, resp.Weights, -gamma)
	resp.Note = fmt.Sprintf("sign-flip poison (γ=%g)", gamma)
	return resp, nil
}

// ModelReplacementClient implements scaled model replacement (the "boosted"
// backdoor-insertion attack of Bagdasaryan et al.): it trains a malicious
// target on a label-rotated copy of its shard, then reports
// prev + Boost·(target - prev). With Boost ≈ fleet size, a plain weighted
// mean lands the global model on the malicious target in one round —
// exactly the update norm-clipping and selection defenses bound.
type ModelReplacementClient struct {
	Honest *HonestClient
	// Boost scales the malicious delta (default: the fleet size it was
	// built with, the classic full-replacement setting).
	Boost float64

	flipped *dataset.Dataset
}

var _ Client = (*ModelReplacementClient)(nil)

// NewModelReplacementClient builds a model-replacement poisoner over shard,
// boosted to replace the mean of a fleet-sized federation.
func NewModelReplacementClient(name string, m models.Model, shard *dataset.Dataset, tc models.TrainConfig, fleet int) *ModelReplacementClient {
	if fleet < 1 {
		fleet = 1
	}
	return &ModelReplacementClient{
		Honest: NewHonestClient(name, m, shard, tc),
		Boost:  float64(fleet),
	}
}

// ID implements Client.
func (c *ModelReplacementClient) ID() string { return c.Honest.Name }

// Update implements Client: train toward the label-rotated shard, then
// boost the resulting delta so the aggregate mean is replaced by it.
func (c *ModelReplacementClient) Update(req UpdateRequest) (UpdateResponse, error) {
	if err := Apply(c.Honest.Model, req.Weights); err != nil {
		return UpdateResponse{}, fmt.Errorf("fl: replacer %s applying weights: %w", c.ID(), err)
	}
	if c.flipped == nil {
		// The malicious objective: every label rotated by one class, built
		// once and trained toward every round.
		sh := c.Honest.Shard
		c.flipped = &dataset.Dataset{
			Name:    sh.Name + "/replaced",
			Classes: sh.Classes,
			HW:      sh.HW,
			X:       sh.X,
			Y:       make([]int, len(sh.Y)),
		}
		for i, y := range sh.Y {
			c.flipped.Y[i] = (y + 1) % sh.Classes
		}
	}
	now := nowOr(c.Honest.Now)
	t0 := now()
	if _, err := models.Train(c.Honest.Model, c.flipped.X, c.flipped.Y, c.Honest.Train); err != nil {
		return UpdateResponse{}, fmt.Errorf("fl: poisoner %s training: %w", c.ID(), err)
	}
	boost := c.Boost
	if boost < 1 {
		boost = 1
	}
	return UpdateResponse{
		ClientID: c.ID(),
		Weights:  boostDelta(req.Weights, Snapshot(c.Honest.Model), boost),
		Samples:  c.flipped.Len(),
		Note:     fmt.Sprintf("model-replacement poison (boost=%g)", boost),
		TrainNS:  now().Sub(t0).Nanoseconds(),
	}, nil
}
