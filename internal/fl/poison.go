package fl

import (
	"fmt"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/models"
)

// PoisoningClient realizes the §I poisoning scenario: a malicious client
// crafts adversarial examples against its local copy of the broadcast model
// and trains on them with corrupted labels, sending the poisoned update to
// the server ("malicious clients can have the model purposefully and
// repeatedly misclassify their newfound adversarial examples to severely
// undermine the quality of the aggregated updates" [16]).
//
// Pelta mitigates the attack at its root: with the shield on the device,
// the crafted samples degenerate to noise, and the poisoned update carries
// far less targeted damage.
type PoisoningClient struct {
	Honest *HonestClient
	// Probe crafts the poison samples each round.
	Probe attack.Attack
	// PoisonFrac is the fraction of the local shard replaced by poisoned
	// samples each round.
	PoisonFrac float64
	// Shield enables Pelta on this device.
	Shield     bool
	ShieldSeed int64

	// PoisonedPerRound records how many crafted samples actually fooled
	// the local model (effective poison strength).
	PoisonedPerRound []int

	// po caches the gradient oracle across rounds.
	po *probeOracle
}

var _ Client = (*PoisoningClient)(nil)

// NewPoisoningClient builds a poisoner over shard.
func NewPoisoningClient(name string, m models.Model, shard *dataset.Dataset, tc models.TrainConfig, probe attack.Attack, poisonFrac float64, shield bool) *PoisoningClient {
	return &PoisoningClient{
		Honest:     NewHonestClient(name, m, shard, tc),
		Probe:      probe,
		PoisonFrac: poisonFrac,
		Shield:     shield,
		ShieldSeed: 1,
	}
}

// ID implements Client.
func (c *PoisoningClient) ID() string { return c.Honest.Name }

// Update implements Client: craft adversarial samples, mislabel them with
// the fooled prediction, train on the poisoned shard, and return the update.
func (c *PoisoningClient) Update(req UpdateRequest) (UpdateResponse, error) {
	if err := Apply(c.Honest.Model, req.Weights); err != nil {
		return UpdateResponse{}, fmt.Errorf("fl: poisoner %s applying weights: %w", c.ID(), err)
	}
	poisoned, effective, err := c.poisonShard(req.Round)
	if err != nil {
		return UpdateResponse{}, fmt.Errorf("fl: poisoner %s crafting round %d: %w", c.ID(), req.Round, err)
	}
	c.PoisonedPerRound = append(c.PoisonedPerRound, effective)
	now := nowOr(c.Honest.Now)
	t0 := now()
	if _, err := models.Train(c.Honest.Model, poisoned.X, poisoned.Y, c.Honest.Train); err != nil {
		return UpdateResponse{}, fmt.Errorf("fl: poisoner %s training: %w", c.ID(), err)
	}
	return UpdateResponse{
		ClientID: c.ID(),
		Weights:  Snapshot(c.Honest.Model),
		Samples:  poisoned.Len(),
		Note:     fmt.Sprintf("poisoned %d samples effectively (shielded=%v)", effective, c.Shield),
		TrainNS:  now().Sub(t0).Nanoseconds(),
	}, nil
}

// poisonShard returns the shard with the first PoisonFrac samples replaced
// by adversarial versions labeled as the local model's fooled prediction.
// It also reports how many poison samples genuinely fooled the model.
func (c *PoisoningClient) poisonShard(round int) (*dataset.Dataset, int, error) {
	shard := c.Honest.Shard
	nPoison := int(c.PoisonFrac * float64(shard.Len()))
	if nPoison == 0 {
		return shard, 0, nil
	}
	idx := make([]int, nPoison)
	for i := range idx {
		idx[i] = i
	}
	x, y, err := models.Batch(shard.X, shard.Y, idx)
	if err != nil {
		return nil, 0, fmt.Errorf("fl: batching poison candidates: %w", err)
	}

	if c.po == nil {
		c.po = &probeOracle{model: c.Honest.Model, shield: c.Shield, seed: c.ShieldSeed, stride: 7919}
	}
	o, err := c.po.oracle(round)
	if err != nil {
		return nil, 0, err
	}
	xadv, err := c.Probe.Perturb(o, x, y)
	if err != nil {
		return nil, 0, err
	}
	pred0 := models.Predict(c.Honest.Model, x)
	pred := models.Predict(c.Honest.Model, xadv)

	out := &dataset.Dataset{
		Name:    shard.Name + "/poisoned",
		Classes: shard.Classes,
		HW:      shard.HW,
		X:       shard.X.Clone(),
		Y:       append([]int(nil), shard.Y...),
	}
	effective := 0
	for i := 0; i < nPoison; i++ {
		out.X.Slice(i).CopyFrom(xadv.Slice(i))
		if pred[i] != y[i] {
			// The crafted sample is misclassified: poison it with the
			// wrong label to entrench the misclassification.
			out.Y[i] = pred[i]
		} else {
			// Crafting failed (e.g. under Pelta): mislabel arbitrarily;
			// this is plain label noise, which FedAvg dilutes.
			out.Y[i] = (y[i] + 1) % shard.Classes
		}
		// "Effective" poison is a genuine evasion: the clean sample was
		// classified correctly and the crafted one no longer is.
		if pred0[i] == y[i] && pred[i] != y[i] {
			effective++
		}
	}
	return out, effective, nil
}
