package fl

import (
	"pelta/internal/obs"
)

// RoundSpans extracts the per-round phase spans of a federation run, ready
// for NDJSON export (obs.WriteRoundSpans) or summarization
// (eval.SummarizeRoundSpans).
func RoundSpans(results []RoundResult) []obs.RoundSpan {
	spans := make([]obs.RoundSpan, len(results))
	for i, r := range results {
		spans[i] = r.Timing
	}
	return spans
}

// RoundMetrics renders a run's aggregate round timings as registry metrics
// — the fl slice of the unified telemetry exposition: total rounds, total
// merged client updates, and cumulative nanoseconds per round phase.
func RoundMetrics(results []RoundResult) []obs.Metric {
	var clients int
	var phases [4]int64
	for _, r := range results {
		clients += r.Timing.Clients
		for i, ns := range r.Timing.Phases() {
			phases[i] += ns
		}
	}
	out := []obs.Metric{
		obs.Counter("pelta_fl_rounds_total", "Federation rounds aggregated.", float64(len(results)), nil),
		obs.Counter("pelta_fl_client_updates_total", "Client updates merged across all rounds.", float64(clients), nil),
	}
	for i, name := range obs.RoundPhaseNames {
		out = append(out, obs.Counter("pelta_fl_phase_ns_total",
			"Cumulative nanoseconds spent per federation round phase.",
			float64(phases[i]), map[string]string{"phase": name}))
	}
	return out
}
