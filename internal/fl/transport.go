package fl

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Conn is the server's handle to one federated client.
type Conn interface {
	// Update performs one round-trip: broadcast weights, receive the local
	// update.
	Update(req UpdateRequest) (UpdateResponse, error)
	// ID identifies the remote client.
	ID() string
	Close() error
}

// localConn attaches an in-process client (the common simulation path).
type localConn struct {
	c Client
}

// Local wraps a client for in-process federation.
func Local(c Client) Conn { return &localConn{c: c} }

// Update implements Conn.
func (l *localConn) Update(req UpdateRequest) (UpdateResponse, error) { return l.c.Update(req) }

// ID implements Conn.
func (l *localConn) ID() string { return l.c.ID() }

// Close implements Conn.
func (l *localConn) Close() error { return nil }

// rpcEnvelope frames one TCP request or response.
type rpcEnvelope struct {
	Req  *UpdateRequest
	Resp *UpdateResponse
	Err  string
}

// ServeClient exposes a client on a listener. It handles connections
// sequentially (one FL server talks to each client) until the listener is
// closed, then returns net.ErrClosed.
func ServeClient(lis net.Listener, c Client) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		if err := serveConn(conn, c); err != nil && !errors.Is(err, net.ErrClosed) {
			// Connection-level failure: keep serving future connections.
			continue
		}
	}
}

func serveConn(conn net.Conn, c Client) error {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var env rpcEnvelope
		if err := dec.Decode(&env); err != nil {
			return err
		}
		if env.Req == nil {
			if err := enc.Encode(rpcEnvelope{Err: "missing request"}); err != nil {
				return err
			}
			continue
		}
		resp, err := c.Update(*env.Req)
		out := rpcEnvelope{Resp: &resp}
		if err != nil {
			out = rpcEnvelope{Err: err.Error()}
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
}

// tcpConn is the server-side handle to a TCP client.
type tcpConn struct {
	mu   sync.Mutex
	id   string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a client served by ServeClient.
func Dial(addr, id string) (Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fl: dialing client %s at %s: %w", id, addr, err)
	}
	return &tcpConn{id: id, conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Update implements Conn.
func (t *tcpConn) Update(req UpdateRequest) (UpdateResponse, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.enc.Encode(rpcEnvelope{Req: &req}); err != nil {
		return UpdateResponse{}, fmt.Errorf("fl: sending round %d to %s: %w", req.Round, t.id, err)
	}
	var env rpcEnvelope
	if err := t.dec.Decode(&env); err != nil {
		return UpdateResponse{}, fmt.Errorf("fl: receiving update from %s: %w", t.id, err)
	}
	if env.Err != "" {
		return UpdateResponse{}, fmt.Errorf("fl: client %s: %s", t.id, env.Err)
	}
	if env.Resp == nil {
		return UpdateResponse{}, fmt.Errorf("fl: client %s returned empty response", t.id)
	}
	return *env.Resp, nil
}

// ID implements Conn.
func (t *tcpConn) ID() string { return t.id }

// Close implements Conn.
func (t *tcpConn) Close() error { return t.conn.Close() }
