package fl

import "time"

// nowOr returns the injected clock when non-nil, else the process wall
// clock. It is this package's single sanctioned wall-clock edge: every
// round-phase span, client TrainNS measurement and sweep-cell timing flows
// through here, so injecting one function (the engines' and clients' Now
// fields) makes a whole federation's telemetry deterministic. peltalint's
// noclock rule keeps any other time.Now out of the package.
func nowOr(injected func() time.Time) func() time.Time {
	if injected != nil {
		return injected
	}
	//pelta:allow noclock the one wall-clock default for all of internal/fl; every caller injects via a Now field
	return time.Now
}
