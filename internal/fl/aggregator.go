package fl

import (
	"fmt"
	"math"
	"sort"
)

// Rejection reasons returned by BufferedAggregator.Offer.
const (
	RejectDuplicate = "duplicate"
	RejectStale     = "stale"
)

// pendingUpdate is one buffered client update awaiting aggregation.
type pendingUpdate struct {
	client  int
	version int // global-model version the client trained on
	resp    UpdateResponse
}

// AggregatorStats counts what the aggregator did with offered updates.
type AggregatorStats struct {
	// Merged counts updates folded into the global model; StaleMerged is
	// the subset that arrived late (staleness ≥ 1) and was discounted.
	Merged      int
	StaleMerged int
	// Duplicates and Rejected count updates refused on Offer (retransmits
	// and beyond-horizon stragglers respectively).
	Duplicates int
	Rejected   int
}

// BufferedAggregator merges client updates as they arrive instead of
// barriering a round on the slowest client. Updates are buffered with the
// model version they were trained on; once Quorum updates are pending the
// round closes and Drain folds them into one staleness-discounted FedAvg.
// Retransmitted updates (same client, same trained-on version) and updates
// older than MaxStaleness versions are refused at Offer time.
//
// The aggregator is not safe for concurrent use; the AsyncServer event loop
// is its only caller.
type BufferedAggregator struct {
	// Quorum is the number of pending updates that closes a round.
	Quorum int
	// MaxStaleness is the oldest trained-on version (relative to the
	// current one) still worth merging; older offers are rejected.
	MaxStaleness int
	// Lambda is the staleness-decay exponent: an update trained s versions
	// ago contributes with its sample count discounted by (1+s)^-Lambda.
	// Lambda = 0 treats stale updates at full weight.
	Lambda float64
	// Rule is the aggregation defense applied at Drain (nil = the plain
	// FedAvg/StalenessFedAvg pair, bit-identical to the pre-defense engine).
	Rule Aggregator

	pending  []pendingUpdate
	lastSeen map[int]int // client index → latest trained-on version accepted
	stats    AggregatorStats
}

// NewBufferedAggregator builds an aggregator closing rounds at quorum
// updates and discarding updates staler than maxStaleness versions.
func NewBufferedAggregator(quorum, maxStaleness int, lambda float64) *BufferedAggregator {
	if quorum < 1 {
		quorum = 1
	}
	return &BufferedAggregator{
		Quorum:       quorum,
		MaxStaleness: maxStaleness,
		Lambda:       lambda,
		lastSeen:     make(map[int]int),
	}
}

// Offer presents one update from client (trained on model version) while
// the global model is at current. It reports whether the update was
// buffered and, if not, the rejection reason.
func (a *BufferedAggregator) Offer(client int, resp UpdateResponse, version, current int) (bool, string) {
	if last, ok := a.lastSeen[client]; ok && version <= last {
		a.stats.Duplicates++
		return false, RejectDuplicate
	}
	if current-version > a.MaxStaleness {
		a.stats.Rejected++
		return false, RejectStale
	}
	a.lastSeen[client] = version
	a.pending = append(a.pending, pendingUpdate{client: client, version: version, resp: resp})
	return true, ""
}

// Ready reports whether enough updates are buffered to close a round.
func (a *BufferedAggregator) Ready() bool { return len(a.pending) >= a.Quorum }

// Pending returns the number of buffered updates.
func (a *BufferedAggregator) Pending() int { return len(a.pending) }

// Stats returns the lifetime counters.
func (a *BufferedAggregator) Stats() AggregatorStats { return a.stats }

// Drain closes the round: it merges every pending update into one weight
// snapshot and clears the buffer, returning the merged updates for
// telemetry. Merge order is ascending client index regardless of arrival
// order, and an all-fresh buffer goes through the exact FedAvg arithmetic
// of the synchronous server — the two properties behind the engine's
// bit-reproducible deterministic mode. Late updates are discounted by
// (1+staleness)^-Lambda, staleness measured against current. prev is the
// version-current broadcast snapshot, which delta-space defenses (Rule)
// need; it is unused when Rule is nil.
func (a *BufferedAggregator) Drain(current int, prev Weights) (Weights, []pendingUpdate, error) {
	if len(a.pending) == 0 {
		return Weights{}, nil, fmt.Errorf("fl: draining empty aggregator")
	}
	merged := a.pending
	a.pending = nil
	sort.Slice(merged, func(i, j int) bool { return merged[i].client < merged[j].client })

	updates := make([]Weights, len(merged))
	counts := make([]int, len(merged))
	staleness := make([]int, len(merged))
	fresh := true
	for i, p := range merged {
		updates[i] = p.resp.Weights
		counts[i] = p.resp.Samples
		staleness[i] = current - p.version
		if staleness[i] > 0 {
			fresh = false
			a.stats.StaleMerged++
		}
	}
	a.stats.Merged += len(merged)

	var w Weights
	var err error
	switch {
	case a.Rule != nil:
		w, err = a.Rule.Aggregate(prev, updates, counts, staleness, a.Lambda)
	case fresh:
		w, err = FedAvg(updates, counts)
	default:
		w, err = StalenessFedAvg(updates, counts, staleness, a.Lambda)
	}
	if err != nil {
		return Weights{}, nil, err
	}
	return w, merged, nil
}

// StalenessFedAvg is FedAvg with each update's sample count discounted by
// (1+staleness)^-lambda — the standard async-FL rule (cf. FedAsync/FedBuff)
// that keeps straggler updates useful without letting them drag the global
// model toward an old version.
func StalenessFedAvg(updates []Weights, counts, staleness []int, lambda float64) (Weights, error) {
	if len(updates) == 0 {
		return Weights{}, fmt.Errorf("fl: StalenessFedAvg with no updates")
	}
	if len(updates) != len(counts) || len(updates) != len(staleness) {
		return Weights{}, fmt.Errorf("fl: %d updates but %d counts, %d staleness", len(updates), len(counts), len(staleness))
	}
	weights := make([]float64, len(updates))
	total := 0.0
	for i, c := range counts {
		if c <= 0 {
			return Weights{}, fmt.Errorf("fl: non-positive sample count %d", c)
		}
		if staleness[i] < 0 {
			return Weights{}, fmt.Errorf("fl: negative staleness %d", staleness[i])
		}
		weights[i] = float64(c) * math.Pow(1+float64(staleness[i]), -lambda)
		total += weights[i]
	}
	ref := updates[0]
	out := Weights{
		Names:  append([]string(nil), ref.Names...),
		Shapes: make([][]int, len(ref.Shapes)),
		Data:   make([][]float32, len(ref.Data)),
	}
	for i := range ref.Data {
		out.Shapes[i] = append([]int(nil), ref.Shapes[i]...)
		out.Data[i] = make([]float32, len(ref.Data[i]))
	}
	for u, upd := range updates {
		if len(upd.Data) != len(ref.Data) {
			return Weights{}, fmt.Errorf("fl: update %d has %d tensors, expected %d", u, len(upd.Data), len(ref.Data))
		}
		frac := float32(weights[u] / total)
		for i := range upd.Data {
			if len(upd.Data[i]) != len(out.Data[i]) {
				return Weights{}, fmt.Errorf("fl: update %d tensor %q size mismatch", u, ref.Names[i])
			}
			dst := out.Data[i]
			for j, v := range upd.Data[i] {
				dst[j] += frac * v
			}
		}
	}
	return out, nil
}
