package fl

import (
	"pelta/internal/attack"
	"pelta/internal/core"
	"pelta/internal/models"
)

// probeOracle owns the attacker-side gradient oracle of a malicious client
// and reuses it across federation rounds. The oracles wrap the client's
// local model by reference, so weight updates applied between rounds are
// visible without rebuilding anything; under the shield the upsampling
// kernel is reseeded per round (stride keeps seeds distinct per client
// role) so every probe starts with a fresh blind prior, exactly as a
// freshly built oracle would. Reuse keeps the shielded model's enclave and
// the pooled graph arenas warm across rounds — the per-round oracle setup
// cost disappears, which matters when many compromised clients probe
// concurrently in a sweep.
type probeOracle struct {
	model  models.Model
	shield bool
	seed   int64
	stride int64

	clear *attack.ClearOracle
	so    *attack.ShieldedOracle
}

// oracle returns the (cached) oracle for the given round.
func (p *probeOracle) oracle(round int) (attack.Oracle, error) {
	if !p.shield {
		if p.clear == nil {
			p.clear = attack.NewClearOracle(p.model)
		}
		return p.clear, nil
	}
	seed := p.seed + int64(round)*p.stride
	if p.so == nil {
		sm, err := core.NewShieldedModel(p.model, 0)
		if err != nil {
			return nil, err
		}
		// The oracle's query graphs borrow from a pool and Release them
		// per pass, but buffers scrubbed into the enclave are withdrawn
		// from the pool's ownership at Scrub time and never recycled —
		// pinned by core.TestReleaseNeverRecyclesShieldedBuffers.
		//pelta:allow shieldtaint Graph.Release never recycles scrubbed enclave buffers
		so, err := attack.NewShieldedOracle(sm, seed)
		if err != nil {
			return nil, err
		}
		p.so = so
		return p.so, nil
	}
	if err := p.so.Reseed(seed); err != nil {
		return nil, err
	}
	return p.so, nil
}
