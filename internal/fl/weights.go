package fl

import (
	"fmt"

	"pelta/internal/models"
)

// Weights is an ordered, serializable snapshot of model parameters — the
// only thing that ever leaves a device in FL (user data stays local).
type Weights struct {
	Names  []string
	Shapes [][]int
	Data   [][]float32
}

// Snapshot copies m's parameters into a Weights value.
func Snapshot(m models.Model) Weights {
	params := m.Params()
	w := Weights{
		Names:  make([]string, len(params)),
		Shapes: make([][]int, len(params)),
		Data:   make([][]float32, len(params)),
	}
	for i, p := range params {
		w.Names[i] = p.Name
		w.Shapes[i] = append([]int(nil), p.Data.Shape()...)
		w.Data[i] = append([]float32(nil), p.Data.Data()...)
	}
	return w
}

// Apply overwrites m's parameters with w. Names and shapes must match the
// model's parameter list exactly.
func Apply(m models.Model, w Weights) error {
	params := m.Params()
	if len(params) != len(w.Data) {
		return fmt.Errorf("fl: weight count %d does not match model's %d params", len(w.Data), len(params))
	}
	for i, p := range params {
		if p.Name != w.Names[i] {
			return fmt.Errorf("fl: weight %d is %q, model expects %q", i, w.Names[i], p.Name)
		}
		if len(w.Data[i]) != p.Data.Len() {
			return fmt.Errorf("fl: weight %q has %d values, model expects %d", p.Name, len(w.Data[i]), p.Data.Len())
		}
		copy(p.Data.Data(), w.Data[i])
	}
	return nil
}

// FedAvg computes the sample-count-weighted average of client updates — the
// aggregation rule of McMahan et al. used by the paper's FL scheme.
func FedAvg(updates []Weights, counts []int) (Weights, error) {
	if len(updates) == 0 {
		return Weights{}, fmt.Errorf("fl: FedAvg with no updates")
	}
	if len(updates) != len(counts) {
		return Weights{}, fmt.Errorf("fl: %d updates but %d counts", len(updates), len(counts))
	}
	total := 0
	for _, c := range counts {
		if c <= 0 {
			return Weights{}, fmt.Errorf("fl: non-positive sample count %d", c)
		}
		total += c
	}
	ref := updates[0]
	out := Weights{
		Names:  append([]string(nil), ref.Names...),
		Shapes: make([][]int, len(ref.Shapes)),
		Data:   make([][]float32, len(ref.Data)),
	}
	for i := range ref.Data {
		out.Shapes[i] = append([]int(nil), ref.Shapes[i]...)
		out.Data[i] = make([]float32, len(ref.Data[i]))
	}
	for u, upd := range updates {
		if len(upd.Data) != len(ref.Data) {
			return Weights{}, fmt.Errorf("fl: update %d has %d tensors, expected %d", u, len(upd.Data), len(ref.Data))
		}
		frac := float32(counts[u]) / float32(total)
		for i := range upd.Data {
			if len(upd.Data[i]) != len(out.Data[i]) {
				return Weights{}, fmt.Errorf("fl: update %d tensor %q size mismatch", u, ref.Names[i])
			}
			dst := out.Data[i]
			for j, v := range upd.Data[i] {
				dst[j] += frac * v
			}
		}
	}
	return out, nil
}
