package fl

import (
	"net"
	"strings"
	"testing"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

func flDataset(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	cfg := dataset.SynthCIFAR10(8, 51)
	cfg.Classes = 4
	cfg.TrainN, cfg.ValN = 240, 80
	return generate2(cfg)
}

func generate2(cfg dataset.Config) (*dataset.Dataset, *dataset.Dataset) {
	train, val := dataset.Generate(cfg)
	return train, val
}

func newTestModel(seed int64) models.Model {
	return models.NewViT(models.SmallViT("vit-fl", 4, 8, 4), tensor.NewRNG(seed))
}

func TestSnapshotApplyRoundTrip(t *testing.T) {
	m1 := newTestModel(1)
	m2 := newTestModel(2)
	w := Snapshot(m1)
	if err := Apply(m2, w); err != nil {
		t.Fatal(err)
	}
	// After Apply, both models predict identically.
	x := tensor.NewRNG(3).Uniform(0, 1, 4, 3, 8, 8)
	p1 := models.Predict(m1, x)
	p2 := models.Predict(m2, x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("weight transfer changed behaviour")
		}
	}
}

func TestApplyRejectsMismatch(t *testing.T) {
	m := newTestModel(1)
	w := Snapshot(m)
	w.Names[0] = "wrong"
	if err := Apply(m, w); err == nil {
		t.Fatal("name mismatch must fail")
	}
	w2 := Snapshot(m)
	w2.Data[0] = w2.Data[0][:1]
	if err := Apply(m, w2); err == nil {
		t.Fatal("size mismatch must fail")
	}
	w3 := Snapshot(m)
	w3.Data = w3.Data[:2]
	if err := Apply(m, w3); err == nil {
		t.Fatal("count mismatch must fail")
	}
}

func TestFedAvgWeightedMean(t *testing.T) {
	a := Weights{Names: []string{"w"}, Shapes: [][]int{{2}}, Data: [][]float32{{1, 2}}}
	b := Weights{Names: []string{"w"}, Shapes: [][]int{{2}}, Data: [][]float32{{3, 6}}}
	avg, err := FedAvg([]Weights{a, b}, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// (1*1 + 3*3)/4 = 2.5 ; (1*2 + 3*6)/4 = 5
	if avg.Data[0][0] != 2.5 || avg.Data[0][1] != 5 {
		t.Fatalf("FedAvg = %v", avg.Data[0])
	}
}

func TestFedAvgErrors(t *testing.T) {
	if _, err := FedAvg(nil, nil); err == nil {
		t.Fatal("empty updates must fail")
	}
	a := Weights{Names: []string{"w"}, Shapes: [][]int{{1}}, Data: [][]float32{{1}}}
	if _, err := FedAvg([]Weights{a}, []int{0}); err == nil {
		t.Fatal("zero count must fail")
	}
	if _, err := FedAvg([]Weights{a, a}, []int{1}); err == nil {
		t.Fatal("count/update mismatch must fail")
	}
}

func TestFederatedTrainingImprovesGlobalModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	train, val := flDataset(t)
	shards := train.Shards(3)
	global := newTestModel(10)
	tc := models.TrainConfig{Epochs: 2, BatchSize: 16, LR: 2e-3, Seed: 1}
	var conns []Conn
	for i, sh := range shards {
		conns = append(conns, Local(NewHonestClient(
			"client"+string(rune('A'+i)), newTestModel(int64(20+i)), sh, tc)))
	}
	before := models.Accuracy(global, val.X, val.Y)
	srv := &Server{
		Global: global,
		Conns:  conns,
		Eval:   func(m models.Model) float64 { return models.Accuracy(m, val.X, val.Y) },
	}
	results, err := srv.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	after := results[len(results)-1].Accuracy
	if after < before+0.3 || after < 0.7 {
		t.Fatalf("global accuracy %.2f → %.2f; federation failed to learn", before, after)
	}
	// Accuracy is non-collapsing across rounds.
	for i := 1; i < len(results); i++ {
		if results[i].Accuracy < results[i-1].Accuracy-0.25 {
			t.Fatalf("round %d accuracy collapsed: %v", i+1, results)
		}
	}
}

func TestParallelMatchesSequentialAggregation(t *testing.T) {
	train, val := flDataset(t)
	shards := train.Shards(2)
	tc := models.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3, Seed: 2}
	run := func(parallel bool) []int {
		global := newTestModel(30)
		conns := []Conn{
			Local(NewHonestClient("a", newTestModel(31), shards[0], tc)),
			Local(NewHonestClient("b", newTestModel(32), shards[1], tc)),
		}
		srv := &Server{Global: global, Conns: conns, Parallel: parallel}
		if _, err := srv.Run(1); err != nil {
			t.Fatal(err)
		}
		return models.Predict(global, val.X)
	}
	seq := run(false)
	par := run(true)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatal("parallel collection changed the aggregate")
		}
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	train, _ := flDataset(t)
	shard := train.Shards(4)[0]
	tc := models.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3, Seed: 3}
	client := NewHonestClient("remote", newTestModel(40), shard, tc)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ServeClient(lis, client)
	}()

	conn, err := Dial(lis.Addr().String(), "remote")
	if err != nil {
		t.Fatal(err)
	}
	global := newTestModel(41)
	req := UpdateRequest{Round: 1, Weights: Snapshot(global)}
	resp, err := conn.Update(req)
	if err != nil {
		t.Fatalf("TCP update: %v", err)
	}
	if resp.ClientID != "remote" || resp.Samples != shard.Len() {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Weights.Data) != len(req.Weights.Data) {
		t.Fatal("weights lost in transit")
	}
	// Second round over the same connection.
	if _, err := conn.Update(UpdateRequest{Round: 2, Weights: Snapshot(global)}); err != nil {
		t.Fatalf("second round: %v", err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	lis.Close()
	<-done
}

func TestServerNoClients(t *testing.T) {
	srv := &Server{Global: newTestModel(1)}
	if _, err := srv.Run(1); err == nil {
		t.Fatal("serverless federation must fail")
	}
}

func TestCompromisedClientShieldMitigatesProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	train, val := flDataset(t)
	shards := train.Shards(2)
	tc := models.TrainConfig{Epochs: 3, BatchSize: 16, LR: 2e-3, Seed: 4}
	probe := &attack.PGD{Eps: 0.1, Step: 0.0125, Steps: 10}

	runFL := func(shield bool) *CompromisedClient {
		global := newTestModel(50)
		comp := NewCompromisedClient("mallory", newTestModel(51), shards[0], tc, probe, 10, shield)
		srv := &Server{
			Global: global,
			Conns: []Conn{
				Local(comp),
				Local(NewHonestClient("alice", newTestModel(52), shards[1], tc)),
			},
			Eval: func(m models.Model) float64 { return models.Accuracy(m, val.X, val.Y) },
		}
		results, err := srv.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		// Attack telemetry is surfaced in round notes.
		foundNote := false
		for _, r := range results {
			for _, n := range r.Notes {
				if strings.Contains(n, "attack round") {
					foundNote = true
				}
			}
		}
		if !foundNote {
			t.Fatal("compromised client should report attack outcomes")
		}
		return comp
	}

	clear := runFL(false)
	shielded := runFL(true)
	lastClear := clear.Outcomes[len(clear.Outcomes)-1]
	lastShield := shielded.Outcomes[len(shielded.Outcomes)-1]
	// The FL-level headline: with Pelta on the device, the probe's success
	// collapses relative to the clear white-box.
	if lastShield.RobustAccuracy < lastClear.RobustAccuracy+0.3 {
		t.Fatalf("shielded probe robust=%.2f vs clear=%.2f — Pelta ineffective in FL loop",
			lastShield.RobustAccuracy, lastClear.RobustAccuracy)
	}
}
