package fl

import (
	"math"
	"testing"
)

// wv builds a one-tensor Weights with the given values.
func wv(vals ...float32) Weights {
	return Weights{
		Names:  []string{"w"},
		Shapes: [][]int{{len(vals)}},
		Data:   [][]float32{vals},
	}
}

func ones(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func zeros(n int) []int { return make([]int, n) }

func TestNewAggregatorNames(t *testing.T) {
	for _, name := range AggregatorNames() {
		a, err := NewAggregator(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("NewAggregator(%q).Name() = %q", name, a.Name())
		}
	}
	if a, err := NewAggregator(""); err != nil || a.Name() != DefenseFedAvg {
		t.Fatalf("empty name must default to fedavg, got %v / %v", a, err)
	}
	if _, err := NewAggregator("launder"); err == nil {
		t.Fatal("unknown aggregator must fail")
	}
}

// TestFedAvgAggBitIdentical pins the baseline contract: the interface-boxed
// FedAvg must produce bit-identical weights to the raw functions on both
// the fresh and the stale path.
func TestFedAvgAggBitIdentical(t *testing.T) {
	updates := []Weights{wv(0.1, 0.7, -0.3), wv(0.5, -0.2, 0.9), wv(-0.4, 0.3, 0.2)}
	counts := []int{7, 13, 5}

	want, err := FedAvg(updates, counts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FedAvgAgg{}.Aggregate(Weights{}, updates, counts, zeros(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Data[0] {
		if got.Data[0][j] != want.Data[0][j] {
			t.Fatalf("fresh path not bit-identical at %d: %v vs %v", j, got.Data[0][j], want.Data[0][j])
		}
	}

	stale := []int{0, 1, 2}
	want, err = StalenessFedAvg(updates, counts, stale, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err = FedAvgAgg{}.Aggregate(Weights{}, updates, counts, stale, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Data[0] {
		if got.Data[0][j] != want.Data[0][j] {
			t.Fatalf("stale path not bit-identical at %d: %v vs %v", j, got.Data[0][j], want.Data[0][j])
		}
	}
}

// TestKrumExcludesOutlier: three clustered honest updates plus one far-away
// poisoned update — Krum must answer from the cluster only.
func TestKrumExcludesOutlier(t *testing.T) {
	updates := []Weights{wv(1.0, 1.0), wv(1.1, 0.9), wv(0.9, 1.1), wv(100, -100)}
	counts := ones(4)

	krum := &Krum{M: 1}
	got, err := krum.Aggregate(Weights{}, updates, counts, zeros(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Classic Krum returns one of the honest updates verbatim.
	if math.Abs(float64(got.Data[0][0])-1) > 0.2 || math.Abs(float64(got.Data[0][1])-1) > 0.2 {
		t.Fatalf("krum selected the outlier: %v", got.Data[0])
	}

	multi := &Krum{}
	got, err = multi.Aggregate(Weights{}, updates, counts, zeros(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-Krum averages the n-f = 3 honest updates: exactly (1, 1).
	if math.Abs(float64(got.Data[0][0])-1) > 1e-5 || math.Abs(float64(got.Data[0][1])-1) > 1e-5 {
		t.Fatalf("multikrum mean polluted by the outlier: %v", got.Data[0])
	}
}

// TestKrumDeterministicTieBreak: identical scores must select by index so
// seeded runs reproduce.
func TestKrumDeterministicTieBreak(t *testing.T) {
	updates := []Weights{wv(1), wv(1), wv(1), wv(1)}
	k := &Krum{M: 1}
	a, err := k.Aggregate(Weights{}, updates, ones(4), zeros(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Aggregate(Weights{}, updates, ones(4), zeros(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data[0][0] != b.Data[0][0] {
		t.Fatal("tied krum selection not deterministic")
	}
}

// TestTrimmedMeanDropsExtremes: the poisoned coordinate is the max, so a
// 25% trim removes it per coordinate regardless of which client sent it.
func TestTrimmedMeanDropsExtremes(t *testing.T) {
	updates := []Weights{wv(1, -50), wv(2, 1), wv(3, 2), wv(50, 3)}
	tm := &TrimmedMean{Frac: 0.25}
	got, err := tm.Aggregate(Weights{}, updates, ones(4), zeros(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Coordinate 0 trims {1, 50}, averages {2, 3} → 2.5; coordinate 1 trims
	// {-50, 3}, averages {1, 2} → 1.5.
	if math.Abs(float64(got.Data[0][0])-2.5) > 1e-6 || math.Abs(float64(got.Data[0][1])-1.5) > 1e-6 {
		t.Fatalf("trimmed mean = %v, want [2.5 1.5]", got.Data[0])
	}
}

// TestTrimmedMeanComposesWithStaleness: survivors keep their discounted
// weights, so a stale survivor counts less.
func TestTrimmedMeanComposesWithStaleness(t *testing.T) {
	updates := []Weights{wv(-100), wv(0), wv(4), wv(100)}
	tm := &TrimmedMean{Frac: 0.25}
	// Staleness 1 on the {4} survivor halves its weight at λ=1: mean of
	// {0 (w 1), 4 (w 0.5)} = 4/3 instead of 2.
	got, err := tm.Aggregate(Weights{}, updates, ones(4), []int{0, 0, 1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v := float64(got.Data[0][0]); math.Abs(v-4.0/3) > 1e-5 {
		t.Fatalf("staleness-discounted trimmed mean = %v, want 4/3", v)
	}
}

func TestMedianMajorityWins(t *testing.T) {
	updates := []Weights{wv(1, 2), wv(1.2, 2.2), wv(0.8, 1.8), wv(1000, -1000), wv(-1000, 1000)}
	got, err := MedianAgg{}.Aggregate(Weights{}, updates, ones(5), zeros(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0][0] != 1 || got.Data[0][1] != 2 {
		t.Fatalf("median = %v, want [1 2]", got.Data[0])
	}
	// Even count: mean of the two middle values.
	got, err = MedianAgg{}.Aggregate(Weights{}, updates[:4], ones(4), zeros(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0][0] != 1.1 {
		t.Fatalf("even median = %v, want 1.1", got.Data[0][0])
	}
}

// TestNormClipBoundsBoostedUpdate: a 100×-boosted delta must contribute no
// more magnitude than the honest deltas after clipping.
func TestNormClipBoundsBoostedUpdate(t *testing.T) {
	prev := wv(0, 0)
	honest := []Weights{wv(1, 0), wv(0.9, 0.1), wv(1.1, -0.1)}
	boosted := wv(-100, 0) // model replacement pulling the opposite way
	updates := append(append([]Weights(nil), honest...), boosted)

	nc := &NormClip{} // adaptive τ = median delta norm ≈ 1
	got, err := nc.Aggregate(prev, updates, ones(4), zeros(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Unclipped FedAvg would land near -24; clipping bounds the poisoned
	// delta to ‖δ‖ ≈ 1, so the mean stays in honest territory.
	if v := float64(got.Data[0][0]); v < 0.4 || v > 1.2 {
		t.Fatalf("normclip mean = %v, want within honest range", v)
	}

	// A generous fixed τ admits everything unchanged.
	loose := &NormClip{Tau: 1e6}
	got, err = loose.Aggregate(prev, updates, ones(4), zeros(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FedAvg(updates, ones(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got.Data[0][0])-float64(want.Data[0][0])) > 1e-3 {
		t.Fatalf("loose normclip %v differs from FedAvg %v", got.Data[0][0], want.Data[0][0])
	}
}

// TestBufferedAggregatorAppliesRule: a BufferedAggregator with a robust
// Rule must route Drain through it.
func TestBufferedAggregatorAppliesRule(t *testing.T) {
	agg := NewBufferedAggregator(3, 2, 1)
	agg.Rule = MedianAgg{}
	agg.Offer(0, unitUpdate(1, 10), 0, 0)
	agg.Offer(1, unitUpdate(2, 10), 0, 0)
	agg.Offer(2, unitUpdate(1000, 10), 0, 0)
	w, merged, err := agg.Drain(0, wv(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 || w.Data[0][0] != 2 {
		t.Fatalf("median drain = %v (%d merged), want 2", w.Data, len(merged))
	}
}

// TestAggregateRejectsBadInput: every rule must refuse mismatched or
// invalid updates instead of corrupting the global model.
func TestAggregateRejectsBadInput(t *testing.T) {
	aggs := []Aggregator{FedAvgAgg{}, &Krum{M: 1}, &Krum{}, &TrimmedMean{}, MedianAgg{}, &NormClip{}}
	for _, a := range aggs {
		if _, err := a.Aggregate(Weights{}, nil, nil, nil, 0); err == nil {
			t.Fatalf("%s: empty updates must fail", a.Name())
		}
		if _, err := a.Aggregate(wv(0, 0), []Weights{wv(1, 2), wv(1)}, ones(2), zeros(2), 0); err == nil {
			t.Fatalf("%s: size mismatch must fail", a.Name())
		}
		if _, err := a.Aggregate(wv(0), []Weights{wv(1), wv(2)}, []int{1, 0}, zeros(2), 0); err == nil {
			t.Fatalf("%s: non-positive count must fail", a.Name())
		}
	}
}
