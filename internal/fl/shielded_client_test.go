package fl

import (
	"strings"
	"testing"

	"pelta/internal/core"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

func TestShieldedHonestClientTrainsInFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	train, val := flDataset(t)
	shards := train.Shards(2)

	global := newTestModel(60)
	smModel := newTestModel(61)
	sm, err := core.NewShieldedModel(smModel, 0)
	if err != nil {
		t.Fatal(err)
	}
	shieldedClient, err := NewShieldedHonestClient("tee-client", sm, shards[0], 2, 16, 4, 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewHonestClient("plain", newTestModel(62), shards[1],
		models.TrainConfig{Epochs: 2, BatchSize: 16, LR: 2e-3, Seed: 1})

	srv := &Server{
		Global: global,
		Conns:  []Conn{Local(shieldedClient), Local(plain)},
		Eval:   func(m models.Model) float64 { return models.Accuracy(m, val.X, val.Y) },
	}
	results, err := srv.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	last := results[len(results)-1]
	if last.Accuracy < 0.6 {
		t.Fatalf("federation with an enclave-training client reached only %.2f", last.Accuracy)
	}
	// The enclave client reports its §VI telemetry.
	foundTelemetry := false
	for _, r := range results {
		for _, n := range r.Notes {
			if strings.Contains(n, "hidden exports") {
				foundTelemetry = true
			}
		}
	}
	if !foundTelemetry {
		t.Fatal("enclave client should report hidden-export telemetry")
	}
	// Bandwidth accounting is populated and symmetric-ish: 2 clients
	// upload roughly 2× the broadcast size.
	if last.DownBytes <= 0 || last.UpBytes < last.DownBytes {
		t.Fatalf("bandwidth accounting wrong: down=%d up=%d", last.DownBytes, last.UpBytes)
	}
	if last.UpBytes > 3*last.DownBytes {
		t.Fatalf("up=%d down=%d: update sizes inconsistent", last.UpBytes, last.DownBytes)
	}
}

func TestWireBytesGrowsWithModel(t *testing.T) {
	small := Snapshot(newTestModel(1))
	n1, err := WireBytes(small)
	if err != nil {
		t.Fatal(err)
	}
	big := Snapshot(models.NewViT(models.SmallViT("vit-big", 4, 16, 4), tensor.NewRNG(2)))
	n2, err := WireBytes(big)
	if err != nil {
		t.Fatal(err)
	}
	if n1 <= 0 || n2 <= n1 {
		t.Fatalf("wire sizes: small=%d big=%d", n1, n2)
	}
}

func TestEnclaveTrainerExportsReduceWithSyncEvery(t *testing.T) {
	train, _ := flDataset(t)
	shard := train.Shards(4)[0]
	countExports := func(syncEvery int) int {
		m := newTestModel(70)
		sm, err := core.NewShieldedModel(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewShieldedHonestClient("c", sm, shard, 1, 8, syncEvery, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Update(UpdateRequest{Round: 1, Weights: Snapshot(m)}); err != nil {
			t.Fatal(err)
		}
		return c.Trainer.Exports
	}
	frequent := countExports(1)
	rare := countExports(8)
	if rare >= frequent {
		t.Fatalf("larger SyncEvery must export less often: %d vs %d", rare, frequent)
	}
}
