package fl

import (
	"fmt"
	"time"

	"pelta/internal/models"
	"pelta/internal/obs"
)

// AsyncConfig tunes the asynchronous round engine.
type AsyncConfig struct {
	// Rounds is the number of aggregations to run.
	Rounds int
	// Workers bounds concurrent client updates (0 = one per client).
	Workers int
	// Sampler draws the per-round client cohort (nil = FullSampler).
	Sampler Sampler
	// Quorum is the number of updates that closes a round in async mode
	// (0 = every sampled client — still async, but round-complete).
	Quorum int
	// MaxStaleness is the oldest trained-on version still merged; older
	// straggler updates are rejected (0 = DefaultMaxStaleness).
	MaxStaleness int
	// Lambda is the staleness-decay exponent of the aggregation weights
	// (0 = DefaultLambda; set negative to force exactly 0).
	Lambda float64
	// Deterministic barriers each round on its full cohort and merges in
	// client order: with a FullSampler the engine then reproduces the
	// synchronous Server bit-identically, which is how Table-reproduction
	// runs and tests stay seeded-reproducible.
	Deterministic bool
	// Agg is the aggregation defense applied when a round closes (nil =
	// plain FedAvg/StalenessFedAvg, bit-identical to the pre-defense
	// engine). Robust rules still see the staleness discounts, so the two
	// mechanisms compose.
	Agg Aggregator
}

// Defaults applied by AsyncServer.Run for zero AsyncConfig fields.
const (
	DefaultMaxStaleness = 2
	DefaultLambda       = 1.0
)

// AsyncServer is the asynchronous, sharded round engine: clients run
// concurrently on a goroutine worker pool over the Conn transport, the
// server samples a client cohort per round, and a BufferedAggregator merges
// updates as they arrive instead of barriering on the slowest client.
// Clients that error mid-round are dropped from that round (and resampled
// later); straggler updates trained on an older model version are merged
// with a staleness discount or rejected beyond MaxStaleness.
type AsyncServer struct {
	Global models.Model
	Conns  []Conn
	Config AsyncConfig
	// Eval, when set, scores the global model after every aggregation.
	Eval func(m models.Model) float64
	// Now overrides the clock the round-phase spans are stamped on
	// (nil = time.Now).
	Now func() time.Time

	stats AggregatorStats
	drops int
}

// Stats returns the aggregator counters of the last Run.
func (s *AsyncServer) Stats() AggregatorStats { return s.stats }

// Drops returns how many client updates failed in transit during the last
// Run (transport errors, client crashes).
func (s *AsyncServer) Drops() int { return s.drops }

// asyncJob is one dispatched client update.
type asyncJob struct {
	client  int
	version int
	req     UpdateRequest
}

// taggedUpdate is a worker's result, tagged with its provenance.
type taggedUpdate struct {
	client  int
	version int
	resp    UpdateResponse
	err     error
	// wallNS is the dispatch-to-receipt round-trip measured in the worker;
	// wallNS − resp.TrainNS is the update's transport share.
	wallNS int64
}

// Run executes the configured number of aggregation rounds and returns one
// RoundResult per aggregation.
func (s *AsyncServer) Run() ([]RoundResult, error) {
	n := len(s.Conns)
	if n == 0 {
		return nil, fmt.Errorf("fl: async server has no clients")
	}
	cfg := s.Config
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fl: async server needs Rounds > 0")
	}
	if cfg.Sampler == nil {
		cfg.Sampler = FullSampler{}
	}
	if cfg.Workers <= 0 || cfg.Workers > n {
		cfg.Workers = n
	}
	if cfg.MaxStaleness <= 0 {
		cfg.MaxStaleness = DefaultMaxStaleness
	}
	switch {
	case cfg.Lambda < 0:
		cfg.Lambda = 0
	case cfg.Lambda == 0:
		cfg.Lambda = DefaultLambda
	}
	if cfg.Deterministic {
		// A deterministic round barriers on its cohort: no update is ever
		// stale, and quorum adapts to the cohort size below.
		cfg.MaxStaleness = 0
	}

	now := nowOr(s.Now)

	jobs := make(chan asyncJob, n)
	resCh := make(chan taggedUpdate, n)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			for j := range jobs {
				t0 := now()
				resp, err := s.Conns[j.client].Update(j.req)
				resCh <- taggedUpdate{client: j.client, version: j.version, resp: resp, err: err,
					wallNS: now().Sub(t0).Nanoseconds()}
			}
		}()
	}
	defer close(jobs)

	s.stats = AggregatorStats{}
	s.drops = 0
	agg := NewBufferedAggregator(cfg.Quorum, cfg.MaxStaleness, cfg.Lambda)
	agg.Rule = cfg.Agg

	version := 0 // aggregations applied so far; round r = version+1
	inflight := 0
	busy := make([]bool, n)
	// wall holds each client's latest round-trip so drained updates can be
	// attributed to transport even after they sat buffered in the
	// aggregator across an aggregation boundary.
	wall := make([]int64, n)
	tB0 := now()
	snapshot := Snapshot(s.Global)
	down, err := WireBytes(snapshot)
	if err != nil {
		return nil, fmt.Errorf("fl: encoding round 1 broadcast: %w", err)
	}
	broadcastNS := now().Sub(tB0).Nanoseconds()
	// Per-version telemetry accumulated between aggregations.
	notes := make([]string, 0, n)
	dropped := 0
	retried := false

	// launch dispatches the cohort of round version+1, skipping clients
	// still busy with an older round (they rejoin once their straggler
	// update lands). It returns how many jobs it enqueued and the cohort
	// size for deterministic quorum accounting.
	launch := func() (started, cohort int) {
		want := cfg.Sampler.Sample(version+1, n)
		for _, ci := range want {
			if ci < 0 || ci >= n {
				continue
			}
			cohort++
			if busy[ci] {
				continue
			}
			busy[ci] = true
			inflight++
			started++
			jobs <- asyncJob{client: ci, version: version, req: UpdateRequest{Round: version + 1, Weights: snapshot}}
		}
		return started, cohort
	}

	// quorumFor adapts the configured quorum to the round's cohort size;
	// the aggregator's Quorum is re-pinned after every launch so Ready()
	// is the engine's single round-closing criterion.
	quorumFor := func(cohort int) int {
		if cfg.Deterministic || cfg.Quorum <= 0 {
			return cohort
		}
		q := cfg.Quorum
		if q > cohort {
			q = cohort
		}
		return q
	}

	results := make([]RoundResult, 0, cfg.Rounds)
	started, cohort := launch()
	if started == 0 {
		return nil, fmt.Errorf("fl: round 1 sampled no available clients")
	}
	agg.Quorum = quorumFor(cohort)

	// Ensure stragglers finish before Run returns so no worker touches a
	// client after the caller regains ownership of the fleet.
	defer func() {
		for inflight > 0 {
			<-resCh
			inflight--
		}
	}()

	for version < cfg.Rounds {
		tu := <-resCh
		inflight--
		busy[tu.client] = false
		wall[tu.client] = tu.wallNS
		if tu.err != nil {
			dropped++
			s.drops++
			notes = append(notes, fmt.Sprintf("%s: dropped (%v)", s.Conns[tu.client].ID(), tu.err))
		} else {
			if ok, why := agg.Offer(tu.client, tu.resp, tu.version, version); !ok {
				notes = append(notes, fmt.Sprintf("%s: update refused (%s)", tu.resp.ClientID, why))
			} else if tu.resp.Note != "" {
				notes = append(notes, tu.resp.ClientID+": "+tu.resp.Note)
			}
		}

		// Close the round when the quorum is met — or when every dispatched
		// client has reported and whatever arrived is all this round gets.
		for version < cfg.Rounds && agg.Pending() > 0 &&
			(agg.Ready() || inflight == 0) {
			tA0 := now()
			w, merged, err := agg.Drain(version, snapshot)
			if err != nil {
				return results, fmt.Errorf("fl: round %d aggregation: %w", version+1, err)
			}
			if err := Apply(s.Global, w); err != nil {
				return results, fmt.Errorf("fl: round %d apply: %w", version+1, err)
			}
			aggregateNS := now().Sub(tA0).Nanoseconds()
			res := RoundResult{
				Round:     version + 1,
				Notes:     notes,
				DownBytes: down,
				Merged:    len(merged),
				Dropped:   dropped,
			}
			var train, transport int64
			for _, p := range merged {
				if version-p.version > 0 {
					res.StaleMerged++
				}
				up, err := WireBytes(p.resp.Weights)
				if err != nil {
					return results, fmt.Errorf("fl: round %d: %w", version+1, err)
				}
				res.UpBytes += up
				train += p.resp.TrainNS
				if t := wall[p.client] - p.resp.TrainNS; t > 0 {
					transport += t
				}
			}
			res.Timing = obs.RoundSpan{
				Round:       version + 1,
				Clients:     len(merged),
				TrainNS:     train,
				TransportNS: transport,
				AggregateNS: aggregateNS,
				BroadcastNS: broadcastNS,
			}
			if s.Eval != nil {
				res.Accuracy = s.Eval(s.Global)
			}
			results = append(results, res)
			version++
			notes, dropped, retried = make([]string, 0, n), 0, false
			if version >= cfg.Rounds {
				break
			}
			tB := now()
			snapshot = Snapshot(s.Global)
			if down, err = WireBytes(snapshot); err != nil {
				return results, fmt.Errorf("fl: encoding round %d broadcast: %w", version+1, err)
			}
			broadcastNS = now().Sub(tB).Nanoseconds()
			_, cohort = launch()
			agg.Quorum = quorumFor(cohort)
		}

		if version < cfg.Rounds && inflight == 0 && agg.Pending() == 0 {
			// Every dispatched client dropped or was refused: retry the
			// cohort once per round; a second empty wave means the fleet
			// is dead and the federation cannot make progress.
			if retried {
				return results, fmt.Errorf("fl: round %d: no usable client updates", version+1)
			}
			retried = true
			if started, _ := launch(); started == 0 {
				return results, fmt.Errorf("fl: round %d: no dispatchable clients", version+1)
			}
		}
	}
	s.stats = agg.Stats()
	return results, nil
}
