package fl

import (
	"fmt"
	"time"

	"pelta/internal/dataset"
	"pelta/internal/models"
)

// UpdateRequest is the server's per-round broadcast.
type UpdateRequest struct {
	Round   int
	Weights Weights
}

// UpdateResponse carries one client's local update back for aggregation.
type UpdateResponse struct {
	ClientID string
	Weights  Weights
	Samples  int
	// Note is free-form client telemetry (used by the compromised client
	// to report attack outcomes in the simulation logs).
	Note string
	// TrainNS is the client-measured wall time of local training in
	// nanoseconds. The round engines subtract it from each update's
	// round-trip time to attribute transport separately from compute in
	// the per-round phase spans.
	TrainNS int64
}

// Client computes local updates from broadcast weights.
type Client interface {
	ID() string
	Update(req UpdateRequest) (UpdateResponse, error)
}

// HonestClient fine-tunes the broadcast model on its private shard.
type HonestClient struct {
	Name  string
	Model models.Model
	Shard *dataset.Dataset
	Train models.TrainConfig
	// Now overrides the clock TrainNS is measured on (nil = wall clock).
	// Tests inject a counter to make round spans exact.
	Now func() time.Time
}

var _ Client = (*HonestClient)(nil)

// NewHonestClient builds a client around a local model replica.
func NewHonestClient(name string, m models.Model, shard *dataset.Dataset, tc models.TrainConfig) *HonestClient {
	return &HonestClient{Name: name, Model: m, Shard: shard, Train: tc}
}

// ID implements Client.
func (c *HonestClient) ID() string { return c.Name }

// Update implements Client: load global weights, train locally, return the
// new weights (user data never leaves the device).
func (c *HonestClient) Update(req UpdateRequest) (UpdateResponse, error) {
	if err := Apply(c.Model, req.Weights); err != nil {
		return UpdateResponse{}, fmt.Errorf("fl: client %s applying round %d weights: %w", c.Name, req.Round, err)
	}
	now := nowOr(c.Now)
	t0 := now()
	if _, err := models.Train(c.Model, c.Shard.X, c.Shard.Y, c.Train); err != nil {
		return UpdateResponse{}, fmt.Errorf("fl: client %s training round %d: %w", c.Name, req.Round, err)
	}
	return UpdateResponse{
		ClientID: c.Name,
		Weights:  Snapshot(c.Model),
		Samples:  c.Shard.Len(),
		TrainNS:  now().Sub(t0).Nanoseconds(),
	}, nil
}
