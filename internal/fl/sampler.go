package fl

import (
	"sort"

	"pelta/internal/tensor"
)

// Sampler chooses which clients participate in each federation round —
// production FL servers never wait for the full fleet. Implementations must
// be deterministic functions of (round, n) and their own configuration so a
// seeded simulation replays bit-identically.
type Sampler interface {
	// Sample returns the ascending, duplicate-free client indices drawn
	// for round r (1-based) out of n clients. It must never be empty.
	Sample(r, n int) []int
}

// FullSampler selects every client every round — the synchronous FedAvg
// regime of the paper's Fig. 1 and the setting under which the async engine
// reproduces the sequential Server bit-identically.
type FullSampler struct{}

// Sample implements Sampler.
func (FullSampler) Sample(r, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// UniformSampler draws K distinct clients uniformly per round. The draw is
// a pure function of (Seed, round), independent of call order, so a sweep
// that re-runs round 7 sees the same cohort.
type UniformSampler struct {
	K    int
	Seed int64
}

// Sample implements Sampler.
func (s UniformSampler) Sample(r, n int) []int {
	k := s.K
	if k <= 0 || k > n {
		k = n
	}
	rng := tensor.NewRNG(s.Seed + int64(r)*1_000_003)
	idx := rng.Perm(n)[:k]
	sort.Ints(idx)
	return idx
}
