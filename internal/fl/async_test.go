package fl

import (
	"fmt"
	"testing"
	"time"

	"pelta/internal/models"
)

// --- test doubles over the Conn transport -------------------------------

// flakyConn fails the wrapped client's update on the given rounds.
type flakyConn struct {
	Conn
	failOn map[int]bool
}

func (f *flakyConn) Update(req UpdateRequest) (UpdateResponse, error) {
	if f.failOn[req.Round] {
		return UpdateResponse{}, fmt.Errorf("simulated transport failure in round %d", req.Round)
	}
	return f.Conn.Update(req)
}

// stubConn answers instantly (after an optional simulated latency) with a
// fixed weight snapshot — an engine-only client with no training cost.
type stubConn struct {
	name  string
	w     Weights
	n     int
	delay time.Duration
}

func (s *stubConn) Update(req UpdateRequest) (UpdateResponse, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return UpdateResponse{ClientID: s.name, Weights: s.w, Samples: s.n}, nil
}

func (s *stubConn) ID() string   { return s.name }
func (s *stubConn) Close() error { return nil }

// --- sampler ------------------------------------------------------------

func TestFullSamplerCoversFleet(t *testing.T) {
	got := FullSampler{}.Sample(3, 5)
	if len(got) != 5 {
		t.Fatalf("FullSampler returned %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FullSampler returned %v", got)
		}
	}
}

func TestUniformSamplerDeterministicAndBounded(t *testing.T) {
	s := UniformSampler{K: 3, Seed: 9}
	a := s.Sample(7, 10)
	b := s.Sample(7, 10)
	if len(a) != 3 {
		t.Fatalf("cohort size %d, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampler not deterministic: %v vs %v", a, b)
		}
		if a[i] < 0 || a[i] >= 10 {
			t.Fatalf("index out of range: %v", a)
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("indices not strictly ascending: %v", a)
		}
	}
	// Different rounds draw different cohorts at least sometimes.
	differs := false
	for r := 1; r <= 20; r++ {
		c := s.Sample(r, 10)
		for i := range c {
			if c[i] != a[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("sampler returned the same cohort for 20 rounds")
	}
}

// --- aggregator ---------------------------------------------------------

func unitUpdate(v float32, samples int) UpdateResponse {
	return UpdateResponse{
		ClientID: "c",
		Weights:  Weights{Names: []string{"w"}, Shapes: [][]int{{1}}, Data: [][]float32{{v}}},
		Samples:  samples,
	}
}

func TestAggregatorDuplicateDelivery(t *testing.T) {
	agg := NewBufferedAggregator(2, 2, 1)
	if ok, _ := agg.Offer(0, unitUpdate(1, 10), 0, 0); !ok {
		t.Fatal("first delivery must be accepted")
	}
	// The transport redelivers the same round-0 update (e.g. a TCP retry).
	ok, why := agg.Offer(0, unitUpdate(1, 10), 0, 0)
	if ok || why != RejectDuplicate {
		t.Fatalf("duplicate delivery accepted (ok=%v why=%q)", ok, why)
	}
	if st := agg.Stats(); st.Duplicates != 1 {
		t.Fatalf("stats = %+v, want 1 duplicate", st)
	}
	// The same client's update for a later version is NOT a duplicate.
	if ok, why := agg.Offer(0, unitUpdate(2, 10), 1, 1); !ok {
		t.Fatalf("later-version update rejected: %s", why)
	}
}

func TestAggregatorStaleRejection(t *testing.T) {
	agg := NewBufferedAggregator(1, 2, 1)
	// Trained on version 0, global now at version 3: staleness 3 > 2.
	ok, why := agg.Offer(0, unitUpdate(1, 10), 0, 3)
	if ok || why != RejectStale {
		t.Fatalf("beyond-horizon update accepted (ok=%v why=%q)", ok, why)
	}
	if st := agg.Stats(); st.Rejected != 1 {
		t.Fatalf("stats = %+v, want 1 rejected", st)
	}
	// Staleness 2 is inside the horizon.
	if ok, why := agg.Offer(1, unitUpdate(1, 10), 1, 3); !ok {
		t.Fatalf("in-horizon update rejected: %s", why)
	}
	w, merged, err := agg.Drain(3, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 || w.Data[0][0] != 1 {
		t.Fatalf("drain = %v (%d merged)", w.Data, len(merged))
	}
	if st := agg.Stats(); st.StaleMerged != 1 {
		t.Fatalf("stats = %+v, want 1 stale-merged", st)
	}
}

func TestStalenessFedAvgDiscountsLateUpdates(t *testing.T) {
	fresh := Weights{Names: []string{"w"}, Shapes: [][]int{{1}}, Data: [][]float32{{0}}}
	late := Weights{Names: []string{"w"}, Shapes: [][]int{{1}}, Data: [][]float32{{4}}}
	// Equal sample counts: λ=1 and staleness 1 halves the late update's
	// weight, so the mean lands at 4·(0.5/1.5) = 4/3 instead of 2.
	avg, err := StalenessFedAvg([]Weights{fresh, late}, []int{10, 10}, []int{0, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := avg.Data[0][0]
	if got < 1.3 || got > 1.37 {
		t.Fatalf("staleness-discounted mean = %v, want ≈4/3", got)
	}
	// λ=0 restores the plain weighted mean.
	avg, err = StalenessFedAvg([]Weights{fresh, late}, []int{10, 10}, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Data[0][0] != 2 {
		t.Fatalf("λ=0 mean = %v, want 2", avg.Data[0][0])
	}
}

// --- async engine -------------------------------------------------------

// TestAsyncDeterministicMatchesSequential is the engine's reproducibility
// contract: in deterministic mode with full participation, the async engine
// produces the synchronous FedAvg result bit-identically.
func TestAsyncDeterministicMatchesSequential(t *testing.T) {
	train, _ := flDataset(t)
	shards := train.Shards(3)
	tc := models.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3, Seed: 2}
	fleet := func() []Conn {
		var conns []Conn
		for i, sh := range shards {
			conns = append(conns, Local(NewHonestClient(fmt.Sprintf("c%d", i), newTestModel(int64(60+i)), sh, tc)))
		}
		return conns
	}

	seqGlobal := newTestModel(59)
	seq := &Server{Global: seqGlobal, Conns: fleet()}
	seqRes, err := seq.Run(3)
	if err != nil {
		t.Fatal(err)
	}

	asyncGlobal := newTestModel(59)
	async := &AsyncServer{
		Global: asyncGlobal,
		Conns:  fleet(),
		Config: AsyncConfig{Rounds: 3, Deterministic: true, Workers: 3},
	}
	asyncRes, err := async.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(asyncRes) != len(seqRes) {
		t.Fatalf("rounds: async %d vs sequential %d", len(asyncRes), len(seqRes))
	}
	for i := range asyncRes {
		if asyncRes[i].DownBytes != seqRes[i].DownBytes || asyncRes[i].UpBytes != seqRes[i].UpBytes {
			t.Fatalf("round %d bandwidth differs: async %+v vs sequential %+v", i+1, asyncRes[i], seqRes[i])
		}
	}
	ws, wa := Snapshot(seqGlobal), Snapshot(asyncGlobal)
	for i := range ws.Data {
		for j := range ws.Data[i] {
			if ws.Data[i][j] != wa.Data[i][j] {
				t.Fatalf("weight %s[%d] differs: %v vs %v — deterministic mode is not bit-identical",
					ws.Names[i], j, ws.Data[i][j], wa.Data[i][j])
			}
		}
	}
}

// TestAsyncClientDropMidRound: a client that dies mid-round must not stall
// or fail the federation; the round closes over the surviving updates.
func TestAsyncClientDropMidRound(t *testing.T) {
	train, _ := flDataset(t)
	shards := train.Shards(3)
	tc := models.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3, Seed: 3}
	conns := []Conn{
		Local(NewHonestClient("a", newTestModel(70), shards[0], tc)),
		&flakyConn{
			Conn:   Local(NewHonestClient("b", newTestModel(71), shards[1], tc)),
			failOn: map[int]bool{2: true},
		},
		Local(NewHonestClient("c", newTestModel(72), shards[2], tc)),
	}
	srv := &AsyncServer{
		Global: newTestModel(69),
		Conns:  conns,
		Config: AsyncConfig{Rounds: 3, Deterministic: true},
	}
	results, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d rounds, want 3", len(results))
	}
	if results[1].Dropped != 1 || results[1].Merged != 2 {
		t.Fatalf("round 2 = %+v, want 1 drop and 2 merged", results[1])
	}
	if results[0].Merged != 3 || results[2].Merged != 3 {
		t.Fatalf("rounds 1/3 should merge the full fleet: %+v / %+v", results[0], results[2])
	}
	if srv.Drops() != 1 {
		t.Fatalf("server drops = %d, want 1", srv.Drops())
	}
}

// TestAsyncAllClientsDropFails: a fleet that never delivers must surface an
// error instead of spinning.
func TestAsyncAllClientsDropFails(t *testing.T) {
	train, _ := flDataset(t)
	shard := train.Shards(1)[0]
	tc := models.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3, Seed: 3}
	conns := []Conn{&flakyConn{
		Conn:   Local(NewHonestClient("a", newTestModel(80), shard, tc)),
		failOn: map[int]bool{1: true, 2: true, 3: true},
	}}
	srv := &AsyncServer{Global: newTestModel(81), Conns: conns, Config: AsyncConfig{Rounds: 2}}
	if _, err := srv.Run(); err == nil {
		t.Fatal("federation with a dead fleet must fail")
	}
}

// TestAsyncQuorumAbsorbsStragglers: with a quorum below the fleet size, the
// engine closes rounds without the slow client and folds its late update in
// with a staleness discount instead of losing it. Enough rounds run that
// the straggler is guaranteed to land mid-flight even on a loaded machine
// (it only has to beat the LAST round's close, a ~28 ms head start).
func TestAsyncQuorumAbsorbsStragglers(t *testing.T) {
	m := newTestModel(90)
	w := Snapshot(m)
	conns := []Conn{
		&stubConn{name: "fast-1", w: w, n: 10, delay: 2 * time.Millisecond},
		&stubConn{name: "fast-2", w: w, n: 10, delay: 2 * time.Millisecond},
		&stubConn{name: "slow", w: w, n: 10, delay: 30 * time.Millisecond},
	}
	srv := &AsyncServer{
		Global: m,
		Conns:  conns,
		Config: AsyncConfig{Rounds: 30, Quorum: 2, Workers: 3, MaxStaleness: 1 << 20},
	}
	results, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 30 {
		t.Fatalf("got %d rounds, want 30", len(results))
	}
	st := srv.Stats()
	if st.Merged < 60 {
		t.Fatalf("stats = %+v, want ≥ 2 merged per round", st)
	}
	if st.StaleMerged == 0 {
		t.Fatalf("stats = %+v: the straggler's updates never merged late", st)
	}
}

// --- throughput ---------------------------------------------------------

// benchFleet builds 8 stub clients with one straggler — the heterogeneous
// fleet of a real FL deployment, minus the training cost (the engine is
// what's being measured).
func benchFleet(m models.Model) []Conn {
	w := Snapshot(m)
	conns := make([]Conn, 8)
	for i := range conns {
		delay := 2 * time.Millisecond
		if i == 7 {
			delay = 16 * time.Millisecond // the straggler
		}
		conns[i] = &stubConn{name: fmt.Sprintf("c%d", i), w: w, n: 10, delay: delay}
	}
	return conns
}

// BenchmarkRoundThroughputSequential8 measures the synchronous server: every
// round serially visits all 8 clients and barriers on the straggler.
func BenchmarkRoundThroughputSequential8(b *testing.B) {
	m := newTestModel(99)
	srv := &Server{Global: m, Conns: benchFleet(m)}
	b.ResetTimer()
	if _, err := srv.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRoundThroughputAsync8 measures the async engine on the same
// fleet: concurrent workers, quorum 4, stragglers absorbed via staleness.
func BenchmarkRoundThroughputAsync8(b *testing.B) {
	m := newTestModel(99)
	srv := &AsyncServer{
		Global: m,
		Conns:  benchFleet(m),
		Config: AsyncConfig{Rounds: b.N, Quorum: 4, Workers: 8, MaxStaleness: 4},
	}
	b.ResetTimer()
	if _, err := srv.Run(); err != nil {
		b.Fatal(err)
	}
}
