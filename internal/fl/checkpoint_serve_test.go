package fl_test

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pelta/internal/core"
	"pelta/internal/dataset"
	"pelta/internal/fl"
	"pelta/internal/models"
	"pelta/internal/serve"
	"pelta/internal/tensor"
)

// TestCheckpointServesBitIdenticalLogits pins the warm-start contract of
// cmd/peltaserve: a checkpoint written after federation training loads into
// the serving path and every served sample's logits are bit-identical to a
// direct ShieldedModel.Query on the same weights — micro-batching, replica
// fan-out and the scheduler must not perturb inference.
func TestCheckpointServesBitIdenticalLogits(t *testing.T) {
	const hw, classes = 8, 3
	cfg := dataset.SynthCIFAR10(hw, 21)
	cfg.Classes, cfg.TrainN, cfg.ValN = classes, 24, 12
	train, val := dataset.Generate(cfg)
	shards := train.Shards(2)

	newModel := func(s int64) models.Model {
		return models.NewViT(models.SmallViT("ViT-L/16", classes, hw, hw/4), tensor.NewRNG(s))
	}
	tc := models.TrainConfig{Epochs: 1, BatchSize: 8, LR: 2e-3, Seed: 21}

	// Train the global model for one federation round, as a sweep cell
	// would, then checkpoint it.
	server := &fl.Server{
		Global: newModel(21),
		Conns: []fl.Conn{
			fl.Local(fl.NewHonestClient("c1", newModel(22), shards[0], tc)),
			fl.Local(fl.NewHonestClient("c2", newModel(23), shards[1], tc)),
		},
	}
	if _, err := server.Run(1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	if err := fl.SaveModel(path, server.Global); err != nil {
		t.Fatal(err)
	}

	// Direct path: load into a fresh model, query sample by sample.
	direct := newModel(31)
	if err := fl.LoadModel(path, direct); err != nil {
		t.Fatal(err)
	}
	sm, err := core.NewShieldedModel(direct, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*tensor.Tensor, val.Len())
	for i := 0; i < val.Len(); i++ {
		res, err := sm.Query(val.X.Slice(i).Reshape(1, 3, hw, hw), nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Logits.Clone()
	}

	// Serving path: the same checkpoint warm-starts every replica, exactly
	// as cmd/peltaserve builds its pool, and requests arrive concurrently
	// so they coalesce into real multi-sample batches.
	pool, err := serve.NewShieldedPool(2, 0, func(i int) (models.Model, error) {
		m := newModel(41 + int64(i))
		if err := fl.LoadModel(path, m); err != nil {
			return nil, err
		}
		return m, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.NewService(pool, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer svc.Close()

	var wg sync.WaitGroup
	got := make([]*serve.Result, val.Len())
	errs := make([]error, val.Len())
	maxBatch := 0
	for i := 0; i < val.Len(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = svc.Submit("query", val.X.Slice(i), time.Time{})
		}(i)
	}
	wg.Wait()

	for i := 0; i < val.Len(); i++ {
		if errs[i] != nil {
			t.Fatalf("sample %d: %v", i, errs[i])
		}
		if got[i].BatchSize > maxBatch {
			maxBatch = got[i].BatchSize
		}
		for j := 0; j < classes; j++ {
			if g, w := got[i].Logits.At(j), want[i].At(0, j); g != w {
				t.Fatalf("sample %d logit %d: served %v != direct %v (batch %d) — serving must be bit-identical",
					i, j, g, w, got[i].BatchSize)
			}
		}
	}
	t.Logf("bit-identical over %d samples (largest coalesced batch: %d)", val.Len(), maxBatch)
}
