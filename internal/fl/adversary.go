package fl

import (
	"fmt"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// AttackOutcome records one round of adversarial probing by a compromised
// client: how many crafted samples fool its local copy of the global model
// (and therefore every victim's identical copy).
type AttackOutcome struct {
	Round          int
	Samples        int
	Fooled         int
	RobustAccuracy float64
	Shielded       bool
}

// CompromisedClient behaves exactly like an honest client on the protocol
// surface (honest-but-curious, §III) but additionally probes each broadcast
// model for adversarial examples. When Pelta shields the device, the probe
// only sees the restricted white-box.
type CompromisedClient struct {
	Honest *HonestClient
	// Probe is the evasion attack run on the local copy every round.
	Probe attack.Attack
	// ProbeX/ProbeY are the samples the attacker perturbs.
	ProbeX *tensor.Tensor
	ProbeY []int
	// Shield enables the Pelta defense on this device.
	Shield bool
	// ShieldSeed initializes the attacker's upsampling kernel.
	ShieldSeed int64

	// Outcomes accumulates one entry per round.
	Outcomes []AttackOutcome

	// po caches the gradient oracle across rounds (lazily built so the
	// struct literal form keeps working).
	po *probeOracle
}

var _ Client = (*CompromisedClient)(nil)

// NewCompromisedClient builds a compromised client probing with the given
// attack on nProbe of its own shard samples.
func NewCompromisedClient(name string, m models.Model, shard *dataset.Dataset, tc models.TrainConfig, probe attack.Attack, nProbe int, shield bool) *CompromisedClient {
	if nProbe > shard.Len() {
		nProbe = shard.Len()
	}
	idx := make([]int, nProbe)
	for i := range idx {
		idx[i] = i
	}
	sub := shard.Subset(idx)
	return &CompromisedClient{
		Honest:     NewHonestClient(name, m, shard, tc),
		Probe:      probe,
		ProbeX:     sub.X,
		ProbeY:     sub.Y,
		Shield:     shield,
		ShieldSeed: 1,
	}
}

// ID implements Client.
func (c *CompromisedClient) ID() string { return c.Honest.Name }

// Update implements Client: run the honest protocol, then tap into the
// device's RAM to craft adversarial examples against the fresh global model.
func (c *CompromisedClient) Update(req UpdateRequest) (UpdateResponse, error) {
	// The attacker does not alter the message flow: honest update first.
	resp, err := c.Honest.Update(req)
	if err != nil {
		return resp, err
	}
	outcome, err := c.probe(req.Round)
	if err != nil {
		return resp, fmt.Errorf("fl: client %s probing round %d: %w", c.ID(), req.Round, err)
	}
	c.Outcomes = append(c.Outcomes, outcome)
	resp.Note = fmt.Sprintf("attack round %d: fooled %d/%d (shielded=%v)", req.Round, outcome.Fooled, outcome.Samples, outcome.Shielded)
	return resp, nil
}

func (c *CompromisedClient) probe(round int) (AttackOutcome, error) {
	// Astuteness protocol (§V-C): perturb only samples the current global
	// model classifies correctly, so a fooled sample is a real evasion.
	pred := models.Predict(c.Honest.Model, c.ProbeX)
	var idx []int
	for i, p := range pred {
		if p == c.ProbeY[i] {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		// Early rounds: the model is still too weak to evade meaningfully.
		return AttackOutcome{Round: round, RobustAccuracy: 1, Shielded: c.Shield}, nil
	}
	x, y, err := models.Batch(c.ProbeX, c.ProbeY, idx)
	if err != nil {
		return AttackOutcome{}, fmt.Errorf("fl: batching probe set: %w", err)
	}

	// The oracle persists across rounds (enclave and arenas stay warm);
	// under the shield its upsampling kernel is redrawn per round, so the
	// attacker still has no priors and every attempt starts blind.
	if c.po == nil {
		c.po = &probeOracle{model: c.Honest.Model, shield: c.Shield, seed: c.ShieldSeed, stride: 9973}
	}
	o, err := c.po.oracle(round)
	if err != nil {
		return AttackOutcome{}, err
	}
	xadv, err := c.Probe.Perturb(o, x, y)
	if err != nil {
		return AttackOutcome{}, err
	}
	// Success is measured on the clear model: a victim node runs the same
	// global weights without any shield on its inference path.
	advPred := models.Predict(c.Honest.Model, xadv)
	fooled := 0
	for i, p := range advPred {
		if p != y[i] {
			fooled++
		}
	}
	n := len(y)
	return AttackOutcome{
		Round:          round,
		Samples:        n,
		Fooled:         fooled,
		RobustAccuracy: float64(n-fooled) / float64(n),
		Shielded:       c.Shield,
	}, nil
}
