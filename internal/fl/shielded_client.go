package fl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"pelta/internal/core"
	"pelta/internal/dataset"
)

// ShieldedHonestClient trains its local replica under the enclave regime
// of §VI: gradients of the shielded parameters are produced inside the TEE
// and exported across the world boundary only every SyncEvery batches.
// On the protocol surface it is indistinguishable from an HonestClient.
type ShieldedHonestClient struct {
	Name    string
	Trainer *core.EnclaveTrainer
	Shard   *dataset.Dataset
	Epochs  int
	Batch   int
	Seed    int64
	// Now overrides the clock TrainNS is measured on (nil = wall clock).
	Now func() time.Time
}

var _ Client = (*ShieldedHonestClient)(nil)

// NewShieldedHonestClient wraps a shielded model in the enclave-training
// client. syncEvery batches of hidden gradients are accumulated per export.
func NewShieldedHonestClient(name string, sm *core.ShieldedModel, shard *dataset.Dataset, epochs, batch, syncEvery int, lr float32) (*ShieldedHonestClient, error) {
	tr, err := core.NewEnclaveTrainer(sm, lr, syncEvery)
	if err != nil {
		return nil, fmt.Errorf("fl: client %s: %w", name, err)
	}
	return &ShieldedHonestClient{
		Name:    name,
		Trainer: tr,
		Shard:   shard,
		Epochs:  epochs,
		Batch:   batch,
		Seed:    1,
	}, nil
}

// ID implements Client.
func (c *ShieldedHonestClient) ID() string { return c.Name }

// Update implements Client.
func (c *ShieldedHonestClient) Update(req UpdateRequest) (UpdateResponse, error) {
	m := c.Trainer.Model()
	if err := Apply(m, req.Weights); err != nil {
		return UpdateResponse{}, fmt.Errorf("fl: client %s applying round %d weights: %w", c.Name, req.Round, err)
	}
	now := nowOr(c.Now)
	t0 := now()
	if _, err := c.Trainer.TrainEpochs(c.Shard.X, c.Shard.Y, c.Epochs, c.Batch, c.Seed+int64(req.Round)); err != nil {
		return UpdateResponse{}, fmt.Errorf("fl: client %s enclave training: %w", c.Name, err)
	}
	trainNS := now().Sub(t0).Nanoseconds()
	met := c.Trainer.Enclave().Metrics()
	return UpdateResponse{
		ClientID: c.Name,
		Weights:  Snapshot(m),
		Samples:  c.Shard.Len(),
		Note: fmt.Sprintf("enclave training: %d hidden exports, %d world switches, %v overhead",
			c.Trainer.Exports, met.WorldSwitches, met.SimulatedOverhead),
		TrainNS: trainNS,
	}, nil
}

// WireBytes returns the gob-encoded size of a weight snapshot — the §VI
// bandwidth cost of one model transfer.
func WireBytes(w Weights) (int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return 0, fmt.Errorf("fl: encoding weights: %w", err)
	}
	return buf.Len(), nil
}
