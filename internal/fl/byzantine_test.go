package fl

import (
	"math"
	"testing"

	"pelta/internal/dataset"
	"pelta/internal/models"
)

func TestValidPoison(t *testing.T) {
	for _, name := range append(PoisonStrategies(), "", "none") {
		if err := ValidPoison(name); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if err := ValidPoison("gaslight"); err == nil {
		t.Fatal("unknown strategy must fail")
	}
}

// TestSignFlipMirrorsHonestUpdate: with identical seeds the sign-flipped
// update must be the exact mirror of the honest one around the broadcast.
func TestSignFlipMirrorsHonestUpdate(t *testing.T) {
	train, _ := flDataset(t)
	shard := train.Shards(4)[0]
	tc := models.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3, Seed: 5}
	req := UpdateRequest{Round: 1, Weights: Snapshot(newTestModel(40))}

	honest := NewHonestClient("h", newTestModel(41), shard, tc)
	hResp, err := honest.Update(req)
	if err != nil {
		t.Fatal(err)
	}
	flip := NewSignFlipClient("f", newTestModel(41), shard, tc)
	fResp, err := flip.Update(req)
	if err != nil {
		t.Fatal(err)
	}
	if fResp.Samples != hResp.Samples {
		t.Fatalf("samples %d, want %d (protocol surface must look honest)", fResp.Samples, hResp.Samples)
	}
	for i := range hResp.Weights.Data {
		p := req.Weights.Data[i]
		for j := range hResp.Weights.Data[i] {
			want := 2*float64(p[j]) - float64(hResp.Weights.Data[i][j])
			if got := float64(fResp.Weights.Data[i][j]); math.Abs(got-want) > 1e-5 {
				t.Fatalf("tensor %d[%d]: got %v, want mirrored %v", i, j, got, want)
			}
		}
	}
}

// TestModelReplacementBoostsDelta: the reported delta must scale linearly
// with Boost, and the malicious training target must differ from honest.
func TestModelReplacementBoostsDelta(t *testing.T) {
	train, _ := flDataset(t)
	shard := train.Shards(4)[0]
	tc := models.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3, Seed: 5}
	req := UpdateRequest{Round: 1, Weights: Snapshot(newTestModel(42))}

	run := func(boost float64) UpdateResponse {
		c := NewModelReplacementClient("r", newTestModel(43), shard, tc, 1)
		c.Boost = boost
		resp, err := c.Update(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1, r4 := run(1), run(4)
	var norm1, diff float64
	for i := range r1.Weights.Data {
		p := req.Weights.Data[i]
		for j := range r1.Weights.Data[i] {
			d1 := float64(r1.Weights.Data[i][j]) - float64(p[j])
			d4 := float64(r4.Weights.Data[i][j]) - float64(p[j])
			norm1 += d1 * d1
			diff += (d4 - 4*d1) * (d4 - 4*d1)
		}
	}
	if norm1 == 0 {
		t.Fatal("replacement client trained no delta")
	}
	if math.Sqrt(diff) > 1e-3*math.Sqrt(norm1) {
		t.Fatalf("boost=4 delta is not 4× the boost=1 delta (residual %v of %v)", math.Sqrt(diff), math.Sqrt(norm1))
	}
}

// TestModelReplacementDefeatedByDefenses is the subsystem's reason to
// exist, in miniature: one boosted replacer in a four-client federation
// wrecks plain FedAvg, while Multi-Krum keeps the global model close to its
// clean accuracy by averaging only the honest cluster.
func TestModelReplacementDefeatedByDefenses(t *testing.T) {
	// 3 classes across 4 clients: stride sharding then cycles labels, so
	// every client sees every class and a defense may exclude one client
	// without deleting a class from the federation (4 clients × 4 classes
	// would give each device a single label).
	cfg := dataset.SynthCIFAR10(8, 51)
	cfg.Classes = 3
	cfg.TrainN, cfg.ValN = 240, 80
	train, val := dataset.Generate(cfg)
	shards := train.Shards(4)
	tc := models.TrainConfig{Epochs: 1, BatchSize: 16, LR: 2e-3, Seed: 7}

	run := func(agg Aggregator, poisoned bool) float64 {
		conns := make([]Conn, 4)
		for i := 0; i < 3; i++ {
			conns[i] = Local(NewHonestClient("h", newTestModel(int64(50+i)), shards[i], tc))
		}
		if poisoned {
			conns[3] = Local(NewModelReplacementClient("r", newTestModel(53), shards[3], tc, 4))
		} else {
			conns[3] = Local(NewHonestClient("h3", newTestModel(53), shards[3], tc))
		}
		srv := &Server{Global: newTestModel(49), Conns: conns, Agg: agg}
		if _, err := srv.Run(5); err != nil {
			t.Fatal(err)
		}
		return models.Accuracy(srv.Global, val.X, val.Y)
	}

	clean := run(nil, false)
	poisonedAvg := run(nil, true)
	multikrum, err := NewAggregator(DefenseMultiKrum)
	if err != nil {
		t.Fatal(err)
	}
	defended := run(multikrum, true)

	if clean <= 0.3 {
		t.Fatalf("clean federation should learn something, got %.2f", clean)
	}
	if poisonedAvg >= clean*0.8 {
		t.Fatalf("model replacement barely hurt FedAvg: clean %.2f vs poisoned %.2f", clean, poisonedAvg)
	}
	if defended < clean*0.8 {
		t.Fatalf("multikrum did not recover: clean %.2f, defended %.2f", clean, defended)
	}
}
