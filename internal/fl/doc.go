// Package fl implements the federated-learning substrate of Fig. 1 and the
// asynchronous round engine that scales it: a trusted aggregating server,
// honest clients fine-tuning the broadcast model on local shards, and the
// compromised/poisoning clients of the threat model that probe their local
// copy for adversarial examples (the threat Pelta mitigates). Clients
// attach either in-process or over TCP with a gob wire format (Conn,
// ServeClient, Dial).
//
// Two server regimes share the RoundResult telemetry:
//
//   - Server is the synchronous FedAvg loop of the paper: every round
//     broadcasts, barriers on all clients, and applies the sample-weighted
//     average (FedAvg).
//   - AsyncServer is the traffic-scale engine: a Sampler draws a client
//     cohort per round, a goroutine worker pool runs their updates
//     concurrently over the Conn transport, and a BufferedAggregator
//     merges updates as they arrive — closing a round at Quorum instead of
//     barriering on the slowest client, folding stragglers in with a
//     (1+staleness)^-λ discount (StalenessFedAvg), and refusing duplicate
//     deliveries and beyond-horizon updates.
//
// Robust aggregation under poisoning: both servers take a pluggable
// Aggregator defense — Krum/Multi-Krum selection, coordinate-wise trimmed
// mean and median, and norm-clipped FedAvg (NewAggregator) — that bounds
// what a minority of malicious clients can do to the global model. The
// attacker side fields three poison strategies: the label-flip shard
// poisoner (PoisoningClient), and the update-space SignFlipClient and
// ModelReplacementClient (scaled boosting) the defenses exist to stop.
// Robust rules compose with the async engine's staleness discounts, and a
// nil Aggregator (or FedAvgAgg) reproduces the defenseless engine
// bit-identically. Checkpoints written by SaveCheckpoint stamp which
// defense trained the weights (CheckpointMeta), so a serving warm start
// can report the model's provenance.
//
// Round-phase telemetry: every RoundResult carries an obs.RoundSpan
// breaking the round's wall time into client training (client-measured
// TrainNS, summed over the merged cohort), transport (round-trip wall
// minus training), aggregation (rule + apply) and broadcast (snapshot +
// encoding), stamped on the injectable Now clock of either engine.
// RoundSpans extracts them for NDJSON export (cmd/flsim -trace) and
// eval.SummarizeRoundSpans; RoundMetrics renders the cumulative phase
// totals as registry metrics for the unified exposition.
//
// Concurrency: clients never run two updates at once (the engine tracks
// busy devices), each client owns its model replica, and the aggregator is
// confined to the server's event loop — no locks anywhere on the round
// path. Determinism: samplers are pure functions of (seed, round), every
// malicious client reseeds its probe per round from its own seed, and
// AsyncConfig.Deterministic barriers each round and merges in client order
// so a FullSampler run reproduces the synchronous Server bit-identically —
// the property Table-reproduction runs and the test suite pin down.
//
// SweepSpec/RunSweep execute a scenario matrix — {fleet size × non-IID
// shard skew × shield on/off × probe attack × poisoning fraction × poison
// strategy × aggregation defense} — one asynchronous federation per cell,
// emitting one SweepRow per cell for cmd/flsim to serialize and
// internal/eval to summarize (including the defense × poisoning
// robustness table).
package fl
