// Package fl implements the federated-learning substrate of Fig. 1 and the
// asynchronous round engine that scales it: a trusted aggregating server,
// honest clients fine-tuning the broadcast model on local shards, and the
// compromised/poisoning clients of the threat model that probe their local
// copy for adversarial examples (the threat Pelta mitigates). Clients
// attach either in-process or over TCP with a gob wire format (Conn,
// ServeClient, Dial).
//
// Two server regimes share the RoundResult telemetry:
//
//   - Server is the synchronous FedAvg loop of the paper: every round
//     broadcasts, barriers on all clients, and applies the sample-weighted
//     average (FedAvg).
//   - AsyncServer is the traffic-scale engine: a Sampler draws a client
//     cohort per round, a goroutine worker pool runs their updates
//     concurrently over the Conn transport, and a BufferedAggregator
//     merges updates as they arrive — closing a round at Quorum instead of
//     barriering on the slowest client, folding stragglers in with a
//     (1+staleness)^-λ discount (StalenessFedAvg), and refusing duplicate
//     deliveries and beyond-horizon updates.
//
// Concurrency: clients never run two updates at once (the engine tracks
// busy devices), each client owns its model replica, and the aggregator is
// confined to the server's event loop — no locks anywhere on the round
// path. Determinism: samplers are pure functions of (seed, round), every
// malicious client reseeds its probe per round from its own seed, and
// AsyncConfig.Deterministic barriers each round and merges in client order
// so a FullSampler run reproduces the synchronous Server bit-identically —
// the property Table-reproduction runs and the test suite pin down.
//
// SweepSpec/RunSweep execute a scenario matrix — {fleet size × non-IID
// shard skew × shield on/off × probe attack × poisoning fraction} — one
// asynchronous federation per cell, emitting one SweepRow per cell for
// cmd/flsim to serialize and internal/eval to summarize.
package fl
