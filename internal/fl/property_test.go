package fl

import (
	"testing"
	"testing/quick"
)

// Property: FedAvg stays inside the per-coordinate convex hull of the
// updates for any positive sample counts.
func TestFedAvgConvexHullProperty(t *testing.T) {
	f := func(a, b, c float32, n1Raw, n2Raw uint8) bool {
		n1 := int(n1Raw%31) + 1
		n2 := int(n2Raw%31) + 1
		u1 := Weights{Names: []string{"w"}, Shapes: [][]int{{3}}, Data: [][]float32{{a, b, c}}}
		u2 := Weights{Names: []string{"w"}, Shapes: [][]int{{3}}, Data: [][]float32{{c, a, b}}}
		avg, err := FedAvg([]Weights{u1, u2}, []int{n1, n2})
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			lo, hi := u1.Data[0][i], u2.Data[0][i]
			if lo > hi {
				lo, hi = hi, lo
			}
			v := avg.Data[0][i]
			const eps = 1e-4
			if v < lo-eps || v > hi+eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FedAvg of identical updates is the identity.
func TestFedAvgIdempotenceProperty(t *testing.T) {
	f := func(a, b float32, kRaw uint8) bool {
		k := int(kRaw%5) + 2
		u := Weights{Names: []string{"w"}, Shapes: [][]int{{2}}, Data: [][]float32{{a, b}}}
		updates := make([]Weights, k)
		counts := make([]int, k)
		for i := range updates {
			updates[i] = u
			counts[i] = i + 1
		}
		avg, err := FedAvg(updates, counts)
		if err != nil {
			return false
		}
		const eps = 1e-3
		return abs32(avg.Data[0][0]-a) < eps*(1+abs32(a)) && abs32(avg.Data[0][1]-b) < eps*(1+abs32(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// Property: Snapshot/Apply round-trips arbitrary weight perturbations.
func TestSnapshotApplyRoundTripProperty(t *testing.T) {
	m := newTestModel(5)
	f := func(scale float32) bool {
		if scale != scale || scale > 1e6 || scale < -1e6 { // NaN/huge guard
			return true
		}
		w := Snapshot(m)
		for i := range w.Data[0] {
			w.Data[0][i] *= 1 + scale/10
		}
		if err := Apply(m, w); err != nil {
			return false
		}
		back := Snapshot(m)
		for i := range back.Data[0] {
			if back.Data[0][i] != w.Data[0][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
