package fl

import (
	"encoding/gob"
	"fmt"
	"os"

	"pelta/internal/models"
)

// SaveWeights writes a gob-encoded weight snapshot to path, so trained
// defenders can be reused across experiment runs.
func SaveWeights(path string, w Weights) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fl: creating checkpoint %s: %w", path, err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(w); err != nil {
		return fmt.Errorf("fl: encoding checkpoint %s: %w", path, err)
	}
	return nil
}

// LoadWeights reads a snapshot written by SaveWeights.
func LoadWeights(path string) (Weights, error) {
	f, err := os.Open(path)
	if err != nil {
		return Weights{}, fmt.Errorf("fl: opening checkpoint %s: %w", path, err)
	}
	defer f.Close()
	var w Weights
	if err := gob.NewDecoder(f).Decode(&w); err != nil {
		return Weights{}, fmt.Errorf("fl: decoding checkpoint %s: %w", path, err)
	}
	return w, nil
}

// SaveModel checkpoints a model's current parameters.
func SaveModel(path string, m models.Model) error {
	return SaveWeights(path, Snapshot(m))
}

// LoadModel restores a model's parameters from a checkpoint. The model
// must have the same architecture that produced the checkpoint.
func LoadModel(path string, m models.Model) error {
	w, err := LoadWeights(path)
	if err != nil {
		return err
	}
	return Apply(m, w)
}
