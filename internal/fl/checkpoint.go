package fl

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"pelta/internal/models"
)

// CheckpointMeta records the provenance of a saved weight snapshot, so a
// serving warm start (cmd/peltaserve) can report which defense trained the
// model it is about to expose.
type CheckpointMeta struct {
	// Aggregator is the defense that produced the weights (see
	// AggregatorNames; empty for legacy or non-federated checkpoints).
	Aggregator string
	// Rounds is how many aggregations trained the snapshot.
	Rounds int
	// Seed is the experiment seed of the producing run.
	Seed int64
}

// checkpointFile is the on-disk gob envelope of a stamped checkpoint.
// Legacy checkpoints (pre-meta) are a bare gob-encoded Weights; both
// formats load through LoadCheckpoint.
type checkpointFile struct {
	Weights Weights
	Meta    CheckpointMeta
}

// SaveCheckpoint writes a weight snapshot with its provenance stamp.
func SaveCheckpoint(path string, w Weights, meta CheckpointMeta) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fl: creating checkpoint %s: %w", path, err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(checkpointFile{Weights: w, Meta: meta}); err != nil {
		return fmt.Errorf("fl: encoding checkpoint %s: %w", path, err)
	}
	return nil
}

// LoadCheckpoint reads a snapshot written by SaveCheckpoint or the legacy
// SaveWeights format (which yields a zero CheckpointMeta).
func LoadCheckpoint(path string) (Weights, CheckpointMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Weights{}, CheckpointMeta{}, fmt.Errorf("fl: opening checkpoint %s: %w", path, err)
	}
	defer f.Close()
	var ck checkpointFile
	err = gob.NewDecoder(f).Decode(&ck)
	if err == nil && len(ck.Weights.Data) > 0 {
		return ck.Weights, ck.Meta, nil
	}
	// Legacy format: gob matches struct fields by name, so decoding a bare
	// Weights stream into the envelope "succeeds" with empty weights —
	// rewind and decode the old shape directly.
	if _, serr := f.Seek(0, io.SeekStart); serr != nil {
		return Weights{}, CheckpointMeta{}, fmt.Errorf("fl: rewinding checkpoint %s: %w", path, serr)
	}
	var w Weights
	if lerr := gob.NewDecoder(f).Decode(&w); lerr != nil || len(w.Data) == 0 {
		if err == nil {
			err = lerr
		}
		if err == nil {
			err = fmt.Errorf("empty weight snapshot")
		}
		return Weights{}, CheckpointMeta{}, fmt.Errorf("fl: decoding checkpoint %s: %w", path, err)
	}
	return w, CheckpointMeta{}, nil
}

// SaveWeights writes an unstamped weight snapshot to path, so trained
// defenders can be reused across experiment runs.
func SaveWeights(path string, w Weights) error {
	return SaveCheckpoint(path, w, CheckpointMeta{})
}

// LoadWeights reads a snapshot written by SaveWeights/SaveCheckpoint,
// discarding any provenance stamp.
func LoadWeights(path string) (Weights, error) {
	w, _, err := LoadCheckpoint(path)
	return w, err
}

// SaveModel checkpoints a model's current parameters.
func SaveModel(path string, m models.Model) error {
	return SaveWeights(path, Snapshot(m))
}

// LoadModel restores a model's parameters from a checkpoint. The model
// must have the same architecture that produced the checkpoint.
func LoadModel(path string, m models.Model) error {
	w, err := LoadWeights(path)
	if err != nil {
		return err
	}
	return Apply(m, w)
}
