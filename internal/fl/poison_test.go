package fl

import (
	"testing"

	"pelta/internal/attack"
	"pelta/internal/models"
)

func TestPoisoningClientCraftsEffectivePoison(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	train, val := flDataset(t)
	shards := train.Shards(2)
	tc := models.TrainConfig{Epochs: 2, BatchSize: 16, LR: 2e-3, Seed: 1}
	probe := &attack.PGD{Eps: 0.1, Step: 0.0125, Steps: 8}

	run := func(shield bool) (*PoisoningClient, float64) {
		global := newTestModel(90)
		poisoner := NewPoisoningClient("eve", newTestModel(91), shards[0], tc, probe, 0.3, shield)
		srv := &Server{
			Global: global,
			Conns: []Conn{
				Local(poisoner),
				Local(NewHonestClient("alice", newTestModel(92), shards[1], tc)),
			},
			Eval: func(m models.Model) float64 { return models.Accuracy(m, val.X, val.Y) },
		}
		results, err := srv.Run(5)
		if err != nil {
			t.Fatal(err)
		}
		return poisoner, results[len(results)-1].Accuracy
	}

	clearPoisoner, _ := run(false)
	shieldPoisoner, _ := run(true)

	// The crafted poison only "works" when the attacker can complete the
	// chain rule: count effectively fooling samples in the last rounds.
	sum := func(xs []int, from int) int {
		total := 0
		for _, v := range xs[from:] {
			total += v
		}
		return total
	}
	// Skip early rounds where the model is untrained (any noise "fools" a
	// random model).
	lastClear := sum(clearPoisoner.PoisonedPerRound, 2)
	lastShield := sum(shieldPoisoner.PoisonedPerRound, 2)
	if lastShield >= lastClear {
		t.Fatalf("shield should reduce effective poison: clear=%d shielded=%d", lastClear, lastShield)
	}
}

func TestPoisoningClientZeroFraction(t *testing.T) {
	train, _ := flDataset(t)
	shard := train.Shards(4)[0]
	tc := models.TrainConfig{Epochs: 1, BatchSize: 16, LR: 1e-3, Seed: 1}
	p := NewPoisoningClient("eve", newTestModel(93), shard, tc, &attack.FGSM{Eps: 0.1}, 0, false)
	resp, err := p.Update(UpdateRequest{Round: 1, Weights: Snapshot(newTestModel(93))})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Samples != shard.Len() {
		t.Fatalf("samples = %d", resp.Samples)
	}
	if p.PoisonedPerRound[0] != 0 {
		t.Fatal("no poison expected at fraction 0")
	}
}
