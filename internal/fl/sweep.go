package fl

import (
	"fmt"
	"math"
	"strings"
	"time"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// SweepSpec defines the scenario matrix of a federated simulation sweep:
// the cross product of client counts, non-IID shard skews, shielding
// settings, probe attacks and poisoning fractions, each cell run as one
// asynchronous federation on synthetic data. The spec is fully seeded, so
// a sweep replays deterministically cell by cell.
type SweepSpec struct {
	// Matrix axes. Empty axes collapse to a single default value.
	Clients     []int     // fleet sizes (honest + malicious)
	Skews       []float64 // ShardsSkewed label skew: 0 = IID … 1 = one class per device
	Shields     []bool    // Pelta on/off on the malicious devices
	Attacks     []string  // probe attacks: none, fgsm, pgd, apgd, saga
	PoisonFracs []float64 // poisoning intensity (see Poisons for its meaning per strategy)
	// Poisons selects the poisoning strategy per cell (default label-flip).
	// For label-flip, PoisonFrac is the fraction of the single poisoner's
	// shard replaced by crafted samples (the PR 2 semantics). For the
	// update-space sign-flip and model-replacement strategies it is the
	// fraction of the FLEET that is malicious (≥ 1 client when > 0).
	Poisons []string
	// Defenses selects the server aggregation rule per cell (default
	// fedavg); see AggregatorNames.
	Defenses []string

	// Per-cell simulation scale.
	Rounds  int     // aggregations per cell (default 2)
	HW      int     // image side (default 8)
	Classes int     // label-space size (default 3)
	TrainN  int     // training samples across the fleet (default 30·Clients)
	ValN    int     // validation samples (default 24)
	Epochs  int     // local epochs per round (default 1)
	Batch   int     // local batch size (default 16)
	LR      float64 // local learning rate (default 2e-3)
	ProbeN  int     // samples the compromised client perturbs (default 6)
	Steps   int     // iterative-attack steps (default 3)
	Eps     float32 // attack ε (default 0.1)

	// Engine knobs (see AsyncConfig).
	Workers       int
	Quorum        int
	Deterministic bool
	Seed          int64

	// Now overrides the wall clock the per-cell Seconds timing is measured
	// on (nil = wall clock). The simulation itself is fully seeded; only
	// the timing column is clock-dependent.
	Now func() time.Time
}

// SweepCell identifies one point of the scenario matrix.
type SweepCell struct {
	Clients    int     `json:"clients"`
	Skew       float64 `json:"skew"`
	Shield     bool    `json:"shield"`
	Attack     string  `json:"attack"`
	PoisonFrac float64 `json:"poison_frac"`
	// Poison is the poisoning strategy ("none" when PoisonFrac is 0; empty
	// in pre-defense rows, meaning label-flip).
	Poison string `json:"poison,omitempty"`
	// Defense is the server aggregation rule (empty = legacy plain FedAvg).
	Defense string `json:"defense,omitempty"`
}

// SweepRow is one JSON result row of a sweep — the machine-readable record
// cmd/flsim emits per cell and internal/eval consumes.
type SweepRow struct {
	SweepCell
	Rounds int   `json:"rounds"`
	Seed   int64 `json:"seed"`

	// Outcome metrics.
	FinalAccuracy  float64 `json:"final_accuracy"`
	RobustAccuracy float64 `json:"robust_accuracy"` // last probe round; 1 when no probe ran
	ProbeSamples   int     `json:"probe_samples"`   // 0 ⇒ attack == none (no probe)
	Fooled         int     `json:"fooled"`
	PoisonEff      int     `json:"poison_effective"` // genuinely evading poison samples, summed over rounds

	// Engine telemetry.
	DownBytes    int     `json:"down_bytes"`
	UpBytes      int     `json:"up_bytes"`
	Seconds      float64 `json:"seconds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	Merged       int     `json:"merged"`
	StaleMerged  int     `json:"stale_merged"`
	Duplicates   int     `json:"duplicates"`
	Rejected     int     `json:"rejected"`
	Drops        int     `json:"drops"`
}

// withDefaults fills the zero fields of a spec.
func (s SweepSpec) withDefaults() SweepSpec {
	def := func(v *[]int, d int) {
		if len(*v) == 0 {
			*v = []int{d}
		}
	}
	def(&s.Clients, 3)
	if len(s.Skews) == 0 {
		s.Skews = []float64{0}
	}
	if len(s.Shields) == 0 {
		s.Shields = []bool{false}
	}
	if len(s.Attacks) == 0 {
		s.Attacks = []string{"pgd"}
	}
	if len(s.PoisonFracs) == 0 {
		s.PoisonFracs = []float64{0}
	}
	if len(s.Poisons) == 0 {
		s.Poisons = []string{PoisonLabelFlip}
	}
	if len(s.Defenses) == 0 {
		s.Defenses = []string{DefenseFedAvg}
	}
	if s.Rounds <= 0 {
		s.Rounds = 2
	}
	if s.HW <= 0 {
		s.HW = 8
	}
	if s.Classes <= 0 {
		s.Classes = 3
	}
	if s.ValN <= 0 {
		s.ValN = 24
	}
	if s.Epochs <= 0 {
		s.Epochs = 1
	}
	if s.Batch <= 0 {
		s.Batch = 16
	}
	if s.LR <= 0 {
		s.LR = 2e-3
	}
	if s.ProbeN <= 0 {
		s.ProbeN = 6
	}
	if s.Steps <= 0 {
		s.Steps = 3
	}
	if s.Eps <= 0 {
		s.Eps = 0.1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Cells enumerates the scenario matrix in deterministic order. A poisoning
// fraction of zero makes the strategy axis moot, so such cells are emitted
// once with Poison "none" instead of once per strategy.
func (s SweepSpec) Cells() []SweepCell {
	s = s.withDefaults()
	var out []SweepCell
	for _, c := range s.Clients {
		for _, sk := range s.Skews {
			for _, sh := range s.Shields {
				for _, at := range s.Attacks {
					for _, pf := range s.PoisonFracs {
						for pi, po := range s.Poisons {
							if pf == 0 {
								if pi > 0 {
									continue
								}
								po = "none"
							}
							for _, def := range s.Defenses {
								out = append(out, SweepCell{Clients: c, Skew: sk, Shield: sh, Attack: at, PoisonFrac: pf, Poison: po, Defense: def})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// NewProbe instantiates a probe attack by name for the single-defender
// setting of a malicious client. vit (the attacker's local model, when it
// is a ViT) supplies the attention rollout SAGA needs against a shielded
// oracle; it may be nil for gradient-only attacks.
func NewProbe(name string, eps, step float32, steps int, seed int64, vit *models.ViT) (attack.Attack, error) {
	switch strings.ToLower(name) {
	case "fgsm":
		return &attack.FGSM{Eps: eps}, nil
	case "pgd":
		return &attack.PGD{Eps: eps, Step: step, Steps: steps}, nil
	case "apgd":
		return &attack.APGD{Eps: eps, Steps: steps, Rho: 0.75, Restarts: 1, Seed: seed}, nil
	case "saga":
		p := &attack.SelfSAGA{SAGA: attack.SAGA{Eps: eps, Step: step, Steps: steps, AlphaK: 0.5}}
		if vit != nil {
			p.Rollout = &attack.ViTRollout{V: vit}
		}
		return p, nil
	default:
		return nil, fmt.Errorf("fl: unknown probe attack %q (want fgsm, pgd, apgd or saga)", name)
	}
}

// poisonerCount translates a cell's poison axis into how many malicious
// clients join the fleet: label-flip keeps the single shard-level poisoner
// of PR 2 (PoisonFrac is its in-shard fraction), while the update-space
// strategies read PoisonFrac as the fraction of the fleet compromised.
func poisonerCount(cell SweepCell) int {
	if cell.PoisonFrac <= 0 || cell.Poison == "none" {
		return 0
	}
	switch cell.Poison {
	case "", PoisonLabelFlip:
		return 1
	default:
		n := int(math.Round(cell.PoisonFrac * float64(cell.Clients)))
		if n < 1 {
			n = 1
		}
		if n > cell.Clients-1 {
			n = cell.Clients - 1
		}
		return n
	}
}

// RunCell executes one cell of the matrix and returns its result row.
//
// The fleet is client 0 = compromised prober (when the cell has an attack),
// the next poisonerCount clients malicious in the cell's poison strategy,
// and honest clients for the rest; every device trains the same scaled-down
// ViT on its label-skewed shard, the round engine runs with the spec's
// async knobs, and the server aggregates with the cell's defense.
func RunCell(spec SweepSpec, cell SweepCell) (SweepRow, error) {
	spec = spec.withDefaults()
	if cell.Clients < 1 {
		return SweepRow{}, fmt.Errorf("fl: sweep cell needs ≥ 1 client, got %d", cell.Clients)
	}
	if err := ValidPoison(cell.Poison); err != nil {
		return SweepRow{}, err
	}
	if cell.PoisonFrac > 0 && cell.Poison != "none" && poisonerCount(cell) == 0 {
		// A 1-client fleet cannot host an update-space poisoner (the clamp
		// keeps ≥ 1 honest client); erroring beats silently running clean
		// with poison_frac > 0 stamped on the row.
		return SweepRow{}, fmt.Errorf("fl: sweep cell %+v needs ≥ 2 clients for %s poisoning", cell, cell.Poison)
	}
	var agg Aggregator
	if cell.Defense != "" {
		var err error
		if agg, err = NewAggregator(cell.Defense); err != nil {
			return SweepRow{}, err
		}
	}
	trainN := spec.TrainN
	if trainN <= 0 {
		trainN = 30 * cell.Clients
	}
	cfg := dataset.SynthCIFAR10(spec.HW, spec.Seed)
	cfg.Classes = spec.Classes
	cfg.TrainN, cfg.ValN = trainN, spec.ValN
	train, val := dataset.Generate(cfg)
	shards := train.ShardsSkewed(cell.Clients, cell.Skew, spec.Seed+41)

	newModel := func(s int64) *models.ViT {
		return models.NewViT(models.SmallViT("ViT-sweep", cfg.Classes, spec.HW, spec.HW/4), tensor.NewRNG(s))
	}
	tc := models.TrainConfig{Epochs: spec.Epochs, BatchSize: spec.Batch, LR: spec.LR, Seed: spec.Seed}
	step := spec.Eps / 8

	var compromised *CompromisedClient
	var poisoner *PoisoningClient
	wantPoisoners := poisonerCount(cell)
	placed := 0
	conns := make([]Conn, 0, cell.Clients)
	for i := 0; i < cell.Clients; i++ {
		m := newModel(spec.Seed + 100 + int64(i))
		name := fmt.Sprintf("client-%d", i)
		switch {
		case i == 0 && cell.Attack != "" && cell.Attack != "none":
			probe, err := NewProbe(cell.Attack, spec.Eps, step, spec.Steps, spec.Seed, m)
			if err != nil {
				return SweepRow{}, err
			}
			compromised = NewCompromisedClient("mallory", m, shards[i], tc, probe, spec.ProbeN, cell.Shield)
			conns = append(conns, Local(compromised))
		case placed < wantPoisoners && (i > 0 || cell.Attack == "" || cell.Attack == "none"):
			pname := fmt.Sprintf("poisoner-%d", placed)
			switch cell.Poison {
			case PoisonSignFlip:
				conns = append(conns, Local(NewSignFlipClient(pname, m, shards[i], tc)))
			case PoisonModelReplacement:
				conns = append(conns, Local(NewModelReplacementClient(pname, m, shards[i], tc, cell.Clients)))
			default: // label-flip: one shard-level poisoner, PR 2 semantics
				probe, err := NewProbe("pgd", spec.Eps, step, spec.Steps, spec.Seed, m)
				if err != nil {
					return SweepRow{}, err
				}
				poisoner = NewPoisoningClient("poisoner", m, shards[i], tc, probe, cell.PoisonFrac, cell.Shield)
				conns = append(conns, Local(poisoner))
			}
			placed++
		default:
			conns = append(conns, Local(NewHonestClient(name, m, shards[i], tc)))
		}
	}
	if wantPoisoners > 0 && placed < wantPoisoners {
		// Don't let the cell silently degrade to an unpoisoned run — its
		// row would drag eval's poison averages toward zero.
		return SweepRow{}, fmt.Errorf("fl: sweep cell %+v has no client slot left for %d poisoner(s) (needs more clients alongside the attack)", cell, wantPoisoners)
	}

	srv := &AsyncServer{
		Global: newModel(spec.Seed),
		Conns:  conns,
		Config: AsyncConfig{
			Rounds:        spec.Rounds,
			Workers:       spec.Workers,
			Quorum:        spec.Quorum,
			Deterministic: spec.Deterministic,
			Agg:           agg,
		},
	}
	now := nowOr(spec.Now)
	start := now()
	results, err := srv.Run()
	if err != nil {
		return SweepRow{}, fmt.Errorf("fl: sweep cell %+v: %w", cell, err)
	}
	elapsed := now().Sub(start).Seconds()

	row := SweepRow{
		SweepCell:      cell,
		Rounds:         spec.Rounds,
		Seed:           spec.Seed,
		FinalAccuracy:  models.Accuracy(srv.Global, val.X, val.Y),
		RobustAccuracy: 1,
		Seconds:        elapsed,
		Drops:          srv.Drops(),
	}
	if elapsed > 0 {
		row.RoundsPerSec = float64(len(results)) / elapsed
	}
	st := srv.Stats()
	row.Merged, row.StaleMerged, row.Duplicates, row.Rejected = st.Merged, st.StaleMerged, st.Duplicates, st.Rejected
	for _, r := range results {
		row.DownBytes += r.DownBytes
		row.UpBytes += r.UpBytes
	}
	if compromised != nil && len(compromised.Outcomes) > 0 {
		last := compromised.Outcomes[len(compromised.Outcomes)-1]
		row.RobustAccuracy = last.RobustAccuracy
		row.ProbeSamples = last.Samples
		row.Fooled = last.Fooled
	}
	if poisoner != nil {
		for _, e := range poisoner.PoisonedPerRound {
			row.PoisonEff += e
		}
	}
	return row, nil
}

// RunSweep executes every cell of the matrix in order, invoking emit (when
// non-nil) after each cell so callers can stream NDJSON rows as they land.
func RunSweep(spec SweepSpec, emit func(SweepRow)) ([]SweepRow, error) {
	cells := spec.Cells()
	rows := make([]SweepRow, 0, len(cells))
	for _, cell := range cells {
		row, err := RunCell(spec, cell)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
		if emit != nil {
			emit(row)
		}
	}
	return rows, nil
}
