package fl

import (
	"fmt"
	"strings"
	"time"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// SweepSpec defines the scenario matrix of a federated simulation sweep:
// the cross product of client counts, non-IID shard skews, shielding
// settings, probe attacks and poisoning fractions, each cell run as one
// asynchronous federation on synthetic data. The spec is fully seeded, so
// a sweep replays deterministically cell by cell.
type SweepSpec struct {
	// Matrix axes. Empty axes collapse to a single default value.
	Clients     []int     // fleet sizes (honest + malicious)
	Skews       []float64 // ShardsSkewed label skew: 0 = IID … 1 = one class per device
	Shields     []bool    // Pelta on/off on the malicious devices
	Attacks     []string  // probe attacks: none, fgsm, pgd, apgd, saga
	PoisonFracs []float64 // fraction of the poisoner's shard replaced per round

	// Per-cell simulation scale.
	Rounds  int     // aggregations per cell (default 2)
	HW      int     // image side (default 8)
	Classes int     // label-space size (default 3)
	TrainN  int     // training samples across the fleet (default 30·Clients)
	ValN    int     // validation samples (default 24)
	Epochs  int     // local epochs per round (default 1)
	Batch   int     // local batch size (default 16)
	LR      float64 // local learning rate (default 2e-3)
	ProbeN  int     // samples the compromised client perturbs (default 6)
	Steps   int     // iterative-attack steps (default 3)
	Eps     float32 // attack ε (default 0.1)

	// Engine knobs (see AsyncConfig).
	Workers       int
	Quorum        int
	Deterministic bool
	Seed          int64
}

// SweepCell identifies one point of the scenario matrix.
type SweepCell struct {
	Clients    int     `json:"clients"`
	Skew       float64 `json:"skew"`
	Shield     bool    `json:"shield"`
	Attack     string  `json:"attack"`
	PoisonFrac float64 `json:"poison_frac"`
}

// SweepRow is one JSON result row of a sweep — the machine-readable record
// cmd/flsim emits per cell and internal/eval consumes.
type SweepRow struct {
	SweepCell
	Rounds int   `json:"rounds"`
	Seed   int64 `json:"seed"`

	// Outcome metrics.
	FinalAccuracy  float64 `json:"final_accuracy"`
	RobustAccuracy float64 `json:"robust_accuracy"` // last probe round; 1 when no probe ran
	ProbeSamples   int     `json:"probe_samples"`   // 0 ⇒ attack == none (no probe)
	Fooled         int     `json:"fooled"`
	PoisonEff      int     `json:"poison_effective"` // genuinely evading poison samples, summed over rounds

	// Engine telemetry.
	DownBytes    int     `json:"down_bytes"`
	UpBytes      int     `json:"up_bytes"`
	Seconds      float64 `json:"seconds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	Merged       int     `json:"merged"`
	StaleMerged  int     `json:"stale_merged"`
	Duplicates   int     `json:"duplicates"`
	Rejected     int     `json:"rejected"`
	Drops        int     `json:"drops"`
}

// withDefaults fills the zero fields of a spec.
func (s SweepSpec) withDefaults() SweepSpec {
	def := func(v *[]int, d int) {
		if len(*v) == 0 {
			*v = []int{d}
		}
	}
	def(&s.Clients, 3)
	if len(s.Skews) == 0 {
		s.Skews = []float64{0}
	}
	if len(s.Shields) == 0 {
		s.Shields = []bool{false}
	}
	if len(s.Attacks) == 0 {
		s.Attacks = []string{"pgd"}
	}
	if len(s.PoisonFracs) == 0 {
		s.PoisonFracs = []float64{0}
	}
	if s.Rounds <= 0 {
		s.Rounds = 2
	}
	if s.HW <= 0 {
		s.HW = 8
	}
	if s.Classes <= 0 {
		s.Classes = 3
	}
	if s.ValN <= 0 {
		s.ValN = 24
	}
	if s.Epochs <= 0 {
		s.Epochs = 1
	}
	if s.Batch <= 0 {
		s.Batch = 16
	}
	if s.LR <= 0 {
		s.LR = 2e-3
	}
	if s.ProbeN <= 0 {
		s.ProbeN = 6
	}
	if s.Steps <= 0 {
		s.Steps = 3
	}
	if s.Eps <= 0 {
		s.Eps = 0.1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Cells enumerates the scenario matrix in deterministic order.
func (s SweepSpec) Cells() []SweepCell {
	s = s.withDefaults()
	var out []SweepCell
	for _, c := range s.Clients {
		for _, sk := range s.Skews {
			for _, sh := range s.Shields {
				for _, at := range s.Attacks {
					for _, pf := range s.PoisonFracs {
						out = append(out, SweepCell{Clients: c, Skew: sk, Shield: sh, Attack: at, PoisonFrac: pf})
					}
				}
			}
		}
	}
	return out
}

// NewProbe instantiates a probe attack by name for the single-defender
// setting of a malicious client. vit (the attacker's local model, when it
// is a ViT) supplies the attention rollout SAGA needs against a shielded
// oracle; it may be nil for gradient-only attacks.
func NewProbe(name string, eps, step float32, steps int, seed int64, vit *models.ViT) (attack.Attack, error) {
	switch strings.ToLower(name) {
	case "fgsm":
		return &attack.FGSM{Eps: eps}, nil
	case "pgd":
		return &attack.PGD{Eps: eps, Step: step, Steps: steps}, nil
	case "apgd":
		return &attack.APGD{Eps: eps, Steps: steps, Rho: 0.75, Restarts: 1, Seed: seed}, nil
	case "saga":
		p := &attack.SelfSAGA{SAGA: attack.SAGA{Eps: eps, Step: step, Steps: steps, AlphaK: 0.5}}
		if vit != nil {
			p.Rollout = &attack.ViTRollout{V: vit}
		}
		return p, nil
	default:
		return nil, fmt.Errorf("fl: unknown probe attack %q (want fgsm, pgd, apgd or saga)", name)
	}
}

// RunCell executes one cell of the matrix and returns its result row.
//
// The fleet is client 0 = compromised prober (when the cell has an attack),
// the next client a poisoner (when PoisonFrac > 0), and honest clients for
// the rest; every device trains the same scaled-down ViT on its label-skewed
// shard, and the round engine runs with the spec's async knobs.
func RunCell(spec SweepSpec, cell SweepCell) (SweepRow, error) {
	spec = spec.withDefaults()
	if cell.Clients < 1 {
		return SweepRow{}, fmt.Errorf("fl: sweep cell needs ≥ 1 client, got %d", cell.Clients)
	}
	trainN := spec.TrainN
	if trainN <= 0 {
		trainN = 30 * cell.Clients
	}
	cfg := dataset.SynthCIFAR10(spec.HW, spec.Seed)
	cfg.Classes = spec.Classes
	cfg.TrainN, cfg.ValN = trainN, spec.ValN
	train, val := dataset.Generate(cfg)
	shards := train.ShardsSkewed(cell.Clients, cell.Skew, spec.Seed+41)

	newModel := func(s int64) *models.ViT {
		return models.NewViT(models.SmallViT("ViT-sweep", cfg.Classes, spec.HW, spec.HW/4), tensor.NewRNG(s))
	}
	tc := models.TrainConfig{Epochs: spec.Epochs, BatchSize: spec.Batch, LR: spec.LR, Seed: spec.Seed}
	step := spec.Eps / 8

	var compromised *CompromisedClient
	var poisoner *PoisoningClient
	conns := make([]Conn, 0, cell.Clients)
	for i := 0; i < cell.Clients; i++ {
		m := newModel(spec.Seed + 100 + int64(i))
		name := fmt.Sprintf("client-%d", i)
		switch {
		case i == 0 && cell.Attack != "" && cell.Attack != "none":
			probe, err := NewProbe(cell.Attack, spec.Eps, step, spec.Steps, spec.Seed, m)
			if err != nil {
				return SweepRow{}, err
			}
			compromised = NewCompromisedClient("mallory", m, shards[i], tc, probe, spec.ProbeN, cell.Shield)
			conns = append(conns, Local(compromised))
		case poisoner == nil && cell.PoisonFrac > 0 && (i > 0 || cell.Attack == "" || cell.Attack == "none"):
			probe, err := NewProbe("pgd", spec.Eps, step, spec.Steps, spec.Seed, m)
			if err != nil {
				return SweepRow{}, err
			}
			poisoner = NewPoisoningClient("poisoner", m, shards[i], tc, probe, cell.PoisonFrac, cell.Shield)
			conns = append(conns, Local(poisoner))
		default:
			conns = append(conns, Local(NewHonestClient(name, m, shards[i], tc)))
		}
	}
	if cell.PoisonFrac > 0 && poisoner == nil {
		// Don't let the cell silently degrade to an unpoisoned run — its
		// row would drag eval's poison averages toward zero.
		return SweepRow{}, fmt.Errorf("fl: sweep cell %+v has no client slot left for the poisoner (needs ≥ 2 clients alongside an attack)", cell)
	}

	srv := &AsyncServer{
		Global: newModel(spec.Seed),
		Conns:  conns,
		Config: AsyncConfig{
			Rounds:        spec.Rounds,
			Workers:       spec.Workers,
			Quorum:        spec.Quorum,
			Deterministic: spec.Deterministic,
		},
	}
	start := time.Now()
	results, err := srv.Run()
	if err != nil {
		return SweepRow{}, fmt.Errorf("fl: sweep cell %+v: %w", cell, err)
	}
	elapsed := time.Since(start).Seconds()

	row := SweepRow{
		SweepCell:      cell,
		Rounds:         spec.Rounds,
		Seed:           spec.Seed,
		FinalAccuracy:  models.Accuracy(srv.Global, val.X, val.Y),
		RobustAccuracy: 1,
		Seconds:        elapsed,
		Drops:          srv.Drops(),
	}
	if elapsed > 0 {
		row.RoundsPerSec = float64(len(results)) / elapsed
	}
	st := srv.Stats()
	row.Merged, row.StaleMerged, row.Duplicates, row.Rejected = st.Merged, st.StaleMerged, st.Duplicates, st.Rejected
	for _, r := range results {
		row.DownBytes += r.DownBytes
		row.UpBytes += r.UpBytes
	}
	if compromised != nil && len(compromised.Outcomes) > 0 {
		last := compromised.Outcomes[len(compromised.Outcomes)-1]
		row.RobustAccuracy = last.RobustAccuracy
		row.ProbeSamples = last.Samples
		row.Fooled = last.Fooled
	}
	if poisoner != nil {
		for _, e := range poisoner.PoisonedPerRound {
			row.PoisonEff += e
		}
	}
	return row, nil
}

// RunSweep executes every cell of the matrix in order, invoking emit (when
// non-nil) after each cell so callers can stream NDJSON rows as they land.
func RunSweep(spec SweepSpec, emit func(SweepRow)) ([]SweepRow, error) {
	cells := spec.Cells()
	rows := make([]SweepRow, 0, len(cells))
	for _, cell := range cells {
		row, err := RunCell(spec, cell)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
		if emit != nil {
			emit(row)
		}
	}
	return rows, nil
}
