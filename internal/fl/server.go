package fl

import (
	"fmt"
	"sync"
	"time"

	"pelta/internal/models"
	"pelta/internal/obs"
)

// RoundResult summarizes one federation round.
type RoundResult struct {
	Round int
	// Accuracy is the global model's validation accuracy after
	// aggregation, when the server has an Eval hook.
	Accuracy float64
	// Notes carries client telemetry (e.g. attack outcome reports).
	Notes []string
	// DownBytes is the wire size of the broadcast model; UpBytes sums the
	// client updates — the §VI bandwidth accounting.
	DownBytes int
	UpBytes   int
	// Merged, StaleMerged and Dropped describe the round's composition
	// under the AsyncServer: updates folded in, the subset that arrived
	// late from an older model version, and clients lost in transit. The
	// synchronous Server leaves them zero.
	Merged      int
	StaleMerged int
	Dropped     int
	// Timing is the round's phase span: client training (client-measured),
	// update transport (round-trip wall minus training), the aggregation
	// rule plus apply, and the model broadcast (snapshot plus encoding).
	// Timestamps read the engine's clock, so spans are deterministic when
	// a fake clock is injected.
	Timing obs.RoundSpan
}

// Span returns the round's phase span, stamped with its round number and
// merged-client count.
func (r *RoundResult) Span() obs.RoundSpan { return r.Timing }

// Server is the trusted FL aggregator of Fig. 1: it broadcasts the global
// model, gathers local updates, and applies FedAvg.
type Server struct {
	Global models.Model
	Conns  []Conn
	// Eval, when set, scores the global model after every round.
	Eval func(m models.Model) float64
	// Parallel fans client updates out to goroutines (default sequential,
	// deterministic).
	Parallel bool
	// Agg is the aggregation defense (nil = plain FedAvg, bit-identical to
	// the pre-defense server).
	Agg Aggregator
	// Now overrides the clock the round-phase spans are stamped on
	// (nil = time.Now). Tests inject a counter here to make spans exact.
	Now func() time.Time
}

// Run executes the given number of federation rounds.
func (s *Server) Run(rounds int) ([]RoundResult, error) {
	if len(s.Conns) == 0 {
		return nil, fmt.Errorf("fl: server has no clients")
	}
	now := nowOr(s.Now)
	results := make([]RoundResult, 0, rounds)
	for r := 1; r <= rounds; r++ {
		t0 := now()
		req := UpdateRequest{Round: r, Weights: Snapshot(s.Global)}
		down, err := WireBytes(req.Weights)
		if err != nil {
			return results, fmt.Errorf("fl: round %d: %w", r, err)
		}
		tBroadcast := now()
		resps, err := s.collect(req)
		if err != nil {
			return results, fmt.Errorf("fl: round %d: %w", r, err)
		}
		tCollect := now()
		updates := make([]Weights, len(resps))
		counts := make([]int, len(resps))
		notes := make([]string, 0, len(resps))
		up := 0
		for i, resp := range resps {
			updates[i] = resp.Weights
			counts[i] = resp.Samples
			if resp.Note != "" {
				notes = append(notes, resp.ClientID+": "+resp.Note)
			}
			n, err := WireBytes(resp.Weights)
			if err != nil {
				return results, fmt.Errorf("fl: round %d: %w", r, err)
			}
			up += n
		}
		var agg Weights
		if s.Agg != nil {
			agg, err = s.Agg.Aggregate(req.Weights, updates, counts, make([]int, len(updates)), 0)
		} else {
			agg, err = FedAvg(updates, counts)
		}
		if err != nil {
			return results, fmt.Errorf("fl: round %d aggregation: %w", r, err)
		}
		if err := Apply(s.Global, agg); err != nil {
			return results, fmt.Errorf("fl: round %d apply: %w", r, err)
		}
		tAgg := now()
		var train int64
		for _, resp := range resps {
			train += resp.TrainNS
		}
		// Transport is the collect wall time net of client-reported
		// training; a parallel collect can overlap training across clients,
		// so the difference is clamped rather than trusted below zero.
		transport := tCollect.Sub(tBroadcast).Nanoseconds() - train
		if transport < 0 {
			transport = 0
		}
		res := RoundResult{Round: r, Notes: notes, DownBytes: down, UpBytes: up,
			Timing: obs.RoundSpan{
				Round:       r,
				Clients:     len(resps),
				TrainNS:     train,
				TransportNS: transport,
				AggregateNS: tAgg.Sub(tCollect).Nanoseconds(),
				BroadcastNS: tBroadcast.Sub(t0).Nanoseconds(),
			}}
		if s.Eval != nil {
			res.Accuracy = s.Eval(s.Global)
		}
		results = append(results, res)
	}
	return results, nil
}

// collect gathers one update from every client.
func (s *Server) collect(req UpdateRequest) ([]UpdateResponse, error) {
	resps := make([]UpdateResponse, len(s.Conns))
	if !s.Parallel {
		for i, c := range s.Conns {
			r, err := c.Update(req)
			if err != nil {
				return nil, fmt.Errorf("client %s: %w", c.ID(), err)
			}
			resps[i] = r
		}
		return resps, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(s.Conns))
	for i, c := range s.Conns {
		wg.Add(1)
		go func(i int, c Conn) {
			defer wg.Done()
			r, err := c.Update(req)
			if err != nil {
				errs[i] = fmt.Errorf("client %s: %w", c.ID(), err)
				return
			}
			resps[i] = r
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return resps, nil
}
