package fl

import (
	"sync"
	"testing"
	"time"

	"pelta/internal/obs"
)

// tickClock advances a fixed step on every Now() call, making the span
// arithmetic of the round engines exact: each timestamp pair measured
// around a section differs by step × (calls in between).
type tickClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newTickClock(step time.Duration) *tickClock {
	return &tickClock{t: time.Unix(2000, 0), step: step}
}

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// timedConn answers instantly with a fixed snapshot and a declared
// client-side training time.
type timedConn struct {
	name    string
	w       Weights
	trainNS int64
}

func (c *timedConn) Update(req UpdateRequest) (UpdateResponse, error) {
	return UpdateResponse{ClientID: c.name, Weights: c.w, Samples: 1, TrainNS: c.trainNS}, nil
}

func (c *timedConn) ID() string   { return c.name }
func (c *timedConn) Close() error { return nil }

// TestServerRoundSpansExact pins the sync engine's phase accounting on a
// tick clock: 4 Now() calls per round bracket broadcast / collect /
// aggregate, so with a 1ms step each bracketed section reads exactly 1ms
// and transport is that collect wall net of the declared training time.
func TestServerRoundSpansExact(t *testing.T) {
	g := newTestModel(7)
	w := Snapshot(g)
	const trainNS = int64(400_000) // 0.4ms per client
	srv := &Server{
		Global: g,
		Conns: []Conn{
			&timedConn{name: "a", w: w, trainNS: trainNS},
			&timedConn{name: "b", w: w, trainNS: trainNS},
		},
		Now: newTickClock(time.Millisecond).Now,
	}
	results, err := srv.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("rounds %d", len(results))
	}
	ms := time.Millisecond.Nanoseconds()
	for i, r := range results {
		sp := r.Span()
		want := obs.RoundSpan{
			Round:       i + 1,
			Clients:     2,
			TrainNS:     2 * trainNS,
			TransportNS: ms - 2*trainNS,
			AggregateNS: ms,
			BroadcastNS: ms,
		}
		if sp != want {
			t.Fatalf("round %d span %+v, want %+v", i+1, sp, want)
		}
	}

	spans := RoundSpans(results)
	if len(spans) != 3 || spans[2].Round != 3 {
		t.Fatalf("RoundSpans %+v", spans)
	}
	mets := RoundMetrics(results)
	byKey := map[string]float64{}
	for _, m := range mets {
		byKey[m.Name+m.Labels["phase"]] = m.Value
	}
	if byKey["pelta_fl_rounds_total"] != 3 || byKey["pelta_fl_client_updates_total"] != 6 {
		t.Fatalf("fl metrics %+v", byKey)
	}
	if byKey["pelta_fl_phase_ns_totaltrain"] != float64(3*2*trainNS) {
		t.Fatalf("train phase total %v", byKey["pelta_fl_phase_ns_totaltrain"])
	}
	if byKey["pelta_fl_phase_ns_totalaggregate"] != float64(3*ms) {
		t.Fatalf("aggregate phase total %v", byKey["pelta_fl_phase_ns_totalaggregate"])
	}
}

// TestAsyncRoundSpans pins the async engine's phase accounting: per-round
// spans carry the merged cohort's declared training time, a positive
// transport share (workers bracket each round-trip on the clock), and
// exact 1ms aggregate/broadcast sections under the barriered deterministic
// mode.
func TestAsyncRoundSpans(t *testing.T) {
	g := newTestModel(11)
	w := Snapshot(g)
	const trainNS = int64(400_000)
	srv := &AsyncServer{
		Global: g,
		Conns: []Conn{
			&timedConn{name: "a", w: w, trainNS: trainNS},
			&timedConn{name: "b", w: w, trainNS: trainNS},
			&timedConn{name: "c", w: w, trainNS: trainNS},
		},
		Config: AsyncConfig{Rounds: 2, Deterministic: true},
		Now:    newTickClock(time.Millisecond).Now,
	}
	results, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("rounds %d", len(results))
	}
	ms := time.Millisecond.Nanoseconds()
	for i, r := range results {
		sp := r.Span()
		if sp.Round != i+1 || sp.Clients != 3 {
			t.Fatalf("round %d span %+v", i+1, sp)
		}
		if sp.TrainNS != 3*trainNS {
			t.Fatalf("round %d train %d, want %d", i+1, sp.TrainNS, 3*trainNS)
		}
		// Each worker brackets its round-trip with two 1ms ticks, so every
		// merged update contributes at least 1ms − trainNS of transport.
		if sp.TransportNS < 3*(ms-trainNS) {
			t.Fatalf("round %d transport %d too small", i+1, sp.TransportNS)
		}
		if sp.AggregateNS != ms || sp.BroadcastNS != ms {
			t.Fatalf("round %d aggregate/broadcast %d/%d, want 1ms each", i+1, sp.AggregateNS, sp.BroadcastNS)
		}
	}
}
