package fl

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Aggregator is a pluggable server-side aggregation rule — the defense
// surface of a federation with malicious participants. FedAvg trusts every
// update; the robust rules below bound what a minority of poisoned clients
// can do to the global model (Byzantine-robust aggregation: Krum, trimmed
// mean, coordinate median, norm clipping).
//
// Aggregate merges client updates into the next global weights. prev is the
// broadcast snapshot the updates trained from (delta-space rules like norm
// clipping need it), counts are per-update sample counts, staleness[i] ≥ 0
// is how many versions old update i is, and lambda is the staleness-decay
// exponent — so robust selection composes with the async engine's
// (1+s)^-λ discounts instead of replacing them.
type Aggregator interface {
	Name() string
	Aggregate(prev Weights, updates []Weights, counts, staleness []int, lambda float64) (Weights, error)
}

// Canonical aggregator names accepted by NewAggregator (and the cmd/flsim
// -defense / -sweep.defenses axes).
const (
	DefenseFedAvg      = "fedavg"
	DefenseKrum        = "krum"
	DefenseMultiKrum   = "multikrum"
	DefenseTrimmedMean = "trimmed-mean"
	DefenseMedian      = "median"
	DefenseNormClip    = "normclip"
)

// AggregatorNames lists the canonical defense names in sweep-axis order.
func AggregatorNames() []string {
	return []string{DefenseFedAvg, DefenseKrum, DefenseMultiKrum, DefenseTrimmedMean, DefenseMedian, DefenseNormClip}
}

// NewAggregator builds a defense by canonical name with its default knobs.
// The empty string selects plain FedAvg.
func NewAggregator(name string) (Aggregator, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", DefenseFedAvg:
		return FedAvgAgg{}, nil
	case DefenseKrum:
		return &Krum{M: 1}, nil
	case DefenseMultiKrum:
		return &Krum{}, nil
	case DefenseTrimmedMean, "trimmed":
		return &TrimmedMean{Frac: 0.25}, nil
	case DefenseMedian:
		return MedianAgg{}, nil
	case DefenseNormClip:
		return &NormClip{}, nil
	default:
		return nil, fmt.Errorf("fl: unknown aggregator %q (want %s)", name, strings.Join(AggregatorNames(), ", "))
	}
}

// validateUpdates checks the inputs every rule shares.
func validateUpdates(updates []Weights, counts, staleness []int) error {
	if len(updates) == 0 {
		return fmt.Errorf("fl: aggregating no updates")
	}
	if len(updates) != len(counts) || len(updates) != len(staleness) {
		return fmt.Errorf("fl: %d updates but %d counts, %d staleness", len(updates), len(counts), len(staleness))
	}
	ref := updates[0]
	for u, upd := range updates {
		if len(upd.Data) != len(ref.Data) {
			return fmt.Errorf("fl: update %d has %d tensors, expected %d", u, len(upd.Data), len(ref.Data))
		}
		for i := range upd.Data {
			if len(upd.Data[i]) != len(ref.Data[i]) {
				return fmt.Errorf("fl: update %d tensor %q size mismatch", u, ref.Names[i])
			}
		}
	}
	for i, c := range counts {
		if c <= 0 {
			return fmt.Errorf("fl: non-positive sample count %d", c)
		}
		if staleness[i] < 0 {
			return fmt.Errorf("fl: negative staleness %d", staleness[i])
		}
	}
	return nil
}

// discounted returns the per-update aggregation weights: sample counts
// discounted by (1+staleness)^-lambda — the StalenessFedAvg rule factored
// out so every robust aggregator composes with the async engine's discounts.
func discounted(counts, staleness []int, lambda float64) []float64 {
	ws := make([]float64, len(counts))
	for i, c := range counts {
		ws[i] = float64(c) * math.Pow(1+float64(staleness[i]), -lambda)
	}
	return ws
}

// emptyLike allocates a zeroed Weights with ref's names and shapes.
func emptyLike(ref Weights) Weights {
	out := Weights{
		Names:  append([]string(nil), ref.Names...),
		Shapes: make([][]int, len(ref.Shapes)),
		Data:   make([][]float32, len(ref.Data)),
	}
	for i := range ref.Data {
		out.Shapes[i] = append([]int(nil), ref.Shapes[i]...)
		out.Data[i] = make([]float32, len(ref.Data[i]))
	}
	return out
}

// weightedMean folds updates into their ws-weighted mean. ws must be
// positive and parallel to updates.
func weightedMean(updates []Weights, ws []float64) Weights {
	total := 0.0
	for _, w := range ws {
		total += w
	}
	out := emptyLike(updates[0])
	for u, upd := range updates {
		frac := float32(ws[u] / total)
		for i := range upd.Data {
			dst := out.Data[i]
			for j, v := range upd.Data[i] {
				dst[j] += frac * v
			}
		}
	}
	return out
}

// FedAvgAgg is the FedAvg baseline behind the Aggregator interface. It runs
// the exact arithmetic of FedAvg (all updates fresh) or StalenessFedAvg
// (any straggler), so a federation configured with FedAvgAgg reproduces a
// defenseless one bit-identically — including deterministic mode.
type FedAvgAgg struct{}

// Name implements Aggregator.
func (FedAvgAgg) Name() string { return DefenseFedAvg }

// Aggregate implements Aggregator.
func (FedAvgAgg) Aggregate(_ Weights, updates []Weights, counts, staleness []int, lambda float64) (Weights, error) {
	for _, s := range staleness {
		if s > 0 {
			return StalenessFedAvg(updates, counts, staleness, lambda)
		}
	}
	return FedAvg(updates, counts)
}

// Krum implements Krum and Multi-Krum (Blanchard et al., NeurIPS 2017):
// each update is scored by the summed squared distance to its n-f-2 nearest
// neighbors, so an update that had to move far from the honest cluster to
// do damage scores itself out. The M lowest-scoring updates are kept and
// merged with their staleness-discounted FedAvg weights.
type Krum struct {
	// F is the number of Byzantine clients tolerated (0 = max(1, n/4)).
	F int
	// M is how many lowest-scoring updates are merged: 1 = classic Krum,
	// 0 = Multi-Krum's n-F.
	M int
}

// Name implements Aggregator.
func (k *Krum) Name() string {
	if k.M == 1 {
		return DefenseKrum
	}
	return DefenseMultiKrum
}

// Aggregate implements Aggregator.
func (k *Krum) Aggregate(_ Weights, updates []Weights, counts, staleness []int, lambda float64) (Weights, error) {
	if err := validateUpdates(updates, counts, staleness); err != nil {
		return Weights{}, err
	}
	n := len(updates)
	if n == 1 {
		return updates[0], nil
	}
	f := k.F
	if f <= 0 {
		f = n / 4
		if f < 1 {
			f = 1
		}
	}
	m := k.M
	if m <= 0 {
		m = n - f
	}
	if m > n {
		m = n
	}
	// Closest n-f-2 neighbors, clamped so every update scores at least one.
	neighbors := n - f - 2
	if neighbors < 1 {
		neighbors = 1
	}
	if neighbors > n-1 {
		neighbors = n - 1
	}

	// Pairwise squared L2 distances in float64.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := 0.0
			for t := range updates[i].Data {
				a, b := updates[i].Data[t], updates[j].Data[t]
				for x := range a {
					diff := float64(a[x]) - float64(b[x])
					d += diff * diff
				}
			}
			dist[i][j], dist[j][i] = d, d
		}
	}
	scores := make([]float64, n)
	buf := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		buf = buf[:0]
		for j := 0; j < n; j++ {
			if j != i {
				buf = append(buf, dist[i][j])
			}
		}
		sort.Float64s(buf)
		for _, d := range buf[:neighbors] {
			scores[i] += d
		}
	}
	// Select the m lowest scores; ties break on update index, so the merge
	// order (ascending client index out of BufferedAggregator.Drain) keeps
	// seeded runs bit-reproducible.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	sel := append([]int(nil), order[:m]...)
	sort.Ints(sel)

	ws := discounted(counts, staleness, lambda)
	selUpd := make([]Weights, len(sel))
	selWs := make([]float64, len(sel))
	for i, idx := range sel {
		selUpd[i] = updates[idx]
		selWs[i] = ws[idx]
	}
	return weightedMean(selUpd, selWs), nil
}

// TrimmedMean is the coordinate-wise trimmed mean (Yin et al., ICML 2018):
// per coordinate the Frac fraction of lowest and highest values is dropped
// and the survivors are averaged with their staleness-discounted weights —
// extreme coordinates never reach the global model, whoever sent them.
type TrimmedMean struct {
	// Frac is the fraction trimmed from EACH end per coordinate (default
	// 0.25, clamped so at least one value survives).
	Frac float64
}

// Name implements Aggregator.
func (t *TrimmedMean) Name() string { return DefenseTrimmedMean }

// Aggregate implements Aggregator.
func (t *TrimmedMean) Aggregate(_ Weights, updates []Weights, counts, staleness []int, lambda float64) (Weights, error) {
	if err := validateUpdates(updates, counts, staleness); err != nil {
		return Weights{}, err
	}
	n := len(updates)
	frac := t.Frac
	if frac <= 0 {
		frac = 0.25
	}
	k := int(frac * float64(n))
	for n-2*k < 1 {
		k--
	}
	if k < 0 {
		k = 0
	}
	ws := discounted(counts, staleness, lambda)
	out := emptyLike(updates[0])
	type vw struct {
		v float64
		w float64
	}
	col := make([]vw, n)
	for ti := range out.Data {
		dst := out.Data[ti]
		for j := range dst {
			for u := 0; u < n; u++ {
				col[u] = vw{v: float64(updates[u].Data[ti][j]), w: ws[u]}
			}
			sort.Slice(col, func(a, b int) bool { return col[a].v < col[b].v })
			sum, wsum := 0.0, 0.0
			for _, c := range col[k : n-k] {
				sum += c.v * c.w
				wsum += c.w
			}
			dst[j] = float32(sum / wsum)
		}
	}
	return out, nil
}

// MedianAgg is the coordinate-wise median: the most aggressive robust rule
// here, immune to any minority of arbitrarily bad coordinates. The median
// is an order statistic, so sample counts and staleness discounts do not
// apply — a deliberately weight-agnostic defense.
type MedianAgg struct{}

// Name implements Aggregator.
func (MedianAgg) Name() string { return DefenseMedian }

// Aggregate implements Aggregator.
func (MedianAgg) Aggregate(_ Weights, updates []Weights, counts, staleness []int, lambda float64) (Weights, error) {
	if err := validateUpdates(updates, counts, staleness); err != nil {
		return Weights{}, err
	}
	n := len(updates)
	out := emptyLike(updates[0])
	col := make([]float64, n)
	for ti := range out.Data {
		dst := out.Data[ti]
		for j := range dst {
			for u := 0; u < n; u++ {
				col[u] = float64(updates[u].Data[ti][j])
			}
			sort.Float64s(col)
			if n%2 == 1 {
				dst[j] = float32(col[n/2])
			} else {
				dst[j] = float32((col[n/2-1] + col[n/2]) / 2)
			}
		}
	}
	return out, nil
}

// NormClip is norm-clipped FedAvg: each update's delta from the broadcast
// model is L2-clipped to Tau before the staleness-discounted weighted mean,
// so a scaled model-replacement update contributes no more than an honest
// one — boosting buys the attacker direction, never magnitude.
type NormClip struct {
	// Tau is the clipping norm. Tau <= 0 adapts per round to the median
	// update-delta norm, which needs no tuning and tracks honest progress
	// as local training slows down.
	Tau float64
}

// Name implements Aggregator.
func (c *NormClip) Name() string { return DefenseNormClip }

// Aggregate implements Aggregator.
func (c *NormClip) Aggregate(prev Weights, updates []Weights, counts, staleness []int, lambda float64) (Weights, error) {
	if err := validateUpdates(updates, counts, staleness); err != nil {
		return Weights{}, err
	}
	if len(prev.Data) != len(updates[0].Data) {
		return Weights{}, fmt.Errorf("fl: normclip needs the broadcast snapshot (%d tensors, updates have %d)", len(prev.Data), len(updates[0].Data))
	}
	n := len(updates)
	norms := make([]float64, n)
	for u, upd := range updates {
		s := 0.0
		for ti := range upd.Data {
			p := prev.Data[ti]
			for j, v := range upd.Data[ti] {
				d := float64(v) - float64(p[j])
				s += d * d
			}
		}
		norms[u] = math.Sqrt(s)
	}
	tau := c.Tau
	if tau <= 0 {
		sorted := append([]float64(nil), norms...)
		sort.Float64s(sorted)
		if n%2 == 1 {
			tau = sorted[n/2]
		} else {
			tau = (sorted[n/2-1] + sorted[n/2]) / 2
		}
	}
	ws := discounted(counts, staleness, lambda)
	total := 0.0
	for _, w := range ws {
		total += w
	}
	out := emptyLike(updates[0])
	for u, upd := range updates {
		scale := 1.0
		if tau > 0 && norms[u] > tau {
			scale = tau / norms[u]
		}
		frac := ws[u] / total
		for ti := range upd.Data {
			dst, p := out.Data[ti], prev.Data[ti]
			for j, v := range upd.Data[ti] {
				d := float64(v) - float64(p[j])
				dst[j] += float32(frac * scale * d)
			}
		}
	}
	for ti := range out.Data {
		dst, p := out.Data[ti], prev.Data[ti]
		for j := range dst {
			dst[j] += p[j]
		}
	}
	return out, nil
}
