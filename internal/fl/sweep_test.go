package fl

import (
	"testing"
)

// testSpec is the -short-safe sweep scale: tiny images, one local epoch,
// a handful of probe samples.
func testSpec() SweepSpec {
	return SweepSpec{
		Rounds: 2, HW: 8, Classes: 3, TrainN: 48, ValN: 12,
		Epochs: 1, Batch: 16, ProbeN: 4, Steps: 2,
		Deterministic: true, Seed: 11,
	}
}

// TestSweepMatrix runs a ≥24-cell scenario matrix end to end — the
// acceptance gate that a traffic-scale sweep fits the -short budget.
func TestSweepMatrix(t *testing.T) {
	spec := testSpec()
	spec.Clients = []int{2, 3}
	spec.Skews = []float64{0, 0.9}
	spec.Shields = []bool{false, true}
	spec.Attacks = []string{"none", "fgsm", "pgd"}
	spec.PoisonFracs = []float64{0}

	cells := spec.Cells()
	if len(cells) < 24 {
		t.Fatalf("matrix has %d cells, want ≥ 24", len(cells))
	}
	emitted := 0
	rows, err := RunSweep(spec, func(SweepRow) { emitted++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cells) || emitted != len(cells) {
		t.Fatalf("got %d rows / %d emits for %d cells", len(rows), emitted, len(cells))
	}
	for _, r := range rows {
		if r.FinalAccuracy < 0 || r.FinalAccuracy > 1 {
			t.Fatalf("cell %+v: accuracy %v out of range", r.SweepCell, r.FinalAccuracy)
		}
		if r.Merged == 0 || r.Seconds <= 0 {
			t.Fatalf("cell %+v: missing engine telemetry: %+v", r.SweepCell, r)
		}
		if r.Attack == "none" && r.ProbeSamples != 0 {
			t.Fatalf("cell %+v: probe ran without an attack", r.SweepCell)
		}
		if r.Attack != "none" && len(rows) > 0 && r.ProbeSamples == 0 && r.RobustAccuracy != 1 {
			t.Fatalf("cell %+v: inconsistent probe fields: %+v", r.SweepCell, r)
		}
	}
}

// TestSweepCellDeterministicRepro: the same seeded cell must reproduce its
// outcome metrics exactly.
func TestSweepCellDeterministicRepro(t *testing.T) {
	spec := testSpec()
	cell := SweepCell{Clients: 3, Skew: 0.5, Shield: true, Attack: "pgd"}
	a, err := RunCell(spec, cell)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(spec, cell)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAccuracy != b.FinalAccuracy || a.RobustAccuracy != b.RobustAccuracy ||
		a.Fooled != b.Fooled || a.UpBytes != b.UpBytes {
		t.Fatalf("seeded cell not reproducible:\n  %+v\n  %+v", a, b)
	}
}

// TestSweepPoisonCell exercises the poisoning axis.
func TestSweepPoisonCell(t *testing.T) {
	spec := testSpec()
	row, err := RunCell(spec, SweepCell{Clients: 3, Attack: "none", PoisonFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if row.ProbeSamples != 0 {
		t.Fatalf("poison-only cell ran a probe: %+v", row)
	}
	// PoisonEff may legitimately be 0 on a weak early model; the axis is
	// exercised if the cell ran all rounds with the poisoner merged.
	if row.Merged != 3*spec.Rounds {
		t.Fatalf("poison cell merged %d updates, want %d", row.Merged, 3*spec.Rounds)
	}
}

// TestSweepSAGAWithShield: the SelfSAGA probe must work against a shielded
// ViT (rollout computed from the clear deep segment).
func TestSweepSAGAWithShield(t *testing.T) {
	spec := testSpec()
	row, err := RunCell(spec, SweepCell{Clients: 2, Shield: true, Attack: "saga"})
	if err != nil {
		t.Fatal(err)
	}
	if row.RobustAccuracy < 0 || row.RobustAccuracy > 1 {
		t.Fatalf("SAGA cell robust accuracy %v", row.RobustAccuracy)
	}
}

// TestNewProbeUnknownAttack rejects bad matrix axes early.
func TestNewProbeUnknownAttack(t *testing.T) {
	if _, err := NewProbe("ddos", 0.1, 0.01, 3, 1, nil); err == nil {
		t.Fatal("unknown attack must fail")
	}
}

// TestSweepDefensePoisonAxes pins the new matrix dimensions: defenses
// multiply every cell, poison strategies multiply only poisoned cells (a
// 0-fraction cell is strategy-independent and appears once as "none").
func TestSweepDefensePoisonAxes(t *testing.T) {
	spec := testSpec()
	spec.Clients = []int{4}
	spec.Attacks = []string{"none"}
	spec.PoisonFracs = []float64{0, 0.25}
	spec.Poisons = []string{PoisonLabelFlip, PoisonSignFlip, PoisonModelReplacement}
	spec.Defenses = []string{DefenseFedAvg, DefenseMedian}

	cells := spec.Cells()
	// (1 none-cell + 3 poisoned strategies) × 2 defenses.
	if len(cells) != 8 {
		t.Fatalf("matrix has %d cells, want 8: %+v", len(cells), cells)
	}
	seenNone := 0
	for _, c := range cells {
		if c.PoisonFrac == 0 {
			if c.Poison != "none" {
				t.Fatalf("0-fraction cell carries strategy %q", c.Poison)
			}
			seenNone++
		}
		if c.Defense == "" {
			t.Fatalf("cell missing defense: %+v", c)
		}
	}
	if seenNone != 2 {
		t.Fatalf("%d clean cells, want one per defense", seenNone)
	}
}

// TestSweepByzantineCellRuns: an update-space poison cell must run end to
// end under a robust defense and report its full engine telemetry.
func TestSweepByzantineCellRuns(t *testing.T) {
	spec := testSpec()
	for _, poison := range []string{PoisonSignFlip, PoisonModelReplacement} {
		cell := SweepCell{Clients: 4, Attack: "none", PoisonFrac: 0.25, Poison: poison, Defense: DefenseMultiKrum}
		row, err := RunCell(spec, cell)
		if err != nil {
			t.Fatalf("%s: %v", poison, err)
		}
		if row.Merged != 4*spec.Rounds {
			t.Fatalf("%s: merged %d updates, want %d", poison, row.Merged, 4*spec.Rounds)
		}
		if row.FinalAccuracy < 0 || row.FinalAccuracy > 1 {
			t.Fatalf("%s: accuracy %v out of range", poison, row.FinalAccuracy)
		}
	}
}

// TestSweepRejectsBadAxes: unknown defenses and strategies fail fast with
// their cell instead of silently running FedAvg.
func TestSweepRejectsBadAxes(t *testing.T) {
	spec := testSpec()
	if _, err := RunCell(spec, SweepCell{Clients: 2, Defense: "hope"}); err == nil {
		t.Fatal("unknown defense must fail")
	}
	if _, err := RunCell(spec, SweepCell{Clients: 2, PoisonFrac: 0.5, Poison: "wishful"}); err == nil {
		t.Fatal("unknown poison strategy must fail")
	}
	// A 1-client fleet cannot host an update-space poisoner: erroring beats
	// running clean with poison_frac > 0 stamped on the row.
	if _, err := RunCell(spec, SweepCell{Clients: 1, PoisonFrac: 0.25, Poison: PoisonSignFlip}); err == nil {
		t.Fatal("1-client byzantine cell must fail, not silently run clean")
	}
}

// TestSweepDefenseCellDeterministic: a defended, poisoned cell must
// reproduce bit-identically at the same seed — the property the acceptance
// sweep's two-run comparison rests on.
func TestSweepDefenseCellDeterministic(t *testing.T) {
	spec := testSpec()
	cell := SweepCell{Clients: 4, Attack: "none", PoisonFrac: 0.25, Poison: PoisonModelReplacement, Defense: DefenseTrimmedMean}
	a, err := RunCell(spec, cell)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(spec, cell)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAccuracy != b.FinalAccuracy || a.UpBytes != b.UpBytes || a.Merged != b.Merged {
		t.Fatalf("defended cell not reproducible:\n  %+v\n  %+v", a, b)
	}
}
