package fl

import (
	"testing"
)

// testSpec is the -short-safe sweep scale: tiny images, one local epoch,
// a handful of probe samples.
func testSpec() SweepSpec {
	return SweepSpec{
		Rounds: 2, HW: 8, Classes: 3, TrainN: 48, ValN: 12,
		Epochs: 1, Batch: 16, ProbeN: 4, Steps: 2,
		Deterministic: true, Seed: 11,
	}
}

// TestSweepMatrix runs a ≥24-cell scenario matrix end to end — the
// acceptance gate that a traffic-scale sweep fits the -short budget.
func TestSweepMatrix(t *testing.T) {
	spec := testSpec()
	spec.Clients = []int{2, 3}
	spec.Skews = []float64{0, 0.9}
	spec.Shields = []bool{false, true}
	spec.Attacks = []string{"none", "fgsm", "pgd"}
	spec.PoisonFracs = []float64{0}

	cells := spec.Cells()
	if len(cells) < 24 {
		t.Fatalf("matrix has %d cells, want ≥ 24", len(cells))
	}
	emitted := 0
	rows, err := RunSweep(spec, func(SweepRow) { emitted++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cells) || emitted != len(cells) {
		t.Fatalf("got %d rows / %d emits for %d cells", len(rows), emitted, len(cells))
	}
	for _, r := range rows {
		if r.FinalAccuracy < 0 || r.FinalAccuracy > 1 {
			t.Fatalf("cell %+v: accuracy %v out of range", r.SweepCell, r.FinalAccuracy)
		}
		if r.Merged == 0 || r.Seconds <= 0 {
			t.Fatalf("cell %+v: missing engine telemetry: %+v", r.SweepCell, r)
		}
		if r.Attack == "none" && r.ProbeSamples != 0 {
			t.Fatalf("cell %+v: probe ran without an attack", r.SweepCell)
		}
		if r.Attack != "none" && len(rows) > 0 && r.ProbeSamples == 0 && r.RobustAccuracy != 1 {
			t.Fatalf("cell %+v: inconsistent probe fields: %+v", r.SweepCell, r)
		}
	}
}

// TestSweepCellDeterministicRepro: the same seeded cell must reproduce its
// outcome metrics exactly.
func TestSweepCellDeterministicRepro(t *testing.T) {
	spec := testSpec()
	cell := SweepCell{Clients: 3, Skew: 0.5, Shield: true, Attack: "pgd"}
	a, err := RunCell(spec, cell)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(spec, cell)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAccuracy != b.FinalAccuracy || a.RobustAccuracy != b.RobustAccuracy ||
		a.Fooled != b.Fooled || a.UpBytes != b.UpBytes {
		t.Fatalf("seeded cell not reproducible:\n  %+v\n  %+v", a, b)
	}
}

// TestSweepPoisonCell exercises the poisoning axis.
func TestSweepPoisonCell(t *testing.T) {
	spec := testSpec()
	row, err := RunCell(spec, SweepCell{Clients: 3, Attack: "none", PoisonFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if row.ProbeSamples != 0 {
		t.Fatalf("poison-only cell ran a probe: %+v", row)
	}
	// PoisonEff may legitimately be 0 on a weak early model; the axis is
	// exercised if the cell ran all rounds with the poisoner merged.
	if row.Merged != 3*spec.Rounds {
		t.Fatalf("poison cell merged %d updates, want %d", row.Merged, 3*spec.Rounds)
	}
}

// TestSweepSAGAWithShield: the SelfSAGA probe must work against a shielded
// ViT (rollout computed from the clear deep segment).
func TestSweepSAGAWithShield(t *testing.T) {
	spec := testSpec()
	row, err := RunCell(spec, SweepCell{Clients: 2, Shield: true, Attack: "saga"})
	if err != nil {
		t.Fatal(err)
	}
	if row.RobustAccuracy < 0 || row.RobustAccuracy > 1 {
		t.Fatalf("SAGA cell robust accuracy %v", row.RobustAccuracy)
	}
}

// TestNewProbeUnknownAttack rejects bad matrix axes early.
func TestNewProbeUnknownAttack(t *testing.T) {
	if _, err := NewProbe("ddos", 0.1, 0.01, 3, 1, nil); err == nil {
		t.Fatal("unknown attack must fail")
	}
}
