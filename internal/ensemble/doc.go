// Package ensemble implements the two-model ensemble defense of §V-A2:
// a ViT and a BiT combined under the random-selection decision policy [57],
// where each test sample is evaluated by one of the two members chosen
// uniformly at random. Adversarial examples transfer poorly between
// attention-based and CNN-based models, so the ensemble's astuteness
// exceeds either member's against single-model attacks.
//
// The random member selection is driven by a seeded RNG fixed at
// construction, so accuracy numbers reproduce for a given seed.
package ensemble
