package ensemble

import (
	"testing"

	"pelta/internal/core"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

func pair(t *testing.T) (*models.ViT, *models.BiT) {
	t.Helper()
	rng := tensor.NewRNG(1)
	return models.NewViT(models.SmallViT("vit-ens", 4, 8, 4), rng),
		models.NewBiT(models.SmallBiT("bit-ens", 4, 8), rng)
}

func TestEnsemblePredictShape(t *testing.T) {
	v, b := pair(t)
	e := New(&ClearMember{M: v}, &ClearMember{M: b}, 7)
	x := tensor.NewRNG(2).Uniform(0, 1, 6, 3, 8, 8)
	pred, err := e.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 6 {
		t.Fatalf("pred len = %d", len(pred))
	}
	for _, p := range pred {
		if p < 0 || p >= 4 {
			t.Fatalf("class %d out of range", p)
		}
	}
}

func TestEnsembleSelectsFromBothMembers(t *testing.T) {
	v, b := pair(t)
	e := New(&ClearMember{M: v}, &ClearMember{M: b}, 3)
	x := tensor.NewRNG(3).Uniform(0, 1, 64, 3, 8, 8)
	pred, err := e.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	pa := models.Predict(v, x)
	pb := models.Predict(b, x)
	fromA, fromB := 0, 0
	for i := range pred {
		switch pred[i] {
		case pa[i]:
			fromA++
		case pb[i]:
			fromB++
		}
	}
	// Random selection must mix members; with 64 samples both should
	// contribute (members rarely agree on random inputs).
	if fromA == 0 || fromB == 0 {
		t.Fatalf("selection degenerate: %d from A, %d from B", fromA, fromB)
	}
}

func TestEnsembleAccuracyBounds(t *testing.T) {
	v, b := pair(t)
	e := New(&ClearMember{M: v}, &ClearMember{M: b}, 5)
	x := tensor.NewRNG(4).Uniform(0, 1, 32, 3, 8, 8)
	y := models.Predict(v, x) // treat member A's view as ground truth
	ens, accA, accB, err := e.Accuracy(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if accA != 1 {
		t.Fatalf("member A accuracy vs own predictions = %v", accA)
	}
	lo, hi := accB, accA
	if lo > hi {
		lo, hi = hi, lo
	}
	if ens < lo-0.25 || ens > hi+0.25 {
		t.Fatalf("ensemble accuracy %.2f far outside member range [%.2f, %.2f]", ens, lo, hi)
	}
}

func TestEnsembleWithShieldedMember(t *testing.T) {
	v, b := pair(t)
	sm, err := core.NewShieldedModel(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := New(&ShieldedMember{SM: sm}, &ClearMember{M: b}, 9)
	x := tensor.NewRNG(5).Uniform(0, 1, 4, 3, 8, 8)
	pred, err := e.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 4 {
		t.Fatalf("pred len = %d", len(pred))
	}
	// Shielded member predictions agree with the clear model (utility is
	// preserved; only the attacker's view changes).
	direct := models.Predict(v, x)
	shp, err := (&ShieldedMember{SM: sm}).Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i] != shp[i] {
			t.Fatal("shielding changed predictions")
		}
	}
}

func TestEnsembleEmptyBatch(t *testing.T) {
	v, b := pair(t)
	e := New(&ClearMember{M: v}, &ClearMember{M: b}, 1)
	x := tensor.New(0, 3, 8, 8)
	if _, _, _, err := e.Accuracy(x, nil); err == nil {
		t.Fatal("empty batch should error")
	}
}
