package ensemble

import (
	"fmt"

	"pelta/internal/core"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// Member is one ensemble participant: a clear or Pelta-shielded classifier.
type Member interface {
	Name() string
	Predict(x *tensor.Tensor) ([]int, error)
}

// ClearMember adapts a plain model.
type ClearMember struct {
	M models.Model
}

var _ Member = (*ClearMember)(nil)

// Name implements Member.
func (m *ClearMember) Name() string { return m.M.Name() }

// Predict implements Member.
func (m *ClearMember) Predict(x *tensor.Tensor) ([]int, error) {
	return models.Predict(m.M, x), nil
}

// ShieldedMember adapts a Pelta-shielded model.
type ShieldedMember struct {
	SM *core.ShieldedModel
}

var _ Member = (*ShieldedMember)(nil)

// Name implements Member.
func (m *ShieldedMember) Name() string { return m.SM.Name() }

// Predict implements Member.
func (m *ShieldedMember) Predict(x *tensor.Tensor) ([]int, error) {
	return m.SM.Predict(x)
}

// Ensemble is the random-selection pair.
type Ensemble struct {
	A, B Member
	rng  *tensor.RNG
}

// New creates an ensemble with a seeded selection policy.
func New(a, b Member, seed int64) *Ensemble {
	return &Ensemble{A: a, B: b, rng: tensor.NewRNG(seed)}
}

// Name returns a combined label.
func (e *Ensemble) Name() string {
	return fmt.Sprintf("Ensemble(%s, %s)", e.A.Name(), e.B.Name())
}

// Predict classifies each sample with a uniformly chosen member.
func (e *Ensemble) Predict(x *tensor.Tensor) ([]int, error) {
	pa, err := e.A.Predict(x)
	if err != nil {
		return nil, fmt.Errorf("ensemble: member %s: %w", e.A.Name(), err)
	}
	pb, err := e.B.Predict(x)
	if err != nil {
		return nil, fmt.Errorf("ensemble: member %s: %w", e.B.Name(), err)
	}
	out := make([]int, len(pa))
	for i := range out {
		if e.rng.Intn(2) == 0 {
			out[i] = pa[i]
		} else {
			out[i] = pb[i]
		}
	}
	return out, nil
}

// Accuracy returns the ensemble's accuracy on (x, y) along with each
// member's individual accuracy — the three rows of every Table IV block.
func (e *Ensemble) Accuracy(x *tensor.Tensor, y []int) (ens, accA, accB float64, err error) {
	if len(y) == 0 {
		return 0, 0, 0, fmt.Errorf("ensemble: empty batch")
	}
	pa, err := e.A.Predict(x)
	if err != nil {
		return 0, 0, 0, err
	}
	pb, err := e.B.Predict(x)
	if err != nil {
		return 0, 0, 0, err
	}
	var ca, cb, ce int
	for i := range y {
		sel := pa[i]
		if e.rng.Intn(2) == 1 {
			sel = pb[i]
		}
		if pa[i] == y[i] {
			ca++
		}
		if pb[i] == y[i] {
			cb++
		}
		if sel == y[i] {
			ce++
		}
	}
	n := float64(len(y))
	if n == 0 {
		return 0, 0, 0, fmt.Errorf("ensemble: empty batch")
	}
	return float64(ce) / n, float64(ca) / n, float64(cb) / n, nil
}
