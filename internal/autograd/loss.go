package autograd

import (
	"fmt"
	"math"

	"pelta/internal/tensor"
)

// Reduction selects how per-sample losses are combined.
type Reduction int

const (
	// ReduceMean averages per-sample losses (training default).
	ReduceMean Reduction = iota
	// ReduceSum sums per-sample losses. Attacks use this so per-sample
	// input gradients are not scaled by 1/B.
	ReduceSum
)

// CrossEntropy computes the softmax cross-entropy of logits [B,C] against
// integer labels. It also exposes the per-sample losses and probabilities of
// the forward pass for evaluation code.
func (g *Graph) CrossEntropy(logits *Value, labels []int, red Reduction) (*Value, *CrossEntropyInfo) {
	ls := logits.Data.Shape()
	if len(ls) != 2 || ls[0] != len(labels) {
		panic(fmt.Sprintf("autograd: CrossEntropy logits %v vs %d labels", ls, len(labels)))
	}
	b, c := ls[0], ls[1]
	probs := g.alloc(b, c)
	tensor.SoftmaxRowsInto(probs, logits.Data)
	per := make([]float64, b)
	total := 0.0
	for i, y := range labels {
		if y < 0 || y >= c {
			panic(fmt.Sprintf("autograd: label %d out of range [0,%d)", y, c))
		}
		p := float64(probs.At(i, y))
		if p < 1e-12 {
			p = 1e-12
		}
		per[i] = -math.Log(p)
		total += per[i]
	}
	if red == ReduceMean {
		total /= float64(b)
	}
	out := g.node("cross_entropy", g.scalar(float32(total)), logits)
	out.backward = func() {
		scale := out.Grad.Data()[0]
		if red == ReduceMean {
			scale /= float32(b)
		}
		gl := g.alloc(b, c)
		gl.CopyFrom(probs)
		for i, y := range labels {
			gl.Data()[i*c+y] -= 1
		}
		tensor.ScaleIn(gl, scale)
		g.accum(logits, gl)
		g.free(gl)
	}
	return out, &CrossEntropyInfo{PerSample: per, Probs: probs}
}

// CrossEntropyInfo carries forward-pass byproducts of CrossEntropy.
//
// On a pooled graph, Probs borrows arena memory and is only valid until the
// graph's Release; callers that need it longer must Clone it. PerSample is
// always heap-allocated and safe to retain.
type CrossEntropyInfo struct {
	// PerSample holds the loss of each sample.
	PerSample []float64
	// Probs holds the softmax probabilities [B,C].
	Probs *tensor.Tensor
}

// CWMargin computes the Carlini & Wagner margin term per sample:
// max(Z_y − max_{i≠y} Z_i, −κ), summed over the batch. Minimizing it drives
// each sample across the decision boundary with confidence κ.
func (g *Graph) CWMargin(logits *Value, labels []int, kappa float32) *Value {
	ls := logits.Data.Shape()
	b, c := ls[0], ls[1]
	if b != len(labels) {
		panic(fmt.Sprintf("autograd: CWMargin logits %v vs %d labels", ls, len(labels)))
	}
	// For each sample record whether the margin is active and which class
	// is the runner-up, for the backward pass.
	active := make([]bool, b)
	best := make([]int, b)
	total := 0.0
	for i, y := range labels {
		row := logits.Data.Row(i).Data()
		bi, bv := -1, float32(math.Inf(-1))
		for j, v := range row {
			if j == y {
				continue
			}
			if v > bv {
				bi, bv = j, v
			}
		}
		m := row[y] - bv
		best[i] = bi
		if m > -kappa {
			active[i] = true
			total += float64(m)
		} else {
			total += float64(-kappa)
		}
	}
	out := g.node("cw_margin", g.scalar(float32(total)), logits)
	out.backward = func() {
		scale := out.Grad.Data()[0]
		gl := g.allocZero(ls...)
		for i, y := range labels {
			if !active[i] {
				continue
			}
			gl.Data()[i*c+y] += scale
			gl.Data()[i*c+best[i]] -= scale
		}
		g.accum(logits, gl)
		g.free(gl)
	}
	return out
}

// SqDistSum returns Σ (x−ref)² summed over everything, with ref a constant
// (the original image in the C&W objective).
func (g *Graph) SqDistSum(x *Value, ref *tensor.Tensor) *Value {
	if x.Data.Len() != ref.Len() {
		panic(fmt.Sprintf("autograd: SqDistSum size mismatch %v vs %v", x.Data.Shape(), ref.Shape()))
	}
	diff := g.alloc(x.Data.Shape()...)
	tensor.SubInto(diff, x.Data, ref)
	out := g.node("sqdist", g.scalar(float32(tensor.Dot(diff, diff))), x)
	out.backward = func() {
		gx := g.alloc(diff.Shape()...)
		tensor.ScaleInto(gx, diff, 2*out.Grad.Data()[0])
		g.accum(x, gx)
		g.free(gx)
	}
	return out
}
