package autograd

import (
	"fmt"
	"math"

	"pelta/internal/tensor"
)

// Add returns a+b (same shape).
func (g *Graph) Add(a, b *Value) *Value {
	out := g.node("add", g.alloc(a.Data.Shape()...), a, b)
	tensor.AddInto(out.Data, a.Data, b.Data)
	out.backward = func() {
		if g.needs(a) {
			g.accum(a, out.Grad)
		}
		if g.needs(b) {
			g.accum(b, out.Grad)
		}
	}
	return out
}

// Sub returns a-b (same shape).
func (g *Graph) Sub(a, b *Value) *Value {
	out := g.node("sub", g.alloc(a.Data.Shape()...), a, b)
	tensor.SubInto(out.Data, a.Data, b.Data)
	out.backward = func() {
		if g.needs(a) {
			g.accum(a, out.Grad)
		}
		if g.needs(b) {
			t := g.alloc(out.Grad.Shape()...)
			tensor.ScaleInto(t, out.Grad, -1)
			g.accum(b, t)
			g.free(t)
		}
	}
	return out
}

// Mul returns the Hadamard product a⊙b.
func (g *Graph) Mul(a, b *Value) *Value {
	out := g.node("mul", g.alloc(a.Data.Shape()...), a, b)
	tensor.MulInto(out.Data, a.Data, b.Data)
	out.backward = func() {
		t := g.alloc(out.Grad.Shape()...)
		if g.needs(a) {
			tensor.MulInto(t, out.Grad, b.Data)
			g.accum(a, t)
		}
		if g.needs(b) {
			tensor.MulInto(t, out.Grad, a.Data)
			g.accum(b, t)
		}
		g.free(t)
	}
	return out
}

// Scale returns alpha*a for a constant alpha.
func (g *Graph) Scale(a *Value, alpha float32) *Value {
	out := g.node("scale", g.alloc(a.Data.Shape()...), a)
	tensor.ScaleInto(out.Data, a.Data, alpha)
	out.backward = func() {
		if g.needs(a) {
			t := g.alloc(out.Grad.Shape()...)
			tensor.ScaleInto(t, out.Grad, alpha)
			g.accum(a, t)
			g.free(t)
		}
	}
	return out
}

// AddBroadcast adds a lower-rank vertex b (e.g. a [T,D] positional
// embedding) to every leading slice of a (e.g. [B,T,D]).
func (g *Graph) AddBroadcast(a, b *Value) *Value {
	an, bn := a.Data.Len(), b.Data.Len()
	if bn == 0 || an%bn != 0 {
		panic(fmt.Sprintf("autograd: AddBroadcast shapes %v and %v incompatible", a.Data.Shape(), b.Data.Shape()))
	}
	reps := an / bn
	data := g.alloc(a.Data.Shape()...)
	data.CopyFrom(a.Data)
	for r := 0; r < reps; r++ {
		seg := data.Data()[r*bn : (r+1)*bn]
		for i, v := range b.Data.Data() {
			seg[i] += v
		}
	}
	out := g.node("addbroadcast", data, a, b)
	out.backward = func() {
		if g.needs(a) {
			g.accum(a, out.Grad)
		}
		if g.needs(b) {
			gb := g.allocZero(b.Data.Shape()...)
			for r := 0; r < reps; r++ {
				seg := out.Grad.Data()[r*bn : (r+1)*bn]
				for i := range gb.Data() {
					gb.Data()[i] += seg[i]
				}
			}
			g.accum(b, gb)
			g.free(gb)
		}
	}
	return out
}

// MatMul returns the 2-D product a@b.
func (g *Graph) MatMul(a, b *Value) *Value {
	out := g.node("matmul", g.alloc(a.Data.Dim(0), b.Data.Dim(1)), a, b)
	tensor.MatMulInto(out.Data, a.Data, b.Data)
	out.backward = func() {
		if g.needs(a) {
			t := g.alloc(a.Data.Shape()...)
			tensor.MatMulTransBInto(t, out.Grad, b.Data)
			g.accum(a, t)
			g.free(t)
		}
		if g.needs(b) {
			t := g.alloc(b.Data.Shape()...)
			tensor.MatMulTransAInto(t, a.Data, out.Grad)
			g.accum(b, t)
			g.free(t)
		}
	}
	return out
}

// Linear applies y = x@Wᵀ + b over the last dimension of x, for x of any
// rank ≥ 2, weight [out,in] and optional bias [out].
func (g *Graph) Linear(x, w, b *Value) *Value {
	xs := x.Data.Shape()
	in := xs[len(xs)-1]
	rows := x.Data.Len() / in
	outF := w.Data.Dim(0)
	if w.Data.Dim(1) != in {
		panic(fmt.Sprintf("autograd: Linear weight %v incompatible with input %v", w.Data.Shape(), xs))
	}
	outShape := append(append([]int(nil), xs[:len(xs)-1]...), outF)
	parents := []*Value{x, w}
	if b != nil {
		parents = append(parents, b)
	}
	// The raw kernels view x and the output as [rows, in]/[rows, outF]
	// without materializing 2-D view tensors.
	out := g.node("linear", g.alloc(outShape...), parents...)
	tensor.MatMulTransBRaw(out.Data.Data(), x.Data.Data(), w.Data.Data(), rows, in, outF)
	if b != nil {
		tensor.AddRowVectorRaw(out.Data.Data(), rows, outF, b.Data.Data())
	}
	out.backward = func() {
		gy := out.Grad.Data()
		if g.needs(x) {
			t := g.alloc(xs...)
			tensor.MatMulRaw(t.Data(), gy, w.Data.Data(), rows, outF, in)
			g.accum(x, t)
			g.free(t)
		}
		if g.needs(w) {
			t := g.allocZero(outF, in)
			tensor.MatMulTransAAddRaw(t.Data(), gy, x.Data.Data(), outF, rows, in)
			g.accum(w, t)
			g.free(t)
		}
		if b != nil && g.needs(b) {
			t := g.alloc(outF)
			tensor.SumRowsRaw(t.Data(), gy, rows, outF)
			g.accum(b, t)
			g.free(t)
		}
	}
	return out
}

// BMM performs a batched matrix multiply on 3-D tensors:
// a [G,m,k] @ b [G,k,n] -> [G,m,n].
func (g *Graph) BMM(a, b *Value) *Value {
	as, bs := a.Data.Shape(), b.Data.Shape()
	if len(as) != 3 || len(bs) != 3 || as[0] != bs[0] || as[2] != bs[1] {
		panic(fmt.Sprintf("autograd: BMM shapes %v x %v invalid", as, bs))
	}
	G, m, n := as[0], as[1], bs[2]
	out := g.node("bmm", g.alloc(G, m, n), a, b)
	tensor.BMMInto(out.Data, a.Data, b.Data)
	out.backward = func() {
		needA, needB := g.needs(a), g.needs(b)
		var ga, gb *tensor.Tensor
		if needA {
			ga = g.alloc(as...)
			tensor.BMMTransBInto(ga, out.Grad, b.Data)
		}
		if needB {
			gb = g.allocZero(bs...)
			tensor.BMMTransAAddInto(gb, a.Data, out.Grad)
		}
		if needA {
			g.accum(a, ga)
			g.free(ga)
		}
		if needB {
			g.accum(b, gb)
			g.free(gb)
		}
	}
	return out
}

// ReLU applies max(0,x).
func (g *Graph) ReLU(x *Value) *Value {
	out := g.node("relu", g.alloc(x.Data.Shape()...), x)
	tensor.ApplyInto(out.Data, x.Data, func(v float32) float32 {
		if v > 0 {
			return v
		}
		return 0
	})
	out.backward = func() {
		gx := g.alloc(x.Data.Shape()...)
		xd, gy, gd := x.Data.Data(), out.Grad.Data(), gx.Data()
		for i := range gd {
			if xd[i] > 0 {
				gd[i] = gy[i]
			} else {
				gd[i] = 0
			}
		}
		g.accum(x, gx)
		g.free(gx)
	}
	return out
}

const (
	geluC = 0.7978845608028654 // sqrt(2/pi)
	geluA = 0.044715
)

// GELU applies the tanh approximation of the Gaussian error linear unit.
func (g *Graph) GELU(x *Value) *Value {
	out := g.node("gelu", g.alloc(x.Data.Shape()...), x)
	tensor.ApplyInto(out.Data, x.Data, func(v float32) float32 {
		f := float64(v)
		return float32(0.5 * f * (1 + math.Tanh(geluC*(f+geluA*f*f*f))))
	})
	out.backward = func() {
		gx := g.alloc(x.Data.Shape()...)
		xd, gy, gd := x.Data.Data(), out.Grad.Data(), gx.Data()
		for i := range gd {
			f := float64(xd[i])
			u := geluC * (f + geluA*f*f*f)
			t := math.Tanh(u)
			du := geluC * (1 + 3*geluA*f*f)
			d := 0.5*(1+t) + 0.5*f*(1-t*t)*du
			gd[i] = gy[i] * float32(d)
		}
		g.accum(x, gx)
		g.free(gx)
	}
	return out
}

// Tanh applies the hyperbolic tangent elementwise (used by the C&W change
// of variables).
func (g *Graph) Tanh(x *Value) *Value {
	out := g.node("tanh", g.alloc(x.Data.Shape()...), x)
	tensor.ApplyInto(out.Data, x.Data, func(v float32) float32 { return float32(math.Tanh(float64(v))) })
	out.backward = func() {
		gx := g.alloc(x.Data.Shape()...)
		yd, gy, gd := out.Data.Data(), out.Grad.Data(), gx.Data()
		for i := range gd {
			gd[i] = gy[i] * (1 - yd[i]*yd[i])
		}
		g.accum(x, gx)
		g.free(gx)
	}
	return out
}

// Affine applies alpha*x + beta elementwise for constants.
func (g *Graph) Affine(x *Value, alpha, beta float32) *Value {
	out := g.node("affine", g.alloc(x.Data.Shape()...), x)
	tensor.ApplyInto(out.Data, x.Data, func(v float32) float32 { return alpha*v + beta })
	out.backward = func() {
		t := g.alloc(out.Grad.Shape()...)
		tensor.ScaleInto(t, out.Grad, alpha)
		g.accum(x, t)
		g.free(t)
	}
	return out
}

// SoftmaxLastDim applies a softmax over the last dimension.
func (g *Graph) SoftmaxLastDim(x *Value) *Value {
	xs := x.Data.Shape()
	cols := xs[len(xs)-1]
	rows := x.Data.Len() / cols
	probs := g.alloc(xs...)
	tensor.SoftmaxRowsRaw(probs.Data(), x.Data.Data(), rows, cols)
	out := g.node("softmax", probs, x)
	out.backward = func() {
		gx := g.alloc(xs...)
		p, gy, gd := out.Data.Data(), out.Grad.Data(), gx.Data()
		for r := 0; r < rows; r++ {
			off := r * cols
			var dot float32
			for c := 0; c < cols; c++ {
				dot += gy[off+c] * p[off+c]
			}
			for c := 0; c < cols; c++ {
				gd[off+c] = p[off+c] * (gy[off+c] - dot)
			}
		}
		g.accum(x, gx)
		g.free(gx)
	}
	return out
}

// Sum reduces all elements to a scalar.
func (g *Graph) Sum(x *Value) *Value {
	out := g.node("sum", g.scalar(float32(tensor.Sum(x.Data))), x)
	out.backward = func() {
		t := g.alloc(x.Data.Shape()...)
		t.Fill(out.Grad.Data()[0])
		g.accum(x, t)
		g.free(t)
	}
	return out
}

// Mean reduces all elements to their scalar mean.
func (g *Graph) Mean(x *Value) *Value {
	n := float32(x.Data.Len())
	out := g.node("mean", g.scalar(float32(tensor.Mean(x.Data))), x)
	out.backward = func() {
		t := g.alloc(x.Data.Shape()...)
		t.Fill(out.Grad.Data()[0] / n)
		g.accum(x, t)
		g.free(t)
	}
	return out
}

// scalar allocates a 1-element tensor holding v from the graph's arena.
func (g *Graph) scalar(v float32) *tensor.Tensor {
	t := g.alloc(1)
	t.Data()[0] = v
	return t
}
