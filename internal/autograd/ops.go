package autograd

import (
	"fmt"
	"math"

	"pelta/internal/tensor"
)

// Add returns a+b (same shape).
func (g *Graph) Add(a, b *Value) *Value {
	out := g.node("add", tensor.Add(a.Data, b.Data), a, b)
	out.backward = func() {
		accum(a, out.Grad)
		accum(b, out.Grad)
	}
	return out
}

// Sub returns a-b (same shape).
func (g *Graph) Sub(a, b *Value) *Value {
	out := g.node("sub", tensor.Sub(a.Data, b.Data), a, b)
	out.backward = func() {
		accum(a, out.Grad)
		accum(b, tensor.Neg(out.Grad))
	}
	return out
}

// Mul returns the Hadamard product a⊙b.
func (g *Graph) Mul(a, b *Value) *Value {
	out := g.node("mul", tensor.Mul(a.Data, b.Data), a, b)
	out.backward = func() {
		accum(a, tensor.Mul(out.Grad, b.Data))
		accum(b, tensor.Mul(out.Grad, a.Data))
	}
	return out
}

// Scale returns alpha*a for a constant alpha.
func (g *Graph) Scale(a *Value, alpha float32) *Value {
	out := g.node("scale", tensor.Scale(a.Data, alpha), a)
	out.backward = func() {
		accum(a, tensor.Scale(out.Grad, alpha))
	}
	return out
}

// AddBroadcast adds a lower-rank vertex b (e.g. a [T,D] positional
// embedding) to every leading slice of a (e.g. [B,T,D]).
func (g *Graph) AddBroadcast(a, b *Value) *Value {
	an, bn := a.Data.Len(), b.Data.Len()
	if bn == 0 || an%bn != 0 {
		panic(fmt.Sprintf("autograd: AddBroadcast shapes %v and %v incompatible", a.Data.Shape(), b.Data.Shape()))
	}
	reps := an / bn
	data := a.Data.Clone()
	for r := 0; r < reps; r++ {
		seg := data.Data()[r*bn : (r+1)*bn]
		for i, v := range b.Data.Data() {
			seg[i] += v
		}
	}
	out := g.node("addbroadcast", data, a, b)
	out.backward = func() {
		accum(a, out.Grad)
		gb := tensor.New(b.Data.Shape()...)
		for r := 0; r < reps; r++ {
			seg := out.Grad.Data()[r*bn : (r+1)*bn]
			for i := range gb.Data() {
				gb.Data()[i] += seg[i]
			}
		}
		accum(b, gb)
	}
	return out
}

// MatMul returns the 2-D product a@b.
func (g *Graph) MatMul(a, b *Value) *Value {
	out := g.node("matmul", tensor.MatMul(a.Data, b.Data), a, b)
	out.backward = func() {
		accum(a, tensor.MatMulTransB(out.Grad, b.Data))
		accum(b, tensor.MatMulTransA(a.Data, out.Grad))
	}
	return out
}

// Linear applies y = x@Wᵀ + b over the last dimension of x, for x of any
// rank ≥ 2, weight [out,in] and optional bias [out].
func (g *Graph) Linear(x, w, b *Value) *Value {
	xs := x.Data.Shape()
	in := xs[len(xs)-1]
	rows := x.Data.Len() / in
	outF := w.Data.Dim(0)
	if w.Data.Dim(1) != in {
		panic(fmt.Sprintf("autograd: Linear weight %v incompatible with input %v", w.Data.Shape(), xs))
	}
	x2 := x.Data.Reshape(rows, in)
	y2 := tensor.MatMulTransB(x2, w.Data) // [rows, out]
	if b != nil {
		tensor.AddRowVectorIn(y2, b.Data)
	}
	outShape := append(append([]int(nil), xs[:len(xs)-1]...), outF)
	parents := []*Value{x, w}
	if b != nil {
		parents = append(parents, b)
	}
	out := g.node("linear", y2.Reshape(outShape...), parents...)
	out.backward = func() {
		gy := out.Grad.Reshape(rows, outF)
		accum(x, tensor.MatMul(gy, w.Data).Reshape(xs...))
		accum(w, tensor.MatMulTransA(gy, x2))
		if b != nil {
			accum(b, tensor.SumRows(gy))
		}
	}
	return out
}

// BMM performs a batched matrix multiply on 3-D tensors:
// a [G,m,k] @ b [G,k,n] -> [G,m,n].
func (g *Graph) BMM(a, b *Value) *Value {
	as, bs := a.Data.Shape(), b.Data.Shape()
	if len(as) != 3 || len(bs) != 3 || as[0] != bs[0] || as[2] != bs[1] {
		panic(fmt.Sprintf("autograd: BMM shapes %v x %v invalid", as, bs))
	}
	G, m, n := as[0], as[1], bs[2]
	out := g.node("bmm", tensor.New(G, m, n), a, b)
	for i := 0; i < G; i++ {
		out.Data.Slice(i).CopyFrom(tensor.MatMul(a.Data.Slice(i), b.Data.Slice(i)))
	}
	out.backward = func() {
		ga := tensor.New(as...)
		gb := tensor.New(bs...)
		for i := 0; i < G; i++ {
			gy := out.Grad.Slice(i)
			ga.Slice(i).CopyFrom(tensor.MatMulTransB(gy, b.Data.Slice(i)))
			gb.Slice(i).CopyFrom(tensor.MatMulTransA(a.Data.Slice(i), gy))
		}
		accum(a, ga)
		accum(b, gb)
	}
	return out
}

// ReLU applies max(0,x).
func (g *Graph) ReLU(x *Value) *Value {
	out := g.node("relu", tensor.Apply(x.Data, func(v float32) float32 {
		if v > 0 {
			return v
		}
		return 0
	}), x)
	out.backward = func() {
		gx := tensor.New(x.Data.Shape()...)
		xd, gy, gd := x.Data.Data(), out.Grad.Data(), gx.Data()
		for i := range gd {
			if xd[i] > 0 {
				gd[i] = gy[i]
			}
		}
		accum(x, gx)
	}
	return out
}

const (
	geluC = 0.7978845608028654 // sqrt(2/pi)
	geluA = 0.044715
)

// GELU applies the tanh approximation of the Gaussian error linear unit.
func (g *Graph) GELU(x *Value) *Value {
	out := g.node("gelu", tensor.Apply(x.Data, func(v float32) float32 {
		f := float64(v)
		return float32(0.5 * f * (1 + math.Tanh(geluC*(f+geluA*f*f*f))))
	}), x)
	out.backward = func() {
		gx := tensor.New(x.Data.Shape()...)
		xd, gy, gd := x.Data.Data(), out.Grad.Data(), gx.Data()
		for i := range gd {
			f := float64(xd[i])
			u := geluC * (f + geluA*f*f*f)
			t := math.Tanh(u)
			du := geluC * (1 + 3*geluA*f*f)
			d := 0.5*(1+t) + 0.5*f*(1-t*t)*du
			gd[i] = gy[i] * float32(d)
		}
		accum(x, gx)
	}
	return out
}

// Tanh applies the hyperbolic tangent elementwise (used by the C&W change
// of variables).
func (g *Graph) Tanh(x *Value) *Value {
	out := g.node("tanh", tensor.Tanh(x.Data), x)
	out.backward = func() {
		gx := tensor.New(x.Data.Shape()...)
		yd, gy, gd := out.Data.Data(), out.Grad.Data(), gx.Data()
		for i := range gd {
			gd[i] = gy[i] * (1 - yd[i]*yd[i])
		}
		accum(x, gx)
	}
	return out
}

// Affine applies alpha*x + beta elementwise for constants.
func (g *Graph) Affine(x *Value, alpha, beta float32) *Value {
	out := g.node("affine", tensor.Apply(x.Data, func(v float32) float32 { return alpha*v + beta }), x)
	out.backward = func() {
		accum(x, tensor.Scale(out.Grad, alpha))
	}
	return out
}

// SoftmaxLastDim applies a softmax over the last dimension.
func (g *Graph) SoftmaxLastDim(x *Value) *Value {
	xs := x.Data.Shape()
	cols := xs[len(xs)-1]
	rows := x.Data.Len() / cols
	probs := tensor.SoftmaxRows(x.Data.Reshape(rows, cols)).Reshape(xs...)
	out := g.node("softmax", probs, x)
	out.backward = func() {
		gx := tensor.New(xs...)
		p, gy, gd := out.Data.Data(), out.Grad.Data(), gx.Data()
		for r := 0; r < rows; r++ {
			off := r * cols
			var dot float32
			for c := 0; c < cols; c++ {
				dot += gy[off+c] * p[off+c]
			}
			for c := 0; c < cols; c++ {
				gd[off+c] = p[off+c] * (gy[off+c] - dot)
			}
		}
		accum(x, gx)
	}
	return out
}

// Sum reduces all elements to a scalar.
func (g *Graph) Sum(x *Value) *Value {
	out := g.node("sum", tensor.Scalar(float32(tensor.Sum(x.Data))), x)
	out.backward = func() {
		accum(x, tensor.Full(out.Grad.Data()[0], x.Data.Shape()...))
	}
	return out
}

// Mean reduces all elements to their scalar mean.
func (g *Graph) Mean(x *Value) *Value {
	n := float32(x.Data.Len())
	out := g.node("mean", tensor.Scalar(float32(tensor.Mean(x.Data))), x)
	out.backward = func() {
		accum(x, tensor.Full(out.Grad.Data()[0]/n, x.Data.Shape()...))
	}
	return out
}
