package autograd

import (
	"fmt"
	"math"

	"pelta/internal/tensor"
)

// Conv2d applies a batched 2-D convolution with weight [O,C,kh,kw] and
// optional bias [O].
func (g *Graph) Conv2d(x, w, b *Value, stride, pad int) *Value {
	var bias *tensor.Tensor
	parents := []*Value{x, w}
	if b != nil {
		bias = b.Data
		parents = append(parents, b)
	}
	out := g.node("conv2d", tensor.Conv2d(x.Data, w.Data, bias, stride, pad), parents...)
	out.backward = func() {
		gx, gw, gb := tensor.Conv2dBackward(x.Data, w.Data, b != nil, out.Grad, stride, pad)
		accum(x, gx)
		accum(w, gw)
		if b != nil {
			accum(b, gb)
		}
	}
	return out
}

// WSConv2d applies a weight-standardized convolution (BiT / ResNet-v2 stem):
// the kernel is normalized to zero mean and unit variance per output channel
// before convolving. Standardization is differentiated through, so training
// updates the raw weights.
func (g *Graph) WSConv2d(x, w, b *Value, stride, pad int) *Value {
	ws := w.Data.Shape()
	oc := ws[0]
	fan := w.Data.Len() / oc
	const eps = 1e-5

	mean := make([]float64, oc)
	std := make([]float64, oc)
	wHat := tensor.New(ws...)
	for o := 0; o < oc; o++ {
		seg := w.Data.Data()[o*fan : (o+1)*fan]
		var m float64
		for _, v := range seg {
			m += float64(v)
		}
		m /= float64(fan)
		var vr float64
		for _, v := range seg {
			d := float64(v) - m
			vr += d * d
		}
		vr /= float64(fan)
		mean[o], std[o] = m, math.Sqrt(vr+eps)
		dst := wHat.Data()[o*fan : (o+1)*fan]
		for i, v := range seg {
			dst[i] = float32((float64(v) - m) / std[o])
		}
	}

	var bias *tensor.Tensor
	parents := []*Value{x, w}
	if b != nil {
		bias = b.Data
		parents = append(parents, b)
	}
	out := g.node("wsconv2d", tensor.Conv2d(x.Data, wHat, bias, stride, pad), parents...)
	out.backward = func() {
		gx, gwHat, gb := tensor.Conv2dBackward(x.Data, wHat, b != nil, out.Grad, stride, pad)
		accum(x, gx)
		// Chain through standardization:
		// gW = (gŴ − mean(gŴ) − Ŵ·mean(gŴ⊙Ŵ)) / σ, per output channel.
		gw := tensor.New(ws...)
		for o := 0; o < oc; o++ {
			gh := gwHat.Data()[o*fan : (o+1)*fan]
			wh := wHat.Data()[o*fan : (o+1)*fan]
			var mg, mgw float64
			for i := range gh {
				mg += float64(gh[i])
				mgw += float64(gh[i]) * float64(wh[i])
			}
			mg /= float64(fan)
			mgw /= float64(fan)
			dst := gw.Data()[o*fan : (o+1)*fan]
			for i := range gh {
				dst[i] = float32((float64(gh[i]) - mg - float64(wh[i])*mgw) / std[o])
			}
		}
		accum(w, gw)
		if b != nil {
			accum(b, gb)
		}
	}
	return out
}

// Pad2d zero-pads the spatial dims of [B,C,H,W] by p on all sides.
func (g *Graph) Pad2d(x *Value, p int) *Value {
	out := g.node("pad2d", tensor.Pad2d(x.Data, p), x)
	out.backward = func() {
		accum(x, tensor.Unpad2d(out.Grad, p))
	}
	return out
}

// MaxPool2d applies k×k max pooling with stride s.
func (g *Graph) MaxPool2d(x *Value, k, s int) *Value {
	pooled, idx := tensor.MaxPool2d(x.Data, k, s)
	out := g.node("maxpool2d", pooled, x)
	bs := x.Data.Dim(0)
	sampleLen := x.Data.Len() / bs
	outSample := pooled.Len() / bs
	out.backward = func() {
		gx := tensor.New(x.Data.Shape()...)
		gy := out.Grad.Data()
		for i := 0; i < bs; i++ {
			base := i * sampleLen
			for o := 0; o < outSample; o++ {
				gx.Data()[base+idx[i*outSample+o]] += gy[i*outSample+o]
			}
		}
		accum(x, gx)
	}
	return out
}

// AvgPoolGlobal averages each channel plane of [B,C,H,W] to [B,C].
func (g *Graph) AvgPoolGlobal(x *Value) *Value {
	xs := x.Data.Shape()
	out := g.node("avgpool_global", tensor.AvgPool2dGlobal(x.Data), x)
	out.backward = func() {
		b, c, h, w := xs[0], xs[1], xs[2], xs[3]
		gx := tensor.New(xs...)
		inv := 1 / float32(h*w)
		for i := 0; i < b; i++ {
			for ch := 0; ch < c; ch++ {
				gv := out.Grad.At(i, ch) * inv
				plane := gx.Slice(i).Data()[ch*h*w : (ch+1)*h*w]
				for j := range plane {
					plane[j] = gv
				}
			}
		}
		accum(x, gx)
	}
	return out
}

// LayerNorm normalizes the last dimension of x and applies a learned affine
// transform: y = γ·(x−μ)/σ + β.
func (g *Graph) LayerNorm(x, gamma, beta *Value) *Value {
	xs := x.Data.Shape()
	d := xs[len(xs)-1]
	rows := x.Data.Len() / d
	if gamma.Data.Len() != d || beta.Data.Len() != d {
		panic(fmt.Sprintf("autograd: LayerNorm affine params must have length %d", d))
	}
	const eps = 1e-5
	xhat := tensor.New(xs...)
	invStd := make([]float32, rows)
	out := g.node("layernorm", tensor.New(xs...), x, gamma, beta)
	xd, hd, od := x.Data.Data(), xhat.Data(), out.Data.Data()
	gmd, btd := gamma.Data.Data(), beta.Data.Data()
	for r := 0; r < rows; r++ {
		seg := xd[r*d : (r+1)*d]
		var m float64
		for _, v := range seg {
			m += float64(v)
		}
		m /= float64(d)
		var vr float64
		for _, v := range seg {
			dv := float64(v) - m
			vr += dv * dv
		}
		vr /= float64(d)
		is := float32(1 / math.Sqrt(vr+eps))
		invStd[r] = is
		for i, v := range seg {
			h := (v - float32(m)) * is
			hd[r*d+i] = h
			od[r*d+i] = gmd[i]*h + btd[i]
		}
	}
	out.backward = func() {
		gx := tensor.New(xs...)
		ggamma := tensor.New(d)
		gbeta := tensor.New(d)
		gy := out.Grad.Data()
		for r := 0; r < rows; r++ {
			var mg, mgh float64
			for i := 0; i < d; i++ {
				gi := gy[r*d+i] * gmd[i]
				h := hd[r*d+i]
				mg += float64(gi)
				mgh += float64(gi) * float64(h)
				ggamma.Data()[i] += gy[r*d+i] * h
				gbeta.Data()[i] += gy[r*d+i]
			}
			mg /= float64(d)
			mgh /= float64(d)
			for i := 0; i < d; i++ {
				gi := float64(gy[r*d+i] * gmd[i])
				h := float64(hd[r*d+i])
				gx.Data()[r*d+i] = invStd[r] * float32(gi-mg-h*mgh)
			}
		}
		accum(x, gx)
		accum(gamma, ggamma)
		accum(beta, gbeta)
	}
	return out
}

// BatchNormState carries the running statistics of a BatchNorm2d layer,
// owned by the nn layer and shared across graphs.
type BatchNormState struct {
	RunningMean []float64
	RunningVar  []float64
	Momentum    float64
}

// NewBatchNormState returns running stats for c channels initialized to the
// standard (0 mean, unit variance) with the given EMA momentum.
func NewBatchNormState(c int, momentum float64) *BatchNormState {
	s := &BatchNormState{
		RunningMean: make([]float64, c),
		RunningVar:  make([]float64, c),
		Momentum:    momentum,
	}
	for i := range s.RunningVar {
		s.RunningVar[i] = 1
	}
	return s
}

// BatchNorm2d normalizes each channel of [B,C,H,W]. In training mode it uses
// batch statistics and updates the running stats; in eval mode it uses the
// running stats (the deterministic inference path attacked in the paper).
func (g *Graph) BatchNorm2d(x, gamma, beta *Value, st *BatchNormState, training bool) *Value {
	xs := x.Data.Shape()
	b, c, h, w := xs[0], xs[1], xs[2], xs[3]
	n := b * h * w
	const eps = 1e-5

	mean := make([]float64, c)
	varr := make([]float64, c)
	if training {
		for ch := 0; ch < c; ch++ {
			var m float64
			for i := 0; i < b; i++ {
				plane := x.Data.Slice(i).Data()[ch*h*w : (ch+1)*h*w]
				for _, v := range plane {
					m += float64(v)
				}
			}
			m /= float64(n)
			var vr float64
			for i := 0; i < b; i++ {
				plane := x.Data.Slice(i).Data()[ch*h*w : (ch+1)*h*w]
				for _, v := range plane {
					d := float64(v) - m
					vr += d * d
				}
			}
			vr /= float64(n)
			mean[ch], varr[ch] = m, vr
			st.RunningMean[ch] = (1-st.Momentum)*st.RunningMean[ch] + st.Momentum*m
			st.RunningVar[ch] = (1-st.Momentum)*st.RunningVar[ch] + st.Momentum*vr
		}
	} else {
		copy(mean, st.RunningMean)
		copy(varr, st.RunningVar)
	}

	invStd := make([]float32, c)
	for ch := 0; ch < c; ch++ {
		invStd[ch] = float32(1 / math.Sqrt(varr[ch]+eps))
	}
	xhat := tensor.New(xs...)
	out := g.node("batchnorm2d", tensor.New(xs...), x, gamma, beta)
	gmd, btd := gamma.Data.Data(), beta.Data.Data()
	for i := 0; i < b; i++ {
		src, hdst, odst := x.Data.Slice(i).Data(), xhat.Slice(i).Data(), out.Data.Slice(i).Data()
		for ch := 0; ch < c; ch++ {
			m32, is := float32(mean[ch]), invStd[ch]
			for j := ch * h * w; j < (ch+1)*h*w; j++ {
				hv := (src[j] - m32) * is
				hdst[j] = hv
				odst[j] = gmd[ch]*hv + btd[ch]
			}
		}
	}
	out.backward = func() {
		gx := tensor.New(xs...)
		ggamma := tensor.New(c)
		gbeta := tensor.New(c)
		for ch := 0; ch < c; ch++ {
			var sumG, sumGH float64
			for i := 0; i < b; i++ {
				gy := out.Grad.Slice(i).Data()[ch*h*w : (ch+1)*h*w]
				hh := xhat.Slice(i).Data()[ch*h*w : (ch+1)*h*w]
				for j := range gy {
					sumG += float64(gy[j])
					sumGH += float64(gy[j]) * float64(hh[j])
				}
			}
			ggamma.Data()[ch] = float32(sumGH)
			gbeta.Data()[ch] = float32(sumG)
			gscale := float64(gmd[ch]) * float64(invStd[ch])
			if training {
				mg := sumG / float64(n)
				mgh := sumGH / float64(n)
				for i := 0; i < b; i++ {
					gy := out.Grad.Slice(i).Data()[ch*h*w : (ch+1)*h*w]
					hh := xhat.Slice(i).Data()[ch*h*w : (ch+1)*h*w]
					dst := gx.Slice(i).Data()[ch*h*w : (ch+1)*h*w]
					for j := range gy {
						dst[j] = float32(gscale * (float64(gy[j]) - mg - float64(hh[j])*mgh))
					}
				}
			} else {
				// Eval mode: y is an affine map of x, so gx = γ/σ · gy.
				for i := 0; i < b; i++ {
					gy := out.Grad.Slice(i).Data()[ch*h*w : (ch+1)*h*w]
					dst := gx.Slice(i).Data()[ch*h*w : (ch+1)*h*w]
					for j := range gy {
						dst[j] = float32(gscale) * gy[j]
					}
				}
			}
		}
		accum(x, gx)
		accum(gamma, ggamma)
		accum(beta, gbeta)
	}
	return out
}

// GroupNorm2d normalizes [B,C,H,W] over groups of channels (BiT uses
// GroupNorm instead of BatchNorm). groups must divide C.
func (g *Graph) GroupNorm2d(x, gamma, beta *Value, groups int) *Value {
	xs := x.Data.Shape()
	b, c, h, w := xs[0], xs[1], xs[2], xs[3]
	if c%groups != 0 {
		panic(fmt.Sprintf("autograd: GroupNorm2d groups %d must divide channels %d", groups, c))
	}
	cg := c / groups
	gn := cg * h * w
	const eps = 1e-5

	xhat := tensor.New(xs...)
	invStd := make([]float32, b*groups)
	out := g.node("groupnorm2d", tensor.New(xs...), x, gamma, beta)
	gmd, btd := gamma.Data.Data(), beta.Data.Data()
	for i := 0; i < b; i++ {
		src, hdst, odst := x.Data.Slice(i).Data(), xhat.Slice(i).Data(), out.Data.Slice(i).Data()
		for gr := 0; gr < groups; gr++ {
			lo, hi := gr*cg*h*w, (gr+1)*cg*h*w
			var m float64
			for _, v := range src[lo:hi] {
				m += float64(v)
			}
			m /= float64(gn)
			var vr float64
			for _, v := range src[lo:hi] {
				d := float64(v) - m
				vr += d * d
			}
			vr /= float64(gn)
			is := float32(1 / math.Sqrt(vr+eps))
			invStd[i*groups+gr] = is
			for j := lo; j < hi; j++ {
				ch := j / (h * w)
				hv := (src[j] - float32(m)) * is
				hdst[j] = hv
				odst[j] = gmd[ch]*hv + btd[ch]
			}
		}
	}
	out.backward = func() {
		gx := tensor.New(xs...)
		ggamma := tensor.New(c)
		gbeta := tensor.New(c)
		for i := 0; i < b; i++ {
			gy := out.Grad.Slice(i).Data()
			hh := xhat.Slice(i).Data()
			dst := gx.Slice(i).Data()
			for gr := 0; gr < groups; gr++ {
				lo, hi := gr*cg*h*w, (gr+1)*cg*h*w
				var mg, mgh float64
				for j := lo; j < hi; j++ {
					ch := j / (h * w)
					gi := gy[j] * gmd[ch]
					mg += float64(gi)
					mgh += float64(gi) * float64(hh[j])
					ggamma.Data()[ch] += gy[j] * hh[j]
					gbeta.Data()[ch] += gy[j]
				}
				mg /= float64(gn)
				mgh /= float64(gn)
				is := invStd[i*groups+gr]
				for j := lo; j < hi; j++ {
					ch := j / (h * w)
					gi := float64(gy[j] * gmd[ch])
					dst[j] = is * float32(gi-mg-float64(hh[j])*mgh)
				}
			}
		}
		accum(x, gx)
		accum(gamma, ggamma)
		accum(beta, gbeta)
	}
	return out
}
