package autograd

import (
	"fmt"
	"math"

	"pelta/internal/tensor"
)

// Conv2d applies a batched 2-D convolution with weight [O,C,kh,kw] and
// optional bias [O].
func (g *Graph) Conv2d(x, w, b *Value, stride, pad int) *Value {
	var bias *tensor.Tensor
	parents := []*Value{x, w}
	if b != nil {
		bias = b.Data
		parents = append(parents, b)
	}
	xs, ws := x.Data.Shape(), w.Data.Shape()
	oh := tensor.ConvOut(xs[2], ws[2], stride, pad)
	ow := tensor.ConvOut(xs[3], ws[3], stride, pad)
	out := g.node("conv2d", g.alloc(xs[0], ws[0], oh, ow), parents...)
	tensor.Conv2dInto(g.pool, out.Data, x.Data, w.Data, bias, stride, pad)
	out.backward = func() {
		gx, gw, gb := g.convGrads(x, w, b, w.Data, out.Grad, stride, pad)
		g.accum(x, gx)
		g.free(gx)
		if gw != nil {
			g.accum(w, gw)
			g.free(gw)
		}
		if gb != nil {
			g.accum(b, gb)
			g.free(gb)
		}
	}
	return out
}

// convGrads runs the convolution backward kernel with arena buffers,
// skipping the weight/bias gradients when parameter tracking is off.
func (g *Graph) convGrads(x, w, b *Value, kernel, gy *tensor.Tensor, stride, pad int) (gx, gw, gb *tensor.Tensor) {
	gx = g.alloc(x.Data.Shape()...)
	if g.needs(w) {
		gw = g.alloc(kernel.Shape()...)
	}
	if b != nil && g.needs(b) {
		gb = g.allocZero(kernel.Dim(0))
	}
	tensor.Conv2dBackwardInto(g.pool, gx, gw, gb, x.Data, kernel, gy, stride, pad)
	return gx, gw, gb
}

// WSConv2d applies a weight-standardized convolution (BiT / ResNet-v2 stem):
// the kernel is normalized to zero mean and unit variance per output channel
// before convolving. Standardization is differentiated through, so training
// updates the raw weights.
func (g *Graph) WSConv2d(x, w, b *Value, stride, pad int) *Value {
	ws := w.Data.Shape()
	oc := ws[0]
	fan := w.Data.Len() / oc
	const eps = 1e-5

	mean := make([]float64, oc)
	std := make([]float64, oc)
	wHat := g.alloc(ws...)
	for o := 0; o < oc; o++ {
		seg := w.Data.Data()[o*fan : (o+1)*fan]
		var m float64
		for _, v := range seg {
			m += float64(v)
		}
		m /= float64(fan)
		var vr float64
		for _, v := range seg {
			d := float64(v) - m
			vr += d * d
		}
		vr /= float64(fan)
		mean[o], std[o] = m, math.Sqrt(vr+eps)
		dst := wHat.Data()[o*fan : (o+1)*fan]
		for i, v := range seg {
			dst[i] = float32((float64(v) - m) / std[o])
		}
	}

	var bias *tensor.Tensor
	parents := []*Value{x, w}
	if b != nil {
		bias = b.Data
		parents = append(parents, b)
	}
	xs := x.Data.Shape()
	oh := tensor.ConvOut(xs[2], ws[2], stride, pad)
	ow := tensor.ConvOut(xs[3], ws[3], stride, pad)
	out := g.node("wsconv2d", g.alloc(xs[0], oc, oh, ow), parents...)
	tensor.Conv2dInto(g.pool, out.Data, x.Data, wHat, bias, stride, pad)
	out.backward = func() {
		gx, gwHat, gb := g.convGrads(x, w, b, wHat, out.Grad, stride, pad)
		g.accum(x, gx)
		g.free(gx)
		if gwHat != nil {
			// Chain through standardization:
			// gW = (gŴ − mean(gŴ) − Ŵ·mean(gŴ⊙Ŵ)) / σ, per output channel.
			gw := g.alloc(ws...)
			for o := 0; o < oc; o++ {
				gh := gwHat.Data()[o*fan : (o+1)*fan]
				wh := wHat.Data()[o*fan : (o+1)*fan]
				var mg, mgw float64
				for i := range gh {
					mg += float64(gh[i])
					mgw += float64(gh[i]) * float64(wh[i])
				}
				mg /= float64(fan)
				mgw /= float64(fan)
				dst := gw.Data()[o*fan : (o+1)*fan]
				for i := range gh {
					dst[i] = float32((float64(gh[i]) - mg - float64(wh[i])*mgw) / std[o])
				}
			}
			g.accum(w, gw)
			g.free(gw)
			g.free(gwHat)
		}
		if gb != nil {
			g.accum(b, gb)
			g.free(gb)
		}
	}
	return out
}

// Pad2d zero-pads the spatial dims of [B,C,H,W] by p on all sides.
func (g *Graph) Pad2d(x *Value, p int) *Value {
	xs := x.Data.Shape()
	out := g.node("pad2d", g.allocZero(xs[0], xs[1], xs[2]+2*p, xs[3]+2*p), x)
	tensor.Pad2dInto(out.Data, x.Data, p)
	out.backward = func() {
		gx := g.alloc(xs...)
		tensor.Unpad2dInto(gx, out.Grad, p)
		g.accum(x, gx)
		g.free(gx)
	}
	return out
}

// MaxPool2d applies k×k max pooling with stride s.
func (g *Graph) MaxPool2d(x *Value, k, s int) *Value {
	xs := x.Data.Shape()
	oh, ow := tensor.ConvOut(xs[2], k, s, 0), tensor.ConvOut(xs[3], k, s, 0)
	pooled := g.alloc(xs[0], xs[1], oh, ow)
	idx := g.allocInts(xs[0] * xs[1] * oh * ow)
	tensor.MaxPool2dIdxInto(pooled, x.Data, k, s, idx)
	out := g.node("maxpool2d", pooled, x)
	bs := xs[0]
	sampleLen := x.Data.Len() / bs
	outSample := pooled.Len() / bs
	out.backward = func() {
		gx := g.allocZero(xs...)
		gy := out.Grad.Data()
		for i := 0; i < bs; i++ {
			base := i * sampleLen
			for o := 0; o < outSample; o++ {
				gx.Data()[base+idx[i*outSample+o]] += gy[i*outSample+o]
			}
		}
		g.accum(x, gx)
		g.free(gx)
	}
	return out
}

// AvgPoolGlobal averages each channel plane of [B,C,H,W] to [B,C].
func (g *Graph) AvgPoolGlobal(x *Value) *Value {
	xs := x.Data.Shape()
	out := g.node("avgpool_global", g.alloc(xs[0], xs[1]), x)
	tensor.AvgPool2dGlobalInto(out.Data, x.Data)
	out.backward = func() {
		b, c, h, w := xs[0], xs[1], xs[2], xs[3]
		gx := g.alloc(xs...)
		gxd, gyd := gx.Data(), out.Grad.Data()
		inv := 1 / float32(h*w)
		for i := 0; i < b; i++ {
			for ch := 0; ch < c; ch++ {
				gv := gyd[i*c+ch] * inv
				plane := gxd[i*c*h*w+ch*h*w : i*c*h*w+(ch+1)*h*w]
				for j := range plane {
					plane[j] = gv
				}
			}
		}
		g.accum(x, gx)
		g.free(gx)
	}
	return out
}

// LayerNorm normalizes the last dimension of x and applies a learned affine
// transform: y = γ·(x−μ)/σ + β.
func (g *Graph) LayerNorm(x, gamma, beta *Value) *Value {
	xs := x.Data.Shape()
	d := xs[len(xs)-1]
	rows := x.Data.Len() / d
	if gamma.Data.Len() != d || beta.Data.Len() != d {
		panic(fmt.Sprintf("autograd: LayerNorm affine params must have length %d", d))
	}
	const eps = 1e-5
	xhat := g.alloc(xs...)
	invStdT := g.alloc(rows)
	invStd := invStdT.Data()
	out := g.node("layernorm", g.alloc(xs...), x, gamma, beta)
	xd, hd, od := x.Data.Data(), xhat.Data(), out.Data.Data()
	gmd, btd := gamma.Data.Data(), beta.Data.Data()
	for r := 0; r < rows; r++ {
		seg := xd[r*d : (r+1)*d]
		var m float64
		for _, v := range seg {
			m += float64(v)
		}
		m /= float64(d)
		var vr float64
		for _, v := range seg {
			dv := float64(v) - m
			vr += dv * dv
		}
		vr /= float64(d)
		is := float32(1 / math.Sqrt(vr+eps))
		invStd[r] = is
		for i, v := range seg {
			h := (v - float32(m)) * is
			hd[r*d+i] = h
			od[r*d+i] = gmd[i]*h + btd[i]
		}
	}
	out.backward = func() {
		track := g.needs(gamma) || g.needs(beta)
		gx := g.alloc(xs...)
		var ggamma, gbeta *tensor.Tensor
		if track {
			ggamma = g.allocZero(d)
			gbeta = g.allocZero(d)
		}
		gy := out.Grad.Data()
		for r := 0; r < rows; r++ {
			var mg, mgh float64
			for i := 0; i < d; i++ {
				gi := gy[r*d+i] * gmd[i]
				h := hd[r*d+i]
				mg += float64(gi)
				mgh += float64(gi) * float64(h)
				if track {
					ggamma.Data()[i] += gy[r*d+i] * h
					gbeta.Data()[i] += gy[r*d+i]
				}
			}
			mg /= float64(d)
			mgh /= float64(d)
			for i := 0; i < d; i++ {
				gi := float64(gy[r*d+i] * gmd[i])
				h := float64(hd[r*d+i])
				gx.Data()[r*d+i] = invStd[r] * float32(gi-mg-h*mgh)
			}
		}
		g.accum(x, gx)
		g.free(gx)
		if track {
			if g.needs(gamma) {
				g.accum(gamma, ggamma)
			}
			if g.needs(beta) {
				g.accum(beta, gbeta)
			}
			g.free(ggamma)
			g.free(gbeta)
		}
	}
	return out
}

// BatchNormState carries the running statistics of a BatchNorm2d layer,
// owned by the nn layer and shared across graphs.
type BatchNormState struct {
	RunningMean []float64
	RunningVar  []float64
	Momentum    float64
}

// NewBatchNormState returns running stats for c channels initialized to the
// standard (0 mean, unit variance) with the given EMA momentum.
func NewBatchNormState(c int, momentum float64) *BatchNormState {
	s := &BatchNormState{
		RunningMean: make([]float64, c),
		RunningVar:  make([]float64, c),
		Momentum:    momentum,
	}
	for i := range s.RunningVar {
		s.RunningVar[i] = 1
	}
	return s
}

// BatchNorm2d normalizes each channel of [B,C,H,W]. In training mode it uses
// batch statistics and updates the running stats; in eval mode it uses the
// running stats (the deterministic inference path attacked in the paper).
func (g *Graph) BatchNorm2d(x, gamma, beta *Value, st *BatchNormState, training bool) *Value {
	xs := x.Data.Shape()
	b, c, h, w := xs[0], xs[1], xs[2], xs[3]
	n := b * h * w
	const eps = 1e-5

	mean := make([]float64, c)
	varr := make([]float64, c)
	if training {
		xd := x.Data.Data()
		for ch := 0; ch < c; ch++ {
			var m float64
			for i := 0; i < b; i++ {
				plane := xd[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
				for _, v := range plane {
					m += float64(v)
				}
			}
			m /= float64(n)
			var vr float64
			for i := 0; i < b; i++ {
				plane := xd[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
				for _, v := range plane {
					d := float64(v) - m
					vr += d * d
				}
			}
			vr /= float64(n)
			mean[ch], varr[ch] = m, vr
			st.RunningMean[ch] = (1-st.Momentum)*st.RunningMean[ch] + st.Momentum*m
			st.RunningVar[ch] = (1-st.Momentum)*st.RunningVar[ch] + st.Momentum*vr
		}
	} else {
		copy(mean, st.RunningMean)
		copy(varr, st.RunningVar)
	}

	invStd := make([]float32, c)
	for ch := 0; ch < c; ch++ {
		invStd[ch] = float32(1 / math.Sqrt(varr[ch]+eps))
	}
	xhat := g.alloc(xs...)
	out := g.node("batchnorm2d", g.alloc(xs...), x, gamma, beta)
	gmd, btd := gamma.Data.Data(), beta.Data.Data()
	sample := c * h * w
	for i := 0; i < b; i++ {
		src := x.Data.Data()[i*sample : (i+1)*sample]
		hdst := xhat.Data()[i*sample : (i+1)*sample]
		odst := out.Data.Data()[i*sample : (i+1)*sample]
		for ch := 0; ch < c; ch++ {
			m32, is := float32(mean[ch]), invStd[ch]
			for j := ch * h * w; j < (ch+1)*h*w; j++ {
				hv := (src[j] - m32) * is
				hdst[j] = hv
				odst[j] = gmd[ch]*hv + btd[ch]
			}
		}
	}
	out.backward = func() {
		track := g.needs(gamma) || g.needs(beta)
		gx := g.alloc(xs...)
		var ggamma, gbeta *tensor.Tensor
		if track {
			ggamma = g.allocZero(c)
			gbeta = g.allocZero(c)
		}
		sample := c * h * w
		gyAll, hhAll, gxAll := out.Grad.Data(), xhat.Data(), gx.Data()
		for ch := 0; ch < c; ch++ {
			gscale := float64(gmd[ch]) * float64(invStd[ch])
			// The channel sums feed the gamma/beta gradients always, and the
			// input gradient only in training mode; skip them when neither
			// consumer is active.
			var sumG, sumGH float64
			if track || training {
				for i := 0; i < b; i++ {
					gy := gyAll[i*sample+ch*h*w : i*sample+(ch+1)*h*w]
					hh := hhAll[i*sample+ch*h*w : i*sample+(ch+1)*h*w]
					for j := range gy {
						sumG += float64(gy[j])
						sumGH += float64(gy[j]) * float64(hh[j])
					}
				}
			}
			if track {
				ggamma.Data()[ch] = float32(sumGH)
				gbeta.Data()[ch] = float32(sumG)
			}
			if training {
				mg := sumG / float64(n)
				mgh := sumGH / float64(n)
				for i := 0; i < b; i++ {
					gy := gyAll[i*sample+ch*h*w : i*sample+(ch+1)*h*w]
					hh := hhAll[i*sample+ch*h*w : i*sample+(ch+1)*h*w]
					dst := gxAll[i*sample+ch*h*w : i*sample+(ch+1)*h*w]
					for j := range gy {
						dst[j] = float32(gscale * (float64(gy[j]) - mg - float64(hh[j])*mgh))
					}
				}
			} else {
				// Eval mode: y is an affine map of x, so gx = γ/σ · gy.
				for i := 0; i < b; i++ {
					gy := gyAll[i*sample+ch*h*w : i*sample+(ch+1)*h*w]
					dst := gxAll[i*sample+ch*h*w : i*sample+(ch+1)*h*w]
					for j := range gy {
						dst[j] = float32(gscale) * gy[j]
					}
				}
			}
		}
		g.accum(x, gx)
		g.free(gx)
		if track {
			if g.needs(gamma) {
				g.accum(gamma, ggamma)
			}
			if g.needs(beta) {
				g.accum(beta, gbeta)
			}
			g.free(ggamma)
			g.free(gbeta)
		}
	}
	return out
}

// GroupNorm2d normalizes [B,C,H,W] over groups of channels (BiT uses
// GroupNorm instead of BatchNorm). groups must divide C.
func (g *Graph) GroupNorm2d(x, gamma, beta *Value, groups int) *Value {
	xs := x.Data.Shape()
	b, c, h, w := xs[0], xs[1], xs[2], xs[3]
	if c%groups != 0 {
		panic(fmt.Sprintf("autograd: GroupNorm2d groups %d must divide channels %d", groups, c))
	}
	cg := c / groups
	gn := cg * h * w
	const eps = 1e-5

	xhat := g.alloc(xs...)
	invStdT := g.alloc(b * groups)
	invStd := invStdT.Data()
	out := g.node("groupnorm2d", g.alloc(xs...), x, gamma, beta)
	gmd, btd := gamma.Data.Data(), beta.Data.Data()
	sample := c * h * w
	for i := 0; i < b; i++ {
		src := x.Data.Data()[i*sample : (i+1)*sample]
		hdst := xhat.Data()[i*sample : (i+1)*sample]
		odst := out.Data.Data()[i*sample : (i+1)*sample]
		for gr := 0; gr < groups; gr++ {
			lo, hi := gr*cg*h*w, (gr+1)*cg*h*w
			var m float64
			for _, v := range src[lo:hi] {
				m += float64(v)
			}
			m /= float64(gn)
			var vr float64
			for _, v := range src[lo:hi] {
				d := float64(v) - m
				vr += d * d
			}
			vr /= float64(gn)
			is := float32(1 / math.Sqrt(vr+eps))
			invStd[i*groups+gr] = is
			for j := lo; j < hi; j++ {
				ch := j / (h * w)
				hv := (src[j] - float32(m)) * is
				hdst[j] = hv
				odst[j] = gmd[ch]*hv + btd[ch]
			}
		}
	}
	out.backward = func() {
		track := g.needs(gamma) || g.needs(beta)
		gx := g.alloc(xs...)
		var ggamma, gbeta *tensor.Tensor
		if track {
			ggamma = g.allocZero(c)
			gbeta = g.allocZero(c)
		}
		for i := 0; i < b; i++ {
			gy := out.Grad.Data()[i*sample : (i+1)*sample]
			hh := xhat.Data()[i*sample : (i+1)*sample]
			dst := gx.Data()[i*sample : (i+1)*sample]
			for gr := 0; gr < groups; gr++ {
				lo, hi := gr*cg*h*w, (gr+1)*cg*h*w
				var mg, mgh float64
				for j := lo; j < hi; j++ {
					ch := j / (h * w)
					gi := gy[j] * gmd[ch]
					mg += float64(gi)
					mgh += float64(gi) * float64(hh[j])
					if track {
						ggamma.Data()[ch] += gy[j] * hh[j]
						gbeta.Data()[ch] += gy[j]
					}
				}
				mg /= float64(gn)
				mgh /= float64(gn)
				is := invStd[i*groups+gr]
				for j := lo; j < hi; j++ {
					ch := j / (h * w)
					gi := float64(gy[j] * gmd[ch])
					dst[j] = is * float32(gi-mg-float64(hh[j])*mgh)
				}
			}
		}
		g.accum(x, gx)
		g.free(gx)
		if track {
			if g.needs(gamma) {
				g.accum(gamma, ggamma)
			}
			if g.needs(beta) {
				g.accum(beta, gbeta)
			}
			g.free(ggamma)
			g.free(gbeta)
		}
	}
	return out
}
