package autograd

import (
	"math"
	"testing"

	"pelta/internal/tensor"
)

// numGrad computes a central finite-difference gradient of f at x.
func numGrad(f func(*tensor.Tensor) float64, x *tensor.Tensor, eps float64) *tensor.Tensor {
	g := tensor.New(x.Shape()...)
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + float32(eps)
		lp := f(x)
		x.Data()[i] = orig - float32(eps)
		lm := f(x)
		x.Data()[i] = orig
		g.Data()[i] = float32((lp - lm) / (2 * eps))
	}
	return g
}

// checkInputGrad verifies that Backward's gradient w.r.t. the input matches
// finite differences for the scalar-valued graph built by build.
func checkInputGrad(t *testing.T, name string, x *tensor.Tensor, build func(g *Graph, x *Value) *Value) {
	t.Helper()
	f := func(xt *tensor.Tensor) float64 {
		g := NewGraph()
		out := build(g, g.Input(xt, "x"))
		return float64(out.Data.Data()[0])
	}
	g := NewGraph()
	in := g.Input(x, "x")
	out := build(g, in)
	g.Backward(out)
	num := numGrad(f, x, 1e-2)
	if in.Grad == nil {
		t.Fatalf("%s: no input gradient", name)
	}
	for i := range num.Data() {
		n, a := float64(num.Data()[i]), float64(in.Grad.Data()[i])
		if math.Abs(n-a) > 3e-2*(1+math.Abs(n)) {
			t.Fatalf("%s: grad[%d] numeric %v vs analytic %v", name, i, n, a)
		}
	}
}

func TestAddSubMulGrads(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := rng.Normal(0, 1, 2, 3)
	c := rng.Normal(0, 1, 2, 3)
	checkInputGrad(t, "add", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.Add(in, g.Const(c, "c")))
	})
	checkInputGrad(t, "sub", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.Sub(g.Const(c, "c"), in))
	})
	checkInputGrad(t, "mul", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.Mul(in, g.Const(c, "c")))
	})
	checkInputGrad(t, "scale", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.Scale(in, -2.5))
	})
	checkInputGrad(t, "affine", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.Affine(in, 0.5, 1.25))
	})
}

func TestActivationGrads(t *testing.T) {
	rng := tensor.NewRNG(2)
	x := rng.Normal(0, 1, 3, 4)
	checkInputGrad(t, "relu", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.ReLU(in))
	})
	checkInputGrad(t, "gelu", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.GELU(in))
	})
	checkInputGrad(t, "tanh", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.Tanh(in))
	})
	checkInputGrad(t, "softmax", x, func(g *Graph, in *Value) *Value {
		// Weighted sum so the softmax backward is non-trivial.
		w := tensor.FromSlice([]float32{1, -2, 3, -4, 5, -6, 7, -8, 9, -10, 11, -12}, 3, 4)
		return g.Sum(g.Mul(g.SoftmaxLastDim(in), g.Const(w, "w")))
	})
}

func TestMatMulLinearGrads(t *testing.T) {
	rng := tensor.NewRNG(3)
	x := rng.Normal(0, 1, 4, 3)
	w := rng.Normal(0, 1, 3, 5)
	checkInputGrad(t, "matmul", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.MatMul(in, g.Const(w, "w")))
	})
	lw := rng.Normal(0, 1, 5, 3)
	lb := rng.Normal(0, 1, 5)
	checkInputGrad(t, "linear", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.Linear(in, g.Const(lw, "w"), g.Const(lb, "b")))
	})
	// 3-D input through Linear.
	x3 := rng.Normal(0, 1, 2, 3, 3)
	checkInputGrad(t, "linear3d", x3, func(g *Graph, in *Value) *Value {
		return g.Sum(g.Linear(in, g.Const(lw, "w"), g.Const(lb, "b")))
	})
}

func TestLinearParamGrads(t *testing.T) {
	rng := tensor.NewRNG(4)
	x := rng.Normal(0, 1, 4, 3)
	w := NewParam("w", rng.Normal(0, 1, 2, 3))
	b := NewParam("b", rng.Normal(0, 1, 2))

	g := NewGraph()
	out := g.Sum(g.Linear(g.Input(x, "x"), g.Param(w), g.Param(b)))
	g.Backward(out)

	fw := func(wt *tensor.Tensor) float64 {
		g := NewGraph()
		p := NewParam("w", wt)
		return float64(g.Sum(g.Linear(g.Input(x, "x"), g.Param(p), g.Param(b))).Data.Data()[0])
	}
	num := numGrad(fw, w.Data, 1e-2)
	if !num.AllClose(w.Grad, 3e-2) {
		t.Fatalf("weight grad mismatch:\n num %v\n got %v", num, w.Grad)
	}
	// Bias grad: d(sum)/db_j = number of rows.
	for _, v := range b.Grad.Data() {
		if math.Abs(float64(v)-4) > 1e-4 {
			t.Fatalf("bias grad = %v, want 4s", b.Grad.Data())
		}
	}
}

func TestBMMGrad(t *testing.T) {
	rng := tensor.NewRNG(5)
	a := rng.Normal(0, 1, 2, 3, 4)
	b := rng.Normal(0, 1, 2, 4, 2)
	checkInputGrad(t, "bmm", a, func(g *Graph, in *Value) *Value {
		return g.Sum(g.BMM(in, g.Const(b, "b")))
	})
}

func TestShapeOpGrads(t *testing.T) {
	rng := tensor.NewRNG(6)
	x := rng.Normal(0, 1, 2, 3, 4)
	w := rng.Normal(0, 1, 2, 4, 3)
	checkInputGrad(t, "permute", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.Mul(g.Permute(in, 0, 2, 1), g.Const(w, "w")))
	})
	checkInputGrad(t, "reshape", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.Mul(g.Reshape(in, 6, 4), g.Const(w.Reshape(6, 4), "w")))
	})
	tok := rng.Normal(0, 1, 4)
	checkInputGrad(t, "prepend_token", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.PrependToken(in, g.Const(tok, "tok")))
	})
	checkInputGrad(t, "take_token", x, func(g *Graph, in *Value) *Value {
		return g.Sum(g.TakeToken(in, 1))
	})
	img := rng.Normal(0, 1, 2, 3, 4, 4)
	pw := rng.Normal(0, 1, 2, 4, 12)
	checkInputGrad(t, "patchify", img, func(g *Graph, in *Value) *Value {
		return g.Sum(g.Mul(g.Patchify(in, 2), g.Const(pw, "w")))
	})
}

func TestPatchifyLayout(t *testing.T) {
	// A 1-channel 4x4 image with patch 2 must produce 4 patches of 4 pixels
	// in row-major patch order.
	x := tensor.FromSlice([]float32{
		0, 1, 2, 3,
		4, 5, 6, 7,
		8, 9, 10, 11,
		12, 13, 14, 15,
	}, 1, 1, 4, 4)
	g := NewGraph()
	p := g.Patchify(g.Input(x, "x"), 2)
	if p.Data.Dim(1) != 4 || p.Data.Dim(2) != 4 {
		t.Fatalf("patch shape = %v", p.Data.Shape())
	}
	want := [][]float32{{0, 1, 4, 5}, {2, 3, 6, 7}, {8, 9, 12, 13}, {10, 11, 14, 15}}
	for pi, wp := range want {
		for j, wv := range wp {
			if p.Data.At(0, pi, j) != wv {
				t.Fatalf("patch %d = %v, want %v", pi, p.Data.Slice(0).Row(pi).Data(), wp)
			}
		}
	}
}

func TestConvOpGrads(t *testing.T) {
	rng := tensor.NewRNG(7)
	x := rng.Normal(0, 1, 2, 2, 5, 5)
	w := rng.Normal(0, 0.5, 3, 2, 3, 3)
	b := rng.Normal(0, 0.5, 3)
	checkInputGrad(t, "conv2d", x, func(g *Graph, in *Value) *Value {
		y := g.Conv2d(in, g.Const(w, "w"), g.Const(b, "b"), 1, 1)
		return g.Sum(g.Mul(y, y))
	})
	checkInputGrad(t, "wsconv2d", x, func(g *Graph, in *Value) *Value {
		y := g.WSConv2d(in, g.Const(w, "w"), g.Const(b, "b"), 2, 1)
		return g.Sum(g.Mul(y, y))
	})
	checkInputGrad(t, "pad2d", x, func(g *Graph, in *Value) *Value {
		y := g.Pad2d(in, 1)
		return g.Sum(g.Mul(y, y))
	})
	checkInputGrad(t, "maxpool", x, func(g *Graph, in *Value) *Value {
		y := g.MaxPool2d(in, 2, 2)
		return g.Sum(g.Mul(y, y))
	})
	checkInputGrad(t, "avgpool", x, func(g *Graph, in *Value) *Value {
		y := g.AvgPoolGlobal(in)
		return g.Sum(g.Mul(y, y))
	})
}

func TestWSConvWeightGrad(t *testing.T) {
	rng := tensor.NewRNG(17)
	x := rng.Normal(0, 1, 1, 2, 4, 4)
	w := NewParam("w", rng.Normal(0, 0.5, 2, 2, 3, 3))
	g := NewGraph()
	y := g.WSConv2d(g.Input(x, "x"), g.Param(w), nil, 1, 1)
	loss := g.Sum(g.Mul(y, y))
	g.Backward(loss)
	f := func(wt *tensor.Tensor) float64 {
		g := NewGraph()
		p := NewParam("w", wt)
		y := g.WSConv2d(g.Input(x, "x"), g.Param(p), nil, 1, 1)
		return float64(g.Sum(g.Mul(y, y)).Data.Data()[0])
	}
	num := numGrad(f, w.Data, 1e-2)
	for i := range num.Data() {
		n, a := float64(num.Data()[i]), float64(w.Grad.Data()[i])
		if math.Abs(n-a) > 5e-2*(1+math.Abs(n)) {
			t.Fatalf("wsconv weight grad[%d]: numeric %v vs analytic %v", i, n, a)
		}
	}
}

func TestNormGrads(t *testing.T) {
	rng := tensor.NewRNG(8)
	x := rng.Normal(0, 2, 3, 6)
	gamma := rng.Normal(1, 0.1, 6)
	beta := rng.Normal(0, 0.1, 6)
	checkInputGrad(t, "layernorm", x, func(g *Graph, in *Value) *Value {
		y := g.LayerNorm(in, g.Const(gamma, "g"), g.Const(beta, "b"))
		return g.Sum(g.Mul(y, y))
	})

	img := rng.Normal(0, 2, 2, 4, 3, 3)
	gamma4 := rng.Normal(1, 0.1, 4)
	beta4 := rng.Normal(0, 0.1, 4)
	checkInputGrad(t, "groupnorm", img, func(g *Graph, in *Value) *Value {
		y := g.GroupNorm2d(in, g.Const(gamma4, "g"), g.Const(beta4, "b"), 2)
		return g.Sum(g.Mul(y, y))
	})
	// BatchNorm in eval mode (the inference path attacks differentiate).
	st := NewBatchNormState(4, 0.1)
	for i := range st.RunningMean {
		st.RunningMean[i] = 0.3 * float64(i)
		st.RunningVar[i] = 1 + 0.2*float64(i)
	}
	checkInputGrad(t, "batchnorm_eval", img, func(g *Graph, in *Value) *Value {
		y := g.BatchNorm2d(in, g.Const(gamma4, "g"), g.Const(beta4, "b"), st, false)
		return g.Sum(g.Mul(y, y))
	})
}

func TestBatchNormTrainingGradAndRunningStats(t *testing.T) {
	rng := tensor.NewRNG(9)
	img := rng.Normal(1.5, 2, 4, 2, 3, 3)
	gamma := NewParam("g", tensor.Ones(2))
	beta := NewParam("b", tensor.New(2))
	st := NewBatchNormState(2, 0.5)

	g := NewGraph()
	in := g.Input(img, "x")
	y := g.BatchNorm2d(in, g.Param(gamma), g.Param(beta), st, true)
	g.Backward(g.Sum(g.Mul(y, y)))

	// Output is standardized: per-channel mean ~0 within the graph.
	if m := tensor.Mean(y.Data); math.Abs(m) > 1e-4 {
		t.Fatalf("training BN output mean = %v, want ~0", m)
	}
	// Running stats moved toward batch stats (mean 1.5).
	if st.RunningMean[0] < 0.3 {
		t.Fatalf("running mean did not update: %v", st.RunningMean)
	}
	if in.Grad == nil {
		t.Fatal("no input grad through training BN")
	}
	// Sum of grads through a standardizing transform is ~0 per channel.
	var s float64
	for _, v := range in.Grad.Data() {
		s += float64(v)
	}
	if math.Abs(s) > 1e-2 {
		t.Fatalf("BN training grad sum = %v, want ~0", s)
	}
}

func TestCrossEntropyGradAndInfo(t *testing.T) {
	rng := tensor.NewRNG(10)
	logits := rng.Normal(0, 1, 3, 5)
	labels := []int{1, 4, 0}
	checkInputGrad(t, "cross_entropy_sum", logits, func(g *Graph, in *Value) *Value {
		out, _ := g.CrossEntropy(in, labels, ReduceSum)
		return out
	})
	checkInputGrad(t, "cross_entropy_mean", logits, func(g *Graph, in *Value) *Value {
		out, _ := g.CrossEntropy(in, labels, ReduceMean)
		return out
	})
	g := NewGraph()
	out, info := g.CrossEntropy(g.Input(logits, "l"), labels, ReduceMean)
	sum := 0.0
	for _, v := range info.PerSample {
		sum += v
	}
	if math.Abs(sum/3-float64(out.Data.Data()[0])) > 1e-5 {
		t.Fatal("per-sample losses inconsistent with reduced loss")
	}
	if info.Probs.Dim(0) != 3 || info.Probs.Dim(1) != 5 {
		t.Fatalf("probs shape = %v", info.Probs.Shape())
	}
}

func TestCWMarginGrad(t *testing.T) {
	rng := tensor.NewRNG(11)
	logits := rng.Normal(0, 1, 4, 6)
	labels := []int{0, 2, 5, 3}
	checkInputGrad(t, "cw_margin", logits, func(g *Graph, in *Value) *Value {
		return g.CWMargin(in, labels, 0.5)
	})
}

func TestCWMarginClampsAtKappa(t *testing.T) {
	// When the runner-up already exceeds the true class by more than κ the
	// margin saturates and the gradient must vanish.
	logits := tensor.FromSlice([]float32{0, 10, 0}, 1, 3)
	g := NewGraph()
	in := g.Input(logits, "l")
	out := g.CWMargin(in, []int{0}, 1)
	g.Backward(out)
	if out.Data.Data()[0] != -1 {
		t.Fatalf("saturated margin = %v, want -1", out.Data.Data()[0])
	}
	for _, v := range in.Grad.Data() {
		if v != 0 {
			t.Fatalf("saturated margin should have zero grad, got %v", in.Grad.Data())
		}
	}
}

func TestSqDistSumGrad(t *testing.T) {
	rng := tensor.NewRNG(12)
	x := rng.Normal(0, 1, 2, 3)
	ref := rng.Normal(0, 1, 2, 3)
	checkInputGrad(t, "sqdist", x, func(g *Graph, in *Value) *Value {
		return g.SqDistSum(in, ref)
	})
}

func TestAddBroadcastGrad(t *testing.T) {
	rng := tensor.NewRNG(13)
	x := rng.Normal(0, 1, 2, 3, 4)
	pos := NewParam("pos", rng.Normal(0, 1, 3, 4))
	g := NewGraph()
	in := g.Input(x, "x")
	out := g.Sum(g.AddBroadcast(in, g.Param(pos)))
	g.Backward(out)
	// d(sum)/dpos = batch size for each element.
	for _, v := range pos.Grad.Data() {
		if v != 2 {
			t.Fatalf("broadcast grad = %v, want 2s", pos.Grad.Data())
		}
	}
}

func TestGraphStructureMatchesPaperFormalization(t *testing.T) {
	// Build f = softmax(W2·relu(W1·x+b1)+b2) and verify the graph exposes
	// numbered vertices, ops, parent edges, and the input leaf — everything
	// Algorithm 1 needs.
	rng := tensor.NewRNG(14)
	x := rng.Normal(0, 1, 1, 4)
	w1 := NewParam("w1", rng.Normal(0, 1, 8, 4))
	b1 := NewParam("b1", rng.Normal(0, 1, 8))
	w2 := NewParam("w2", rng.Normal(0, 1, 3, 8))

	g := NewGraph()
	in := g.Input(x, "image")
	h := g.ReLU(g.Linear(in, g.Param(w1), g.Param(b1)))
	logits := g.Linear(h, g.Param(w2), nil)
	probs := g.SoftmaxLastDim(logits)

	if g.InputLeaf() != in {
		t.Fatal("InputLeaf should find the input")
	}
	if !in.IsInput() || !in.IsLeaf() {
		t.Fatal("input flags wrong")
	}
	ids := map[int]bool{}
	for _, v := range g.Nodes() {
		if ids[v.ID()] {
			t.Fatal("duplicate vertex id")
		}
		ids[v.ID()] = true
		for _, p := range v.Parents() {
			if p.ID() >= v.ID() {
				t.Fatalf("edge (%d,%d) violates j < i ordering", p.ID(), v.ID())
			}
		}
	}
	ch := g.Children()
	if len(ch[in]) != 1 || ch[in][0].Op() != "linear" {
		t.Fatalf("input children = %v", ch[in])
	}
	if probs.Op() != "softmax" {
		t.Fatalf("op label = %q", probs.Op())
	}
}

func TestParamNodeReuseWithinGraph(t *testing.T) {
	p := NewParam("w", tensor.Ones(2, 2))
	g := NewGraph()
	a := g.Param(p)
	b := g.Param(p)
	if a != b {
		t.Fatal("Param must return the same vertex within one graph")
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar backward")
		}
	}()
	g := NewGraph()
	v := g.Input(tensor.Ones(2, 2), "x")
	g.Backward(v)
}

func TestScrubRemovesTensors(t *testing.T) {
	g := NewGraph()
	v := g.Input(tensor.Ones(2), "x")
	out := g.Sum(v)
	g.Backward(out)
	if v.Grad == nil {
		t.Fatal("expected grad before scrub")
	}
	v.SetShielded(true)
	v.Scrub()
	if v.Data != nil || v.Grad != nil {
		t.Fatal("Scrub must clear tensors")
	}
	if !v.Shielded() {
		t.Fatal("shielded flag lost")
	}
}
