package autograd

import (
	"fmt"

	"pelta/internal/tensor"
)

// Param is a trainable leaf shared across graphs (weights, biases,
// embeddings). Data persists between forward passes; Grad is accumulated by
// Backward and cleared by the optimizer.
type Param struct {
	Name string
	Data *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam wraps data as a named trainable parameter with a zeroed gradient.
func NewParam(name string, data *tensor.Tensor) *Param {
	return &Param{Name: name, Data: data, Grad: tensor.New(data.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Value is one vertex of the computational graph: the output u_i of a
// transformation f_i applied to its parent vertices.
type Value struct {
	id      int
	op      string
	name    string
	parents []*Value
	graph   *Graph

	// Data is the forward result u_i. Grad is dL/du_i, allocated during
	// Backward. Either may be nil after Pelta scrubs a shielded vertex.
	Data *tensor.Tensor
	Grad *tensor.Tensor

	backward func()
	isInput  bool
	param    *Param
	shielded bool
}

// ID returns the vertex number (creation order within its graph).
func (v *Value) ID() int { return v.id }

// Op returns the transformation label, e.g. "conv2d" or "layernorm".
func (v *Value) Op() string { return v.op }

// Name returns the optional human label (set for inputs and parameters).
func (v *Value) Name() string { return v.name }

// Parents returns the parent vertices α_i. The slice must not be modified.
func (v *Value) Parents() []*Value { return v.parents }

// IsInput reports whether the vertex is the model input leaf (the trainable
// quantity from the attacker's point of view).
func (v *Value) IsInput() bool { return v.isInput }

// IsLeaf reports whether the vertex has no parents (input or parameter).
func (v *Value) IsLeaf() bool { return len(v.parents) == 0 }

// Param returns the parameter backing this leaf, or nil.
func (v *Value) Param() *Param { return v.param }

// Shielded reports whether Pelta moved this vertex into the enclave.
func (v *Value) Shielded() bool { return v.shielded }

// SetShielded marks the vertex as enclave-resident.
func (v *Value) SetShielded(s bool) { v.shielded = s }

// Scrub removes the vertex's tensors from normal-world memory. Subsequent
// reads observe nil, modelling the physical inaccessibility of the enclave.
// On a pooled graph the buffers are withdrawn from the arena so a later
// Release can never recycle memory that conceptually lives in the enclave.
func (v *Value) Scrub() {
	if v.graph != nil {
		v.graph.retain(v.Data)
		v.graph.retain(v.Grad)
	}
	v.Data = nil
	v.Grad = nil
}

// ScrubGrad removes only the vertex's gradient — the input-jacobian case of
// Algorithm 1, where ∇xL is masked but the input x itself stays with its
// owner. Like Scrub, the buffer is withdrawn from a pooled graph's arena.
func (v *Value) ScrubGrad() {
	if v.graph != nil {
		v.graph.retain(v.Grad)
	}
	v.Grad = nil
}

func (v *Value) String() string {
	return fmt.Sprintf("u%d(%s%s)", v.id, v.op, map[bool]string{true: ":" + v.name, false: ""}[v.name != ""])
}

// Graph records one forward pass. Parameters are shared across graphs via
// Param. A graph is either single-use (NewGraph, one pass then garbage
// collected) or a reusable arena (NewGraphWithPool, one pass per
// Release cycle).
type Graph struct {
	nodes      []*Value
	paramNodes map[*Param]*Value

	// pool, when non-nil, backs every tensor the graph's ops allocate;
	// owned maps the first element of each borrowed buffer to the borrowed
	// tensor so Release can return them (and Scrub can withdraw them).
	pool  *tensor.Pool
	owned map[*float32]*tensor.Tensor

	// trackParamGrads controls whether backward accumulates into the
	// persistent Param.Grad buffers. Attack oracles disable it: probing
	// needs ∇x only, and skipping the weight-gradient products roughly
	// halves the backward pass.
	trackParamGrads bool

	// recorded holds graph-scoped artifacts tagged by ops or models during
	// the pass (e.g. attention probabilities for the SAGA rollout). Keeping
	// them here rather than on the model keeps concurrent forward passes on
	// shared weights race-free.
	recorded map[string][]*Value

	// wants marks Record keys the consumer of the next pass will read.
	// Layers with a fused fast path (attention) only materialize and Record
	// the full artifact when its key is requested; the request is cleared by
	// Release, so consumers re-arm it each pass.
	wants map[string]bool

	// freeVals recycles Value structs (and their parent slices) across
	// Release cycles, so steady-state graph recording allocates no vertex
	// objects. Only populated on pooled graphs.
	freeVals []*Value

	// ownedInts tracks borrowed integer buffers (max-pool argmax maps),
	// swept back alongside the tensors.
	ownedInts [][]int
}

// NewGraph returns an empty graph allocating from the Go heap.
func NewGraph() *Graph {
	return &Graph{paramNodes: make(map[*Param]*Value), trackParamGrads: true}
}

// NewGraphWithPool returns an empty reusable graph that borrows every
// forward/backward tensor from p. After consuming a pass's results, call
// Release to return the borrowed memory and make the graph ready for the
// next pass.
func NewGraphWithPool(p *tensor.Pool) *Graph {
	g := NewGraph()
	g.pool = p
	g.owned = make(map[*float32]*tensor.Tensor)
	return g
}

// Pool returns the pool backing this graph, or nil for a heap graph.
func (g *Graph) Pool() *tensor.Pool { return g.pool }

// SetTrackParamGrads toggles accumulation into persistent parameter
// gradients. Disabling it (attack oracles) skips both the accumulation and
// the computation of weight-gradient products in every op's backward.
func (g *Graph) SetTrackParamGrads(t bool) { g.trackParamGrads = t }

// Release returns every buffer the graph borrowed from its pool and resets
// the graph for the next pass. Buffers of vertices scrubbed into the Pelta
// enclave were withdrawn at Scrub time and are NOT returned: recycling them
// would alias normal-world tensors with enclave-held state. On a heap graph
// Release only resets the recording state.
func (g *Graph) Release() {
	if g.pool != nil {
		for _, t := range g.owned {
			g.pool.Put(t)
		}
		clear(g.owned)
		for _, buf := range g.ownedInts {
			g.pool.PutInts(buf)
		}
		g.ownedInts = g.ownedInts[:0]
		// Recycle the vertex objects; any Value reference held across
		// Release is invalid by contract.
		for _, v := range g.nodes {
			parents := v.parents[:0]
			*v = Value{parents: parents}
			g.freeVals = append(g.freeVals, v)
		}
	}
	g.nodes = g.nodes[:0]
	clear(g.paramNodes)
	for k := range g.recorded {
		g.recorded[k] = g.recorded[k][:0]
	}
	clear(g.wants)
}

// alloc borrows an uninitialized tensor for an op output that overwrites
// every element. Heap graphs fall back to a fresh zeroed tensor.
func (g *Graph) alloc(shape ...int) *tensor.Tensor {
	if g.pool == nil {
		return tensor.New(shape...)
	}
	t := g.pool.Get(shape...)
	g.adopt(t)
	return t
}

// allocZero borrows a zero-filled tensor for ops that accumulate into their
// output or write it partially.
func (g *Graph) allocZero(shape ...int) *tensor.Tensor {
	if g.pool == nil {
		return tensor.New(shape...)
	}
	t := g.pool.GetZero(shape...)
	g.adopt(t)
	return t
}

// allocInts borrows an integer buffer that lives until Release.
func (g *Graph) allocInts(n int) []int {
	if g.pool == nil {
		return make([]int, n)
	}
	buf := g.pool.GetInts(n)
	g.ownedInts = append(g.ownedInts, buf)
	return buf
}

// adopt registers a pool-borrowed tensor as owned by this graph's arena.
func (g *Graph) adopt(t *tensor.Tensor) {
	if d := t.Data(); len(d) > 0 {
		g.owned[&d[0]] = t
	}
}

// free returns a borrowed temporary to the pool immediately (backward-pass
// scratch that no vertex retains).
func (g *Graph) free(t *tensor.Tensor) {
	if g.pool == nil || t == nil {
		return
	}
	d := t.Data()
	if len(d) == 0 {
		return
	}
	if _, ok := g.owned[&d[0]]; ok {
		delete(g.owned, &d[0])
		g.pool.Put(t)
	}
}

// retain withdraws a buffer from the arena without returning it to the
// pool: the memory now belongs to someone else (the enclave, or a caller
// that must outlive Release).
func (g *Graph) retain(t *tensor.Tensor) {
	if g.pool == nil || t == nil {
		return
	}
	if d := t.Data(); len(d) > 0 {
		delete(g.owned, &d[0])
	}
}

// Record tags v as a graph-scoped artifact under key (e.g. the attention
// probabilities consumed by the SAGA rollout). Recorded values live until
// Release.
func (g *Graph) Record(key string, v *Value) {
	if g.recorded == nil {
		g.recorded = make(map[string][]*Value)
	}
	g.recorded[key] = append(g.recorded[key], v)
}

// Recorded returns the values tagged under key during the current pass, in
// recording order.
func (g *Graph) Recorded(key string) []*Value { return g.recorded[key] }

// RequestRecorded arms recording for key on the NEXT forward pass built on
// this graph: layers that would otherwise take a fused fast path (and skip
// materializing the artifact) fall back to the recording path. The request
// lasts until Release, so callers re-arm it before every pass that reads
// Recorded(key).
func (g *Graph) RequestRecorded(key string) {
	if g.wants == nil {
		g.wants = make(map[string]bool)
	}
	g.wants[key] = true
}

// WantsRecorded reports whether a consumer requested Record(key) artifacts
// for the current pass.
func (g *Graph) WantsRecorded(key string) bool { return g.wants[key] }

// RecordAttention is the Record key under which attention layers store their
// per-block probability vertices ([B*heads, T, T]).
const RecordAttention = "attention"

// Nodes returns the vertices in creation (topological) order.
func (g *Graph) Nodes() []*Value { return g.nodes }

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.nodes) }

// newValue takes a vertex object from the freelist (or the heap) and
// registers it.
func (g *Graph) newValue(op string, parents ...*Value) *Value {
	var v *Value
	if n := len(g.freeVals); n > 0 {
		v = g.freeVals[n-1]
		g.freeVals[n-1] = nil
		g.freeVals = g.freeVals[:n-1]
		v.op = op
		v.parents = append(v.parents[:0], parents...)
	} else {
		v = &Value{op: op, parents: parents}
	}
	v.id = len(g.nodes)
	v.graph = g
	g.nodes = append(g.nodes, v)
	return v
}

// node creates and registers an interior vertex.
func (g *Graph) node(op string, data *tensor.Tensor, parents ...*Value) *Value {
	v := g.newValue(op, parents...)
	v.Data = data
	return v
}

// Input registers x as the model-input leaf u_0 — the quantity an
// adversarial attack treats as trainable.
func (g *Graph) Input(x *tensor.Tensor, name string) *Value {
	v := g.newValue("input")
	v.name = name
	v.Data = x
	v.isInput = true
	return v
}

// Const registers a non-trainable leaf (e.g. a fixed target); no gradient
// flows into it.
func (g *Graph) Const(x *tensor.Tensor, name string) *Value {
	v := g.newValue("const")
	v.name = name
	v.Data = x
	return v
}

// Param registers (or reuses) the leaf vertex for p within this graph.
// When parameter-gradient tracking is on, gradients accumulate directly
// into p.Grad; otherwise the leaf carries no gradient and backward passes
// skip the weight-gradient products entirely.
func (g *Graph) Param(p *Param) *Value {
	if v, ok := g.paramNodes[p]; ok {
		return v
	}
	v := g.newValue("param")
	v.name = p.Name
	v.Data = p.Data
	v.param = p
	if g.trackParamGrads {
		v.Grad = p.Grad
	}
	g.paramNodes[p] = v
	return v
}

// needs reports whether backward must produce a gradient for parent v.
// Interior vertices and inputs always need one; parameter leaves only when
// tracking is on; const leaves never.
func (g *Graph) needs(v *Value) bool {
	if v.param != nil {
		return g.trackParamGrads
	}
	return v.op != "const"
}

// accum adds grad into v.Grad, allocating it on first use. Parameter leaves
// alias their Param's persistent gradient, so accumulation trains them.
// The gradient buffer always carries the vertex's own shape — children may
// hand in equal-length tensors with a different header (e.g. a reshape's
// upstream adjoint).
func (g *Graph) accum(v *Value, grad *tensor.Tensor) {
	if v.Grad == nil {
		shape := grad.Shape()
		if v.Data != nil {
			shape = v.Data.Shape()
		}
		if v.param == nil && g.pool != nil {
			v.Grad = g.alloc(shape...)
		} else {
			v.Grad = tensor.New(shape...)
		}
		v.Grad.CopyFrom(grad)
		return
	}
	tensor.AddIn(v.Grad, grad)
}

// Backward runs reverse-mode differentiation from the scalar loss vertex.
// Gradients for every vertex are retained (Pelta and the attacks need
// interior adjoints, not just leaf gradients).
func (g *Graph) Backward(loss *Value) {
	if loss.Data.Len() != 1 {
		panic(fmt.Sprintf("autograd: Backward requires a scalar loss, got shape %v", loss.Data.Shape()))
	}
	if loss.Grad == nil {
		loss.Grad = g.alloc(loss.Data.Shape()...)
		loss.Grad.Fill(1)
	}
	for i := len(g.nodes) - 1; i >= 0; i-- {
		v := g.nodes[i]
		if v.Grad == nil || v.backward == nil {
			continue
		}
		v.backward()
	}
}

// Children returns the forward adjacency (vertex -> direct children),
// i.e. the edge set E oriented from parents to children, as used by the
// Shield recursion of Algorithm 1.
func (g *Graph) Children() map[*Value][]*Value {
	ch := make(map[*Value][]*Value, len(g.nodes))
	for _, v := range g.nodes {
		for _, p := range v.parents {
			ch[p] = append(ch[p], v)
		}
	}
	return ch
}

// InputLeaf returns the first input vertex, or nil if none was registered.
func (g *Graph) InputLeaf() *Value {
	for _, v := range g.nodes {
		if v.isInput {
			return v
		}
	}
	return nil
}
