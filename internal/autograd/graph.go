// Package autograd implements define-by-run reverse-mode automatic
// differentiation on an explicit computational graph.
//
// The graph mirrors the paper's formalization G = ⟨n, l, E, u_1…u_n,
// f_{l+1}…f_n⟩ (§IV-B): every Value is a numbered vertex u_i carrying the
// result of a differentiable transformation f_i of its parents, and leaves
// are inputs or parameters. Pelta's Algorithm 1 (internal/core) walks this
// structure to decide which vertices and local jacobians to move into the
// enclave, so vertex identity, op labels and parent edges are first-class
// here rather than hidden inside closures.
package autograd

import (
	"fmt"

	"pelta/internal/tensor"
)

// Param is a trainable leaf shared across graphs (weights, biases,
// embeddings). Data persists between forward passes; Grad is accumulated by
// Backward and cleared by the optimizer.
type Param struct {
	Name string
	Data *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam wraps data as a named trainable parameter with a zeroed gradient.
func NewParam(name string, data *tensor.Tensor) *Param {
	return &Param{Name: name, Data: data, Grad: tensor.New(data.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Value is one vertex of the computational graph: the output u_i of a
// transformation f_i applied to its parent vertices.
type Value struct {
	id      int
	op      string
	name    string
	parents []*Value

	// Data is the forward result u_i. Grad is dL/du_i, allocated during
	// Backward. Either may be nil after Pelta scrubs a shielded vertex.
	Data *tensor.Tensor
	Grad *tensor.Tensor

	backward func()
	isInput  bool
	param    *Param
	shielded bool
}

// ID returns the vertex number (creation order within its graph).
func (v *Value) ID() int { return v.id }

// Op returns the transformation label, e.g. "conv2d" or "layernorm".
func (v *Value) Op() string { return v.op }

// Name returns the optional human label (set for inputs and parameters).
func (v *Value) Name() string { return v.name }

// Parents returns the parent vertices α_i. The slice must not be modified.
func (v *Value) Parents() []*Value { return v.parents }

// IsInput reports whether the vertex is the model input leaf (the trainable
// quantity from the attacker's point of view).
func (v *Value) IsInput() bool { return v.isInput }

// IsLeaf reports whether the vertex has no parents (input or parameter).
func (v *Value) IsLeaf() bool { return len(v.parents) == 0 }

// Param returns the parameter backing this leaf, or nil.
func (v *Value) Param() *Param { return v.param }

// Shielded reports whether Pelta moved this vertex into the enclave.
func (v *Value) Shielded() bool { return v.shielded }

// SetShielded marks the vertex as enclave-resident.
func (v *Value) SetShielded(s bool) { v.shielded = s }

// Scrub removes the vertex's tensors from normal-world memory. Subsequent
// reads observe nil, modelling the physical inaccessibility of the enclave.
func (v *Value) Scrub() {
	v.Data = nil
	v.Grad = nil
}

func (v *Value) String() string {
	return fmt.Sprintf("u%d(%s%s)", v.id, v.op, map[bool]string{true: ":" + v.name, false: ""}[v.name != ""])
}

// Graph records one forward pass. Create a fresh graph per pass; parameters
// are shared across graphs via Param.
type Graph struct {
	nodes      []*Value
	paramNodes map[*Param]*Value
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{paramNodes: make(map[*Param]*Value)}
}

// Nodes returns the vertices in creation (topological) order.
func (g *Graph) Nodes() []*Value { return g.nodes }

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.nodes) }

func (g *Graph) add(v *Value) *Value {
	v.id = len(g.nodes)
	g.nodes = append(g.nodes, v)
	return v
}

// node creates and registers an interior vertex.
func (g *Graph) node(op string, data *tensor.Tensor, parents ...*Value) *Value {
	return g.add(&Value{op: op, Data: data, parents: parents})
}

// Input registers x as the model-input leaf u_0 — the quantity an
// adversarial attack treats as trainable.
func (g *Graph) Input(x *tensor.Tensor, name string) *Value {
	v := g.add(&Value{op: "input", name: name, Data: x, isInput: true})
	return v
}

// Const registers a non-trainable leaf (e.g. a fixed target); no gradient
// flows into it.
func (g *Graph) Const(x *tensor.Tensor, name string) *Value {
	return g.add(&Value{op: "const", name: name, Data: x})
}

// Param registers (or reuses) the leaf vertex for p within this graph.
// Gradients accumulate directly into p.Grad.
func (g *Graph) Param(p *Param) *Value {
	if v, ok := g.paramNodes[p]; ok {
		return v
	}
	v := g.add(&Value{op: "param", name: p.Name, Data: p.Data, Grad: p.Grad, param: p})
	g.paramNodes[p] = v
	return v
}

// accum adds g into v.Grad, allocating it on first use. Parameter leaves
// alias their Param's persistent gradient, so accumulation trains them.
func accum(v *Value, grad *tensor.Tensor) {
	if v.Grad == nil {
		v.Grad = grad.Clone()
		return
	}
	tensor.AddIn(v.Grad, grad)
}

// Backward runs reverse-mode differentiation from the scalar loss vertex.
// Gradients for every vertex are retained (Pelta and the attacks need
// interior adjoints, not just leaf gradients).
func (g *Graph) Backward(loss *Value) {
	if loss.Data.Len() != 1 {
		panic(fmt.Sprintf("autograd: Backward requires a scalar loss, got shape %v", loss.Data.Shape()))
	}
	if loss.Grad == nil {
		loss.Grad = tensor.Ones(loss.Data.Shape()...)
	}
	for i := len(g.nodes) - 1; i >= 0; i-- {
		v := g.nodes[i]
		if v.Grad == nil || v.backward == nil {
			continue
		}
		v.backward()
	}
}

// Children returns the forward adjacency (vertex -> direct children),
// i.e. the edge set E oriented from parents to children, as used by the
// Shield recursion of Algorithm 1.
func (g *Graph) Children() map[*Value][]*Value {
	ch := make(map[*Value][]*Value, len(g.nodes))
	for _, v := range g.nodes {
		for _, p := range v.parents {
			ch[p] = append(ch[p], v)
		}
	}
	return ch
}

// InputLeaf returns the first input vertex, or nil if none was registered.
func (g *Graph) InputLeaf() *Value {
	for _, v := range g.nodes {
		if v.isInput {
			return v
		}
	}
	return nil
}
