package autograd

import (
	"fmt"

	"pelta/internal/tensor"
)

// FusedAttention computes softmax(q@kᵀ·scale)@v over [G,T,dh] vertices (G =
// batch·heads) through the fused strip kernel: the [G,T,T] score and
// probability tensors are never materialized, on the forward or the
// backward pass (which recomputes each strip's probabilities from q and k).
// The kernel is numerically pinned to the unfused BMM → Scale →
// SoftmaxLastDim → BMM chain, so swapping between the two paths — e.g. when
// a consumer requests recorded attention maps — changes no output bit.
func (g *Graph) FusedAttention(q, k, v *Value, scale float32) *Value {
	qs := q.Data.Shape()
	if len(qs) != 3 || !q.Data.SameShape(k.Data) || !q.Data.SameShape(v.Data) {
		panic(fmt.Sprintf("autograd: FusedAttention shapes %v/%v/%v invalid",
			qs, k.Data.Shape(), v.Data.Shape()))
	}
	out := g.node("fusedattention", g.alloc(qs...), q, k, v)
	tensor.FusedAttentionInto(g.pool, out.Data, q.Data, k.Data, v.Data, scale)
	out.backward = func() {
		// q, k and v are interior vertices of the attention block, so all
		// three gradients are always live; gq is fully overwritten while
		// gk/gv are accumulated into a zero base.
		gq := g.alloc(qs...)
		gk := g.allocZero(qs...)
		gv := g.allocZero(qs...)
		tensor.FusedAttentionBackwardInto(g.pool, gq, gk, gv, q.Data, k.Data, v.Data, out.Grad, scale)
		g.accum(q, gq)
		g.accum(k, gk)
		g.accum(v, gv)
		g.free(gq)
		g.free(gk)
		g.free(gv)
	}
	return out
}
