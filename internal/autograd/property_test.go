package autograd

import (
	"math"
	"testing"
	"testing/quick"

	"pelta/internal/tensor"
)

// Property: backward is linear — scaling the loss by a scales every
// gradient by a.
func TestBackwardLinearityProperty(t *testing.T) {
	f := func(seed int64, rawScale uint8) bool {
		scale := float32(rawScale%7) + 0.5
		rng := tensor.NewRNG(seed)
		x := rng.Normal(0, 1, 3, 4)
		w := rng.Normal(0, 1, 2, 4)

		gradFor := func(alpha float32) *tensor.Tensor {
			g := NewGraph()
			in := g.Input(x.Clone(), "x")
			y := g.Linear(in, g.Const(w, "w"), nil)
			loss := g.Scale(g.Sum(g.Mul(y, y)), alpha)
			g.Backward(loss)
			return in.Grad
		}
		g1 := gradFor(1)
		gs := gradFor(scale)
		for i := range g1.Data() {
			want := g1.Data()[i] * scale
			if math.Abs(float64(gs.Data()[i]-want)) > 1e-3*(1+math.Abs(float64(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: gradients accumulate additively when a vertex feeds two
// branches (the Σ_j of Eq. 1).
func TestGradientAccumulationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		x := rng.Normal(0, 1, 2, 3)

		// Loss = sum(x⊙a) + sum(x⊙b) must give grad a+b.
		a := rng.Normal(0, 1, 2, 3)
		b := rng.Normal(0, 1, 2, 3)
		g := NewGraph()
		in := g.Input(x, "x")
		loss := g.Add(g.Sum(g.Mul(in, g.Const(a, "a"))), g.Sum(g.Mul(in, g.Const(b, "b"))))
		g.Backward(loss)
		want := tensor.Add(a, b)
		return in.Grad.AllClose(want, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax outputs are a probability simplex for any input.
func TestSoftmaxSimplexProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		x := rng.Normal(0, 5, 4, 6)
		g := NewGraph()
		p := g.SoftmaxLastDim(g.Input(x, "x"))
		for r := 0; r < 4; r++ {
			var sum float64
			for c := 0; c < 6; c++ {
				v := float64(p.Data.At(r, c))
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: vertex numbering respects the paper's edge condition j < i for
// every graph shape we build.
func TestEdgeOrderingProperty(t *testing.T) {
	f := func(seed int64, depthRaw uint8) bool {
		depth := int(depthRaw%4) + 1
		rng := tensor.NewRNG(seed)
		g := NewGraph()
		v := g.Input(rng.Normal(0, 1, 2, 4), "x")
		for d := 0; d < depth; d++ {
			w := NewParam("w", rng.Normal(0, 1, 4, 4))
			v = g.ReLU(g.Linear(v, g.Param(w), nil))
		}
		for _, node := range g.Nodes() {
			for _, p := range node.Parents() {
				if p.ID() >= node.ID() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: LayerNorm output is invariant to a constant shift of its input
// (mean subtraction removes it).
func TestLayerNormShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64, rawShift uint8) bool {
		shift := float32(rawShift)/16 - 4
		rng := tensor.NewRNG(seed)
		x := rng.Normal(0, 1, 3, 8)
		gamma := tensor.Ones(8)
		beta := tensor.New(8)

		run := func(in *tensor.Tensor) *tensor.Tensor {
			g := NewGraph()
			return g.LayerNorm(g.Input(in, "x"), g.Const(gamma, "g"), g.Const(beta, "b")).Data
		}
		base := run(x)
		shifted := run(tensor.AddScalar(x, shift))
		return base.AllClose(shifted, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
