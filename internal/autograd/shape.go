package autograd

import (
	"fmt"

	"pelta/internal/tensor"
)

// Reshape returns a vertex viewing x with a new shape. Data is copied so the
// graph's vertices stay independent for shielding purposes.
func (g *Graph) Reshape(x *Value, shape ...int) *Value {
	xs := append([]int(nil), x.Data.Shape()...)
	out := g.node("reshape", x.Data.Clone().Reshape(shape...), x)
	out.backward = func() {
		accum(x, out.Grad.Reshape(xs...))
	}
	return out
}

// Permute reorders the dimensions of x by axes (a permutation of 0..rank-1),
// materializing a contiguous result.
func (g *Graph) Permute(x *Value, axes ...int) *Value {
	out := g.node("permute", permute(x.Data, axes), x)
	inv := make([]int, len(axes))
	for i, a := range axes {
		inv[a] = i
	}
	out.backward = func() {
		accum(x, permute(out.Grad, inv))
	}
	return out
}

func permute(t *tensor.Tensor, axes []int) *tensor.Tensor {
	shape := t.Shape()
	if len(axes) != len(shape) {
		panic(fmt.Sprintf("autograd: permute axes %v do not match rank %d", axes, len(shape)))
	}
	outShape := make([]int, len(shape))
	for i, a := range axes {
		outShape[i] = shape[a]
	}
	out := tensor.New(outShape...)
	// Strides of the input.
	inStride := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		inStride[i] = s
		s *= shape[i]
	}
	// Walk output positions in order, map back to input offset.
	idx := make([]int, len(shape))
	data, src := out.Data(), t.Data()
	for o := range data {
		off := 0
		for d := range idx {
			off += idx[d] * inStride[axes[d]]
		}
		data[o] = src[off]
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < outShape[d] {
				break
			}
			idx[d] = 0
		}
	}
	return out
}

// PrependToken prepends a learned [D] token to every sequence of a [B,T,D]
// vertex, producing [B,T+1,D] — the ViT class-token concatenation of §V-A.
func (g *Graph) PrependToken(x, tok *Value) *Value {
	xs := x.Data.Shape()
	if len(xs) != 3 || tok.Data.Len() != xs[2] {
		panic(fmt.Sprintf("autograd: PrependToken needs [B,T,D] and [D], got %v and %v", xs, tok.Data.Shape()))
	}
	b, t, d := xs[0], xs[1], xs[2]
	out := g.node("prepend_token", tensor.New(b, t+1, d), x, tok)
	for i := 0; i < b; i++ {
		dst := out.Data.Slice(i)
		copy(dst.Data()[:d], tok.Data.Data())
		copy(dst.Data()[d:], x.Data.Slice(i).Data())
	}
	out.backward = func() {
		gx := tensor.New(b, t, d)
		gtok := tensor.New(tok.Data.Shape()...)
		for i := 0; i < b; i++ {
			gslice := out.Grad.Slice(i)
			for j := 0; j < d; j++ {
				gtok.Data()[j] += gslice.Data()[j]
			}
			copy(gx.Slice(i).Data(), gslice.Data()[d:])
		}
		accum(x, gx)
		accum(tok, gtok)
	}
	return out
}

// TakeToken extracts token t from a [B,T,D] vertex as [B,D] (e.g. the class
// token before the classification head).
func (g *Graph) TakeToken(x *Value, t int) *Value {
	xs := x.Data.Shape()
	if len(xs) != 3 || t < 0 || t >= xs[1] {
		panic(fmt.Sprintf("autograd: TakeToken(%d) invalid for shape %v", t, xs))
	}
	b, d := xs[0], xs[2]
	out := g.node("take_token", tensor.New(b, d), x)
	for i := 0; i < b; i++ {
		copy(out.Data.Slice(i).Data(), x.Data.Slice(i).Data()[t*d:(t+1)*d])
	}
	out.backward = func() {
		gx := tensor.New(xs...)
		for i := 0; i < b; i++ {
			copy(gx.Slice(i).Data()[t*d:(t+1)*d], out.Grad.Slice(i).Data())
		}
		accum(x, gx)
	}
	return out
}

// Unpatchify is the inverse of Patchify: it folds [B, N, C*p*p] patch
// tokens back into a [B,C,H,W] feature map (used by MobileViT-style blocks
// that run attention on patches of a convolutional feature map).
func (g *Graph) Unpatchify(x *Value, c, h, w, p int) *Value {
	xs := x.Data.Shape()
	gh, gw := h/p, w/p
	if len(xs) != 3 || xs[1] != gh*gw || xs[2] != c*p*p {
		panic(fmt.Sprintf("autograd: Unpatchify(%d,%d,%d,%d) invalid for shape %v", c, h, w, p, xs))
	}
	b := xs[0]
	d := c * p * p
	out := g.node("unpatchify", tensor.New(b, c, h, w), x)
	move := func(img, patches *tensor.Tensor, toImage bool) {
		for py := 0; py < gh; py++ {
			for px := 0; px < gw; px++ {
				patch := py*gw + px
				for ch := 0; ch < c; ch++ {
					for dy := 0; dy < p; dy++ {
						for dx := 0; dx < p; dx++ {
							imgOff := ch*h*w + (py*p+dy)*w + px*p + dx
							patchOff := patch*d + ch*p*p + dy*p + dx
							if toImage {
								img.Data()[imgOff] = patches.Data()[patchOff]
							} else {
								patches.Data()[patchOff] = img.Data()[imgOff]
							}
						}
					}
				}
			}
		}
	}
	for i := 0; i < b; i++ {
		move(out.Data.Slice(i), x.Data.Slice(i), true)
	}
	out.backward = func() {
		gx := tensor.New(xs...)
		for i := 0; i < b; i++ {
			move(out.Grad.Slice(i), gx.Slice(i), false)
		}
		accum(x, gx)
	}
	return out
}

// Patchify splits a [B,C,H,W] vertex into flattened non-overlapping p×p
// patches, producing [B, (H/p)*(W/p), C*p*p]. This is the "separation of the
// input into patches x_p^n" that Pelta shields for ViT models.
func (g *Graph) Patchify(x *Value, p int) *Value {
	xs := x.Data.Shape()
	if len(xs) != 4 || xs[2]%p != 0 || xs[3]%p != 0 {
		panic(fmt.Sprintf("autograd: Patchify(%d) invalid for shape %v", p, xs))
	}
	b, c, h, w := xs[0], xs[1], xs[2], xs[3]
	gh, gw := h/p, w/p
	n, d := gh*gw, c*p*p
	out := g.node("patchify", tensor.New(b, n, d), x)
	scatter := func(dst, src *tensor.Tensor, forward bool) {
		for py := 0; py < gh; py++ {
			for px := 0; px < gw; px++ {
				patch := py*gw + px
				for ch := 0; ch < c; ch++ {
					for dy := 0; dy < p; dy++ {
						for dx := 0; dx < p; dx++ {
							imgOff := ch*h*w + (py*p+dy)*w + px*p + dx
							patchOff := patch*d + ch*p*p + dy*p + dx
							if forward {
								dst.Data()[patchOff] = src.Data()[imgOff]
							} else {
								dst.Data()[imgOff] += src.Data()[patchOff]
							}
						}
					}
				}
			}
		}
	}
	for i := 0; i < b; i++ {
		scatter(out.Data.Slice(i), x.Data.Slice(i), true)
	}
	out.backward = func() {
		gx := tensor.New(xs...)
		for i := 0; i < b; i++ {
			scatter(gx.Slice(i), out.Grad.Slice(i), false)
		}
		accum(x, gx)
	}
	return out
}
