package autograd

import (
	"fmt"

	"pelta/internal/tensor"
)

// Reshape returns a vertex viewing x with a new shape. Data is copied so the
// graph's vertices stay independent for shielding purposes. One dimension
// may be -1 to be inferred.
func (g *Graph) Reshape(x *Value, shape ...int) *Value {
	n := x.Data.Len()
	infer, known := -1, 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("autograd: multiple -1 dims in Reshape")
			}
			infer = i
			continue
		}
		known *= d
	}
	if infer >= 0 {
		if known == 0 || n%known != 0 {
			panic(fmt.Sprintf("autograd: cannot infer dim reshaping %v to %v", x.Data.Shape(), shape))
		}
		// Copy before writing the inferred dim: the variadic slice may be a
		// caller-owned slice reused across calls.
		shape = append([]int(nil), shape...)
		shape[infer] = n / known
		known *= shape[infer]
	}
	if known != n {
		panic(fmt.Sprintf("autograd: cannot reshape %v (%d elems) to %v", x.Data.Shape(), n, shape))
	}
	out := g.node("reshape", g.alloc(shape...), x)
	out.Data.CopyFrom(x.Data)
	out.backward = func() {
		// accum matches by element count; the shape header is irrelevant
		// for interior adjoint accumulation.
		g.accum(x, out.Grad)
	}
	return out
}

// Permute reorders the dimensions of x by axes (a permutation of 0..rank-1),
// materializing a contiguous result.
func (g *Graph) Permute(x *Value, axes ...int) *Value {
	shape := x.Data.Shape()
	outShape := make([]int, len(shape))
	for i, a := range axes {
		outShape[i] = shape[a]
	}
	data := g.alloc(outShape...)
	permuteInto(data, x.Data, axes)
	out := g.node("permute", data, x)
	inv := make([]int, len(axes))
	for i, a := range axes {
		inv[a] = i
	}
	out.backward = func() {
		t := g.alloc(shape...)
		permuteInto(t, out.Grad, inv)
		g.accum(x, t)
		g.free(t)
	}
	return out
}

// permuteInto writes the axes-permutation of t into the pre-allocated out,
// overwriting every element.
func permuteInto(out, t *tensor.Tensor, axes []int) {
	shape := t.Shape()
	if len(axes) != len(shape) {
		panic(fmt.Sprintf("autograd: permute axes %v do not match rank %d", axes, len(shape)))
	}
	// Fast paths for the attention layout shuffles, which dominate permute
	// traffic: swapping the two middle axes of a rank-4 tensor and swapping
	// the trailing axes of a rank-3 tensor.
	if len(axes) == 4 && axes[0] == 0 && axes[1] == 2 && axes[2] == 1 && axes[3] == 3 {
		swapMiddle4(out.Data(), t.Data(), shape[0], shape[1], shape[2], shape[3])
		return
	}
	if len(axes) == 3 && axes[0] == 0 && axes[1] == 2 && axes[2] == 1 {
		transposeLast2(out.Data(), t.Data(), shape[0], shape[1], shape[2])
		return
	}
	outShape := out.Shape()
	// Strides of the input.
	inStride := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		inStride[i] = s
		s *= shape[i]
	}
	// Walk output positions in order, map back to input offset.
	idx := make([]int, len(shape))
	data, src := out.Data(), t.Data()
	for o := range data {
		off := 0
		for d := range idx {
			off += idx[d] * inStride[axes[d]]
		}
		data[o] = src[off]
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < outShape[d] {
				break
			}
			idx[d] = 0
		}
	}
}

// swapMiddle4 writes src [a,b,c,d] as dst [a,c,b,d] (axes 0,2,1,3): the
// head-split/merge shuffle of multi-head attention. Innermost runs of d
// elements stay contiguous, so each moves with one copy.
func swapMiddle4(dst, src []float32, a, b, c, d int) {
	for i := 0; i < a; i++ {
		sBase := i * b * c * d
		dBase := i * c * b * d
		for j := 0; j < b; j++ {
			for k := 0; k < c; k++ {
				s := sBase + (j*c+k)*d
				t := dBase + (k*b+j)*d
				copy(dst[t:t+d], src[s:s+d])
			}
		}
	}
}

// transposeLast2 writes src [g,r,c] as dst [g,c,r] (axes 0,2,1): the K
// transpose of attention scores.
func transposeLast2(dst, src []float32, g, r, c int) {
	for i := 0; i < g; i++ {
		s := src[i*r*c : (i+1)*r*c]
		d := dst[i*r*c : (i+1)*r*c]
		for row := 0; row < r; row++ {
			sr := s[row*c : (row+1)*c]
			for col, v := range sr {
				d[col*r+row] = v
			}
		}
	}
}

// PrependToken prepends a learned [D] token to every sequence of a [B,T,D]
// vertex, producing [B,T+1,D] — the ViT class-token concatenation of §V-A.
func (g *Graph) PrependToken(x, tok *Value) *Value {
	xs := x.Data.Shape()
	if len(xs) != 3 || tok.Data.Len() != xs[2] {
		panic(fmt.Sprintf("autograd: PrependToken needs [B,T,D] and [D], got %v and %v", xs, tok.Data.Shape()))
	}
	b, t, d := xs[0], xs[1], xs[2]
	out := g.node("prepend_token", g.alloc(b, t+1, d), x, tok)
	for i := 0; i < b; i++ {
		dst := out.Data.Slice(i)
		copy(dst.Data()[:d], tok.Data.Data())
		copy(dst.Data()[d:], x.Data.Slice(i).Data())
	}
	out.backward = func() {
		if g.needs(x) {
			gx := g.alloc(b, t, d)
			for i := 0; i < b; i++ {
				copy(gx.Slice(i).Data(), out.Grad.Slice(i).Data()[d:])
			}
			g.accum(x, gx)
			g.free(gx)
		}
		if g.needs(tok) {
			gtok := g.allocZero(tok.Data.Shape()...)
			for i := 0; i < b; i++ {
				gslice := out.Grad.Slice(i)
				for j := 0; j < d; j++ {
					gtok.Data()[j] += gslice.Data()[j]
				}
			}
			g.accum(tok, gtok)
			g.free(gtok)
		}
	}
	return out
}

// TakeToken extracts token t from a [B,T,D] vertex as [B,D] (e.g. the class
// token before the classification head).
func (g *Graph) TakeToken(x *Value, t int) *Value {
	xs := x.Data.Shape()
	if len(xs) != 3 || t < 0 || t >= xs[1] {
		panic(fmt.Sprintf("autograd: TakeToken(%d) invalid for shape %v", t, xs))
	}
	b, d := xs[0], xs[2]
	out := g.node("take_token", g.alloc(b, d), x)
	for i := 0; i < b; i++ {
		copy(out.Data.Slice(i).Data(), x.Data.Slice(i).Data()[t*d:(t+1)*d])
	}
	out.backward = func() {
		gx := g.allocZero(xs...)
		for i := 0; i < b; i++ {
			copy(gx.Slice(i).Data()[t*d:(t+1)*d], out.Grad.Slice(i).Data())
		}
		g.accum(x, gx)
		g.free(gx)
	}
	return out
}

// Unpatchify is the inverse of Patchify: it folds [B, N, C*p*p] patch
// tokens back into a [B,C,H,W] feature map (used by MobileViT-style blocks
// that run attention on patches of a convolutional feature map).
func (g *Graph) Unpatchify(x *Value, c, h, w, p int) *Value {
	xs := x.Data.Shape()
	gh, gw := h/p, w/p
	if len(xs) != 3 || xs[1] != gh*gw || xs[2] != c*p*p {
		panic(fmt.Sprintf("autograd: Unpatchify(%d,%d,%d,%d) invalid for shape %v", c, h, w, p, xs))
	}
	b := xs[0]
	d := c * p * p
	out := g.node("unpatchify", g.alloc(b, c, h, w), x)
	move := func(img, patches *tensor.Tensor, toImage bool) {
		for py := 0; py < gh; py++ {
			for px := 0; px < gw; px++ {
				patch := py*gw + px
				for ch := 0; ch < c; ch++ {
					for dy := 0; dy < p; dy++ {
						for dx := 0; dx < p; dx++ {
							imgOff := ch*h*w + (py*p+dy)*w + px*p + dx
							patchOff := patch*d + ch*p*p + dy*p + dx
							if toImage {
								img.Data()[imgOff] = patches.Data()[patchOff]
							} else {
								patches.Data()[patchOff] = img.Data()[imgOff]
							}
						}
					}
				}
			}
		}
	}
	for i := 0; i < b; i++ {
		move(out.Data.Slice(i), x.Data.Slice(i), true)
	}
	out.backward = func() {
		gx := g.alloc(xs...)
		for i := 0; i < b; i++ {
			move(out.Grad.Slice(i), gx.Slice(i), false)
		}
		g.accum(x, gx)
		g.free(gx)
	}
	return out
}

// Patchify splits a [B,C,H,W] vertex into flattened non-overlapping p×p
// patches, producing [B, (H/p)*(W/p), C*p*p]. This is the "separation of the
// input into patches x_p^n" that Pelta shields for ViT models.
func (g *Graph) Patchify(x *Value, p int) *Value {
	xs := x.Data.Shape()
	if len(xs) != 4 || xs[2]%p != 0 || xs[3]%p != 0 {
		panic(fmt.Sprintf("autograd: Patchify(%d) invalid for shape %v", p, xs))
	}
	b, c, h, w := xs[0], xs[1], xs[2], xs[3]
	gh, gw := h/p, w/p
	n, d := gh*gw, c*p*p
	out := g.node("patchify", g.alloc(b, n, d), x)
	scatter := func(dst, src *tensor.Tensor, forward bool) {
		for py := 0; py < gh; py++ {
			for px := 0; px < gw; px++ {
				patch := py*gw + px
				for ch := 0; ch < c; ch++ {
					for dy := 0; dy < p; dy++ {
						for dx := 0; dx < p; dx++ {
							imgOff := ch*h*w + (py*p+dy)*w + px*p + dx
							patchOff := patch*d + ch*p*p + dy*p + dx
							if forward {
								dst.Data()[patchOff] = src.Data()[imgOff]
							} else {
								dst.Data()[imgOff] += src.Data()[patchOff]
							}
						}
					}
				}
			}
		}
	}
	for i := 0; i < b; i++ {
		scatter(out.Data.Slice(i), x.Data.Slice(i), true)
	}
	out.backward = func() {
		gx := g.allocZero(xs...)
		for i := 0; i < b; i++ {
			scatter(gx.Slice(i), out.Grad.Slice(i), false)
		}
		g.accum(x, gx)
		g.free(gx)
	}
	return out
}
