// Package autograd implements define-by-run reverse-mode automatic
// differentiation on an explicit computational graph.
//
// The graph mirrors the paper's formalization G = ⟨n, l, E, u_1…u_n,
// f_{l+1}…f_n⟩ (§IV-B): every Value is a numbered vertex u_i carrying the
// result of a differentiable transformation f_i of its parents, and leaves
// are inputs or parameters. Pelta's Algorithm 1 (internal/core) walks this
// structure to decide which vertices and local jacobians to move into the
// enclave, so vertex identity, op labels and parent edges are first-class
// here rather than hidden inside closures.
//
// Graphs can run in two allocation regimes. A plain NewGraph allocates every
// forward/backward tensor from the Go heap, exactly as before. A graph built
// with NewGraphWithPool borrows every tensor from a tensor.Pool instead and
// hands them all back in one sweep when Release is called after the pass —
// the arena discipline that makes iterative attacks and training loops
// allocation-free in steady state. Vertices scrubbed into the Pelta enclave
// are exempt from the sweep: their buffers are withdrawn from the arena at
// Scrub time and are never recycled (see Release).
//
// A Graph is confined to one goroutine: concurrent passes use one graph
// (and one pool) per worker over shared read-only parameters. Given the
// same inputs, forward and backward are bit-deterministic — reduction
// orders are fixed, so pooled and heap graphs produce identical numbers.
package autograd
