package models

import (
	"fmt"

	"pelta/internal/autograd"
	"pelta/internal/nn"
	"pelta/internal/tensor"
)

// ViTConfig describes a Vision Transformer variant.
type ViTConfig struct {
	Name    string
	InputC  int
	InputHW int // square input
	Patch   int
	Dim     int
	Depth   int // encoder blocks (n_l in Eq. 4)
	Heads   int // heads per block (n_h in Eq. 4)
	MLPDim  int
	Classes int
}

// Paper-scale ViT configurations (ImageNet, 224x224), used analytically for
// Table I and instantiable for completeness.
var (
	ViTL16 = ViTConfig{Name: "ViT-L/16", InputC: 3, InputHW: 224, Patch: 16, Dim: 1024, Depth: 24, Heads: 16, MLPDim: 4096, Classes: 1000}
	ViTB16 = ViTConfig{Name: "ViT-B/16", InputC: 3, InputHW: 224, Patch: 16, Dim: 768, Depth: 12, Heads: 12, MLPDim: 3072, Classes: 1000}
	ViTB32 = ViTConfig{Name: "ViT-B/32", InputC: 3, InputHW: 224, Patch: 32, Dim: 768, Depth: 12, Heads: 12, MLPDim: 3072, Classes: 1000}
)

// SmallViT returns a trainable scaled-down variant preserving the ViT
// computational-graph structure for hw×hw images.
func SmallViT(name string, classes, hw, patch int) ViTConfig {
	return ViTConfig{
		Name: name, InputC: 3, InputHW: hw, Patch: patch,
		Dim: 48, Depth: 4, Heads: 4, MLPDim: 96, Classes: classes,
	}
}

// Tokens returns the sequence length including the class token.
func (c ViTConfig) Tokens() int {
	n := c.InputHW / c.Patch
	return n*n + 1
}

// ViT is a Vision Transformer classifier. Its Pelta shield region covers all
// transforms up to and including the position embedding (§V-A):
// z0 = [x_class ; x_p^1 E; …; x_p^N E] + E_pos.
type ViT struct {
	Cfg ViTConfig

	Embed    *nn.Linear      // patch projection E
	ClassTok *autograd.Param // x_class
	PosEmbed *autograd.Param // E_pos
	Blocks   []*nn.EncoderBlock
	Norm     *nn.LayerNorm
	Head     *nn.Linear
}

var _ Model = (*ViT)(nil)

// NewViT builds a ViT with fresh parameters.
func NewViT(cfg ViTConfig, rng *tensor.RNG) *ViT {
	patchDim := cfg.InputC * cfg.Patch * cfg.Patch
	v := &ViT{
		Cfg:      cfg,
		Embed:    nn.NewLinear(cfg.Name+".embed", patchDim, cfg.Dim, true, rng),
		ClassTok: autograd.NewParam(cfg.Name+".cls", nn.TruncNormal(rng, 0.02, cfg.Dim)),
		PosEmbed: autograd.NewParam(cfg.Name+".pos", nn.TruncNormal(rng, 0.02, cfg.Tokens(), cfg.Dim)),
		Norm:     nn.NewLayerNorm(cfg.Name+".ln", cfg.Dim),
		Head:     nn.NewLinear(cfg.Name+".head", cfg.Dim, cfg.Classes, true, rng),
	}
	v.Blocks = make([]*nn.EncoderBlock, cfg.Depth)
	for i := range v.Blocks {
		v.Blocks[i] = nn.NewEncoderBlock(fmt.Sprintf("%s.block%d", cfg.Name, i), cfg.Dim, cfg.Heads, cfg.MLPDim, rng)
	}
	return v
}

// Name implements Model.
func (v *ViT) Name() string { return v.Cfg.Name }

// InputShape implements Model.
func (v *ViT) InputShape() []int { return []int{v.Cfg.InputC, v.Cfg.InputHW, v.Cfg.InputHW} }

// Classes implements Model.
func (v *ViT) Classes() int { return v.Cfg.Classes }

// SetTraining implements Model; ViT has no batch statistics so it is a no-op.
func (v *ViT) SetTraining(bool) {}

// Forward implements Model. The returned boundary is z0, the output of the
// position-embedding sum — the deepest vertex inside the Pelta shield.
func (v *ViT) Forward(g *autograd.Graph, x *autograd.Value) (boundary, logits *autograd.Value) {
	patches := g.Patchify(x, v.Cfg.Patch) // x_p^n
	emb := v.Embed.Forward(g, patches)    // x_p^n · E
	tok := g.PrependToken(emb, g.Param(v.ClassTok))
	z := g.AddBroadcast(tok, g.Param(v.PosEmbed)) // z0 (+E_pos) — shield boundary
	boundary = z
	for _, blk := range v.Blocks {
		z = blk.Forward(g, z)
	}
	z = v.Norm.Forward(g, z)
	cls := g.TakeToken(z, 0)
	return boundary, v.Head.Forward(g, cls)
}

// AttentionMaps returns the per-block attention probabilities a forward
// pass recorded into g, each shaped [B*heads, T, T]. The record is
// graph-scoped, so concurrent passes on shared weights stay race-free.
func (v *ViT) AttentionMaps(g *autograd.Graph) []*autograd.Value {
	return g.Recorded(autograd.RecordAttention)
}

// Params implements Model.
func (v *ViT) Params() []*autograd.Param {
	out := append([]*autograd.Param{v.ClassTok, v.PosEmbed}, v.Embed.Params()...)
	for _, b := range v.Blocks {
		out = append(out, b.Params()...)
	}
	out = append(out, v.Norm.Params()...)
	return append(out, v.Head.Params()...)
}

// ShieldedParams implements Model: the embedding matrix and bias, class
// token and position embedding live inside the enclave.
func (v *ViT) ShieldedParams() []*autograd.Param {
	return append([]*autograd.Param{v.ClassTok, v.PosEmbed}, v.Embed.Params()...)
}

// ParamCount returns the number of trainable scalars of a configuration
// without allocating it.
func (c ViTConfig) ParamCount() int64 {
	patchDim := int64(c.InputC * c.Patch * c.Patch)
	d, t := int64(c.Dim), int64(c.Tokens())
	embed := patchDim*d + d
	clsPos := d + t*d
	perBlock := int64(0)
	perBlock += 4 * (d*d + d) // q,k,v,out projections
	perBlock += 2 * (2 * d)   // two layer norms
	perBlock += d*int64(c.MLPDim) + int64(c.MLPDim) + int64(c.MLPDim)*d + d
	head := d*int64(c.Classes) + int64(c.Classes)
	return embed + clsPos + int64(c.Depth)*perBlock + 2*d + head
}

// ShieldFootprint computes the Table I enclave cost analytically: shielded
// weights (E, bias, class token, E_pos), the shield-region activations of
// one sample (patches, embedded patches, token concat, z0), and the
// gradients of all of the above in the worst (no-flush) case.
func (c ViTConfig) ShieldFootprint() Footprint {
	patchDim := int64(c.InputC * c.Patch * c.Patch)
	n := int64((c.InputHW / c.Patch) * (c.InputHW / c.Patch))
	d, t := int64(c.Dim), int64(c.Tokens())

	weights := patchDim*d + d + d + t*d // E, bias, cls, pos
	acts := n*patchDim +                // patch split
		n*d + // projected patches
		t*d + // after class-token concat
		t*d // z0 after position embedding
	const fp32 = 4
	return Footprint{
		WeightBytes:     weights * fp32,
		ActivationBytes: acts * fp32,
		GradientBytes:   (weights + acts) * fp32,
		TotalModelBytes: c.ParamCount() * fp32,
	}
}
