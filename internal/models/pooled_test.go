package models

import (
	"testing"

	"pelta/internal/autograd"
	"pelta/internal/tensor"
)

// pooledModels returns small instances of every architecture family, built
// twice from the same seed so the pooled and heap passes see identical
// weights through shared parameters.
func pooledModels(t *testing.T) []Model {
	t.Helper()
	rng := tensor.NewRNG(77)
	vit := NewViT(SmallViT("pool-vit", 7, 16, 4), rng)
	bit := NewBiT(BiTConfig{
		Name: "pool-bit", InputC: 3, InputHW: 16, StemK: 3, StemStride: 1,
		StageBlocks: []int{1, 1}, BaseWidth: 8, WidthFactor: 1, Groups: 4, Classes: 7,
	}, rng)
	rn := NewResNet(ResNetConfig{
		Name: "pool-rn", InputC: 3, InputHW: 16,
		Widths: [3]int{4, 8, 8}, BlocksPerStep: 1, Classes: 7,
	}, rng)
	return []Model{vit, bit, rn}
}

// runPass records one forward+backward on g and returns the logits and the
// input gradient (cloned, so arena recycling cannot disturb the comparison).
func runPass(m Model, g *autograd.Graph, x *tensor.Tensor, y []int) (*tensor.Tensor, *tensor.Tensor) {
	in := g.Input(x, "x")
	_, logits := m.Forward(g, in)
	loss, _ := g.CrossEntropy(logits, y, autograd.ReduceSum)
	g.Backward(loss)
	return logits.Data.Clone(), in.Grad.Clone()
}

// TestPooledPassBitIdenticalToHeapPass is the core property of the pooled
// execution engine: borrowing every tensor from a Pool and recycling the
// arena between passes must not change a single bit of the forward results
// or the input gradients, for every model family, across repeated arena
// reuse (the steady state iterative attacks live in).
func TestPooledPassBitIdenticalToHeapPass(t *testing.T) {
	rng := tensor.NewRNG(123)
	for _, m := range pooledModels(t) {
		x := rng.Uniform(0, 1, 2, 3, 16, 16)
		y := []int{1, 4}

		heapLogits, heapGrad := runPass(m, autograd.NewGraph(), x, y)
		clearGrads(m)

		pool := tensor.NewPool()
		pg := autograd.NewGraphWithPool(pool)
		for pass := 0; pass < 3; pass++ {
			pg.Release()
			logits, grad := runPass(m, pg, x, y)
			clearGrads(m)
			if !logits.AllClose(heapLogits, 0) {
				t.Fatalf("%s pass %d: pooled logits differ from heap logits", m.Name(), pass)
			}
			if !grad.AllClose(heapGrad, 0) {
				t.Fatalf("%s pass %d: pooled ∇x differs from heap ∇x", m.Name(), pass)
			}
		}
		// After warmup the arena must run entirely off recycled buffers.
		before := pool.Stats()
		pg.Release()
		runPass(m, pg, x, y)
		clearGrads(m)
		after := pool.Stats()
		if misses := after.Misses - before.Misses; misses != 0 {
			t.Fatalf("%s: steady-state pass allocated %d fresh buffers (of %d gets)",
				m.Name(), misses, after.Gets-before.Gets)
		}
	}
}

// TestPooledParamGradsMatchHeap checks the training path: with parameter
// tracking on, pooled passes accumulate exactly the same parameter
// gradients as heap passes.
func TestPooledParamGradsMatchHeap(t *testing.T) {
	rng := tensor.NewRNG(321)
	for _, m := range pooledModels(t) {
		x := rng.Uniform(0, 1, 2, 3, 16, 16)
		y := []int{0, 2}

		runPass(m, autograd.NewGraph(), x, y)
		want := make(map[string]*tensor.Tensor)
		for _, p := range m.Params() {
			want[p.Name] = p.Grad.Clone()
		}
		clearGrads(m)

		pg := autograd.NewGraphWithPool(tensor.NewPool())
		runPass(m, pg, x, y)
		for _, p := range m.Params() {
			if !p.Grad.AllClose(want[p.Name], 0) {
				t.Fatalf("%s: pooled grad of %s differs from heap grad", m.Name(), p.Name)
			}
		}
		clearGrads(m)
	}
}

// TestSkipParamGradsLeavesParamsUntouched checks the attack-oracle mode:
// with tracking off, a backward pass must not move any parameter gradient,
// while the input gradient stays bit-identical.
func TestSkipParamGradsLeavesParamsUntouched(t *testing.T) {
	rng := tensor.NewRNG(55)
	for _, m := range pooledModels(t) {
		x := rng.Uniform(0, 1, 2, 3, 16, 16)
		y := []int{3, 5}

		_, heapGrad := runPass(m, autograd.NewGraph(), x, y)
		clearGrads(m)

		pg := autograd.NewGraphWithPool(tensor.NewPool())
		pg.SetTrackParamGrads(false)
		_, grad := runPass(m, pg, x, y)
		if !grad.AllClose(heapGrad, 0) {
			t.Fatalf("%s: ∇x with param tracking off differs", m.Name())
		}
		for _, p := range m.Params() {
			for _, v := range p.Grad.Data() {
				if v != 0 {
					t.Fatalf("%s: parameter %s accumulated gradient despite tracking off", m.Name(), p.Name)
				}
			}
		}
	}
}

func clearGrads(m Model) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}
