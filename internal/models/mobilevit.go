package models

import (
	"fmt"

	"pelta/internal/autograd"
	"pelta/internal/nn"
	"pelta/internal/tensor"
)

// MobileViTConfig describes the lightweight convolution+attention hybrid
// the paper's introduction motivates for cross-device FL (Mehta &
// Rastegari, ICLR 2022), in a compact form: a convolutional stem, a local
// conv stage, and MobileViT blocks that run transformer encoders over
// patches of the feature map before folding them back.
type MobileViTConfig struct {
	Name    string
	InputC  int
	InputHW int
	StemC   int // stem output channels
	BlockC  int // feature channels inside the MobileViT block
	Patch   int // attention patch size over the feature map
	Depth   int // encoder blocks per MobileViT block
	Heads   int
	MLPDim  int
	Classes int
}

// SmallMobileViT returns a trainable compact configuration.
func SmallMobileViT(name string, classes, hw int) MobileViTConfig {
	return MobileViTConfig{
		Name: name, InputC: 3, InputHW: hw,
		StemC: 16, BlockC: 24, Patch: 2, Depth: 2, Heads: 4, MLPDim: 64,
		Classes: classes,
	}
}

// MobileViT is the hybrid classifier. Its Pelta shield region is the stem
// convolution + normalization + activation, like the other conv-stem
// defenders of §V-A.
type MobileViT struct {
	Cfg MobileViTConfig

	Stem     *nn.Conv2d
	StemNorm *nn.GroupNorm2d
	Local    *nn.Conv2d
	Proj     *nn.Conv2d // 1x1 into the attention width
	Blocks   []*nn.EncoderBlock
	Fuse     *nn.Conv2d // 1x1 back to feature width
	Head     *nn.Linear
}

var _ Model = (*MobileViT)(nil)

// NewMobileViT builds the model with fresh parameters.
func NewMobileViT(cfg MobileViTConfig, rng *tensor.RNG) *MobileViT {
	if cfg.InputHW%cfg.Patch != 0 {
		panic(fmt.Sprintf("models: MobileViT patch %d must divide input %d", cfg.Patch, cfg.InputHW))
	}
	tokenDim := cfg.BlockC * cfg.Patch * cfg.Patch
	m := &MobileViT{
		Cfg:      cfg,
		Stem:     nn.NewConv2d(cfg.Name+".stem", cfg.InputC, cfg.StemC, 3, 1, 1, false, rng),
		StemNorm: nn.NewGroupNorm2d(cfg.Name+".stem_gn", cfg.StemC, gcdInt(4, cfg.StemC)),
		Local:    nn.NewConv2d(cfg.Name+".local", cfg.StemC, cfg.StemC, 3, 1, 1, false, rng),
		Proj:     nn.NewConv2d(cfg.Name+".proj", cfg.StemC, cfg.BlockC, 1, 1, 0, false, rng),
		Fuse:     nn.NewConv2d(cfg.Name+".fuse", cfg.BlockC, cfg.BlockC, 1, 1, 0, false, rng),
		Head:     nn.NewLinear(cfg.Name+".head", cfg.BlockC, cfg.Classes, true, rng),
	}
	m.Blocks = make([]*nn.EncoderBlock, cfg.Depth)
	for i := range m.Blocks {
		m.Blocks[i] = nn.NewEncoderBlock(fmt.Sprintf("%s.block%d", cfg.Name, i), tokenDim, cfg.Heads, cfg.MLPDim, rng)
	}
	return m
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Name implements Model.
func (m *MobileViT) Name() string { return m.Cfg.Name }

// InputShape implements Model.
func (m *MobileViT) InputShape() []int { return []int{m.Cfg.InputC, m.Cfg.InputHW, m.Cfg.InputHW} }

// Classes implements Model.
func (m *MobileViT) Classes() int { return m.Cfg.Classes }

// SetTraining implements Model (GroupNorm has no batch statistics).
func (m *MobileViT) SetTraining(bool) {}

// Forward implements Model. The boundary is the stem's activation, as for
// the other convolutional defenders.
func (m *MobileViT) Forward(g *autograd.Graph, x *autograd.Value) (boundary, logits *autograd.Value) {
	hw := m.Cfg.InputHW
	y := g.ReLU(m.StemNorm.Forward(g, m.Stem.Forward(g, x)))
	boundary = y
	y = g.ReLU(m.Local.Forward(g, y))
	y = m.Proj.Forward(g, y) // [B, BlockC, H, W]
	// Unfold → transformer over patches → fold (the MobileViT core).
	tokens := g.Patchify(y, m.Cfg.Patch)
	for _, blk := range m.Blocks {
		tokens = blk.Forward(g, tokens)
	}
	y2 := g.Unpatchify(tokens, m.Cfg.BlockC, hw, hw, m.Cfg.Patch)
	y = g.Add(y, m.Fuse.Forward(g, y2)) // residual fusion
	pooled := g.AvgPoolGlobal(y)
	return boundary, m.Head.Forward(g, pooled)
}

// Params implements Model.
func (m *MobileViT) Params() []*autograd.Param {
	out := nn.CollectParams(m.Stem, m.StemNorm, m.Local, m.Proj)
	for _, b := range m.Blocks {
		out = append(out, b.Params()...)
	}
	out = append(out, m.Fuse.Params()...)
	return append(out, m.Head.Params()...)
}

// ShieldedParams implements Model.
func (m *MobileViT) ShieldedParams() []*autograd.Param {
	return nn.CollectParams(m.Stem, m.StemNorm)
}
