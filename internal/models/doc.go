// Package models implements the defending architectures evaluated in the
// paper: Vision Transformers (ViT-L/16, ViT-B/16, ViT-B/32), pre-activation
// ResNets (ResNet-56, ResNet-164) and Big Transfer models (BiT-M-R101x3,
// BiT-M-R152x4) with weight-standardized convolutions and group norm.
//
// Every model is built on the autograd graph and exposes its Pelta shield
// boundary: the vertex z separating the enclave-resident shallow transforms
// from the clear remainder of the network. After Backward, z.Grad is the
// adjoint δ_{L+1} — the only backward quantity a shielded attacker can see
// (§IV-B). Paper-scale configurations are retained as metadata so Table I
// enclave footprints can be computed analytically without allocating
// 500 MB+ models.
//
// Models are not safe for concurrent mutation: training and weight loads
// (fl.Apply) must be exclusive, while concurrent forward passes over
// frozen weights are fine when each goroutine brings its own graph.
// Train is deterministic for a fixed TrainConfig.Seed — batch order and
// initialization derive from explicit RNGs, never global state.
package models
