package models

import (
	"fmt"

	"pelta/internal/autograd"
	"pelta/internal/nn"
	"pelta/internal/tensor"
)

// BiTConfig describes a Big Transfer model (Kolesnikov et al. 2020):
// a ResNet-v2 with GroupNorm and weight-standardized convolutions, scaled
// by a width factor.
type BiTConfig struct {
	Name        string
	InputC      int
	InputHW     int
	StemK       int   // stem kernel size (7 at paper scale)
	StemStride  int   // stem stride (2 at paper scale)
	StageBlocks []int // residual blocks per stage
	BaseWidth   int   // first-stage output channels before width factor
	WidthFactor int   // BiT multiplier (x3, x4)
	Groups      int   // GroupNorm groups
	Classes     int
}

// Paper-scale BiT configurations (ImageNet).
var (
	BiTM101x3 = BiTConfig{Name: "BiT-M-R101x3", InputC: 3, InputHW: 224, StemK: 7, StemStride: 2, StageBlocks: []int{3, 4, 23, 3}, BaseWidth: 256, WidthFactor: 3, Groups: 32, Classes: 1000}
	BiTM152x4 = BiTConfig{Name: "BiT-M-R152x4", InputC: 3, InputHW: 224, StemK: 7, StemStride: 2, StageBlocks: []int{3, 8, 36, 3}, BaseWidth: 256, WidthFactor: 4, Groups: 32, Classes: 1000}
)

// SmallBiT returns a trainable scaled-down BiT for hw×hw images.
func SmallBiT(name string, classes, hw int) BiTConfig {
	return BiTConfig{
		Name: name, InputC: 3, InputHW: hw, StemK: 3, StemStride: 1,
		StageBlocks: []int{1, 1, 1}, BaseWidth: 16, WidthFactor: 1, Groups: 4, Classes: classes,
	}
}

func (c BiTConfig) stemWidth() int { return 64 * c.WidthFactor }

func (c BiTConfig) stageWidth(stage int) int {
	return c.BaseWidth * c.WidthFactor << stage
}

// bitBlock is a pre-activation bottleneck with GroupNorm and WSConv.
type bitBlock struct {
	norm1, norm2, norm3 *nn.GroupNorm2d
	conv1, conv2, conv3 *nn.WSConv2d
	proj                *nn.WSConv2d
	stride              int
}

func newBiTBlock(name string, in, out, stride, groups int, rng *tensor.RNG) *bitBlock {
	mid := out / 4
	if mid < 1 {
		mid = 1
	}
	gcd := func(a, b int) int {
		for b != 0 {
			a, b = b, a%b
		}
		return a
	}
	b := &bitBlock{
		norm1:  nn.NewGroupNorm2d(name+".gn1", in, gcd(groups, in)),
		conv1:  nn.NewWSConv2d(name+".conv1", in, mid, 1, 1, 0, false, rng),
		norm2:  nn.NewGroupNorm2d(name+".gn2", mid, gcd(groups, mid)),
		conv2:  nn.NewWSConv2d(name+".conv2", mid, mid, 3, stride, 1, false, rng),
		norm3:  nn.NewGroupNorm2d(name+".gn3", mid, gcd(groups, mid)),
		conv3:  nn.NewWSConv2d(name+".conv3", mid, out, 1, 1, 0, false, rng),
		stride: stride,
	}
	if in != out || stride != 1 {
		b.proj = nn.NewWSConv2d(name+".proj", in, out, 1, stride, 0, false, rng)
	}
	return b
}

func (b *bitBlock) forward(g *autograd.Graph, x *autograd.Value) *autograd.Value {
	pre := g.ReLU(b.norm1.Forward(g, x))
	skip := x
	if b.proj != nil {
		skip = b.proj.Forward(g, pre)
	}
	y := b.conv1.Forward(g, pre)
	y = b.conv2.Forward(g, g.ReLU(b.norm2.Forward(g, y)))
	y = b.conv3.Forward(g, g.ReLU(b.norm3.Forward(g, y)))
	return g.Add(skip, y)
}

func (b *bitBlock) params() []*autograd.Param {
	mods := []nn.Module{b.norm1, b.conv1, b.norm2, b.conv2, b.norm3, b.conv3}
	if b.proj != nil {
		mods = append(mods, b.proj)
	}
	return nn.CollectParams(mods...)
}

// BiT is a Big Transfer classifier. Its Pelta shield region covers the
// first weight-standardized convolution and its following padding operation
// (§V-A).
type BiT struct {
	Cfg BiTConfig

	StemConv *nn.WSConv2d
	blocks   []*bitBlock
	FinalGN  *nn.GroupNorm2d
	Head     *nn.Linear
}

var _ Model = (*BiT)(nil)

// NewBiT builds a BiT with fresh parameters.
func NewBiT(cfg BiTConfig, rng *tensor.RNG) *BiT {
	gcd := func(a, b int) int {
		for b != 0 {
			a, b = b, a%b
		}
		return a
	}
	lastWidth := cfg.stageWidth(len(cfg.StageBlocks) - 1)
	b := &BiT{
		Cfg:      cfg,
		StemConv: nn.NewWSConv2d(cfg.Name+".stem", cfg.InputC, cfg.stemWidth(), cfg.StemK, cfg.StemStride, cfg.StemK/2, false, rng),
		FinalGN:  nn.NewGroupNorm2d(cfg.Name+".final_gn", lastWidth, gcd(cfg.Groups, lastWidth)),
		Head:     nn.NewLinear(cfg.Name+".head", lastWidth, cfg.Classes, true, rng),
	}
	in := cfg.stemWidth()
	for stage, nblocks := range cfg.StageBlocks {
		out := cfg.stageWidth(stage)
		for blk := 0; blk < nblocks; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			name := fmt.Sprintf("%s.s%d.b%d", cfg.Name, stage, blk)
			b.blocks = append(b.blocks, newBiTBlock(name, in, out, stride, cfg.Groups, rng))
			in = out
		}
	}
	return b
}

// Name implements Model.
func (b *BiT) Name() string { return b.Cfg.Name }

// InputShape implements Model.
func (b *BiT) InputShape() []int { return []int{b.Cfg.InputC, b.Cfg.InputHW, b.Cfg.InputHW} }

// Classes implements Model.
func (b *BiT) Classes() int { return b.Cfg.Classes }

// SetTraining implements Model; GroupNorm has no batch statistics.
func (b *BiT) SetTraining(bool) {}

// Forward implements Model. The boundary is the output of the padding
// operation that follows the stem weight-standardized convolution.
func (b *BiT) Forward(g *autograd.Graph, x *autograd.Value) (boundary, logits *autograd.Value) {
	y := b.StemConv.Forward(g, x)
	y = g.Pad2d(y, 1) // the "following padding operation" of §V-A
	boundary = y
	y = g.MaxPool2d(y, 3, 2)
	for _, blk := range b.blocks {
		y = blk.forward(g, y)
	}
	y = g.ReLU(b.FinalGN.Forward(g, y))
	pooled := g.AvgPoolGlobal(y)
	return boundary, b.Head.Forward(g, pooled)
}

// Params implements Model.
func (b *BiT) Params() []*autograd.Param {
	out := b.StemConv.Params()
	for _, blk := range b.blocks {
		out = append(out, blk.params()...)
	}
	out = append(out, b.FinalGN.Params()...)
	return append(out, b.Head.Params()...)
}

// ShieldedParams implements Model: only the stem conv kernel is
// enclave-resident (the padding op has no parameters).
func (b *BiT) ShieldedParams() []*autograd.Param { return b.StemConv.Params() }

// ParamCount returns the trainable-scalar count of a configuration without
// allocating it.
func (c BiTConfig) ParamCount() int64 {
	total := int64(c.InputC) * int64(c.stemWidth()) * int64(c.StemK*c.StemK)
	in := int64(c.stemWidth())
	for stage, nblocks := range c.StageBlocks {
		out := int64(c.stageWidth(stage))
		mid := out / 4
		for blk := 0; blk < nblocks; blk++ {
			total += 2 * in        // gn1
			total += in * mid      // conv1 1x1
			total += 2 * mid       // gn2
			total += mid * mid * 9 // conv2 3x3
			total += 2 * mid       // gn3
			total += mid * out     // conv3 1x1
			if blk == 0 {
				total += in * out // projection 1x1
			}
			in = out
		}
	}
	last := int64(c.stageWidth(len(c.StageBlocks) - 1))
	total += 2 * last                                 // final gn
	total += last*int64(c.Classes) + int64(c.Classes) // head
	return total
}

// ShieldFootprint computes the Table I enclave cost: stem kernel, the
// padded stem activation of one sample, and their gradients.
func (c BiTConfig) ShieldFootprint() Footprint {
	weights := int64(c.InputC) * int64(c.stemWidth()) * int64(c.StemK*c.StemK)
	outHW := int64(tensor.ConvOut(c.InputHW, c.StemK, c.StemStride, c.StemK/2))
	acts := int64(c.stemWidth()) * (outHW*outHW + (outHW+2)*(outHW+2)) // conv out + padded out
	const fp32 = 4
	return Footprint{
		WeightBytes:     weights * fp32,
		ActivationBytes: acts * fp32,
		GradientBytes:   (weights + acts) * fp32,
		TotalModelBytes: c.ParamCount() * fp32,
	}
}
