package models

import (
	"math"
	"testing"

	"pelta/internal/autograd"
	"pelta/internal/dataset"
	"pelta/internal/tensor"
)

func smallDataset(t *testing.T, classes, hw, n int) *dataset.Dataset {
	t.Helper()
	cfg := dataset.SynthCIFAR10(hw, 7)
	cfg.Classes = classes
	cfg.TrainN, cfg.ValN = n, 1
	train, _ := dataset.Generate(cfg)
	return train
}

func TestViTForwardShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	v := NewViT(SmallViT("vit-test", 10, 16, 4), rng)
	x := rng.Uniform(0, 1, 2, 3, 16, 16)
	g := autograd.NewGraph()
	g.RequestRecorded(autograd.RecordAttention)
	boundary, logits := v.Forward(g, g.Input(x, "x"))
	if logits.Data.Dim(0) != 2 || logits.Data.Dim(1) != 10 {
		t.Fatalf("logits shape = %v", logits.Data.Shape())
	}
	// boundary z0 is [B, T, D] with T = (16/4)^2 + 1 = 17.
	if boundary.Data.Dim(1) != 17 || boundary.Data.Dim(2) != 48 {
		t.Fatalf("boundary shape = %v", boundary.Data.Shape())
	}
	if boundary.Op() != "addbroadcast" {
		t.Fatalf("boundary op = %q, want position-embedding sum", boundary.Op())
	}
	if len(v.AttentionMaps(g)) != 4 {
		t.Fatalf("attention maps = %d, want one per block", len(v.AttentionMaps(g)))
	}
	am := v.AttentionMaps(g)[0]
	// [B*heads, T, T]
	if am.Data.Dim(0) != 2*4 || am.Data.Dim(1) != 17 || am.Data.Dim(2) != 17 {
		t.Fatalf("attention shape = %v", am.Data.Shape())
	}
	// Attention rows are probability distributions.
	row := am.Data.Slice(0).Row(0)
	if s := tensor.Sum(row.Reshape(1, 17)); math.Abs(s-1) > 1e-4 {
		t.Fatalf("attention row sums to %v", s)
	}
}

func TestResNetForwardShapes(t *testing.T) {
	rng := tensor.NewRNG(2)
	r := NewResNet(SmallResNet("rn-test", 10, 16), rng)
	x := rng.Uniform(0, 1, 3, 3, 16, 16)
	g := autograd.NewGraph()
	boundary, logits := r.Forward(g, g.Input(x, "x"))
	if logits.Data.Dim(0) != 3 || logits.Data.Dim(1) != 10 {
		t.Fatalf("logits shape = %v", logits.Data.Shape())
	}
	if boundary.Op() != "relu" {
		t.Fatalf("boundary op = %q, want stem relu", boundary.Op())
	}
	// Stem keeps spatial dims.
	if boundary.Data.Dim(2) != 16 || boundary.Data.Dim(3) != 16 {
		t.Fatalf("boundary shape = %v", boundary.Data.Shape())
	}
}

func TestResNetBottleneckBuilds(t *testing.T) {
	rng := tensor.NewRNG(3)
	cfg := SmallResNet("rn-bn", 10, 8)
	cfg.Bottleneck = true
	cfg.Widths = [3]int{8, 16, 32}
	r := NewResNet(cfg, rng)
	x := rng.Uniform(0, 1, 1, 3, 8, 8)
	g := autograd.NewGraph()
	_, logits := r.Forward(g, g.Input(x, "x"))
	if logits.Data.Dim(1) != 10 {
		t.Fatalf("logits shape = %v", logits.Data.Shape())
	}
}

func TestBiTForwardShapes(t *testing.T) {
	rng := tensor.NewRNG(4)
	b := NewBiT(SmallBiT("bit-test", 10, 16), rng)
	x := rng.Uniform(0, 1, 2, 3, 16, 16)
	g := autograd.NewGraph()
	boundary, logits := b.Forward(g, g.Input(x, "x"))
	if logits.Data.Dim(0) != 2 || logits.Data.Dim(1) != 10 {
		t.Fatalf("logits shape = %v", logits.Data.Shape())
	}
	if boundary.Op() != "pad2d" {
		t.Fatalf("boundary op = %q, want the padding after the stem WSConv", boundary.Op())
	}
}

func TestGradientsReachInputForAllModels(t *testing.T) {
	rng := tensor.NewRNG(5)
	ms := []Model{
		NewViT(SmallViT("vit-g", 5, 8, 4), rng),
		NewResNet(SmallResNet("rn-g", 5, 8), rng),
		NewBiT(SmallBiT("bit-g", 5, 8), rng),
	}
	for _, m := range ms {
		x := rng.Uniform(0, 1, 2, 3, 8, 8)
		g := autograd.NewGraph()
		in := g.Input(x, "x")
		boundary, logits := m.Forward(g, in)
		loss, _ := g.CrossEntropy(logits, []int{1, 3}, autograd.ReduceSum)
		g.Backward(loss)
		if in.Grad == nil {
			t.Fatalf("%s: no input gradient", m.Name())
		}
		if tensor.NormL2(in.Grad) == 0 {
			t.Fatalf("%s: zero input gradient", m.Name())
		}
		if boundary.Grad == nil {
			t.Fatalf("%s: boundary adjoint δ_{L+1} missing", m.Name())
		}
	}
}

func TestShieldedParamsAreSubset(t *testing.T) {
	rng := tensor.NewRNG(6)
	ms := []Model{
		NewViT(SmallViT("vit-s", 5, 8, 4), rng),
		NewResNet(SmallResNet("rn-s", 5, 8), rng),
		NewBiT(SmallBiT("bit-s", 5, 8), rng),
	}
	for _, m := range ms {
		all := map[*autograd.Param]bool{}
		for _, p := range m.Params() {
			all[p] = true
		}
		sh := m.ShieldedParams()
		if len(sh) == 0 {
			t.Fatalf("%s: no shielded params", m.Name())
		}
		if len(sh) >= len(all) {
			t.Fatalf("%s: shield covers the whole model", m.Name())
		}
		for _, p := range sh {
			if !all[p] {
				t.Fatalf("%s: shielded param %s not in model", m.Name(), p.Name)
			}
		}
	}
}

func TestViTParamCountMatchesAllocation(t *testing.T) {
	cfg := SmallViT("vit-count", 7, 16, 4)
	v := NewViT(cfg, tensor.NewRNG(7))
	var got int64
	for _, p := range v.Params() {
		got += int64(p.Data.Len())
	}
	if want := cfg.ParamCount(); got != want {
		t.Fatalf("allocated %d params, formula says %d", got, want)
	}
}

func TestBiTParamCountMatchesAllocation(t *testing.T) {
	cfg := SmallBiT("bit-count", 7, 16)
	b := NewBiT(cfg, tensor.NewRNG(8))
	var got int64
	for _, p := range b.Params() {
		got += int64(p.Data.Len())
	}
	if want := cfg.ParamCount(); got != want {
		t.Fatalf("allocated %d params, formula says %d", got, want)
	}
}

func TestPaperScaleFootprints(t *testing.T) {
	// Table I sanity: the shield is tiny relative to the model and the
	// ensemble fits in a TrustZone enclave (<16 MB, §V-A).
	const mb = 1 << 20
	vit := ViTL16.ShieldFootprint()
	bit := BiTM101x3.ShieldFootprint()
	if vit.TEEBytes() > 20*mb {
		t.Fatalf("ViT-L/16 shield = %d MB, want well under TrustZone limits", vit.TEEBytes()/mb)
	}
	if vit.Portion() > 0.05 {
		t.Fatalf("ViT-L/16 shielded portion = %.3f%%, want ~1%%", 100*vit.Portion())
	}
	if bit.WeightBytes > mb {
		t.Fatalf("BiT stem weights = %d, want O(100KB)", bit.WeightBytes)
	}
	// Paper: ViT-L/16 ≈ 15.16 MB worst case; ours must be the same order.
	if vit.TEEBytes() < 5*mb {
		t.Fatalf("ViT-L/16 shield = %d bytes, suspiciously small", vit.TEEBytes())
	}
	// ViT-B/16 shields a larger fraction than ViT-L/16 (smaller model,
	// same-size shield region) — the ordering visible in Table I.
	if ViTB16.ShieldFootprint().Portion() <= vit.Portion() {
		t.Fatal("ViT-B/16 should shield a larger portion than ViT-L/16")
	}
}

func TestTrainOverfitsSmallViT(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := tensor.NewRNG(9)
	d := smallDataset(t, 4, 8, 64)
	v := NewViT(SmallViT("vit-train", 4, 8, 4), rng)
	losses, err := Train(v, d.X, d.Y, TrainConfig{Epochs: 8, BatchSize: 16, LR: 2e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
	if acc := Accuracy(v, d.X, d.Y); acc < 0.8 {
		t.Fatalf("train accuracy = %.2f, want ≥ 0.8", acc)
	}
}

func TestTrainOverfitsSmallResNet(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := tensor.NewRNG(10)
	d := smallDataset(t, 4, 8, 64)
	r := NewResNet(SmallResNet("rn-train", 4, 8), rng)
	losses, err := Train(r, d.X, d.Y, TrainConfig{Epochs: 8, BatchSize: 16, LR: 2e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
	if acc := Accuracy(r, d.X, d.Y); acc < 0.8 {
		t.Fatalf("train accuracy = %.2f, want ≥ 0.8", acc)
	}
}

func TestTrainOverfitsSmallBiT(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := tensor.NewRNG(11)
	d := smallDataset(t, 4, 8, 64)
	b := NewBiT(SmallBiT("bit-train", 4, 8), rng)
	losses, err := Train(b, d.X, d.Y, TrainConfig{Epochs: 8, BatchSize: 16, LR: 2e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
	if acc := Accuracy(b, d.X, d.Y); acc < 0.8 {
		t.Fatalf("train accuracy = %.2f, want ≥ 0.8", acc)
	}
}

func TestPredictAndAccuracy(t *testing.T) {
	rng := tensor.NewRNG(12)
	v := NewViT(SmallViT("vit-pred", 3, 8, 4), rng)
	x := rng.Uniform(0, 1, 4, 3, 8, 8)
	pred := Predict(v, x)
	if len(pred) != 4 {
		t.Fatalf("pred len = %d", len(pred))
	}
	for _, p := range pred {
		if p < 0 || p >= 3 {
			t.Fatalf("pred %d out of range", p)
		}
	}
	acc := Accuracy(v, x, pred)
	if acc != 1 {
		t.Fatalf("accuracy vs own predictions = %v", acc)
	}
}

func TestBatchGather(t *testing.T) {
	rng := tensor.NewRNG(13)
	x := rng.Uniform(0, 1, 5, 3, 4, 4)
	y := []int{0, 1, 2, 3, 4}
	bx, by, err := Batch(x, y, []int{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if bx.Dim(0) != 2 || by[0] != 4 || by[1] != 0 {
		t.Fatalf("batch = %v %v", bx.Shape(), by)
	}
	if !bx.Slice(0).AllClose(x.Slice(4), 0) {
		t.Fatal("batch pixels wrong")
	}
}
