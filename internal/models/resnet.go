package models

import (
	"fmt"

	"pelta/internal/autograd"
	"pelta/internal/nn"
	"pelta/internal/tensor"
)

// ResNetConfig describes a pre-activation ResNet-v2 (He et al. 2016).
type ResNetConfig struct {
	Name          string
	InputC        int
	InputHW       int
	Widths        [3]int // channels per stage
	BlocksPerStep int    // residual blocks per stage
	Bottleneck    bool   // 1x1-3x3-1x1 blocks (ResNet-164) vs basic 3x3-3x3
	Classes       int
}

// Paper-scale CIFAR ResNet configurations.
var (
	ResNet56  = ResNetConfig{Name: "ResNet-56", InputC: 3, InputHW: 32, Widths: [3]int{16, 32, 64}, BlocksPerStep: 9, Classes: 10}
	ResNet164 = ResNetConfig{Name: "ResNet-164", InputC: 3, InputHW: 32, Widths: [3]int{64, 128, 256}, BlocksPerStep: 18, Bottleneck: true, Classes: 10}
)

// SmallResNet returns a trainable scaled-down ResNet-v2 for hw×hw images.
func SmallResNet(name string, classes, hw int) ResNetConfig {
	return ResNetConfig{
		Name: name, InputC: 3, InputHW: hw,
		Widths: [3]int{8, 16, 32}, BlocksPerStep: 1, Classes: classes,
	}
}

// residualBlock is one pre-activation block with optional projection skip.
type residualBlock struct {
	norm1, norm2, norm3 *nn.BatchNorm2d
	conv1, conv2, conv3 *nn.Conv2d // conv3 nil for basic blocks
	proj                *nn.Conv2d // nil when identity skip
	stride              int
	bottleneck          bool
}

func newResidualBlock(name string, in, out, stride int, bottleneck bool, rng *tensor.RNG) *residualBlock {
	b := &residualBlock{stride: stride, bottleneck: bottleneck}
	if bottleneck {
		mid := out / 4
		b.norm1 = nn.NewBatchNorm2d(name+".bn1", in)
		b.conv1 = nn.NewConv2d(name+".conv1", in, mid, 1, stride, 0, false, rng)
		b.norm2 = nn.NewBatchNorm2d(name+".bn2", mid)
		b.conv2 = nn.NewConv2d(name+".conv2", mid, mid, 3, 1, 1, false, rng)
		b.norm3 = nn.NewBatchNorm2d(name+".bn3", mid)
		b.conv3 = nn.NewConv2d(name+".conv3", mid, out, 1, 1, 0, false, rng)
	} else {
		b.norm1 = nn.NewBatchNorm2d(name+".bn1", in)
		b.conv1 = nn.NewConv2d(name+".conv1", in, out, 3, stride, 1, false, rng)
		b.norm2 = nn.NewBatchNorm2d(name+".bn2", out)
		b.conv2 = nn.NewConv2d(name+".conv2", out, out, 3, 1, 1, false, rng)
	}
	if in != out || stride != 1 {
		b.proj = nn.NewConv2d(name+".proj", in, out, 1, stride, 0, false, rng)
	}
	return b
}

func (b *residualBlock) forward(g *autograd.Graph, x *autograd.Value, training bool) *autograd.Value {
	pre := g.ReLU(b.norm1.Forward(g, x, training))
	skip := x
	if b.proj != nil {
		skip = b.proj.Forward(g, pre)
	}
	y := b.conv1.Forward(g, pre)
	y = b.conv2.Forward(g, g.ReLU(b.norm2.Forward(g, y, training)))
	if b.bottleneck {
		y = b.conv3.Forward(g, g.ReLU(b.norm3.Forward(g, y, training)))
	}
	return g.Add(skip, y)
}

func (b *residualBlock) params() []*autograd.Param {
	mods := []nn.Module{b.norm1, b.conv1, b.norm2, b.conv2}
	if b.conv3 != nil {
		mods = append(mods, b.norm3, b.conv3)
	}
	if b.proj != nil {
		mods = append(mods, b.proj)
	}
	return nn.CollectParams(mods...)
}

// ResNet is a pre-activation ResNet-v2 classifier. Its Pelta shield region
// covers the first convolution, batch normalization and ReLU (§V-A).
type ResNet struct {
	Cfg ResNetConfig

	StemConv *nn.Conv2d
	StemNorm *nn.BatchNorm2d
	blocks   []*residualBlock
	FinalBN  *nn.BatchNorm2d
	Head     *nn.Linear

	training bool
}

var _ Model = (*ResNet)(nil)

// NewResNet builds a ResNet-v2 with fresh parameters.
func NewResNet(cfg ResNetConfig, rng *tensor.RNG) *ResNet {
	r := &ResNet{
		Cfg:      cfg,
		StemConv: nn.NewConv2d(cfg.Name+".stem", cfg.InputC, cfg.Widths[0], 3, 1, 1, false, rng),
		StemNorm: nn.NewBatchNorm2d(cfg.Name+".stem_bn", cfg.Widths[0]),
		FinalBN:  nn.NewBatchNorm2d(cfg.Name+".final_bn", cfg.Widths[2]),
		Head:     nn.NewLinear(cfg.Name+".head", cfg.Widths[2], cfg.Classes, true, rng),
	}
	in := cfg.Widths[0]
	for stage := 0; stage < 3; stage++ {
		out := cfg.Widths[stage]
		for blk := 0; blk < cfg.BlocksPerStep; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			name := fmt.Sprintf("%s.s%d.b%d", cfg.Name, stage, blk)
			r.blocks = append(r.blocks, newResidualBlock(name, in, out, stride, cfg.Bottleneck, rng))
			in = out
		}
	}
	return r
}

// Name implements Model.
func (r *ResNet) Name() string { return r.Cfg.Name }

// InputShape implements Model.
func (r *ResNet) InputShape() []int { return []int{r.Cfg.InputC, r.Cfg.InputHW, r.Cfg.InputHW} }

// Classes implements Model.
func (r *ResNet) Classes() int { return r.Cfg.Classes }

// SetTraining implements Model.
func (r *ResNet) SetTraining(t bool) { r.training = t }

// Forward implements Model. The boundary is the stem ReLU output — the
// paper masks "the first convolution, batch normalization and ReLU".
func (r *ResNet) Forward(g *autograd.Graph, x *autograd.Value) (boundary, logits *autograd.Value) {
	y := g.ReLU(r.StemNorm.Forward(g, r.StemConv.Forward(g, x), r.training))
	boundary = y
	for _, b := range r.blocks {
		y = b.forward(g, y, r.training)
	}
	y = g.ReLU(r.FinalBN.Forward(g, y, r.training))
	pooled := g.AvgPoolGlobal(y)
	return boundary, r.Head.Forward(g, pooled)
}

// Params implements Model.
func (r *ResNet) Params() []*autograd.Param {
	out := nn.CollectParams(r.StemConv, r.StemNorm)
	for _, b := range r.blocks {
		out = append(out, b.params()...)
	}
	out = append(out, r.FinalBN.Params()...)
	return append(out, r.Head.Params()...)
}

// ShieldedParams implements Model: the stem conv kernel and the stem BN
// affine parameters are enclave-resident.
func (r *ResNet) ShieldedParams() []*autograd.Param {
	return nn.CollectParams(r.StemConv, r.StemNorm)
}

// ShieldFootprint computes the enclave cost of the ResNet shield: stem conv
// weights, stem BN affine params, the stem activations of one sample
// (conv out, BN out, ReLU out) and all their gradients.
func (c ResNetConfig) ShieldFootprint(totalParams int64) Footprint {
	w0 := int64(c.Widths[0])
	weights := int64(c.InputC)*w0*9 + 2*w0
	hw := int64(c.InputHW * c.InputHW)
	acts := 3 * w0 * hw
	const fp32 = 4
	return Footprint{
		WeightBytes:     weights * fp32,
		ActivationBytes: acts * fp32,
		GradientBytes:   (weights + acts) * fp32,
		TotalModelBytes: totalParams * fp32,
	}
}
