package models

import (
	"fmt"

	"pelta/internal/autograd"
	"pelta/internal/nn"
	"pelta/internal/tensor"
)

// TrainConfig controls the local training loop used to fit defender models
// before they are attacked (and by FL clients for their local updates).
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// Verbose prints per-epoch loss/accuracy to stdout.
	Verbose bool
}

// DefaultTrainConfig returns a configuration suited to the synthetic
// datasets: a few Adam epochs reach high clean accuracy.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 5, BatchSize: 32, LR: 1e-3, Seed: 1}
}

// Train fits m on (x, y) with Adam + cross-entropy and returns the mean
// loss of every epoch. x is [N,C,H,W]; y holds N labels. Mismatched
// sample/label counts and out-of-range batch indices are reported as
// errors, not panics: FL clients surface them through UpdateResponse so a
// malformed shard fails its round loudly instead of corrupting the model.
func Train(m Model, x *tensor.Tensor, y []int, cfg TrainConfig) ([]float64, error) {
	n := x.Dim(0)
	if n != len(y) {
		return nil, fmt.Errorf("models: Train given %d samples but %d labels", n, len(y))
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	opt := nn.NewAdam(m.Params(), cfg.LR)
	// Attack oracles and shielded queries may have accumulated gradients
	// into the persistent parameters; start from a clean slate.
	opt.ZeroGrad()
	rng := tensor.NewRNG(cfg.Seed)
	m.SetTraining(true)
	defer m.SetTraining(false)

	// One pooled arena serves every batch: the graph's tensors are swept
	// back between steps, so steady-state training is allocation-free.
	pool := tensor.NewPool()
	g := autograd.NewGraphWithPool(pool)
	bx := tensor.New(append([]int{cfg.BatchSize}, x.Shape()[1:]...)...)
	by := make([]int, cfg.BatchSize)

	losses := make([]float64, 0, cfg.Epochs)
	for ep := 0; ep < cfg.Epochs; ep++ {
		perm := rng.Perm(n)
		total, batches := 0.0, 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			idx := perm[start:end]
			if len(idx) != bx.Dim(0) {
				bx = tensor.New(append([]int{len(idx)}, x.Shape()[1:]...)...)
				by = make([]int, len(idx))
			}
			if err := gatherBatchInto(bx, by, x, y, idx); err != nil {
				g.Release()
				return losses, fmt.Errorf("models: Train epoch %d: %w", ep+1, err)
			}
			g.Release()
			_, logits := m.Forward(g, g.Input(bx, "x"))
			loss, _ := g.CrossEntropy(logits, by, autograd.ReduceMean)
			g.Backward(loss)
			opt.Step()
			total += float64(loss.Data.Data()[0])
			batches++
		}
		losses = append(losses, total/float64(batches))
		if cfg.Verbose {
			fmt.Printf("  %s epoch %d/%d: loss %.4f\n", m.Name(), ep+1, cfg.Epochs, losses[ep])
		}
	}
	g.Release()
	return losses, nil
}

// gatherBatch copies the samples at idx into a fresh batch tensor.
func gatherBatch(x *tensor.Tensor, y []int, idx []int) (*tensor.Tensor, []int, error) {
	shape := append([]int{len(idx)}, x.Shape()[1:]...)
	bx := tensor.New(shape...)
	by := make([]int, len(idx))
	if err := gatherBatchInto(bx, by, x, y, idx); err != nil {
		return nil, nil, err
	}
	return bx, by, nil
}

// gatherBatchInto copies the samples at idx into pre-allocated buffers,
// reporting shape mismatches instead of panicking deep inside CopyFrom.
func gatherBatchInto(bx *tensor.Tensor, by []int, x *tensor.Tensor, y []int, idx []int) error {
	if bx.Dim(0) != len(idx) || len(by) != len(idx) {
		return fmt.Errorf("models: batch buffers sized for %d/%d samples, want %d", bx.Dim(0), len(by), len(idx))
	}
	for i, j := range idx {
		if j < 0 || j >= x.Dim(0) || j >= len(y) {
			return fmt.Errorf("models: batch index %d out of range over %d samples / %d labels", j, x.Dim(0), len(y))
		}
		bx.Slice(i).CopyFrom(x.Slice(j))
		by[i] = y[j]
	}
	return nil
}

// Batch exposes gatherBatch for evaluation code.
func Batch(x *tensor.Tensor, y []int, idx []int) (*tensor.Tensor, []int, error) {
	return gatherBatch(x, y, idx)
}
