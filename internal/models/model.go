package models

import (
	"pelta/internal/autograd"
	"pelta/internal/tensor"
)

// Model is a classifier whose computational graph Pelta can shield.
type Model interface {
	// Name returns the architecture label, e.g. "ViT-L/16".
	Name() string
	// Forward records one batched pass into g for input x [B,C,H,W] and
	// returns the shield-boundary vertex and the logits [B,classes].
	Forward(g *autograd.Graph, x *autograd.Value) (boundary, logits *autograd.Value)
	// Params returns all trainable parameters.
	Params() []*autograd.Param
	// ShieldedParams returns the parameters inside the Pelta shield region
	// (the model's shallowest transformations, §V-A).
	ShieldedParams() []*autograd.Param
	// InputShape returns [C,H,W].
	InputShape() []int
	// Classes returns the number of output classes.
	Classes() int
	// SetTraining toggles training-time behaviour (batch statistics).
	SetTraining(bool)
}

// Footprint describes the worst-case enclave memory cost of shielding a
// model (Table I): weights, one sample's intermediate activations, and the
// gradients of both, all fp32, none flushed before the pass completes.
type Footprint struct {
	WeightBytes     int64
	ActivationBytes int64
	GradientBytes   int64 // gradients of shielded weights and activations
	TotalModelBytes int64 // fp32 size of all model parameters
}

// TEEBytes is the total enclave memory required in the worst case.
func (f Footprint) TEEBytes() int64 {
	return f.WeightBytes + f.ActivationBytes + f.GradientBytes
}

// Portion is the shielded fraction of the model's total memory, the
// "Shielded portion" column of Table I.
func (f Footprint) Portion() float64 {
	if f.TotalModelBytes == 0 {
		return 0
	}
	return float64(f.TEEBytes()) / float64(f.TotalModelBytes)
}

// Logits runs a plain inference pass and returns the logits tensor.
func Logits(m Model, x *tensor.Tensor) *tensor.Tensor {
	g := autograd.NewGraph()
	_, logits := m.Forward(g, g.Input(x, "x"))
	return logits.Data
}

// Predict returns the argmax class of every sample in the batch.
func Predict(m Model, x *tensor.Tensor) []int {
	return tensor.ArgmaxRows(Logits(m, x))
}

// Accuracy returns the fraction of samples classified as their label.
func Accuracy(m Model, x *tensor.Tensor, y []int) float64 {
	pred := Predict(m, x)
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	if len(y) == 0 {
		return 0
	}
	return float64(correct) / float64(len(y))
}
