package models

import "testing"

// TestPaperScaleParameterCounts pins the analytic parameter-count formulas
// against the published sizes of the real architectures — the external
// validity check behind Table I's "shielded portion" denominators.
func TestPaperScaleParameterCounts(t *testing.T) {
	tests := []struct {
		name      string
		got       int64
		published int64 // literature value, in parameters
		tolFrac   float64
	}{
		// Dosovitskiy et al. report 304M/86M/88M for ViT-L/16, B/16, B/32.
		{"ViT-L/16", ViTL16.ParamCount(), 304_000_000, 0.01},
		{"ViT-B/16", ViTB16.ParamCount(), 86_000_000, 0.01},
		{"ViT-B/32", ViTB32.ParamCount(), 88_000_000, 0.01},
		// Kolesnikov et al.'s BiT-M ResNet-v2 variants.
		{"BiT-M-R101x3", BiTM101x3.ParamCount(), 388_000_000, 0.01},
		{"BiT-M-R152x4", BiTM152x4.ParamCount(), 936_000_000, 0.01},
	}
	for _, tt := range tests {
		diff := float64(tt.got-tt.published) / float64(tt.published)
		if diff < 0 {
			diff = -diff
		}
		if diff > tt.tolFrac {
			t.Errorf("%s: formula gives %d params, published ≈ %d (%.2f%% off)",
				tt.name, tt.got, tt.published, 100*diff)
		}
	}
}

// TestPaperScaleTokenCounts checks the ViT sequence lengths used by the
// Table I activation accounting (196+1 for /16 patches at 224², 49+1
// for /32).
func TestPaperScaleTokenCounts(t *testing.T) {
	if got := ViTL16.Tokens(); got != 197 {
		t.Errorf("ViT-L/16 tokens = %d, want 197", got)
	}
	if got := ViTB32.Tokens(); got != 50 {
		t.Errorf("ViT-B/32 tokens = %d, want 50", got)
	}
}
