package models

import (
	"testing"

	"pelta/internal/autograd"
	"pelta/internal/tensor"
)

func TestMobileViTForwardShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := NewMobileViT(SmallMobileViT("mvit-test", 10, 16), rng)
	x := rng.Uniform(0, 1, 2, 3, 16, 16)
	g := autograd.NewGraph()
	boundary, logits := m.Forward(g, g.Input(x, "x"))
	if logits.Data.Dim(0) != 2 || logits.Data.Dim(1) != 10 {
		t.Fatalf("logits shape = %v", logits.Data.Shape())
	}
	if boundary.Op() != "relu" {
		t.Fatalf("boundary op = %q, want stem relu", boundary.Op())
	}
	if boundary.Data.Dim(1) != 16 {
		t.Fatalf("boundary shape = %v", boundary.Data.Shape())
	}
}

func TestMobileViTGradientsReachInput(t *testing.T) {
	rng := tensor.NewRNG(2)
	m := NewMobileViT(SmallMobileViT("mvit-grad", 4, 8), rng)
	x := rng.Uniform(0, 1, 1, 3, 8, 8)
	g := autograd.NewGraph()
	in := g.Input(x, "x")
	_, logits := m.Forward(g, in)
	loss, _ := g.CrossEntropy(logits, []int{2}, autograd.ReduceSum)
	g.Backward(loss)
	if in.Grad == nil || tensor.NormL2(in.Grad) == 0 {
		t.Fatal("no input gradient through MobileViT")
	}
}

func TestMobileViTTrains(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	d := smallDataset(t, 4, 8, 64)
	m := NewMobileViT(SmallMobileViT("mvit-train", 4, 8), tensor.NewRNG(3))
	losses, err := Train(m, d.X, d.Y, TrainConfig{Epochs: 8, BatchSize: 16, LR: 2e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
	if acc := Accuracy(m, d.X, d.Y); acc < 0.7 {
		t.Fatalf("train accuracy = %.2f", acc)
	}
}

func TestMobileViTShieldedParamsSubset(t *testing.T) {
	m := NewMobileViT(SmallMobileViT("mvit-shield", 4, 8), tensor.NewRNG(4))
	all := map[*autograd.Param]bool{}
	for _, p := range m.Params() {
		all[p] = true
	}
	sh := m.ShieldedParams()
	if len(sh) == 0 || len(sh) >= len(all) {
		t.Fatalf("shielded params = %d of %d", len(sh), len(all))
	}
	for _, p := range sh {
		if !all[p] {
			t.Fatalf("shielded param %s not in model", p.Name)
		}
	}
}

func TestUnpatchifyInvertsPatchify(t *testing.T) {
	rng := tensor.NewRNG(5)
	x := rng.Normal(0, 1, 2, 3, 8, 8)
	g := autograd.NewGraph()
	in := g.Input(x, "x")
	back := g.Unpatchify(g.Patchify(in, 2), 3, 8, 8, 2)
	if !back.Data.AllClose(x, 0) {
		t.Fatal("Unpatchify(Patchify(x)) != x")
	}
	// Gradient flows back through the round trip as identity.
	loss := g.Sum(g.Mul(back, back))
	g.Backward(loss)
	want := tensor.Scale(x, 2)
	if !in.Grad.AllClose(want, 1e-4) {
		t.Fatal("round-trip gradient wrong")
	}
}
