// Package dataset provides procedurally generated, class-separable image
// datasets standing in for CIFAR-10, CIFAR-100 and ImageNet (which cannot be
// downloaded in this offline reproduction; see DESIGN.md §1).
//
// Every class has a deterministic prototype image built from a few random
// low-frequency sinusoidal patterns; samples are noisy, brightness-jittered
// draws around the prototype, clipped to [0,1] like normalized pixels. The
// construction preserves what the paper's evaluation needs: models reach
// high clean accuracy, inputs live in a pixel box, and gradient-based
// attacks can move samples across decision boundaries within an ε-ball.
//
// Generation is deterministic: the same Config (including Seed) always
// yields bit-identical splits, and the federated partitioners — IID Shards
// and the label-skewed non-IID ShardsSkewed — are pure functions of their
// seeds, so a scenario sweep replays exactly. Datasets are immutable after
// generation and safe for concurrent readers.
package dataset
