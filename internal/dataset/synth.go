package dataset

import (
	"fmt"
	"math"

	"pelta/internal/tensor"
)

// Dataset is a labelled image set with pixels in [0,1].
type Dataset struct {
	Name    string
	Classes int
	HW      int
	X       *tensor.Tensor // [N, 3, HW, HW]
	Y       []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Config controls synthetic generation.
type Config struct {
	Name    string
	Classes int
	HW      int
	TrainN  int
	ValN    int
	Seed    int64
	// Noise is the per-pixel Gaussian σ added around the class prototype.
	Noise float64
	// Waves is the number of sinusoidal components per channel prototype.
	Waves int
}

// SynthCIFAR10 mirrors CIFAR-10: 10 classes of hw×hw RGB images.
func SynthCIFAR10(hw int, seed int64) Config {
	return Config{Name: "SynthCIFAR-10", Classes: 10, HW: hw, TrainN: 2000, ValN: 1000, Seed: seed, Noise: 0.06, Waves: 3}
}

// SynthCIFAR100 mirrors CIFAR-100: 100 classes.
func SynthCIFAR100(hw int, seed int64) Config {
	return Config{Name: "SynthCIFAR-100", Classes: 100, HW: hw, TrainN: 5000, ValN: 1000, Seed: seed, Noise: 0.05, Waves: 4}
}

// SynthImageNet mirrors the ILSVRC validation protocol with a 100-class
// subset (the paper samples 1000 images; class count is reduced so the
// substitute models stay trainable in-process).
func SynthImageNet(hw int, seed int64) Config {
	return Config{Name: "SynthImageNet", Classes: 100, HW: hw, TrainN: 5000, ValN: 1000, Seed: seed, Noise: 0.05, Waves: 5}
}

// prototype builds the deterministic class template [3,HW,HW].
func prototype(class, hw, waves int, seed int64) *tensor.Tensor {
	rng := tensor.NewRNG(seed + int64(class)*7919)
	img := tensor.New(3, hw, hw)
	for c := 0; c < 3; c++ {
		for k := 0; k < waves; k++ {
			fx := 0.5 + 2.5*rng.Float64()
			fy := 0.5 + 2.5*rng.Float64()
			phase := 2 * math.Pi * rng.Float64()
			amp := 0.4 + 0.6*rng.Float64()
			for y := 0; y < hw; y++ {
				for x := 0; x < hw; x++ {
					v := amp * math.Sin(2*math.Pi*(fx*float64(x)+fy*float64(y))/float64(hw)+phase)
					img.Data()[c*hw*hw+y*hw+x] += float32(v)
				}
			}
		}
	}
	// Normalize into [0.15, 0.85] so noise rarely clips.
	lo, hi := img.Data()[0], img.Data()[0]
	for _, v := range img.Data() {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span < 1e-6 {
		span = 1
	}
	for i, v := range img.Data() {
		img.Data()[i] = 0.15 + 0.7*(v-lo)/span
	}
	return img
}

// Generate returns deterministic train and validation splits.
func Generate(cfg Config) (train, val *Dataset) {
	if cfg.Waves <= 0 {
		cfg.Waves = 3
	}
	protos := make([]*tensor.Tensor, cfg.Classes)
	for c := range protos {
		protos[c] = prototype(c, cfg.HW, cfg.Waves, cfg.Seed)
	}
	make1 := func(n int, rng *tensor.RNG, tag string) *Dataset {
		d := &Dataset{
			Name:    cfg.Name + "/" + tag,
			Classes: cfg.Classes,
			HW:      cfg.HW,
			X:       tensor.New(n, 3, cfg.HW, cfg.HW),
			Y:       make([]int, n),
		}
		for i := 0; i < n; i++ {
			class := i % cfg.Classes
			d.Y[i] = class
			dst := d.X.Slice(i)
			dst.CopyFrom(protos[class])
			bright := float32(0.08 * (rng.Float64()*2 - 1))
			for j := range dst.Data() {
				dst.Data()[j] += float32(rng.NormFloat64()*cfg.Noise) + bright
			}
			tensor.ClampIn(dst, 0, 1)
		}
		return d
	}
	train = make1(cfg.TrainN, tensor.NewRNG(cfg.Seed+1), "train")
	val = make1(cfg.ValN, tensor.NewRNG(cfg.Seed+2), "val")
	return train, val
}

// Subset returns the samples at idx as a fresh dataset.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Name:    d.Name,
		Classes: d.Classes,
		HW:      d.HW,
		X:       tensor.New(append([]int{len(idx)}, d.X.Shape()[1:]...)...),
		Y:       make([]int, len(idx)),
	}
	for i, j := range idx {
		if j < 0 || j >= d.Len() {
			panic(fmt.Sprintf("dataset: Subset index %d out of range %d", j, d.Len()))
		}
		out.X.Slice(i).CopyFrom(d.X.Slice(j))
		out.Y[i] = d.Y[j]
	}
	return out
}

// Shards partitions the dataset into k nearly equal federated client shards
// (IID by construction, matching the paper's honest-but-curious setting).
func (d *Dataset) Shards(k int) []*Dataset {
	out := make([]*Dataset, k)
	for s := 0; s < k; s++ {
		var idx []int
		for i := s; i < d.Len(); i += k {
			idx = append(idx, i)
		}
		out[s] = d.Subset(idx)
		out[s].Name = fmt.Sprintf("%s/shard%d", d.Name, s)
	}
	return out
}

// ShardsSkewed partitions the dataset into k client shards with label skew,
// the non-IID regime of federated deployments. Each sample lands on its
// class's home shard (class c → shard c mod k) with probability skew and is
// dealt round-robin otherwise, so skew=0 reproduces Shards' IID split and
// skew=1 concentrates every class on one device. The draw is seeded and
// fully deterministic; every shard is guaranteed non-empty (rebalanced from
// the largest shard if a device would come up dry).
func (d *Dataset) ShardsSkewed(k int, skew float64, seed int64) []*Dataset {
	if skew <= 0 {
		return d.Shards(k)
	}
	if skew > 1 {
		skew = 1
	}
	rng := tensor.NewRNG(seed)
	buckets := make([][]int, k)
	next := 0
	for i := 0; i < d.Len(); i++ {
		s := next % k
		if rng.Float64() < skew {
			s = d.Y[i] % k
		} else {
			next++
		}
		buckets[s] = append(buckets[s], i)
	}
	for s := range buckets {
		for len(buckets[s]) == 0 {
			big := 0
			for b := range buckets {
				if len(buckets[b]) > len(buckets[big]) {
					big = b
				}
			}
			if len(buckets[big]) < 2 {
				panic(fmt.Sprintf("dataset: cannot shard %d samples over %d clients", d.Len(), k))
			}
			last := len(buckets[big]) - 1
			buckets[s] = append(buckets[s], buckets[big][last])
			buckets[big] = buckets[big][:last]
		}
	}
	out := make([]*Dataset, k)
	for s := range buckets {
		out[s] = d.Subset(buckets[s])
		out[s].Name = fmt.Sprintf("%s/shard%d", d.Name, s)
	}
	return out
}
