package dataset

import (
	"testing"

	"pelta/internal/tensor"
)

func TestGenerateShapesAndRanges(t *testing.T) {
	cfg := SynthCIFAR10(16, 1)
	cfg.TrainN, cfg.ValN = 50, 20
	train, val := Generate(cfg)
	if train.Len() != 50 || val.Len() != 20 {
		t.Fatalf("sizes = %d/%d", train.Len(), val.Len())
	}
	wantShape := []int{50, 3, 16, 16}
	for i, d := range train.X.Shape() {
		if d != wantShape[i] {
			t.Fatalf("train shape = %v", train.X.Shape())
		}
	}
	for _, v := range train.X.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
	for _, y := range train.Y {
		if y < 0 || y >= 10 {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SynthCIFAR10(8, 42)
	cfg.TrainN, cfg.ValN = 20, 10
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if !a.X.AllClose(b.X, 0) {
		t.Fatal("same seed must reproduce data")
	}
	cfg2 := cfg
	cfg2.Seed = 43
	c, _ := Generate(cfg2)
	if a.X.AllClose(c.X, 1e-9) {
		t.Fatal("different seeds should differ")
	}
}

func TestClassSeparability(t *testing.T) {
	// Samples must be closer to their own class prototype than to others —
	// the property that lets defender models reach high clean accuracy.
	cfg := SynthCIFAR10(16, 3)
	cfg.TrainN, cfg.ValN = 100, 50
	train, _ := Generate(cfg)
	protos := make([]*tensor.Tensor, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for c := range protos {
		protos[c] = tensor.New(3, 16, 16)
	}
	for i := 0; i < train.Len(); i++ {
		tensor.AddIn(protos[train.Y[i]], train.X.Slice(i))
		counts[train.Y[i]]++
	}
	for c := range protos {
		tensor.ScaleIn(protos[c], 1/float32(counts[c]))
	}
	correct := 0
	for i := 0; i < train.Len(); i++ {
		best, bestD := -1, 0.0
		for c := range protos {
			diff := tensor.Sub(train.X.Slice(i), protos[c])
			d := tensor.Dot(diff, diff)
			if best < 0 || d < bestD {
				best, bestD = c, d
			}
		}
		if best == train.Y[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(train.Len()); frac < 0.95 {
		t.Fatalf("nearest-prototype accuracy %.2f too low for a separable dataset", frac)
	}
}

func TestSubset(t *testing.T) {
	cfg := SynthCIFAR10(8, 5)
	cfg.TrainN, cfg.ValN = 20, 10
	train, _ := Generate(cfg)
	sub := train.Subset([]int{3, 7, 11})
	if sub.Len() != 3 {
		t.Fatalf("len = %d", sub.Len())
	}
	if sub.Y[1] != train.Y[7] {
		t.Fatal("labels not copied")
	}
	if !sub.X.Slice(2).AllClose(train.X.Slice(11), 0) {
		t.Fatal("pixels not copied")
	}
}

func TestShardsPartition(t *testing.T) {
	cfg := SynthCIFAR10(8, 6)
	cfg.TrainN, cfg.ValN = 30, 10
	train, _ := Generate(cfg)
	shards := train.Shards(4)
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != train.Len() {
		t.Fatalf("shards cover %d of %d samples", total, train.Len())
	}
	// Each shard keeps the class diversity (IID split).
	seen := map[int]bool{}
	for _, y := range shards[0].Y {
		seen[y] = true
	}
	if len(seen) < 5 {
		t.Fatalf("shard 0 has only %d classes", len(seen))
	}
}

func TestPresetConfigs(t *testing.T) {
	tests := []struct {
		cfg     Config
		classes int
	}{
		{SynthCIFAR10(16, 1), 10},
		{SynthCIFAR100(16, 1), 100},
		{SynthImageNet(16, 1), 100},
	}
	for _, tt := range tests {
		if tt.cfg.Classes != tt.classes {
			t.Errorf("%s classes = %d, want %d", tt.cfg.Name, tt.cfg.Classes, tt.classes)
		}
		if tt.cfg.TrainN <= 0 || tt.cfg.ValN <= 0 {
			t.Errorf("%s sizes unset", tt.cfg.Name)
		}
	}
}

func TestShardsSkewedPartition(t *testing.T) {
	cfg := SynthCIFAR10(8, 3)
	cfg.Classes = 4
	cfg.TrainN, cfg.ValN = 120, 4
	train, _ := Generate(cfg)
	for _, skew := range []float64{0, 0.5, 1} {
		shards := train.ShardsSkewed(3, skew, 7)
		total := 0
		for s, sh := range shards {
			if sh.Len() == 0 {
				t.Fatalf("skew=%v: shard %d is empty", skew, s)
			}
			total += sh.Len()
		}
		if total != train.Len() {
			t.Fatalf("skew=%v: shards hold %d samples, dataset has %d", skew, total, train.Len())
		}
	}
}

func TestShardsSkewedDeterministic(t *testing.T) {
	cfg := SynthCIFAR10(8, 3)
	cfg.Classes = 4
	cfg.TrainN, cfg.ValN = 60, 4
	train, _ := Generate(cfg)
	a := train.ShardsSkewed(4, 0.7, 9)
	b := train.ShardsSkewed(4, 0.7, 9)
	for s := range a {
		if a[s].Len() != b[s].Len() {
			t.Fatalf("shard %d sizes differ: %d vs %d", s, a[s].Len(), b[s].Len())
		}
		for i := range a[s].Y {
			if a[s].Y[i] != b[s].Y[i] {
				t.Fatalf("shard %d labels differ at %d", s, i)
			}
		}
	}
}

func TestShardsSkewedConcentratesLabels(t *testing.T) {
	cfg := SynthCIFAR10(8, 3)
	cfg.Classes = 4
	cfg.TrainN, cfg.ValN = 160, 4
	train, _ := Generate(cfg)
	// Full skew with k == classes: every shard holds exactly one label.
	shards := train.ShardsSkewed(4, 1, 5)
	for s, sh := range shards {
		for _, y := range sh.Y {
			if y != sh.Y[0] {
				t.Fatalf("skew=1 shard %d mixes labels %d and %d", s, sh.Y[0], y)
			}
		}
	}
	// Zero skew falls back to the IID round-robin split.
	iid := train.ShardsSkewed(4, 0, 5)
	plain := train.Shards(4)
	for s := range iid {
		if iid[s].Len() != plain[s].Len() {
			t.Fatalf("skew=0 shard %d diverges from Shards", s)
		}
	}
}
