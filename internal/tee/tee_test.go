package tee

import (
	"errors"
	"testing"

	"pelta/internal/tensor"
)

func newTestEnclave(t *testing.T, limit int64) (*Enclave, Token) {
	t.Helper()
	e, tok, err := NewEnclave("test", limit)
	if err != nil {
		t.Fatalf("NewEnclave: %v", err)
	}
	return e, tok
}

func TestStoreLoadRoundTrip(t *testing.T) {
	e, tok := newTestEnclave(t, 1<<20)
	x := tensor.NewRNG(1).Normal(0, 1, 3, 4, 5)
	if err := e.Store("act", x); err != nil {
		t.Fatalf("Store: %v", err)
	}
	got, err := e.Load(tok, "act")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !got.AllClose(x, 0) {
		t.Fatal("payload corrupted crossing the world boundary")
	}
	if got.Dim(2) != 5 {
		t.Fatalf("shape lost: %v", got.Shape())
	}
}

func TestLoadRequiresOwnerToken(t *testing.T) {
	e, _ := newTestEnclave(t, 1<<20)
	if err := e.Store("secret", tensor.Ones(4)); err != nil {
		t.Fatal(err)
	}
	var forged Token
	if _, err := e.Load(forged, "secret"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("forged token should be rejected, got %v", err)
	}
}

func TestMemoryLimitEnforced(t *testing.T) {
	e, tok := newTestEnclave(t, 100) // 100 bytes = 25 floats
	if err := e.Store("a", tensor.Ones(20)); err != nil {
		t.Fatalf("first store should fit: %v", err)
	}
	if err := e.Store("b", tensor.Ones(10)); !errors.Is(err, ErrEnclaveFull) {
		t.Fatalf("want ErrEnclaveFull, got %v", err)
	}
	if e.Used() != 80 {
		t.Fatalf("used = %d, want 80", e.Used())
	}
	// Flushing frees space.
	if err := e.Flush(tok, "a"); err != nil {
		t.Fatal(err)
	}
	if err := e.Store("b", tensor.Ones(10)); err != nil {
		t.Fatalf("store after flush: %v", err)
	}
}

func TestDefaultLimitIs30MB(t *testing.T) {
	e, _ := newTestEnclave(t, 0)
	if e.Limit() != 30<<20 {
		t.Fatalf("default limit = %d, want 30 MiB (TrustZone budget)", e.Limit())
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	e, _ := newTestEnclave(t, 1<<20)
	if err := e.Store("k", tensor.Ones(2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Store("k", tensor.Ones(2)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey, got %v", err)
	}
}

func TestLoadMissingObject(t *testing.T) {
	e, tok := newTestEnclave(t, 1<<20)
	if _, err := e.Load(tok, "nope"); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("want ErrObjectNotFound, got %v", err)
	}
}

func TestFlushAll(t *testing.T) {
	e, tok := newTestEnclave(t, 1<<20)
	_ = e.Store("a", tensor.Ones(5))
	_ = e.Store("b", tensor.Ones(5))
	if err := e.FlushAll(tok); err != nil {
		t.Fatal(err)
	}
	if e.Used() != 0 || e.Has("a") {
		t.Fatal("FlushAll should empty the enclave")
	}
}

func TestMetricsAccounting(t *testing.T) {
	e, tok := newTestEnclave(t, 1<<20)
	x := tensor.Ones(100) // 400 bytes
	_ = e.Store("x", x)
	_, _ = e.Load(tok, "x")
	m := e.Metrics()
	if m.WorldSwitches != 2 {
		t.Fatalf("switches = %d, want 2", m.WorldSwitches)
	}
	if m.BytesIn != 400 || m.BytesOut != 400 {
		t.Fatalf("bytes in/out = %d/%d, want 400/400", m.BytesIn, m.BytesOut)
	}
	if m.SimulatedOverhead <= 0 {
		t.Fatal("overhead model should accumulate time")
	}
	if m.ObjectsStored != 1 || m.BytesStored != 400 {
		t.Fatalf("stored = %d objects / %d bytes", m.ObjectsStored, m.BytesStored)
	}
}

func TestIsolationBetweenEnclaves(t *testing.T) {
	e1, tok1 := newTestEnclave(t, 1<<20)
	e2, _ := newTestEnclave(t, 1<<20)
	_ = e1.Store("x", tensor.Ones(2))
	_ = e2.Store("x", tensor.Ones(2))
	// e2's content is not readable with e1's token.
	if _, err := e2.Load(tok1, "x"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("cross-enclave read should fail, got %v", err)
	}
}

func TestSecureChannelTamperDetected(t *testing.T) {
	ch, err := newSecureChannel()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ch.seal([]byte("gradient payload"))
	if err != nil {
		t.Fatal(err)
	}
	ct[len(ct)-1] ^= 0xFF
	if _, err := ch.open(ct); err == nil {
		t.Fatal("tampered ciphertext must not decrypt")
	}
}

func TestTensorCodecRoundTrip(t *testing.T) {
	x := tensor.NewRNG(2).Normal(0, 3, 2, 3, 4)
	got, err := decodeTensor(encodeTensor(x))
	if err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(x, 0) || got.Rank() != 3 {
		t.Fatal("codec round trip failed")
	}
}

func TestTensorCodecRejectsGarbage(t *testing.T) {
	if _, err := decodeTensor([]byte{1, 2}); err == nil {
		t.Fatal("short payload must fail")
	}
	if _, err := decodeTensor(make([]byte, 64)); err == nil {
		// rank 0 with 60 trailing bytes is inconsistent
		t.Fatal("inconsistent payload must fail")
	}
}

func TestAttestationFlow(t *testing.T) {
	e, _ := newTestEnclave(t, 1<<20)
	att, ver, err := NewAttestationPair(e)
	if err != nil {
		t.Fatal(err)
	}
	nonce, err := NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	report := att.Attest(nonce)
	if err := ver.Verify(report, nonce); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	// Replay with a different nonce fails.
	other, _ := NewNonce()
	if err := ver.Verify(report, other); !errors.Is(err, ErrAttestationFailed) {
		t.Fatalf("replayed report should fail, got %v", err)
	}
	// Forged measurement fails.
	report.Measurement[0] ^= 1
	if err := ver.Verify(report, nonce); !errors.Is(err, ErrAttestationFailed) {
		t.Fatalf("forged measurement should fail, got %v", err)
	}
}

func TestAttestationWrongEnclave(t *testing.T) {
	e1, _ := newTestEnclave(t, 1<<20)
	e2, tok2, err := NewEnclave("other", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	_ = tok2
	att2, _, err := NewAttestationPair(e2)
	if err != nil {
		t.Fatal(err)
	}
	_, ver1, err := NewAttestationPair(e1)
	if err != nil {
		t.Fatal(err)
	}
	nonce, _ := NewNonce()
	// e2's report (different key AND measurement) must not verify against
	// e1's verifier.
	if err := ver1.Verify(att2.Attest(nonce), nonce); err == nil {
		t.Fatal("cross-enclave attestation should fail")
	}
}
