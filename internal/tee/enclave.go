package tee

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"sync"
	"time"

	"pelta/internal/tensor"
)

// DefaultMemoryLimit is the TrustZone secure-memory budget used throughout
// the paper ("up to 30 MB in some scenarios", §I).
const DefaultMemoryLimit = 30 << 20

// Errors returned by enclave operations.
var (
	ErrEnclaveFull    = errors.New("tee: enclave memory limit exceeded")
	ErrUnauthorized   = errors.New("tee: caller does not hold the owner token")
	ErrObjectNotFound = errors.New("tee: no such object in enclave")
	ErrDuplicateKey   = errors.New("tee: object already stored under this key")
)

// Token is the capability required to read objects back out of the enclave.
// It is returned exactly once, by NewEnclave, to the defender.
type Token struct {
	secret [16]byte
}

// Metrics aggregates the §VI system-implication measurements.
type Metrics struct {
	WorldSwitches int64
	BytesIn       int64
	BytesOut      int64
	// SimulatedOverhead is the modelled time cost of the switches and
	// transfers (not slept, only accounted).
	SimulatedOverhead time.Duration
	ObjectsStored     int
	BytesStored       int64
}

// Enclave is a software TrustZone-like secure world.
type Enclave struct {
	mu      sync.Mutex
	name    string
	limit   int64
	used    int64
	objects map[string]*tensor.Tensor
	token   Token
	channel *secureChannel

	metrics Metrics
	// latency model: fixed cost per world switch plus per-byte transfer
	// cost. Defaults follow the microsecond-to-millisecond range the paper
	// cites for SGX/TrustZone transitions (§VI).
	switchCost  time.Duration
	perByteCost time.Duration
}

// NewEnclave creates an enclave with the given secure-memory limit in bytes
// and returns the owner token granting read access. limit <= 0 selects
// DefaultMemoryLimit.
func NewEnclave(name string, limit int64) (*Enclave, Token, error) {
	if limit <= 0 {
		limit = DefaultMemoryLimit
	}
	var tok Token
	if _, err := rand.Read(tok.secret[:]); err != nil {
		return nil, Token{}, fmt.Errorf("tee: generating owner token: %w", err)
	}
	ch, err := newSecureChannel()
	if err != nil {
		return nil, Token{}, fmt.Errorf("tee: establishing secure channel: %w", err)
	}
	e := &Enclave{
		name:        name,
		limit:       limit,
		objects:     make(map[string]*tensor.Tensor),
		token:       tok,
		channel:     ch,
		switchCost:  5 * time.Microsecond,
		perByteCost: time.Nanosecond / 4, // ~4 GB/s secure-channel bandwidth
	}
	return e, tok, nil
}

// Name returns the enclave identifier.
func (e *Enclave) Name() string { return e.name }

// Limit returns the secure-memory ceiling in bytes.
func (e *Enclave) Limit() int64 { return e.limit }

// Used returns the bytes currently stored.
func (e *Enclave) Used() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.used
}

// Free returns the remaining capacity in bytes.
func (e *Enclave) Free() int64 { return e.Limit() - e.Used() }

// accountTransfer meters one world switch moving n bytes.
func (e *Enclave) accountTransfer(n int64, in bool) {
	e.metrics.WorldSwitches++
	if in {
		e.metrics.BytesIn += n
	} else {
		e.metrics.BytesOut += n
	}
	e.metrics.SimulatedOverhead += e.switchCost + time.Duration(n)*e.perByteCost
}

// Store moves a tensor into the enclave. The payload crosses the world
// boundary through the AES-GCM secure channel (the encryption genuinely
// happens, so the §VI overhead benches measure real work). The enclave
// keeps its own copy; the caller should scrub normal-world references.
func (e *Enclave) Store(key string, t *tensor.Tensor) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.objects[key]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateKey, key)
	}
	n := t.Bytes()
	if e.used+n > e.limit {
		return fmt.Errorf("%w: storing %q (%d B) would exceed %d B", ErrEnclaveFull, key, n, e.limit)
	}
	// Encrypt in the normal world, decrypt inside the enclave.
	ct, err := e.channel.seal(encodeTensor(t))
	if err != nil {
		return fmt.Errorf("tee: sealing %q: %w", key, err)
	}
	pt, err := e.channel.open(ct)
	if err != nil {
		return fmt.Errorf("tee: opening %q inside enclave: %w", key, err)
	}
	stored, err := decodeTensor(pt)
	if err != nil {
		return fmt.Errorf("tee: decoding %q inside enclave: %w", key, err)
	}
	e.accountTransfer(n, true)
	e.objects[key] = stored
	e.used += n
	e.metrics.ObjectsStored++
	e.metrics.BytesStored += n
	return nil
}

// Load reads an object back. Only the owner token holder (the defender, or
// FL aggregation code pulling hidden gradients, §VI) may call it.
func (e *Enclave) Load(tok Token, key string) (*tensor.Tensor, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if subtle.ConstantTimeCompare(tok.secret[:], e.token.secret[:]) != 1 {
		return nil, ErrUnauthorized
	}
	t, ok := e.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrObjectNotFound, key)
	}
	e.accountTransfer(t.Bytes(), false)
	return t.Clone(), nil
}

// Accumulate adds src into the object stored at key, creating it when
// absent. The addition happens entirely inside the secure world — gradient
// accumulation over batches is enclave-resident computation (§VI), so no
// boundary crossing is metered; only the memory accounting moves.
func (e *Enclave) Accumulate(tok Token, key string, src *tensor.Tensor) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if subtle.ConstantTimeCompare(tok.secret[:], e.token.secret[:]) != 1 {
		return ErrUnauthorized
	}
	if dst, ok := e.objects[key]; ok {
		if dst.Len() != src.Len() {
			return fmt.Errorf("tee: Accumulate size mismatch for %q", key)
		}
		tensor.AddIn(dst, src)
		return nil
	}
	n := src.Bytes()
	if e.used+n > e.limit {
		return fmt.Errorf("%w: accumulating %q (%d B) would exceed %d B", ErrEnclaveFull, key, n, e.limit)
	}
	e.objects[key] = src.Clone()
	e.used += n
	e.metrics.ObjectsStored++
	e.metrics.BytesStored += n
	return nil
}

// Has reports whether an object exists, without revealing its content.
func (e *Enclave) Has(key string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.objects[key]
	return ok
}

// Flush removes an object, freeing secure memory (the paper's Table I
// assumes the worst case where nothing is flushed mid-pass).
func (e *Enclave) Flush(tok Token, key string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if subtle.ConstantTimeCompare(tok.secret[:], e.token.secret[:]) != 1 {
		return ErrUnauthorized
	}
	t, ok := e.objects[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrObjectNotFound, key)
	}
	e.used -= t.Bytes()
	delete(e.objects, key)
	return nil
}

// FlushAll removes every object.
func (e *Enclave) FlushAll(tok Token) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if subtle.ConstantTimeCompare(tok.secret[:], e.token.secret[:]) != 1 {
		return ErrUnauthorized
	}
	e.objects = make(map[string]*tensor.Tensor)
	e.used = 0
	return nil
}

// Metrics returns a snapshot of the §VI accounting.
func (e *Enclave) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.metrics
}

// Measurement returns the SHA-256 enclave identity used by attestation.
func (e *Enclave) Measurement() [32]byte {
	return sha256.Sum256([]byte("pelta-enclave-v1:" + e.name))
}
