package tee

import (
	"testing"
	"testing/quick"

	"pelta/internal/tensor"
)

// Property: any tensor survives the encode→seal→open→decode boundary
// crossing bit-exactly.
func TestSecureChannelRoundTripProperty(t *testing.T) {
	ch, err := newSecureChannel()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, dRaw, hRaw uint8) bool {
		d := int(dRaw%5) + 1
		h := int(hRaw%7) + 1
		x := tensor.NewRNG(seed).Normal(0, 3, d, h)
		sealed, err := ch.seal(encodeTensor(x))
		if err != nil {
			return false
		}
		plain, err := ch.open(sealed)
		if err != nil {
			return false
		}
		back, err := decodeTensor(plain)
		if err != nil {
			return false
		}
		return back.AllClose(x, 0) && back.Dim(0) == d && back.Dim(1) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: enclave usage accounting is exact under arbitrary
// store/flush interleavings.
func TestEnclaveUsageAccountingProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 12 {
			return true
		}
		e, tok, err := NewEnclave("prop", 1<<20)
		if err != nil {
			return false
		}
		var want int64
		for i, s := range sizes {
			n := int(s%32) + 1
			if err := e.Store(key(i), tensor.Ones(n)); err != nil {
				return false
			}
			want += int64(n) * 4
		}
		if e.Used() != want {
			return false
		}
		// Flush every other object.
		for i, s := range sizes {
			if i%2 == 0 {
				if err := e.Flush(tok, key(i)); err != nil {
					return false
				}
				want -= int64(int(s%32)+1) * 4
			}
		}
		return e.Used() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func key(i int) string { return string(rune('a' + i)) }
