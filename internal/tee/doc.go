// Package tee simulates an ARM TrustZone-style trusted execution
// environment: an enclave with a hard memory ceiling, a secure/normal-world
// boundary crossed only through an encrypted channel, remote attestation,
// and metering of world switches and bytes transferred (the §VI overheads).
//
// The simulation enforces the two properties Pelta relies on:
//
//  1. Confidentiality — objects stored in the enclave can only be read back
//     by the holder of the owner token issued at enclave creation. The
//     attacker-facing API in internal/core never receives this token.
//  2. Bounded memory — Store fails with ErrEnclaveFull once the configured
//     ceiling (30 MB by default, the TrustZone budget cited in the paper)
//     would be exceeded.
//
// Side-channel attacks are out of scope, exactly as in the paper's threat
// model (§III).
//
// An Enclave is safe for sequential use by its owning shielded model;
// metering (world switches, bytes) is per-enclave and deterministic for a
// fixed query sequence.
package tee
