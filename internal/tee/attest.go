package tee

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// AttestationReport proves an enclave's identity to a verifier (the FL
// server establishing that a client really runs the Pelta shield). It
// follows the WaTZ-style remote-attestation flow the paper cites [22]:
// nonce-challenged measurement signed by a device key.
type AttestationReport struct {
	Measurement [32]byte
	Nonce       [16]byte
	MAC         [32]byte
}

// ErrAttestationFailed reports a report that does not verify.
var ErrAttestationFailed = errors.New("tee: attestation verification failed")

// deviceKey stands in for the hardware-fused attestation key shared with
// the verifier through the manufacturer PKI.
type deviceKey [32]byte

// Attestor issues reports for an enclave.
type Attestor struct {
	enclave *Enclave
	key     deviceKey
}

// Verifier checks reports against an expected measurement.
type Verifier struct {
	expected [32]byte
	key      deviceKey
}

// NewAttestationPair returns an attestor for e and the matching verifier,
// sharing a freshly provisioned device key.
func NewAttestationPair(e *Enclave) (*Attestor, *Verifier, error) {
	var key deviceKey
	if _, err := rand.Read(key[:]); err != nil {
		return nil, nil, fmt.Errorf("tee: provisioning device key: %w", err)
	}
	return &Attestor{enclave: e, key: key},
		&Verifier{expected: e.Measurement(), key: key}, nil
}

// NewNonce returns a fresh challenge.
func NewNonce() ([16]byte, error) {
	var n [16]byte
	if _, err := rand.Read(n[:]); err != nil {
		return n, fmt.Errorf("tee: generating nonce: %w", err)
	}
	return n, nil
}

// Attest answers a challenge with a signed report.
func (a *Attestor) Attest(nonce [16]byte) AttestationReport {
	r := AttestationReport{Measurement: a.enclave.Measurement(), Nonce: nonce}
	r.MAC = a.mac(r)
	return r
}

func (a *Attestor) mac(r AttestationReport) [32]byte {
	h := hmac.New(sha256.New, a.key[:])
	h.Write(r.Measurement[:])
	h.Write(r.Nonce[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Verify checks the report's MAC, measurement and nonce.
func (v *Verifier) Verify(r AttestationReport, nonce [16]byte) error {
	if r.Nonce != nonce {
		return fmt.Errorf("%w: stale nonce", ErrAttestationFailed)
	}
	if r.Measurement != v.expected {
		return fmt.Errorf("%w: unexpected measurement", ErrAttestationFailed)
	}
	h := hmac.New(sha256.New, v.key[:])
	h.Write(r.Measurement[:])
	h.Write(r.Nonce[:])
	if !hmac.Equal(h.Sum(nil), r.MAC[:]) {
		return fmt.Errorf("%w: bad MAC", ErrAttestationFailed)
	}
	return nil
}
