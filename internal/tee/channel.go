package tee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"pelta/internal/tensor"
)

// secureChannel is the AES-GCM channel carrying payloads across the
// normal/secure world boundary. Establishing it models the key exchange a
// real TrustZone deployment performs after attestation.
type secureChannel struct {
	aead cipher.AEAD
}

func newSecureChannel() (*secureChannel, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("generating channel key: %w", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("creating cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("creating GCM: %w", err)
	}
	return &secureChannel{aead: aead}, nil
}

// seal encrypts a payload for the boundary crossing.
func (c *secureChannel) seal(plain []byte) ([]byte, error) {
	nonce := make([]byte, c.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("generating nonce: %w", err)
	}
	return c.aead.Seal(nonce, nonce, plain, nil), nil
}

// open decrypts a payload inside the receiving world.
func (c *secureChannel) open(sealed []byte) ([]byte, error) {
	ns := c.aead.NonceSize()
	if len(sealed) < ns {
		return nil, errors.New("sealed payload too short")
	}
	return c.aead.Open(nil, sealed[:ns], sealed[ns:], nil)
}

// encodeTensor serializes shape + payload as little-endian bytes.
func encodeTensor(t *tensor.Tensor) []byte {
	shape := t.Shape()
	buf := make([]byte, 4+4*len(shape)+4*t.Len())
	binary.LittleEndian.PutUint32(buf, uint32(len(shape)))
	off := 4
	for _, d := range shape {
		binary.LittleEndian.PutUint32(buf[off:], uint32(d))
		off += 4
	}
	for _, v := range t.Data() {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	return buf
}

// decodeTensor reverses encodeTensor.
func decodeTensor(buf []byte) (*tensor.Tensor, error) {
	if len(buf) < 4 {
		return nil, errors.New("tensor payload too short")
	}
	rank := int(binary.LittleEndian.Uint32(buf))
	off := 4
	if len(buf) < off+4*rank {
		return nil, errors.New("tensor payload truncated shape")
	}
	shape := make([]int, rank)
	n := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(buf[off:]))
		n *= shape[i]
		off += 4
	}
	if len(buf) != off+4*n {
		return nil, fmt.Errorf("tensor payload length %d does not match shape %v", len(buf), shape)
	}
	data := make([]float32, n)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return tensor.FromSlice(data, shape...), nil
}
