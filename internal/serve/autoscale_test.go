package serve

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// gatedService builds an autoscaled service over n gated stub replicas with
// a fake clock: workers block in Logits until the test opens the gates, so
// queue depth — the autoscaler's input — is fully test-controlled.
func gatedService(t *testing.T, n int, fc *fakeClock, as AutoscaleConfig, queueDepth int) (*Service, []*stubReplica) {
	t.Helper()
	reps := make([]*stubReplica, n)
	stubs := make([]*stubReplica, n)
	for i := range reps {
		reps[i] = newStubReplica()
		reps[i].gate = make(chan struct{})
		stubs[i] = reps[i]
	}
	s := NewService(stubPool(t, stubs...), Config{
		MaxBatch:   1, // batches of one never arm the MaxDelay timer
		QueueDepth: queueDepth,
		Clock:      fc,
		Autoscale:  &as,
	})
	return s, reps
}

// openGatesOnce returns a func that opens the replicas' gates exactly once
// however often it is called — deferred in gated tests so a Fatal before
// the drain cannot leave the deferred Close hanging on a blocked worker.
func openGatesOnce(reps ...*stubReplica) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			for _, r := range reps {
				close(r.gate)
			}
		})
	}
}

// routeOffered reads a route's offered counter — the race-proof signal
// that every launched Submit has stamped its state before a tick fires.
func routeOffered(s *Service, route string) uint64 {
	for _, r := range s.Metrics().Snapshot().Routes {
		if r.Route == route {
			return r.Offered
		}
	}
	return 0
}

// submitN fires n background submits and returns a WaitGroup that resolves
// when all of them have been answered (served or shed).
func submitN(s *Service, n int) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = s.Submit("t", sample(float32(i+1)), time.Time{})
		}(i)
	}
	return &wg
}

// TestAutoscalerDecisionLoop drives the decision function tick by tick with
// explicit timestamps (the hour-long Interval keeps the background loop
// dormant) and pins every policy edge: scale-up on queue growth, cooldown
// between actions, clamping at Max, and hysteretic scale-down after drain.
func TestAutoscalerDecisionLoop(t *testing.T) {
	fc := newFakeClock()
	s, reps := gatedService(t, 3, fc, AutoscaleConfig{
		Min: 1, Max: 3,
		Interval:   time.Hour, // loop dormant; ticks are explicit step calls
		Cooldown:   30 * time.Millisecond,
		DownStable: 2,
	}, 4)
	defer s.Close()
	open := openGatesOnce(reps...)
	defer open() // a Fatal before the drain must not hang the Close
	t0 := fc.Now()

	if got := s.LiveReplicas(); got != 1 {
		t.Fatalf("initial live replicas %d, want Min=1", got)
	}
	// Idle tick at Min: calm, but never below the lower bound.
	s.scaler.step(t0)
	if got := s.LiveReplicas(); got != 1 {
		t.Fatalf("idle tick moved live replicas to %d", got)
	}

	// Back the service up: 5 submits = 1 serving + 1 staged in the batcher
	// + 3 queued of QueueDepth 4 ⇒ 75% full, above UpQueueFrac. offered=5
	// plus the queue length pins the exact stable state before any tick.
	wg := submitN(s, 5)
	waitFor(t, func() bool {
		return routeOffered(s, "t") == 5 && reps[0].serving.Load() == 1 && len(s.queue) == 3
	})

	s.scaler.step(t0.Add(10 * time.Millisecond))
	waitFor(t, func() bool { return s.LiveReplicas() == 2 && reps[1].serving.Load() == 1 && len(s.queue) == 2 })

	// Still hot (2/4 = UpQueueFrac), but inside the 30ms cooldown.
	s.scaler.step(t0.Add(20 * time.Millisecond))
	if got := s.LiveReplicas(); got != 2 {
		t.Fatalf("scale-up ignored the cooldown: live %d", got)
	}

	s.scaler.step(t0.Add(45 * time.Millisecond))
	waitFor(t, func() bool { return s.LiveReplicas() == 3 && reps[2].serving.Load() == 1 && len(s.queue) == 1 })

	// Refill the queue and tick hot at Max: the bound must clamp.
	wg2 := submitN(s, 3)
	waitFor(t, func() bool { return routeOffered(s, "t") == 8 && len(s.queue) == 4 })
	s.scaler.step(t0.Add(90 * time.Millisecond))
	if got := s.LiveReplicas(); got != 3 {
		t.Fatalf("scale-up escaped Max: live %d", got)
	}

	// Drain completely, then require DownStable consecutive calm ticks
	// (and the cooldown) before each scale-down.
	open()
	wg.Wait()
	wg2.Wait()
	s.scaler.step(t0.Add(100 * time.Millisecond)) // calm 1
	if got := s.LiveReplicas(); got != 3 {
		t.Fatalf("scaled down after one calm tick: live %d", got)
	}
	s.scaler.step(t0.Add(110 * time.Millisecond)) // calm 2 ⇒ down
	if got := s.LiveReplicas(); got != 2 {
		t.Fatalf("no scale-down after %d calm ticks: live %d", 2, got)
	}
	s.scaler.step(t0.Add(120 * time.Millisecond)) // calm 1
	s.scaler.step(t0.Add(130 * time.Millisecond)) // calm 2, but cooldown runs to t+140
	if got := s.LiveReplicas(); got != 2 {
		t.Fatalf("scale-down ignored the cooldown: live %d", got)
	}
	s.scaler.step(t0.Add(145 * time.Millisecond)) // cooled ⇒ down to Min
	s.scaler.step(t0.Add(155 * time.Millisecond)) // at Min: clamped
	if got := s.LiveReplicas(); got != 1 {
		t.Fatalf("final live %d, want Min=1", got)
	}

	events := s.ScaleEvents()
	wantReasons := []string{"queue-depth", "queue-depth", "drain", "drain"}
	if len(events) != len(wantReasons) {
		t.Fatalf("events %+v, want %d", events, len(wantReasons))
	}
	for i, e := range events {
		if e.Reason != wantReasons[i] {
			t.Errorf("event %d reason %q, want %q", i, e.Reason, wantReasons[i])
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.ScaleUps != 2 || snap.ScaleDowns != 2 || snap.LiveReplicas != 1 {
		t.Fatalf("metrics ups/downs/live = %d/%d/%d, want 2/2/1",
			snap.ScaleUps, snap.ScaleDowns, snap.LiveReplicas)
	}
}

// TestAutoscalerP95Signal pins the latency trigger: an empty queue with a
// windowed p95 above the SLO still scales up, with the "p95-slo" reason.
func TestAutoscalerP95Signal(t *testing.T) {
	fc := newFakeClock()
	reps := []*stubReplica{newStubReplica(), newStubReplica()}
	s := NewService(stubPool(t, reps[0], reps[1]), Config{
		MaxBatch: 1, QueueDepth: 8, Clock: fc,
		Autoscale: &AutoscaleConfig{Min: 1, Max: 2, Interval: time.Hour, TargetP95: 50 * time.Millisecond},
	})
	defer s.Close()
	for i := 0; i < 6; i++ {
		s.metrics.Served("t", 100*time.Millisecond, 1)
	}
	s.scaler.step(fc.Now().Add(time.Millisecond))
	if got := s.LiveReplicas(); got != 2 {
		t.Fatalf("p95 breach did not scale up: live %d", got)
	}
	events := s.ScaleEvents()
	if len(events) != 1 || events[0].Reason != "p95-slo" {
		t.Fatalf("events %+v, want one p95-slo scale-up", events)
	}
	// TakeWindow drained the breach sample set, so the next tick sees a
	// fresh (empty) window and must not re-trigger on stale history.
	s.scaler.step(fc.Now().Add(2 * time.Millisecond))
	if got := len(s.ScaleEvents()); got != 1 {
		t.Fatalf("stale window re-triggered a scale action: %d events", got)
	}
}

// tickOnce advances the fake clock past one autoscale interval and waits
// until the loop has processed the tick (observable as the re-armed next
// timer), so consecutive ticks cannot race — the burst test's determinism
// rests on this sequencing.
func tickOnce(t *testing.T, fc *fakeClock, interval time.Duration) {
	t.Helper()
	waitFor(t, func() bool { return fc.pending() >= 1 })
	fc.Advance(interval)
	waitFor(t, func() bool { return fc.pending() >= 1 })
}

// runAutoscaleBurst plays one fully scripted burst trace against an
// autoscaled service under a fake clock and returns the scale-event log:
// 8 requests pile up behind gated replicas (the burst), the autoscaler
// climbs 1→4, the gates open (the drain), and the calm ticks walk it back
// 4→1. Every timestamp, queue length and decision is pinned, so two runs
// must produce bit-identical logs.
func runAutoscaleBurst(t *testing.T) []ScaleEvent {
	t.Helper()
	const interval = 10 * time.Millisecond
	fc := newFakeClock()
	s, reps := gatedService(t, 4, fc, AutoscaleConfig{
		Min: 1, Max: 4,
		Interval:   interval,
		Cooldown:   2 * interval,
		DownStable: 2,
	}, 8)
	defer s.Close()
	open := openGatesOnce(reps...)
	defer open() // a Fatal before the drain must not hang the Close

	// Burst: 8 requests = 1 serving + 1 staged + 6 queued (QueueDepth 8);
	// offered=8 plus the queue length pins the exact stable state.
	wg := submitN(s, 8)
	waitFor(t, func() bool {
		return routeOffered(s, "t") == 8 && reps[0].serving.Load() == 1 && len(s.queue) == 6
	})

	tickOnce(t, fc, interval) // t+10: 6/8 hot ⇒ 1→2
	waitFor(t, func() bool { return s.LiveReplicas() == 2 && reps[1].serving.Load() == 1 && len(s.queue) == 5 })
	tickOnce(t, fc, interval) // t+20: hot, cooldown holds
	tickOnce(t, fc, interval) // t+30: 5/8 hot, cooled ⇒ 2→3
	waitFor(t, func() bool { return s.LiveReplicas() == 3 && reps[2].serving.Load() == 1 && len(s.queue) == 4 })
	tickOnce(t, fc, interval) // t+40: 4/8 hot, cooldown holds
	tickOnce(t, fc, interval) // t+50: hot, cooled ⇒ 3→4
	waitFor(t, func() bool { return s.LiveReplicas() == 4 && reps[3].serving.Load() == 1 && len(s.queue) == 3 })
	tickOnce(t, fc, interval) // t+60: 3/8 neither hot nor calm

	// Drain: open every gate, let the burst clear.
	open()
	wg.Wait()

	tickOnce(t, fc, interval) // t+70: calm 1
	tickOnce(t, fc, interval) // t+80: calm 2 ⇒ 4→3
	waitFor(t, func() bool { return s.LiveReplicas() == 3 })
	tickOnce(t, fc, interval) // t+90: calm 1
	tickOnce(t, fc, interval) // t+100: calm 2 ⇒ 3→2
	tickOnce(t, fc, interval) // t+110: calm 1
	tickOnce(t, fc, interval) // t+120: calm 2 ⇒ 2→1
	waitFor(t, func() bool { return s.LiveReplicas() == 1 })
	tickOnce(t, fc, interval) // t+130: at Min, clamped

	snap := s.Metrics().Snapshot()
	if snap.ScaleUps != 3 || snap.ScaleDowns != 3 || snap.LiveReplicas != 1 {
		t.Fatalf("metrics ups/downs/live = %d/%d/%d, want 3/3/1",
			snap.ScaleUps, snap.ScaleDowns, snap.LiveReplicas)
	}
	return s.ScaleEvents()
}

// TestAutoscaleBurstDeterministic is the acceptance test for the control
// plane: under a fake clock the autoscaler scales 1→4 replicas during a
// burst and back down to 1 after the drain, and the full scale-event log —
// timestamps, bounds, reasons — is bit-identical across two runs.
func TestAutoscaleBurstDeterministic(t *testing.T) {
	first := runAutoscaleBurst(t)

	base := time.Unix(1000, 0)
	want := []ScaleEvent{
		{At: base.Add(10 * time.Millisecond), From: 1, To: 2, Reason: "queue-depth"},
		{At: base.Add(30 * time.Millisecond), From: 2, To: 3, Reason: "queue-depth"},
		{At: base.Add(50 * time.Millisecond), From: 3, To: 4, Reason: "queue-depth"},
		{At: base.Add(80 * time.Millisecond), From: 4, To: 3, Reason: "drain"},
		{At: base.Add(100 * time.Millisecond), From: 3, To: 2, Reason: "drain"},
		{At: base.Add(120 * time.Millisecond), From: 2, To: 1, Reason: "drain"},
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("scale events\n got %+v\nwant %+v", first, want)
	}

	second := runAutoscaleBurst(t)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("burst trace not reproducible:\n run1 %+v\n run2 %+v", first, second)
	}
}
