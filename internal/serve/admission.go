package serve

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// AdmissionConfig enables weighted-fair admission control: every route owns
// a token bucket, and a request is admitted to the shared queue only if its
// route's bucket has a token. A flood on one route (say, "adv" probe
// traffic) drains only that route's bucket, so it sheds at its own rate
// limit instead of filling the shared queue and starving the other routes.
type AdmissionConfig struct {
	// Rate is the total sustained admission rate in requests/second,
	// divided across routes by weight. Rate <= 0 disables admission
	// control entirely (every request goes straight to the shared queue —
	// the pre-control-plane behavior).
	Rate float64
	// Burst sizes each bucket in seconds of its route's sustained rate
	// (default 1s): a route idle for Burst can absorb that much traffic at
	// once before shedding.
	Burst time.Duration
	// Weights maps route names to relative shares. A route's sustained
	// rate is Rate·w/ΣW, where ΣW sums the configured weights; a route not
	// listed here gets weight 1 against the same ΣW. Nil or empty weights
	// give every route an independent bucket at the full Rate.
	Weights map[string]float64
}

// withDefaults fills unset knobs.
func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Burst <= 0 {
		c.Burst = time.Second
	}
	return c
}

// bucket is one route's token bucket; refill is lazy on the service clock,
// so admission decisions are deterministic under a fake clock.
type bucket struct {
	tokens float64
	cap    float64
	rate   float64 // tokens per second
	last   time.Time
}

// admitter holds the per-route buckets.
type admitter struct {
	mu      sync.Mutex
	cfg     AdmissionConfig
	sumW    float64
	buckets map[string]*bucket
}

func newAdmitter(cfg AdmissionConfig) *admitter {
	a := &admitter{cfg: cfg.withDefaults(), buckets: make(map[string]*bucket)}
	for _, w := range a.cfg.Weights {
		if w > 0 {
			a.sumW += w
		}
	}
	if a.sumW <= 0 {
		a.sumW = 1
	}
	return a
}

// allow consumes one token from route's bucket at time now, creating the
// bucket full on first sight of the route. It reports false when the bucket
// is empty — the caller sheds with ErrOverloaded.
func (a *admitter) allow(route string, now time.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[route]
	if b == nil {
		w := a.cfg.Weights[route]
		if w <= 0 {
			w = 1
		}
		rate := a.cfg.Rate * w / a.sumW
		capacity := rate * a.cfg.Burst.Seconds()
		if capacity < 1 {
			capacity = 1
		}
		b = &bucket{tokens: capacity, cap: capacity, rate: rate, last: now}
		a.buckets[route] = b
	}
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.cap {
			b.tokens = b.cap
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// ParseWeights parses a route-weight spec of the form
// "benign=8,adv=1,query=4" into an AdmissionConfig.Weights map.
func ParseWeights(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	w := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("serve: route weight %q, want route=weight", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("serve: route weight %q needs a positive number", part)
		}
		w[kv[0]] = v
	}
	return w, nil
}
