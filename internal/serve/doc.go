// Package serve turns a Pelta-shielded model into a multi-client inference
// service — the serving layer of the ROADMAP's traffic-scale north star.
//
// Key types:
//
//   - Replica / ReplicaPool — N independent sequential inference engines
//     behind one handle. A shielded replica owns its own enclave, model
//     copy and pooled graph arena (core.ShieldedModel is sequential-only);
//     NewShieldedPool and NewClearPool build the two flavors.
//   - Service — the micro-batching scheduler: Submit enqueues one sample,
//     a batcher coalesces queued requests into tensor batches under a
//     MaxBatch/MaxDelay policy, and one worker goroutine per live replica
//     runs batches and fans logit rows back to per-request futures.
//   - Config — batching policy plus admission control: the queue is
//     bounded (QueueDepth) and requests are shed with the typed
//     ErrOverloaded when the queue is full or a deadline expires before
//     service, so overload degrades predictably instead of growing an
//     unbounded backlog. Malformed samples (wrong shape/rank) are refused
//     with a per-route Rejected counter.
//
// The adaptive control plane (both knobs off by default — the service then
// behaves exactly like the statically provisioned scheduler):
//
//   - AutoscaleConfig — the replica autoscaler: a decision loop on the
//     service clock grows/shrinks the live worker set between Min and Max,
//     scaling up on queue depth or a windowed p95 above TargetP95 and down
//     only after DownStable consecutive calm ticks (hysteresis), with a
//     Cooldown between any two actions so the loop cannot flap. Decisions
//     land in Service.ScaleEvents and the Metrics gauges (live_replicas,
//     scale_ups, scale_downs), so /metrics shows why the fleet moved.
//   - AdmissionConfig — weighted-fair admission: every route owns a token
//     bucket refilled at Rate·w/ΣW, so an "adv" probe flood sheds at its
//     own bucket instead of filling the shared queue and starving "benign"
//     traffic. Refill is lazy on the service clock (fake-clock testable).
//   - Metrics — the serving metrics core: per-route counters (offered,
//     served, shed, rejected, errors, mean batch) and p50/p95/p99 latency via the
//     P² streaming quantile sketch (P2Quantile), validated in tests
//     against the exact eval.Quantiles on the same samples.
//   - RunLoad / RunLoadPhases — open-loop load generators over a mixed
//     benign + adversarial traffic pool: RunLoad fires a fixed-rate run,
//     RunLoadPhases a LoadPhase trace (rate × duration × adv-frac steps —
//     ramps, bursts, diurnal shapes) with per-phase, per-route accounting.
//     All pacing, deadline stamps and latency measurements read the
//     service clock.
//   - NewHandler — the HTTP surface (NDJSON /query, /metrics, /healthz)
//     used by cmd/peltaserve. /query summarizes its line outcomes in
//     X-Pelta-Served/-Shed/-Errors headers and answers 503 when no line
//     at all was served, so load clients detect total overload without
//     parsing the body. The X-Pelta-Client header names the probe-detector
//     client identity (falling back to the remote host). NewHandlerWith
//     adds HandlerOptions — currently Pprof, mounting net/http/pprof
//     under /debug/pprof/.
//
// The tracing and telemetry layer (Config.Trace, off by default — the
// untraced Submit path allocates nothing for it):
//
//   - TraceConfig — per-request span tracing on the service clock: every
//     sampled request carries an obs.SpanRecord whose offsets bracket the
//     detect lookup, admission wait, queue residency, batch assembly and
//     replica inference, with per-kernel attribution (matmul / conv /
//     attention nanoseconds via the tensor kernel hook) diffed around the
//     forward. Sample sets the traced fraction; anomalies — shed,
//     rejected, errored, deadline-missed or detector-flagged requests —
//     are always traced once tracing is on. Records land in a bounded
//     ring (Cap, default 4096) drained by Tracer().Records(), streamed as
//     NDJSON on GET /trace, and summarized by eval.SummarizeTrace.
//   - Registry — the unified obs.Registry behind GET /metrics?format=prom
//     (Prometheus text v0) and the JSON exposition: serve counters and
//     latency quantiles, detector stats, autoscaler events, kernel-stage
//     totals and per-replica TEE gauges (enclave used/limit bytes, world
//     switches, shield overhead) from one Gather.
//
// The stateful probe detector (Config.Detect, off by default — client-less
// Submit traffic bypasses it entirely, so static serving behavior is
// preserved byte for byte):
//
//   - DetectConfig — embeds detect.Config (per-client fingerprint rings,
//     K-th-NN near-duplicate matching, m-of-w flagging on the service
//     clock) and adds the admission Action for flagged clients: DetectLog
//     observes only (Result.Flagged plus metrics), DetectDeprioritize
//     charges flagged queries to the FlaggedRoute admission bucket so
//     probe streams compete for a starvable share, DetectShed rejects
//     them with ErrFlagged (wrapping ErrOverloaded). SubmitFrom is the
//     detected submission path; the detector's verdicts land in the
//     per-route metrics (probed, probe_hits, flagged_queries, detect_shed
//     — the last counted into shed, preserving the requests = served +
//     shed + rejected + errors invariant) and the flag_events total.
//   - QueryStream / RunDetectLoad — the detection loadgen: labeled
//     per-client query streams (benign callers vs recorded attack runs)
//     replayed concurrently across streams but strictly in order within
//     each, yielding per-query flag verdicts a DetectReport scores as
//     detection rate vs benign FPR (eval.SummarizeDetect renders the
//     per-family table).
//
// Concurrency: Submit is safe from any number of goroutines; replicas are
// never queried concurrently (one worker each, and a scale-up never reuses
// a replica whose previous worker is still draining); Metrics is
// mutex-guarded. Determinism: batched forwards are row-independent, so a
// sample's logits are bit-identical whether it is served in a batch of 1
// or MaxBatch (the fl checkpoint round-trip test pins this), and the
// coalescing policy is deterministic under the injectable Clock. The whole
// time surface — batching, deadline shedding, admission buckets, autoscale
// ticks, loadgen pacing, HTTP latencies, metrics uptime — reads one Clock,
// so every layer agrees on "now" under a fake clock.
package serve
