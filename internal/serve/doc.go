// Package serve turns a Pelta-shielded model into a multi-client inference
// service — the serving layer of the ROADMAP's traffic-scale north star.
//
// Key types:
//
//   - Replica / ReplicaPool — N independent sequential inference engines
//     behind one handle. A shielded replica owns its own enclave, model
//     copy and pooled graph arena (core.ShieldedModel is sequential-only);
//     NewShieldedPool and NewClearPool build the two flavors.
//   - Service — the micro-batching scheduler: Submit enqueues one sample,
//     a batcher coalesces queued requests into tensor batches under a
//     MaxBatch/MaxDelay policy, and one worker goroutine per replica runs
//     batches and fans logit rows back to per-request futures.
//   - Config — batching policy plus admission control: the queue is
//     bounded (QueueDepth) and requests are shed with the typed
//     ErrOverloaded when the queue is full or a deadline expires before
//     service, so overload degrades predictably instead of growing an
//     unbounded backlog.
//   - Metrics — the serving metrics core: per-route counters (served,
//     shed, errors, mean batch) and p50/p95/p99 latency via the P²
//     streaming quantile sketch (P2Quantile), validated in tests against
//     the exact eval.Quantiles on the same samples.
//   - RunLoad — an open-loop load generator over a mixed benign +
//     adversarial traffic pool, reporting serving accuracy, robust
//     accuracy under attack traffic, shed counts and latency samples.
//   - NewHandler — the HTTP surface (NDJSON /query, /metrics, /healthz)
//     used by cmd/peltaserve. /query summarizes its line outcomes in
//     X-Pelta-Served/-Shed/-Errors headers and answers 503 when no line
//     at all was served, so load clients detect total overload without
//     parsing the body.
//
// Concurrency: Submit is safe from any number of goroutines; replicas are
// never queried concurrently (one worker each); Metrics is mutex-guarded.
// Determinism: batched forwards are row-independent, so a sample's logits
// are bit-identical whether it is served in a batch of 1 or MaxBatch (the
// fl checkpoint round-trip test pins this), and the coalescing policy is
// deterministic under the injectable Clock. The whole time surface —
// batching, deadline shedding, HTTP latencies, metrics uptime — reads one
// Clock, so every layer agrees on "now" under a fake clock.
package serve
