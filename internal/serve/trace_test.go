package serve

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pelta/internal/obs"
	"pelta/internal/tensor"
)

// TestKernelOpIndicesAligned pins the implicit contract that tensor's
// KernelOp values and obs's kernel indices agree (the service forwards
// hook callbacks with a plain int conversion).
func TestKernelOpIndicesAligned(t *testing.T) {
	if int(tensor.KernelMatMul) != obs.KernelMatMul ||
		int(tensor.KernelConv) != obs.KernelConv ||
		int(tensor.KernelAttention) != obs.KernelAttention {
		t.Fatal("tensor.KernelOp values diverged from obs kernel indices")
	}
}

// TestTraceServedSpanChain pins the span chain of a served request under a
// fake clock: ordered offsets, exact stage partition, and a deterministic
// end-to-end latency equal to the clock advance.
func TestTraceServedSpanChain(t *testing.T) {
	fc := newFakeClock()
	rep := newStubReplica()
	rep.gate = make(chan struct{})
	s := NewService(stubPool(t, rep), Config{
		MaxBatch: 1, QueueDepth: 4, Clock: fc,
		Trace: &TraceConfig{Sample: 1.0},
	})
	defer s.Close()

	done := make(chan error, 1)
	go func() {
		_, err := s.Submit("benign", sample(1), time.Time{})
		done <- err
	}()
	waitFor(t, func() bool { return rep.serving.Load() == 1 })
	fc.Advance(3 * time.Millisecond)
	rep.gate <- struct{}{}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	recs := s.Tracer().Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Outcome != obs.OutcomeServed || r.Route != "benign" || r.Batch != 1 {
		t.Fatalf("record %+v", r)
	}
	chain := []int64{0, r.Enqueued, r.Pickup, r.InferStart, r.InferEnd}
	for i := 1; i < len(chain); i++ {
		if chain[i] == obs.NoOffset || chain[i] < chain[i-1] {
			t.Fatalf("chain not monotonic: %v", chain)
		}
	}
	if r.DetectStart != obs.NoOffset || r.DetectEnd != obs.NoOffset {
		t.Fatalf("clientless submit must not reach the detector: %+v", r)
	}
	var sum int64
	for _, d := range r.Stages() {
		if d < 0 {
			t.Fatalf("negative stage in %v", r.Stages())
		}
		sum += d
	}
	if sum != r.End() {
		t.Fatalf("stage sum %d != end-to-end %d", sum, r.End())
	}
	// All clock movement happened while the request sat gated in the
	// replica: the whole 3ms lands in the infer stage.
	if got := r.Stages()[4]; got != (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("infer stage %dns, want 3ms", got)
	}
}

// TestTraceAnomaliesAlwaysKept pins the always-on anomaly rule: with
// Sample 0 nothing on the happy path is traced, but shed requests are.
func TestTraceAnomaliesAlwaysKept(t *testing.T) {
	rep := newStubReplica()
	rep.gate = make(chan struct{})
	s := NewService(stubPool(t, rep), Config{
		MaxBatch: 1, QueueDepth: 1,
		Trace: &TraceConfig{Sample: 0},
	})

	var wg sync.WaitGroup
	var shed int
	var mu sync.Mutex
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit("t", sample(1), time.Time{})
			if errors.Is(err, ErrOverloaded) {
				mu.Lock()
				shed++
				mu.Unlock()
			}
		}()
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return shed >= 1 })
	close(rep.gate)
	wg.Wait()
	s.Close()

	recs := s.Tracer().Records()
	if len(recs) == 0 {
		t.Fatal("no anomaly records although requests were shed")
	}
	for _, r := range recs {
		if r.Outcome == obs.OutcomeServed {
			t.Fatalf("served request traced at Sample 0: %+v", r)
		}
		if r.Outcome != obs.OutcomeShedQueueFull {
			t.Fatalf("unexpected outcome %q", r.Outcome)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(recs) != shed {
		t.Fatalf("%d shed but %d anomaly records", shed, len(recs))
	}
}

// matmulReplica runs a real matmul per batch so the kernel-boundary hooks
// fire inside the replica call.
type matmulReplica struct {
	w *tensor.Tensor
}

func newMatmulReplica() *matmulReplica {
	w := tensor.New(4, 3)
	w.Fill(0.5)
	return &matmulReplica{w: w}
}

func (r *matmulReplica) Classes() int      { return 3 }
func (r *matmulReplica) InputShape() []int { return []int{1, 2, 2} }

func (r *matmulReplica) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	b := x.Dim(0)
	flat := x.Reshape(b, 4)
	return tensor.MatMul(flat, r.w), nil
}

// TestTraceKernelAttribution pins the batch-level kernel time fields: on
// the real clock a replica that multiplies matrices must yield a span with
// positive matmul time, and the service registry must expose the same
// totals.
func TestTraceKernelAttribution(t *testing.T) {
	p, err := NewReplicaPool(1, func(int) (Replica, error) { return newMatmulReplica(), nil })
	if err != nil {
		t.Fatal(err)
	}
	s := NewService(p, Config{MaxBatch: 1, QueueDepth: 4, Trace: &TraceConfig{Sample: 1.0}})
	defer s.Close()

	if _, err := s.Submit("t", sample(1), time.Time{}); err != nil {
		t.Fatal(err)
	}
	recs := s.Tracer().Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].MatMulNS <= 0 {
		t.Fatalf("span matmul time %dns, want > 0", recs[0].MatMulNS)
	}
	if recs[0].ConvNS != 0 || recs[0].AttnNS != 0 {
		t.Fatalf("unexpected conv/attention time: %+v", recs[0])
	}
	if ks := s.KernelStats(); ks.NS(obs.KernelMatMul) < recs[0].MatMulNS || ks.Calls(obs.KernelMatMul) == 0 {
		t.Fatal("kernel totals inconsistent with span attribution")
	}
}

// TestPromExposition drives the full /metrics?format=prom surface over a
// shielded pool and asserts the acceptance-criterion coverage: serve,
// detect, autoscaler, and tee samples in valid exposition text.
func TestPromExposition(t *testing.T) {
	fc := newFakeClock()
	rep := newStubReplica()
	s := NewService(stubPool(t, rep), Config{
		MaxBatch: 1, QueueDepth: 8, Clock: fc,
		Detect: &DetectConfig{},
	})
	defer s.Close()
	if _, err := s.SubmitFrom("benign", "alice", sample(1), time.Time{}); err != nil {
		t.Fatal(err)
	}

	h := NewHandler(s)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics?format=prom", nil))
	if rw.Code != 200 {
		t.Fatalf("status %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rw.Body.String()
	for _, want := range []string{
		"# TYPE pelta_served_total counter",
		`pelta_served_total{route="benign"} 1`,
		"# TYPE pelta_live_replicas gauge",
		"pelta_scale_ups_total",
		"pelta_detect_clients 1",
		"pelta_detect_observed_total 1",
		`pelta_latency_ms{quantile="0.95",route="benign"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

// TestTraceEndpoint pins the NDJSON trace stream and the 404 contract of
// an untraced service.
func TestTraceEndpoint(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{MaxBatch: 1, QueueDepth: 4, Trace: &TraceConfig{Sample: 1.0}})
	defer s.Close()
	if _, err := s.Submit("t", sample(1), time.Time{}); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(s)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/trace", nil))
	if rw.Code != 200 {
		t.Fatalf("status %d", rw.Code)
	}
	if !strings.Contains(rw.Body.String(), `"outcome":"served"`) {
		t.Fatalf("trace body missing span: %s", rw.Body.String())
	}

	// Without Config.Trace the endpoint 404s instead of streaming nothing.
	s2 := NewService(stubPool(t, newStubReplica()), Config{MaxBatch: 1})
	defer s2.Close()
	rw2 := httptest.NewRecorder()
	NewHandler(s2).ServeHTTP(rw2, httptest.NewRequest("GET", "/trace", nil))
	if rw2.Code != 404 {
		t.Fatalf("untraced /trace status %d, want 404", rw2.Code)
	}
}

// TestSubmitUntracedAllocs is the acceptance guard: tracing disabled must
// add zero allocations to the Submit hot path versus the pre-obs baseline
// of 17 allocs per served request (measured before this layer existed and
// pinned by BenchmarkSubmitUntraced).
func TestSubmitUntracedAllocs(t *testing.T) {
	const baselineAllocs = 17
	p, err := NewReplicaPool(1, func(int) (Replica, error) { return newFixedReplica(1), nil })
	if err != nil {
		t.Fatal(err)
	}
	s := NewService(p, Config{MaxBatch: 1, QueueDepth: 16})
	defer s.Close()
	x := sample(1)
	if _, err := s.Submit("bench", x, time.Time{}); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := s.Submit("bench", x, time.Time{}); err != nil {
			panic(err)
		}
	})
	if got > baselineAllocs {
		t.Fatalf("untraced Submit does %.1f allocs/op, baseline is %d — tracing must stay off the disabled hot path", got, baselineAllocs)
	}
}

// TestMetricsSnapshotRace hammers Snapshot and the Prometheus collector
// against concurrent observers — the -race probe for the single-lock
// snapshot guarantee.
func TestMetricsSnapshotRace(t *testing.T) {
	m := NewMetrics()
	m.EnableWindow()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			route := fmt.Sprintf("r%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Offered(route)
				switch i % 5 {
				case 0:
					m.Shed(route)
				case 1:
					m.Rejected(route)
				case 2:
					m.Error(route)
				default:
					m.Served(route, time.Duration(i)*time.Microsecond, 1+i%4)
				}
				m.Probe(route, i%3 == 0, i%7 == 0, i%11 == 0)
			}
		}(w)
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		snap := m.Snapshot()
		for _, r := range snap.Routes {
			if r.Requests != r.Served+r.Shed+r.Rejected+r.Errors {
				t.Errorf("inconsistent snapshot: %+v", r)
			}
		}
		m.Collect()
		m.TakeWindow()
	}
	close(stop)
	wg.Wait()
}
