package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pelta/internal/tensor"
)

// fakeClock is a manually advanced Clock: timers fire only when the test
// calls Advance past them, which makes the coalescing policy deterministic.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	fc   *fakeClock
	c    chan time.Time
	at   time.Time
	done bool
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{fc: f, c: make(chan time.Time, 1), at: f.now.Add(d)}
	f.timers = append(f.timers, t)
	return t
}

// Advance moves the clock and fires every due timer.
func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	for _, t := range f.timers {
		if !t.done && !t.at.After(f.now) {
			t.done = true
			t.c <- f.now
		}
	}
}

// pending counts armed, unfired timers.
func (f *fakeClock) pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, t := range f.timers {
		if !t.done {
			n++
		}
	}
	return n
}

func (t *fakeTimer) C() <-chan time.Time { return t.c }

func (t *fakeTimer) Stop() bool {
	t.fc.mu.Lock()
	defer t.fc.mu.Unlock()
	if t.done {
		return false
	}
	t.done = true
	return true
}

// stubReplica is a deterministic fake: logits[i][j] = (j+1)·sum(row i).
// When gate is non-nil every batch blocks until the test sends a token,
// simulating a slow replica that backs the service up.
type stubReplica struct {
	classes int
	shape   []int
	gate    chan struct{}
	serving atomic.Int32
	mu      sync.Mutex
	batches []int
	out     *tensor.Tensor
}

func newStubReplica() *stubReplica {
	return &stubReplica{classes: 3, shape: []int{1, 2, 2}}
}

func (r *stubReplica) Classes() int      { return r.classes }
func (r *stubReplica) InputShape() []int { return r.shape }

func (r *stubReplica) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	r.serving.Add(1)
	if r.gate != nil {
		<-r.gate
	}
	b := x.Dim(0)
	r.mu.Lock()
	r.batches = append(r.batches, b)
	r.mu.Unlock()
	r.out = tensor.New(b, r.classes)
	for i := 0; i < b; i++ {
		s := float64(0)
		for _, v := range x.Slice(i).Data() {
			s += float64(v)
		}
		for j := 0; j < r.classes; j++ {
			r.out.Set(float32(s)*float32(j+1), i, j)
		}
	}
	return r.out, nil
}

func stubPool(t testing.TB, reps ...*stubReplica) *ReplicaPool {
	t.Helper()
	p, err := NewReplicaPool(len(reps), func(i int) (Replica, error) { return reps[i], nil })
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sample(v float32) *tensor.Tensor {
	x := tensor.New(1, 2, 2)
	x.Fill(v)
	return x
}

// TestCoalesceFullBatchDeterministic pins the batching policy under a fake
// clock: with the delay timer frozen, the only flush trigger is a full
// batch, so four concurrent submits must ride one batch of four.
func TestCoalesceFullBatchDeterministic(t *testing.T) {
	fc := newFakeClock()
	rep := newStubReplica()
	s := NewService(stubPool(t, rep), Config{MaxBatch: 4, QueueDepth: 16, Clock: fc})
	defer s.Close()

	var wg sync.WaitGroup
	results := make([]*Result, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit("t", sample(float32(i+1)), time.Time{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if results[i].BatchSize != 4 {
			t.Fatalf("submit %d rode batch of %d, want 4 (policy must coalesce)", i, results[i].BatchSize)
		}
		// logits[j] = (j+1)·sum = (j+1)·4·(i+1); argmax is the last class.
		want := float32(4 * (i + 1) * 3)
		if got := results[i].Logits.At(2); got != want {
			t.Fatalf("submit %d logits[2] = %v, want %v", i, got, want)
		}
		if results[i].Class != 2 {
			t.Fatalf("submit %d class = %d, want 2", i, results[i].Class)
		}
	}
	if got := rep.batches; len(got) != 1 || got[0] != 4 {
		t.Fatalf("replica saw batches %v, want [4]", got)
	}
}

// TestPartialBatchFlushesOnMaxDelay pins the other edge of the policy: a
// lone request flushes exactly when the clock passes MaxDelay.
func TestPartialBatchFlushesOnMaxDelay(t *testing.T) {
	fc := newFakeClock()
	rep := newStubReplica()
	s := NewService(stubPool(t, rep), Config{MaxBatch: 4, MaxDelay: 5 * time.Millisecond, QueueDepth: 16, Clock: fc})
	defer s.Close()

	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = s.Submit("t", sample(1), time.Time{})
	}()

	// The batcher must arm the delay timer for the partial batch...
	waitFor(t, func() bool { return fc.pending() > 0 })
	select {
	case <-done:
		t.Fatal("partial batch flushed before MaxDelay")
	case <-time.After(20 * time.Millisecond):
	}
	// ...and flush once the clock passes it.
	fc.Advance(5 * time.Millisecond)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize != 1 {
		t.Fatalf("batch size %d, want 1", res.BatchSize)
	}
}

// TestQueueFullShedsWithErrOverloaded backs the service up behind a blocked
// replica and checks that admission control rejects promptly with the typed
// error instead of hanging.
func TestQueueFullShedsWithErrOverloaded(t *testing.T) {
	rep := newStubReplica()
	rep.gate = make(chan struct{})
	s := NewService(stubPool(t, rep), Config{MaxBatch: 1, QueueDepth: 1})

	var admitted, shed atomic.Int32
	var wg sync.WaitGroup
	var shedErr atomic.Value
	// With the replica blocked, at most 1 (in service) + 1 (batched) +
	// QueueDepth requests can ever be admitted, so launching 10 guarantees
	// sheds; stop early once one is observed.
	for i := 0; i < 10 && shed.Load() == 0; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			_, err := s.Submit("t", sample(1), time.Time{})
			switch {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
				shedErr.Store(err)
				if d := time.Since(start); d > 5*time.Second {
					t.Errorf("shed took %v — must reject immediately, not hang", d)
				}
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
		time.Sleep(2 * time.Millisecond)
	}
	// A shed must happen while the replica is still blocked (10 launches
	// exceed the pipeline capacity of 3); only then free the replica so
	// the admitted requests complete.
	waitFor(t, func() bool { return shed.Load() >= 1 })
	close(rep.gate)
	wg.Wait()
	s.Close()

	if shed.Load() < 1 {
		t.Fatal("no request was shed although the queue bound was exceeded")
	}
	if admitted.Load() < 1 {
		t.Fatal("no request was admitted")
	}
	if err, _ := shedErr.Load().(error); err == nil || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed error %v is not ErrOverloaded", err)
	}
}

// TestDeadlineShedBeforeService pins deadline-aware shedding: a request
// whose deadline expires while it waits behind a slow batch is answered
// with ErrOverloaded, not served late.
func TestDeadlineShedBeforeService(t *testing.T) {
	fc := newFakeClock()
	rep := newStubReplica()
	rep.gate = make(chan struct{})
	s := NewService(stubPool(t, rep), Config{MaxBatch: 1, QueueDepth: 4, Clock: fc})
	defer s.Close()

	aErr := make(chan error, 1)
	go func() {
		_, err := s.Submit("t", sample(1), time.Time{})
		aErr <- err
	}()
	// Wait until A occupies the replica.
	waitFor(t, func() bool { return rep.serving.Load() == 1 })

	// Capture B's deadline before the clock moves so it is expired by the
	// time a replica is free, regardless of goroutine interleaving.
	deadlineB := fc.Now().Add(10 * time.Millisecond)
	bErr := make(chan error, 1)
	go func() {
		_, err := s.Submit("t", sample(2), deadlineB)
		bErr <- err
	}()
	// B is batched behind A (MaxBatch=1 ⇒ no timer involved). Let its
	// deadline lapse, then free the replica.
	waitFor(t, func() bool { return len(s.queue) == 0 })
	fc.Advance(50 * time.Millisecond)
	rep.gate <- struct{}{}

	if err := <-aErr; err != nil {
		t.Fatalf("A: %v", err)
	}
	err := <-bErr
	if err == nil {
		t.Fatal("B was served although its deadline had passed")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("B error %v is not ErrOverloaded", err)
	}
	snap := s.Metrics().Snapshot()
	if len(snap.Routes) != 1 || snap.Routes[0].Shed != 1 || snap.Routes[0].Served != 1 {
		t.Fatalf("metrics %+v, want served=1 shed=1", snap.Routes)
	}
}

// TestSubmitAfterClose pins the shutdown contract.
func TestSubmitAfterClose(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Submit("t", sample(1), time.Time{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	// ErrClosed wins over deadline shedding: a caller must see "stop",
	// not "back off and retry", on a closed service.
	past := time.Now().Add(-time.Second)
	if _, err := s.Submit("t", sample(1), past); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close with expired deadline = %v, want ErrClosed", err)
	}
}

// TestSubmitRejectsWrongShape pins input validation.
func TestSubmitRejectsWrongShape(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{})
	defer s.Close()
	if _, err := s.Submit("t", tensor.New(2, 2), time.Time{}); err == nil {
		t.Fatal("wrong-shape sample must be rejected")
	}
	// A [1,C,H,W] batch of one is accepted and squeezed.
	if _, err := s.Submit("t", tensor.New(1, 1, 2, 2), time.Time{}); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaPoolConcurrency hammers a multi-replica service from many
// goroutines; run under -race this is the scheduler's data-race probe.
func TestReplicaPoolConcurrency(t *testing.T) {
	reps := []*stubReplica{newStubReplica(), newStubReplica(), newStubReplica(), newStubReplica()}
	s := NewService(stubPool(t, reps[0], reps[1], reps[2], reps[3]),
		Config{MaxBatch: 4, MaxDelay: 200 * time.Microsecond, QueueDepth: 64})

	const clients, perClient = 16, 25
	var wg sync.WaitGroup
	var served, shed atomic.Int32
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				v := float32(c*perClient+i+1) / 100
				res, err := s.Submit(fmt.Sprintf("r%d", c%2), sample(v), time.Time{})
				if errors.Is(err, ErrOverloaded) {
					shed.Add(1)
					continue
				}
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				served.Add(1)
				want := float32(4*v) * 3
				if got := res.Logits.At(2); got != want {
					t.Errorf("client %d got logits[2]=%v, want %v (row fan-out mixed up batches?)", c, got, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	s.Close()
	if served.Load() == 0 {
		t.Fatal("nothing served")
	}
	if served.Load()+shed.Load() != clients*perClient {
		t.Fatalf("served %d + shed %d != %d sent", served.Load(), shed.Load(), clients*perClient)
	}
	snap := s.Metrics().Snapshot()
	var total uint64
	for _, r := range snap.Routes {
		total += r.Served
	}
	if total != uint64(served.Load()) {
		t.Fatalf("metrics served %d != %d observed", total, served.Load())
	}
}

// waitFor polls cond with a deadline — used to sequence fake-clock tests
// without sleeping for fixed durations.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
