package serve_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pelta/internal/eval"
	"pelta/internal/serve"
)

// TestP2QuantileTracksExactQuantiles validates the streaming sketch against
// the exact sorted-slice quantiles of eval.Quantiles on the kind of
// long-tailed distribution serving latencies follow.
func TestP2QuantileTracksExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	vals := make([]float64, n)
	p50 := serve.NewP2Quantile(0.50)
	p95 := serve.NewP2Quantile(0.95)
	p99 := serve.NewP2Quantile(0.99)
	for i := range vals {
		// Log-normal-ish latency: bulk around 1–3ms with a heavy tail.
		v := math.Exp(rng.NormFloat64()*0.5) * 2
		vals[i] = v
		p50.Add(v)
		p95.Add(v)
		p99.Add(v)
	}
	exact := eval.Quantiles(vals)
	for _, tt := range []struct {
		name         string
		got, want    float64
		relTolerance float64
	}{
		{"p50", p50.Value(), exact.P50, 0.05},
		{"p95", p95.Value(), exact.P95, 0.10},
		{"p99", p99.Value(), exact.P99, 0.15},
	} {
		rel := math.Abs(tt.got-tt.want) / tt.want
		if rel > tt.relTolerance {
			t.Errorf("%s: sketch %.4f vs exact %.4f (rel err %.3f > %.2f)",
				tt.name, tt.got, tt.want, rel, tt.relTolerance)
		}
	}
	if p50.Count() != n {
		t.Errorf("count %d, want %d", p50.Count(), n)
	}
}

// TestP2QuantileSmallCounts pins the exact-below-5-samples regime.
func TestP2QuantileSmallCounts(t *testing.T) {
	q := serve.NewP2Quantile(0.5)
	if q.Value() != 0 {
		t.Fatal("empty sketch must report 0")
	}
	q.Add(3)
	if q.Value() != 3 {
		t.Fatalf("one sample: %v", q.Value())
	}
	q.Add(1)
	// Two samples interpolate exactly as eval.Quantiles does.
	if got, want := q.Value(), eval.Quantile([]float64{1, 3}, 0.5); got != want {
		t.Fatalf("two samples: %v, want %v", got, want)
	}
	q.Add(2)
	// Median of {1,2,3}: exact.
	if q.Value() != 2 {
		t.Fatalf("three samples: %v, want 2", q.Value())
	}
}

// TestP2QuantileExtremeMarkers exercises the post-warm-up extreme-marker
// paths (x < q[0] and x ≥ q[4]) and cross-checks the median against the
// exact eval.Quantiles on the same stream.
func TestP2QuantileExtremeMarkers(t *testing.T) {
	q := serve.NewP2Quantile(0.5)
	vals := []float64{10, 20, 30, 40, 50} // warm-up: markers exactly 10..50
	for _, v := range vals {
		q.Add(v)
	}
	// Below the current minimum marker: q[0] must absorb it.
	vals = append(vals, 1)
	q.Add(1)
	// At and above the maximum marker (x >= q[4] covers equality too).
	vals = append(vals, 50, 99)
	q.Add(50)
	q.Add(99)
	if got := q.Count(); got != 8 {
		t.Fatalf("count %d, want 8", got)
	}
	exact := eval.Quantile(vals, 0.5)
	got := q.Value()
	if math.Abs(got-exact) > 0.35*exact {
		t.Fatalf("median after extreme inserts: sketch %.3f vs exact %.3f", got, exact)
	}
	// The estimate must stay inside the observed range whatever the
	// extremes did to the markers.
	if got < 1 || got > 99 {
		t.Fatalf("median %.3f escaped the observed range", got)
	}

	// A new minimum and maximum keep being tracked exactly at the ends.
	lo := serve.NewP2Quantile(0.01)
	hi := serve.NewP2Quantile(0.99)
	for _, v := range []float64{5, 6, 7, 8, 9, -3, 120, -7, 200} {
		lo.Add(v)
		hi.Add(v)
	}
	if lo.Value() > 5 {
		t.Fatalf("p1 %.3f ignored the new minima", lo.Value())
	}
	if hi.Value() < 9 {
		t.Fatalf("p99 %.3f ignored the new maxima", hi.Value())
	}
}

// TestP2QuantileHeavyTies: long runs of identical observations must keep
// the sketch finite and exact — the marker-nudging denominators hit their
// guard conditions on ties.
func TestP2QuantileHeavyTies(t *testing.T) {
	q := serve.NewP2Quantile(0.5)
	for i := 0; i < 1000; i++ {
		q.Add(42)
	}
	if got := q.Value(); got != 42 {
		t.Fatalf("all-ties median %.6f, want 42", got)
	}
	// Two-valued stream with heavy ties on both sides.
	q2 := serve.NewP2Quantile(0.5)
	vals := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		v := 1.0
		if i%2 == 1 {
			v = 2.0
		}
		q2.Add(v)
		vals = append(vals, v)
	}
	got := q2.Value()
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("tied stream produced %v", got)
	}
	if got < 1 || got > 2 {
		t.Fatalf("tied median %.6f outside [1,2] (exact %.6f)", got, eval.Quantile(vals, 0.5))
	}
}

// TestMetricsUptimeOnFakeClock pins the clock-injection fix: uptime and
// derived throughput must follow the injected clock, not the wall.
func TestMetricsUptimeOnFakeClock(t *testing.T) {
	fc := &stepClock{now: time.Unix(5000, 0)}
	m := serve.NewMetricsAt(fc)
	if got := m.Snapshot().UptimeSec; got != 0 {
		t.Fatalf("uptime %.3fs before any advance", got)
	}
	fc.now = fc.now.Add(90 * time.Second)
	if got := m.Snapshot().UptimeSec; got != 90 {
		t.Fatalf("uptime %.3fs, want 90 from the fake clock", got)
	}
	// The nil-clock constructor stays on real time and reports ~0 here.
	if got := serve.NewMetricsAt(nil).Snapshot().UptimeSec; got > 1 {
		t.Fatalf("real-clock metrics aged %.3fs instantly", got)
	}
}

// stepClock is a minimal manually-stepped serve.Clock for metrics tests.
type stepClock struct{ now time.Time }

func (c *stepClock) Now() time.Time { return c.now }

func (c *stepClock) NewTimer(d time.Duration) serve.Timer {
	panic("metrics never arm timers")
}

func TestMetricsCountersAndSnapshot(t *testing.T) {
	m := serve.NewMetrics()
	m.Served("query", 2*time.Millisecond, 4)
	m.Served("query", 4*time.Millisecond, 2)
	m.Shed("query")
	m.Error("adv")
	snap := m.Snapshot()
	if len(snap.Routes) != 2 {
		t.Fatalf("routes %d, want 2", len(snap.Routes))
	}
	// Sorted by name: adv then query.
	adv, query := snap.Routes[0], snap.Routes[1]
	if adv.Route != "adv" || adv.Errors != 1 || adv.Requests != 1 {
		t.Fatalf("adv route %+v", adv)
	}
	if query.Served != 2 || query.Shed != 1 || query.Requests != 3 {
		t.Fatalf("query route %+v", query)
	}
	if query.MeanBatch != 3 {
		t.Fatalf("mean batch %v, want 3", query.MeanBatch)
	}
	if query.MeanMs != 3 {
		t.Fatalf("mean latency %v ms, want 3", query.MeanMs)
	}
	if query.MaxMs != 4 {
		t.Fatalf("max latency %v ms, want 4", query.MaxMs)
	}
	if query.P50Ms < 2 || query.P50Ms > 4 {
		t.Fatalf("p50 %v outside observed range", query.P50Ms)
	}
}

// TestP2QuantileReset pins the sketch-reuse contract: after Reset the
// sketch behaves exactly like a freshly built one, so windowed consumers
// (TakeWindow) can drain it per tick without allocating a new sketch.
func TestP2QuantileReset(t *testing.T) {
	reused := serve.NewP2Quantile(0.95)
	for i := 0; i < 1000; i++ {
		reused.Add(float64(i))
	}
	reused.Reset()
	if got := reused.Value(); got != 0 {
		t.Fatalf("Value after Reset = %v, want 0", got)
	}

	fresh := serve.NewP2Quantile(0.95)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng.NormFloat64()) * 3
		reused.Add(v)
		fresh.Add(v)
	}
	if got, want := reused.Value(), fresh.Value(); got != want {
		t.Fatalf("reset sketch diverged: %v vs fresh %v", got, want)
	}
}

// TestTakeWindowReusesSketch pins the windowed-drain behavior end to end:
// each TakeWindow reports only the samples since the previous call, and an
// empty window reads zero.
func TestTakeWindowReusesSketch(t *testing.T) {
	m := serve.NewMetrics()
	m.EnableWindow()
	for i := 0; i < 100; i++ {
		m.Served("r", 10*time.Millisecond, 1)
	}
	if p95, n := m.TakeWindow(); n != 100 || math.Abs(p95-10) > 0.5 {
		t.Fatalf("window 1: p95=%v n=%d, want ~10ms over 100", p95, n)
	}
	if p95, n := m.TakeWindow(); n != 0 || p95 != 0 {
		t.Fatalf("empty window: p95=%v n=%d, want 0, 0", p95, n)
	}
	for i := 0; i < 50; i++ {
		m.Served("r", 50*time.Millisecond, 1)
	}
	if p95, n := m.TakeWindow(); n != 50 || math.Abs(p95-50) > 2 {
		t.Fatalf("window 3: p95=%v n=%d, want ~50ms over 50 (stale samples leaked?)", p95, n)
	}
}
