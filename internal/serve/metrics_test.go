package serve_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pelta/internal/eval"
	"pelta/internal/serve"
)

// TestP2QuantileTracksExactQuantiles validates the streaming sketch against
// the exact sorted-slice quantiles of eval.Quantiles on the kind of
// long-tailed distribution serving latencies follow.
func TestP2QuantileTracksExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	vals := make([]float64, n)
	p50 := serve.NewP2Quantile(0.50)
	p95 := serve.NewP2Quantile(0.95)
	p99 := serve.NewP2Quantile(0.99)
	for i := range vals {
		// Log-normal-ish latency: bulk around 1–3ms with a heavy tail.
		v := math.Exp(rng.NormFloat64()*0.5) * 2
		vals[i] = v
		p50.Add(v)
		p95.Add(v)
		p99.Add(v)
	}
	exact := eval.Quantiles(vals)
	for _, tt := range []struct {
		name         string
		got, want    float64
		relTolerance float64
	}{
		{"p50", p50.Value(), exact.P50, 0.05},
		{"p95", p95.Value(), exact.P95, 0.10},
		{"p99", p99.Value(), exact.P99, 0.15},
	} {
		rel := math.Abs(tt.got-tt.want) / tt.want
		if rel > tt.relTolerance {
			t.Errorf("%s: sketch %.4f vs exact %.4f (rel err %.3f > %.2f)",
				tt.name, tt.got, tt.want, rel, tt.relTolerance)
		}
	}
	if p50.Count() != n {
		t.Errorf("count %d, want %d", p50.Count(), n)
	}
}

// TestP2QuantileSmallCounts pins the exact-below-5-samples regime.
func TestP2QuantileSmallCounts(t *testing.T) {
	q := serve.NewP2Quantile(0.5)
	if q.Value() != 0 {
		t.Fatal("empty sketch must report 0")
	}
	q.Add(3)
	if q.Value() != 3 {
		t.Fatalf("one sample: %v", q.Value())
	}
	q.Add(1)
	// Two samples interpolate exactly as eval.Quantiles does.
	if got, want := q.Value(), eval.Quantile([]float64{1, 3}, 0.5); got != want {
		t.Fatalf("two samples: %v, want %v", got, want)
	}
	q.Add(2)
	// Median of {1,2,3}: exact.
	if q.Value() != 2 {
		t.Fatalf("three samples: %v, want 2", q.Value())
	}
}

func TestMetricsCountersAndSnapshot(t *testing.T) {
	m := serve.NewMetrics()
	m.Served("query", 2*time.Millisecond, 4)
	m.Served("query", 4*time.Millisecond, 2)
	m.Shed("query")
	m.Error("adv")
	snap := m.Snapshot()
	if len(snap.Routes) != 2 {
		t.Fatalf("routes %d, want 2", len(snap.Routes))
	}
	// Sorted by name: adv then query.
	adv, query := snap.Routes[0], snap.Routes[1]
	if adv.Route != "adv" || adv.Errors != 1 || adv.Requests != 1 {
		t.Fatalf("adv route %+v", adv)
	}
	if query.Served != 2 || query.Shed != 1 || query.Requests != 3 {
		t.Fatalf("query route %+v", query)
	}
	if query.MeanBatch != 3 {
		t.Fatalf("mean batch %v, want 3", query.MeanBatch)
	}
	if query.MeanMs != 3 {
		t.Fatalf("mean latency %v ms, want 3", query.MeanMs)
	}
	if query.MaxMs != 4 {
		t.Fatalf("max latency %v ms, want 4", query.MaxMs)
	}
	if query.P50Ms < 2 || query.P50Ms > 4 {
		t.Fatalf("p50 %v outside observed range", query.P50Ms)
	}
}
