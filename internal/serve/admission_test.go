package serve

import (
	"errors"
	"testing"
	"time"

	"pelta/internal/tensor"
)

// TestParseWeights pins the -route-weights flag syntax.
func TestParseWeights(t *testing.T) {
	w, err := ParseWeights("benign=8,adv=1, query=4")
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 3 || w["benign"] != 8 || w["adv"] != 1 || w["query"] != 4 {
		t.Fatalf("weights %v", w)
	}
	if w, err := ParseWeights(""); err != nil || w != nil {
		t.Fatalf("empty spec: %v, %v", w, err)
	}
	for _, bad := range []string{"benign", "=3", "adv=zero", "adv=-1", "adv=0"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Errorf("ParseWeights(%q) accepted", bad)
		}
	}
}

// TestWeightedFairAdmissionShedsFloodRoute is the fairness acceptance test:
// an adversarial flood at 10× the benign rate must shed at its own token
// bucket while benign traffic is admitted untouched. Deterministic under
// the fake clock: the buckets refill lazily from Clock.Now.
func TestWeightedFairAdmissionShedsFloodRoute(t *testing.T) {
	fc := newFakeClock()
	rep := newStubReplica()
	s := NewService(stubPool(t, rep), Config{
		MaxBatch:   1,
		QueueDepth: 64,
		Clock:      fc,
		// Rate 110 split 10:1 — benign sustains 100 req/s, adv 10 req/s.
		Admission: &AdmissionConfig{Rate: 110, Weights: map[string]float64{"benign": 10, "adv": 1}},
	})
	defer s.Close()

	var benignServed, benignShed, advServed, advShed int
	// 3 fake-clock seconds: adv floods at 100 req/s, benign trickles at
	// 10 req/s. Submits are sequential, so the only queue pressure is the
	// buckets' — queue-full shedding never mixes into the count.
	for i := 1; i <= 300; i++ {
		fc.Advance(10 * time.Millisecond)
		if _, err := s.Submit("adv", sample(1), time.Time{}); err == nil {
			advServed++
		} else if errors.Is(err, ErrOverloaded) {
			advShed++
		} else {
			t.Fatalf("adv submit %d: %v", i, err)
		}
		if i%10 == 0 {
			if _, err := s.Submit("benign", sample(2), time.Time{}); err == nil {
				benignServed++
			} else if errors.Is(err, ErrOverloaded) {
				benignShed++
			} else {
				t.Fatalf("benign submit %d: %v", i, err)
			}
		}
	}

	if benignShed != 0 || benignServed != 30 {
		t.Fatalf("benign served %d shed %d, want 30 served and zero shed — the flood starved the benign bucket",
			benignServed, benignShed)
	}
	// Adv admits its 10-token burst plus ~10 req/s of refill over 3s; the
	// remaining ~260 of the 300-strong flood shed at the adv bucket.
	if advShed < 250 || advServed < 30 || advServed > 50 {
		t.Fatalf("adv served %d shed %d — flood not confined to its bucket", advServed, advShed)
	}
	snap := s.Metrics().Snapshot()
	for _, r := range snap.Routes {
		switch r.Route {
		case "benign":
			if r.Shed != uint64(benignShed) || r.Served != uint64(benignServed) {
				t.Fatalf("benign metrics %+v vs observed served %d shed %d", r, benignServed, benignShed)
			}
		case "adv":
			if r.Shed != uint64(advShed) || r.Served != uint64(advServed) {
				t.Fatalf("adv metrics %+v vs observed served %d shed %d", r, advServed, advShed)
			}
		}
	}
}

// TestAdmissionBurstCapacity pins the Burst knob: an idle route absorbs a
// burst of up to cap tokens at once, then sheds.
func TestAdmissionBurstCapacity(t *testing.T) {
	a := newAdmitter(AdmissionConfig{Rate: 5, Burst: 2 * time.Second})
	now := time.Unix(2000, 0)
	admitted := 0
	for i := 0; i < 20; i++ {
		if a.allow("q", now) {
			admitted++
		}
	}
	if admitted != 10 { // 5 req/s × 2s burst
		t.Fatalf("burst admitted %d, want 10", admitted)
	}
	// One second of refill buys 5 more.
	now = now.Add(time.Second)
	admitted = 0
	for i := 0; i < 20; i++ {
		if a.allow("q", now) {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("refill admitted %d, want 5", admitted)
	}
}

// TestSubmitRejectedCounted pins the malformed-traffic bugfix: shape and
// rank rejections must reach /metrics instead of vanishing into the error
// return.
func TestSubmitRejectedCounted(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{})
	defer s.Close()
	if _, err := s.Submit("garbage", tensor.New(2, 2), time.Time{}); err == nil {
		t.Fatal("wrong-rank sample accepted")
	}
	if _, err := s.Submit("garbage", tensor.New(1, 3, 3), time.Time{}); err == nil {
		t.Fatal("wrong-shape sample accepted")
	}
	snap := s.Metrics().Snapshot()
	if len(snap.Routes) != 1 {
		t.Fatalf("routes %+v, want only garbage", snap.Routes)
	}
	r := snap.Routes[0]
	if r.Route != "garbage" || r.Rejected != 2 || r.Requests != 2 || r.Shed != 0 || r.Served != 0 {
		t.Fatalf("route snapshot %+v, want rejected=2 requests=2", r)
	}
}
