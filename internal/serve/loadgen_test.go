package serve

import (
	"testing"
	"time"
)

// TestRunLoadOnFakeClock is the regression test for the loadgen
// clock-consistency bugfix: deadlines, latencies and elapsed time must all
// read the injected service clock. Before the fix the generator stamped
// deadlines from time.Now() — decades past the fake timeline — so workers
// never shed them and latencies measured scheduler noise instead of clock
// time. The scenario: a gated replica and QueueDepth 1 let exactly one of
// 8 requests into service; the rest either shed at the full queue
// immediately or — once the fake clock jumps 100ms past the 50ms deadline
// — shed on deadline, wherever they wait. Served=1/Shed=7 holds under any
// goroutine interleaving, and the served latency is exactly the advance.
func TestRunLoadOnFakeClock(t *testing.T) {
	fc := newFakeClock()
	rep := newStubReplica()
	rep.gate = make(chan struct{})
	s := NewService(stubPool(t, rep), Config{MaxBatch: 1, QueueDepth: 1, Clock: fc})
	defer s.Close()
	open := openGatesOnce(rep)
	defer open() // unblock the deferred Close even on Fatal

	items := []TrafficItem{{X: sample(1), Label: 2}} // stub argmax is the last class
	type res struct {
		rep *LoadReport
		err error
	}
	done := make(chan res, 1)
	go func() {
		// Rate 2e9 ⇒ the pacing interval truncates to 0, so every request
		// is due immediately and no pacing timer waits on the fake clock.
		r, err := RunLoad(s, items, LoadConfig{Rate: 2e9, Requests: 8, Deadline: 50 * time.Millisecond, Seed: 1})
		done <- res{r, err}
	}()

	// Every request stamps its deadline (fake t0) before entering Submit,
	// so offered=8 in the metrics means all 8 deadlines are fixed on the
	// frozen clock — only then may the clock move.
	waitFor(t, func() bool {
		if rep.serving.Load() != 1 {
			return false
		}
		for _, r := range s.Metrics().Snapshot().Routes {
			if r.Route == "benign" && r.Offered == 8 {
				return true
			}
		}
		return false
	})

	fc.Advance(100 * time.Millisecond)
	open()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	r := out.rep

	if r.Sent != 8 || r.Served != 1 || r.Shed != 7 || r.Failed != 0 {
		t.Fatalf("accounting %+v, want sent=8 served=1 shed=7", r)
	}
	if r.BenignShed != 7 || r.BenignSent != 8 || r.AdvSent != 0 {
		t.Fatalf("per-route accounting %+v, want benign_shed=7", r)
	}
	// The served request waited exactly the fake-clock advance — a wall
	// clock would have measured microseconds here, and the two deadline
	// sheds only happen at all because RunLoad stamps deadlines on the
	// service clock.
	if len(r.LatenciesMs) != 1 || r.LatenciesMs[0] != 100 {
		t.Fatalf("latencies %v, want exactly [100] on the fake timeline", r.LatenciesMs)
	}
	if r.Seconds != 0.1 {
		t.Fatalf("elapsed %v s, want exactly 0.1 on the fake timeline", r.Seconds)
	}
	if r.Throughput != 10 {
		t.Fatalf("throughput %v, want exactly 10 req/s", r.Throughput)
	}
	if acc, ok := r.BenignAccuracy(); !ok || acc != 1 {
		t.Fatalf("benign accuracy %v ok=%v, want 1.0 over the single served request", acc, ok)
	}
}

// TestAccuracyZeroServedExplicit pins the (value, ok) bugfix: a report
// that served nothing must be distinguishable from genuine 0% accuracy.
func TestAccuracyZeroServedExplicit(t *testing.T) {
	r := &LoadReport{}
	if _, ok := r.BenignAccuracy(); ok {
		t.Fatal("zero-served benign accuracy reported ok")
	}
	if _, ok := r.AdvRobustAccuracy(); ok {
		t.Fatal("zero-served robust accuracy reported ok")
	}
	r.AdvServed, r.AdvCorrect = 4, 0
	if acc, ok := r.AdvRobustAccuracy(); !ok || acc != 0 {
		t.Fatalf("genuine 0%% robust accuracy: %v ok=%v", acc, ok)
	}
}

// TestParsePhases pins the -phases flag syntax.
func TestParsePhases(t *testing.T) {
	phases, err := ParsePhases("200:2s:0.1, 800:500ms:0.5,200:2s")
	if err != nil {
		t.Fatal(err)
	}
	want := []LoadPhase{
		{Rate: 200, Duration: 2 * time.Second, AdvFrac: 0.1},
		{Rate: 800, Duration: 500 * time.Millisecond, AdvFrac: 0.5},
		{Rate: 200, Duration: 2 * time.Second},
	}
	if len(phases) != len(want) {
		t.Fatalf("phases %+v", phases)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase %d = %+v, want %+v", i, phases[i], want[i])
		}
	}
	if p, err := ParsePhases(""); err != nil || p != nil {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	for _, bad := range []string{"200", "0:1s", "200:0s", "200:1s:1.5", "200:1s:-1", "x:1s", "200:1s:0.1:9"} {
		if _, err := ParsePhases(bad); err == nil {
			t.Errorf("ParsePhases(%q) accepted", bad)
		}
	}
}

// TestRunLoadPhasesAccounting runs a short real-clock two-phase trace and
// checks the per-phase, per-route bookkeeping adds up.
func TestRunLoadPhasesAccounting(t *testing.T) {
	rep := newStubReplica()
	s := NewService(stubPool(t, rep), Config{MaxBatch: 4, MaxDelay: time.Millisecond, QueueDepth: 64})
	defer s.Close()
	items := []TrafficItem{
		{X: sample(1), Label: 2}, // stub argmax is always the last class
		{X: sample(2), Label: 0}, // always misclassified
		{X: sample(3), Label: 2, Adversarial: true},
	}
	phases := []LoadPhase{
		{Rate: 500, Duration: 40 * time.Millisecond, AdvFrac: 0},
		{Rate: 1000, Duration: 40 * time.Millisecond, AdvFrac: 0.5},
	}
	prep, err := RunLoadPhases(s, items, phases, LoadConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.Phases) != 2 {
		t.Fatalf("phases %d", len(prep.Phases))
	}
	if got, want := prep.Phases[0].Sent, 20; got != want {
		t.Fatalf("phase 1 sent %d, want %d", got, want)
	}
	if got, want := prep.Phases[1].Sent, 40; got != want {
		t.Fatalf("phase 2 sent %d, want %d", got, want)
	}
	if prep.Phases[0].AdvSent != 0 {
		t.Fatalf("pure benign phase sent %d adv requests", prep.Phases[0].AdvSent)
	}
	if prep.Phases[1].AdvSent == 0 {
		t.Fatal("burst phase drew no adversarial traffic at adv-frac 0.5")
	}
	var sent, served, shed, failed int
	for _, p := range prep.Phases {
		sent += p.Sent
		served += p.Served
		shed += p.Shed
		failed += p.Failed
		if p.Served+p.Shed+p.Failed != p.Sent {
			t.Fatalf("phase accounting broken: %+v", p.LoadReport)
		}
		if p.BenignSent+p.AdvSent != p.Sent {
			t.Fatalf("per-route accounting broken: %+v", p.LoadReport)
		}
	}
	tot := prep.Total
	if tot.Sent != sent || tot.Served != served || tot.Shed != shed || tot.Failed != failed {
		t.Fatalf("total %+v disagrees with phase sums (%d/%d/%d/%d)", tot, sent, served, shed, failed)
	}
	if tot.Failed != 0 {
		t.Fatalf("%d failed", tot.Failed)
	}
	if len(tot.LatenciesMs) != tot.Served {
		t.Fatalf("%d latency samples, want %d", len(tot.LatenciesMs), tot.Served)
	}
	// Phase draws are seeded: the same seed must reproduce the same mix.
	rep2 := newStubReplica()
	s2 := NewService(stubPool(t, rep2), Config{MaxBatch: 4, MaxDelay: time.Millisecond, QueueDepth: 64})
	defer s2.Close()
	again, err := RunLoadPhases(s2, items, phases, LoadConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if again.Phases[1].AdvSent != prep.Phases[1].AdvSent {
		t.Fatalf("seeded adv draw differs: %d vs %d", again.Phases[1].AdvSent, prep.Phases[1].AdvSent)
	}
}

// TestRunLoadPhasesValidation pins the pool checks.
func TestRunLoadPhasesValidation(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{})
	defer s.Close()
	benignOnly := []TrafficItem{{X: sample(1)}}
	if _, err := RunLoadPhases(s, benignOnly, []LoadPhase{{Rate: 10, Duration: time.Millisecond, AdvFrac: 0.5}}, LoadConfig{}); err == nil {
		t.Fatal("adv phase over a benign-only pool accepted")
	}
	advOnly := []TrafficItem{{X: sample(1), Adversarial: true}}
	if _, err := RunLoadPhases(s, advOnly, []LoadPhase{{Rate: 10, Duration: time.Millisecond, AdvFrac: 0.5}}, LoadConfig{}); err == nil {
		t.Fatal("benign-drawing phase over an adv-only pool accepted")
	}
	if _, err := RunLoadPhases(s, benignOnly, nil, LoadConfig{}); err == nil {
		t.Fatal("empty phase list accepted")
	}
}
