package serve

import (
	"errors"
	"fmt"

	"pelta/internal/detect"
)

// ErrFlagged is returned when the probe detector sheds a flagged client's
// request (DetectShed). It wraps ErrOverloaded, so existing back-off logic
// keeps working, while errors.Is(err, ErrFlagged) separates "you are being
// rate-limited" from "your query stream looks like an iterative attack".
var ErrFlagged = errors.New("serve: client flagged by probe detector")

// DetectAction selects what admission does with a flagged client's
// queries.
type DetectAction int

const (
	// DetectLog only counts: flagged queries are served normally, visible
	// in the metrics and in Result.Flagged — the observe-first deployment
	// mode, and the mode detection quality is measured in.
	DetectLog DetectAction = iota
	// DetectDeprioritize charges a flagged client's queries to the
	// FlaggedRoute admission bucket instead of their own route's, so probe
	// streams compete for the flagged bucket's (typically small) weight
	// share and benign routes keep their capacity. Requires weighted-fair
	// admission (Config.Admission); without it the action degrades to
	// DetectLog.
	DetectDeprioritize
	// DetectShed rejects a flagged client's queries outright with
	// ErrFlagged (wrapping ErrOverloaded).
	DetectShed
)

// FlaggedRoute is the admission bucket flagged traffic is charged to under
// DetectDeprioritize. Give it an explicit share with
// AdmissionConfig.Weights["flagged"]; unlisted it weighs 1 like any other
// route.
const FlaggedRoute = "flagged"

// String renders the action's flag spelling.
func (a DetectAction) String() string {
	switch a {
	case DetectDeprioritize:
		return "deprioritize"
	case DetectShed:
		return "shed"
	}
	return "log"
}

// ParseDetectAction parses "log", "deprioritize" or "shed".
func ParseDetectAction(s string) (DetectAction, error) {
	switch s {
	case "log":
		return DetectLog, nil
	case "deprioritize":
		return DetectDeprioritize, nil
	case "shed":
		return DetectShed, nil
	}
	return 0, fmt.Errorf("serve: detect action %q, want log, deprioritize or shed", s)
}

// DetectConfig enables the stateful probe detector: every well-formed
// query with a client identity is fingerprinted into a per-client
// similarity cache (detect.Detector) on the service clock, and flagged
// clients are handled per Action. Requests submitted without a client
// identity (plain Submit) bypass detection entirely, so the detector never
// changes behavior for callers that predate it.
type DetectConfig struct {
	detect.Config
	// Action is what admission does with a flagged client's queries
	// (default DetectLog).
	Action DetectAction
}
