package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"pelta/internal/tensor"
)

// TrafficItem is one sample of the load generator's traffic mix.
type TrafficItem struct {
	// X is the sample [C,H,W].
	X *tensor.Tensor
	// Label is the ground-truth class of the underlying benign sample (for
	// an adversarial item, the label of the sample it was crafted from).
	Label int
	// Adversarial marks crafted probe traffic (FGSM/PGD perturbations).
	Adversarial bool
}

// LoadConfig drives one open-loop load run: requests are launched at the
// offered rate regardless of completions, the way real traffic arrives, so
// an overloaded service accumulates queue depth and sheds instead of
// silently slowing the generator down (closed-loop coordination omission).
type LoadConfig struct {
	// Rate is the offered load in requests/second (required).
	Rate float64
	// Requests is the total number launched (required).
	Requests int
	// Deadline, when > 0, is each request's service deadline.
	Deadline time.Duration
	// Seed draws the traffic mix.
	Seed int64
}

// LoadReport summarizes one load run. BenignServed/AdvServed count served
// requests per stream and BenignShed/AdvShed the per-stream sheds — the
// fairness question "who paid for the overload" is unanswerable from the
// aggregate Shed alone. Accuracy is reported separately for benign and
// adversarial traffic: BenignAccuracy is plain accuracy, AdvRobustAccuracy
// is the fraction of served adversarial probes still classified as their
// true label (the serving-path analogue of robust accuracy).
type LoadReport struct {
	Sent   int `json:"sent"`
	Served int `json:"served"`
	Shed   int `json:"shed"`
	Failed int `json:"failed"`

	BenignSent    int `json:"benign_sent"`
	BenignServed  int `json:"benign_served"`
	BenignCorrect int `json:"benign_correct"`
	BenignShed    int `json:"benign_shed"`
	AdvSent       int `json:"adv_sent"`
	AdvServed     int `json:"adv_served"`
	AdvCorrect    int `json:"adv_correct"`
	AdvShed       int `json:"adv_shed"`

	Elapsed time.Duration `json:"-"`
	Seconds float64       `json:"seconds"`
	// OfferedRate is the configured arrival rate; Throughput the served
	// completion rate actually sustained.
	OfferedRate float64 `json:"offered_rate"`
	Throughput  float64 `json:"throughput"`
	// MeanBatch is the average coalesced batch size over served requests.
	MeanBatch float64 `json:"mean_batch"`
	// LatenciesMs holds every served request's end-to-end latency, for
	// exact quantiles (eval.Quantiles); the service metrics hold the
	// streaming-sketch view of the same distribution.
	LatenciesMs []float64 `json:"-"`

	batchSum int
}

// BenignAccuracy returns the benign traffic's serving accuracy. ok is
// false — and the value NaN — when no benign request was served, so a run
// that shed everything is distinguishable from a genuine 0% accuracy.
func (r *LoadReport) BenignAccuracy() (acc float64, ok bool) {
	if r.BenignServed == 0 {
		return math.NaN(), false
	}
	return float64(r.BenignCorrect) / float64(r.BenignServed), true
}

// AdvRobustAccuracy returns robust accuracy over served adversarial
// probes; ok is false (value NaN) when none were served.
func (r *LoadReport) AdvRobustAccuracy() (acc float64, ok bool) {
	if r.AdvServed == 0 {
		return math.NaN(), false
	}
	return float64(r.AdvCorrect) / float64(r.AdvServed), true
}

// shot is one scheduled request of a load run.
type shot struct {
	due   time.Time
	item  int // index into the traffic pool
	phase int
}

// outcome is one resolved request.
type outcome struct {
	item, phase int
	res         *Result
	err         error
	lat         time.Duration
	end         time.Time
}

// fire launches every shot at its due time on the service clock and waits
// for all of them to resolve. Pacing sleeps only when ahead of schedule
// (rather than ticking once per request), so a generator starved of CPU
// catches up in a burst instead of silently lowering the offered rate —
// without this, an overloaded single-core service throttles its own load
// generator and the admission limit is never reached (coordinated
// omission). Every timestamp — pacing, deadline stamps, latency
// measurements — reads s.Clock(), the same timeline Submit and the workers
// shed by, so the generator is deterministic under a fake clock.
func fire(s *Service, items []TrafficItem, shots []shot, deadline time.Duration) []outcome {
	clk := s.Clock()
	outcomes := make([]outcome, len(shots))
	var wg sync.WaitGroup
	for i, sh := range shots {
		if now := clk.Now(); sh.due.After(now) {
			t := clk.NewTimer(sh.due.Sub(now))
			<-t.C()
		}
		wg.Add(1)
		go func(i int, sh shot) {
			defer wg.Done()
			it := items[sh.item]
			route := "benign"
			if it.Adversarial {
				route = "adv"
			}
			t0 := clk.Now()
			var dl time.Time
			if deadline > 0 {
				dl = t0.Add(deadline)
			}
			res, err := s.Submit(route, it.X, dl)
			end := clk.Now()
			outcomes[i] = outcome{item: sh.item, phase: sh.phase, res: res, err: err, lat: end.Sub(t0), end: end}
		}(i, sh)
	}
	wg.Wait()
	return outcomes
}

// tally folds one outcome into a report.
func (r *LoadReport) tally(items []TrafficItem, o outcome) {
	r.Sent++
	adv := items[o.item].Adversarial
	if adv {
		r.AdvSent++
	} else {
		r.BenignSent++
	}
	switch {
	case o.err == nil:
		r.Served++
		r.LatenciesMs = append(r.LatenciesMs, float64(o.lat)/float64(time.Millisecond))
		r.batchSum += o.res.BatchSize
		if adv {
			r.AdvServed++
			if o.res.Class == items[o.item].Label {
				r.AdvCorrect++
			}
		} else {
			r.BenignServed++
			if o.res.Class == items[o.item].Label {
				r.BenignCorrect++
			}
		}
	case errors.Is(o.err, ErrOverloaded):
		r.Shed++
		if adv {
			r.AdvShed++
		} else {
			r.BenignShed++
		}
	default:
		r.Failed++
	}
}

// finish derives the rate fields once every outcome is tallied.
func (r *LoadReport) finish(elapsed time.Duration) {
	r.Elapsed = elapsed
	r.Seconds = elapsed.Seconds()
	if elapsed > 0 {
		r.Throughput = float64(r.Served) / elapsed.Seconds()
	}
	if r.Served > 0 {
		r.MeanBatch = float64(r.batchSum) / float64(r.Served)
	}
}

// RunLoad fires cfg.Requests items drawn from the traffic mix at the
// open-loop rate and waits for every in-flight request to resolve. Benign
// items are submitted on route "benign", adversarial probes on route "adv",
// so the per-route counters separate the two streams.
func RunLoad(s *Service, items []TrafficItem, cfg LoadConfig) (*LoadReport, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs traffic items")
	}
	if cfg.Rate <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("serve: loadgen needs Rate > 0 and Requests > 0")
	}
	clk := s.Clock()
	rng := rand.New(rand.NewSource(cfg.Seed))
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := clk.Now()
	shots := make([]shot, cfg.Requests)
	for i := range shots {
		shots[i] = shot{due: start.Add(time.Duration(i) * interval), item: rng.Intn(len(items))}
	}
	outcomes := fire(s, items, shots, cfg.Deadline)
	elapsed := clk.Now().Sub(start)

	rep := &LoadReport{OfferedRate: cfg.Rate}
	for _, o := range outcomes {
		rep.tally(items, o)
	}
	rep.finish(elapsed)
	return rep, nil
}

// LoadPhase is one step of a phased load trace: Rate req/s for Duration,
// with AdvFrac of the requests drawn from the adversarial pool. Chaining
// phases expresses ramps, bursts and diurnal steps — the traces that
// exercise autoscaler scale-up, scale-down and admission fairness.
type LoadPhase struct {
	Rate     float64       `json:"rate"`
	Duration time.Duration `json:"duration"`
	AdvFrac  float64       `json:"adv_frac"`
}

// String renders the phase in the -phases flag syntax.
func (p LoadPhase) String() string {
	return fmt.Sprintf("%g:%s:%g", p.Rate, p.Duration, p.AdvFrac)
}

// ParsePhases parses a phase trace spec: comma-separated
// "rate:duration:advfrac" steps, e.g. "200:2s:0.1,800:1s:0.5,200:2s:0.1"
// (the adv fraction may be omitted for pure benign phases).
func ParsePhases(spec string) ([]LoadPhase, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var phases []LoadPhase
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("serve: phase %q, want rate:duration[:advfrac]", part)
		}
		rate, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("serve: phase %q needs a positive rate", part)
		}
		dur, err := time.ParseDuration(fields[1])
		if err != nil || dur <= 0 {
			return nil, fmt.Errorf("serve: phase %q needs a positive duration", part)
		}
		p := LoadPhase{Rate: rate, Duration: dur}
		if len(fields) == 3 {
			f, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("serve: phase %q needs adv frac in [0,1]", part)
			}
			p.AdvFrac = f
		}
		phases = append(phases, p)
	}
	return phases, nil
}

// PhaseReport is one phase's slice of a phased run.
type PhaseReport struct {
	Phase LoadPhase `json:"phase"`
	LoadReport
}

// PhasedReport is the per-phase plus aggregate view of RunLoadPhases.
type PhasedReport struct {
	Phases []PhaseReport `json:"phases"`
	Total  LoadReport    `json:"total"`
}

// RunLoadPhases fires a phased trace: each phase launches Rate×Duration
// requests at its open-loop rate, drawing each request from the
// adversarial pool with probability AdvFrac and from the benign pool
// otherwise (unlike RunLoad, which inherits the pool's fixed mix). The
// timeline is continuous — phase i+1 starts on schedule even if phase i
// still has requests in flight, exactly how a real burst lands on a
// service that has not drained — and every request's outcome is accounted
// to the phase that launched it.
func RunLoadPhases(s *Service, items []TrafficItem, phases []LoadPhase, cfg LoadConfig) (*PhasedReport, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("serve: phased loadgen needs at least one phase")
	}
	var benign, adv []int
	for i, it := range items {
		if it.Adversarial {
			adv = append(adv, i)
		} else {
			benign = append(benign, i)
		}
	}
	for _, p := range phases {
		if p.AdvFrac > 0 && len(adv) == 0 {
			return nil, fmt.Errorf("serve: phase %s draws adversarial traffic but the pool has none", p)
		}
		if p.AdvFrac < 1 && len(benign) == 0 {
			return nil, fmt.Errorf("serve: phase %s draws benign traffic but the pool has none", p)
		}
	}

	clk := s.Clock()
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := clk.Now()
	phaseStart := make([]time.Time, len(phases))
	var shots []shot
	at := start
	for pi, p := range phases {
		phaseStart[pi] = at
		n := int(p.Rate*p.Duration.Seconds() + 0.5)
		if n < 1 {
			n = 1
		}
		interval := time.Duration(float64(time.Second) / p.Rate)
		for j := 0; j < n; j++ {
			idx := 0
			if rng.Float64() < p.AdvFrac {
				idx = adv[rng.Intn(len(adv))]
			} else {
				idx = benign[rng.Intn(len(benign))]
			}
			shots = append(shots, shot{due: at.Add(time.Duration(j) * interval), item: idx, phase: pi})
		}
		at = at.Add(p.Duration)
	}

	outcomes := fire(s, items, shots, cfg.Deadline)
	end := clk.Now()

	rep := &PhasedReport{Phases: make([]PhaseReport, len(phases))}
	if sched := at.Sub(start); sched > 0 {
		// The aggregate offered rate is total launches over the scheduled
		// trace length (not the drain-extended elapsed time).
		rep.Total.OfferedRate = float64(len(shots)) / sched.Seconds()
	}
	phaseEnd := make([]time.Time, len(phases))
	for pi, p := range phases {
		rep.Phases[pi].Phase = p
		rep.Phases[pi].OfferedRate = p.Rate
		phaseEnd[pi] = phaseStart[pi]
	}
	for _, o := range outcomes {
		rep.Phases[o.phase].tally(items, o)
		rep.Total.tally(items, o)
		if o.end.After(phaseEnd[o.phase]) {
			phaseEnd[o.phase] = o.end
		}
	}
	for pi := range rep.Phases {
		rep.Phases[pi].finish(phaseEnd[pi].Sub(phaseStart[pi]))
	}
	rep.Total.finish(end.Sub(start))
	return rep, nil
}
