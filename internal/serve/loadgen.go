package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pelta/internal/tensor"
)

// TrafficItem is one sample of the load generator's traffic mix.
type TrafficItem struct {
	// X is the sample [C,H,W].
	X *tensor.Tensor
	// Label is the ground-truth class of the underlying benign sample (for
	// an adversarial item, the label of the sample it was crafted from).
	Label int
	// Adversarial marks crafted probe traffic (FGSM/PGD perturbations).
	Adversarial bool
}

// LoadConfig drives one open-loop load run: requests are launched at the
// offered rate regardless of completions, the way real traffic arrives, so
// an overloaded service accumulates queue depth and sheds instead of
// silently slowing the generator down (closed-loop coordination omission).
type LoadConfig struct {
	// Rate is the offered load in requests/second (required).
	Rate float64
	// Requests is the total number launched (required).
	Requests int
	// Deadline, when > 0, is each request's service deadline.
	Deadline time.Duration
	// Seed draws the traffic mix.
	Seed int64
}

// LoadReport summarizes one load run. BenignServed/AdvServed count served
// requests per stream (shed and failed requests appear only in the
// aggregate Shed/Failed counters). Accuracy is reported separately for
// benign and adversarial traffic: BenignAccuracy is plain accuracy,
// AdvRobustAccuracy is the fraction of served adversarial probes still
// classified as their true label (the serving-path analogue of robust
// accuracy).
type LoadReport struct {
	Sent   int `json:"sent"`
	Served int `json:"served"`
	Shed   int `json:"shed"`
	Failed int `json:"failed"`

	BenignServed  int `json:"benign_served"`
	BenignCorrect int `json:"benign_correct"`
	AdvServed     int `json:"adv_served"`
	AdvCorrect    int `json:"adv_correct"`

	Elapsed time.Duration `json:"-"`
	Seconds float64       `json:"seconds"`
	// OfferedRate is the configured arrival rate; Throughput the served
	// completion rate actually sustained.
	OfferedRate float64 `json:"offered_rate"`
	Throughput  float64 `json:"throughput"`
	// MeanBatch is the average coalesced batch size over served requests.
	MeanBatch float64 `json:"mean_batch"`
	// LatenciesMs holds every served request's end-to-end latency, for
	// exact quantiles (eval.Quantiles); the service metrics hold the
	// streaming-sketch view of the same distribution.
	LatenciesMs []float64 `json:"-"`
}

// BenignAccuracy returns the benign traffic's serving accuracy.
func (r *LoadReport) BenignAccuracy() float64 {
	if r.BenignServed == 0 {
		return 0
	}
	return float64(r.BenignCorrect) / float64(r.BenignServed)
}

// AdvRobustAccuracy returns robust accuracy over served adversarial probes.
func (r *LoadReport) AdvRobustAccuracy() float64 {
	if r.AdvServed == 0 {
		return 0
	}
	return float64(r.AdvCorrect) / float64(r.AdvServed)
}

// RunLoad fires cfg.Requests items drawn from the traffic mix at the
// open-loop rate and waits for every in-flight request to resolve. Benign
// items are submitted on route "benign", adversarial probes on route "adv",
// so the per-route counters separate the two streams.
func RunLoad(s *Service, items []TrafficItem, cfg LoadConfig) (*LoadReport, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs traffic items")
	}
	if cfg.Rate <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("serve: loadgen needs Rate > 0 and Requests > 0")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, cfg.Requests)
	for i := range order {
		order[i] = rng.Intn(len(items))
	}

	type outcome struct {
		item   int
		res    *Result
		err    error
		lat    time.Duration
		served bool
	}
	outcomes := make([]outcome, cfg.Requests)
	var wg sync.WaitGroup

	// Open-loop pacing: request i is due at start + i/Rate regardless of
	// completions. Sleeping only when ahead (rather than ticking once per
	// request) means a generator starved of CPU catches up in a burst
	// instead of silently lowering the offered rate — without this, an
	// overloaded single-core service throttles its own load generator and
	// the admission limit is never reached (coordinated omission).
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			it := items[order[i]]
			route := "benign"
			if it.Adversarial {
				route = "adv"
			}
			var deadline time.Time
			t0 := time.Now()
			if cfg.Deadline > 0 {
				deadline = t0.Add(cfg.Deadline)
			}
			res, err := s.Submit(route, it.X, deadline)
			outcomes[i] = outcome{item: order[i], res: res, err: err, lat: time.Since(t0), served: err == nil}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{Sent: cfg.Requests, Elapsed: elapsed, Seconds: elapsed.Seconds(), OfferedRate: cfg.Rate}
	batchSum := 0
	for _, o := range outcomes {
		it := items[o.item]
		switch {
		case o.served:
			rep.Served++
			rep.LatenciesMs = append(rep.LatenciesMs, float64(o.lat)/float64(time.Millisecond))
			batchSum += o.res.BatchSize
			if it.Adversarial {
				rep.AdvServed++
				if o.res.Class == it.Label {
					rep.AdvCorrect++
				}
			} else {
				rep.BenignServed++
				if o.res.Class == it.Label {
					rep.BenignCorrect++
				}
			}
		case errors.Is(o.err, ErrOverloaded):
			rep.Shed++
		default:
			rep.Failed++
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Served) / elapsed.Seconds()
	}
	if rep.Served > 0 {
		rep.MeanBatch = float64(batchSum) / float64(rep.Served)
	}
	return rep, nil
}
