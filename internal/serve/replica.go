package serve

import (
	"fmt"

	"pelta/internal/autograd"
	"pelta/internal/core"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// Replica is one sequential inference engine instance. A replica is never
// queried concurrently — the scheduler binds exactly one worker goroutine
// to each replica — so implementations may reuse internal buffers freely.
// The tensor returned by Logits remains valid only until the next call.
type Replica interface {
	// Classes returns the label-space size.
	Classes() int
	// InputShape returns the per-sample shape [C,H,W].
	InputShape() []int
	// Logits runs inference on a batch [B,C,H,W] and returns [B,classes].
	Logits(x *tensor.Tensor) (*tensor.Tensor, error)
}

// ShieldedReplica serves inference through a Pelta-shielded model: every
// batch runs core.ShieldedModel.Query, so Algorithm 1 scrubs the shallow
// activations after each pass exactly as in the offline attack loops.
// ShieldedModel is documented sequential-only, which is why each replica
// must own its enclave and graph arena — see NewShieldedPool.
type ShieldedReplica struct {
	SM *core.ShieldedModel
}

var _ Replica = (*ShieldedReplica)(nil)

// Classes implements Replica.
func (r *ShieldedReplica) Classes() int { return r.SM.Classes() }

// InputShape implements Replica.
func (r *ShieldedReplica) InputShape() []int { return r.SM.InputShape() }

// Logits implements Replica with a forward-only shielded Query.
func (r *ShieldedReplica) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	res, err := r.SM.Query(x, nil)
	if err != nil {
		return nil, err
	}
	return res.Logits, nil
}

// ClearReplica serves inference without a shield: a pooled forward-only
// graph arena over the model, for the -shield=false baseline.
type ClearReplica struct {
	M models.Model

	g   *autograd.Graph
	buf *tensor.Tensor
}

var _ Replica = (*ClearReplica)(nil)

// NewClearReplica wraps m in a pooled inference engine.
func NewClearReplica(m models.Model) *ClearReplica { return &ClearReplica{M: m} }

// Classes implements Replica.
func (r *ClearReplica) Classes() int { return r.M.Classes() }

// InputShape implements Replica.
func (r *ClearReplica) InputShape() []int { return r.M.InputShape() }

// Logits implements Replica.
func (r *ClearReplica) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	if r.g == nil {
		r.g = autograd.NewGraphWithPool(tensor.NewPool())
		r.g.SetTrackParamGrads(false)
	}
	r.g.Release()
	_, logits := r.M.Forward(r.g, r.g.Input(x, "x"))
	// Copy out of the arena so the next Release cannot recycle the result.
	if r.buf == nil || !r.buf.SameShape(logits.Data) {
		r.buf = logits.Data.Clone()
	} else {
		r.buf.CopyFrom(logits.Data)
	}
	return r.buf, nil
}

// ReplicaPool owns N independent replicas behind one handle. Replicas must
// not share mutable state (models, graph arenas, enclaves); the scheduler
// drives each from its own worker goroutine.
type ReplicaPool struct {
	replicas []Replica
}

// NewReplicaPool builds n replicas from the factory. The factory must
// return fully independent instances — in particular, distinct model
// copies, since a forward pass reads weights while Query zeroes gradients.
func NewReplicaPool(n int, build func(i int) (Replica, error)) (*ReplicaPool, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: replica pool needs ≥ 1 replica, got %d", n)
	}
	p := &ReplicaPool{replicas: make([]Replica, n)}
	for i := range p.replicas {
		r, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("serve: building replica %d/%d: %w", i, n, err)
		}
		if i > 0 {
			if r.Classes() != p.replicas[0].Classes() {
				return nil, fmt.Errorf("serve: replica %d has %d classes, replica 0 has %d",
					i, r.Classes(), p.replicas[0].Classes())
			}
			if !equalShape(r.InputShape(), p.replicas[0].InputShape()) {
				return nil, fmt.Errorf("serve: replica %d input shape %v, replica 0 has %v",
					i, r.InputShape(), p.replicas[0].InputShape())
			}
		}
		p.replicas[i] = r
	}
	return p, nil
}

func equalShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Size returns the replica count.
func (p *ReplicaPool) Size() int { return len(p.replicas) }

// Classes returns the pool's label-space size.
func (p *ReplicaPool) Classes() int { return p.replicas[0].Classes() }

// InputShape returns the pool's per-sample input shape [C,H,W].
func (p *ReplicaPool) InputShape() []int { return p.replicas[0].InputShape() }

// NewShieldedPool builds n shielded replicas, each wrapping its own model
// instance from build inside its own enclave of the given byte limit (≤ 0
// selects the TrustZone default). build must return a fresh model per call;
// sharing one model across enclaves would race on parameter gradients.
func NewShieldedPool(n int, limit int64, build func(i int) (models.Model, error)) (*ReplicaPool, error) {
	return NewReplicaPool(n, func(i int) (Replica, error) {
		m, err := build(i)
		if err != nil {
			return nil, err
		}
		sm, err := core.NewShieldedModel(m, limit)
		if err != nil {
			return nil, err
		}
		return &ShieldedReplica{SM: sm}, nil
	})
}

// NewClearPool builds n unshielded replicas, each over its own model
// instance from build.
func NewClearPool(n int, build func(i int) (models.Model, error)) (*ReplicaPool, error) {
	return NewReplicaPool(n, func(i int) (Replica, error) {
		m, err := build(i)
		if err != nil {
			return nil, err
		}
		return NewClearReplica(m), nil
	})
}
