package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// postLines POSTs NDJSON lines to /query and returns the response.
func postLines(t *testing.T, url string, lines ...string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/x-ndjson", strings.NewReader(strings.Join(lines, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func headerInt(t *testing.T, resp *http.Response, name string) int {
	t.Helper()
	v, err := strconv.Atoi(resp.Header.Get(name))
	if err != nil {
		t.Fatalf("header %s = %q: %v", name, resp.Header.Get(name), err)
	}
	return v
}

// TestQuerySummaryHeadersServed: a fully served request answers 200 with
// the served/shed/error counters summarizing the body.
func TestQuerySummaryHeadersServed(t *testing.T) {
	rep := newStubReplica()
	s := NewService(stubPool(t, rep), Config{MaxBatch: 2, MaxDelay: time.Millisecond, QueueDepth: 8})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp := postLines(t, srv.URL, `{"x":[1,1,1,1]}`, `{"x":[2,2,2,2]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := headerInt(t, resp, HeaderServed); got != 2 {
		t.Fatalf("%s = %d, want 2", HeaderServed, got)
	}
	if headerInt(t, resp, HeaderShed) != 0 || headerInt(t, resp, HeaderErrors) != 0 {
		t.Fatalf("unexpected shed/error counters: %v", resp.Header)
	}
}

// TestQueryAllLinesFailedAnswers503: when no line at all is served (here:
// service closed, every Submit fails) the handler must answer 503 with the
// failure summarized in headers, not a deceptive 200.
func TestQueryAllLinesFailedAnswers503(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{MaxBatch: 2, QueueDepth: 8})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	s.Close()

	resp := postLines(t, srv.URL, `{"x":[1,1,1,1]}`, `{"x":[2,2,2,2]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 when zero lines were served", resp.StatusCode)
	}
	if got := headerInt(t, resp, HeaderErrors); got != 2 {
		t.Fatalf("%s = %d, want 2", HeaderErrors, got)
	}
	// The body still carries one per-line error for callers that do parse.
	dec := json.NewDecoder(resp.Body)
	for i := 0; i < 2; i++ {
		var qr QueryResponse
		if err := dec.Decode(&qr); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if qr.Error == "" {
			t.Fatalf("line %d missing error", i)
		}
	}
}

// TestQueryDeadlineShedOnServiceClock pins the clock-consistency fix: the
// handler computes per-line deadlines on the Service clock, so under a fake
// clock a queued line whose deadline lapses is shed by the worker — the
// HTTP layer and the batcher agree on time, and an all-shed request answers
// 503 with the shed counter set.
func TestQueryDeadlineShedOnServiceClock(t *testing.T) {
	fc := newFakeClock()
	rep := newStubReplica()
	rep.gate = make(chan struct{})
	s := NewService(stubPool(t, rep), Config{MaxBatch: 2, MaxDelay: 2 * time.Millisecond, QueueDepth: 4, Clock: fc})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// Request A (no deadline): the batcher opens a partial batch and arms
	// the MaxDelay timer — the observable that A reached the scheduler.
	aDone := make(chan *http.Response, 1)
	go func() {
		aDone <- postLines(t, srv.URL, `{"x":[1,1,1,1]}`)
	}()
	waitFor(t, func() bool { return fc.pending() == 1 })
	// Flush A to the gated replica.
	fc.Advance(5 * time.Millisecond)
	waitFor(t, func() bool { return rep.serving.Load() == 1 })

	// Request B carries a 10ms deadline stamped from the fake clock at
	// admission; its partial batch arms a fresh timer once B is in.
	bDone := make(chan *http.Response, 1)
	go func() {
		bDone <- postLines(t, srv.URL, `{"x":[2,2,2,2],"deadline_ms":10}`)
	}()
	waitFor(t, func() bool { return fc.pending() == 1 })

	// The fake clock jumps past B's deadline while B's batch still waits
	// behind the busy replica; only then does the replica come free.
	fc.Advance(50 * time.Millisecond)
	rep.gate <- struct{}{}

	respA := <-aDone
	defer respA.Body.Close()
	if respA.StatusCode != http.StatusOK || headerInt(t, respA, HeaderServed) != 1 {
		t.Fatalf("A: status %d served %s", respA.StatusCode, respA.Header.Get(HeaderServed))
	}
	respB := <-bDone
	defer respB.Body.Close()
	if respB.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("B: status %d, want 503 (deadline must lapse on the service clock)", respB.StatusCode)
	}
	if got := headerInt(t, respB, HeaderShed); got != 1 {
		t.Fatalf("B: %s = %d, want 1", HeaderShed, got)
	}
	var qr QueryResponse
	if err := json.NewDecoder(respB.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qr.Error, "overloaded") {
		t.Fatalf("B line error %q does not mention overload", qr.Error)
	}
	// B's shed also lands in the metrics under the same clock.
	snap := s.Metrics().Snapshot()
	if len(snap.Routes) != 1 || snap.Routes[0].Shed != 1 || snap.Routes[0].Served != 1 {
		t.Fatalf("metrics %+v, want served=1 shed=1", snap.Routes)
	}
}

// TestQueryMalformedLinesCounted pins the rejected-traffic bugfix on the
// HTTP surface: a 400 for an unparsable or wrong-dimension line must also
// bump the query route's rejected counter, so a stream of malformed
// traffic shows up in /metrics instead of vanishing into per-caller 400s.
func TestQueryMalformedLinesCounted(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{MaxBatch: 2, QueueDepth: 8})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	bad := postLines(t, srv.URL, `{oops`)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON line gave %d, want 400", bad.StatusCode)
	}
	short := postLines(t, srv.URL, `{"x":[1,2]}`)
	short.Body.Close()
	if short.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dimension line gave %d, want 400", short.StatusCode)
	}
	snap := s.Metrics().Snapshot()
	if len(snap.Routes) != 1 || snap.Routes[0].Route != "query" {
		t.Fatalf("routes %+v, want only query", snap.Routes)
	}
	if r := snap.Routes[0]; r.Rejected != 2 || r.Requests != 2 || r.Offered != 2 || r.Served != 0 {
		t.Fatalf("query route %+v, want offered=rejected=requests=2", r)
	}
}
