package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pelta/internal/tensor"
)

// QueryRequest is one NDJSON line POSTed to /query: a flattened sample in
// the service's input shape, with an optional per-request deadline.
type QueryRequest struct {
	// X is the flattened [C*H*W] pixel vector in [0,1].
	X []float32 `json:"x"`
	// DeadlineMs, when > 0, sheds the request if it cannot be served
	// within that many milliseconds of arrival.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
}

// QueryResponse is one NDJSON line of the reply, index-aligned with the
// request stream.
type QueryResponse struct {
	// Class is the argmax label (meaningless when Error is set).
	Class  int       `json:"class"`
	Logits []float32 `json:"logits,omitempty"`
	Ms     float64   `json:"ms,omitempty"`
	Batch  int       `json:"batch,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// maxQueryLines bounds one /query body so a runaway client cannot buffer
// unbounded requests server-side; larger streams should use more requests.
const maxQueryLines = 16384

// NewHandler returns the HTTP surface of a Service:
//
//	POST /query   — NDJSON: one QueryRequest per line, one QueryResponse
//	                per line back, in request order. Lines are submitted
//	                concurrently, so a single connection still exercises
//	                the micro-batcher. ?logits=1 echoes full logit rows.
//	GET  /metrics — JSON metrics Snapshot.
//	GET  /healthz — liveness probe.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Metrics().Snapshot())
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST NDJSON to /query", http.StatusMethodNotAllowed)
			return
		}
		wantLogits := r.URL.Query().Get("logits") == "1"
		dim := 1
		for _, d := range s.pool.InputShape() {
			dim *= d
		}

		var reqs []QueryRequest
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var q QueryRequest
			if err := json.Unmarshal(line, &q); err != nil {
				http.Error(w, fmt.Sprintf("line %d: %v", len(reqs)+1, err), http.StatusBadRequest)
				return
			}
			if len(q.X) != dim {
				http.Error(w, fmt.Sprintf("line %d: sample has %d values, want %d", len(reqs)+1, len(q.X), dim), http.StatusBadRequest)
				return
			}
			if len(reqs) == maxQueryLines {
				http.Error(w, fmt.Sprintf("too many lines (max %d)", maxQueryLines), http.StatusRequestEntityTooLarge)
				return
			}
			reqs = append(reqs, q)
		}
		if err := sc.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}

		// Fan the lines out concurrently — the batcher coalesces them —
		// then answer in input order. In-flight submits from one body are
		// bounded by the admission queue depth, so a large NDJSON batch
		// streams through the scheduler instead of stampeding the bounded
		// queue and shedding most of itself while replicas sit idle.
		out := make([]QueryResponse, len(reqs))
		sem := make(chan struct{}, s.cfg.QueueDepth)
		var wg sync.WaitGroup
		for i, q := range reqs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, q QueryRequest) {
				defer wg.Done()
				defer func() { <-sem }()
				x := tensor.FromSlice(q.X, s.pool.InputShape()...)
				var deadline time.Time
				if q.DeadlineMs > 0 {
					deadline = time.Now().Add(time.Duration(q.DeadlineMs * float64(time.Millisecond)))
				}
				start := time.Now()
				res, err := s.Submit("query", x, deadline)
				if err != nil {
					out[i] = QueryResponse{Error: err.Error()}
					return
				}
				out[i] = QueryResponse{
					Class: res.Class,
					Ms:    float64(time.Since(start)) / float64(time.Millisecond),
					Batch: res.BatchSize,
				}
				if wantLogits {
					out[i].Logits = append([]float32(nil), res.Logits.Data()...)
				}
			}(i, q)
		}
		wg.Wait()
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, resp := range out {
			_ = enc.Encode(resp)
		}
	})
	return mux
}
