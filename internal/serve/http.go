package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pelta/internal/tensor"
)

// QueryRequest is one NDJSON line POSTed to /query: a flattened sample in
// the service's input shape, with an optional per-request deadline.
type QueryRequest struct {
	// X is the flattened [C*H*W] pixel vector in [0,1].
	X []float32 `json:"x"`
	// DeadlineMs, when > 0, sheds the request if it cannot be served
	// within that many milliseconds of arrival.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
}

// QueryResponse is one NDJSON line of the reply, index-aligned with the
// request stream.
type QueryResponse struct {
	// Class is the argmax label (meaningless when Error is set).
	Class  int       `json:"class"`
	Logits []float32 `json:"logits,omitempty"`
	Ms     float64   `json:"ms,omitempty"`
	Batch  int       `json:"batch,omitempty"`
	// Flagged reports that the probe detector considered this connection's
	// client flagged when the line was admitted (only ever set with
	// detection enabled).
	Flagged bool   `json:"flagged,omitempty"`
	Error   string `json:"error,omitempty"`
}

// maxQueryLines bounds one /query body so a runaway client cannot buffer
// unbounded requests server-side; larger streams should use more requests.
const maxQueryLines = 16384

// Summary headers of a /query response: how many lines were served, shed
// by admission control, and failed in the inference path. A load client
// detects total overload from the status code and these counters without
// parsing every NDJSON line.
const (
	HeaderServed = "X-Pelta-Served"
	HeaderShed   = "X-Pelta-Shed"
	HeaderErrors = "X-Pelta-Errors"
)

// HeaderClient names the request header carrying the caller's client
// identity for the probe detector. Absent, the identity falls back to the
// connection's remote host, so NATed callers sharing an address also share
// a similarity cache — supply the header for precise attribution.
const HeaderClient = "X-Pelta-Client"

// clientID derives the probe-detector client identity of one request.
func clientID(r *http.Request) string {
	if c := r.Header.Get(HeaderClient); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// NewHandler returns the HTTP surface of a Service:
//
//	POST /query   — NDJSON: one QueryRequest per line, one QueryResponse
//	                per line back, in request order. Lines are submitted
//	                concurrently, so a single connection still exercises
//	                the micro-batcher. ?logits=1 echoes full logit rows.
//	                X-Pelta-Served/-Shed/-Errors summarize the line
//	                outcomes; a request where no line at all was served
//	                answers 503 (every line shed or errored) so callers can
//	                back off without scanning the body.
//	GET  /metrics — JSON metrics Snapshot; ?format=prom switches to
//	                Prometheus text exposition from the unified registry
//	                (serve, detect, autoscaler, kernel, and tee samples).
//	GET  /trace   — recent span records as NDJSON, ordered by span ID
//	                (404 when Config.Trace is unset).
//	GET  /healthz — liveness probe.
//
// Deadlines and per-line latencies are computed on the Service clock, so
// HTTP-level shedding agrees with the batcher's and the whole surface is
// testable under a fake clock.
func NewHandler(s *Service) http.Handler { return NewHandlerWith(s, HandlerOptions{}) }

// HandlerOptions tunes the optional parts of the HTTP surface.
type HandlerOptions struct {
	// Pprof mounts net/http/pprof under /debug/pprof/ — off by default
	// because the profiling surface leaks operational detail.
	Pprof bool
}

// NewHandlerWith is NewHandler with options.
func NewHandlerWith(s *Service, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = s.Registry().WriteProm(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Metrics().Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		tr := s.Tracer()
		if tr == nil {
			http.Error(w, "tracing disabled (service built without Config.Trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = tr.WriteNDJSON(w)
	})
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST NDJSON to /query", http.StatusMethodNotAllowed)
			return
		}
		wantLogits := r.URL.Query().Get("logits") == "1"
		dim := 1
		for _, d := range s.pool.InputShape() {
			dim *= d
		}

		var reqs []QueryRequest
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var q QueryRequest
			if err := json.Unmarshal(line, &q); err != nil {
				// Malformed traffic must show up in /metrics, not just in
				// the caller's 400 — see Metrics.Rejected. Offered keeps the
				// offered−requests in-flight invariant for lines that never
				// reach Submit.
				s.metrics.Offered("query")
				s.metrics.Rejected("query")
				http.Error(w, fmt.Sprintf("line %d: %v", len(reqs)+1, err), http.StatusBadRequest)
				return
			}
			if len(q.X) != dim {
				s.metrics.Offered("query")
				s.metrics.Rejected("query")
				http.Error(w, fmt.Sprintf("line %d: sample has %d values, want %d", len(reqs)+1, len(q.X), dim), http.StatusBadRequest)
				return
			}
			if len(reqs) == maxQueryLines {
				s.metrics.Offered("query")
				s.metrics.Rejected("query")
				http.Error(w, fmt.Sprintf("too many lines (max %d)", maxQueryLines), http.StatusRequestEntityTooLarge)
				return
			}
			reqs = append(reqs, q)
		}
		if err := sc.Err(); err != nil {
			// An oversized or truncated line is rejected traffic too.
			s.metrics.Offered("query")
			s.metrics.Rejected("query")
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}

		// Fan the lines out concurrently — the batcher coalesces them —
		// then answer in input order. In-flight submits from one body are
		// bounded by the admission queue depth, so a large NDJSON batch
		// streams through the scheduler instead of stampeding the bounded
		// queue and shedding most of itself while replicas sit idle. (The
		// probe detector sees this client's lines in whatever order the
		// submits race in; near-duplicate detection is order-insensitive
		// within one body.)
		client := clientID(r)
		clock := s.Clock()
		out := make([]QueryResponse, len(reqs))
		var served, shed, failed atomic.Int64
		sem := make(chan struct{}, s.cfg.QueueDepth)
		var wg sync.WaitGroup
		for i, q := range reqs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, q QueryRequest) {
				defer wg.Done()
				defer func() { <-sem }()
				x := tensor.FromSlice(q.X, s.pool.InputShape()...)
				start := clock.Now()
				var deadline time.Time
				if q.DeadlineMs > 0 {
					deadline = start.Add(time.Duration(q.DeadlineMs * float64(time.Millisecond)))
				}
				res, err := s.SubmitFrom("query", client, x, deadline)
				if err != nil {
					if errors.Is(err, ErrOverloaded) {
						shed.Add(1)
					} else {
						failed.Add(1)
					}
					out[i] = QueryResponse{Error: err.Error()}
					return
				}
				served.Add(1)
				out[i] = QueryResponse{
					Class:   res.Class,
					Ms:      float64(clock.Now().Sub(start)) / float64(time.Millisecond),
					Batch:   res.BatchSize,
					Flagged: res.Flagged,
				}
				if wantLogits {
					out[i].Logits = append([]float32(nil), res.Logits.Data()...)
				}
			}(i, q)
		}
		wg.Wait()
		h := w.Header()
		h.Set("Content-Type", "application/x-ndjson")
		h.Set(HeaderServed, strconv.FormatInt(served.Load(), 10))
		h.Set(HeaderShed, strconv.FormatInt(shed.Load(), 10))
		h.Set(HeaderErrors, strconv.FormatInt(failed.Load(), 10))
		if len(reqs) > 0 && served.Load() == 0 {
			// Nothing in this request got an answer: the service is
			// overloaded (or down) from this caller's point of view, and a
			// 200 would force clients to parse every line to notice.
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		for _, resp := range out {
			_ = enc.Encode(resp)
		}
	})
	return mux
}
