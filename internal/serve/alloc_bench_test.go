package serve

import (
	"testing"
	"time"

	"pelta/internal/tensor"
)

// fixedReplica answers every batch from a single preallocated logits buffer
// so the benchmark isolates the scheduler's own allocations from replica
// work. It only supports batches up to its capacity.
type fixedReplica struct {
	classes int
	shape   []int
	out     *tensor.Tensor
}

func newFixedReplica(maxBatch int) *fixedReplica {
	r := &fixedReplica{classes: 3, shape: []int{1, 2, 2}}
	r.out = tensor.New(maxBatch, r.classes)
	return r
}

func (r *fixedReplica) Classes() int      { return r.classes }
func (r *fixedReplica) InputShape() []int { return r.shape }

func (r *fixedReplica) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	return r.out.SliceRange(0, x.Dim(0)), nil
}

// BenchmarkSubmitUntraced pins the Submit hot path's allocation count with
// tracing left at its default (disabled). TestSubmitUntracedAllocs guards
// the number so the observability layer cannot quietly tax the fast path.
func BenchmarkSubmitUntraced(b *testing.B) {
	benchmarkSubmit(b, Config{MaxBatch: 1, QueueDepth: 16})
}

// benchmarkSubmit drives sequential submits through a service built from
// cfg; MaxBatch=1 keeps every batch full so the delay timer never arms.
func benchmarkSubmit(b *testing.B, cfg Config) {
	p, err := NewReplicaPool(1, func(int) (Replica, error) { return newFixedReplica(cfg.MaxBatch), nil })
	if err != nil {
		b.Fatal(err)
	}
	s := NewService(p, cfg)
	defer s.Close()
	x := sample(1)
	// Warm the worker's batch buffer before measuring.
	if _, err := s.Submit("bench", x, time.Time{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit("bench", x, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
}
