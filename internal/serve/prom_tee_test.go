package serve_test

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pelta/internal/serve"
	"pelta/internal/tensor"
)

// TestPromExpositionTee pins the per-replica enclave gauges of a shielded
// pool in the Prometheus exposition — the stub pools used by the internal
// tests carry no enclaves, so the tee collector's real branch is covered
// here against the ViT fixture.
func TestPromExpositionTee(t *testing.T) {
	s := testService(t, 2, serve.Config{MaxBatch: 1})
	x := tensor.New(3, 8, 8)
	x.Fill(0.25)
	if _, err := s.Submit("query", x, time.Time{}); err != nil {
		t.Fatal(err)
	}

	rw := httptest.NewRecorder()
	serve.NewHandler(s).ServeHTTP(rw, httptest.NewRequest("GET", "/metrics?format=prom", nil))
	body := rw.Body.String()
	for _, want := range []string{
		"# TYPE pelta_enclave_used_bytes gauge",
		`pelta_enclave_used_bytes{replica="0"}`,
		`pelta_enclave_used_bytes{replica="1"}`,
		"pelta_enclave_limit_bytes",
		"pelta_enclave_world_switches_total",
		"pelta_enclave_overhead_ns_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("tee exposition missing %q in:\n%s", want, body)
		}
	}
}
