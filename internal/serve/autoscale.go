package serve

import "time"

// AutoscaleConfig enables the replica autoscaler: the service starts Min
// live workers and a control loop grows/shrinks the live set between Min
// and Max, driven by two signals read every Interval on the service clock:
//
//   - queue depth — the admission queue holding more than UpQueueFrac of
//     its capacity means the live replicas are falling behind; scale up.
//   - windowed p95 latency — served latency since the last tick exceeding
//     TargetP95 means the SLO is burning even if the queue still fits;
//     scale up.
//
// Scale-down is deliberately more reluctant (hysteresis): the queue must
// sit below DownQueueFrac and the windowed p95 inside half the SLO for
// DownStable consecutive ticks. Cooldown separates any two scale actions so
// the loop cannot flap. Every decision is appended to Service.ScaleEvents
// and counted in Metrics (live_replicas, scale_ups, scale_downs).
type AutoscaleConfig struct {
	// Min and Max bound the live replica count. Min defaults to 1; Max
	// defaults to (and is clamped at) the replica pool size.
	Min, Max int
	// TargetP95 is the latency SLO; 0 disables the latency signal and
	// leaves queue depth as the only trigger.
	TargetP95 time.Duration
	// Interval is the decision period (default 100ms).
	Interval time.Duration
	// Cooldown is the minimum time between two scale actions (default
	// 2×Interval).
	Cooldown time.Duration
	// UpQueueFrac scales up when queue depth ≥ this fraction of QueueDepth
	// (default 0.5).
	UpQueueFrac float64
	// DownQueueFrac allows scale-down only when queue depth ≤ this
	// fraction of QueueDepth (default 0.1).
	DownQueueFrac float64
	// DownStable is how many consecutive calm ticks precede a scale-down
	// (default 3).
	DownStable int
}

// withDefaults fills unset knobs and clamps the bounds to the pool.
func (c AutoscaleConfig) withDefaults(poolSize int) AutoscaleConfig {
	if c.Max <= 0 || c.Max > poolSize {
		c.Max = poolSize
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Min > c.Max {
		c.Min = c.Max
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.Interval
	}
	if c.UpQueueFrac <= 0 {
		c.UpQueueFrac = 0.5
	}
	if c.DownQueueFrac <= 0 {
		c.DownQueueFrac = 0.1
	}
	if c.DownStable <= 0 {
		c.DownStable = 3
	}
	return c
}

// ScaleEvent is one autoscaler action, timestamped on the service clock.
type ScaleEvent struct {
	At     time.Time `json:"at"`
	From   int       `json:"from"`
	To     int       `json:"to"`
	Reason string    `json:"reason"` // "queue-depth", "p95-slo" or "drain"
}

// autoscaler is the decision state of the control loop. step is the whole
// policy; the loop in Service merely calls it every Interval.
type autoscaler struct {
	s    *Service
	cfg  AutoscaleConfig
	last time.Time // last scale action
	calm int       // consecutive calm ticks
}

// step evaluates one decision tick at time now. The signals (queue depth,
// windowed p95) are read inside the service lock so a concurrent Close
// cannot race worker startup, and the decision is a pure function of those
// signals plus (last, calm) — which is what makes the loop reproducible
// under a fake clock.
func (a *autoscaler) step(now time.Time) {
	s := a.s
	p95, n := s.metrics.TakeWindow()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	live := s.liveN
	qFrac := float64(len(s.queue)) / float64(s.cfg.QueueDepth)
	targetMs := float64(a.cfg.TargetP95) / float64(time.Millisecond)
	hotQueue := qFrac >= a.cfg.UpQueueFrac
	hotP95 := targetMs > 0 && n > 0 && p95 > targetMs
	calmTick := qFrac <= a.cfg.DownQueueFrac && (targetMs <= 0 || n == 0 || p95 <= targetMs/2)
	cooled := a.last.IsZero() || !now.Before(a.last.Add(a.cfg.Cooldown))
	switch {
	case hotQueue || hotP95:
		a.calm = 0
		if live < a.cfg.Max && cooled {
			reason := "queue-depth"
			if !hotQueue {
				reason = "p95-slo"
			}
			if s.scaleLocked(live+1, now, reason) {
				a.last = now
			}
		}
	case calmTick:
		a.calm++
		if live > a.cfg.Min && a.calm >= a.cfg.DownStable && cooled {
			if s.scaleLocked(live-1, now, "drain") {
				a.last = now
				a.calm = 0
			}
		}
	default:
		a.calm = 0
	}
}

// autoscaleLoop drives the decision loop on the service clock until Close.
func (s *Service) autoscaleLoop() {
	defer s.wg.Done()
	for {
		t := s.cfg.Clock.NewTimer(s.scaler.cfg.Interval)
		select {
		case <-s.scaleQuit:
			t.Stop()
			return
		case now := <-t.C():
			s.scaler.step(now)
		}
	}
}
