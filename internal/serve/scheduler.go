package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pelta/internal/detect"
	"pelta/internal/obs"
	"pelta/internal/tensor"
)

// ErrOverloaded is returned when admission control sheds a request: the
// bounded queue is full, or the request's deadline passed before a replica
// could serve it. Callers detect it with errors.Is and should back off.
var ErrOverloaded = errors.New("serve: overloaded")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: service closed")

// Config tunes the micro-batching scheduler.
type Config struct {
	// MaxBatch is the largest tensor batch coalesced from queued requests
	// (default 8). A full batch dispatches immediately.
	MaxBatch int
	// MaxDelay bounds how long a partial batch waits for company before it
	// is flushed anyway (default 2ms). Lower favors latency, higher favors
	// throughput.
	MaxDelay time.Duration
	// QueueDepth bounds the admission queue (default 8×MaxBatch). A
	// request arriving at a full queue is shed with ErrOverloaded instead
	// of growing the backlog without bound.
	QueueDepth int
	// Clock overrides wall time (tests); nil selects the real clock.
	Clock Clock
	// Autoscale, when non-nil, enables the replica autoscaler: the service
	// starts Autoscale.Min live workers instead of one per pool replica
	// and a control loop grows/shrinks the live set. Nil keeps the static
	// one-worker-per-replica provisioning.
	Autoscale *AutoscaleConfig
	// Admission, when non-nil with Rate > 0, enables per-route
	// weighted-fair admission (token buckets) ahead of the shared queue.
	// Nil keeps the shared-queue-only admission.
	Admission *AdmissionConfig
	// Detect, when non-nil, enables the stateful probe detector as a
	// third admission signal: queries submitted with a client identity
	// (SubmitFrom) feed per-client similarity caches on the service
	// clock, and flagged clients are handled per Detect.Action. Nil — the
	// default — keeps the detector entirely out of the request path.
	Detect *DetectConfig
	// Trace, when non-nil, enables per-request span tracing on the
	// service clock plus the kernel-boundary hooks in internal/tensor.
	// Nil — the default — keeps tracing entirely off the Submit hot path
	// (no extra clock reads, no allocations).
	Trace *TraceConfig
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8 * c.MaxBatch
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// Result is one served request's answer.
type Result struct {
	// Logits is the caller-owned [classes] output row.
	Logits *tensor.Tensor
	// Class is the argmax label.
	Class int
	// BatchSize is how many requests shared the tensor batch.
	BatchSize int
	// Queued is the time spent waiting before the batch started.
	Queued time.Duration
	// Flagged reports that the probe detector considered the submitting
	// client flagged when this request was admitted (always false without
	// Config.Detect or a client identity).
	Flagged bool
}

// request is one queued unit of work.
type request struct {
	x        *tensor.Tensor // [C,H,W]
	route    string
	deadline time.Time // zero = no deadline
	enqueued time.Time
	flagged  bool // probe detector verdict at admission
	done     chan response

	// sp is the request's span timeline, populated only when the service
	// traces (inline by value, so tracing adds no allocation either). The
	// submitter finishes writing sp before the queue send; the worker owns
	// it afterwards. traced marks requests in the systematic sample —
	// anomalies are emitted regardless.
	sp     obs.SpanRecord
	traced bool
}

type response struct {
	res *Result
	err error
}

// Service turns a ReplicaPool into a multi-client inference service: Submit
// enqueues a single sample; a batcher goroutine coalesces queued requests
// into tensor batches under the MaxBatch/MaxDelay policy; one worker per
// replica runs the batches and fans each row back to its caller.
type Service struct {
	pool    *ReplicaPool
	cfg     Config
	metrics *Metrics
	admit   *admitter        // nil = admission control disabled
	det     *detect.Detector // nil = probe detection disabled
	scaler  *autoscaler      // nil = static provisioning

	tracer    *obs.Tracer      // nil = tracing disabled
	kernels   *obs.KernelStats // nil = kernel hooks disarmed
	registry  *obs.Registry
	hookOwner bool // this service installed the tensor kernel hook

	queue     chan *request
	dispatch  chan []*request
	scaleQuit chan struct{}
	wg        sync.WaitGroup

	mu      sync.RWMutex
	closed  bool
	workers []*workerHandle // indexed by replica; nil = never started
	liveN   int             // workers[:liveN] are live (not stop-signalled)
	events  []ScaleEvent
}

// workerHandle tracks one worker goroutine's lifecycle: stop asks it to
// exit between batches, done closes when it has fully exited (so a replica
// is never handed to a new worker while the old one still runs a batch).
type workerHandle struct {
	stop chan struct{}
	done chan struct{}
}

// NewService starts the scheduler over pool. Close releases it. Without
// Autoscale every pool replica gets a worker immediately (static
// provisioning, the pre-control-plane behavior); with it, Min workers start
// and the autoscale loop owns the rest.
func NewService(pool *ReplicaPool, cfg Config) *Service {
	cfg = cfg.withDefaults()
	if cfg.Autoscale != nil {
		a := cfg.Autoscale.withDefaults(pool.Size())
		cfg.Autoscale = &a
	}
	s := &Service{
		pool:     pool,
		cfg:      cfg,
		metrics:  NewMetricsAt(cfg.Clock),
		dispatch: make(chan []*request),
		workers:  make([]*workerHandle, pool.Size()),
	}
	if cfg.Admission != nil && cfg.Admission.Rate > 0 {
		s.admit = newAdmitter(*cfg.Admission)
	}
	if cfg.Detect != nil {
		s.det = detect.New(cfg.Detect.Config)
	}
	s.initObservability()
	s.queue = make(chan *request, s.cfg.QueueDepth)
	s.wg.Add(1)
	go s.batcher()
	initial := pool.Size()
	if cfg.Autoscale != nil {
		initial = cfg.Autoscale.Min
	}
	s.mu.Lock()
	for s.liveN < initial {
		s.startWorkerLocked()
	}
	s.mu.Unlock()
	s.metrics.SetReplicas(initial)
	if cfg.Autoscale != nil {
		s.metrics.EnableWindow()
		s.scaler = &autoscaler{s: s, cfg: *cfg.Autoscale}
		s.scaleQuit = make(chan struct{})
		s.wg.Add(1)
		go s.autoscaleLoop()
	}
	return s
}

// startWorkerLocked starts the next worker (replica index liveN) under
// s.mu. It reports false when that replica's previous worker has not fully
// exited yet — the caller retries on a later tick rather than ever running
// two workers on one replica.
func (s *Service) startWorkerLocked() bool {
	i := s.liveN
	if h := s.workers[i]; h != nil {
		select {
		case <-h.done:
		default:
			return false // still draining its last batch
		}
	}
	h := &workerHandle{stop: make(chan struct{}), done: make(chan struct{})}
	s.workers[i] = h
	s.liveN++
	s.wg.Add(1)
	go s.worker(s.pool.replicas[i], h)
	return true
}

// maxScaleEvents bounds the retained scale-event history: a long-running
// deployment oscillating once per cooldown must not grow the log without
// bound. The metrics counters keep the lifetime totals; the log keeps the
// recent story.
const maxScaleEvents = 1024

// scaleLocked moves the live worker count to target under s.mu, recording
// the event and the metrics gauge. It reports whether the count changed
// (scale-up can be blocked by a still-draining replica).
func (s *Service) scaleLocked(target int, now time.Time, reason string) bool {
	from := s.liveN
	for s.liveN < target {
		if !s.startWorkerLocked() {
			break
		}
	}
	for s.liveN > target {
		s.liveN--
		close(s.workers[s.liveN].stop)
	}
	if s.liveN == from {
		return false
	}
	if len(s.events) == maxScaleEvents {
		copy(s.events, s.events[1:])
		s.events = s.events[:maxScaleEvents-1]
	}
	s.events = append(s.events, ScaleEvent{At: now, From: from, To: s.liveN, Reason: reason})
	s.metrics.RecordScale(from, s.liveN)
	return true
}

// LiveReplicas returns how many workers are currently live — the
// autoscaler's gauge, equal to the pool size on a static service.
func (s *Service) LiveReplicas() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveN
}

// ScaleEvents returns a copy of the autoscaler's actions in order (the
// most recent maxScaleEvents; lifetime totals live in the metrics).
func (s *Service) ScaleEvents() []ScaleEvent {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]ScaleEvent(nil), s.events...)
}

// Metrics exposes the service's metrics core.
func (s *Service) Metrics() *Metrics { return s.metrics }

// Detector exposes the probe detector, or nil when Config.Detect is unset.
func (s *Service) Detector() *detect.Detector { return s.det }

// Clock returns the clock the scheduler runs on (real unless injected), so
// the HTTP layer computes deadlines and latencies on the same timeline the
// batcher sheds by.
func (s *Service) Clock() Clock { return s.cfg.Clock }

// Pool returns the served replica pool.
func (s *Service) Pool() *ReplicaPool { return s.pool }

// Close drains the scheduler: queued requests still complete, then the
// batcher and workers exit. Submit calls after Close return ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.scaleQuit != nil {
		close(s.scaleQuit)
	}
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	if s.hookOwner {
		tensor.SetKernelHook(nil)
	}
}

// Submit enqueues one sample x (shape [C,H,W], or [1,C,H,W]) and blocks
// until it is served or shed. A zero deadline means "no deadline";
// otherwise a request still queued past its deadline is shed with
// ErrOverloaded instead of being served late. x must not be mutated until
// Submit returns. Submit carries no client identity, so the probe
// detector never sees these requests — SubmitFrom is the detected path.
func (s *Service) Submit(route string, x *tensor.Tensor, deadline time.Time) (*Result, error) {
	return s.SubmitFrom(route, "", x, deadline)
}

// SubmitFrom is Submit with a client identity: when the probe detector is
// configured and client is non-empty, the query is fingerprinted into the
// client's similarity cache before admission, and a flagged client's
// requests are logged, deprioritized or shed per the configured
// DetectAction. An empty client skips detection (exactly Submit).
func (s *Service) SubmitFrom(route, client string, x *tensor.Tensor, deadline time.Time) (*Result, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		// No metrics on a closed service: a closed-path Offered with no
		// resolving counter would read as an in-flight request forever.
		return nil, ErrClosed
	}
	// Span timestamps are taken only when tracing is armed; the untraced
	// path performs no extra clock reads and no allocations (sp lives on
	// the stack here and inline in the request struct).
	tr := s.tracer
	var sp obs.SpanRecord
	var sampled bool
	if tr != nil {
		sp = obs.NewSpanRecord(s.cfg.Clock.Now())
		sp.ID, sampled = tr.Begin()
		sp.Route, sp.Client = route, client
	}
	s.metrics.Offered(route)
	want := s.pool.InputShape()
	if x.Rank() == len(want)+1 && x.Dim(0) == 1 {
		x = x.Slice(0)
	}
	if x.Rank() != len(want) {
		s.mu.RUnlock()
		s.metrics.Rejected(route)
		if tr != nil {
			sp.Outcome = obs.OutcomeRejected
			tr.Emit(sp)
		}
		return nil, fmt.Errorf("serve: sample rank %d, want shape %v", x.Rank(), want)
	}
	for i, d := range want {
		if x.Dim(i) != d {
			s.mu.RUnlock()
			s.metrics.Rejected(route)
			if tr != nil {
				sp.Outcome = obs.OutcomeRejected
				tr.Emit(sp)
			}
			return nil, fmt.Errorf("serve: sample shape %v, want %v", x.Shape(), want)
		}
	}

	now := s.cfg.Clock.Now()
	if !deadline.IsZero() && now.After(deadline) {
		s.mu.RUnlock()
		s.metrics.Shed(route)
		if tr != nil {
			sp.Outcome = obs.OutcomeShedDeadlineAdmit
			tr.Emit(sp)
		}
		return nil, fmt.Errorf("serve: deadline passed at admission: %w", ErrOverloaded)
	}
	admitRoute := route
	var flagged bool
	if s.det != nil && client != "" {
		if tr != nil {
			sp.DetectStart = sp.Offset(s.cfg.Clock.Now())
		}
		dec := s.det.Observe(client, x, now)
		if tr != nil {
			sp.DetectEnd = sp.Offset(s.cfg.Clock.Now())
			sp.Flagged = dec.Flagged
		}
		s.metrics.Probe(route, dec.Hit, dec.Flagged, dec.NewFlag)
		if dec.Flagged {
			flagged = true
			switch s.cfg.Detect.Action {
			case DetectShed:
				s.mu.RUnlock()
				s.metrics.DetectShed(route)
				if tr != nil {
					sp.Outcome = obs.OutcomeShedDetect
					tr.Emit(sp)
				}
				return nil, fmt.Errorf("serve: probe detector shed client %q: %w (%w)", client, ErrFlagged, ErrOverloaded)
			case DetectDeprioritize:
				// Charge the flagged bucket instead of the client's route;
				// without weighted-fair admission this degrades to logging.
				admitRoute = FlaggedRoute
			}
		}
	}
	if s.admit != nil && !s.admit.allow(admitRoute, now) {
		s.mu.RUnlock()
		s.metrics.Shed(route)
		if tr != nil {
			sp.Outcome = obs.OutcomeShedAdmitLimit
			tr.Emit(sp)
		}
		return nil, fmt.Errorf("serve: admission limit for route %q (weighted token bucket): %w", admitRoute, ErrOverloaded)
	}
	r := &request{x: x, route: route, deadline: deadline, enqueued: now, flagged: flagged, done: make(chan response, 1)}
	if tr != nil {
		// The enqueue instant closes the admission stage; after the queue
		// send the worker owns r.sp, so it is finalized here.
		sp.Enqueued = sp.Offset(s.cfg.Clock.Now())
		r.sp = sp
		r.traced = sampled
	}
	select {
	case s.queue <- r:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.metrics.Shed(route)
		if tr != nil {
			// The request never made it into the queue: report the local
			// copy with the enqueue instant rolled back.
			sp.Enqueued = obs.NoOffset
			sp.Outcome = obs.OutcomeShedQueueFull
			tr.Emit(sp)
		}
		return nil, fmt.Errorf("serve: admission queue full (depth %d): %w", s.cfg.QueueDepth, ErrOverloaded)
	}

	resp := <-r.done
	return resp.res, resp.err
}

// batcher coalesces queued requests into batches: it opens a batch on the
// first arrival, greedily drains whatever is already queued, and flushes on
// whichever comes first of MaxBatch or MaxDelay. Requests never queue
// behind an idle timer: an already-full queue produces full batches without
// ever consulting the clock, which is what makes the policy deterministic
// under a fake clock.
func (s *Service) batcher() {
	defer s.wg.Done()
	defer close(s.dispatch)
	for {
		r, ok := <-s.queue
		if !ok {
			return
		}
		batch := append(make([]*request, 0, s.cfg.MaxBatch), r)
		var timer Timer
		var timerC <-chan time.Time
		qClosed := false
	fill:
		for len(batch) < s.cfg.MaxBatch {
			// Drain immediately available requests without arming a timer.
			select {
			case r2, ok := <-s.queue:
				if !ok {
					qClosed = true
					break fill
				}
				batch = append(batch, r2)
				continue
			default:
			}
			if timer == nil {
				timer = s.cfg.Clock.NewTimer(s.cfg.MaxDelay)
				timerC = timer.C()
			}
			select {
			case r2, ok := <-s.queue:
				if !ok {
					qClosed = true
					break fill
				}
				batch = append(batch, r2)
			case <-timerC:
				break fill
			}
		}
		if timer != nil {
			timer.Stop()
		}
		s.dispatch <- batch
		if qClosed {
			return
		}
	}
}

// worker owns one replica: it sheds expired requests, stacks the rest into
// a [B,C,H,W] tensor, runs the replica, and fans rows back. It exits when
// the dispatch channel closes (service shutdown) or its stop channel closes
// (autoscaler scale-down) — in the latter case always between batches,
// never abandoning one mid-flight.
func (s *Service) worker(rep Replica, h *workerHandle) {
	defer s.wg.Done()
	defer close(h.done)
	var bx *tensor.Tensor
	for {
		var batch []*request
		select {
		case <-h.stop:
			return
		default:
		}
		select {
		case <-h.stop:
			return
		case b, ok := <-s.dispatch:
			if !ok {
				return
			}
			batch = b
		}
		now := s.cfg.Clock.Now()
		tr := s.tracer
		live := batch[:0]
		for _, r := range batch {
			if tr != nil {
				r.sp.Pickup = r.sp.Offset(now)
			}
			if !r.deadline.IsZero() && now.After(r.deadline) {
				s.metrics.Shed(r.route)
				if tr != nil {
					r.sp.Outcome = obs.OutcomeShedDeadlineBatch
					tr.Emit(r.sp)
				}
				r.done <- response{err: fmt.Errorf("serve: deadline exceeded before service: %w", ErrOverloaded)}
				continue
			}
			live = append(live, r)
		}
		if len(live) == 0 {
			continue
		}
		// One MaxBatch-sized buffer per worker; partial batches run on a
		// zero-copy view so oscillating batch sizes never reallocate.
		if bx == nil {
			bx = tensor.New(append([]int{s.cfg.MaxBatch}, s.pool.InputShape()...)...)
		}
		view := bx.SliceRange(0, len(live))
		for i, r := range live {
			view.Slice(i).CopyFrom(r.x)
		}
		// Batch assembly ends and inference starts here; the kernel-total
		// delta around the replica call attributes matmul/conv/attention
		// time to this batch (approximate under concurrent workers).
		var inferStart time.Time
		var kBefore [3]int64
		if tr != nil {
			inferStart = s.cfg.Clock.Now()
			if s.kernels != nil {
				kBefore = s.kernels.SnapshotNS()
			}
		}
		logits, err := rep.Logits(view)
		done := s.cfg.Clock.Now()
		var kDelta [3]int64
		if tr != nil && s.kernels != nil {
			kAfter := s.kernels.SnapshotNS()
			for i := range kDelta {
				kDelta[i] = kAfter[i] - kBefore[i]
			}
		}
		finishSpan := func(r *request, outcome string) {
			r.sp.InferStart = r.sp.Offset(inferStart)
			r.sp.InferEnd = r.sp.Offset(done)
			r.sp.Batch = len(live)
			r.sp.MatMulNS = kDelta[obs.KernelMatMul]
			r.sp.ConvNS = kDelta[obs.KernelConv]
			r.sp.AttnNS = kDelta[obs.KernelAttention]
			r.sp.Outcome = outcome
			if r.traced || r.sp.Anomaly() {
				tr.Emit(r.sp)
			}
		}
		if err != nil {
			for _, r := range live {
				s.metrics.Error(r.route)
				if tr != nil {
					finishSpan(r, obs.OutcomeError)
				}
				r.done <- response{err: fmt.Errorf("serve: replica failed: %w", err)}
			}
			continue
		}
		for i, r := range live {
			row := logits.Row(i).Clone()
			s.metrics.Served(r.route, done.Sub(r.enqueued), len(live))
			if tr != nil {
				finishSpan(r, obs.OutcomeServed)
			}
			r.done <- response{res: &Result{
				Logits:    row,
				Class:     tensor.Argmax(row),
				BatchSize: len(live),
				Queued:    now.Sub(r.enqueued),
				Flagged:   r.flagged,
			}}
		}
	}
}
