package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/serve"
	"pelta/internal/tensor"
)

// testModel builds a tiny deterministic ViT; every call with the same seed
// returns an independent copy with identical weights.
func testModel(seed int64) *models.ViT {
	return models.NewViT(models.SmallViT("ViT-L/16", 3, 8, 2), tensor.NewRNG(seed))
}

func testService(t *testing.T, replicas int, cfg serve.Config) *serve.Service {
	t.Helper()
	pool, err := serve.NewShieldedPool(replicas, 0, func(i int) (models.Model, error) {
		return testModel(5), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.NewService(pool, cfg)
	t.Cleanup(s.Close)
	return s
}

// TestServiceMatchesDirectInference serves concurrent shielded requests and
// checks every answer bit-identically matches a direct single-sample
// forward on the same weights — micro-batching must not change logits.
func TestServiceMatchesDirectInference(t *testing.T) {
	cfg := dataset.SynthCIFAR10(8, 9)
	cfg.Classes, cfg.TrainN, cfg.ValN = 3, 3, 24
	_, val := dataset.Generate(cfg)

	ref := testModel(5)
	s := testService(t, 2, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond})

	var wg sync.WaitGroup
	results := make([]*serve.Result, val.Len())
	errs := make([]error, val.Len())
	for i := 0; i < val.Len(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit("query", val.X.Slice(i), time.Time{})
		}(i)
	}
	wg.Wait()

	for i := 0; i < val.Len(); i++ {
		if errs[i] != nil {
			t.Fatalf("sample %d: %v", i, errs[i])
		}
		direct := models.Logits(ref, val.X.Slice(i).Reshape(1, 3, 8, 8))
		for j := 0; j < 3; j++ {
			if got, want := results[i].Logits.At(j), direct.At(0, j); got != want {
				t.Fatalf("sample %d class %d: served %v != direct %v (batch %d)",
					i, j, got, want, results[i].BatchSize)
			}
		}
	}
	snap := s.Metrics().Snapshot()
	if len(snap.Routes) != 1 || snap.Routes[0].Served != uint64(val.Len()) {
		t.Fatalf("metrics %+v, want %d served on one route", snap.Routes, val.Len())
	}
}

// TestClearPoolServes covers the -shield=false path.
func TestClearPoolServes(t *testing.T) {
	pool, err := serve.NewClearPool(2, func(i int) (models.Model, error) {
		return testModel(5), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.NewService(pool, serve.Config{MaxBatch: 2, MaxDelay: time.Millisecond})
	defer s.Close()

	ref := testModel(5)
	x := tensor.NewRNG(3).Normal(0.5, 0.1, 1, 3, 8, 8)
	tensor.ClampIn(x, 0, 1)
	res, err := s.Submit("query", x, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	direct := models.Logits(ref, x)
	for j := 0; j < 3; j++ {
		if res.Logits.At(j) != direct.At(0, j) {
			t.Fatalf("clear replica logits differ at %d", j)
		}
	}
}

// TestHTTPQueryEndpoint drives the NDJSON surface end to end: a stream of
// lines comes back in order with classes matching direct inference, and
// /metrics exposes the route counters.
func TestHTTPQueryEndpoint(t *testing.T) {
	cfg := dataset.SynthCIFAR10(8, 9)
	cfg.Classes, cfg.TrainN, cfg.ValN = 3, 3, 6
	_, val := dataset.Generate(cfg)

	s := testService(t, 1, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	srv := httptest.NewServer(serve.NewHandler(s))
	defer srv.Close()

	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := 0; i < val.Len(); i++ {
		if err := enc.Encode(serve.QueryRequest{X: append([]float32(nil), val.X.Slice(i).Data()...)}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(srv.URL+"/query?logits=1", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	ref := testModel(5)
	dec := json.NewDecoder(resp.Body)
	for i := 0; i < val.Len(); i++ {
		var qr serve.QueryResponse
		if err := dec.Decode(&qr); err != nil {
			t.Fatalf("response line %d: %v", i, err)
		}
		if qr.Error != "" {
			t.Fatalf("line %d: %s", i, qr.Error)
		}
		direct := models.Logits(ref, val.X.Slice(i).Reshape(1, 3, 8, 8))
		want := tensor.ArgmaxRows(direct)[0]
		if qr.Class != want {
			t.Fatalf("line %d class %d, want %d", i, qr.Class, want)
		}
		if len(qr.Logits) != 3 || qr.Logits[want] != direct.At(0, want) {
			t.Fatalf("line %d logits %v do not match direct %v", i, qr.Logits, direct)
		}
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap serve.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range snap.Routes {
		if r.Route == "query" && r.Served == uint64(val.Len()) {
			found = true
		}
	}
	if !found {
		t.Fatalf("metrics snapshot missing query route: %+v", snap.Routes)
	}

	// Malformed line → 400, not a hang or crash.
	bad, err := http.Post(srv.URL+"/query", "application/x-ndjson", strings.NewReader("{oops\n"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed line gave %d, want 400", bad.StatusCode)
	}
}

// TestRunLoadMixedTraffic exercises the load generator: mixed benign and
// "adversarial" items at an open-loop rate, with accounting that adds up.
func TestRunLoadMixedTraffic(t *testing.T) {
	cfg := dataset.SynthCIFAR10(8, 9)
	cfg.Classes, cfg.TrainN, cfg.ValN = 3, 3, 8
	_, val := dataset.Generate(cfg)

	s := testService(t, 2, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond, QueueDepth: 64})
	var items []serve.TrafficItem
	for i := 0; i < val.Len(); i++ {
		items = append(items, serve.TrafficItem{X: val.X.Slice(i), Label: val.Y[i], Adversarial: i%2 == 1})
	}
	rep, err := serve.RunLoad(s, items, serve.LoadConfig{Rate: 500, Requests: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 40 || rep.Served+rep.Shed+rep.Failed != 40 {
		t.Fatalf("accounting broken: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d failed: %+v", rep.Failed, rep)
	}
	if rep.BenignServed+rep.AdvServed != rep.Served {
		t.Fatalf("benign %d + adv %d != served %d", rep.BenignServed, rep.AdvServed, rep.Served)
	}
	if len(rep.LatenciesMs) != rep.Served {
		t.Fatalf("%d latency samples, want %d", len(rep.LatenciesMs), rep.Served)
	}
	if rep.Throughput <= 0 {
		t.Fatal("throughput not measured")
	}
	snap := s.Metrics().Snapshot()
	var routes []string
	for _, r := range snap.Routes {
		routes = append(routes, fmt.Sprintf("%s:%d", r.Route, r.Served))
	}
	if len(snap.Routes) != 2 {
		t.Fatalf("want benign+adv routes, got %v", routes)
	}
}
