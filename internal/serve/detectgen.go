package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// QueryStream is one labeled client's query sequence for a detection run:
// the ground truth the detector is scored against. A Probe stream models
// one attacker (the ordered iterates of a single attack run); a benign
// stream models one honest caller.
type QueryStream struct {
	// Client is the detector identity the stream submits as (unique per
	// stream, or the ground truth is ambiguous).
	Client string
	// Family names the traffic family for the per-family quality table —
	// an attack name ("pgd", "apgd", ...) for probe streams, "benign"
	// otherwise.
	Family string
	// Probe marks attacker streams: their queries *should* end up flagged.
	Probe bool
	// Items are the stream's queries in submission order. Order matters:
	// the detector's m-of-w window slides over it.
	Items []TrafficItem
}

// DetectLoadConfig drives one detection run.
type DetectLoadConfig struct {
	// Rate is each stream's offered rate in queries/second. Rate <= 0
	// submits each stream as fast as its answers return (no timers at
	// all), the mode the deterministic tests run in.
	Rate float64
	// Deadline, when > 0, is each query's service deadline.
	Deadline time.Duration
}

// StreamReport is one stream's outcome: per-query flag verdicts in
// submission order, plus the usual serving counters.
type StreamReport struct {
	Client string `json:"client"`
	Family string `json:"family"`
	Probe  bool   `json:"probe"`

	Sent    int `json:"sent"`
	Served  int `json:"served"`
	Shed    int `json:"shed"`
	Failed  int `json:"failed"`
	Flagged int `json:"flagged"`

	// Flags is the per-query flag verdict, index-aligned with the
	// stream's items: Result.Flagged for served queries, ErrFlagged for
	// detector-shed ones. (Under DetectDeprioritize a flagged query shed
	// by the admission bucket reads false — the report undercounts there;
	// measure quality under DetectLog or DetectShed.)
	Flags []bool `json:"flags"`
}

// DetectReport is the outcome of one RunDetectLoad: per-stream verdicts,
// scoreable against the streams' ground-truth labels.
type DetectReport struct {
	Streams []StreamReport `json:"streams"`
}

// DetectionRate returns the fraction of probe-stream queries flagged. ok
// is false (value NaN) when the run had no probe queries, so an empty
// trace is distinguishable from a detector that caught nothing.
func (r *DetectReport) DetectionRate() (rate float64, ok bool) {
	return r.rate(true)
}

// BenignFPR returns the fraction of benign-stream queries flagged — the
// run's false-positive rate. ok is false (value NaN) with no benign
// queries.
func (r *DetectReport) BenignFPR() (fpr float64, ok bool) {
	return r.rate(false)
}

func (r *DetectReport) rate(probe bool) (float64, bool) {
	var sent, flagged int
	for _, s := range r.Streams {
		if s.Probe == probe {
			sent += s.Sent
			flagged += s.Flagged
		}
	}
	if sent == 0 {
		return math.NaN(), false
	}
	return float64(flagged) / float64(sent), true
}

// RunDetectLoad replays every stream against the service concurrently
// across streams but strictly sequentially within each stream — a client's
// queries arrive in order, which is the contract the detector's m-of-w
// window (and the run's bit-determinism) rests on. Benign items are
// submitted on route "benign", adversarial ones on "adv", exactly like
// RunLoad. Per-stream pacing reads the service clock; Rate <= 0 never
// consults it.
func RunDetectLoad(s *Service, streams []QueryStream, cfg DetectLoadConfig) (*DetectReport, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("serve: detect loadgen needs streams")
	}
	seen := make(map[string]bool, len(streams))
	for _, st := range streams {
		if st.Client == "" {
			return nil, fmt.Errorf("serve: detect loadgen stream needs a client identity")
		}
		if seen[st.Client] {
			return nil, fmt.Errorf("serve: detect loadgen streams share client %q", st.Client)
		}
		seen[st.Client] = true
	}

	clk := s.Clock()
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
	}
	rep := &DetectReport{Streams: make([]StreamReport, len(streams))}
	var wg sync.WaitGroup
	for si, st := range streams {
		wg.Add(1)
		go func(si int, st QueryStream) {
			defer wg.Done()
			sr := StreamReport{
				Client: st.Client,
				Family: st.Family,
				Probe:  st.Probe,
				Flags:  make([]bool, len(st.Items)),
			}
			var next time.Time
			if interval > 0 {
				// Stagger stream starts across one interval so paced
				// streams do not all fire on the same tick.
				next = clk.Now().Add(interval * time.Duration(si) / time.Duration(len(streams)))
			}
			for qi, it := range st.Items {
				if interval > 0 {
					if now := clk.Now(); next.After(now) {
						t := clk.NewTimer(next.Sub(now))
						<-t.C()
					}
					next = next.Add(interval)
				}
				route := "benign"
				if it.Adversarial {
					route = "adv"
				}
				var dl time.Time
				if cfg.Deadline > 0 {
					dl = clk.Now().Add(cfg.Deadline)
				}
				res, err := s.SubmitFrom(route, st.Client, it.X, dl)
				sr.Sent++
				switch {
				case err == nil:
					sr.Served++
					sr.Flags[qi] = res.Flagged
				case errors.Is(err, ErrFlagged):
					sr.Shed++
					sr.Flags[qi] = true
				case errors.Is(err, ErrOverloaded):
					sr.Shed++
				default:
					sr.Failed++
				}
				if sr.Flags[qi] {
					sr.Flagged++
				}
			}
			rep.Streams[si] = sr
		}(si, st)
	}
	wg.Wait()
	return rep, nil
}
