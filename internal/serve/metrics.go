package serve

import (
	"sort"
	"sync"
	"time"

	"pelta/internal/obs"
)

// P2Quantile is a streaming estimator of one quantile via the P² algorithm
// (Jain & Chlamtac, 1985): five markers track the running quantile in O(1)
// memory and time per observation, so the serving metrics never buffer the
// latency history of millions of requests. Below five observations the
// estimate is exact. Not safe for concurrent use; Metrics serializes access.
type P2Quantile struct {
	p     float64
	count int
	// q are marker heights, n marker positions (1-based), want the desired
	// positions and dwant their per-observation increments.
	q     [5]float64
	n     [5]float64
	want  [5]float64
	dwant [5]float64
}

// NewP2Quantile returns an estimator for the p-quantile, p in (0,1).
func NewP2Quantile(p float64) *P2Quantile {
	e := &P2Quantile{p: p}
	e.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add folds one observation into the sketch.
func (e *P2Quantile) Add(x float64) {
	if e.count < 5 {
		e.q[e.count] = x
		e.count++
		if e.count == 5 {
			sort.Float64s(e.q[:])
			e.n = [5]float64{1, 2, 3, 4, 5}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}
	e.count++

	// Locate the cell of x, extending the extreme markers if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.want {
		e.want[i] += e.dwant[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			// Piecewise-parabolic prediction of the new marker height.
			qn := e.q[i] + s/(e.n[i+1]-e.n[i-1])*
				((e.n[i]-e.n[i-1]+s)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
					(e.n[i+1]-e.n[i]-s)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				// Parabola left the bracket: fall back to linear.
				j := i + int(s)
				e.q[i] += s * (e.q[j] - e.q[i]) / (e.n[j] - e.n[i])
			}
			e.n[i] += s
		}
	}
}

// Value returns the current quantile estimate (exact below 5 samples — the
// same linear interpolation between closest ranks as eval.Quantiles — and 0
// with no samples).
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		buf := append([]float64(nil), e.q[:e.count]...)
		sort.Float64s(buf)
		pos := e.p * float64(len(buf)-1)
		lo := int(pos)
		if lo+1 >= len(buf) {
			return buf[lo]
		}
		return buf[lo] + (pos-float64(lo))*(buf[lo+1]-buf[lo])
	}
	return e.q[2]
}

// Count returns how many observations the sketch absorbed.
func (e *P2Quantile) Count() int { return e.count }

// Reset empties the sketch in place, keeping its target quantile, so
// windowed consumers (the autoscaler's TakeWindow drain) reuse one sketch
// per window instead of allocating a fresh one per tick.
func (e *P2Quantile) Reset() {
	*e = P2Quantile{p: e.p, dwant: e.dwant}
}

// routeStats accumulates one route's counters and latency sketches.
type routeStats struct {
	offered  uint64 // every Submit attempt, counted before any decision
	requests uint64 // resolved: served + shed + rejected + errored
	served   uint64
	shed     uint64 // rejected by admission control or deadline shedding
	rejected uint64 // malformed (wrong shape/rank) before admission
	errors   uint64

	// batchSamples sums the batch size each served request rode in, so
	// mean batch size = batchSamples/served.
	batchSamples uint64

	// Probe-detector counters: probed queries (detector consulted), hits
	// (near-duplicate K-th-NN match), flaggedQ (queries observed while the
	// client's flag was active) and detectShed (flagged queries shed under
	// DetectShed; every detectShed is also counted in shed, so the
	// requests = served+shed+rejected+errors invariant is unchanged).
	probed     uint64
	probeHits  uint64
	flaggedQ   uint64
	detectShed uint64

	totalLatency  time.Duration
	maxLatency    time.Duration
	p50, p95, p99 *P2Quantile
}

func newRouteStats() *routeStats {
	return &routeStats{
		p50: NewP2Quantile(0.50),
		p95: NewP2Quantile(0.95),
		p99: NewP2Quantile(0.99),
	}
}

// Metrics is the serving metrics core: per-route counters plus streaming
// latency quantiles. All methods are safe for concurrent use.
type Metrics struct {
	mu     sync.Mutex
	clock  Clock
	start  time.Time
	routes map[string]*routeStats

	// Control-plane view: the autoscaler's windowed latency signal plus the
	// scale decisions it took, surfaced so /metrics shows why the replica
	// count moved. The window is maintained only when winOn is set (the
	// service enables it with the autoscaler) — a static service must not
	// pay per-request for a signal nothing drains.
	winOn        bool
	winP95       *P2Quantile
	winN         int
	liveReplicas int
	scaleUps     uint64
	scaleDowns   uint64

	// flagEvents counts unflagged→flagged client transitions seen by the
	// probe detector, service-wide (flags are per client, not per route).
	flagEvents uint64
}

// NewMetrics returns an empty metrics core on the real clock.
func NewMetrics() *Metrics { return NewMetricsAt(nil) }

// NewMetricsAt returns an empty metrics core reading uptime from clock
// (nil = real time), so Snapshot stays consistent with a service running
// under an injected fake clock.
func NewMetricsAt(clock Clock) *Metrics {
	if clock == nil {
		clock = realClock{}
	}
	return &Metrics{clock: clock, start: clock.Now(), routes: make(map[string]*routeStats)}
}

func (m *Metrics) route(name string) *routeStats {
	r := m.routes[name]
	if r == nil {
		r = newRouteStats()
		m.routes[name] = r
	}
	return r
}

// Served records one successfully answered request: its end-to-end latency
// and the size of the tensor batch it rode in.
func (m *Metrics) Served(route string, latency time.Duration, batch int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.route(route)
	r.requests++
	r.served++
	r.batchSamples += uint64(batch)
	r.totalLatency += latency
	if latency > r.maxLatency {
		r.maxLatency = latency
	}
	ms := float64(latency) / float64(time.Millisecond)
	r.p50.Add(ms)
	r.p95.Add(ms)
	r.p99.Add(ms)
	if m.winOn {
		if m.winP95 == nil {
			m.winP95 = NewP2Quantile(0.95)
		}
		m.winP95.Add(ms)
		m.winN++
	}
}

// EnableWindow turns on the windowed latency signal TakeWindow drains —
// called by the service when the autoscaler is configured.
func (m *Metrics) EnableWindow() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.winOn = true
}

// TakeWindow returns the p95 latency (ms) and sample count observed since
// the previous TakeWindow call, then resets the window (always 0, 0 before
// EnableWindow). The autoscaler reads this each decision interval: unlike
// the lifetime sketches, the window drains with the load, so a past burst
// cannot pin the p95 signal high forever and block scale-down.
func (m *Metrics) TakeWindow() (p95Ms float64, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.winP95 != nil {
		p95Ms, n = m.winP95.Value(), m.winN
		m.winP95.Reset() // reuse the sketch across windows
	}
	m.winN = 0
	return p95Ms, n
}

// SetReplicas records the current live-replica gauge.
func (m *Metrics) SetReplicas(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.liveReplicas = n
}

// RecordScale records one autoscaler action from → to live replicas.
func (m *Metrics) RecordScale(from, to int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.liveReplicas = to
	if to > from {
		m.scaleUps++
	} else if to < from {
		m.scaleDowns++
	}
}

// Shed records one request rejected by admission control (queue full or
// deadline exceeded before service).
func (m *Metrics) Shed(route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.route(route)
	r.requests++
	r.shed++
}

// Error records one request that failed in the inference path.
func (m *Metrics) Error(route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.route(route)
	r.requests++
	r.errors++
}

// Offered records one request entering Submit, before any admission
// decision. offered − requests is therefore the in-flight count, and
// offered vs served separates the load a route *asked* for from what it
// got — the difference the fairness story is about.
func (m *Metrics) Offered(route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.route(route).offered++
}

// Probe records one query consulted against the probe detector: whether
// it scored a near-duplicate hit, whether the client's flag is active
// after it, and whether this query newly raised the flag.
func (m *Metrics) Probe(route string, hit, flagged, newFlag bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.route(route)
	r.probed++
	if hit {
		r.probeHits++
	}
	if flagged {
		r.flaggedQ++
	}
	if newFlag {
		m.flagEvents++
	}
}

// DetectShed records one flagged request shed by the probe detector under
// DetectShed. It counts into shed too, so the per-route accounting
// invariant (requests = served + shed + rejected + errors) still holds.
func (m *Metrics) DetectShed(route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.route(route)
	r.requests++
	r.shed++
	r.detectShed++
}

// Rejected records one malformed request (wrong sample shape or rank)
// refused before admission — without this counter a stream of garbage
// traffic is invisible to /metrics.
func (m *Metrics) Rejected(route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.route(route)
	r.requests++
	r.rejected++
}

// RouteSnapshot is the serializable view of one route's stats.
type RouteSnapshot struct {
	Route    string `json:"route"`
	Offered  uint64 `json:"offered"`
	Requests uint64 `json:"requests"`
	Served   uint64 `json:"served"`
	Shed     uint64 `json:"shed"`
	Rejected uint64 `json:"rejected"`
	Errors   uint64 `json:"errors"`
	// Probed / ProbeHits / FlaggedQueries / DetectShed expose the probe
	// detector's per-route view; all stay zero (and omitted) when the
	// detector is disabled. DetectShed is a subset of Shed.
	Probed         uint64 `json:"probed,omitempty"`
	ProbeHits      uint64 `json:"probe_hits,omitempty"`
	FlaggedQueries uint64 `json:"flagged_queries,omitempty"`
	DetectShed     uint64 `json:"detect_shed,omitempty"`
	// MeanBatch is the average tensor-batch size a request of this route
	// was coalesced into.
	MeanBatch float64 `json:"mean_batch"`
	MeanMs    float64 `json:"mean_ms"`
	MaxMs     float64 `json:"max_ms"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// Snapshot is the serializable view of the whole metrics core.
type Snapshot struct {
	UptimeSec float64 `json:"uptime_sec"`
	// LiveReplicas / ScaleUps / ScaleDowns expose the control-plane state:
	// LiveReplicas is the current live worker count (the full pool size on
	// a statically provisioned service); the scale counters record how
	// often the autoscaler grew or shrank the set and stay zero when it is
	// disabled.
	LiveReplicas int    `json:"live_replicas,omitempty"`
	ScaleUps     uint64 `json:"scale_ups,omitempty"`
	ScaleDowns   uint64 `json:"scale_downs,omitempty"`
	// FlagEvents counts the probe detector's unflagged→flagged client
	// transitions (zero and omitted when detection is disabled).
	FlagEvents uint64          `json:"flag_events,omitempty"`
	Routes     []RouteSnapshot `json:"routes"`
}

// Snapshot returns a consistent copy of every route's stats, sorted by
// route name.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked()
}

// snapshotLocked assembles the full view under one already-held lock
// section. Every exposition path (JSON snapshot, Prometheus collector)
// goes through here, so uptime, control-plane gauges, and route counters
// always describe one consistent instant — never fields read across
// separate lock acquisitions.
func (m *Metrics) snapshotLocked() Snapshot {
	s := Snapshot{
		UptimeSec:    m.clock.Now().Sub(m.start).Seconds(),
		LiveReplicas: m.liveReplicas,
		ScaleUps:     m.scaleUps,
		ScaleDowns:   m.scaleDowns,
		FlagEvents:   m.flagEvents,
	}
	names := make([]string, 0, len(m.routes))
	for name := range m.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := m.routes[name]
		rs := RouteSnapshot{
			Route:          name,
			Offered:        r.offered,
			Requests:       r.requests,
			Served:         r.served,
			Shed:           r.shed,
			Rejected:       r.rejected,
			Errors:         r.errors,
			Probed:         r.probed,
			ProbeHits:      r.probeHits,
			FlaggedQueries: r.flaggedQ,
			DetectShed:     r.detectShed,
			P50Ms:          r.p50.Value(),
			P95Ms:          r.p95.Value(),
			P99Ms:          r.p99.Value(),
			MaxMs:          float64(r.maxLatency) / float64(time.Millisecond),
		}
		if r.served > 0 {
			rs.MeanBatch = float64(r.batchSamples) / float64(r.served)
			rs.MeanMs = float64(r.totalLatency) / float64(r.served) / float64(time.Millisecond)
		}
		s.Routes = append(s.Routes, rs)
	}
	return s
}

// Collect renders the metrics core as registry samples for Prometheus
// exposition. It takes one snapshot under a single lock section, so every
// emitted sample describes the same instant.
func (m *Metrics) Collect() []obs.Metric {
	m.mu.Lock()
	s := m.snapshotLocked()
	m.mu.Unlock()

	out := []obs.Metric{
		obs.Gauge("pelta_uptime_seconds", "Service uptime on its own clock.", s.UptimeSec, nil),
		obs.Gauge("pelta_live_replicas", "Workers currently live (autoscaler gauge; pool size when static).", float64(s.LiveReplicas), nil),
		obs.Counter("pelta_scale_ups_total", "Autoscaler scale-up actions.", float64(s.ScaleUps), nil),
		obs.Counter("pelta_scale_downs_total", "Autoscaler scale-down actions.", float64(s.ScaleDowns), nil),
		obs.Counter("pelta_flag_events_total", "Probe-detector unflagged-to-flagged client transitions.", float64(s.FlagEvents), nil),
	}
	for _, r := range s.Routes {
		l := map[string]string{"route": r.Route}
		out = append(out,
			obs.Counter("pelta_requests_offered_total", "Submit attempts per route, before any admission decision.", float64(r.Offered), l),
			obs.Counter("pelta_requests_total", "Resolved requests per route (served + shed + rejected + errors).", float64(r.Requests), l),
			obs.Counter("pelta_served_total", "Successfully answered requests per route.", float64(r.Served), l),
			obs.Counter("pelta_shed_total", "Requests shed by admission control or deadline per route.", float64(r.Shed), l),
			obs.Counter("pelta_rejected_total", "Malformed requests refused before admission per route.", float64(r.Rejected), l),
			obs.Counter("pelta_errors_total", "Requests failed in the inference path per route.", float64(r.Errors), l),
			obs.Counter("pelta_probed_total", "Queries consulted against the probe detector per route.", float64(r.Probed), l),
			obs.Counter("pelta_probe_hits_total", "Probe-detector near-duplicate hits per route.", float64(r.ProbeHits), l),
			obs.Counter("pelta_flagged_queries_total", "Queries observed while the client's flag was active, per route.", float64(r.FlaggedQueries), l),
			obs.Counter("pelta_detect_shed_total", "Flagged queries shed by the probe detector per route (subset of shed).", float64(r.DetectShed), l),
			obs.Gauge("pelta_batch_mean", "Mean tensor-batch size a served request rode in, per route.", r.MeanBatch, l),
			obs.Gauge("pelta_latency_mean_ms", "Mean end-to-end latency per route in milliseconds.", r.MeanMs, l),
			obs.Gauge("pelta_latency_max_ms", "Maximum end-to-end latency per route in milliseconds.", r.MaxMs, l),
		)
		for _, q := range [...]struct {
			tag string
			v   float64
		}{{"0.5", r.P50Ms}, {"0.95", r.P95Ms}, {"0.99", r.P99Ms}} {
			out = append(out, obs.Gauge("pelta_latency_ms", "Streaming latency quantiles per route in milliseconds.", q.v,
				map[string]string{"route": r.Route, "quantile": q.tag}))
		}
	}
	return out
}
