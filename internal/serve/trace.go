package serve

import (
	"strconv"
	"time"

	"pelta/internal/obs"
	"pelta/internal/tensor"
)

// TraceConfig enables request tracing on a Service.
type TraceConfig struct {
	// Sample is the fraction of requests traced systematically (1.0 =
	// every request, 0.25 = every 4th, 0 = none). Anomalies — shed,
	// rejected, errored, or flagged requests — are always traced
	// regardless of Sample, so the tail is never lost.
	Sample float64
	// Cap bounds the retained span ring (default obs.DefaultTraceCap).
	Cap int
}

// initObservability builds the tracer, kernel stats, and registry for a
// newly constructed service. Tracing (and the kernel-boundary hook) only
// arm when cfg.Trace is non-nil; the registry is always available.
func (s *Service) initObservability() {
	if s.cfg.Trace != nil {
		s.tracer = obs.NewTracer(s.cfg.Clock, s.cfg.Trace.Cap, obs.SampleEvery(s.cfg.Trace.Sample))
		s.kernels = &obs.KernelStats{}
		clock := s.cfg.Clock
		kernels := s.kernels
		tensor.SetKernelHook(&tensor.KernelHook{
			Now: clock.Now,
			Observe: func(op tensor.KernelOp, d time.Duration) {
				kernels.Add(int(op), d.Nanoseconds())
			},
		})
		s.hookOwner = true
	}

	s.registry = obs.NewRegistry()
	s.registry.Register("serve", s.metrics.Collect)
	if s.det != nil {
		det, clock := s.det, s.cfg.Clock
		s.registry.Register("detect", func() []obs.Metric {
			st := det.Stats(clock.Now())
			return []obs.Metric{
				obs.Gauge("pelta_detect_clients", "Clients with a live similarity cache.", float64(st.Clients), nil),
				obs.Gauge("pelta_detect_flagged_clients", "Clients whose probe flag is currently active.", float64(st.FlaggedClients), nil),
				obs.Counter("pelta_detect_observed_total", "Queries fingerprinted by the detector.", float64(st.Observed), nil),
				obs.Counter("pelta_detect_hits_total", "Near-duplicate matches scored by the detector.", float64(st.Hits), nil),
				obs.Counter("pelta_detect_flagged_queries_total", "Queries observed under an active flag.", float64(st.FlaggedQueries), nil),
				obs.Counter("pelta_detect_flag_events_total", "Unflagged-to-flagged transitions.", float64(st.FlagEvents), nil),
			}
		})
	}
	if s.kernels != nil {
		s.registry.Register("kernels", s.kernels.Metrics)
	}
	pool := s.pool
	s.registry.Register("tee", func() []obs.Metric { return enclaveMetrics(pool) })
}

// enclaveMetrics renders per-replica enclave-ceiling headroom gauges for
// every shielded replica in the pool (clear replicas contribute nothing).
func enclaveMetrics(pool *ReplicaPool) []obs.Metric {
	var out []obs.Metric
	for i, rep := range pool.replicas {
		sr, ok := rep.(*ShieldedReplica)
		if !ok {
			continue
		}
		enc := sr.SM.Enclave()
		if enc == nil {
			continue
		}
		l := map[string]string{"replica": strconv.Itoa(i)}
		tm := enc.Metrics()
		out = append(out,
			obs.Gauge("pelta_enclave_used_bytes", "Secure memory currently held by the replica's enclave.", float64(enc.Used()), l),
			obs.Gauge("pelta_enclave_limit_bytes", "Secure-memory ceiling of the replica's enclave.", float64(enc.Limit()), l),
			obs.Gauge("pelta_enclave_free_bytes", "Secure-memory headroom under the replica's enclave ceiling.", float64(enc.Free()), l),
			obs.Counter("pelta_enclave_world_switches_total", "Normal-to-secure world switches performed by the enclave.", float64(tm.WorldSwitches), l),
			obs.Counter("pelta_enclave_bytes_in_total", "Bytes copied into the enclave.", float64(tm.BytesIn), l),
			obs.Counter("pelta_enclave_bytes_out_total", "Bytes copied out of the enclave.", float64(tm.BytesOut), l),
			obs.Counter("pelta_enclave_overhead_ns_total", "Modelled world-switch and transfer overhead in nanoseconds.", float64(tm.SimulatedOverhead.Nanoseconds()), l),
		)
	}
	return out
}

// Tracer exposes the request tracer, or nil when Config.Trace is unset —
// the nil tracer is the documented "tracing disabled" state.
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// KernelStats exposes the accumulated kernel-boundary totals, or nil when
// tracing is disabled.
func (s *Service) KernelStats() *obs.KernelStats { return s.kernels }

// Registry exposes the service's telemetry registry (serve counters and
// quantiles, probe-detector stats, kernel totals, and per-replica enclave
// gauges) for Prometheus exposition.
func (s *Service) Registry() *obs.Registry { return s.registry }
