package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pelta/internal/detect"
	"pelta/internal/tensor"
)

// dupSample returns one of a family of near-duplicate samples: base plus a
// tiny index-dependent wiggle, well inside the detector's threshold.
func dupSample(i int) *tensor.Tensor {
	x := tensor.New(1, 2, 2)
	d := x.Data()
	for j := range d {
		d[j] = 0.5 + 0.1*float32(j) + 0.0005*float32(i%3)
	}
	return x
}

// freshSample returns a sample whose fingerprint points in its own
// direction (a seeded random pattern per index), far from every other
// index's.
func freshSample(i int) *tensor.Tensor {
	rng := tensor.NewRNG(int64(1000 + i))
	x := tensor.New(1, 2, 2)
	d := x.Data()
	for j := range d {
		d[j] = 0.5 + 0.3*float32(rng.NormFloat64())
	}
	return x
}

// detectTestConfig is a fast-flagging config for the action tests.
func detectTestConfig(action DetectAction) *DetectConfig {
	return &DetectConfig{
		Config: detect.Config{K: 1, MatchM: 2, MatchW: 4},
		Action: action,
	}
}

// checkInvariant asserts requests = served + shed + rejected + errors on
// every route of a snapshot — the accounting contract DetectShed must not
// break.
func checkInvariant(t *testing.T, m *Metrics) {
	t.Helper()
	for _, r := range m.Snapshot().Routes {
		if r.Requests != r.Served+r.Shed+r.Rejected+r.Errors {
			t.Fatalf("route %s: requests %d != served %d + shed %d + rejected %d + errors %d",
				r.Route, r.Requests, r.Served, r.Shed, r.Rejected, r.Errors)
		}
	}
}

// TestDetectLogAction pins the observe-first mode: a near-duplicate stream
// flags the client, flagged queries are still served with Result.Flagged
// set, and the detector counters land in the metrics.
func TestDetectLogAction(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{MaxBatch: 1, Detect: detectTestConfig(DetectLog)})
	defer s.Close()

	var flagged int
	for i := 0; i < 8; i++ {
		res, err := s.SubmitFrom("adv", "attacker", dupSample(i), time.Time{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.Flagged {
			flagged++
		}
	}
	if flagged < 4 {
		t.Fatalf("%d of 8 near-duplicate queries flagged, want >= 4", flagged)
	}
	// A benign client interleaved on the same service stays unflagged.
	for i := 0; i < 8; i++ {
		res, err := s.SubmitFrom("benign", "honest", freshSample(i), time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Flagged {
			t.Fatalf("benign client flagged at query %d", i)
		}
	}

	snap := s.Metrics().Snapshot()
	if snap.FlagEvents != 1 {
		t.Fatalf("flag events = %d, want 1", snap.FlagEvents)
	}
	for _, r := range snap.Routes {
		switch r.Route {
		case "adv":
			if r.Probed != 8 || r.FlaggedQueries == 0 || r.ProbeHits == 0 {
				t.Fatalf("adv route detector counters: %+v", r)
			}
		case "benign":
			if r.Probed != 8 || r.FlaggedQueries != 0 {
				t.Fatalf("benign route detector counters: %+v", r)
			}
		}
	}
	checkInvariant(t, s.Metrics())

	st := s.Detector().Stats(s.Clock().Now())
	if st.Clients != 2 || st.FlaggedClients != 1 {
		t.Fatalf("detector stats %+v, want 2 clients with 1 flagged", st)
	}
}

// TestDetectShedAction pins the enforcement mode: once flagged, a client's
// queries come back ErrFlagged (wrapping ErrOverloaded for existing
// back-off logic), counted as detector sheds without breaking the
// accounting invariant.
func TestDetectShedAction(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{MaxBatch: 1, Detect: detectTestConfig(DetectShed)})
	defer s.Close()

	var shedErr error
	var served, shed int
	for i := 0; i < 8; i++ {
		_, err := s.SubmitFrom("adv", "attacker", dupSample(i), time.Time{})
		if err != nil {
			shed++
			shedErr = err
		} else {
			served++
		}
	}
	if shed == 0 || served == 0 {
		t.Fatalf("served %d / shed %d: want the stream to flow, then be cut", served, shed)
	}
	if !errors.Is(shedErr, ErrFlagged) || !errors.Is(shedErr, ErrOverloaded) {
		t.Fatalf("shed error %v must wrap both ErrFlagged and ErrOverloaded", shedErr)
	}
	var rs RouteSnapshot
	for _, r := range s.Metrics().Snapshot().Routes {
		if r.Route == "adv" {
			rs = r
		}
	}
	if rs.DetectShed != uint64(shed) || rs.Shed < rs.DetectShed {
		t.Fatalf("detect_shed %d (shed %d), want %d detector sheds counted into shed", rs.DetectShed, rs.Shed, shed)
	}
	checkInvariant(t, s.Metrics())
}

// TestDetectDeprioritizeAction pins the middle action: flagged queries are
// charged to the "flagged" admission bucket. With that bucket rate-starved,
// the flagged client is shed by admission while an honest client on the
// same route keeps being served.
func TestDetectDeprioritizeAction(t *testing.T) {
	cfg := Config{
		MaxBatch: 1,
		Detect:   detectTestConfig(DetectDeprioritize),
		Admission: &AdmissionConfig{
			Rate:    1000,
			Weights: map[string]float64{"adv": 100, FlaggedRoute: 0.001},
		},
	}
	s := NewService(stubPool(t, newStubReplica()), cfg)
	defer s.Close()

	var flaggedShed int
	for i := 0; i < 12; i++ {
		_, err := s.SubmitFrom("adv", "attacker", dupSample(i), time.Time{})
		if err != nil {
			if !errors.Is(err, ErrOverloaded) || errors.Is(err, ErrFlagged) {
				t.Fatalf("deprioritized shed must be a plain admission shed, got %v", err)
			}
			flaggedShed++
		}
	}
	if flaggedShed == 0 {
		t.Fatal("starving the flagged bucket must shed the flagged client's queries")
	}
	// The honest client rides the same route's healthy bucket throughout.
	for i := 0; i < 4; i++ {
		if _, err := s.SubmitFrom("adv", "honest", freshSample(i), time.Time{}); err != nil {
			t.Fatalf("honest client shed: %v", err)
		}
	}
	checkInvariant(t, s.Metrics())
}

// TestDetectDisabledBypass pins the default-off contract: without
// Config.Detect the client identity is inert — no detector, no counters,
// no Flagged results — and with detection on, client-less Submit bypasses
// the detector entirely.
func TestDetectDisabledBypass(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{MaxBatch: 1})
	if s.Detector() != nil {
		t.Fatal("detector must be nil without Config.Detect")
	}
	for i := 0; i < 8; i++ {
		res, err := s.SubmitFrom("adv", "attacker", dupSample(i), time.Time{})
		if err != nil || res.Flagged {
			t.Fatalf("query %d: err=%v flagged=%v on a detection-free service", i, err, res.Flagged)
		}
	}
	for _, r := range s.Metrics().Snapshot().Routes {
		if r.Probed != 0 || r.FlaggedQueries != 0 {
			t.Fatalf("detector counters moved on a detection-free service: %+v", r)
		}
	}
	s.Close()

	s2 := NewService(stubPool(t, newStubReplica()), Config{MaxBatch: 1, Detect: detectTestConfig(DetectShed)})
	defer s2.Close()
	for i := 0; i < 8; i++ {
		if _, err := s2.Submit("adv", dupSample(i), time.Time{}); err != nil {
			t.Fatalf("client-less Submit must bypass detection, got %v", err)
		}
	}
	if st := s2.Detector().Stats(s2.Clock().Now()); st.Observed != 0 {
		t.Fatalf("client-less submits reached the detector: %+v", st)
	}
}

// TestRunDetectLoadValidation pins the stream preconditions.
func TestRunDetectLoadValidation(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{MaxBatch: 1})
	defer s.Close()
	if _, err := RunDetectLoad(s, nil, DetectLoadConfig{}); err == nil {
		t.Fatal("empty stream set must error")
	}
	mk := func(c string) QueryStream {
		return QueryStream{Client: c, Family: "benign", Items: []TrafficItem{{X: freshSample(0)}}}
	}
	if _, err := RunDetectLoad(s, []QueryStream{mk("")}, DetectLoadConfig{}); err == nil {
		t.Fatal("empty client identity must error")
	}
	if _, err := RunDetectLoad(s, []QueryStream{mk("a"), mk("a")}, DetectLoadConfig{}); err == nil {
		t.Fatal("duplicate client identity must error")
	}
}

// TestRunDetectLoadReport pins the loadgen's per-stream accounting: probe
// streams of near-duplicates end up flagged, benign streams do not, and
// the Flags slice is index-aligned with the items.
func TestRunDetectLoadReport(t *testing.T) {
	s := NewService(stubPool(t, newStubReplica()), Config{MaxBatch: 2, Detect: detectTestConfig(DetectLog)})
	defer s.Close()

	streams := make([]QueryStream, 0, 4)
	for c := 0; c < 4; c++ {
		st := QueryStream{Client: fmt.Sprintf("c%d", c), Family: "benign"}
		probe := c%2 == 0
		if probe {
			st.Family, st.Probe = "pgd", true
		}
		for i := 0; i < 10; i++ {
			x := freshSample(c*100 + i)
			if probe {
				x = dupSample(c*100 + i)
			}
			st.Items = append(st.Items, TrafficItem{X: x, Adversarial: probe})
		}
		streams = append(streams, st)
	}
	// Distinct duplicate families per probe client, or the two probe
	// clients would flag each other… they must not: caches are per client.
	for i := range streams[2].Items {
		streams[2].Items[i].X.Data()[0] += 0.4
	}

	rep, err := RunDetectLoad(s, streams, DetectLoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	det, ok := rep.DetectionRate()
	if !ok || det < 0.5 {
		t.Fatalf("detection rate %.2f (ok=%v), want >= 0.5 on pure duplicate streams", det, ok)
	}
	fpr, ok := rep.BenignFPR()
	if !ok || fpr != 0 {
		t.Fatalf("benign FPR %.2f (ok=%v), want exactly 0", fpr, ok)
	}
	for _, sr := range rep.Streams {
		if len(sr.Flags) != 10 || sr.Sent != 10 {
			t.Fatalf("stream %s: %d flags / %d sent, want 10/10", sr.Client, len(sr.Flags), sr.Sent)
		}
		n := 0
		for _, f := range sr.Flags {
			if f {
				n++
			}
		}
		if n != sr.Flagged {
			t.Fatalf("stream %s: Flags count %d != Flagged %d", sr.Client, n, sr.Flagged)
		}
	}
}
