package serve

import "time"

// Clock abstracts wall time for the scheduler so the batch-coalescing
// policy is testable deterministically: under a fake clock a partial batch
// flushes exactly when the test advances past MaxDelay, never earlier.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
}

// Timer is the subset of time.Timer the scheduler needs.
type Timer interface {
	// C returns the firing channel.
	C() <-chan time.Time
	// Stop cancels the timer; it reports whether the timer was still
	// pending (same contract as time.Timer.Stop).
	Stop() bool
}

// realClock is the production Clock backed by package time — the one
// place in this package allowed to touch the wall clock; everything else
// runs on an injected Clock so traces replay deterministically.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() } //pelta:allow noclock realClock IS the production Clock implementation

func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} } //pelta:allow noclock realClock IS the production Clock implementation

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }

func (t realTimer) Stop() bool { return t.t.Stop() }
